#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace cellsweep::util {

namespace {
std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

ThreadPool::ThreadPool(int threads) : size_(threads < 1 ? 1 : threads) {
  workers_.reserve(size_ - 1);
  for (int w = 1; w < size_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_slice(int worker, int n,
                           const std::function<void(int, int)>& fn) noexcept {
  // Static partition: contiguous slice per worker, remainder spread
  // over the leading workers by the w*n/size rounding.
  const int begin =
      static_cast<int>(static_cast<std::int64_t>(worker) * n / size_);
  const int end =
      static_cast<int>(static_cast<std::int64_t>(worker + 1) * n / size_);
  const auto t0 = std::chrono::steady_clock::now();
  std::exception_ptr err;
  try {
    for (int i = begin; i < end; ++i) fn(i, worker);
  } catch (...) {
    err = std::current_exception();
  }
  const std::uint64_t busy = ns_since(t0);
  MutexLock lock(mu_);
  telemetry_.busy_ns += busy;
  if (err && !error_) error_ = err;
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Snapshot the task while holding the lock that published it; the
    // slice then runs from locals, so no handshake field is ever read
    // outside mu_.
    int n;
    const std::function<void(int, int)>* fn;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) start_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      n = n_;
      fn = fn_;
    }
    run_slice(worker, n, *fn);
    {
      MutexLock lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(int n,
                              const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  const auto fork_start = std::chrono::steady_clock::now();
  if (size_ == 1) {
    for (int i = 0; i < n; ++i) fn(i, 0);
    const std::uint64_t ns = ns_since(fork_start);
    MutexLock lock(mu_);
    ++telemetry_.forks;
    telemetry_.items += static_cast<std::uint64_t>(n);
    telemetry_.busy_ns += ns;
    telemetry_.fork_wall_ns += ns;
    telemetry_.peak_fork_queue = std::max(telemetry_.peak_fork_queue, 1);
    return;
  }

  {
    // Fork-queue depth before taking fork_mu_ (mu_ and fork_mu_ are
    // never held together here, so the rank order stays fork -> state).
    MutexLock lock(mu_);
    ++fork_queue_;
    telemetry_.peak_fork_queue =
        std::max(telemetry_.peak_fork_queue, fork_queue_);
  }

  // One fork point at a time: concurrent callers (several solve-server
  // tenants sharing one host pool) queue here. Without this, a second
  // caller would bump generation_ while the first one's slices are
  // still running -- workers would skip or re-run slices and the two
  // jobs' n_/fn_/error_ would interleave.
  MutexLock fork(fork_mu_);

  {
    MutexLock lock(mu_);
    n_ = n;
    fn_ = &fn;
    error_ = nullptr;
    pending_ = size_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  run_slice(0, n, fn);  // the calling thread is worker 0

  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.wait(mu_);
    fn_ = nullptr;
    // Detach the error from the pool before rethrowing so a thrown job
    // can never poison the next fork point (which also clears error_ --
    // belt and braces; the regression tests pin the reuse contract).
    err = error_;
    error_ = nullptr;
    --fork_queue_;
    ++telemetry_.forks;
    telemetry_.items += static_cast<std::uint64_t>(n);
    telemetry_.fork_wall_ns += ns_since(fork_start);
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool::Telemetry ThreadPool::telemetry() const {
  MutexLock lock(mu_);
  return telemetry_;
}

double ThreadPool::utilization() const {
  MutexLock lock(mu_);
  if (telemetry_.fork_wall_ns == 0) return 0.0;
  return static_cast<double>(telemetry_.busy_ns) /
         (static_cast<double>(telemetry_.fork_wall_ns) *
          static_cast<double>(size_));
}

}  // namespace cellsweep::util
