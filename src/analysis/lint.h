// Static deck validation ("deck lint"): catches, before any simulated
// tick runs, the configuration mistakes the machine model would
// otherwise only surface mid-run (or worse, silently tolerate) -- a
// chunk shape whose working set overflows the 256 KB local store under
// the configured buffer count, blocking factors that do not divide the
// grid/quadrature, DMA element shapes that violate the CBEA command
// rules the paper quotes in Section 2, or a buffer rotation that runs
// out of MFC tag groups. Reuses the real planners and validators
// (core::plan_chunk, cell::Mfc::validate, sweep::SweepConfig::validate)
// so lint and runtime can never disagree about what is legal.
#pragma once

#include "analysis/diagnostics.h"
#include "core/config.h"
#include "sweep/deck.h"
#include "workloads/stencil/spec.h"

namespace cellsweep::analysis {

/// Validates @p deck as it would run under @p cfg's machine switches
/// (buffers, precision, DMA granularity, chip revision...). Findings
/// carry no timestamps; `where` names the deck or config key at fault.
Diagnostics lint_deck(const sweep::Deck& deck,
                      const core::CellSweepConfig& cfg);

/// Validates a stencil spec the same way: grid/blocking consistency,
/// the LS budget of the block staging buffers under the configured
/// buffer count, the MFC tag budget of the rotation, and the DMA
/// legality of the exact requests workloads/stencil would submit.
Diagnostics lint_stencil(const stencil::StencilSpec& spec,
                         const core::CellSweepConfig& cfg);

}  // namespace cellsweep::analysis
