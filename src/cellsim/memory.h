// Main-memory (MIC) and interconnect (EIB) models.
//
// The MIC provides 25.6 GB/s of peak bandwidth shared by all eight
// SPEs, the PPE and I/O -- the paper shows this is Sweep3D's ultimate
// bound (Section 6: 17.6 GB moved => >= 0.7 s). Main memory is spread
// over 16 interleaved banks; transfers that concentrate on few banks
// lose burst efficiency, which is why the port "adds offsets to the
// array allocation to more fairly spread the memory accesses across the
// 16 main memory banks" (Section 5). The EIB moves 204.8 GB/s
// aggregate; it only binds for LS-to-LS traffic patterns.
#pragma once

#include <array>
#include <cstdint>

#include "cellsim/spec.h"
#include "sim/resource.h"
#include "sim/time.h"

namespace cellsweep::sim {
class CounterSet;
class FaultPlan;
}

namespace cellsweep::cell {

/// Memory Interface Controller: FIFO bandwidth server plus the bank
/// interleaving efficiency model.
class Mic {
 public:
  explicit Mic(const CellSpec& spec);

  /// Effective streaming efficiency for a request whose addresses fall
  /// on @p banks_touched of the @p memory_banks banks with roughly even
  /// load. Touching all banks streams at peak; hammering one bank is
  /// limited by per-bank bandwidth.
  double bank_efficiency(int banks_touched) const;

  /// Submits a transfer of @p bytes that starts no earlier than @p now,
  /// pays @p overhead of fixed startup, and streams with transfer
  /// efficiency @p efficiency in (0,1]. @p elements transfer elements
  /// each charge one DRAM burst-turnaround gap of port occupancy
  /// (64-bit: a multi-GB request in quadword elements overflows int).
  /// @p banks_touched (1..memory_banks) applies the bank-interleaving
  /// penalty on top of @p efficiency; <= 0 means the access streams
  /// over all banks (no penalty -- the pre-counter behavior). @p
  /// is_write selects the read vs write per-bank accounting (counters
  /// only; timing is direction-blind). Returns the completion time.
  sim::Tick submit(sim::Tick now, double bytes, sim::Tick overhead,
                   double efficiency, std::uint64_t elements = 1,
                   int banks_touched = 0, bool is_write = false);

  /// Logical payload bytes (the Section 6 "17.6 Gbytes" audit counts
  /// these, not the efficiency-inflated port occupancy).
  double bytes_moved() const noexcept { return logical_bytes_; }
  std::uint64_t requests() const noexcept { return port_.requests(); }
  sim::Tick busy_ticks() const noexcept { return port_.busy_ticks(); }
  double peak_rate() const noexcept { return port_.rate(); }

  /// Port ticks lost to bank-interleaving inefficiency (the extra
  /// occupancy of bytes/(eff*bank_eff) over bytes/eff). Observation
  /// only.
  sim::Tick bank_conflict_ticks() const noexcept { return conflict_; }

  /// Arms bank-throttle injection: a throttled request (DRAM refresh,
  /// a degraded bank) streams at a fraction of its normal efficiency.
  /// Pass nullptr to disarm; a disabled plan is equivalent.
  void attach_faults(const sim::FaultPlan* plan) noexcept { faults_ = plan; }

  // Fault counters (zero unless a plan is armed).
  std::uint64_t throttled_requests() const noexcept {
    return throttled_requests_;
  }
  sim::Tick throttle_ticks() const noexcept { return throttle_; }

  /// Publishes MIC counters (reads/writes per bank, bank-conflict
  /// ticks, port busy/wait) into @p out. Snapshot only.
  void publish_counters(sim::CounterSet& out) const;

  void reset() noexcept {
    port_.reset();
    logical_bytes_ = 0.0;
    reads_ = 0;
    writes_ = 0;
    conflict_ = 0;
    bank_cursor_ = 0;
    bank_reads_.fill(0);
    bank_writes_.fill(0);
    fault_seq_ = 0;
    throttled_requests_ = 0;
    throttle_ = 0;
  }

 private:
  CellSpec spec_;
  sim::BandwidthResource port_;
  double logical_bytes_ = 0.0;
  // Counters (observation only).
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  sim::Tick conflict_ = 0;
  int bank_cursor_ = 0;  ///< rotating start bank for element attribution
  std::array<std::uint64_t, 32> bank_reads_{};
  std::array<std::uint64_t, 32> bank_writes_{};
  // Fault injection (inert unless armed); fault_seq_ numbers every port
  // request so throttle decisions are pure in request order.
  const sim::FaultPlan* faults_ = nullptr;
  std::uint64_t fault_seq_ = 0;
  std::uint64_t throttled_requests_ = 0;
  sim::Tick throttle_ = 0;
};

/// Element Interconnect Bus: aggregate bandwidth server. Every DMA
/// payload crosses it; completion of a main-memory DMA is the later of
/// the EIB and MIC finish times.
class Eib {
 public:
  explicit Eib(const CellSpec& spec)
      : ring_("EIB", spec.eib_bytes_per_s) {}

  sim::Tick submit(sim::Tick now, double bytes) {
    return ring_.submit(now, bytes);
  }

  double bytes_moved() const noexcept { return ring_.bytes_moved(); }
  sim::Tick busy_ticks() const noexcept { return ring_.busy_ticks(); }
  std::uint64_t grants() const noexcept { return ring_.requests(); }
  sim::Tick contention_stall_ticks() const noexcept {
    return ring_.wait_ticks();
  }

  /// Publishes EIB counters (ring grants, bytes, contention stalls)
  /// into @p out. Snapshot only.
  void publish_counters(sim::CounterSet& out) const;

  void reset() noexcept { ring_.reset(); }

 private:
  sim::BandwidthResource ring_;
};

}  // namespace cellsweep::cell
