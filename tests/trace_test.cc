// Tests for the observability layer: the Chrome trace writer, the
// zero-perturbation guarantee of instrumented runs, per-SPE stall
// accounting and the metrics JSON emitter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/metrics.h"
#include "core/orchestrator.h"
#include "sim/trace.h"

namespace cellsweep {
namespace {

// Minimal structural JSON check: braces/brackets balance outside string
// literals and the document is a single object. Not a full parser, but
// it catches truncated output, stray commas-into-EOF and unescaped
// quotes -- the failure modes a streaming writer actually has.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_any = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; seen_any = true; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
    if (seen_any && depth == 0 && c != '}' && c != ']' &&
        !std::isspace(static_cast<unsigned char>(c)))
      return false;  // trailing junk after the root closes
  }
  return seen_any && depth == 0 && !in_string;
}

core::RunReport run_cube(int cube, sim::TraceSink* sink,
                         core::OptimizationStage stage =
                             core::OptimizationStage::kSpeLsPoke) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = 2;
  cfg.sweep.fixup_from_iteration = 1;
  cfg.sweep.mk = std::min(cfg.sweep.mk, cube);
  while (cube % cfg.sweep.mk != 0) --cfg.sweep.mk;
  cfg.trace_sink = sink;
  core::CellSweep3D runner(p, cfg);
  return runner.run(core::RunMode::kTraceDriven);
}

TEST(ChromeTraceWriter, CollectsTracksAndEvents) {
  sim::ChromeTraceWriter w;
  const int a = w.track("SPE0");
  const int b = w.track("EIB");
  EXPECT_NE(a, b);
  EXPECT_EQ(w.track_count(), 2);
  w.span(a, "kernel", "compute", 1'000'000'000, 3'000'000'000);
  w.instant(b, "block-barrier", "sync", 2'000'000'000);
  w.counter(b, "traffic-gb", 2'000'000'000, 1.5);
  EXPECT_EQ(w.event_count(), 3u);

  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_balanced(out)) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"SPE0\""), std::string::npos);
  EXPECT_NE(out.find("\"kernel\""), std::string::npos);
  // 1 Gtick = 1 simulated microsecond; the span is [1 us, 3 us).
  EXPECT_NE(out.find("\"ts\": 1.000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\": 2.000"), std::string::npos);
}

TEST(ChromeTraceWriter, EscapesTrackNames) {
  sim::ChromeTraceWriter w;
  w.track("weird \"name\"\nwith\tcontrols");
  std::ostringstream os;
  w.write(os);
  EXPECT_TRUE(json_balanced(os.str())) << os.str();
}

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(sim::json_escape("plain"), "plain");
  EXPECT_EQ(sim::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(sim::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(sim::json_escape("a\nb"), "a\\nb");
}

TEST(Trace, SinkDoesNotPerturbSimulatedTime) {
  // The central contract: tracing is observation only. The same deck
  // replayed with the sink attached must produce bit-identical timing.
  const core::RunReport plain = run_cube(12, nullptr);
  sim::ChromeTraceWriter w;
  const core::RunReport traced = run_cube(12, &w);

  EXPECT_EQ(plain.seconds, traced.seconds);
  EXPECT_EQ(plain.traffic_bytes, traced.traffic_bytes);
  EXPECT_EQ(plain.dma_commands, traced.dma_commands);
  EXPECT_EQ(plain.dma_transfers, traced.dma_transfers);
  EXPECT_EQ(plain.chunks, traced.chunks);
  EXPECT_EQ(plain.flops, traced.flops);
  EXPECT_GT(w.event_count(), 0u);

  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_TRUE(json_balanced(out));
  for (const char* needle :
       {"\"traceEvents\"", "\"SPE0\"", "\"PPE\"", "\"EIB\"", "\"MIC\"",
        "\"kernel", "\"dma-get", "\"dma-put\"", "thread_name"})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Trace, StallBucketsPartitionTheRun) {
  const core::RunReport r = run_cube(12, nullptr);
  ASSERT_FALSE(r.spe_stalls.empty());
  for (std::size_t s = 0; s < r.spe_stalls.size(); ++s) {
    const core::SpeStallSummary& st = r.spe_stalls[s];
    EXPECT_GE(st.busy_s, 0.0) << s;
    EXPECT_GE(st.dma_wait_s, 0.0) << s;
    EXPECT_GE(st.sync_wait_s, 0.0) << s;
    EXPECT_GE(st.idle_s, 0.0) << s;
    const double total =
        st.busy_s + st.dma_wait_s + st.sync_wait_s + st.idle_s;
    EXPECT_NEAR(total, r.seconds, 1e-9 * std::max(1.0, r.seconds)) << s;
  }
  EXPECT_GE(r.mic_utilization, 0.0);
  EXPECT_LE(r.mic_utilization, 1.0);
  EXPECT_GE(r.eib_utilization, 0.0);
  EXPECT_LE(r.eib_utilization, 1.0);
}

TEST(Trace, OccupancyHistogramCountsEveryCommand) {
  const core::RunReport r = run_cube(12, nullptr);
  ASSERT_FALSE(r.mfc_queue_occupancy.empty());
  std::uint64_t counted = 0;
  for (std::uint64_t c : r.mfc_queue_occupancy) counted += c;
  EXPECT_EQ(counted, r.dma_commands);
}

TEST(Trace, PpeRunsHaveNoSpeStalls) {
  const core::RunReport r =
      run_cube(12, nullptr, core::OptimizationStage::kPpeXlc);
  EXPECT_TRUE(r.spe_stalls.empty());
}

TEST(Metrics, JsonIsWellFormed) {
  const core::RunReport r = run_cube(12, nullptr);
  std::ostringstream os;
  core::write_metrics_json(os, r);
  const std::string out = os.str();
  EXPECT_TRUE(json_balanced(out)) << out;
  for (const char* needle :
       {"\"seconds\"", "\"utilization\"", "\"queue_occupancy_histogram\"",
        "\"spe_stalls\"", "\"dma_wait_s\""})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Metrics, EmptyStatsSerializeAsNull) {
  // PPE runs have no per-SPE samples; the empty RunningStats moments are
  // NaN and must serialize as JSON null, never as "nan".
  const core::RunReport r =
      run_cube(12, nullptr, core::OptimizationStage::kPpeXlc);
  std::ostringstream os;
  core::write_metrics_json(os, r);
  const std::string out = os.str();
  EXPECT_TRUE(json_balanced(out));
  EXPECT_NE(out.find("null"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace cellsweep
