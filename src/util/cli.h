// Minimal command-line flag parser for the example applications.
// Supports "--name=value" and "--name value" forms plus boolean
// switches ("--fixups"), with typed accessors and a generated usage
// string. No external dependencies.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cellsweep::util {

/// Thrown by the typed accessors when a flag's value does not parse as
/// the requested type (e.g. --threads=abc read through get_int()).
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative flag set: register flags with defaults and help text,
/// then parse(argc, argv).
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag; @p default_value doubles as the type hint.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// missing values. "--help" sets help_requested().
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  /// Strict numeric accessors: the whole value must parse and be in
  /// range, otherwise they throw CliError ("--threads=abc" is an error,
  /// not a silent 0).
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  bool help_requested() const noexcept { return help_requested_; }
  const std::string& error() const noexcept { return error_; }

  /// Usage text listing all registered flags.
  std::string usage(const std::string& argv0) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace cellsweep::util
