// ChunkPlan: the single authority for how a JK-diagonal's independent
// I-lines decompose into executable chunks.
//
// The paper's level-2 insight (Section 4) is that every I-line on one
// jkm-diagonal is independent, so the Cell port farms them to the SPEs
// in chunks of four. Exactly one piece of code may decide what those
// chunks are: this layer enumerates, for one diagonal of one (octant,
// angle-block, K-block) pipeline block, the line coordinates in sweep
// order and their bundling into chunks of at most kBundleLines lines
// (remainder last). Both consumers -- the functional sweeper
// (sweep::SweepState::sweep_block, which executes the chunks, serially
// or on a host thread pool) and the timing engine
// (core::TimingEngine::on_diagonal, which prices the identical chunk
// list on the machine model) -- consume a ChunkPlan, so the functional
// and timing paths cannot drift. The workload audit and the cluster
// replayer use the same arithmetic through the static helpers.
#pragma once

#include <vector>

#include "sweep/sweeper.h"

namespace cellsweep::sweep {

/// Coordinates of one I-line within its pipeline block: angle slot
/// mh in [0, mmi), K-plane slot kk in [0, mk), J-column jj in [0, jt),
/// with mh + kk + jj equal to the diagonal index.
struct LineCoord {
  int mh = 0;
  int kk = 0;
  int jj = 0;
};

/// One executable unit: a contiguous run of the diagonal's lines,
/// dispatched to one SPE (timing model) or one host worker (functional
/// executor).
struct ChunkDesc {
  int index = 0;       ///< position in the diagonal's chunk list
  int first_line = 0;  ///< offset into ChunkPlan::lines()
  int nlines = 0;      ///< 1..kBundleLines
};

/// Deterministic decomposition of one JK-diagonal into chunks.
class ChunkPlan {
 public:
  ChunkPlan() = default;

  /// Plans diagonal @p diagonal (0-based jkm index) of one pipeline
  /// block: lines in the sweeper's visiting order (mh-major, kk-minor),
  /// bundled into chunks of at most kBundleLines.
  ChunkPlan(const SweepConfig& cfg, int jt, int it, int diagonal,
            bool fixup);

  /// Plans the diagonal described by an already-emitted DiagonalWork
  /// record (the timing engine's entry point). Throws std::logic_error
  /// if @p w.nlines disagrees with the geometry -- functional/timing
  /// drift is a structural bug, not a tolerance.
  ChunkPlan(const SweepConfig& cfg, int jt, const DiagonalWork& w);

  int diagonal() const noexcept { return diagonal_; }
  int it() const noexcept { return it_; }
  bool fixup() const noexcept { return fixup_; }
  KernelKind kernel() const noexcept { return kernel_; }

  int nlines() const noexcept { return static_cast<int>(lines_.size()); }
  bool empty() const noexcept { return lines_.empty(); }
  const std::vector<LineCoord>& lines() const noexcept { return lines_; }
  const std::vector<ChunkDesc>& chunks() const noexcept { return chunks_; }

  // --- bundling arithmetic (shared with the audit / cluster paths) ----

  /// Diagonals in one pipeline block (some near the corners are empty).
  static int diagonals_per_block(const SweepConfig& cfg, int jt) noexcept {
    return jt + cfg.mk + cfg.mmi - 2;
  }

  /// I-lines on diagonal @p diagonal of an (mmi x mk x jt) block.
  static int lines_on_diagonal(const SweepConfig& cfg, int jt,
                               int diagonal) noexcept;

  /// Chunks @p nlines lines split into (full bundles, remainder last).
  static int chunk_count(int nlines) noexcept;

  /// Width of chunk @p chunk in a plan over @p nlines lines.
  static int chunk_width(int nlines, int chunk) noexcept;

 private:
  int diagonal_ = 0;
  int it_ = 0;
  bool fixup_ = false;
  KernelKind kernel_ = KernelKind::kSimd;
  std::vector<LineCoord> lines_;
  std::vector<ChunkDesc> chunks_;
};

}  // namespace cellsweep::sweep
