#include "spu/trace.h"

#include <stdexcept>

namespace cellsweep::spu {

const char* op_name(Op op) {
  switch (op) {
    case Op::kFmaDouble:  return "dfma";
    case Op::kMulDouble:  return "dfm";
    case Op::kAddDouble:  return "dfa";
    case Op::kCmpDouble:  return "dfcgt";
    case Op::kFmaSingle:  return "fma";
    case Op::kMulSingle:  return "fm";
    case Op::kAddSingle:  return "fa";
    case Op::kCmpSingle:  return "fcgt";
    case Op::kFixed:      return "ai";
    case Op::kSelect:     return "selb";
    case Op::kLoad:       return "lqd";
    case Op::kStore:      return "stqd";
    case Op::kShuffle:    return "shufb";
    case Op::kBranch:     return "br";
    case Op::kBranchMiss: return "br!";
    case Op::kChannel:    return "rdch";
    case Op::kCount:      break;
  }
  return "?";
}

std::uint64_t Trace::count(Op op) const noexcept {
  std::uint64_t n = 0;
  for (const auto& inst : insts)
    if (inst.op == op) ++n;
  return n;
}

thread_local TraceRecorder* TraceRecorder::active_ = nullptr;

TraceRecorder::TraceRecorder() {
  if (active_ != nullptr)
    throw std::logic_error("TraceRecorder: another recorder is active");
  active_ = this;
}

TraceRecorder::~TraceRecorder() { active_ = nullptr; }

ValueId TraceRecorder::record(Op op, ValueId src0, ValueId src1, ValueId src2,
                              std::uint64_t flops) {
  const ValueId dst = next_value_++;
  trace_.insts.push_back(TracedInst{op, dst, src0, src1, src2});
  trace_.flops += flops;
  return dst;
}

Trace TraceRecorder::take_trace() noexcept {
  Trace t = std::move(trace_);
  trace_ = Trace{};
  return t;
}

}  // namespace cellsweep::spu
