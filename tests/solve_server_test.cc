// core::SolveServer end to end: multi-tenant solves on one simulated
// chip. The load-bearing contracts:
//   * physics is bitwise independent of tenancy -- a deck solved while
//     another tenant shares the chip produces the same solve, checksum
//     and residual as a solo run (only host scheduling and the
//     simulated SPE partition differ);
//   * a plan-cache hit is invisible in the results: resubmitting a deck
//     yields a byte-identical RunReport, just cheaper to plan;
//   * admission is typed and airtight: unparsable, lint-rejected and
//     over-budget jobs throw AdmissionError with the right reason and
//     never reach a worker.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/plan_cache.h"
#include "server/solve_server.h"

namespace cellsweep::core {
namespace {

// Mirrors examples/decks/tiny8.deck / tiny8.stencil: fast enough to
// solve functionally many times per test run.
const char* const kTinyDeck =
    "it 8  jt 8  kt 8\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4  mmi 3\n"
    "sn 6  moments 6\n"
    "iterations 2  fixup_from 1\n"
    "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";

const char* const kTinyStencil =
    "nx 8  ny 8  nz 8\n"
    "bx 4  by 4  bz 4\n"
    "iterations 2\n";

JobRequest sweep_req(const std::string& name) {
  JobRequest req;
  req.kind = JobKind::kSweep;
  req.name = name;
  req.text = kTinyDeck;
  req.mode = RunMode::kFunctional;
  return req;
}

JobRequest stencil_req(const std::string& name) {
  JobRequest req;
  req.kind = JobKind::kStencil;
  req.name = name;
  req.text = kTinyStencil;
  req.mode = RunMode::kFunctional;
  return req;
}

AdmissionError::Reason reason_of(SolveServer& server,
                                 const JobRequest& req) {
  try {
    server.submit(req);
  } catch (const AdmissionError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "submit() accepted a job that must be rejected";
  return AdmissionError::Reason::kParse;
}

TEST(SolveServer, RunsAMixedStreamToCompletion) {
  ServerConfig cfg;
  cfg.tenants = 2;
  cfg.host_threads = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 2; ++i) {
    server.submit(sweep_req("sweep-" + std::to_string(i)));
    server.submit(stencil_req("stencil-" + std::to_string(i)));
  }
  const std::vector<JobResult> results = server.drain();
  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_GT(r.report.seconds, 0.0) << r.name;
  }
  const SolveServer::Stats st = server.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed, 4u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.rejected, 0u);
  // Both tenants held chip claims at some point.
  EXPECT_GE(server.allocator_stats().claims, 4u);
}

TEST(SolveServer, TenancyNeverPerturbsThePhysics) {
  // Solo reference: one tenant, whole chip, one job at a time.
  JobResult solo_sweep, solo_stencil;
  {
    SolveServer solo(ServerConfig{});
    solo_sweep = solo.wait(solo.submit(sweep_req("solo")));
    solo_stencil = solo.wait(solo.submit(stencil_req("solo")));
  }
  ASSERT_TRUE(solo_sweep.ok);
  ASSERT_TRUE(solo_stencil.ok);
  ASSERT_TRUE(solo_sweep.report.solve.has_value());

  // Contended run: two tenants racing for the same chip and host pool.
  ServerConfig cfg;
  cfg.tenants = 2;
  cfg.host_threads = 2;
  SolveServer server(cfg);
  for (int i = 0; i < 3; ++i) {
    server.submit(sweep_req("sweep-" + std::to_string(i)));
    server.submit(stencil_req("stencil-" + std::to_string(i)));
  }
  for (const JobResult& r : server.drain()) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
    if (r.kind == JobKind::kSweep) {
      ASSERT_TRUE(r.report.solve.has_value()) << r.name;
      EXPECT_EQ(r.report.solve->final_change,
                solo_sweep.report.solve->final_change) << r.name;
      EXPECT_EQ(r.report.solve->iterations,
                solo_sweep.report.solve->iterations) << r.name;
      EXPECT_EQ(r.report.absorption, solo_sweep.report.absorption)
          << r.name;
      EXPECT_EQ(r.report.leakage.total(), solo_sweep.report.leakage.total())
          << r.name;
      EXPECT_EQ(r.report.flops, solo_sweep.report.flops) << r.name;
      EXPECT_EQ(r.report.cell_solves, solo_sweep.report.cell_solves)
          << r.name;
    } else {
      EXPECT_EQ(r.checksum, solo_stencil.checksum) << r.name;
      EXPECT_EQ(r.residual, solo_stencil.residual) << r.name;
      EXPECT_EQ(r.report.flops, solo_stencil.report.flops) << r.name;
    }
  }
}

TEST(SolveServer, PlanCacheHitIsByteIdentical) {
  SolveServer server(ServerConfig{});  // one tenant: runs serialize
  const JobResult first = server.wait(server.submit(sweep_req("cold")));
  const JobResult second = server.wait(server.submit(sweep_req("warm")));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  // The cached quadrature + warmed kernel calibration must change
  // nothing observable: every metric byte-identical.
  EXPECT_EQ(first.report.seconds, second.report.seconds);
  EXPECT_EQ(first.report.grind_seconds, second.report.grind_seconds);
  EXPECT_EQ(first.report.traffic_bytes, second.report.traffic_bytes);
  EXPECT_EQ(first.report.flops, second.report.flops);
  EXPECT_EQ(first.report.dma_commands, second.report.dma_commands);
  EXPECT_EQ(first.report.solve->final_change,
            second.report.solve->final_change);

  // Stencil specs cache under a separate fingerprint kind.
  const JobResult s1 = server.wait(server.submit(stencil_req("s-cold")));
  const JobResult s2 = server.wait(server.submit(stencil_req("s-warm")));
  EXPECT_FALSE(s1.plan_cache_hit);
  EXPECT_TRUE(s2.plan_cache_hit);
  EXPECT_EQ(s1.checksum, s2.checksum);
  EXPECT_EQ(s1.report.seconds, s2.report.seconds);

  const PlanCache::Stats pc = server.plan_cache_stats();
  EXPECT_EQ(pc.entries, 2u);
  EXPECT_GE(pc.hits, 2u);
}

TEST(SolveServer, AdmissionRejectsUnparsableInput) {
  SolveServer server(ServerConfig{});
  JobRequest req = sweep_req("garbage");
  req.text = "this is not a deck\n";
  EXPECT_EQ(reason_of(server, req), AdmissionError::Reason::kParse);
  JobRequest sreq = stencil_req("garbage");
  sreq.text = "nx banana\n";
  EXPECT_EQ(reason_of(server, sreq), AdmissionError::Reason::kParse);
  EXPECT_EQ(server.stats().rejected, 2u);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(SolveServer, AdmissionRejectsOverLsBudgetDeck) {
  // The tiny deck needs a few tens of KB of simulated LS; a budget just
  // above the fixed overhead but below the buffer footprint must bounce
  // it with the typed reason, before any scheduling.
  ServerConfig cfg;
  cfg.ls_budget_bytes = 5 * 1024;
  SolveServer server(cfg);
  EXPECT_EQ(reason_of(server, sweep_req("too-big")),
            AdmissionError::Reason::kLsBudget);
  EXPECT_EQ(reason_of(server, stencil_req("too-big")),
            AdmissionError::Reason::kLsBudget);
  EXPECT_EQ(server.stats().rejected, 2u);
  // The same deck is admitted once the budget allows it.
  ServerConfig roomy;
  roomy.ls_budget_bytes = 256 * 1024;
  SolveServer ok_server(roomy);
  EXPECT_TRUE(ok_server.wait(ok_server.submit(sweep_req("fits"))).ok);
}

TEST(SolveServer, AdmissionRejectsOverGridBudgetDeck) {
  ServerConfig cfg;
  cfg.grid_cell_budget = 100;  // the tiny deck has 8^3 = 512 cells
  SolveServer server(cfg);
  EXPECT_EQ(reason_of(server, sweep_req("too-many-cells")),
            AdmissionError::Reason::kGridBudget);
  EXPECT_EQ(reason_of(server, stencil_req("too-many-cells")),
            AdmissionError::Reason::kGridBudget);
}

TEST(SolveServer, QueueLimitRejectsWithTypedReason) {
  ServerConfig cfg;
  cfg.tenants = 1;
  cfg.queue_limit = 1;
  SolveServer server(cfg);
  // With one tenant busy and one slot, a burst must eventually bounce.
  bool bounced = false;
  for (int i = 0; i < 64 && !bounced; ++i) {
    try {
      server.submit(sweep_req("burst-" + std::to_string(i)));
    } catch (const AdmissionError& e) {
      EXPECT_EQ(e.reason(), AdmissionError::Reason::kQueueFull);
      bounced = true;
    }
  }
  EXPECT_TRUE(bounced);
  for (const JobResult& r : server.drain()) EXPECT_TRUE(r.ok) << r.error;
}

TEST(SolveServer, WaitRejectsUnknownIds) {
  SolveServer server(ServerConfig{});
  EXPECT_THROW(server.wait(0), std::invalid_argument);
  EXPECT_THROW(server.wait(42), std::invalid_argument);
}

TEST(PlanCacheFingerprint, SeparatesKindStageAndContent) {
  const OptimizationStage s0 = OptimizationStage::kSpeLsPoke;
  const OptimizationStage s1 = OptimizationStage::kSpeSimd;
  const std::uint64_t sweep_fp = PlanCache::fingerprint("sweep", s0, "x");
  // Identical bytes submitted as a stencil spec must never collide with
  // the same bytes as a sweep deck.
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("stencil", s0, "x"));
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("sweep", s1, "x"));
  EXPECT_NE(sweep_fp, PlanCache::fingerprint("sweep", s0, "y"));
  EXPECT_EQ(sweep_fp, PlanCache::fingerprint("sweep", s0, "x"));
  // The separators are part of the hash: moving a byte across the
  // kind/content boundary changes the fingerprint.
  EXPECT_NE(PlanCache::fingerprint("ab", s0, "c"),
            PlanCache::fingerprint("a", s0, "bc"));
}

}  // namespace
}  // namespace cellsweep::core
