#include "cellsim/eib_rings.h"

#include <algorithm>
#include <stdexcept>

namespace cellsweep::cell {

BusElement spe_element(int spe_index) {
  switch (spe_index) {
    case 0: return BusElement::kSpe0;
    case 1: return BusElement::kSpe1;
    case 2: return BusElement::kSpe2;
    case 3: return BusElement::kSpe3;
    case 4: return BusElement::kSpe4;
    case 5: return BusElement::kSpe5;
    case 6: return BusElement::kSpe6;
    case 7: return BusElement::kSpe7;
    default:
      throw std::out_of_range("spe_element: index must be 0..7");
  }
}

EibRings::EibRings(const CellSpec& spec)
    // 16 bytes per bus cycle at half the CPU clock; four rings give the
    // 204.8 GB/s aggregate the paper quotes (4 x 25.6 GB/s at 3.2 GHz).
    : ring_rate_(16.0 * spec.clock_hz / 2.0) {}

RingGrant EibRings::transfer(sim::Tick now, BusElement src, BusElement dst,
                             double bytes) {
  if (src == dst)
    throw std::invalid_argument("EibRings: src and dst must differ");
  if (bytes < 0) throw std::invalid_argument("EibRings: negative bytes");

  const int s = static_cast<int>(src);
  const int d = static_cast<int>(dst);
  const int cw_hops = (d - s + kBusElements) % kBusElements;
  const int ccw_hops = kBusElements - cw_hops;
  const sim::Tick duration = sim::ticks_for_bytes(bytes, ring_rate_);

  // Candidate (ring, direction) choices; the arbiter never routes the
  // long way around (> half the ring).
  RingGrant best{};
  bool have = false;
  for (int ring = 0; ring < 4; ++ring) {
    for (int dir = 0; dir < 2; ++dir) {
      const bool clockwise = dir == 0;
      const int hops = clockwise ? cw_hops : ccw_hops;
      if (hops > kBusElements / 2) continue;
      // Earliest time every traversed segment is free.
      auto& segs = free_at_[ring][dir];
      sim::Tick start = now;
      for (int h = 0; h < hops; ++h) {
        const int seg = clockwise ? (s + h) % kBusElements
                                  : (s - 1 - h + 2 * kBusElements) %
                                        kBusElements;
        start = std::max(start, segs[seg]);
      }
      const sim::Tick done = start + duration;
      if (!have || done < best.done ||
          (done == best.done && hops < best.hops)) {
        best = RingGrant{ring, clockwise, hops, start, done};
        have = true;
      }
    }
  }
  if (!have)
    throw std::logic_error("EibRings: no feasible path (unreachable)");

  // Occupy the chosen path.
  auto& segs = free_at_[best.ring][best.clockwise ? 0 : 1];
  for (int h = 0; h < best.hops; ++h) {
    const int seg = best.clockwise
                        ? (s + h) % kBusElements
                        : (s - 1 - h + 2 * kBusElements) % kBusElements;
    segs[seg] = best.done;
  }
  bytes_ += bytes;
  ++transfers_;
  return best;
}

void EibRings::reset() {
  for (auto& ring : free_at_)
    for (auto& dir : ring) dir.fill(0);
  bytes_ = 0;
  transfers_ = 0;
}

}  // namespace cellsweep::cell
