#include "util/mutex.h"

#include <string>

namespace cellsweep::util {

#if CELLSWEEP_CONCURRENCY_CHECK

namespace {

// Per-thread stack of held mutexes. Depth is bounded by the deepest
// legal nesting (currently 2: ThreadPool fork -> state) plus slack for
// tests; overflow degrades to not-checked rather than to a false
// positive.
constexpr int kMaxHeld = 16;

struct HeldStack {
  const Mutex* items[kMaxHeld];
  int count = 0;
};

thread_local HeldStack tl_held;

std::string describe(const Mutex& m) {
  return std::string(m.name()) + " (rank " + std::to_string(m.rank()) + ")";
}

}  // namespace

void Mutex::rank_check_acquire() const {
  const HeldStack& held = tl_held;
  for (int i = 0; i < held.count; ++i) {
    const Mutex* h = held.items[i];
    if (h == this) {
      concurrency_violation("recursive acquisition of " + describe(*this));
      return;
    }
    if (h->rank_ >= rank_) {
      concurrency_violation(
          "lock-rank order violation: acquiring " + describe(*this) +
          " while holding " + describe(*h) +
          " -- acquisition order must be strictly rank-increasing "
          "(see src/util/lock_ranks.h)");
      return;
    }
  }
}

void Mutex::rank_push() const {
  HeldStack& held = tl_held;
  if (held.count < kMaxHeld) held.items[held.count++] = this;
}

void Mutex::rank_pop() const {
  HeldStack& held = tl_held;
  // Locks are almost always released in LIFO order, but out-of-order
  // release (hand-over-hand) is legal: remove by search from the top.
  for (int i = held.count - 1; i >= 0; --i) {
    if (held.items[i] != this) continue;
    for (int j = i; j + 1 < held.count; ++j) held.items[j] = held.items[j + 1];
    --held.count;
    return;
  }
  // Not on the stack: either the stack overflowed (tolerated) or this
  // is a genuine unlock-without-lock. With a bounded legal nesting
  // depth the former cannot happen in-tree, so report.
  if (held.count < kMaxHeld)
    concurrency_violation("unlocking " + describe(*this) +
                          " which this thread does not hold");
}

void Mutex::lock() {
  rank_check_acquire();
  mu_.lock();
  rank_push();
}

void Mutex::unlock() {
  rank_pop();
  mu_.unlock();
}

bool Mutex::try_lock() {
  rank_check_acquire();
  if (!mu_.try_lock()) return false;
  rank_push();
  return true;
}

#else  // !CELLSWEEP_CONCURRENCY_CHECK

void Mutex::rank_check_acquire() const {}
void Mutex::rank_push() const {}
void Mutex::rank_pop() const {}
void Mutex::lock() { mu_.lock(); }
void Mutex::unlock() { mu_.unlock(); }
bool Mutex::try_lock() { return mu_.try_lock(); }

#endif  // CELLSWEEP_CONCURRENCY_CHECK

void CondVar::wait(Mutex& mu) {
  // Adopt the already-held native mutex, block, and give ownership
  // back without running our rank bookkeeping: the waiter logically
  // holds the lock for the whole wait (the TSA annotation says the
  // same thing to the static analysis).
  std::unique_lock<std::mutex> native(mu.native_handle(), std::adopt_lock);
  cv_.wait(native);
  native.release();
}

}  // namespace cellsweep::util
