// Inner Sn solve kernels: one I-line recursion per angle.
//
// This is the computational core the paper spends Section 5 optimizing
// (its Figure 8). For each cell along an I-line, with three known
// inflows (I, J, K faces), the diamond-difference balance equation
// yields the cell-center flux and three outflows:
//
//   phi  = (q + ci*phi_i + cj*phi_j + ck*phi_k) / (sigt + ci + cj + ck)
//   out_d = 2*phi - in_d                 with  c_d = 2*|mu_d| / delta_d
//
// q is assembled from the source moments (q = sum_n pn[n]*Src[n], the
// scalar form of Figure 6) and the cell flux is accumulated back into
// the flux moments (Flux[n] += w*pn[n]*phi, Figure 6 verbatim).
//
// If an outflow goes negative in an optically thick cell, the standard
// set-to-zero fixup re-solves the balance with that face's outflow
// pinned to zero ("do_fixups" in the paper's pseudo-code).
//
// Two kernels implement the same math:
//   * sweep_line_scalar  -- straight scalar code (the PPE / pre-SIMD
//     SPE code path);
//   * the SIMD bundle kernel in kernel_simd.h -- four "logical
//     threads" of vectorization over spu:: intrinsics (Figure 7).
// Both produce bit-identical double-precision results; the test suite
// enforces this.
#pragma once

#include <cstdint>

namespace cellsweep::sweep {

/// Inputs/outputs of one I-line solve for one angle.
template <typename Real>
struct LineArgs {
  int it = 0;    ///< cells along the line
  int dir = +1;  ///< +1: ascending i, -1: descending (octant sx)

  const Real* sigt = nullptr;  ///< per-cell total cross section line
  const Real* src = nullptr;   ///< source moments base (+ n*mstride per moment)
  Real* flux = nullptr;        ///< flux moments base (+ n*mstride)
  std::int64_t mstride = 0;    ///< stride between moments

  const Real* pn_src = nullptr;  ///< nm entries: R_n(angle)
  const Real* pn_acc = nullptr;  ///< nm entries: w * R_n(angle)
  int nm = 1;

  Real ci = Real(0);  ///< 2|mu| / dx
  Real cj = Real(0);  ///< 2|eta| / dy
  Real ck = Real(0);  ///< 2|xi| / dz

  Real* phi_j = nullptr;  ///< J-face inflow line (in) / outflow (out)
  Real* phi_k = nullptr;  ///< K-face inflow line (in) / outflow (out)
  Real* phi_i = nullptr;  ///< I-face inflow scalar (in) / outflow (out)
};

/// Statistics a kernel reports back (used by tests and the §6 audit).
struct KernelStats {
  std::uint64_t cells = 0;
  std::uint64_t fixups_applied = 0;  ///< cells that needed >= 1 face fixed
};

/// Solves one cell given its three inflows; shared by both kernels'
/// fixup path. Returns the cell flux and updates the in/out faces.
/// Marked always-inline-able: header-only on purpose.
template <typename Real>
struct CellSolve {
  Real phi;    ///< cell-center angular flux
  Real out_i;  ///< I outflow
  Real out_j;  ///< J outflow
  Real out_k;  ///< K outflow
  bool fixed;  ///< true if any face was fixed up
};

/// Performs the diamond solve with optional set-to-zero fixup.
template <typename Real>
CellSolve<Real> solve_cell(Real q, Real sigt, Real ci, Real cj, Real ck,
                           Real in_i, Real in_j, Real in_k, bool fixup) {
  const Real num = q + ci * in_i + cj * in_j + ck * in_k;
  const Real den = sigt + ci + cj + ck;
  Real phi = num / den;
  Real oi = Real(2) * phi - in_i;
  Real oj = Real(2) * phi - in_j;
  Real ok = Real(2) * phi - in_k;

  CellSolve<Real> r{phi, oi, oj, ok, false};
  if (!fixup || (oi >= Real(0) && oj >= Real(0) && ok >= Real(0))) return r;

  // Set-to-zero fixup: pin each newly negative outflow to zero and
  // re-solve the balance. A fixed face contributes (c/2)*in to the
  // numerator and leaves the denominator; at most three rounds since
  // each round fixes at least one additional face.
  bool fi = false, fj = false, fk = false;
  for (int round = 0; round < 3; ++round) {
    fi = fi || oi < Real(0);
    fj = fj || oj < Real(0);
    fk = fk || ok < Real(0);
    Real n2 = q;
    Real d2 = sigt;
    if (fi) n2 += Real(0.5) * ci * in_i; else { n2 += ci * in_i; d2 += ci; }
    if (fj) n2 += Real(0.5) * cj * in_j; else { n2 += cj * in_j; d2 += cj; }
    if (fk) n2 += Real(0.5) * ck * in_k; else { n2 += ck * in_k; d2 += ck; }
    phi = n2 / d2;
    oi = fi ? Real(0) : Real(2) * phi - in_i;
    oj = fj ? Real(0) : Real(2) * phi - in_j;
    ok = fk ? Real(0) : Real(2) * phi - in_k;
    if (oi >= Real(0) && oj >= Real(0) && ok >= Real(0)) break;
  }
  r.phi = phi;
  r.out_i = oi;
  r.out_j = oj;
  r.out_k = ok;
  r.fixed = true;
  return r;
}

/// Scalar I-line kernel (the paper's Figure 8 in C++).
template <typename Real>
void sweep_line_scalar(const LineArgs<Real>& a, bool fixup,
                       KernelStats* stats = nullptr) {
  Real in_i = *a.phi_i;
  const int begin = a.dir > 0 ? 0 : a.it - 1;
  const int end = a.dir > 0 ? a.it : -1;
  for (int i = begin; i != end; i += a.dir) {
    // Assemble the per-angle source from the moments (Figure 6, scalar).
    Real q = Real(0);
    for (int n = 0; n < a.nm; ++n)
      q += a.pn_src[n] * a.src[static_cast<std::int64_t>(n) * a.mstride + i];

    const CellSolve<Real> c = solve_cell(q, a.sigt[i], a.ci, a.cj, a.ck,
                                         in_i, a.phi_j[i], a.phi_k[i], fixup);
    in_i = c.out_i;
    a.phi_j[i] = c.out_j;
    a.phi_k[i] = c.out_k;

    // Accumulate flux moments (Figure 6 verbatim).
    for (int n = 0; n < a.nm; ++n)
      a.flux[static_cast<std::int64_t>(n) * a.mstride + i] +=
          a.pn_acc[n] * c.phi;

    if (stats) {
      ++stats->cells;
      if (c.fixed) ++stats->fixups_applied;
    }
  }
  *a.phi_i = in_i;
}

/// Flop accounting for one cell-angle solve, following the paper's
/// counting (madd = 2 flops, divide = 1): used by the Section 6
/// compute-bound audit.
constexpr std::uint64_t flops_per_cell_solve(int nm, bool fixup) {
  // source: nm madds; balance: 3 madds + 3 adds + 1 div + ...;
  // outflows: 3 (2*phi - in); accumulate: nm madds + 1 mul (w*phi is
  // folded into pn_acc, so just nm madds).
  const std::uint64_t base = 2ULL * nm  // source madds
                             + 6        // numerator madds
                             + 3        // denominator adds
                             + 1        // divide
                             + 6        // three outflow fms
                             + 2ULL * nm;  // accumulation madds
  // The fixup test itself costs three compares; count the occasional
  // re-solve as amortized two extra flops.
  return fixup ? base + 5 : base;
}

}  // namespace cellsweep::sweep
