// Test fixture: a deliberately CYCLIC lock-order registry. Never
// included by real code -- tools/lock_rank_audit must reject it (the
// `lock_rank_audit_rejects_cycle` test pins that the cycle detector
// actually detects).
//
// The declared nesting closes a loop, and its last edge is also
// rank-decreasing; both checks must fire.
// LOCK_ORDER: kAlpha -> kBeta
// LOCK_ORDER: kBeta -> kGamma
// LOCK_ORDER: kGamma -> kAlpha
#pragma once

inline constexpr int kAlpha = 10;
inline constexpr int kBeta = 20;
inline constexpr int kGamma = 30;
