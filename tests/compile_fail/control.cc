// Control for the compile-fail battery: the same shapes as the
// deliberately broken TUs next door, written correctly. This one MUST
// compile under clang -Wthread-safety -Werror=thread-safety -- it
// proves the failures over there come from the seeded violations, not
// from the annotation wrappers themselves tripping the analysis.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() {
    cellsweep::util::MutexLock lock(mu_);
    ++count_;
  }

  int value() const {
    cellsweep::util::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable cellsweep::util::Mutex mu_{1, "Counter::mu_"};
  int count_ GUARDED_BY(mu_) = 0;
};

class Table {
 public:
  int size_locked() const REQUIRES(mu_) { return size_; }

  int size() const {
    cellsweep::util::MutexLock lock(mu_);
    return size_locked();
  }

 private:
  mutable cellsweep::util::Mutex mu_{1, "Table::mu_"};
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  Table t;
  return c.value() + t.size();
}
