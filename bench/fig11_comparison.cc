// Figure 11: "Performance comparison with other processors."
//
// Paper: "The Cell BE is approximately 4.5 and 5.5 times faster than
// the Power5 and AMD Opteron ... When compared to the other processors
// in the same figure, Cell BE is about 20 times faster."
#include "bench/bench_common.h"

#include "perfmodel/processors.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Figure 11: comparison with other processors (" +
                      std::to_string(opt.cube) + "^3)");

  const core::RunReport cell =
      bench::run_stage(core::OptimizationStage::kSpeLsPoke, opt.cube);

  util::TextTable table(
      {"processor", "run time [s]", "Cell speedup", "paper speedup"});
  table.add_row({"Cell BE (this work)", bench::fmt("%.2f", cell.seconds),
                 "1.00x", "1.0x"});

  const struct {
    perf::ProcessorModel model;
    const char* paper;
  } rows[] = {
      {perf::power5(), "4.5x"},   {perf::opteron(), "5.5x"},
      {perf::itanium2(), "~20x"}, {perf::xeon(), "~20x"},
      {perf::ppc970(), "~20x"},
  };
  for (const auto& row : rows) {
    const double t = row.model.seconds(cell.cell_solves, cell.flops);
    table.add_row({row.model.name, bench::fmt("%.2f", t),
                   util::format_speedup(t / cell.seconds), row.paper});
  }
  table.print(std::cout);

  // The prospective comparison the paper also quotes: with the Fig. 10
  // data-transfer/synchronization optimizations, 4.5x -> 6.5x and
  // 5.5x -> 8.5x.
  const core::RunReport future =
      bench::run_stage(core::OptimizationStage::kFutureDistributed, opt.cube);
  std::cout << "\nWith the Fig. 10 transfer/sync optimizations (paper: "
               "6.5x / 8.5x):\n  vs Power5:  "
            << util::format_speedup(
                   perf::power5().seconds(cell.cell_solves, cell.flops) /
                   future.seconds)
            << "\n  vs Opteron: "
            << util::format_speedup(
                   perf::opteron().seconds(cell.cell_solves, cell.flops) /
                   future.seconds)
            << "\n";
  if (!opt.json_dir.empty()) {
    bench::BenchJson json("fig11", opt.cube);
    json.add_run("Cell BE (this work)", cell);
    json.add_run("Cell BE (Fig. 10 transfer/sync)", future);
    if (!json.write(opt.json_dir)) return 1;
  }
  return 0;
}
