#include "server/solve_server.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <utility>

#include "analysis/lint.h"
#include "core/metrics.h"
#include "core/orchestrator.h"
#include "core/streaming_pipeline.h"
#include "core/workload.h"
#include "sweep/kernel_simd.h"
#include "sweep/plan.h"
#include "util/units.h"
#include "workloads/stencil/stencil.h"

namespace cellsweep::core {

using util::MutexLock;

namespace {

std::size_t real_bytes_of(Precision p) {
  return p == Precision::kDouble ? 8 : 4;
}

std::string tenant_label(int tenant) {
  return "tenant=\"" + std::to_string(tenant) + "\"";
}

/// A run needed the fault machinery's failover path: SPEs were dead at
/// boot or died mid-run, or chunks had to be redispatched.
bool saw_failover(const RunReport& r) {
  return r.faults.enabled &&
         (r.faults.spes_disabled > 0 || r.faults.spes_failed > 0 ||
          r.faults.redispatched_chunks > 0);
}

}  // namespace

const char* job_kind_name(JobKind k) {
  return k == JobKind::kSweep ? "sweep" : "stencil";
}

const char* admission_reason_name(AdmissionError::Reason r) {
  switch (r) {
    case AdmissionError::Reason::kParse: return "parse";
    case AdmissionError::Reason::kLint: return "lint";
    case AdmissionError::Reason::kLsBudget: return "ls-budget";
    case AdmissionError::Reason::kGridBudget: return "grid-budget";
    case AdmissionError::Reason::kQueueFull: return "queue-full";
    case AdmissionError::Reason::kShutdown: return "shutdown";
  }
  return "unknown";
}

SolveServer::SolveServer(const ServerConfig& cfg)
    : cfg_(cfg),
      base_(CellSweepConfig::from_stage(cfg.stage)),
      pool_(std::max(1, cfg.host_threads)),
      alloc_(base_.chip.num_spes),
      cache_(cfg.plan_cache_capacity),
      recorder_(cfg.flight_recorder_capacity) {
  cfg_.tenants = std::max(1, cfg_.tenants);
  cfg_.queue_limit = std::max<std::size_t>(1, cfg_.queue_limit);
  base_.faults = cfg_.faults;
  workers_.reserve(static_cast<std::size_t>(cfg_.tenants));
  for (int t = 0; t < cfg_.tenants; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

SolveServer::~SolveServer() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_queue_.notify_all();
  join_workers();
}

void SolveServer::join_workers() {
  {
    MutexLock lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  for (std::thread& w : workers_) w.join();
}

void SolveServer::stop() {
  std::vector<Job> cancelled;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    while (!queue_.empty()) {
      cancelled.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  cv_queue_.notify_all();

  // Publish every cancelled job as a cancelled result carrying the
  // partial lifecycle trace it accumulated (admission + enqueue stamps;
  // complete stays false). drain()/wait() then see them like any other
  // finished job instead of hanging on results that will never come.
  // No per-job flight dump here: a stop() storm is routine shutdown,
  // and the summary "stop" event below tells the story.
  const std::size_t n = cancelled.size();
  for (Job& job : cancelled)
    publish_cancelled(std::move(job),
                      "cancelled: server stopped before the job ran", "stop",
                      /*dump=*/false);
  recorder_.record(clock_.now_s(), "stop", -1, -1,
                   "cancelled=" + std::to_string(n));
  join_workers();
}

bool SolveServer::cancel(int id) {
  Job queued;
  bool was_queued = false;
  {
    MutexLock lock(mu_);
    if (id < 1 || id >= next_id_) return false;
    if (done_.find(id) != done_.end()) return false;  // already finished
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->id != id) continue;
      queued = std::move(*it);
      queue_.erase(it);
      was_queued = true;
      break;
    }
  }
  if (was_queued) {
    publish_cancelled(std::move(queued),
                      "cancelled: job cancelled while queued", "cancel",
                      /*dump=*/true);
    return true;
  }
  // Not queued and not done: the job is in a worker's hands. Flip its
  // cooperative flag; the pipeline aborts at the next wave boundary
  // (or the worker notices before starting the run). The flag may
  // already be gone if the result was published between our two looks
  // -- that is the benign cancel-vs-completion race.
  MutexLock lock(cancel_mu_);
  auto it = cancel_flags_.find(id);
  if (it == cancel_flags_.end()) return false;
  it->second->store(true, std::memory_order_relaxed);
  return true;
}

void SolveServer::publish_cancelled(Job&& job, const std::string& why,
                                    const char* reason, bool dump) {
  job.trace.report_s = clock_.now_s();
  recorder_.record(job.trace.report_s, "cancel", job.id, job.trace.tenant,
                   std::string("reason=") + reason + " name=" +
                       (job.req.name.empty() ? "?" : job.req.name));
  metrics_.counter_add("cellsweep_jobs_cancelled_total",
                       std::string("reason=\"") + reason + "\"", 1.0,
                       "Jobs cancelled before completing, by reason");
  // Dump before publishing: a client woken by the cancelled result
  // must be able to see the post-mortem file already on disk.
  if (dump) dump_flight(reason);
  JobResult r;
  r.id = job.id;
  r.name = job.req.name;
  r.kind = job.req.kind;
  r.ok = false;
  r.cancelled = true;
  r.error = why;
  r.trace = job.trace;
  {
    MutexLock lock(mu_);
    ++stats_.cancelled;
    done_.emplace(job.id, std::move(r));
  }
  unregister_cancel_flag(job.id);
  cv_done_.notify_all();
}

int SolveServer::tenant_weight(int tenant) const noexcept {
  if (tenant < 0 ||
      tenant >= static_cast<int>(cfg_.tenant_weights.size()))
    return 1;
  return std::max(1, cfg_.tenant_weights[static_cast<std::size_t>(tenant)]);
}

int SolveServer::tenant_quota(int tenant) const noexcept {
  if (tenant < 0 || tenant >= static_cast<int>(cfg_.tenant_quotas.size()))
    return 0;
  return std::max(0, cfg_.tenant_quotas[static_cast<std::size_t>(tenant)]);
}

void SolveServer::unregister_cancel_flag(int id) {
  MutexLock lock(cancel_mu_);
  cancel_flags_.erase(id);
}

void SolveServer::admit(Job& job) const {
  // Admission reuses the static linters, so a job the server accepts
  // can never be one the runtime would reject -- and a rejected job
  // costs zero simulated (and near-zero host) work. All checks run
  // outside the queue lock.
  CellSweepConfig cfg = base_;
  long long cells = 0;
  std::size_t ls_bytes = 0;
  const std::size_t rb = real_bytes_of(cfg.precision);
  if (job.req.kind == JobKind::kSweep) {
    try {
      job.deck = sweep::parse_deck_string(job.req.text);
    } catch (const sweep::DeckError& e) {
      throw AdmissionError(AdmissionError::Reason::kParse, e.what());
    }
    cfg.sweep = job.deck->sweep;
    const analysis::Diagnostics diags = analysis::lint_deck(*job.deck, cfg);
    if (diags.has_errors())
      throw AdmissionError(AdmissionError::Reason::kLint,
                           "deck rejected by lint:\n" + diags.summary());
    const sweep::Grid& g = job.deck->problem.grid();
    cells = g.cells();
    const sweep::SnQuadrature quad(job.deck->sn_order);
    const int nm =
        sweep::MomentTable(quad, 2, job.deck->nm_cap).nm();
    ls_bytes = 4 * 1024 +
               static_cast<std::size_t>(std::max(1, cfg.buffers)) *
                   plan_chunk(ChunkShape{sweep::kBundleLines, g.it, nm, rb,
                                         cfg.aligned_rows})
                       .ls_buffer_bytes;
  } else {
    stencil::StencilSpec spec;
    try {
      spec = stencil::parse_spec_string(job.req.text);
    } catch (const stencil::StencilError& e) {
      throw AdmissionError(AdmissionError::Reason::kParse, e.what());
    }
    const analysis::Diagnostics diags = analysis::lint_stencil(spec, cfg);
    if (diags.has_errors())
      throw AdmissionError(AdmissionError::Reason::kLint,
                           "spec rejected by lint:\n" + diags.summary());
    cells = spec.cells();
    ls_bytes = 1024 +
               static_cast<std::size_t>(std::max(1, cfg.buffers)) *
                   stencil::plan_block(spec, rb, cfg.aligned_rows)
                       .ls_buffer_bytes;
    job.spec = std::make_shared<const stencil::StencilSpec>(std::move(spec));
  }
  if (cfg_.grid_cell_budget > 0 && cells > cfg_.grid_cell_budget)
    throw AdmissionError(
        AdmissionError::Reason::kGridBudget,
        "grid of " + std::to_string(cells) + " cells exceeds the server's " +
            std::to_string(cfg_.grid_cell_budget) + "-cell budget");
  if (cfg_.ls_budget_bytes > 0 && ls_bytes > cfg_.ls_budget_bytes)
    throw AdmissionError(
        AdmissionError::Reason::kLsBudget,
        "simulated-LS footprint of " + std::to_string(ls_bytes) +
            " bytes/SPE exceeds the server's " +
            std::to_string(cfg_.ls_budget_bytes) + "-byte budget");
}

int SolveServer::submit(const JobRequest& req) {
  Job job;
  job.req = req;
  job.trace.admit_start_s = clock_.now_s();
  try {
    admit(job);
  } catch (const AdmissionError& e) {
    {
      MutexLock lock(mu_);
      ++stats_.rejected;
    }
    metrics_.counter_add(
        "cellsweep_jobs_rejected_total",
        std::string("reason=\"") + admission_reason_name(e.reason()) + "\"",
        1.0, "Jobs refused at admission, by typed reason");
    recorder_.record(clock_.now_s(), "reject", -1, -1,
                     std::string("reason=") + admission_reason_name(e.reason()) +
                         " name=" + (req.name.empty() ? "?" : req.name));
    throw;
  }
  job.trace.admit_end_s = clock_.now_s();
  int id = 0;
  std::size_t depth = 0;
  try {
    MutexLock lock(mu_);
    if (stopping_) {
      ++stats_.rejected;
      throw AdmissionError(AdmissionError::Reason::kShutdown,
                           "server is stopping; no new work accepted");
    }
    if (queue_.size() >= cfg_.queue_limit) {
      ++stats_.rejected;
      throw AdmissionError(
          AdmissionError::Reason::kQueueFull,
          "queue full: " + std::to_string(queue_.size()) +
              " job(s) pending (limit " + std::to_string(cfg_.queue_limit) +
              ")");
    }
    id = next_id_++;
    job.id = id;
    if (job.req.name.empty()) job.req.name = "job-" + std::to_string(id);
    job.cancel_flag = std::make_shared<std::atomic<bool>>(false);
    {
      // Registered before the job becomes visible to any worker (the
      // queue push below happens under this same mu_ hold), so
      // cancel() can always find a live job's flag and the worker's
      // unregister after publish always finds the entry. mu_ ->
      // cancel_mu_ is the one declared nesting of the two locks.
      MutexLock cancel_lock(cancel_mu_);
      cancel_flags_.emplace(id, job.cancel_flag);
    }
    job.trace.enqueue_s = clock_.now_s();
    ++stats_.submitted;
    queue_.push_back(std::move(job));
    depth = queue_.size();
  } catch (const AdmissionError& e) {
    const char* reason = admission_reason_name(e.reason());
    metrics_.counter_add("cellsweep_jobs_rejected_total",
                         std::string("reason=\"") + reason + "\"", 1.0,
                         "Jobs refused at admission, by typed reason");
    recorder_.record(clock_.now_s(), "reject", -1, -1,
                     std::string("reason=") + reason +
                         " name=" + (req.name.empty() ? "?" : req.name));
    // An admission storm pushing the queue to its limit is exactly the
    // incident the flight recorder exists for: dump the window.
    if (e.reason() == AdmissionError::Reason::kQueueFull)
      dump_flight("queue-full");
    throw;
  }
  cv_queue_.notify_one();
  metrics_.counter_add("cellsweep_jobs_admitted_total", "", 1.0,
                       "Jobs accepted into the queue");
  metrics_.gauge_set("cellsweep_queue_depth", "",
                     static_cast<double>(depth),
                     "Jobs currently queued (not yet dequeued)");
  metrics_.series_sample("cellsweep_queue_depth_series", "", clock_.now_s(),
                         static_cast<double>(depth),
                         "Queue depth over host time");
  recorder_.record(clock_.now_s(), "admit", id, -1,
                   "depth=" + std::to_string(depth));
  return id;
}

void SolveServer::worker_loop(int tenant) {
  for (;;) {
    Job job;
    std::size_t depth = 0;
    {
      MutexLock lock(mu_);
      // Predicate re-checked under mu_ on every wakeup (and visibly so
      // to the thread-safety analysis: the guarded reads sit in this
      // function, not in a lambda analyzed without the lock context).
      while (!stopping_ && queue_.empty()) cv_queue_.wait(mu_);
      if (queue_.empty()) return;  // stopping, and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    job.trace.tenant = tenant;
    job.trace.dequeue_s = clock_.now_s();
    metrics_.gauge_set("cellsweep_queue_depth", "",
                       static_cast<double>(depth),
                       "Jobs currently queued (not yet dequeued)");
    metrics_.series_sample("cellsweep_queue_depth_series", "",
                           job.trace.dequeue_s, static_cast<double>(depth),
                           "Queue depth over host time");
    recorder_.record(job.trace.dequeue_s, "dequeue", job.id, tenant,
                     "name=" + job.req.name);

    // Cancelled while queued but snatched by cancel()'s second look
    // (or its deadline expired in the queue): publish without running.
    if (job.cancel_flag &&
        job.cancel_flag->load(std::memory_order_relaxed)) {
      publish_cancelled(std::move(job),
                        "cancelled: job cancelled while queued", "cancel",
                        /*dump=*/true);
      continue;
    }
    if (job.req.deadline_ms > 0 &&
        job.trace.queue_wait_s() * 1000.0 >
            static_cast<double>(job.req.deadline_ms)) {
      publish_cancelled(
          std::move(job),
          "cancelled: deadline of " + std::to_string(job.req.deadline_ms) +
              " ms expired while the job was queued",
          "deadline", /*dump=*/true);
      continue;
    }

    JobResult res = run_job(job);
    res.trace.report_s = clock_.now_s();
    res.trace.complete = !res.cancelled;

    // Per-tenant latency distributions: queue wait (enqueue->dequeue)
    // and service time (solver entry->exit). Recorded outside mu_.
    const std::string label = tenant_label(tenant);
    const double qw = res.trace.queue_wait_s();
    if (JobTrace::reached(qw))
      metrics_.observe("cellsweep_queue_wait_seconds", label, qw,
                       "Host seconds a job waited in the queue");
    const double svc = res.trace.service_s();
    if (JobTrace::reached(svc))
      metrics_.observe("cellsweep_service_seconds", label, svc,
                       "Host seconds a job spent in the solver");
    if (res.cancelled)
      metrics_.counter_add("cellsweep_jobs_cancelled_total",
                           "reason=\"cancel\"", 1.0,
                           "Jobs cancelled before completing, by reason");
    else
      metrics_.counter_add(res.ok ? "cellsweep_jobs_completed_total"
                                  : "cellsweep_jobs_failed_total",
                           label, 1.0,
                           res.ok ? "Jobs finished ok, by tenant"
                                  : "Jobs finished with an error, by tenant");
    if (res.ok && res.plan_cache_hit)
      metrics_.counter_add("cellsweep_plan_cache_job_hits_total", label, 1.0,
                           "Jobs that reused a cached plan, by tenant");

    const bool failover = res.ok && saw_failover(res.report);
    recorder_.record(res.trace.report_s,
                     res.cancelled ? "cancel" : res.ok ? "complete" : "fail",
                     job.id, tenant,
                     res.cancelled
                         ? "reason=cancel-mid-run name=" + job.req.name
                         : res.ok
                               ? "name=" + job.req.name
                               : "name=" + job.req.name +
                                     " error=" + res.error);
    if (failover)
      recorder_.record(
          clock_.now_s(), "failover", job.id, tenant,
          "spes_disabled=" + std::to_string(res.report.faults.spes_disabled) +
              " spes_failed=" +
              std::to_string(res.report.faults.spes_failed) +
              " redispatched=" +
              std::to_string(res.report.faults.redispatched_chunks));

    // Dump before publishing: a client woken by its result must be
    // able to see the post-mortem file already on disk.
    if (res.cancelled) dump_flight("cancel");
    else if (!res.ok) dump_flight("job-failure");
    if (failover) dump_flight("failover");

    {
      MutexLock lock(mu_);
      if (res.cancelled)
        ++stats_.cancelled;
      else
        res.ok ? ++stats_.completed : ++stats_.failed;
      done_.emplace(job.id, std::move(res));
    }
    unregister_cancel_flag(job.id);
    cv_done_.notify_all();
  }
}

JobResult SolveServer::run_job(Job& job) {
  try {
    JobResult r = job.req.kind == JobKind::kSweep ? run_sweep(job)
                                                  : run_stencil(job);
    r.trace = job.trace;
    return r;
  } catch (const RunCancelled& e) {
    // Cooperative mid-run cancellation: the pipeline unwound at a wave
    // boundary and released its SPE claim on the way out. The partial
    // trace keeps every stamp the run reached, run_end_s included.
    if (JobTrace::reached(job.trace.run_start_s) &&
        !JobTrace::reached(job.trace.run_end_s))
      job.trace.run_end_s = clock_.now_s();
    job.trace.claim_wait_s = SpeAllocator::thread_claim_wait_s();
    JobResult r;
    r.id = job.id;
    r.name = job.req.name;
    r.kind = job.req.kind;
    r.ok = false;
    r.cancelled = true;
    r.error = std::string("cancelled: ") + e.what();
    r.trace = job.trace;
    return r;
  } catch (const std::exception& e) {
    // A failing solve (fault plan kills every SPE, hazard escalation)
    // takes down its job, never the server.
    if (JobTrace::reached(job.trace.run_start_s) &&
        !JobTrace::reached(job.trace.run_end_s))
      job.trace.run_end_s = clock_.now_s();
    JobResult r;
    r.id = job.id;
    r.name = job.req.name;
    r.kind = job.req.kind;
    r.ok = false;
    r.error = e.what();
    r.trace = job.trace;
    return r;
  }
}

std::shared_ptr<const CachedPlan> SolveServer::plan_for_sweep(
    const sweep::Deck& deck, const CellSweepConfig& cfg, std::uint64_t key,
    bool& hit) {
  std::shared_ptr<const CachedPlan> plan = cache_.find(key);
  if (plan) {
    hit = true;
    return plan;
  }
  hit = false;
  auto built = std::make_shared<CachedPlan>();
  auto quad = std::make_shared<sweep::SnQuadrature>(deck.sn_order);
  built->nm = sweep::MomentTable(*quad, 2, deck.nm_cap).nm();
  if (cfg.use_spes) {
    // Warm the chunk-cost cache for every shape this deck can produce:
    // diagonals bundle into chunks of 1..kBundleLines lines, and the
    // fixup iterations price differently. The trace recording here is
    // exactly the work a cold run would do lazily.
    auto kernels = std::make_shared<KernelCostModel>(cfg.chip);
    const int it = deck.problem.grid().it;
    for (int fixup = 0; fixup < 2; ++fixup)
      for (int nlines = 1; nlines <= sweep::kBundleLines; ++nlines)
        kernels->chunk_cost(cfg.kernel, cfg.precision, nlines, it,
                            built->nm, fixup != 0, cfg.gotos_eliminated);
    built->kernels = std::move(kernels);
  }
  built->quadrature = std::move(quad);
  return cache_.insert(key, std::move(built));
}

JobResult SolveServer::run_sweep(Job& job) {
  sweep::Deck& deck = *job.deck;
  CellSweepConfig cfg = base_;
  cfg.sweep = deck.sweep;
  cfg.sweep.kernel = cfg.kernel;
  cfg.sweep.pool = &pool_;
  cfg.spe_allocator = &alloc_;
  cfg.min_spes = cfg_.min_spes;
  cfg.claim_weight = tenant_weight(job.trace.tenant);
  cfg.claim_quota = tenant_quota(job.trace.tenant);
  cfg.cancel = job.cancel_flag.get();

  const std::uint64_t key = PlanCache::fingerprint(
      job_kind_name(JobKind::kSweep), cfg_.stage, job.req.text);
  bool hit = false;
  job.trace.plan_start_s = clock_.now_s();
  const std::shared_ptr<const CachedPlan> plan =
      plan_for_sweep(deck, cfg, key, hit);
  job.trace.plan_end_s = clock_.now_s();
  cfg.quadrature = plan->quadrature.get();
  cfg.warm_kernels = plan->kernels.get();

  CellSweep3D solver(deck.problem, cfg, deck.sn_order, 2, deck.nm_cap);
  JobResult r;
  r.id = job.id;
  r.name = job.req.name;
  r.kind = JobKind::kSweep;
  // The solver claims SPEs on this thread: the thread-local
  // accumulator attributes exactly this job's blocked time.
  SpeAllocator::reset_thread_claim_wait();
  job.trace.run_start_s = clock_.now_s();
  r.report = solver.run(job.req.mode);
  job.trace.run_end_s = clock_.now_s();
  job.trace.claim_wait_s = SpeAllocator::thread_claim_wait_s();
  r.plan_cache_hit = hit;
  r.ok = true;
  return r;
}

JobResult SolveServer::run_stencil(Job& job) {
  CellSweepConfig cfg = base_;
  cfg.spe_allocator = &alloc_;
  cfg.min_spes = cfg_.min_spes;
  cfg.claim_weight = tenant_weight(job.trace.tenant);
  cfg.claim_quota = tenant_quota(job.trace.tenant);
  cfg.cancel = job.cancel_flag.get();

  const std::uint64_t key = PlanCache::fingerprint(
      job_kind_name(JobKind::kStencil), cfg_.stage, job.req.text);
  bool hit = false;
  job.trace.plan_start_s = clock_.now_s();
  std::shared_ptr<const CachedPlan> plan = cache_.find(key);
  if (plan) {
    hit = true;
  } else {
    auto built = std::make_shared<CachedPlan>();
    built->spec = job.spec;
    plan = cache_.insert(key, std::move(built));
  }
  job.trace.plan_end_s = clock_.now_s();

  stencil::CellStencil runner(plan->spec ? *plan->spec : *job.spec, cfg);
  SpeAllocator::reset_thread_claim_wait();
  job.trace.run_start_s = clock_.now_s();
  const stencil::StencilReport rep =
      runner.run(job.req.mode, pool_.size(), &pool_);
  job.trace.run_end_s = clock_.now_s();
  job.trace.claim_wait_s = SpeAllocator::thread_claim_wait_s();
  JobResult r;
  r.id = job.id;
  r.name = job.req.name;
  r.kind = JobKind::kStencil;
  r.report = rep.run;
  r.checksum = rep.checksum;
  r.residual = rep.residual;
  r.plan_cache_hit = hit;
  r.ok = true;
  return r;
}

JobResult SolveServer::wait(int id) {
  MutexLock lock(mu_);
  if (id < 1 || id >= next_id_)
    throw std::invalid_argument("SolveServer::wait: unknown job id " +
                                std::to_string(id));
  while (done_.find(id) == done_.end()) cv_done_.wait(mu_);
  // The result is copied out while mu_ is still held: done_ may grow
  // (and rebalance its tree) the moment the lock drops.
  return done_.at(id);
}

std::vector<JobResult> SolveServer::drain() {
  MutexLock lock(mu_);
  while (done_.size() != stats_.submitted) cv_done_.wait(mu_);
  std::vector<JobResult> all;
  all.reserve(done_.size());
  for (const auto& [id, res] : done_) all.push_back(res);
  return all;
}

SolveServer::Stats SolveServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<TracedJob> SolveServer::traced_jobs() const {
  MutexLock lock(mu_);
  std::vector<TracedJob> jobs;
  jobs.reserve(done_.size());
  // done_ is keyed by job id, so iteration is submission order.
  for (const auto& [id, res] : done_)
    jobs.push_back(TracedJob{id, res.name, res.trace});
  return jobs;
}

void SolveServer::dump_flight(const char* trigger) {
  metrics_.counter_add("cellsweep_flightrec_dumps_total",
                       std::string("trigger=\"") + trigger + "\"", 1.0,
                       "Flight-recorder dumps, by trigger");
  if (cfg_.flight_recorder_path.empty()) return;
  const int seq = dump_seq_.fetch_add(1);
  const std::string path = cfg_.flight_recorder_path + "-" +
                           std::to_string(HostClock::wall_ms()) + "-" +
                           std::to_string(seq) + ".json";
  std::ofstream out(path);
  if (out) recorder_.dump(out);
}

namespace {

/// One single-entry family for the derived (non-registry) stats.
MetricsRegistry::Family derived_family(const std::string& name,
                                       MetricType type, const char* help,
                                       double value) {
  MetricsRegistry::Family f;
  f.name = name;
  f.type = type;
  f.help = help;
  MetricsRegistry::Entry e;
  e.value = value;
  f.entries.push_back(std::move(e));
  return f;
}

}  // namespace

MetricsRegistry::Snapshot SolveServer::metrics_snapshot() const {
  MetricsRegistry::Snapshot snap = metrics_.snapshot();

  // Families derived from the component stats at call time, so one
  // snapshot covers the whole server without the components having to
  // push into the registry on their hot paths.
  const SpeAllocator::Stats as = alloc_.stats();
  const PlanCache::Stats cs = cache_.stats();
  const util::ThreadPool::Telemetry pt = pool_.telemetry();
  std::vector<MetricsRegistry::Family> extra;
  extra.push_back(derived_family("cellsweep_spe_claims_total",
                                 MetricType::kCounter,
                                 "SPE allocator claim() grants",
                                 static_cast<double>(as.claims)));
  extra.push_back(derived_family("cellsweep_spe_expands_total",
                                 MetricType::kCounter,
                                 "SPE claims grown after pressure passed",
                                 static_cast<double>(as.expands)));
  extra.push_back(derived_family("cellsweep_spe_shrinks_total",
                                 MetricType::kCounter,
                                 "SPE claims shrunk (yields and releases)",
                                 static_cast<double>(as.shrinks)));
  extra.push_back(derived_family("cellsweep_spe_waited_claims_total",
                                 MetricType::kCounter,
                                 "SPE claims that had to block",
                                 static_cast<double>(as.waited_claims)));
  extra.push_back(derived_family("cellsweep_spe_peak_tenants",
                                 MetricType::kGauge,
                                 "Most simultaneous SPE claim holders",
                                 static_cast<double>(as.peak_tenants)));
  {
    MetricsRegistry::Family f;
    f.name = "cellsweep_spe_claim_wait_seconds";
    f.type = MetricType::kHistogram;
    f.help = "Host seconds claim() calls spent blocked";
    MetricsRegistry::Entry e;
    e.hist = as.claim_wait_s;
    f.entries.push_back(std::move(e));
    extra.push_back(std::move(f));
  }
  extra.push_back(derived_family("cellsweep_plan_cache_hits_total",
                                 MetricType::kCounter, "Plan-cache hits",
                                 static_cast<double>(cs.hits)));
  extra.push_back(derived_family("cellsweep_plan_cache_misses_total",
                                 MetricType::kCounter, "Plan-cache misses",
                                 static_cast<double>(cs.misses)));
  extra.push_back(derived_family("cellsweep_plan_cache_evictions_total",
                                 MetricType::kCounter,
                                 "Plan-cache FIFO evictions",
                                 static_cast<double>(cs.evictions)));
  extra.push_back(derived_family("cellsweep_plan_cache_entries",
                                 MetricType::kGauge,
                                 "Plans currently cached",
                                 static_cast<double>(cs.entries)));
  extra.push_back(derived_family("cellsweep_pool_forks_total",
                                 MetricType::kCounter,
                                 "Host-pool parallel_for dispatches",
                                 static_cast<double>(pt.forks)));
  extra.push_back(derived_family("cellsweep_pool_items_total",
                                 MetricType::kCounter,
                                 "Host-pool work items dispatched",
                                 static_cast<double>(pt.items)));
  extra.push_back(derived_family("cellsweep_pool_peak_fork_queue",
                                 MetricType::kGauge,
                                 "Most concurrent host-pool fork callers",
                                 static_cast<double>(pt.peak_fork_queue)));
  extra.push_back(derived_family("cellsweep_pool_utilization",
                                 MetricType::kGauge,
                                 "Busy fraction of host-pool capacity "
                                 "while forks were live",
                                 pool_.utilization()));
  extra.push_back(derived_family("cellsweep_flightrec_dropped_total",
                                 MetricType::kCounter,
                                 "Events aged out of the flight recorder",
                                 static_cast<double>(recorder_.dropped())));

  // Merge, keeping the sorted-by-name snapshot contract. Derived names
  // never collide with registry names by construction.
  for (MetricsRegistry::Family& f : extra)
    snap.families.push_back(std::move(f));
  std::sort(snap.families.begin(), snap.families.end(),
            [](const MetricsRegistry::Family& a,
               const MetricsRegistry::Family& b) { return a.name < b.name; });
  return snap;
}

void write_server_metrics_json(std::ostream& os, const SolveServer& server) {
  const SolveServer::Stats st = server.stats();
  const PlanCache::Stats cs = server.plan_cache_stats();
  const SpeAllocator::Stats as = server.allocator_stats();
  const util::ThreadPool::Telemetry pt = server.pool_telemetry();
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"server\": {\n"
     << "    \"stats\": {\"submitted\": " << st.submitted
     << ", \"completed\": " << st.completed << ", \"failed\": " << st.failed
     << ", \"rejected\": " << st.rejected
     << ", \"cancelled\": " << st.cancelled << "},\n"
     << "    \"plan_cache\": {\"hits\": " << cs.hits
     << ", \"misses\": " << cs.misses << ", \"evictions\": " << cs.evictions
     << ", \"entries\": " << cs.entries << "},\n"
     << "    \"spe_allocator\": {\"claims\": " << as.claims
     << ", \"expands\": " << as.expands << ", \"shrinks\": " << as.shrinks
     << ", \"waited_claims\": " << as.waited_claims
     << ", \"peak_tenants\": " << as.peak_tenants << "},\n"
     << "    \"host_pool\": {\"forks\": " << pt.forks
     << ", \"items\": " << pt.items
     << ", \"peak_fork_queue\": " << pt.peak_fork_queue
     << ", \"utilization\": " << util::cformat("%.6f", server.pool_utilization())
     << "},\n"
     << "    \"flight_recorder\": {\"capacity\": "
     << server.flight_recorder().capacity()
     << ", \"dropped\": " << server.flight_recorder().dropped() << "},\n"
     << "    \"families\": ";
  write_snapshot_json(os, server.metrics_snapshot(), 4);
  os << "\n  }\n}\n";
}

}  // namespace cellsweep::core
