// Generic discrete-event simulation core.
//
// Note on actual usage: the Cell machine model (src/cellsim) does NOT
// run on this event queue -- core::TimingEngine advances analytic
// per-SPE clocks (SpeClock) and FIFO-server resources directly, and
// only shares the sim::Tick time base from sim/time.h. What this class
// provides today is the standalone deterministic event queue:
// simultaneous events fire in scheduling order (a monotone sequence
// number breaks ties), exercised by tests/sim_test.cc and available
// for future event-driven models that need genuine event interleaving
// rather than the analytic three-phase approximation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace cellsweep::sim {

/// Event-driven simulator with a deterministic event queue.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  Tick now() const noexcept { return now_; }

  /// Schedules @p fn to run @p delay ticks from now.
  void schedule(Tick delay, Callback fn);

  /// Schedules @p fn at absolute time @p at (must be >= now()).
  void schedule_at(Tick at, Callback fn);

  /// Runs until the event queue drains. Returns the final time.
  Tick run();

  /// Runs until the queue drains or simulated time would exceed
  /// @p deadline; events at exactly @p deadline still fire.
  Tick run_until(Tick deadline);

  /// Number of events executed so far (for tests / diagnostics).
  std::uint64_t events_executed() const noexcept { return executed_; }

  bool empty() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cellsweep::sim
