#!/usr/bin/env python3
"""Validator for the serve-mode Prometheus exposition snapshot.

Checks a text-format 0.0.4 exposition file (what `deck_runner serve
--metrics-out` writes) for the contracts scrapers rely on:

  1. Line grammar: every non-comment line is `name[{labels}] value`
     with a legal metric name, parseable labels and a float value
     (NaN / +Inf / -Inf included).
  2. Metadata: every sample's family has a preceding `# TYPE` line
     with a legal type (counter | gauge | histogram | summary |
     untyped), at most one HELP/TYPE per family, and no samples
     before their family's metadata.
  3. Counters are finite and non-negative.
  4. Histograms, per label set (ignoring `le`): `le` upper bounds are
     strictly increasing, bucket counts are non-decreasing in `le`
     order, the mandatory `+Inf` bucket exists and equals `_count`,
     and `_sum` / `_count` are present.
  5. `--require FAMILY` (repeatable): the family must expose at least
     one sample -- CI pins the server's core families this way.

Exit status: 0 valid, 1 any violation, 2 usage / unreadable input.
Used by the `check_exposition` CTest (label `static`) and the CI
serve-mode smoke step.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    """Prometheus float syntax: Go strconv plus NaN / +Inf / -Inf."""
    if text == "NaN":
        return math.nan
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def parse_labels(body):
    """`k="v",...` -> dict, or None on malformed bodies."""
    if body is None or body.strip() == "":
        return {}
    out = {}
    pos = 0
    while pos < len(body):
        m = LABEL_PAIR.match(body, pos)
        if not m:
            return None
        if m.group(1) in out:
            return None  # duplicate label name
        out[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                return None
            pos += 1
    return out


def base_family(name):
    """Histogram sample names map back to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def labelset_key(labels):
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def check(lines, required):
    errors = []
    types = {}      # family -> type
    helps = set()
    samples = {}    # family -> count of samples seen
    # histogram family -> labelset -> {"buckets": [(le, v)], "sum": x,
    # "count": n}
    hist = {}

    def err(lineno, msg):
        errors.append("line %d: %s" % (lineno, msg))

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if line.strip() == "":
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment, legal
            fam = parts[2]
            if not METRIC_NAME.match(fam):
                err(lineno, "bad family name %r in %s line" % (fam, parts[1]))
                continue
            if parts[1] == "HELP":
                if fam in helps:
                    err(lineno, "duplicate HELP for family %r" % fam)
                helps.add(fam)
            else:
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in VALID_TYPES:
                    err(lineno, "family %r has invalid type %r" % (fam, mtype))
                    continue
                if fam in types:
                    err(lineno, "duplicate TYPE for family %r" % fam)
                if fam in samples:
                    err(lineno, "TYPE for %r after its samples" % fam)
                types[fam] = mtype
            continue

        m = SAMPLE.match(line)
        if not m:
            err(lineno, "unparseable sample line %r" % line)
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels"))
        if labels is None:
            err(lineno, "malformed labels on %r" % name)
            continue
        value = parse_value(m.group("value"))
        if value is None:
            err(lineno, "bad value %r on %r" % (m.group("value"), name))
            continue
        fam = base_family(name)
        if fam not in types and name in types:
            fam = name  # e.g. a gauge literally named *_count
        if fam not in types:
            err(lineno, "sample %r has no preceding # TYPE" % name)
            continue
        samples[fam] = samples.get(fam, 0) + 1
        mtype = types[fam]

        if mtype == "counter":
            if math.isnan(value) or value < 0 or math.isinf(value):
                err(lineno, "counter %r value %s not finite and >= 0"
                    % (name, m.group("value")))
        if mtype == "histogram":
            slot = hist.setdefault(fam, {}).setdefault(
                labelset_key(labels), {"buckets": [], "sum": None,
                                       "count": None, "line": lineno})
            if name == fam + "_bucket":
                if "le" not in labels:
                    err(lineno, "%s_bucket sample without le label" % fam)
                else:
                    le = parse_value(labels["le"])
                    if le is None:
                        err(lineno, "unparseable le %r" % labels["le"])
                    else:
                        slot["buckets"].append((le, value, lineno))
            elif name == fam + "_sum":
                slot["sum"] = value
            elif name == fam + "_count":
                slot["count"] = value
            elif name == fam:
                err(lineno, "bare sample %r for histogram family" % name)

    for fam, sets in sorted(hist.items()):
        for key, slot in sorted(sets.items()):
            where = "histogram %r {%s}" % (
                fam, ", ".join("%s=%s" % kv for kv in key))
            buckets = slot["buckets"]
            if not buckets:
                errors.append("%s: no _bucket samples" % where)
                continue
            les = [b[0] for b in buckets]
            if any(les[i] >= les[i + 1] for i in range(len(les) - 1)):
                errors.append("%s: le bounds not strictly increasing" % where)
            counts = [b[1] for b in buckets]
            if any(counts[i] > counts[i + 1] for i in range(len(counts) - 1)):
                errors.append("%s: bucket counts decrease (not cumulative)"
                              % where)
            if not math.isinf(les[-1]):
                errors.append("%s: missing le=\"+Inf\" bucket" % where)
            if slot["count"] is None:
                errors.append("%s: missing _count sample" % where)
            elif math.isinf(les[-1]) and counts[-1] != slot["count"]:
                errors.append("%s: +Inf bucket %g != _count %g"
                              % (where, counts[-1], slot["count"]))
            if slot["sum"] is None:
                errors.append("%s: missing _sum sample" % where)

    for fam in required:
        if samples.get(fam, 0) == 0:
            errors.append("required family %r absent or sample-less" % fam)

    return errors


def main():
    ap = argparse.ArgumentParser(
        description="Validate a Prometheus text exposition file.")
    ap.add_argument("path", help="exposition file ('-' for stdin)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="FAMILY",
                    help="fail unless FAMILY exposes a sample (repeatable)")
    args = ap.parse_args()

    try:
        if args.path == "-":
            lines = sys.stdin.readlines()
        else:
            with open(args.path, "r", encoding="utf-8") as f:
                lines = f.readlines()
    except OSError as e:
        print("check_exposition: %s" % e, file=sys.stderr)
        return 2

    errors = check(lines, args.require)
    for e in errors:
        print("check_exposition: %s" % e, file=sys.stderr)
    if errors:
        print("check_exposition: FAIL (%d error%s)"
              % (len(errors), "" if len(errors) == 1 else "s"),
              file=sys.stderr)
        return 1
    print("check_exposition: ok (%s)" % args.path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
