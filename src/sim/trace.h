// Observability layer for the machine model: simulated-time tracing.
//
// The paper's whole argument is a time-breakdown one -- Fig. 5's ladder
// and the Section 6 bounds only persuade because every simulated second
// can be attributed to compute, DMA or synchronization. TraceSink is
// the attribution interface: the timing engine emits *complete spans*
// (named intervals of simulated time on a named track -- one track per
// SPE, the PPE, the EIB and the MIC) and counter samples (MFC queue
// occupancy) as it advances its clocks. Sinks only observe; no
// simulated tick may ever depend on a sink, so enabling tracing is
// guaranteed not to perturb the model (a test pins this).
//
// ChromeTraceWriter renders the stream as Chrome trace-event JSON
// (the chrome://tracing / Perfetto "JSON Array Format"): ts/dur are
// simulated microseconds, tracks map to thread ids. Load the file in
// chrome://tracing or https://ui.perfetto.dev to see the whole machine
// -- kernel spans, DMA issue/queue/transfer phases, sync waits and
// barrier stalls -- on one timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/concurrency_check.h"

namespace cellsweep::sim {

/// Receiver for simulated-time trace events. All hooks are observation
/// only: implementations must not feed anything back into the model.
/// Instrumented code guards every call on a null check, so "no sink"
/// costs one branch per event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Declares a named track (timeline row: "SPE0", "PPE", "MIC", ...)
  /// and returns its id for later span()/counter() calls. Declaring the
  /// same name twice returns the same id.
  virtual int track(const std::string& name) = 0;

  /// Records a complete span [start, end) on @p track. @p name is the
  /// activity ("kernel", "dma-get", ...), @p category groups activities
  /// for filtering ("compute", "dma", "sync"). Both must point to
  /// storage outliving the sink (string literals in practice).
  virtual void span(int track, const char* name, const char* category,
                    Tick start, Tick end) = 0;

  /// Records an instantaneous event (barrier crossings and the like).
  virtual void instant(int track, const char* name, const char* category,
                       Tick at) = 0;

  /// Records a counter sample (e.g. MFC queue occupancy over time).
  virtual void counter(int track, const char* name, Tick at,
                       double value) = 0;
};

/// TraceSink that accumulates events and writes Chrome trace-event
/// JSON. Events are kept in arrival order; write() may be called any
/// time (typically once, after the run). One writer serves one run on
/// one thread -- the event buffer is unlocked, and a ThreadConfined
/// guard turns cross-thread emission into a deterministic report
/// (multi-tenant runs must give each tenant its own sink).
class ChromeTraceWriter : public TraceSink {
 public:
  int track(const std::string& name) override;
  void span(int track, const char* name, const char* category, Tick start,
            Tick end) override;
  void instant(int track, const char* name, const char* category,
               Tick at) override;
  void counter(int track, const char* name, Tick at, double value) override;

  /// span() for dynamically built names (job labels in the server's
  /// host-time lifecycle tracks): the writer copies @p name into an
  /// internal pool, so callers need not keep storage alive. @p category
  /// must still be a literal.
  void span_copy(int track, const std::string& name, const char* category,
                 Tick start, Tick end);

  /// Serializes everything as a JSON object {"traceEvents": [...]}
  /// loadable by chrome://tracing and Perfetto.
  void write(std::ostream& os) const;

  std::size_t event_count() const noexcept { return events_.size(); }
  std::size_t track_count() const noexcept { return tracks_.size(); }

 private:
  enum class Phase : std::uint8_t { kSpan, kInstant, kCounter };
  struct Event {
    Phase phase;
    int track;
    const char* name;
    const char* category;  // null for counters
    Tick start;
    Tick duration;  // spans only
    double value;   // counters only
  };

  util::ThreadConfined confined_;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
  /// Storage for span_copy() names; deque: growth never moves the
  /// strings the queued events point into.
  std::deque<std::string> owned_names_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace cellsweep::sim
