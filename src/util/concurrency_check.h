// Runtime concurrency-contract checking shared by the lock-rank
// checker (util/mutex.h) and the thread-confinement guard below.
//
// CELLSWEEP_CONCURRENCY_CHECK (default 1) compiles the checks in;
// define it to 0 to strip every check to nothing. The checks are
// host-side only and O(held locks) per acquisition, so they stay on in
// all shipped build types -- the simulated clocks never see them.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#ifndef CELLSWEEP_CONCURRENCY_CHECK
#define CELLSWEEP_CONCURRENCY_CHECK 1
#endif

namespace cellsweep::util {

/// Called with a human-readable description when a concurrency
/// contract is broken (lock-rank order violation, recursive
/// acquisition, cross-thread use of a thread-confined object). The
/// handler must either throw or not return; if it returns, the process
/// aborts anyway -- the broken invariant cannot be run past.
using ConcurrencyViolationHandler = void (*)(const std::string& message);

/// Installs @p handler and returns the previous one. Passing nullptr
/// restores the default (print to stderr and abort) -- the behavior CI
/// and production runs rely on. Tests install a throwing handler to
/// assert on violations.
ConcurrencyViolationHandler set_concurrency_violation_handler(
    ConcurrencyViolationHandler handler);

/// Reports a violation through the installed handler, aborting if the
/// handler declines to throw.
void concurrency_violation(const std::string& message);

/// Debug ownership guard for objects whose concurrency contract is
/// "touched by exactly one thread": the machine-model state a tenant
/// drives (StreamingPipeline, cell::DispatchFabric) and the
/// observation sinks it feeds (analysis::Diagnostics,
/// sim::ChromeTraceWriter). The first thread to call check() becomes
/// the owner; any other thread calling check() is a violation. Copying
/// or moving yields a fresh, unowned guard (a copy is a handoff).
class ThreadConfined {
 public:
  ThreadConfined() noexcept = default;
  ThreadConfined(const ThreadConfined&) noexcept {}
  ThreadConfined& operator=(const ThreadConfined&) noexcept { return *this; }

  /// Claims ownership for the calling thread on first use; reports a
  /// violation naming @p what when any other thread calls later.
  void check(const char* what) const {
#if CELLSWEEP_CONCURRENCY_CHECK
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner == std::thread::id()) {
      if (owner_.compare_exchange_strong(owner, self,
                                         std::memory_order_relaxed))
        return;
    }
    if (owner != self) report_cross_thread(what);
#else
    (void)what;
#endif
  }

  /// Releases ownership at a quiescent point (e.g. before handing the
  /// object to another thread).
  void reset() noexcept {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }

 private:
  void report_cross_thread(const char* what) const;

  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace cellsweep::util
