// Main-memory (MIC) and interconnect (EIB) models.
//
// The MIC provides 25.6 GB/s of peak bandwidth shared by all eight
// SPEs, the PPE and I/O -- the paper shows this is Sweep3D's ultimate
// bound (Section 6: 17.6 GB moved => >= 0.7 s). Main memory is spread
// over 16 interleaved banks; transfers that concentrate on few banks
// lose burst efficiency, which is why the port "adds offsets to the
// array allocation to more fairly spread the memory accesses across the
// 16 main memory banks" (Section 5). The EIB moves 204.8 GB/s
// aggregate; it only binds for LS-to-LS traffic patterns.
#pragma once

#include <cstdint>

#include "cellsim/spec.h"
#include "sim/resource.h"
#include "sim/time.h"

namespace cellsweep::cell {

/// Memory Interface Controller: FIFO bandwidth server plus the bank
/// interleaving efficiency model.
class Mic {
 public:
  explicit Mic(const CellSpec& spec);

  /// Effective streaming efficiency for a request whose addresses fall
  /// on @p banks_touched of the @p memory_banks banks with roughly even
  /// load. Touching all banks streams at peak; hammering one bank is
  /// limited by per-bank bandwidth.
  double bank_efficiency(int banks_touched) const;

  /// Submits a transfer of @p bytes that starts no earlier than @p now,
  /// pays @p overhead of fixed startup, and streams with
  /// @p efficiency in (0,1]. @p elements transfer elements each charge
  /// one DRAM burst-turnaround gap of port occupancy (64-bit: a
  /// multi-GB request in quadword elements overflows int). Returns the
  /// completion time.
  sim::Tick submit(sim::Tick now, double bytes, sim::Tick overhead,
                   double efficiency, std::uint64_t elements = 1);

  /// Logical payload bytes (the Section 6 "17.6 Gbytes" audit counts
  /// these, not the efficiency-inflated port occupancy).
  double bytes_moved() const noexcept { return logical_bytes_; }
  std::uint64_t requests() const noexcept { return port_.requests(); }
  sim::Tick busy_ticks() const noexcept { return port_.busy_ticks(); }
  double peak_rate() const noexcept { return port_.rate(); }
  void reset() noexcept {
    port_.reset();
    logical_bytes_ = 0.0;
  }

 private:
  CellSpec spec_;
  sim::BandwidthResource port_;
  double logical_bytes_ = 0.0;
};

/// Element Interconnect Bus: aggregate bandwidth server. Every DMA
/// payload crosses it; completion of a main-memory DMA is the later of
/// the EIB and MIC finish times.
class Eib {
 public:
  explicit Eib(const CellSpec& spec)
      : ring_("EIB", spec.eib_bytes_per_s) {}

  sim::Tick submit(sim::Tick now, double bytes) {
    return ring_.submit(now, bytes);
  }

  double bytes_moved() const noexcept { return ring_.bytes_moved(); }
  sim::Tick busy_ticks() const noexcept { return ring_.busy_ticks(); }
  void reset() noexcept { ring_.reset(); }

 private:
  sim::BandwidthResource ring_;
};

}  // namespace cellsweep::cell
