// Tests for the machine-model hazard checker: the observation-only
// contract (bit-identical timing with the checker attached), a clean
// bill of health for every ladder stage's streaming protocol, and
// negative tests that feed deliberately broken event streams and
// assert the diagnostic carries the rule, the region name and the
// simulated timestamp.
#include <gtest/gtest.h>

#include <string>

#include "analysis/diagnostics.h"
#include "analysis/hazard.h"
#include "core/orchestrator.h"

namespace cellsweep {
namespace {

core::RunReport run_cube(int cube, cell::MachineObserver* observer,
                         core::OptimizationStage stage =
                             core::OptimizationStage::kSpeLsPoke) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = 2;
  cfg.sweep.fixup_from_iteration = 1;
  cfg.sweep.mk = std::min(cfg.sweep.mk, cube);
  while (cube % cfg.sweep.mk != 0) --cfg.sweep.mk;
  cfg.hazard = observer;
  core::CellSweep3D runner(p, cfg);
  return runner.run(core::RunMode::kTraceDriven);
}

TEST(Hazard, CheckerDoesNotPerturbSimulatedTime) {
  // The central contract, same as TraceSink's: checking is observation
  // only. The same run with the checker attached must produce
  // bit-identical timing -- and must find nothing to report.
  const core::RunReport plain = run_cube(12, nullptr);
  analysis::Diagnostics diags;
  analysis::HazardChecker checker(&diags, cell::CellSpec{});
  const core::RunReport checked = run_cube(12, &checker);

  EXPECT_EQ(plain.seconds, checked.seconds);
  EXPECT_EQ(plain.traffic_bytes, checked.traffic_bytes);
  EXPECT_EQ(plain.dma_commands, checked.dma_commands);
  EXPECT_EQ(plain.dma_transfers, checked.dma_transfers);
  EXPECT_EQ(plain.chunks, checked.chunks);
  EXPECT_EQ(plain.flops, checked.flops);
  EXPECT_TRUE(diags.empty()) << diags.summary();
}

TEST(Hazard, EveryLadderStageStreamsCleanly) {
  // Single buffering, double buffering, DMA lists, LS-poke dispatch and
  // the distributed Fig. 10 variant all obey the CBEA discipline.
  const core::OptimizationStage stages[] = {
      core::OptimizationStage::kSpeInitial,
      core::OptimizationStage::kSpeBuffered,
      core::OptimizationStage::kSpeDmaLists,
      core::OptimizationStage::kSpeLsPoke,
      core::OptimizationStage::kFutureBigDma,
      core::OptimizationStage::kFutureDistributed,
      core::OptimizationStage::kFutureSingle,
  };
  for (const core::OptimizationStage stage : stages) {
    analysis::Diagnostics diags;
    analysis::HazardChecker checker(&diags, cell::CellSpec{});
    run_cube(12, &checker, stage);
    EXPECT_TRUE(diags.empty())
        << core::stage_name(stage) << ":\n"
        << diags.summary();
  }
}

// ---- negative tests: synthetic event streams ------------------------

class HazardRules : public ::testing::Test {
 protected:
  HazardRules() : checker_(&diags_, spec_) {
    buffer0_ = cell::LocalStore::Region{"chunk-buffer-0", 0, 64 * 1024};
    checker_.on_ls_alloc(0, buffer0_, spec_.local_store_bytes);
  }

  cell::DmaRequest request(cell::DmaDir dir, unsigned tag, std::size_t offset,
                           std::size_t bytes) {
    cell::DmaRequest req;
    req.dir = dir;
    req.tag = tag;
    req.total_bytes = bytes;
    req.element_bytes = 512;
    req.ls_offset = offset;
    req.ls_bytes = bytes;
    return req;
  }

  cell::DmaCompletion completes(sim::Tick done) {
    return cell::DmaCompletion{done, done, done};
  }

  /// The single finding, asserted to carry @p rule, the region name and
  /// a simulated timestamp.
  const analysis::Diagnostic& only(const std::string& rule) {
    EXPECT_EQ(diags_.entries().size(), 1u) << diags_.summary();
    const analysis::Diagnostic& d = diags_.entries().front();
    EXPECT_EQ(d.rule, rule);
    EXPECT_NE(d.where.find("chunk-buffer-0"), std::string::npos) << d.where;
    EXPECT_TRUE(d.has_time);
    EXPECT_NE(d.to_string().find(" us"), std::string::npos) << d.to_string();
    return d;
  }

  cell::CellSpec spec_;
  analysis::Diagnostics diags_;
  analysis::HazardChecker checker_;
  cell::LocalStore::Region buffer0_;
};

TEST_F(HazardRules, KernelReadBeforeGetCompletes) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 1024), 100,
                  completes(5000), 0);
  checker_.on_tag_wait(0, 0, 5000);
  checker_.on_kernel(0, 0, 1024, 2000, 3000, 0);
  // The wait resolved at 5000 but the kernel started at 2000: the get
  // was still in flight under it.
  ASSERT_FALSE(diags_.empty());
  EXPECT_EQ(diags_.entries().front().rule, "read-before-get-complete");
  EXPECT_NE(diags_.entries().front().where.find("chunk-buffer-0"),
            std::string::npos);
  EXPECT_EQ(diags_.entries().front().at, 2000u);
}

TEST_F(HazardRules, KernelUseWithoutTagWait) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 1024), 100,
                  completes(1000), 0);
  checker_.on_kernel(0, 0, 1024, 2000, 3000, 0);  // no tag wait issued
  only("use-before-tag-wait");
}

TEST_F(HazardRules, SkippedPutWaitIsCaught) {
  // The paper's double-buffer bug: the put under tag 2 drains by t=1000,
  // but the SPU never waits on the tag group before re-staging the
  // buffer -- a race on real hardware even when the timing works out.
  checker_.on_dma(0, request(cell::DmaDir::kPut, 2, 0, 2048), 0,
                  completes(1000), 0);
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 2048), 2000,
                  completes(2500), 1);
  const analysis::Diagnostic& d = only("reuse-before-tag-wait");
  EXPECT_EQ(d.at, 2000u);
  EXPECT_NE(d.message.find("tag 2"), std::string::npos) << d.message;
}

TEST_F(HazardRules, GetOverwritesInFlightPut) {
  checker_.on_dma(0, request(cell::DmaDir::kPut, 2, 0, 2048), 0,
                  completes(5000), 0);
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 2048), 1000,
                  completes(3000), 1);
  only("overwrite-in-flight-put");
}

TEST_F(HazardRules, ConcurrentOverlappingGets) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 2048), 0,
                  completes(5000), 0);
  checker_.on_dma(0, request(cell::DmaDir::kGet, 1, 1024, 2048), 1000,
                  completes(6000), 1);
  only("overlapping-dma");
}

TEST_F(HazardRules, TagWaitResolvingEarly) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 3, 0, 1024), 0,
                  completes(5000), 0);
  checker_.on_tag_wait(0, 3, 3000);
  only("tag-wait-incomplete");
}

TEST_F(HazardRules, BufferRestagedBeforeKernelConsumedIt) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 1024), 0,
                  completes(100), 0);
  checker_.on_tag_wait(0, 0, 150);
  checker_.on_dma(0, request(cell::DmaDir::kGet, 1, 0, 1024), 200,
                  completes(300), 1);
  checker_.on_tag_wait(0, 1, 350);
  checker_.on_kernel(0, 0, 1024, 400, 500, 0);  // chunk 0's kernel, too late
  only("buffer-overwritten-before-use");
}

TEST_F(HazardRules, KernelOverDrainingPut) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 1024), 0,
                  completes(100), 1);
  checker_.on_tag_wait(0, 0, 100);
  checker_.on_dma(0, request(cell::DmaDir::kPut, 2, 512, 512), 150,
                  completes(5000), 0);
  checker_.on_kernel(0, 0, 1024, 200, 300, 1);
  only("kernel-overlaps-put");
}

TEST_F(HazardRules, KernelWithNothingStaged) {
  checker_.on_kernel(0, 0, 1024, 100, 200, 0);
  only("kernel-reads-unstaged");
}

TEST_F(HazardRules, ReportBeforeWritebackDrains) {
  checker_.on_dma(0, request(cell::DmaDir::kPut, 2, 0, 1024), 0,
                  completes(5000), 7);
  checker_.on_report(0, cell::SyncProtocol::kAtomicDistributed, 1000, 7);
  only("report-before-writeback");
}

TEST_F(HazardRules, CompletionNeverObserved) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 1024), 0,
                  completes(100), 0);
  checker_.on_run_end(10'000);
  only("completion-never-observed");
}

TEST_F(HazardRules, DmaOutsideAnyRegion) {
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 128 * 1024, 1024), 0,
                  completes(100), 0);
  ASSERT_FALSE(diags_.empty());
  EXPECT_EQ(diags_.entries().front().rule, "dma-outside-region");
}

TEST_F(HazardRules, AllocationDiscipline) {
  checker_.on_ls_alloc(1, {"misaligned", 64, 1024}, spec_.local_store_bytes);
  checker_.on_ls_alloc(1, {"huge", 128 * 1024, spec_.local_store_bytes},
                       spec_.local_store_bytes);
  checker_.on_ls_alloc(2, {"a", 0, 4096}, spec_.local_store_bytes);
  checker_.on_ls_alloc(2, {"b", 2048, 4096}, spec_.local_store_bytes);
  ASSERT_EQ(diags_.entries().size(), 3u) << diags_.summary();
  EXPECT_EQ(diags_.entries()[0].rule, "ls-alignment");
  EXPECT_EQ(diags_.entries()[1].rule, "ls-overflow");
  EXPECT_EQ(diags_.entries()[2].rule, "ls-overlap");
  EXPECT_NE(diags_.entries()[2].message.find("\"a\""), std::string::npos);
}

TEST_F(HazardRules, DispatchProtocolInvariants) {
  const cell::SyncProtocol proto = cell::SyncProtocol::kMailbox;
  checker_.on_grant(0, proto, 100, 50, 1);  // granted before requested
  ASSERT_EQ(diags_.entries().size(), 1u);
  EXPECT_EQ(diags_.entries()[0].rule, "grant-before-request");
  diags_.clear();

  checker_.on_grant(1, proto, 100, 200, 3);  // sequence skips 2
  ASSERT_EQ(diags_.entries().size(), 1u);
  EXPECT_EQ(diags_.entries()[0].rule, "work-counter-non-monotone");
  diags_.clear();

  checker_.on_grant(2, proto, 90, 150, 4);  // completes before grant at 200
  ASSERT_EQ(diags_.entries().size(), 1u);
  EXPECT_EQ(diags_.entries()[0].rule, "dispatch-serialization");
}

TEST_F(HazardRules, CleanProtocolReportsNothing) {
  // A full, disciplined stage/compute/writeback/report round trip.
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 2048), 0,
                  completes(1000), 0);
  checker_.on_tag_wait(0, 0, 1000);
  checker_.on_kernel(0, 0, 2048, 1000, 2000, 0);
  checker_.on_dma(0, request(cell::DmaDir::kPut, 2, 0, 1024), 2000,
                  completes(3000), 0);
  checker_.on_tag_wait(0, 2, 3000);
  checker_.on_report(0, cell::SyncProtocol::kLsPoke, 3000, 0);
  checker_.on_dma(0, request(cell::DmaDir::kGet, 0, 0, 2048), 3000,
                  completes(4000), 1);
  checker_.on_tag_wait(0, 0, 4000);
  checker_.on_kernel(0, 0, 2048, 4000, 5000, 1);
  checker_.on_run_end(5000);
  EXPECT_TRUE(diags_.empty()) << diags_.summary();
}

TEST(Diagnostics, RenderingAndCounts) {
  analysis::Diagnostics diags;
  diags.error("some-rule", "SPE3 chunk-buffer-1", sim::Tick{2'000'000'000},
              "broken");
  diags.warn("style", "deck", "static finding");
  EXPECT_EQ(diags.entries().size(), 2u);
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_TRUE(diags.has_errors());
  const std::string line = diags.entries()[0].to_string();
  EXPECT_NE(line.find("error[some-rule]"), std::string::npos) << line;
  EXPECT_NE(line.find("at 2 us"), std::string::npos) << line;
  EXPECT_NE(line.find("SPE3 chunk-buffer-1"), std::string::npos) << line;
  // Static findings render without a timestamp.
  const std::string warn = diags.entries()[1].to_string();
  EXPECT_EQ(warn.find(" at "), std::string::npos) << warn;
  EXPECT_NE(warn.find("warning[style]"), std::string::npos) << warn;
  diags.clear();
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace cellsweep
