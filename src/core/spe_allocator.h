// SpeAllocator: NOVA-style worst-fit claim/yield of the simulated
// chip's SPEs, so several concurrent streaming runs can share one chip
// instead of each owning all eight.
//
// PR 5's headline finding motivates this: at paper cube sizes the sweep
// is dependency-chain-bound and leaves SPEs slack, so a second tenant
// on the same chip is nearly free. The policy follows NOVA's core
// allocator (cells claim cores from a worst-fit allocator and yield
// them under pressure):
//   * claim(min, max, weight, quota) blocks until at least min SPEs
//     are free, then takes up to max from the largest contiguous free
//     runs first (worst-fit: splitting the biggest run keeps the
//     leftover runs as large as possible for the next tenant);
//   * a holder only shrinks when another tenant is *waiting*
//     (shrink_to_fair_share() evaluates pressure and yields in one
//     critical section), down to its fair share -- so a solo tenant
//     keeps the whole chip and its timing stays byte-identical to the
//     no-allocator build (pinned by tests and the perf baselines);
//   * expand() is the opportunistic regrow after pressure passes; it
//     is denied while anyone waits.
//
// QoS (PR 10): the fair share is *weighted* -- a party of weight w gets
// floor(num_spes * w / total_weight) of the chip (at least 1), where
// total_weight sums over current holders and waiters. With every
// weight at its default of 1 this reduces to the original equal split
// num_spes / parties, integer math included, so all pre-QoS behavior
// (and every checked-in baseline) is unchanged. A per-claim quota caps
// how many SPEs the claim may ever hold (grant and expand alike);
// quota 0 means "no cap". priority_pressure() lets a holder ask "is a
// strictly higher-weight claim blocked right now?" -- the signal the
// streaming pipeline polls between waves for chunk-granularity
// preemption.
//
// Host-side synchronization only: claims move between *batches* of a
// StreamingPipeline run, never mid-wave, and no simulated tick depends
// on when (in host time) a claim was granted -- each tenant's simulated
// clocks advance only with its own workload. Thread-safe; every field
// is GUARDED_BY(mu_) and the contract is compile-checked under clang
// -Wthread-safety.
#pragma once

#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::core {

class SpeAllocator {
 public:
  /// One tenant's current SPE set (physical SPE indices on the shared
  /// chip). Value-semantic bookkeeping only; all transitions go through
  /// the allocator.
  struct Claim {
    std::vector<int> ids;
    /// QoS weight this claim was granted under (>= 1). Carried on the
    /// claim so shrink_to_fair_share()/release() settle the weighted
    /// bookkeeping without the caller re-supplying it.
    int weight = 1;
    /// Hard cap on ids.size() (0 = uncapped). Grants and expands never
    /// exceed it.
    int quota = 0;
    int count() const noexcept { return static_cast<int>(ids.size()); }
    bool empty() const noexcept { return ids.empty(); }
  };

  /// Allocator snapshot (for reports and tests).
  struct Stats {
    std::uint64_t claims = 0;       ///< claim() grants
    std::uint64_t expands = 0;      ///< expand() calls that grew a claim
    std::uint64_t shrinks = 0;      ///< shrink() calls that released SPEs
    std::uint64_t waited_claims = 0;///< claims that had to block
    int peak_tenants = 0;           ///< most simultaneous holders
    /// Host seconds each claim() spent blocked (one sample per grant,
    /// 0 for immediate grants). Host-side telemetry only: no simulated
    /// tick ever reads it.
    util::Histogram claim_wait_s;
  };

  explicit SpeAllocator(int num_spes);

  /// Blocks until at least @p min_spes SPEs are free, then claims up to
  /// @p max_spes of them, worst-fit. While other claims are waiting the
  /// grant is additionally capped at the weighted fair share (never
  /// below min_spes), so one greedy tenant cannot starve the queue.
  /// @p weight (clamped to >= 1) is the claim's QoS weight; @p quota
  /// (0 = uncapped, otherwise clamped to [1, num_spes]) is a hard
  /// ceiling on the grant and on any later expand(). min/max are
  /// clamped to [1, num_spes] with max >= min, then both to the quota.
  Claim claim(int min_spes, int max_spes, int weight = 1, int quota = 0)
      EXCLUDES(mu_);

  /// Non-blocking growth of @p c toward @p target_total SPEs (capped at
  /// the claim's quota). Denied (returns 0) while any claim() is
  /// waiting; otherwise grants up to the free count, worst-fit. Returns
  /// the number of SPEs added.
  int expand(Claim& c, int target_total) EXCLUDES(mu_);

  /// Releases members of @p c (largest indices first) until it holds
  /// @p target_total; target_total <= 0 releases everything. Wakes
  /// waiting claims.
  void shrink(Claim& c, int target_total) EXCLUDES(mu_);

  /// The NOVA yield as one atomic decision: if any claim() is blocked,
  /// shrinks @p c to max(@p min_spes, min(@p need, its weighted fair
  /// share)) and returns true; returns false (touching nothing) when
  /// nobody waits or the claim is already at or below the target.
  /// Replaces the racy pressure()-then-fair_share()-then-shrink()
  /// sequence, whose predicate could go stale between the three lock
  /// acquisitions.
  bool shrink_to_fair_share(Claim& c, int need, int min_spes) EXCLUDES(mu_);

  /// shrink(c, 0): the tenant is done with the chip.
  void release(Claim& c) EXCLUDES(mu_) { shrink(c, 0); }

  /// True while at least one claim() is blocked: holders should shrink
  /// toward fair_share() at their next batch boundary (the NOVA yield).
  /// Snapshot only -- a decision must use shrink_to_fair_share().
  bool pressure() const EXCLUDES(mu_);

  /// True while a claim of weight strictly greater than @p weight is
  /// blocked: the holder should yield *now* (between chunks, not at the
  /// next batch), via shrink_to_fair_share(). Snapshot only.
  bool priority_pressure(int weight) const EXCLUDES(mu_);

  /// The weighted share of a party of @p weight: at least 1, otherwise
  /// num_spes * weight / total weight over everyone who wants a piece
  /// right now. fair_share() is the weight-1 view; with all parties at
  /// the default weight it is exactly the old num_spes / parties equal
  /// split.
  int fair_share() const EXCLUDES(mu_);
  int fair_share(int weight) const EXCLUDES(mu_);

  int num_spes() const noexcept { return num_spes_; }
  int free_count() const EXCLUDES(mu_);
  Stats stats() const EXCLUDES(mu_);

  /// Zeroes this thread's blocked-in-claim() accumulator. The solve
  /// server brackets each job with reset + read so a job's claim wait
  /// can be attributed to its JobTrace (claims happen on the worker
  /// thread that runs the job).
  static void reset_thread_claim_wait() noexcept;
  /// Host seconds this thread has spent blocked in claim() since the
  /// last reset_thread_claim_wait().
  static double thread_claim_wait_s() noexcept;

 private:
  /// Takes up to @p want SPEs from the largest contiguous free runs.
  /// Never returns fewer than are free when want >= free.
  std::vector<int> take_worst_fit(int want) REQUIRES(mu_);
  /// Frees members of @p c (largest ids first) down to @p target;
  /// returns true when anything was released.
  bool shrink_locked(Claim& c, int target) REQUIRES(mu_);
  int free_count_locked() const REQUIRES(mu_);
  int fair_share_locked(int weight) const REQUIRES(mu_);

  const int num_spes_;
  mutable util::Mutex mu_{util::lockrank::kSpeAllocator, "SpeAllocator::mu_"};
  util::CondVar cv_;  ///< waits on mu_ for SPEs to come free
  /// free_[s] != 0: SPE s unclaimed.
  std::vector<char> free_ GUARDED_BY(mu_);
  int holders_ GUARDED_BY(mu_) = 0;  ///< claims currently live
  int waiters_ GUARDED_BY(mu_) = 0;  ///< claim() calls currently blocked
  int holder_weight_ GUARDED_BY(mu_) = 0;  ///< summed weights of holders
  /// Weights of the claims currently blocked, one entry per waiter
  /// (multiset semantics: erase removes one matching entry).
  std::vector<int> waiter_weights_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_) = {};
};

}  // namespace cellsweep::core
