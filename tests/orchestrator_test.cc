// Tests for the Cell orchestrator: configuration mapping, timing-engine
// invariants, mode equivalence, optimization-ladder properties and the
// local-store budget.
#include <gtest/gtest.h>

#include "cellsim/local_store.h"
#include "core/orchestrator.h"

namespace cellsweep::core {
namespace {

RunReport run_stage(OptimizationStage stage, int cube = 16,
                    RunMode mode = RunMode::kTraceDriven,
                    int iterations = 2) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(cube);
  CellSweepConfig cfg = CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = iterations;
  cfg.sweep.fixup_from_iteration = iterations - 1;
  cfg.sweep.mk = std::min(cfg.sweep.mk, cube);
  while (cube % cfg.sweep.mk != 0) --cfg.sweep.mk;
  CellSweep3D runner(p, cfg);
  return runner.run(mode);
}

TEST(Config, StageMappingIsCumulative) {
  using OS = OptimizationStage;
  const auto initial = CellSweepConfig::from_stage(OS::kSpeInitial);
  EXPECT_TRUE(initial.use_spes);
  EXPECT_EQ(initial.kernel, sweep::KernelKind::kScalar);
  EXPECT_FALSE(initial.aligned_rows);
  EXPECT_FALSE(initial.gotos_eliminated);
  EXPECT_EQ(initial.buffers, 1);
  EXPECT_FALSE(initial.dma_lists);
  EXPECT_EQ(initial.sync, cell::SyncProtocol::kMailbox);

  const auto shipped = CellSweepConfig::from_stage(OS::kSpeLsPoke);
  EXPECT_EQ(shipped.kernel, sweep::KernelKind::kSimd);
  EXPECT_TRUE(shipped.aligned_rows);
  EXPECT_EQ(shipped.buffers, 2);
  EXPECT_TRUE(shipped.dma_lists);
  EXPECT_TRUE(shipped.bank_offsets);
  EXPECT_EQ(shipped.sync, cell::SyncProtocol::kLsPoke);
  EXPECT_EQ(shipped.dma_granularity, 512u);

  const auto ppe = CellSweepConfig::from_stage(OS::kPpeGcc);
  EXPECT_FALSE(ppe.use_spes);
  EXPECT_FALSE(ppe.xlc);

  const auto pipelined = CellSweepConfig::from_stage(OS::kFuturePipelinedDp);
  EXPECT_EQ(pipelined.chip.dp_issue_block_cycles, 1);
  const auto sp = CellSweepConfig::from_stage(OS::kFutureSingle);
  EXPECT_EQ(sp.precision, Precision::kSingle);
}

TEST(Config, StageNamesDistinct) {
  using OS = OptimizationStage;
  EXPECT_STRNE(stage_name(OS::kPpeGcc), stage_name(OS::kPpeXlc));
  EXPECT_NE(std::string(stage_name(OS::kFutureSingle)).find("single"),
            std::string::npos);
}

TEST(Orchestrator, FunctionalAndTraceDrivenTimingIdentical) {
  // The execution-driven and trace-driven modes must produce the same
  // simulated time: the timing depends only on the workload stream.
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  CellSweepConfig cfg =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  cfg.sweep.mk = 5;
  cfg.sweep.max_iterations = 2;
  cfg.sweep.fixup_from_iteration = 1;

  CellSweep3D a(p, cfg), b(p, cfg);
  const RunReport trace = a.run(RunMode::kTraceDriven);
  const RunReport func = b.run(RunMode::kFunctional);
  EXPECT_DOUBLE_EQ(trace.seconds, func.seconds);
  EXPECT_DOUBLE_EQ(trace.traffic_bytes, func.traffic_bytes);
  EXPECT_EQ(trace.chunks, func.chunks);
  EXPECT_FALSE(trace.solve.has_value());
  ASSERT_TRUE(func.solve.has_value());
  EXPECT_EQ(func.solve->iterations, 2);
  EXPECT_GT(func.absorption, 0.0);
}

TEST(Orchestrator, TimingIsDeterministic) {
  const RunReport a = run_stage(OptimizationStage::kSpeLsPoke);
  const RunReport b = run_stage(OptimizationStage::kSpeLsPoke);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.traffic_bytes, b.traffic_bytes);
}

TEST(Orchestrator, LadderIsMonotone) {
  // Each cumulative optimization must not slow the run down.
  using OS = OptimizationStage;
  const OS ladder[] = {OS::kSpeInitial,  OS::kSpeAligned, OS::kSpeBuffered,
                       OS::kSpeSimd,     OS::kSpeDmaLists, OS::kSpeLsPoke};
  double prev = 1e30;
  for (OS s : ladder) {
    const double t = run_stage(s).seconds;
    EXPECT_LE(t, prev * 1.02) << stage_name(s);
    prev = t;
  }
}

TEST(Orchestrator, PpeStagesMuchSlowerThanSpes) {
  const double ppe = run_stage(OptimizationStage::kPpeXlc).seconds;
  const double spe = run_stage(OptimizationStage::kSpeLsPoke).seconds;
  EXPECT_GT(ppe / spe, 5.0);
}

TEST(Orchestrator, XlcBeatsGcc) {
  EXPECT_LT(run_stage(OptimizationStage::kPpeXlc).seconds,
            run_stage(OptimizationStage::kPpeGcc).seconds);
}

TEST(Orchestrator, SimdKernelSpeedsUpRun) {
  EXPECT_LT(run_stage(OptimizationStage::kSpeSimd).seconds,
            run_stage(OptimizationStage::kSpeBuffered).seconds);
}

TEST(Orchestrator, SinglePrecisionBeatsDoubleStages) {
  const double sp = run_stage(OptimizationStage::kFutureSingle).seconds;
  using OS = OptimizationStage;
  for (OS s : {OS::kSpeLsPoke, OS::kFutureBigDma, OS::kFutureDistributed})
    EXPECT_LT(sp, run_stage(s).seconds) << stage_name(s);
}

TEST(Orchestrator, BoundsAreLowerBounds) {
  const RunReport r = run_stage(OptimizationStage::kSpeLsPoke);
  EXPECT_GT(r.memory_bound_s, 0.0);
  EXPECT_GT(r.compute_bound_s, 0.0);
  EXPECT_GE(r.seconds, r.memory_bound_s);
  EXPECT_GE(r.seconds, r.compute_bound_s);
  EXPECT_GE(r.seconds, r.compute_busy_s);
}

TEST(Orchestrator, ReportAccounting) {
  const RunReport r = run_stage(OptimizationStage::kSpeLsPoke, 16,
                                RunMode::kTraceDriven, 3);
  EXPECT_EQ(r.cell_solves, 16ull * 16 * 16 * 48 * 3);
  EXPECT_GT(r.chunks, 0u);
  EXPECT_GT(r.flops, 0u);
  EXPECT_GT(r.dma_commands, 0u);
  EXPECT_GE(r.dma_transfers, r.dma_commands);
  EXPECT_NEAR(r.grind_seconds, r.seconds / r.cell_solves, 1e-15);
  EXPECT_GT(r.achieved_flops_per_s, 0.0);
  EXPECT_GT(r.ls_high_water, 0u);
  EXPECT_LE(r.ls_high_water, 256u * 1024u);
}

TEST(Orchestrator, DmaListsReduceCommandCount) {
  const RunReport lists = run_stage(OptimizationStage::kSpeDmaLists);
  const RunReport indiv = run_stage(OptimizationStage::kSpeSimd);
  EXPECT_LT(lists.dma_commands, indiv.dma_commands / 4);
  // Same logical traffic either way.
  EXPECT_NEAR(lists.traffic_bytes / indiv.traffic_bytes, 1.0, 0.02);
}

TEST(Orchestrator, LocalStoreOverflowDetected) {
  // A line too long for double-buffered staging must throw.
  sweep::Grid g{512, 4, 4, 0.01, 0.01, 0.01};
  sweep::Material m{"m", 1.0, {0.5}, 1.0};
  const sweep::Problem p(g, {m},
                         std::vector<std::uint8_t>(g.cells(), 0));
  CellSweepConfig cfg =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  cfg.sweep.mk = 4;
  cfg.sweep.max_iterations = 1;
  CellSweep3D runner(p, cfg);
  EXPECT_THROW(runner.run(RunMode::kTraceDriven), cell::LocalStoreOverflow);
}

TEST(Orchestrator, SingleBufferUsesLessLocalStore) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(16);
  CellSweepConfig two =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  two.sweep.mk = 8;
  two.sweep.max_iterations = 1;
  CellSweepConfig one = two;
  one.buffers = 1;
  CellSweep3D a(p, two), b(p, one);
  const RunReport ra = a.run();
  const RunReport rb = b.run();
  EXPECT_GT(ra.ls_high_water, rb.ls_high_water);
}

TEST(Orchestrator, ValidatesBlocking) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  CellSweepConfig cfg =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  cfg.sweep.mk = 3;  // does not divide 10
  EXPECT_THROW(CellSweep3D(p, cfg), std::invalid_argument);
}

TEST(Orchestrator, FunctionalModeSolvesPhysics) {
  const RunReport r = run_stage(OptimizationStage::kSpeLsPoke, 8,
                                RunMode::kFunctional, 3);
  ASSERT_TRUE(r.solve.has_value());
  EXPECT_EQ(r.solve->iterations, 3);
  EXPECT_GT(r.absorption, 0.0);
  EXPECT_GT(r.leakage.total(), 0.0);
}

TEST(Orchestrator, PipelinedDpCutsComputeNotTraffic) {
  const RunReport base = run_stage(OptimizationStage::kFutureDistributed);
  const RunReport fast = run_stage(OptimizationStage::kFuturePipelinedDp);
  EXPECT_LT(fast.compute_busy_s, base.compute_busy_s * 0.7);
  EXPECT_NEAR(fast.traffic_bytes / base.traffic_bytes, 1.0, 0.01);
}

TEST(Orchestrator, FaultFreeRunHasNoFaultSurface) {
  // The fault subsystem must be invisible unless armed: no faults/
  // counter subtree, a disabled FaultReport, and (pinned in
  // tests/fault_test.cc) byte-identical metrics to a run built before
  // the subsystem existed. This is the contract that keeps
  // bench/baselines/ valid.
  const RunReport r = run_stage(OptimizationStage::kSpeLsPoke);
  EXPECT_FALSE(r.faults.enabled);
  EXPECT_EQ(r.counters.find_child("faults"), nullptr);
  EXPECT_EQ(r.faults.spes_disabled, 0);
  EXPECT_EQ(r.faults.redispatched_chunks, 0u);
}

}  // namespace
}  // namespace cellsweep::core
