#include "analysis/diagnostics.h"

#include <sstream>

namespace cellsweep::analysis {

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "error" : "warning") << "[" << rule
     << "]";
  if (has_time) os << " at " << sim::seconds_from_ticks(at) * 1e6 << " us";
  os << ": " << where << ": " << message;
  return os.str();
}

void Diagnostics::error(std::string rule, std::string where, sim::Tick at,
                        std::string message) {
  report(Diagnostic{Diagnostic::Severity::kError, std::move(rule),
                    std::move(where), at, true, std::move(message)});
}

void Diagnostics::error(std::string rule, std::string where,
                        std::string message) {
  report(Diagnostic{Diagnostic::Severity::kError, std::move(rule),
                    std::move(where), 0, false, std::move(message)});
}

void Diagnostics::warn(std::string rule, std::string where, sim::Tick at,
                       std::string message) {
  report(Diagnostic{Diagnostic::Severity::kWarning, std::move(rule),
                    std::move(where), at, true, std::move(message)});
}

void Diagnostics::warn(std::string rule, std::string where,
                       std::string message) {
  report(Diagnostic{Diagnostic::Severity::kWarning, std::move(rule),
                    std::move(where), 0, false, std::move(message)});
}

std::size_t Diagnostics::error_count() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : entries_)
    if (d.severity == Diagnostic::Severity::kError) ++n;
  return n;
}

std::string Diagnostics::summary() const {
  std::ostringstream os;
  for (const Diagnostic& d : entries_) os << d.to_string() << "\n";
  return os.str();
}

}  // namespace cellsweep::analysis
