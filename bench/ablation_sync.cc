// Ablation: synchronization protocol at each kernel stage.
//
// Crosses the three PPE<->SPE sync protocols (mailbox, direct LS poke,
// distributed atomic) with the scalar and SIMD kernels, isolating how
// much of each Figure 5 / Figure 10 step is protocol vs compute.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Ablation: sync protocol x kernel (" +
                      std::to_string(opt.cube) + "^3)");

  util::TextTable table(
      {"kernel", "sync protocol", "run time [s]", "grants"});
  bench::BenchJson json("ablation_sync", opt.cube);
  for (sweep::KernelKind kernel :
       {sweep::KernelKind::kScalar, sweep::KernelKind::kSimd}) {
    for (cell::SyncProtocol sync :
         {cell::SyncProtocol::kMailbox, cell::SyncProtocol::kLsPoke,
          cell::SyncProtocol::kAtomicDistributed}) {
      const sweep::Problem problem = sweep::Problem::benchmark_cube(opt.cube);
      core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
          core::OptimizationStage::kSpeLsPoke);
      cfg.kernel = kernel;
      cfg.sweep.kernel = kernel;
      cfg.sync = sync;
      core::CellSweep3D runner(problem, cfg);
      const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
      json.add_run(std::string(kernel == sweep::KernelKind::kScalar
                                   ? "scalar_"
                                   : "simd_") +
                       cell::sync_protocol_name(sync),
                   r);
      table.add_row(
          {kernel == sweep::KernelKind::kScalar ? "scalar" : "SIMD",
           cell::sync_protocol_name(sync), bench::fmt("%.3f", r.seconds),
           bench::fmt("%.0f", r.dispatch_busy_grants)});
    }
  }
  table.print(std::cout);
  std::cout << "\nProtocol cost only surfaces once the SIMD kernel removes\n"
               "the compute bottleneck -- the paper's Section 5 ordering.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
