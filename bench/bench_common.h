// Shared helpers for the bench harness. Every binary in bench/
// regenerates one of the paper's tables or figures: it runs the
// simulated experiment and prints paper-reported vs measured rows.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/orchestrator.h"
#include "util/table.h"
#include "util/units.h"

namespace cellsweep::bench {

/// Runs one optimization stage on an n-cubed benchmark problem with the
/// paper's deck (12 iterations, fixups in the last two) and returns the
/// report. Trace-driven: full 50-cubed scale in well under a second.
inline core::RunReport run_stage(core::OptimizationStage stage, int cube = 50,
                                 int iterations = 12) {
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = iterations;
  cfg.sweep.fixup_from_iteration = iterations - 2;
  // MK must factor KT: pick the largest divisor <= the default.
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (cube % d == 0) mk = d;
  cfg.sweep.mk = mk;
  core::CellSweep3D runner(problem, cfg);
  return runner.run(core::RunMode::kTraceDriven);
}

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace cellsweep::bench
