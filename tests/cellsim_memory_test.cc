// Unit tests for the MIC / EIB models: bandwidth, bank interleaving
// efficiency and the DRAM burst-gap accounting.
#include <gtest/gtest.h>

#include "cellsim/memory.h"
#include "cellsim/spec.h"

namespace cellsweep::cell {
namespace {

class MicTest : public ::testing::Test {
 protected:
  CellSpec spec_;
  Mic mic_{spec_};
};

TEST_F(MicTest, FullBankSpreadIsPeak) {
  EXPECT_DOUBLE_EQ(mic_.bank_efficiency(16), 1.0);
  EXPECT_DOUBLE_EQ(mic_.bank_efficiency(100), 1.0);
}

TEST_F(MicTest, BankEfficiencyMonotone) {
  double prev = 0.0;
  for (int b = 1; b <= 16; ++b) {
    const double e = mic_.bank_efficiency(b);
    EXPECT_GE(e, prev) << b;
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

TEST_F(MicTest, BankEfficiencyFloor) {
  EXPECT_GE(mic_.bank_efficiency(1), spec_.dma_min_efficiency);
  EXPECT_GE(mic_.bank_efficiency(0), spec_.dma_min_efficiency);
}

TEST_F(MicTest, PeakRateTransferTime) {
  // 25.6 GB at efficiency 1 with one element: ~1 s (+ one gap).
  const sim::Tick done = mic_.submit(0, 25.6e9, 0, 1.0, 1);
  EXPECT_NEAR(sim::seconds_from_ticks(done), 1.0, 1e-6);
}

TEST_F(MicTest, EfficiencyInflatesOccupancy) {
  Mic a(spec_), b(spec_);
  const sim::Tick full = a.submit(0, 1e6, 0, 1.0, 1);
  const sim::Tick half = b.submit(0, 1e6, 0, 0.5, 1);
  EXPECT_GT(half, full);
  EXPECT_NEAR(static_cast<double>(half) / full, 2.0, 0.01);
}

TEST_F(MicTest, LogicalBytesUnaffectedByEfficiency) {
  mic_.submit(0, 1e6, 0, 0.5, 1);
  EXPECT_DOUBLE_EQ(mic_.bytes_moved(), 1e6);
}

TEST_F(MicTest, PerElementGapCharged) {
  Mic a(spec_), b(spec_);
  // Same payload, 1 element vs 1000 elements: more gaps, later finish.
  const sim::Tick one = a.submit(0, 512000, 0, 1.0, 1);
  const sim::Tick many = b.submit(0, 512000, 0, 1.0, 1000);
  EXPECT_GT(many, one);
  const double gap_seconds =
      999 * spec_.dram_gap_bytes / spec_.mic_bytes_per_s;
  EXPECT_NEAR(sim::seconds_from_ticks(many - one), gap_seconds, 1e-9);
}

TEST_F(MicTest, RejectsBadEfficiency) {
  EXPECT_THROW(mic_.submit(0, 1.0, 0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(mic_.submit(0, 1.0, 0, 1.5, 1), std::invalid_argument);
}

TEST_F(MicTest, ResetClears) {
  mic_.submit(0, 1e6, 0, 1.0, 1);
  mic_.reset();
  EXPECT_DOUBLE_EQ(mic_.bytes_moved(), 0.0);
  EXPECT_EQ(mic_.busy_ticks(), 0u);
}

TEST(EibTest, AggregateBandwidth) {
  CellSpec spec;
  Eib eib(spec);
  // 204.8 GB in one second at peak.
  const sim::Tick done = eib.submit(0, 204.8e9);
  EXPECT_NEAR(sim::seconds_from_ticks(done), 1.0, 1e-9);
}

TEST(EibTest, MuchFasterThanMic) {
  CellSpec spec;
  Eib eib(spec);
  Mic mic(spec);
  const sim::Tick e = eib.submit(0, 1e9);
  const sim::Tick m = mic.submit(0, 1e9, 0, 1.0, 1);
  EXPECT_LT(e, m);  // 204.8 vs 25.6 GB/s
}

}  // namespace
}  // namespace cellsweep::cell
