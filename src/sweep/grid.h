// Spatial grid for the Sn transport problem.
//
// Sweep3D discretizes a rectangular box into a logically rectangular
// IJK grid of cells (paper, Section 3). The grid here is uniform per
// axis; the classic benchmark input is the 50x50x50 cube ("50-cubed")
// the whole optimization study runs on.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace cellsweep::sweep {

/// Uniform rectangular grid of it x jt x kt cells.
struct Grid {
  int it = 50;  ///< cells along I (the innermost, recursive dimension)
  int jt = 50;  ///< cells along J
  int kt = 50;  ///< cells along K
  double dx = 0.04;  ///< cell width along I (cm)
  double dy = 0.04;  ///< cell width along J
  double dz = 0.04;  ///< cell width along K

  static Grid cube(int n, double edge_length = 2.0) {
    if (n < 1) throw std::invalid_argument("Grid::cube: size must be >= 1");
    const double h = edge_length / n;
    return Grid{n, n, n, h, h, h};
  }

  std::int64_t cells() const noexcept {
    return static_cast<std::int64_t>(it) * jt * kt;
  }
  double cell_volume() const noexcept { return dx * dy * dz; }
  std::int64_t index(int i, int j, int k) const noexcept {
    return (static_cast<std::int64_t>(k) * jt + j) * it + i;
  }

  void validate() const {
    if (it < 1 || jt < 1 || kt < 1)
      throw std::invalid_argument("Grid: cell counts must be >= 1");
    if (dx <= 0 || dy <= 0 || dz <= 0)
      throw std::invalid_argument("Grid: cell sizes must be positive");
  }
};

}  // namespace cellsweep::sweep
