#include "core/orchestrator.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "analysis/hazard.h"
#include "cellsim/observer.h"
#include "perfmodel/processors.h"
#include "sweep/plan.h"
#include "util/aligned.h"

namespace cellsweep::core {
namespace {

std::size_t real_bytes_of(Precision p) {
  return p == Precision::kDouble ? 8 : 4;
}

/// Publishes one SPE's folded pipeline schedules (the Section 5.1
/// counters) into @p out.
void publish_pipeline(const cell::PipelineStats& p, sim::CounterSet& out) {
  out.set("kernels", static_cast<double>(p.kernels));
  out.set("cycles", static_cast<double>(p.cycles));
  out.set("issue_cycles", static_cast<double>(p.issue_cycles));
  out.set("instructions", static_cast<double>(p.instructions));
  out.set("dual_issues", static_cast<double>(p.dual_issues));
  out.set("even_pipe_insts", static_cast<double>(p.even_pipe_insts));
  out.set("odd_pipe_insts", static_cast<double>(p.odd_pipe_insts));
  out.set("dep_stall_cycles", static_cast<double>(p.dep_stall_cycles));
  out.set("block_stall_cycles", static_cast<double>(p.block_stall_cycles));
  out.set("flops", static_cast<double>(p.flops));
}

}  // namespace

TimingEngine::TimingEngine(const CellSweepConfig& cfg,
                           const sweep::Grid& grid, int nm)
    : cfg_(cfg),
      grid_(grid),
      nm_(nm),
      machine_(cfg.chip),
      kernels_(cfg.chip),
      spes_(cfg.chip.num_spes),
      sink_(cfg.trace_sink) {
  // A time-sliced profiler interposes on the trace stream: the engine
  // emits into the profiler, which samples utilization windows and
  // forwards every event to the plain sink (so both can be attached).
  // Pure observation either way -- no simulated tick reads the sink.
  if (cfg_.profiler) {
    cfg_.profiler->forward_to(cfg.trace_sink);
    sink_ = cfg_.profiler;
  }
  if (sink_) {
    ppe_track_ = sink_->track("PPE");
    spe_tracks_.reserve(spes_.size());
    for (std::size_t s = 0; s < spes_.size(); ++s)
      spe_tracks_.push_back(sink_->track("SPE" + std::to_string(s)));
    eib_track_ = sink_->track("EIB");
    mic_track_ = sink_->track("MIC");
  }
  // Chunks rotate through `buffers` staging buffers; a degenerate
  // config below 1 behaves as synchronous single buffering.
  if (cfg_.buffers < 1) cfg_.buffers = 1;

  // Fault plan: built once (the constructor validates the spec), then
  // attached to every unit that can fail. alive_ starts from the
  // boot-time SPE health -- the 7-of-8 yield case runs the whole sweep
  // on the survivors.
  fault_plan_ = sim::FaultPlan(cfg_.faults);
  alive_.assign(spes_.size(), 1);
  failed_.assign(spes_.size(), 0);
  if (fault_plan_.enabled()) {
    for (int s = 0; s < machine_.num_spes(); ++s) {
      machine_.spe(s).mfc().attach_faults(&fault_plan_, s);
      if (fault_plan_.spe_disabled(s)) {
        alive_[static_cast<std::size_t>(s)] = 0;
        ++spes_disabled_;
      }
    }
    machine_.mic().attach_faults(&fault_plan_);
    machine_.dispatch().attach_faults(&fault_plan_);
    if (spes_disabled_ >= machine_.num_spes())
      throw sim::FaultError(
          "fault plan disables every SPE: nothing left to run on");
  }

  // Protocol observer: an externally attached checker wins; otherwise
  // CELLSWEEP_HAZARD_CHECK in the environment arms an engine-owned one
  // whose errors finish() escalates (the CI hazard-checked suite mode).
  observer_ = cfg.hazard;
  if (!observer_ && std::getenv("CELLSWEEP_HAZARD_CHECK") != nullptr) {
    owned_diags_ = std::make_unique<analysis::Diagnostics>();
    owned_checker_ =
        std::make_unique<analysis::HazardChecker>(owned_diags_.get(), cfg.chip);
    observer_ = owned_checker_.get();
  }

  // Validate the local-store budget: the largest chunk's working set
  // times the buffer count (plus resident constants) must fit in every
  // SPE's 256 KB. Throws cell::LocalStoreOverflow otherwise.
  const TransferPlan plan = plan_chunk(ChunkShape{
      sweep::kBundleLines, grid.it, nm_, real_bytes_of(cfg.precision),
      cfg.aligned_rows});
  for (int s = 0; s < machine_.num_spes(); ++s) {
    cell::LocalStore& ls = machine_.spe(s).local_store();
    ls.reset();
    if (observer_) observer_->on_ls_reset(s);
    ls.allocate("angle-constants", 4 * 1024);
    if (observer_) observer_->on_ls_alloc(s, ls.regions().back(), ls.capacity());
    for (int b = 0; b < cfg.buffers; ++b) {
      const std::size_t off =
          ls.allocate("chunk-buffer-" + std::to_string(b), plan.ls_buffer_bytes);
      if (observer_)
        observer_->on_ls_alloc(s, ls.regions().back(), ls.capacity());
      if (s == 0) buffer_offsets_.push_back(off);
    }
  }
  ls_high_water_ = machine_.spe(0).local_store().high_water();
}

TimingEngine::~TimingEngine() = default;

void TimingEngine::iteration_boundary() {
  // Source-moment rebuild: one streaming pass over flux + source + the
  // external source field. Bandwidth-bound; the madds are fully
  // pipelined underneath.
  const double bytes = (2.0 * nm_ + 1.0) *
                       static_cast<double>(grid_.cells()) *
                       static_cast<double>(real_bytes_of(cfg_.precision));
  const sim::Tick before = next_barrier_;
  next_barrier_ = machine_.mic().submit(next_barrier_, bytes, 0, 1.0);
  if (sink_) {
    sink_->span(mic_track_, "source-rebuild", "memory", before, next_barrier_);
    sink_->counter(mic_track_, "traffic-gb", next_barrier_,
                   machine_.mic().bytes_moved() / 1e9);
  }
}

int TimingEngine::pick_spe(sim::Tick& extra) {
  const int n = static_cast<int>(spes_.size());
  for (int scanned = 0; scanned <= 2 * n; ++scanned) {
    const int s = rr_spe_;
    rr_spe_ = (rr_spe_ + 1) % n;
    if (!alive_[static_cast<std::size_t>(s)]) {
      // Every chunk the round-robin would have placed on a mid-sweep
      // casualty is work the survivors absorb; boot-disabled SPEs were
      // never in the rotation, so they don't count as re-dispatches.
      if (failed_[static_cast<std::size_t>(s)]) ++redispatched_chunks_;
      continue;
    }
    if (fault_plan_.enabled()) {
      const std::int64_t limit = fault_plan_.spe_fail_after(s);
      if (limit > 0 &&
          spes_[static_cast<std::size_t>(s)].served >=
              static_cast<std::uint64_t>(limit)) {
        // The SPE dies with this chunk assigned: the PPE watchdog
        // detects the silence and re-dispatches to the next survivor.
        // Only this first detection pays the watchdog latency; later
        // rounds skip the dead SPE with no extra cost.
        alive_[static_cast<std::size_t>(s)] = 0;
        failed_[static_cast<std::size_t>(s)] = 1;
        ++spes_failed_;
        ++redispatched_chunks_;
        extra += machine_.spec().spe_fail_detect;
        failover_ticks_ += machine_.spec().spe_fail_detect;
        continue;
      }
    }
    return s;
  }
  throw sim::FaultError("every SPE has failed: nothing left to run on");
}

void TimingEngine::account_wait(int spe_index, sim::Tick base,
                                sim::Tick dma_ready, sim::Tick sync_ready) {
  // The SPU stalls over [base, max(dma_ready, sync_ready)). Split the
  // interval at the earlier constraint's resolution: time up to it is
  // charged to that bucket, the rest to the later (binding) one. The
  // two buckets partition the wait exactly, so per-SPE busy + dma_wait
  // + sync_wait + idle always sums to the run length.
  SpeClock& spe = spes_[spe_index];
  const sim::Tick first = std::max(base, std::min(dma_ready, sync_ready));
  const sim::Tick ready = std::max(base, std::max(dma_ready, sync_ready));
  const bool dma_first = dma_ready <= sync_ready;
  (dma_first ? spe.dma_wait : spe.sync_wait) += first - base;
  (dma_first ? spe.sync_wait : spe.dma_wait) += ready - first;
  if (sink_) {
    const int t = spe_tracks_[spe_index];
    const char* sync_name = cfg_.sync == cell::SyncProtocol::kAtomicDistributed
                                ? "atomic-wait"
                            : cfg_.sync == cell::SyncProtocol::kMailbox
                                ? "mailbox-wait"
                                : "ls-poke-wait";
    const char* a = dma_first ? "dma-wait" : sync_name;
    const char* b = dma_first ? sync_name : "dma-wait";
    if (first > base) sink_->span(t, a, dma_first ? "dma" : "sync", base, first);
    if (ready > first)
      sink_->span(t, b, dma_first ? "sync" : "dma", first, ready);
  }
}

void TimingEngine::trace_dma(int spe_index, const char* name,
                             sim::Tick submitted, const cell::DmaCompletion& c,
                             bool to_memory) {
  if (!sink_) return;
  const int t = spe_tracks_[spe_index];
  // SPU-side channel phase, MFC queue back-pressure phase, then the
  // payload streaming through the shared fabric.
  sink_->span(t, "dma-issue", "dma", submitted, c.issue_done);
  if (c.start > c.issue_done)
    sink_->span(t, "dma-queue", "dma", c.issue_done, c.start);
  sink_->span(to_memory ? mic_track_ : eib_track_, name, "dma", c.start,
              c.done);
  if (c.retries > 0) sink_->instant(t, "dma-retry", "fault", c.done);
}

void TimingEngine::on_diagonal(const sweep::DiagonalWork& w) {
  const bool iteration_start =
      w.octant == 0 && w.ablock == 0 && w.kblock == 0 && w.diagonal == 0;
  if (iteration_start) iteration_boundary();
  saw_first_diagonal_ = true;

  // Wavefront dependency. Within one (octant, angle-block, K-block)
  // block the dependency is per-line: a chunk of this diagonal needs
  // only its neighboring chunks of the previous diagonal, so execution
  // pipelines across diagonals. Blocks are sequential (the paper's
  // sweep() processes them in order), so a new block starts behind
  // everything outstanding.
  const long long block_key =
      (static_cast<long long>(w.octant) * 64 + w.ablock) * 1024 + w.kblock;
  if (block_key != current_block_key_) {
    current_block_key_ = block_key;
    barrier_ = next_barrier_;
    prev_diag_completion_.clear();
    prev_diag_compute_end_.clear();
    if (sink_) sink_->instant(ppe_track_, "block-barrier", "sync", barrier_);
  }

  // Dispatch release: with centralized scheduling the PPE must observe
  // every completion report of the previous diagonal before it can hand
  // out the next one -- the serialization the paper's Fig. 10 removes
  // with distributed self-scheduling (SPEs then simply bump the shared
  // counter from the atomic unit and chase per-line dependencies).
  const bool centralized =
      cfg_.sync != cell::SyncProtocol::kAtomicDistributed;
  const sim::Tick release =
      centralized ? std::max(barrier_, reports_horizon_)
                  : barrier_ + machine_.spec().atomic_op_latency;

  // Upstream readiness for chunk index c: the lines of chunk c sit one
  // diagonal step from lines covered by the previous diagonal's chunks
  // c-1..c+1; the diagonal tail is gated by the upstream tail. Under
  // centralized dispatch faces travel through main memory, so the
  // upstream chunk must have *completed* (writeback drained); the
  // distributed variant forwards faces SPE-to-SPE from the upstream
  // local store, so its compute end (plus an atomic hop) suffices.
  auto dependency_ready = [&](int c) -> sim::Tick {
    if (prev_diag_completion_.empty()) return barrier_;
    const auto& upstream =
        centralized ? prev_diag_completion_ : prev_diag_compute_end_;
    const int n = static_cast<int>(upstream.size());
    sim::Tick t = barrier_;
    for (int p = std::max(0, c - 1); p <= std::min(n - 1, c + 1); ++p)
      t = std::max(t, upstream[p]);
    if (c + 1 >= n) t = std::max(t, upstream[n - 1]);
    return centralized ? t : t + machine_.spec().atomic_op_latency;
  };

  // Chunk list of this diagonal -- the same ChunkPlan the functional
  // sweeper executes (the plan constructor throws on functional/timing
  // drift) -- assigned to SPEs in the paper's cyclic manner. Each
  // chunk streams through one of the SPE's rotating staging buffers;
  // the token is the global chunk sequence number binding its grant,
  // DMAs, kernel and report together for the protocol checker.
  const sweep::ChunkPlan plan(cfg_.sweep, grid_.jt, w);
  struct Chunk {
    int nlines;
    int spe;
    int index;
    int buf;
    std::uint64_t token;
    /// Failover delay this chunk pays before dispatch: the PPE watchdog
    /// time spent declaring its original SPE dead and re-dispatching.
    sim::Tick extra = 0;
    sim::Tick grant = 0;
    sim::Tick get_done = 0;
    sim::Tick get_issue_done = 0;
    sim::Tick compute_end = 0;
    sim::Tick completion = 0;
    std::size_t staged_bytes = 0;  ///< LS bytes the kernel consumes
  };
  std::vector<Chunk> chunks;
  chunks.reserve(plan.chunks().size());
  for (const sweep::ChunkDesc& pc : plan.chunks()) {
    sim::Tick extra = 0;
    const int s = pick_spe(extra);
    SpeClock& spe = spes_[s];
    const int buf = static_cast<int>(spe.served % cfg_.buffers);
    ++spe.served;
    chunks.push_back(Chunk{pc.nlines, s, pc.index, buf, token_seq_++, extra});
  }

  const std::size_t rb = real_bytes_of(cfg_.precision);
  const cell::CellSpec& spec = machine_.spec();
  const int banks =
      cfg_.bank_offsets ? spec.memory_banks : spec.banks_without_offsets;
  const std::size_t align = cfg_.aligned_rows ? 128 : 16;

  auto make_request = [&](const TransferPlan& tplan, cell::DmaDir dir,
                          std::size_t bytes_total) {
    cell::DmaRequest req;
    req.dir = dir;
    req.alignment = align;
    req.banks_touched = banks;
    req.total_bytes = util::round_up(std::max<std::size_t>(bytes_total, 16),
                                     16);
    if (!cfg_.dma_lists) {
      // One MFC command per row (the pre-"DMA lists" implementation).
      req.as_list = false;
      req.element_bytes = tplan.row_bytes;
    } else {
      // One DMA-list command; element size is the configured
      // granularity (512-byte rows shipped; Fig. 10 raises it).
      req.as_list = true;
      req.element_bytes = util::round_up(
          std::clamp<std::size_t>(cfg_.dma_granularity, tplan.row_bytes,
                                  spec.dma_max_bytes),
          16);
    }
    return req;
  };

  // The chunks stream in waves of `buffers` chunks per SPE. Within a
  // wave, phase A (grants + working-set gets, in grant order) runs for
  // every chunk, then phase B (kernels), then phase C (writebacks +
  // reports): shared resources (dispatch fabric, MIC) see near-monotone
  // request times, which the FIFO contention model requires. The wave
  // bound keeps the model honest about buffer rotation: an SPE
  // prefetches at most one chunk ahead per staging buffer -- the
  // lookahead double buffering actually grants -- instead of racing a
  // whole diagonal's gets past unconsumed data.
  const std::size_t wave =
      spes_.size() * static_cast<std::size_t>(cfg_.buffers);
  for (std::size_t w0 = 0; w0 < chunks.size(); w0 += wave) {
    const std::size_t w1 = std::min(chunks.size(), w0 + wave);

    // Phase A. With double buffering the *bulk* working set
    // (source/flux/sigma rows -- no wavefront dependency; chunk
    // assignment is cyclic, so the SPE knows its next chunk) prefetches
    // as soon as the buffer's previous writeback has drained (MFC
    // tag-group wait -- the double-buffer reuse discipline),
    // overlapping the previous diagonal. The *face* rows were written
    // by the previous diagonal and can only stream after the dispatch
    // release.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      const TransferPlan tplan =
          plan_chunk(ChunkShape{c.nlines, w.it, nm_, rb, cfg_.aligned_rows});
      cell::Mfc& mfc = machine_.spe(c.spe).mfc();
      const unsigned get_tag = static_cast<unsigned>(c.buf);
      const unsigned put_tag = static_cast<unsigned>(cfg_.buffers + c.buf);
      const std::size_t buf_off = buffer_offsets_[static_cast<std::size_t>(
          c.buf)];

      const sim::Tick dispatch_from =
          std::max(spe.request_at, release) + c.extra;
      if (sink_ && c.extra > 0)
        sink_->span(ppe_track_, "spe-failover", "fault",
                    dispatch_from - c.extra, dispatch_from);
      const sim::Tick grant =
          machine_.dispatch().acquire_work(dispatch_from, cfg_.sync);
      c.grant = grant;
      if (sink_ && grant > dispatch_from)
        sink_->span(ppe_track_, cell::sync_protocol_name(cfg_.sync),
                    "dispatch", dispatch_from, grant);
      if (observer_)
        observer_->on_grant(c.spe, cfg_.sync, dispatch_from, grant,
                            machine_.dispatch().grants());

      const sim::Tick dep = dependency_ready(c.index);
      if (cfg_.buffers >= 2) {
        const sim::Tick bulk_from = mfc.wait_tag(spe.request_at, put_tag);
        if (observer_) observer_->on_tag_wait(c.spe, put_tag, bulk_from);
        cell::DmaRequest bulk_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.bulk_get_bytes());
        bulk_req.tag = get_tag;
        bulk_req.ls_offset = buf_off;
        bulk_req.ls_bytes = bulk_req.total_bytes;
        const cell::DmaCompletion bulk = mfc.submit(bulk_from, bulk_req);
        trace_dma(c.spe, "dma-get-bulk", bulk_from, bulk, true);
        if (observer_)
          observer_->on_dma(c.spe, bulk_req, bulk_from, bulk, c.token);
        cell::DmaRequest face_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.face_get_bytes());
        face_req.ls_to_ls = !centralized;  // SPE-to-SPE face forwarding
        face_req.tag = get_tag;
        face_req.ls_offset = buf_off + bulk_req.total_bytes;
        face_req.ls_bytes = face_req.total_bytes;
        const sim::Tick face_from = std::max({grant, dep, bulk_from});
        const cell::DmaCompletion face = mfc.submit(face_from, face_req);
        trace_dma(c.spe, "dma-get-face", face_from, face, centralized);
        if (observer_)
          observer_->on_dma(c.spe, face_req, face_from, face, c.token);
        c.get_done = std::max(bulk.done, face.done);
        c.get_issue_done = std::max(bulk.issue_done, face.issue_done);
        c.staged_bytes = bulk_req.total_bytes + face_req.total_bytes;
      } else {
        // Synchronous staging: the single buffer is only free after the
        // previous put (the tag wait resolves immediately: request_at
        // already trails the previous completion), and everything waits
        // for the go signal.
        const sim::Tick get_from =
            mfc.wait_tag(std::max(grant, dep), put_tag);
        if (observer_) observer_->on_tag_wait(c.spe, put_tag, get_from);
        cell::DmaRequest get_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.get_bytes());
        get_req.tag = get_tag;
        get_req.ls_offset = buf_off;
        get_req.ls_bytes = get_req.total_bytes;
        const cell::DmaCompletion get = mfc.submit(get_from, get_req);
        trace_dma(c.spe, "dma-get", get_from, get, true);
        if (observer_)
          observer_->on_dma(c.spe, get_req, get_from, get, c.token);
        c.get_done = get.done;
        c.get_issue_done = get.issue_done;
        c.staged_bytes = get_req.total_bytes;
      }
      spe.request_at = std::max(spe.request_at, c.get_issue_done);
    }

    // Phase B: kernels. Per-SPE in-order execution; the wavefront
    // barrier gates the start.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      sim::Tick ready =
          std::max({spe.compute_free, c.get_done, dependency_ready(c.index)});
      if (cfg_.buffers < 2) ready = std::max(ready, spe.put_done);
      // Stall attribution: the grant is a sync constraint even though
      // it reaches the SPU through get_done (the get is submitted after
      // the grant), so dispatch serialization lands in the sync bucket,
      // not the DMA one. grant <= get_done always, so `ready` is
      // unchanged.
      sim::Tick dma_ready = c.get_done;
      if (cfg_.buffers < 2) dma_ready = std::max(dma_ready, spe.put_done);
      if (fault_plan_.enabled()) {
        // The SPU's tag-group wait right before the kernel is where a
        // lost tag completion manifests: the poll times out and retries,
        // delaying the kernel start (and hence the whole dependency
        // chain). Routed through the MFC so the event is counted and
        // priced there; the gate keeps the healthy path byte-identical.
        const sim::Tick waited = machine_.spe(c.spe).mfc().wait_tag(
            ready, static_cast<unsigned>(c.buf));
        ready = std::max(ready, waited);
        dma_ready = std::max(dma_ready, waited);
      }
      account_wait(c.spe, spe.compute_free, dma_ready,
                   std::max(dependency_ready(c.index), c.grant));
      if (observer_)
        observer_->on_tag_wait(c.spe, static_cast<unsigned>(c.buf), ready);
      const ChunkCost& cost =
          kernels_.chunk_cost(w.kernel, cfg_.precision, c.nlines, w.it, nm_,
                              w.fixup, cfg_.gotos_eliminated);
      // A degraded SPE executes the same instruction stream in
      // compute_scale x the cycles (physics is untouched; only time
      // stretches). The gate keeps the healthy path bit-identical.
      double kernel_cycles = cost.cycles;
      if (fault_plan_.enabled())
        kernel_cycles *= fault_plan_.spe_compute_scale(c.spe);
      c.compute_end = machine_.spe(c.spe).compute(ready, kernel_cycles);
      if (sink_)
        sink_->span(spe_tracks_[c.spe], w.fixup ? "kernel+fixup" : "kernel",
                    "compute", ready, c.compute_end);
      if (observer_)
        observer_->on_kernel(c.spe,
                             buffer_offsets_[static_cast<std::size_t>(c.buf)],
                             c.staged_bytes, ready, c.compute_end, c.token);
      spe.compute_free = c.compute_end;
      if (cfg_.buffers >= 2)
        spe.request_at = std::max(spe.request_at, ready);

      flops_ += cost.flops;
      total_compute_cycles_ += cost.cycles;
      spe.pipe += cost.stats;
      cell_solves_ += static_cast<std::uint64_t>(c.nlines) * w.it;
      ++chunks_;
      machine_.spe(c.spe).count_work_item();
    }

    // Phase C: writebacks + completion reports, in compute-end order.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      const TransferPlan tplan =
          plan_chunk(ChunkShape{c.nlines, w.it, nm_, rb, cfg_.aligned_rows});
      const unsigned put_tag = static_cast<unsigned>(cfg_.buffers + c.buf);
      cell::DmaRequest put_req =
          make_request(tplan, cell::DmaDir::kPut, tplan.put_bytes());
      put_req.tag = put_tag;
      put_req.ls_offset = buffer_offsets_[static_cast<std::size_t>(c.buf)];
      put_req.ls_bytes = put_req.total_bytes;
      const cell::DmaCompletion put =
          machine_.spe(c.spe).mfc().submit(c.compute_end, put_req);
      trace_dma(c.spe, "dma-put", c.compute_end, put, true);
      if (observer_)
        observer_->on_dma(c.spe, put_req, c.compute_end, put, c.token);
      // The SPE signals completion only after its writeback DMA has
      // drained (tag-group wait), so the PPE sees the report after
      // put.done -- which serializes the next diagonal's grants behind
      // this diagonal's memory traffic under centralized dispatch.
      if (observer_) observer_->on_tag_wait(c.spe, put_tag, put.done);
      const sim::Tick report =
          machine_.dispatch().report_done(put.done, cfg_.sync);
      if (sink_ && report > put.done)
        sink_->span(spe_tracks_[c.spe], "report", "sync", put.done, report);
      if (observer_)
        observer_->on_report(c.spe, cfg_.sync, std::max(put.done, report),
                             c.token);
      const sim::Tick completion = std::max(put.done, report);
      c.completion = completion;
      next_barrier_ = std::max(next_barrier_, completion);
      reports_horizon_ = std::max(reports_horizon_, report);
      spe.put_done = put.done;
      spe.compute_free = std::max(spe.compute_free, put.issue_done);
      if (cfg_.buffers < 2)
        spe.request_at = std::max(spe.request_at, completion);
    }
  }

  // Publish this diagonal's chunk completions for the next diagonal's
  // per-line dependency checks.
  prev_diag_completion_.resize(chunks.size());
  prev_diag_compute_end_.resize(chunks.size());
  for (const Chunk& c : chunks) {
    prev_diag_completion_[c.index] = c.completion;
    prev_diag_compute_end_[c.index] = c.compute_end;
  }
}

RunReport TimingEngine::finish() {
  RunReport r;
  const sim::Tick end = next_barrier_;
  if (observer_) observer_->on_run_end(end);
  // CELLSWEEP_HAZARD_CHECK strict mode: the engine owns the checker, so
  // it owns the escalation too (externally attached observers leave the
  // severity policy to their caller, e.g. deck_runner --check).
  if (owned_diags_ && owned_diags_->has_errors())
    throw analysis::HazardError("machine-model hazard check failed:\n" +
                                owned_diags_->summary());
  r.seconds = sim::seconds_from_ticks(end);
  r.traffic_bytes = machine_.mic().bytes_moved();
  r.flops = flops_;
  r.cell_solves = cell_solves_;
  r.chunks = chunks_;
  r.dispatch_busy_grants =
      static_cast<double>(machine_.dispatch().grants());
  r.ls_high_water = ls_high_water_;

  double busy = 0;
  std::uint64_t cmds = 0, xfers = 0;
  r.spe_stalls.resize(machine_.num_spes());
  r.mfc_queue_occupancy.assign(machine_.spec().mfc_queue_depth, 0);
  for (int s = 0; s < machine_.num_spes(); ++s) {
    const sim::Tick spe_busy = machine_.spe(s).busy_ticks();
    busy += sim::seconds_from_ticks(spe_busy);
    cmds += machine_.spe(s).mfc().commands();
    xfers += machine_.spe(s).mfc().transfers();

    // Stall breakdown: what the accounting didn't classify as compute,
    // DMA wait or sync wait is idle (no work assigned to this SPE yet,
    // or the run's tail after its last chunk).
    SpeStallSummary& st = r.spe_stalls[s];
    st.busy_s = sim::seconds_from_ticks(spe_busy);
    st.dma_wait_s = sim::seconds_from_ticks(spes_[s].dma_wait);
    st.sync_wait_s = sim::seconds_from_ticks(spes_[s].sync_wait);
    const sim::Tick accounted = spe_busy + spes_[s].dma_wait +
                                spes_[s].sync_wait;
    st.idle_s = accounted < end ? sim::seconds_from_ticks(end - accounted)
                                : 0.0;

    const auto& hist = machine_.spe(s).mfc().occupancy_histogram();
    for (std::size_t k = 0; k < r.mfc_queue_occupancy.size(); ++k)
      r.mfc_queue_occupancy[k] += hist[k];
  }
  r.compute_busy_s = busy / machine_.num_spes();
  r.dma_commands = cmds;
  r.dma_transfers = xfers;
  r.mic_busy_s = sim::seconds_from_ticks(machine_.mic().busy_ticks());
  if (end > 0) {
    r.mic_utilization = static_cast<double>(machine_.mic().busy_ticks()) /
                        static_cast<double>(end);
    r.eib_utilization = static_cast<double>(machine_.eib().busy_ticks()) /
                        static_cast<double>(end);
  }

  // Counter tree: per-SPE engine buckets (which exactly partition `end`
  // per SPE -- tick arithmetic below 2^53 is exact in doubles), the
  // SPU-pipeline and MFC counters under each "spe<N>", a "spe_total"
  // hierarchical aggregate, and the chip-shared units.
  r.counters = sim::CounterSet("machine");
  r.counters.set("run_ticks", static_cast<double>(end));
  r.counters.set("chunks", static_cast<double>(chunks_));
  r.counters.set("cell_solves", static_cast<double>(cell_solves_));
  r.counters.set("flops", static_cast<double>(flops_));
  sim::CounterSet spe_total("spe_total");
  std::vector<sim::CounterSet> spe_sets;
  spe_sets.reserve(static_cast<std::size_t>(machine_.num_spes()));
  for (int s = 0; s < machine_.num_spes(); ++s) {
    sim::CounterSet cs("spe" + std::to_string(s));
    const sim::Tick spe_busy = machine_.spe(s).busy_ticks();
    const sim::Tick accounted =
        spe_busy + spes_[s].dma_wait + spes_[s].sync_wait;
    cs.set("busy_ticks", static_cast<double>(spe_busy));
    cs.set("dma_wait_ticks", static_cast<double>(spes_[s].dma_wait));
    cs.set("sync_wait_ticks", static_cast<double>(spes_[s].sync_wait));
    cs.set("idle_ticks",
           accounted < end ? static_cast<double>(end - accounted) : 0.0);
    cs.set("work_items", static_cast<double>(machine_.spe(s).work_items()));
    publish_pipeline(spes_[s].pipe, cs.child("pipeline"));
    machine_.spe(s).mfc().publish_counters(cs.child("mfc"));
    spe_total.merge(cs);
    spe_sets.push_back(std::move(cs));
  }
  r.counters.add_child(std::move(spe_total));
  for (sim::CounterSet& cs : spe_sets) r.counters.add_child(std::move(cs));
  machine_.mic().publish_counters(r.counters.child("mic"));
  machine_.eib().publish_counters(r.counters.child("eib"));
  machine_.dispatch().publish_counters(r.counters.child("dispatch"));

  // Fault subtree + report: only present when a plan was armed, so the
  // fault-free counter tree (and its JSON) is byte-identical to the
  // pre-fault-injection build.
  if (fault_plan_.enabled()) {
    std::uint64_t retried = 0, retry_attempts = 0, timeouts = 0;
    sim::Tick backoff = 0, timeout_ticks = 0;
    for (int s = 0; s < machine_.num_spes(); ++s) {
      const cell::Mfc& mfc = machine_.spe(s).mfc();
      retried += mfc.retried_commands();
      retry_attempts += mfc.retry_attempts();
      backoff += mfc.retry_backoff_ticks();
      timeouts += mfc.tag_timeouts();
      timeout_ticks += mfc.tag_timeout_ticks();
    }
    sim::CounterSet& f = r.counters.child("faults");
    f.set("spes_disabled", static_cast<double>(spes_disabled_));
    f.set("spes_failed", static_cast<double>(spes_failed_));
    f.set("redispatched_chunks", static_cast<double>(redispatched_chunks_));
    f.set("failover_ticks", static_cast<double>(failover_ticks_));
    f.set("dma_retried_commands", static_cast<double>(retried));
    f.set("dma_retry_attempts", static_cast<double>(retry_attempts));
    f.set("dma_retry_backoff_ticks", static_cast<double>(backoff));
    f.set("tag_timeouts", static_cast<double>(timeouts));
    f.set("tag_timeout_ticks", static_cast<double>(timeout_ticks));
    f.set("dropped_messages",
          static_cast<double>(machine_.dispatch().dropped_messages()));
    f.set("drop_wait_ticks",
          static_cast<double>(machine_.dispatch().drop_wait_ticks()));
    f.set("mic_throttled_requests",
          static_cast<double>(machine_.mic().throttled_requests()));
    f.set("mic_throttle_ticks",
          static_cast<double>(machine_.mic().throttle_ticks()));
    r.faults.enabled = true;
    r.faults.spes_disabled = spes_disabled_;
    r.faults.spes_failed = spes_failed_;
    r.faults.redispatched_chunks = redispatched_chunks_;
    r.faults.dma_retries = retry_attempts;
    r.faults.tag_timeouts = timeouts;
    r.faults.dropped_messages = machine_.dispatch().dropped_messages();
    r.faults.mic_throttled = machine_.mic().throttled_requests();
  }

  // Time-sliced profile: snapshot the windowed series, and replay them
  // into the downstream trace as Chrome counter events so the
  // utilization-over-time curves render beside the spans.
  if (cfg_.profiler) {
    r.timeseries = cfg_.profiler->profile();
    if (cfg_.trace_sink) cfg_.profiler->emit_counter_events(*cfg_.trace_sink);
  }

  const cell::CellSpec& spec = machine_.spec();
  r.memory_bound_s = r.traffic_bytes / spec.mic_bytes_per_s;
  r.compute_bound_s =
      total_compute_cycles_ / (spec.clock_hz * spec.num_spes);
  if (r.seconds > 0) {
    r.achieved_flops_per_s = static_cast<double>(r.flops) / r.seconds;
    if (r.cell_solves > 0)
      r.grind_seconds = r.seconds / static_cast<double>(r.cell_solves);
  }
  return r;
}

CellSweep3D::CellSweep3D(const sweep::Problem& problem,
                         const CellSweepConfig& cfg, int sn_order, int l_max,
                         int nm_cap)
    : problem_(&problem), cfg_(cfg), sn_order_(sn_order), l_max_(l_max) {
  cfg_.sweep.kernel = cfg_.kernel;
  const sweep::SnQuadrature quad(sn_order_);
  cfg_.sweep.validate(problem.grid().kt, quad.angles_per_octant());
  nm_ = sweep::MomentTable(quad, l_max_, nm_cap).nm();
  nm_cap_ = nm_cap;
}

RunReport CellSweep3D::run(RunMode mode) {
  return cfg_.use_spes ? run_on_spes(mode) : run_on_ppe(mode);
}

template <typename Real>
void CellSweep3D::run_functional(RunReport& report,
                                 const sweep::DiagonalObserver& obs) {
  const sweep::SnQuadrature quad(sn_order_);
  sweep::SweepState<Real> state(*problem_, quad, l_max_, nm_cap_);
  report.solve = sweep::solve_source_iteration(state, cfg_.sweep, obs);
  report.absorption = state.absorption_rate();
  report.leakage = state.leakage();
}

RunReport CellSweep3D::run_on_ppe(RunMode mode) {
  const sweep::SnQuadrature quad(sn_order_);
  const int nm = nm_;
  const WorkloadTotals totals =
      audit_workload(problem_->grid(), quad.angles_per_octant(), cfg_, nm);

  const perf::ProcessorModel ppe =
      cfg_.xlc ? perf::ppe_xlc() : perf::ppe_gcc();
  RunReport r;
  r.seconds = ppe.seconds(totals.cell_solves, totals.flops);
  r.flops = totals.flops;
  r.cell_solves = totals.cell_solves;
  r.chunks = totals.chunks;
  r.traffic_bytes =
      static_cast<double>(totals.cell_solves) * ppe.bytes_per_solve;
  r.achieved_flops_per_s = static_cast<double>(r.flops) / r.seconds;
  r.grind_seconds = r.seconds / static_cast<double>(r.cell_solves);

  if (mode == RunMode::kFunctional) {
    // The PPE stages always compute in double precision (the original
    // unported code).
    run_functional<double>(r, {});
  }
  return r;
}

RunReport CellSweep3D::run_on_spes(RunMode mode) {
  const sweep::SnQuadrature quad(sn_order_);
  const int nm = nm_;
  TimingEngine engine(cfg_, problem_->grid(), nm);
  const sweep::DiagonalObserver obs = [&](const sweep::DiagonalWork& w) {
    engine.on_diagonal(w);
  };

  RunReport functional_part;
  if (mode == RunMode::kFunctional) {
    if (cfg_.precision == Precision::kDouble)
      run_functional<double>(functional_part, obs);
    else
      run_functional<float>(functional_part, obs);
  } else {
    for (int iter = 0; iter < cfg_.sweep.max_iterations; ++iter) {
      const bool fixup = iter >= cfg_.sweep.fixup_from_iteration;
      enumerate_sweep(problem_->grid(), quad.angles_per_octant(), cfg_.sweep,
                      fixup, obs);
    }
  }

  RunReport r = engine.finish();
  r.solve = functional_part.solve;
  r.absorption = functional_part.absorption;
  r.leakage = functional_part.leakage;
  return r;
}

}  // namespace cellsweep::core
