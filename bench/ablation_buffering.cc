// Ablation: staging-buffer depth x bank offsets.
//
// Separates the two memory-system optimizations Figure 5 folds into
// larger steps: double buffering (3.03 -> 2.88 s) and the bank-offset
// allocation (part of the 1.68 -> 1.48 s step).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Ablation: buffering depth x bank offsets (" +
                      std::to_string(opt.cube) + "^3)");

  util::TextTable table({"kernel", "buffers", "bank offsets", "run time [s]",
                         "LS used [KB]", "MIC busy [s]"});
  bench::BenchJson json("ablation_buffering", opt.cube);
  for (sweep::KernelKind kernel :
       {sweep::KernelKind::kScalar, sweep::KernelKind::kSimd}) {
    for (int buffers : {1, 2}) {
      for (bool offsets : {false, true}) {
        const sweep::Problem problem =
            sweep::Problem::benchmark_cube(opt.cube);
        core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
            core::OptimizationStage::kSpeLsPoke);
        cfg.kernel = kernel;
        cfg.sweep.kernel = kernel;
        cfg.buffers = buffers;
        cfg.bank_offsets = offsets;
        core::CellSweep3D runner(problem, cfg);
        const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
        json.add_run(std::string(kernel == sweep::KernelKind::kScalar
                                     ? "scalar"
                                     : "simd") +
                         "_buf" + std::to_string(buffers) +
                         (offsets ? "_offsets" : "_flat"),
                     r);
        table.add_row(
            {kernel == sweep::KernelKind::kScalar ? "scalar" : "SIMD",
             bench::fmt("%.0f", buffers), offsets ? "yes" : "no",
             bench::fmt("%.3f", r.seconds),
             bench::fmt("%.0f", r.ls_high_water / 1024.0),
             bench::fmt("%.3f", r.mic_busy_s)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nDouble buffering trades local store for overlap; bank\n"
               "offsets recover DRAM bandwidth independent of the kernel.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
