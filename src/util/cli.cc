#include "util/cli.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace cellsweep::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    if (!has_value) {
      // Boolean flags may appear bare; typed flags consume the next
      // arg -- unless that arg is itself a flag ("--deck --trace x"
      // must not set deck="--trace"). Single-dash tokens stay eligible
      // so negative numbers ("--offset -5") keep working.
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        error_ = "flag --" + name + " expects a value";
        return false;
      }
    }
    it->second.value = std::move(value);
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::out_of_range("unregistered flag: " + name);
  return it->second.value;
}

long CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  errno = 0;
  char* end = nullptr;
  const long x = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw CliError("flag --" + name + ": '" + v + "' is not an integer");
  if (errno == ERANGE)
    throw CliError("flag --" + name + ": '" + v + "' is out of range");
  return x;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw CliError("flag --" + name + ": '" + v + "' is not a number");
  if (errno == ERANGE)
    throw CliError("flag --" + name + ": '" + v + "' is out of range");
  return x;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliParser::usage(const std::string& argv0) const {
  std::ostringstream os;
  os << description_ << "\n\nUsage: " << argv0 << " [flags]\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace cellsweep::util
