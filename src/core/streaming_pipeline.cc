#include "core/streaming_pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "analysis/hazard.h"
#include "cellsim/observer.h"
#include "util/aligned.h"

namespace cellsweep::core {
namespace {

/// Publishes one SPE's folded pipeline schedules (the Section 5.1
/// counters) into @p out.
void publish_pipeline(const cell::PipelineStats& p, sim::CounterSet& out) {
  out.set("kernels", static_cast<double>(p.kernels));
  out.set("cycles", static_cast<double>(p.cycles));
  out.set("issue_cycles", static_cast<double>(p.issue_cycles));
  out.set("instructions", static_cast<double>(p.instructions));
  out.set("dual_issues", static_cast<double>(p.dual_issues));
  out.set("even_pipe_insts", static_cast<double>(p.even_pipe_insts));
  out.set("odd_pipe_insts", static_cast<double>(p.odd_pipe_insts));
  out.set("dep_stall_cycles", static_cast<double>(p.dep_stall_cycles));
  out.set("block_stall_cycles", static_cast<double>(p.block_stall_cycles));
  out.set("flops", static_cast<double>(p.flops));
}

}  // namespace

StreamingPipeline::StreamingPipeline(const StreamConfig& cfg,
                                     const LsPlacement& placement)
    : cfg_(cfg),
      machine_(cfg.chip),
      spes_(cfg.chip.num_spes),
      sink_(cfg.trace_sink) {
  // A time-sliced profiler interposes on the trace stream: the engine
  // emits into the profiler, which samples utilization windows and
  // forwards every event to the plain sink (so both can be attached).
  // Pure observation either way -- no simulated tick reads the sink.
  if (cfg_.profiler) {
    cfg_.profiler->forward_to(cfg.trace_sink);
    sink_ = cfg_.profiler;
  }
  if (sink_) {
    ppe_track_ = sink_->track("PPE");
    spe_tracks_.reserve(spes_.size());
    for (std::size_t s = 0; s < spes_.size(); ++s)
      spe_tracks_.push_back(sink_->track("SPE" + std::to_string(s)));
    eib_track_ = sink_->track("EIB");
    mic_track_ = sink_->track("MIC");
  }
  // Chunks rotate through `buffers` staging buffers; a degenerate
  // config below 1 behaves as synchronous single buffering.
  if (cfg_.buffers < 1) cfg_.buffers = 1;

  // Fault plan: built once (the constructor validates the spec), then
  // attached to every unit that can fail. alive_ starts from the
  // boot-time SPE health -- the 7-of-8 yield case runs the whole
  // workload on the survivors.
  fault_plan_ = sim::FaultPlan(cfg_.faults);
  alive_.assign(spes_.size(), 1);
  failed_.assign(spes_.size(), 0);
  if (fault_plan_.enabled()) {
    for (int s = 0; s < machine_.num_spes(); ++s) {
      machine_.spe(s).mfc().attach_faults(&fault_plan_, s);
      if (fault_plan_.spe_disabled(s)) {
        alive_[static_cast<std::size_t>(s)] = 0;
        ++spes_disabled_;
      }
    }
    machine_.mic().attach_faults(&fault_plan_);
    machine_.dispatch().attach_faults(&fault_plan_);
    if (spes_disabled_ >= machine_.num_spes())
      throw sim::FaultError(
          "fault plan disables every SPE: nothing left to run on");
  }

  // Multi-tenant mode: claim SPEs from the shared allocator (blocking
  // until min_spes are free). A solo tenant gets the whole chip and --
  // since yielding only happens under pressure -- keeps it, so its
  // timing stays byte-identical to the allocator-free build.
  claimed_.assign(spes_.size(), 1);
  if (cfg_.spe_allocator) {
    if (cfg_.spe_allocator->num_spes() != machine_.num_spes())
      throw std::invalid_argument(
          "StreamingPipeline: SpeAllocator width != chip.num_spes");
    min_spes_ = std::clamp(cfg_.min_spes, 1, machine_.num_spes());
    claim_ = cfg_.spe_allocator->claim(min_spes_, machine_.num_spes(),
                                       cfg_.claim_weight, cfg_.claim_quota);
    claimed_.assign(spes_.size(), 0);
    for (const int id : claim_.ids)
      claimed_[static_cast<std::size_t>(id)] = 1;
    min_claimed_ = max_claimed_ = claim_.count();
    // Start the cyclic cursor on our lowest claimed SPE so chunk 0
    // lands deterministically regardless of which SPEs we got.
    rr_spe_ = claim_.ids.front();
  }

  // Protocol observer: an externally attached checker wins; otherwise
  // CELLSWEEP_HAZARD_CHECK in the environment arms a pipeline-owned one
  // whose errors finish() escalates (the CI hazard-checked suite mode).
  observer_ = cfg.hazard;
  if (!observer_ && std::getenv("CELLSWEEP_HAZARD_CHECK") != nullptr) {
    owned_diags_ = std::make_unique<analysis::Diagnostics>();
    owned_checker_ =
        std::make_unique<analysis::HazardChecker>(owned_diags_.get(), cfg.chip);
    observer_ = owned_checker_.get();
  }

  // LS placement: the workload's resident regions plus one staging
  // buffer per rotation slot, laid out identically on every SPE.
  // LocalStore::allocate throws cell::LocalStoreOverflow when the
  // budget (including the code reservation) does not fit in 256 KB.
  for (int s = 0; s < machine_.num_spes(); ++s) {
    cell::LocalStore& ls = machine_.spe(s).local_store();
    ls.reset();
    if (observer_) observer_->on_ls_reset(s);
    for (const auto& [name, bytes] : placement.resident) {
      ls.allocate(name, bytes);
      if (observer_)
        observer_->on_ls_alloc(s, ls.regions().back(), ls.capacity());
    }
    for (int b = 0; b < cfg_.buffers; ++b) {
      const std::size_t off = ls.allocate("chunk-buffer-" + std::to_string(b),
                                          placement.buffer_bytes);
      if (observer_)
        observer_->on_ls_alloc(s, ls.regions().back(), ls.capacity());
      if (s == 0) buffer_offsets_.push_back(off);
    }
  }
  ls_high_water_ = machine_.spe(0).local_store().high_water();
}

StreamingPipeline::~StreamingPipeline() {
  // finish() already released on the normal path; this covers runs torn
  // down by an exception so a dying tenant never strands its SPEs.
  if (cfg_.spe_allocator && !claim_.empty())
    cfg_.spe_allocator->release(claim_);
}

void StreamingPipeline::rebalance(std::size_t batch_chunks) {
  SpeAllocator& alloc = *cfg_.spe_allocator;
  // SPEs this batch can actually feed: one chunk set per rotation slot.
  const int need = std::clamp(
      static_cast<int>((batch_chunks + static_cast<std::size_t>(cfg_.buffers) -
                        1) /
                       static_cast<std::size_t>(cfg_.buffers)),
      min_spes_, machine_.num_spes());
  // The NOVA yield, pressure check and target computation in one
  // critical section inside the allocator: the old pressure() /
  // fair_share() / shrink() sequence could act on a waiter that had
  // already been served, or miss one arriving between the calls.
  if (alloc.shrink_to_fair_share(claim_, need, min_spes_)) {
    ++rebalance_shrinks_;
  } else if (claim_.count() < need) {
    // Slack returned: regrow opportunistically (denied under pressure).
    if (alloc.expand(claim_, need) > 0) ++rebalance_expands_;
  }
  claimed_.assign(claimed_.size(), 0);
  for (const int id : claim_.ids)
    claimed_[static_cast<std::size_t>(id)] = 1;
  min_claimed_ = std::min(min_claimed_, claim_.count());
  max_claimed_ = std::max(max_claimed_, claim_.count());
}

void StreamingPipeline::memory_pass(const char* name, double bytes) {
  confined_.check("StreamingPipeline::memory_pass");
  // One streaming pass over main memory (the sweep's source-moment
  // rebuild, the stencil's residual reduction). Bandwidth-bound; the
  // arithmetic is fully pipelined underneath. Serializes: the pass
  // starts at the current horizon and later work starts behind it.
  const sim::Tick before = next_barrier_;
  next_barrier_ = machine_.mic().submit(next_barrier_, bytes, 0, 1.0);
  if (sink_) {
    sink_->span(mic_track_, name, "memory", before, next_barrier_);
    sink_->counter(mic_track_, "traffic-gb", next_barrier_,
                   machine_.mic().bytes_moved() / 1e9);
  }
}

int StreamingPipeline::pick_spe(sim::Tick& extra) {
  const int n = static_cast<int>(spes_.size());
  for (int scanned = 0; scanned <= 2 * n; ++scanned) {
    const int s = rr_spe_;
    rr_spe_ = (rr_spe_ + 1) % n;
    // SPEs another tenant holds are simply not in the rotation (no
    // re-dispatch accounting: the chunk was never theirs to lose).
    if (!claimed_[static_cast<std::size_t>(s)]) continue;
    if (!alive_[static_cast<std::size_t>(s)]) {
      // Every chunk the round-robin would have placed on a mid-run
      // casualty is work the survivors absorb; boot-disabled SPEs were
      // never in the rotation, so they don't count as re-dispatches.
      if (failed_[static_cast<std::size_t>(s)]) ++redispatched_chunks_;
      continue;
    }
    if (fault_plan_.enabled()) {
      const std::int64_t limit = fault_plan_.spe_fail_after(s);
      if (limit > 0 &&
          spes_[static_cast<std::size_t>(s)].served >=
              static_cast<std::uint64_t>(limit)) {
        // The SPE dies with this chunk assigned: the PPE watchdog
        // detects the silence and re-dispatches to the next survivor.
        // Only this first detection pays the watchdog latency; later
        // rounds skip the dead SPE with no extra cost.
        alive_[static_cast<std::size_t>(s)] = 0;
        failed_[static_cast<std::size_t>(s)] = 1;
        ++spes_failed_;
        ++redispatched_chunks_;
        extra += machine_.spec().spe_fail_detect;
        failover_ticks_ += machine_.spec().spe_fail_detect;
        continue;
      }
    }
    return s;
  }
  throw sim::FaultError("every SPE has failed: nothing left to run on");
}

void StreamingPipeline::account_wait(int spe_index, sim::Tick base,
                                     sim::Tick dma_ready,
                                     sim::Tick sync_ready) {
  // The SPU stalls over [base, max(dma_ready, sync_ready)). Split the
  // interval at the earlier constraint's resolution: time up to it is
  // charged to that bucket, the rest to the later (binding) one. The
  // two buckets partition the wait exactly, so per-SPE busy + dma_wait
  // + sync_wait + idle always sums to the run length.
  SpeClock& spe = spes_[spe_index];
  const sim::Tick first = std::max(base, std::min(dma_ready, sync_ready));
  const sim::Tick ready = std::max(base, std::max(dma_ready, sync_ready));
  const bool dma_first = dma_ready <= sync_ready;
  (dma_first ? spe.dma_wait : spe.sync_wait) += first - base;
  (dma_first ? spe.sync_wait : spe.dma_wait) += ready - first;
  if (sink_) {
    const int t = spe_tracks_[spe_index];
    const char* sync_name = cfg_.sync == cell::SyncProtocol::kAtomicDistributed
                                ? "atomic-wait"
                            : cfg_.sync == cell::SyncProtocol::kMailbox
                                ? "mailbox-wait"
                                : "ls-poke-wait";
    const char* a = dma_first ? "dma-wait" : sync_name;
    const char* b = dma_first ? sync_name : "dma-wait";
    if (first > base) sink_->span(t, a, dma_first ? "dma" : "sync", base, first);
    if (ready > first)
      sink_->span(t, b, dma_first ? "sync" : "dma", first, ready);
  }
}

void StreamingPipeline::trace_dma(int spe_index, const char* name,
                                  sim::Tick submitted,
                                  const cell::DmaCompletion& c,
                                  bool to_memory) {
  if (!sink_) return;
  const int t = spe_tracks_[spe_index];
  // SPU-side channel phase, MFC queue back-pressure phase, then the
  // payload streaming through the shared fabric.
  sink_->span(t, "dma-issue", "dma", submitted, c.issue_done);
  if (c.start > c.issue_done)
    sink_->span(t, "dma-queue", "dma", c.issue_done, c.start);
  sink_->span(to_memory ? mic_track_ : eib_track_, name, "dma", c.start,
              c.done);
  if (c.retries > 0) sink_->instant(t, "dma-retry", "fault", c.done);
}

cell::DmaRequest StreamingPipeline::make_request(const TransferPlan& plan,
                                                 cell::DmaDir dir,
                                                 std::size_t bytes_total)
    const {
  const cell::CellSpec& spec = machine_.spec();
  cell::DmaRequest req;
  req.dir = dir;
  req.alignment = cfg_.aligned_rows ? 128 : 16;
  req.banks_touched =
      cfg_.bank_offsets ? spec.memory_banks : spec.banks_without_offsets;
  req.total_bytes =
      util::round_up(std::max<std::size_t>(bytes_total, 16), 16);
  if (!cfg_.dma_lists) {
    // One MFC command per row (the pre-"DMA lists" implementation).
    req.as_list = false;
    req.element_bytes = plan.row_bytes;
  } else {
    // One DMA-list command; element size is the configured
    // granularity (512-byte rows shipped; Fig. 10 raises it).
    req.as_list = true;
    req.element_bytes = util::round_up(
        std::clamp<std::size_t>(cfg_.dma_granularity, plan.row_bytes,
                                spec.dma_max_bytes),
        16);
  }
  return req;
}

void StreamingPipeline::run_batch(const std::vector<StreamChunkSpec>& specs,
                                  const DependencyPolicy& deps,
                                  bool new_block) {
  confined_.check("StreamingPipeline::run_batch");
  // A new pipeline block starts behind everything outstanding (the
  // sweep's blocks are sequential -- the paper's sweep() processes
  // them in order) and forgets the upstream chunk history.
  if (new_block) {
    barrier_ = next_barrier_;
    prev_completion_.clear();
    prev_compute_end_.clear();
    if (sink_) sink_->instant(ppe_track_, "block-barrier", "sync", barrier_);
  }

  // Multi-tenant claim adjustment happens only here, between batches:
  // mid-wave the staging buffers of a yielded SPE could still be in
  // flight. A solo tenant never shrinks (no pressure) and never needs
  // to grow, so this is a no-op for it.
  if (cfg_.spe_allocator) rebalance(specs.size());

  // Dispatch release: with centralized scheduling the PPE must observe
  // every completion report of the previous batch before it can hand
  // out the next one -- the serialization the paper's Fig. 10 removes
  // with distributed self-scheduling (SPEs then simply bump the shared
  // counter from the atomic unit and chase per-chunk dependencies).
  const bool centralized =
      cfg_.sync != cell::SyncProtocol::kAtomicDistributed;
  const sim::Tick release =
      centralized ? std::max(barrier_, reports_horizon_)
                  : barrier_ + machine_.spec().atomic_op_latency;

  // Upstream readiness is the workload's dependency policy over the
  // previous batch's chunks: under centralized dispatch faces travel
  // through main memory, so an upstream chunk must have *completed*
  // (writeback drained); the distributed variant forwards faces
  // SPE-to-SPE from the upstream local store, so its compute end (plus
  // an atomic hop) suffices.
  const UpstreamView upstream{
      centralized ? prev_completion_ : prev_compute_end_, barrier_,
      centralized ? sim::Tick{0} : machine_.spec().atomic_op_latency};
  auto dependency_ready = [&](int c) -> sim::Tick {
    return deps(upstream, c);
  };

  // The batch's chunk list, assigned to SPEs in the paper's cyclic
  // manner. Each chunk streams through one of the SPE's rotating
  // staging buffers; the token is the global chunk sequence number
  // binding its grant, DMAs, kernel and report together for the
  // protocol checker.
  struct Chunk {
    const StreamChunkSpec* spec;
    int spe;
    int buf;
    std::uint64_t token;
    /// Failover delay this chunk pays before dispatch: the PPE watchdog
    /// time spent declaring its original SPE dead and re-dispatching.
    sim::Tick extra = 0;
    sim::Tick grant = 0;
    sim::Tick get_done = 0;
    sim::Tick get_issue_done = 0;
    sim::Tick compute_end = 0;
    sim::Tick completion = 0;
    std::size_t staged_bytes = 0;  ///< LS bytes the kernel consumes
  };
  std::vector<Chunk> chunks;
  chunks.reserve(specs.size());
  for (const StreamChunkSpec& sc : specs) {
    sim::Tick extra = 0;
    const int s = pick_spe(extra);
    SpeClock& spe = spes_[s];
    const int buf = static_cast<int>(spe.served % cfg_.buffers);
    ++spe.served;
    chunks.push_back(Chunk{&sc, s, buf, token_seq_++, extra});
  }

  // The chunks stream in waves of `buffers` chunks per SPE. Within a
  // wave, phase A (grants + working-set gets, in grant order) runs for
  // every chunk, then phase B (kernels), then phase C (writebacks +
  // reports): shared resources (dispatch fabric, MIC) see near-monotone
  // request times, which the FIFO contention model requires. The wave
  // bound keeps the model honest about buffer rotation: an SPE
  // prefetches at most one chunk ahead per staging buffer -- the
  // lookahead double buffering actually grants -- instead of racing a
  // whole batch's gets past unconsumed data. Only LIVE SPEs carry
  // chunks, so a degraded chip must use the survivor count: with the
  // full width a survivor would draw more than `buffers` chunks in one
  // wave and phase A would re-stage a buffer its phase-B kernel has
  // not consumed yet (the hazard checker flags exactly that).
  std::size_t live = 0;
  for (std::size_t s = 0; s < alive_.size(); ++s)
    live += static_cast<std::size_t>(alive_[s] != 0 && claimed_[s] != 0);
  std::size_t wave =
      std::max<std::size_t>(live, 1) * static_cast<std::size_t>(cfg_.buffers);
  for (std::size_t w0 = 0; w0 < chunks.size(); w0 += wave) {
    // Chunk-granularity QoS, decided strictly between waves (a yielded
    // or abandoned SPE has no staging buffer in flight there). Both
    // checks read host-side state only: when neither fires, the batch
    // arithmetic below is untouched.
    if (cfg_.cancel && cfg_.cancel->load(std::memory_order_relaxed))
      throw RunCancelled("run cancelled between waves (chunk " +
                         std::to_string(w0) + " of " +
                         std::to_string(chunks.size()) + ")");
    if (w0 > 0 && cfg_.spe_allocator &&
        cfg_.spe_allocator->priority_pressure(claim_.weight)) {
      // A strictly higher-weight claim is blocked: yield *now* rather
      // than at the next batch boundary. The remaining chunks move to
      // the surviving claim and the wave narrows with it.
      const std::size_t rest = chunks.size() - w0;
      const int need = std::clamp(
          static_cast<int>(
              (rest + static_cast<std::size_t>(cfg_.buffers) - 1) /
              static_cast<std::size_t>(cfg_.buffers)),
          min_spes_, machine_.num_spes());
      if (cfg_.spe_allocator->shrink_to_fair_share(claim_, need, min_spes_)) {
        ++preempt_yields_;
        claimed_.assign(claimed_.size(), 0);
        for (const int id : claim_.ids)
          claimed_[static_cast<std::size_t>(id)] = 1;
        min_claimed_ = std::min(min_claimed_, claim_.count());
        // Reassign the not-yet-started chunks: roll their buffer
        // rotation back, restart the cyclic cursor on our lowest
        // surviving SPE (deterministic regardless of which ids were
        // yielded), and re-run the cyclic assignment over the
        // narrowed claim. Tokens are positional, so they stand.
        for (std::size_t i = w0; i < chunks.size(); ++i)
          --spes_[chunks[i].spe].served;
        rr_spe_ = claim_.ids.front();
        for (std::size_t i = w0; i < chunks.size(); ++i) {
          sim::Tick extra = 0;
          const int s = pick_spe(extra);
          SpeClock& spe = spes_[s];
          chunks[i].spe = s;
          chunks[i].buf = static_cast<int>(spe.served % cfg_.buffers);
          chunks[i].extra = extra;
          ++spe.served;
        }
        live = 0;
        for (std::size_t s = 0; s < alive_.size(); ++s)
          live +=
              static_cast<std::size_t>(alive_[s] != 0 && claimed_[s] != 0);
        wave = std::max<std::size_t>(live, 1) *
               static_cast<std::size_t>(cfg_.buffers);
        if (sink_)
          sink_->instant(ppe_track_, "preempt-yield", "sync", next_barrier_);
      }
    }
    const std::size_t w1 = std::min(chunks.size(), w0 + wave);

    // Phase A. With double buffering the *bulk* working set (no
    // upstream dependency; chunk assignment is cyclic, so the SPE
    // knows its next chunk) prefetches as soon as the buffer's
    // previous writeback has drained (MFC tag-group wait -- the
    // double-buffer reuse discipline), overlapping the previous batch.
    // The *face* rows were written by the previous batch and can only
    // stream after the dispatch release.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      const TransferPlan& tplan = c.spec->plan;
      cell::Mfc& mfc = machine_.spe(c.spe).mfc();
      const unsigned get_tag = static_cast<unsigned>(c.buf);
      const unsigned put_tag = static_cast<unsigned>(cfg_.buffers + c.buf);
      const std::size_t buf_off = buffer_offsets_[static_cast<std::size_t>(
          c.buf)];

      const sim::Tick dispatch_from =
          std::max(spe.request_at, release) + c.extra;
      if (sink_ && c.extra > 0)
        sink_->span(ppe_track_, "spe-failover", "fault",
                    dispatch_from - c.extra, dispatch_from);
      const sim::Tick grant =
          machine_.dispatch().acquire_work(dispatch_from, cfg_.sync);
      c.grant = grant;
      if (sink_ && grant > dispatch_from)
        sink_->span(ppe_track_, cell::sync_protocol_name(cfg_.sync),
                    "dispatch", dispatch_from, grant);
      if (observer_)
        observer_->on_grant(c.spe, cfg_.sync, dispatch_from, grant,
                            machine_.dispatch().grants());

      const sim::Tick dep = dependency_ready(c.spec->index);
      if (cfg_.buffers >= 2) {
        const sim::Tick bulk_from = mfc.wait_tag(spe.request_at, put_tag);
        if (observer_) observer_->on_tag_wait(c.spe, put_tag, bulk_from);
        cell::DmaRequest bulk_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.bulk_get_bytes());
        bulk_req.tag = get_tag;
        bulk_req.ls_offset = buf_off;
        bulk_req.ls_bytes = bulk_req.total_bytes;
        const cell::DmaCompletion bulk = mfc.submit(bulk_from, bulk_req);
        trace_dma(c.spe, "dma-get-bulk", bulk_from, bulk, true);
        if (observer_)
          observer_->on_dma(c.spe, bulk_req, bulk_from, bulk, c.token);
        cell::DmaRequest face_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.face_get_bytes());
        face_req.ls_to_ls = !centralized;  // SPE-to-SPE face forwarding
        face_req.tag = get_tag;
        face_req.ls_offset = buf_off + bulk_req.total_bytes;
        face_req.ls_bytes = face_req.total_bytes;
        const sim::Tick face_from = std::max({grant, dep, bulk_from});
        const cell::DmaCompletion face = mfc.submit(face_from, face_req);
        trace_dma(c.spe, "dma-get-face", face_from, face, centralized);
        if (observer_)
          observer_->on_dma(c.spe, face_req, face_from, face, c.token);
        c.get_done = std::max(bulk.done, face.done);
        c.get_issue_done = std::max(bulk.issue_done, face.issue_done);
        c.staged_bytes = bulk_req.total_bytes + face_req.total_bytes;
      } else {
        // Synchronous staging: the single buffer is only free after the
        // previous put (the tag wait resolves immediately: request_at
        // already trails the previous completion), and everything waits
        // for the go signal.
        const sim::Tick get_from =
            mfc.wait_tag(std::max(grant, dep), put_tag);
        if (observer_) observer_->on_tag_wait(c.spe, put_tag, get_from);
        cell::DmaRequest get_req =
            make_request(tplan, cell::DmaDir::kGet, tplan.get_bytes());
        get_req.tag = get_tag;
        get_req.ls_offset = buf_off;
        get_req.ls_bytes = get_req.total_bytes;
        const cell::DmaCompletion get = mfc.submit(get_from, get_req);
        trace_dma(c.spe, "dma-get", get_from, get, true);
        if (observer_)
          observer_->on_dma(c.spe, get_req, get_from, get, c.token);
        c.get_done = get.done;
        c.get_issue_done = get.issue_done;
        c.staged_bytes = get_req.total_bytes;
      }
      spe.request_at = std::max(spe.request_at, c.get_issue_done);
    }

    // Phase B: kernels. Per-SPE in-order execution; the upstream
    // dependency gates the start.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      sim::Tick ready = std::max(
          {spe.compute_free, c.get_done, dependency_ready(c.spec->index)});
      if (cfg_.buffers < 2) ready = std::max(ready, spe.put_done);
      // Stall attribution: the grant is a sync constraint even though
      // it reaches the SPU through get_done (the get is submitted after
      // the grant), so dispatch serialization lands in the sync bucket,
      // not the DMA one. grant <= get_done always, so `ready` is
      // unchanged.
      sim::Tick dma_ready = c.get_done;
      if (cfg_.buffers < 2) dma_ready = std::max(dma_ready, spe.put_done);
      if (fault_plan_.enabled()) {
        // The SPU's tag-group wait right before the kernel is where a
        // lost tag completion manifests: the poll times out and retries,
        // delaying the kernel start (and hence the whole dependency
        // chain). Routed through the MFC so the event is counted and
        // priced there; the gate keeps the healthy path byte-identical.
        const sim::Tick waited = machine_.spe(c.spe).mfc().wait_tag(
            ready, static_cast<unsigned>(c.buf));
        ready = std::max(ready, waited);
        dma_ready = std::max(dma_ready, waited);
      }
      account_wait(c.spe, spe.compute_free, dma_ready,
                   std::max(dependency_ready(c.spec->index), c.grant));
      if (observer_)
        observer_->on_tag_wait(c.spe, static_cast<unsigned>(c.buf), ready);
      // A degraded SPE executes the same instruction stream in
      // compute_scale x the cycles (physics is untouched; only time
      // stretches). The gate keeps the healthy path bit-identical.
      double kernel_cycles = c.spec->kernel_cycles;
      if (fault_plan_.enabled())
        kernel_cycles *= fault_plan_.spe_compute_scale(c.spe);
      c.compute_end = machine_.spe(c.spe).compute(ready, kernel_cycles);
      if (sink_)
        sink_->span(spe_tracks_[c.spe], c.spec->kernel_name, "compute", ready,
                    c.compute_end);
      if (observer_)
        observer_->on_kernel(c.spe,
                             buffer_offsets_[static_cast<std::size_t>(c.buf)],
                             c.staged_bytes, ready, c.compute_end, c.token);
      if (chunk_hook_) chunk_hook_(*c.spec, ready, c.compute_end);
      spe.compute_free = c.compute_end;
      if (cfg_.buffers >= 2)
        spe.request_at = std::max(spe.request_at, ready);

      flops_ += c.spec->flops;
      total_compute_cycles_ += c.spec->kernel_cycles;
      spe.pipe += c.spec->stats;
      work_units_ += c.spec->work_units;
      ++chunks_;
      machine_.spe(c.spe).count_work_item();
    }

    // Phase C: writebacks + completion reports, in compute-end order.
    for (std::size_t i = w0; i < w1; ++i) {
      Chunk& c = chunks[i];
      SpeClock& spe = spes_[c.spe];
      const TransferPlan& tplan = c.spec->plan;
      const unsigned put_tag = static_cast<unsigned>(cfg_.buffers + c.buf);
      cell::DmaRequest put_req =
          make_request(tplan, cell::DmaDir::kPut, tplan.put_bytes());
      put_req.tag = put_tag;
      put_req.ls_offset = buffer_offsets_[static_cast<std::size_t>(c.buf)];
      put_req.ls_bytes = put_req.total_bytes;
      const cell::DmaCompletion put =
          machine_.spe(c.spe).mfc().submit(c.compute_end, put_req);
      trace_dma(c.spe, "dma-put", c.compute_end, put, true);
      if (observer_)
        observer_->on_dma(c.spe, put_req, c.compute_end, put, c.token);
      // The SPE signals completion only after its writeback DMA has
      // drained (tag-group wait), so the PPE sees the report after
      // put.done -- which serializes the next batch's grants behind
      // this batch's memory traffic under centralized dispatch.
      if (observer_) observer_->on_tag_wait(c.spe, put_tag, put.done);
      const sim::Tick report =
          machine_.dispatch().report_done(put.done, cfg_.sync);
      if (sink_ && report > put.done)
        sink_->span(spe_tracks_[c.spe], "report", "sync", put.done, report);
      if (observer_)
        observer_->on_report(c.spe, cfg_.sync, std::max(put.done, report),
                             c.token);
      const sim::Tick completion = std::max(put.done, report);
      c.completion = completion;
      next_barrier_ = std::max(next_barrier_, completion);
      reports_horizon_ = std::max(reports_horizon_, report);
      spe.put_done = put.done;
      spe.compute_free = std::max(spe.compute_free, put.issue_done);
      if (cfg_.buffers < 2)
        spe.request_at = std::max(spe.request_at, completion);
    }
  }

  // Publish this batch's chunk completions for the next batch's
  // dependency checks.
  prev_completion_.resize(chunks.size());
  prev_compute_end_.resize(chunks.size());
  for (const Chunk& c : chunks) {
    prev_completion_[c.spec->index] = c.completion;
    prev_compute_end_[c.spec->index] = c.compute_end;
  }
}

RunReport StreamingPipeline::finish() {
  confined_.check("StreamingPipeline::finish");
  RunReport r;
  const sim::Tick end = next_barrier_;
  if (observer_) observer_->on_run_end(end);
  // CELLSWEEP_HAZARD_CHECK strict mode: the pipeline owns the checker,
  // so it owns the escalation too (externally attached observers leave
  // the severity policy to their caller, e.g. deck_runner --check).
  if (owned_diags_ && owned_diags_->has_errors())
    throw analysis::HazardError("machine-model hazard check failed:\n" +
                                owned_diags_->summary());
  r.seconds = sim::seconds_from_ticks(end);
  r.traffic_bytes = machine_.mic().bytes_moved();
  r.flops = flops_;
  r.cell_solves = work_units_;
  r.chunks = chunks_;
  r.dispatch_busy_grants =
      static_cast<double>(machine_.dispatch().grants());
  r.ls_high_water = ls_high_water_;

  double busy = 0;
  std::uint64_t cmds = 0, xfers = 0;
  r.spe_stalls.resize(machine_.num_spes());
  r.mfc_queue_occupancy.assign(machine_.spec().mfc_queue_depth, 0);
  for (int s = 0; s < machine_.num_spes(); ++s) {
    const sim::Tick spe_busy = machine_.spe(s).busy_ticks();
    busy += sim::seconds_from_ticks(spe_busy);
    cmds += machine_.spe(s).mfc().commands();
    xfers += machine_.spe(s).mfc().transfers();

    // Stall breakdown: what the accounting didn't classify as compute,
    // DMA wait or sync wait is idle (no work assigned to this SPE yet,
    // or the run's tail after its last chunk).
    SpeStallSummary& st = r.spe_stalls[s];
    st.busy_s = sim::seconds_from_ticks(spe_busy);
    st.dma_wait_s = sim::seconds_from_ticks(spes_[s].dma_wait);
    st.sync_wait_s = sim::seconds_from_ticks(spes_[s].sync_wait);
    const sim::Tick accounted = spe_busy + spes_[s].dma_wait +
                                spes_[s].sync_wait;
    st.idle_s = accounted < end ? sim::seconds_from_ticks(end - accounted)
                                : 0.0;

    const auto& hist = machine_.spe(s).mfc().occupancy_histogram();
    for (std::size_t k = 0; k < r.mfc_queue_occupancy.size(); ++k)
      r.mfc_queue_occupancy[k] += hist[k];
  }
  r.compute_busy_s = busy / machine_.num_spes();
  r.dma_commands = cmds;
  r.dma_transfers = xfers;
  r.mic_busy_s = sim::seconds_from_ticks(machine_.mic().busy_ticks());
  if (end > 0) {
    r.mic_utilization = static_cast<double>(machine_.mic().busy_ticks()) /
                        static_cast<double>(end);
    r.eib_utilization = static_cast<double>(machine_.eib().busy_ticks()) /
                        static_cast<double>(end);
  }

  // Counter tree: per-SPE engine buckets (which exactly partition `end`
  // per SPE -- tick arithmetic below 2^53 is exact in doubles), the
  // SPU-pipeline and MFC counters under each "spe<N>", a "spe_total"
  // hierarchical aggregate, and the chip-shared units.
  r.counters = sim::CounterSet("machine");
  r.counters.set("run_ticks", static_cast<double>(end));
  r.counters.set("chunks", static_cast<double>(chunks_));
  r.counters.set("cell_solves", static_cast<double>(work_units_));
  r.counters.set("flops", static_cast<double>(flops_));
  sim::CounterSet spe_total("spe_total");
  std::vector<sim::CounterSet> spe_sets;
  spe_sets.reserve(static_cast<std::size_t>(machine_.num_spes()));
  for (int s = 0; s < machine_.num_spes(); ++s) {
    sim::CounterSet cs("spe" + std::to_string(s));
    const sim::Tick spe_busy = machine_.spe(s).busy_ticks();
    const sim::Tick accounted =
        spe_busy + spes_[s].dma_wait + spes_[s].sync_wait;
    cs.set("busy_ticks", static_cast<double>(spe_busy));
    cs.set("dma_wait_ticks", static_cast<double>(spes_[s].dma_wait));
    cs.set("sync_wait_ticks", static_cast<double>(spes_[s].sync_wait));
    cs.set("idle_ticks",
           accounted < end ? static_cast<double>(end - accounted) : 0.0);
    cs.set("work_items", static_cast<double>(machine_.spe(s).work_items()));
    publish_pipeline(spes_[s].pipe, cs.child("pipeline"));
    machine_.spe(s).mfc().publish_counters(cs.child("mfc"));
    spe_total.merge(cs);
    spe_sets.push_back(std::move(cs));
  }
  r.counters.add_child(std::move(spe_total));
  for (sim::CounterSet& cs : spe_sets) r.counters.add_child(std::move(cs));
  machine_.mic().publish_counters(r.counters.child("mic"));
  machine_.eib().publish_counters(r.counters.child("eib"));
  machine_.dispatch().publish_counters(r.counters.child("dispatch"));

  // Fault subtree + report: only present when a plan was armed, so the
  // fault-free counter tree (and its JSON) is byte-identical to the
  // pre-fault-injection build.
  if (fault_plan_.enabled()) {
    std::uint64_t retried = 0, retry_attempts = 0, timeouts = 0;
    sim::Tick backoff = 0, timeout_ticks = 0;
    for (int s = 0; s < machine_.num_spes(); ++s) {
      const cell::Mfc& mfc = machine_.spe(s).mfc();
      retried += mfc.retried_commands();
      retry_attempts += mfc.retry_attempts();
      backoff += mfc.retry_backoff_ticks();
      timeouts += mfc.tag_timeouts();
      timeout_ticks += mfc.tag_timeout_ticks();
    }
    sim::CounterSet& f = r.counters.child("faults");
    f.set("spes_disabled", static_cast<double>(spes_disabled_));
    f.set("spes_failed", static_cast<double>(spes_failed_));
    f.set("redispatched_chunks", static_cast<double>(redispatched_chunks_));
    f.set("failover_ticks", static_cast<double>(failover_ticks_));
    f.set("dma_retried_commands", static_cast<double>(retried));
    f.set("dma_retry_attempts", static_cast<double>(retry_attempts));
    f.set("dma_retry_backoff_ticks", static_cast<double>(backoff));
    f.set("tag_timeouts", static_cast<double>(timeouts));
    f.set("tag_timeout_ticks", static_cast<double>(timeout_ticks));
    f.set("dropped_messages",
          static_cast<double>(machine_.dispatch().dropped_messages()));
    f.set("drop_wait_ticks",
          static_cast<double>(machine_.dispatch().drop_wait_ticks()));
    f.set("mic_throttled_requests",
          static_cast<double>(machine_.mic().throttled_requests()));
    f.set("mic_throttle_ticks",
          static_cast<double>(machine_.mic().throttle_ticks()));
    r.faults.enabled = true;
    r.faults.spes_disabled = spes_disabled_;
    r.faults.spes_failed = spes_failed_;
    r.faults.redispatched_chunks = redispatched_chunks_;
    r.faults.dma_retries = retry_attempts;
    r.faults.tag_timeouts = timeouts;
    r.faults.dropped_messages = machine_.dispatch().dropped_messages();
    r.faults.mic_throttled = machine_.mic().throttled_requests();
  }

  // Allocator subtree + release: only present when a shared allocator
  // was attached, so single-tenant counter trees (and their JSON) stay
  // byte-identical to the allocator-free build. Captured before the
  // release so "spes_final" reports what the run ended with.
  if (cfg_.spe_allocator) {
    sim::CounterSet& a = r.counters.child("allocator");
    a.set("spes_final", static_cast<double>(claim_.count()));
    a.set("spes_min", static_cast<double>(min_claimed_));
    a.set("spes_max", static_cast<double>(max_claimed_));
    a.set("rebalance_shrinks", static_cast<double>(rebalance_shrinks_));
    a.set("rebalance_expands", static_cast<double>(rebalance_expands_));
    a.set("preempt_yields", static_cast<double>(preempt_yields_));
    cfg_.spe_allocator->release(claim_);
    claimed_.assign(claimed_.size(), 0);
  }

  // Time-sliced profile: snapshot the windowed series, and replay them
  // into the downstream trace as Chrome counter events so the
  // utilization-over-time curves render beside the spans.
  if (cfg_.profiler) {
    r.timeseries = cfg_.profiler->profile();
    if (cfg_.trace_sink) cfg_.profiler->emit_counter_events(*cfg_.trace_sink);
  }

  const cell::CellSpec& spec = machine_.spec();
  r.memory_bound_s = r.traffic_bytes / spec.mic_bytes_per_s;
  r.compute_bound_s =
      total_compute_cycles_ / (spec.clock_hz * spec.num_spes);
  if (r.seconds > 0) {
    r.achieved_flops_per_s = static_cast<double>(r.flops) / r.seconds;
    if (r.cell_solves > 0)
      r.grind_seconds = r.seconds / static_cast<double>(r.cell_solves);
  }
  return r;
}

}  // namespace cellsweep::core
