// Test fixture: a util::Mutex constructed without a lockrank:: rank
// and a raw std::mutex. Never compiled -- tools/lock_rank_audit must
// flag both (the `lock_rank_audit_rejects_unranked` test pins it).
#pragma once

#include <mutex>

#include "util/mutex.h"

namespace fixture {

class Bad {
 private:
  cellsweep::util::Mutex mu_{7, "Bad::mu_"};  // no lockrank:: rank
  std::mutex raw_;                            // unsanctioned primitive
};

}  // namespace fixture
