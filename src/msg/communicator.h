// In-process message-passing substrate.
//
// Sweep3D's top parallelization level is its existing MPI wavefront
// decomposition over a 2-D logical process grid (paper, Sections 3-4:
// "we maintain the wavefront parallelism already implemented in MPI
// ... this guarantees portability of existing parallel software").
// This library reproduces that layer without an MPI installation: a
// World spawns one thread per rank, and Communicators exchange typed
// messages through matched (source, tag) blocking send/recv -- the same
// subset of MPI semantics Sweep3D uses. Programs that only use
// blocking matched send/recv are deterministic regardless of host
// scheduling, so results are bit-reproducible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace cellsweep::msg {

/// Thrown on invalid ranks/tags or communication misuse.
class MsgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class World;

/// Per-rank endpoint; the only handle rank programs touch.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Blocking send of a typed buffer to @p dst with @p tag. Copies the
  /// payload (buffered send), so the caller may reuse the buffer
  /// immediately -- matching Sweep3D's use of MPI_Send on face arrays.
  void send(int dst, int tag, std::span<const double> data);

  /// Blocking receive matched by (src, tag). Messages from the same
  /// (src, tag) arrive in send order (non-overtaking).
  std::vector<double> recv(int src, int tag);

  /// Receives into an existing buffer; the message size must match.
  void recv_into(int src, int tag, std::span<double> out);

  /// Barrier across all ranks in the world.
  void barrier();

  /// Sum-reduction of one double across all ranks; every rank gets the
  /// result (MPI_Allreduce(SUM) equivalent, used for convergence tests).
  double allreduce_sum(double value);

  /// Max-reduction across all ranks.
  double allreduce_max(double value);

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// Owns the mailboxes and runs a rank program on every rank.
class World {
 public:
  explicit World(int num_ranks);

  int size() const noexcept { return num_ranks_; }

  /// Runs @p program once per rank, each on its own thread, and joins.
  /// Exceptions thrown by any rank are rethrown (first rank wins).
  void run(const std::function<void(Communicator&)>& program);

  /// Degraded-node injection: every send from @p rank stalls for
  /// @p delay_us microseconds before posting, modeling a node with a
  /// failing NIC or a thermally throttled CPU. Because the substrate
  /// only offers blocking matched send/recv, a straggler can reorder
  /// thread scheduling but never the matched message streams -- rank
  /// programs must produce bit-identical results regardless (the
  /// property the degraded-node tests pin down). Set 0 to heal.
  void degrade_rank(int rank, int delay_us);

 private:
  friend class Communicator;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // Keyed by (src, tag); each queue preserves send order.
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues;
  };

  void post(int src, int dst, int tag, std::vector<double> payload);
  std::vector<double> take(int dst, int src, int tag);

  void barrier_wait();
  double reduce(double value, int rank, bool maximum);

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<int> send_delay_us_;  ///< per-rank degraded-node stall

  // Barrier state (generation-counted central barrier).
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction scratch (single in-flight reduction, barrier-bracketed).
  std::mutex reduce_mu_;
  std::condition_variable reduce_cv_;
  std::vector<double> reduce_slots_;
  int reduce_arrived_ = 0;
  std::uint64_t reduce_generation_ = 0;
  double reduce_result_ = 0.0;
};

}  // namespace cellsweep::msg
