// Unit tests for the message-passing substrate: matched send/recv,
// ordering, collectives, determinism, and the Cartesian topology.
#include <gtest/gtest.h>

#include <atomic>

#include "msg/cart_grid.h"
#include "msg/communicator.h"

namespace cellsweep::msg {
namespace {

TEST(World, RequiresOneRank) {
  EXPECT_THROW(World(0), MsgError);
  EXPECT_NO_THROW(World(1));
}

TEST(Msg, PingPong) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.0, 2.0, 3.0});
      const auto back = comm.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 6.0);
    } else {
      const auto msg = comm.recv(0, 7);
      double sum = 0;
      for (double x : msg) sum += x;
      comm.send(0, 8, std::vector<double>{sum});
    }
  });
}

TEST(Msg, NonOvertakingSameSourceAndTag) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        comm.send(1, 3, std::vector<double>{static_cast<double>(i)});
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto m = comm.recv(0, 3);
        EXPECT_DOUBLE_EQ(m[0], i);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(Msg, TagsMatchIndependently) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 100, std::vector<double>{100.0});
      comm.send(1, 200, std::vector<double>{200.0});
    } else {
      // Receive in the opposite order of sending: tags select.
      EXPECT_DOUBLE_EQ(comm.recv(0, 200)[0], 200.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 100)[0], 100.0);
    }
  });
}

TEST(Msg, RecvIntoValidatesSize) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0, 2.0});
    } else {
      std::vector<double> buf(3);
      EXPECT_THROW(comm.recv_into(0, 1, buf), MsgError);
    }
  });
}

TEST(Msg, RankRangeChecked) {
  World world(2);
  world.run([](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, std::vector<double>{1.0}), MsgError);
    EXPECT_THROW(comm.recv(-1, 0), MsgError);
  });
}

TEST(Msg, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> before{0}, after{0};
  world.run([&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(after.load(), 4);
  });
}

TEST(Msg, AllreduceSumDeterministicOrder) {
  // Values with different magnitudes: result must be the rank-ordered
  // sum, bit-exactly, on every rank and every repetition.
  const int n = 6;
  std::vector<double> contrib = {1e16, 3.25, -1e16, 7.5, 0.125, 2.0};
  double expected = 0.0;
  for (double x : contrib) expected += x;

  for (int rep = 0; rep < 5; ++rep) {
    World world(n);
    world.run([&](Communicator& comm) {
      const double r = comm.allreduce_sum(contrib[comm.rank()]);
      EXPECT_EQ(r, expected);
    });
  }
}

TEST(Msg, AllreduceMax) {
  World world(3);
  world.run([](Communicator& comm) {
    const double r = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(r, 2.0);
  });
}

TEST(Msg, SequentialReductions) {
  World world(3);
  world.run([](Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      const double s = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 3.0);
    }
  });
}

TEST(Msg, ExceptionsPropagate) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank fail");
               }),
               std::runtime_error);
}

TEST(CartGrid, CoordinatesRoundTrip) {
  CartGrid2D grid(3, 2);
  EXPECT_EQ(grid.size(), 6);
  for (int r = 0; r < grid.size(); ++r)
    EXPECT_EQ(grid.rank_of(grid.x_of(r), grid.y_of(r)), r);
}

TEST(CartGrid, NeighborsAndBoundaries) {
  CartGrid2D grid(3, 3);
  const int center = grid.rank_of(1, 1);
  EXPECT_EQ(grid.neighbor(center, Direction::kWest), grid.rank_of(0, 1));
  EXPECT_EQ(grid.neighbor(center, Direction::kEast), grid.rank_of(2, 1));
  EXPECT_EQ(grid.neighbor(center, Direction::kNorth), grid.rank_of(1, 0));
  EXPECT_EQ(grid.neighbor(center, Direction::kSouth), grid.rank_of(1, 2));
  EXPECT_EQ(grid.neighbor(grid.rank_of(0, 0), Direction::kWest), -1);
  EXPECT_EQ(grid.neighbor(grid.rank_of(2, 2), Direction::kSouth), -1);
}

TEST(CartGrid, WaveDepth) {
  CartGrid2D grid(3, 3);
  // Sweep entering at the north-west corner (Figure 1).
  EXPECT_EQ(grid.wave_depth(grid.rank_of(0, 0), 0, 0), 0);
  EXPECT_EQ(grid.wave_depth(grid.rank_of(2, 2), 0, 0), 4);
  EXPECT_EQ(grid.wave_depth(grid.rank_of(2, 2), 1, 1), 0);  // SE corner
}

TEST(CartGrid, RejectsBadDims) {
  EXPECT_THROW(CartGrid2D(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace cellsweep::msg
