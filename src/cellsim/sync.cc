#include "cellsim/sync.h"

#include "sim/counters.h"
#include "sim/fault.h"

namespace cellsweep::cell {

const char* sync_protocol_name(SyncProtocol p) {
  switch (p) {
    case SyncProtocol::kMailbox:           return "mailbox";
    case SyncProtocol::kLsPoke:            return "ls-poke";
    case SyncProtocol::kAtomicDistributed: return "atomic-distributed";
  }
  return "?";
}

DispatchFabric::DispatchFabric(const CellSpec& spec)
    : spec_(spec),
      // MMIO mailbox writes serialize on the PPE: occupancy is the
      // message cost plus the PPE's per-chunk dispatch work (descriptor
      // construction, completion polling).
      ppe_mailbox_("ppe-mailbox", spec.mailbox_latency,
                   spec.mailbox_latency + spec.ppe_dispatch_overhead),
      ppe_poke_("ppe-ls-poke", spec.ls_poke_latency,
                spec.ls_poke_latency + spec.ppe_dispatch_overhead),
      // The atomic unit pipeline overlaps better: the reservation line
      // bounce costs the full latency but the unit frees up after half.
      atomic_unit_("atomic-unit", spec.atomic_op_latency,
                   spec.atomic_op_latency / 2) {}

sim::Tick DispatchFabric::send_message(sim::LatencyServer& server,
                                       sim::Tick now, sim::Tick latency,
                                       sim::Tick occupancy) {
  // Dropped sends: the message occupies the dispatcher (the PPE did the
  // work), never lands, and is resent once the resend timer fires. The
  // drop count per message is a pure function of the message sequence
  // number, so the schedule survives reordering of *other* decisions.
  if (faults_ != nullptr && faults_->enabled()) {
    const int drops = faults_->dispatch_drops(fault_seq_++);
    for (int d = 0; d < drops; ++d) {
      const sim::Tick sent = server.submit_with(now, latency, occupancy);
      const sim::Tick resend = sent + spec_.mailbox_drop_timeout;
      ++dropped_messages_;
      drop_wait_ticks_ += resend - now;
      now = resend;
    }
  }
  return server.submit_with(now, latency, occupancy);
}

sim::Tick DispatchFabric::acquire_work(sim::Tick now, SyncProtocol protocol) {
  confined_.check("DispatchFabric::acquire_work");
  ++grants_;
  switch (protocol) {
    case SyncProtocol::kMailbox:
      return send_message(ppe_mailbox_, now, spec_.mailbox_latency,
                          spec_.mailbox_latency + spec_.ppe_dispatch_overhead);
    case SyncProtocol::kLsPoke:
      return send_message(ppe_poke_, now, spec_.ls_poke_latency,
                          spec_.ls_poke_latency + spec_.ppe_dispatch_overhead);
    case SyncProtocol::kAtomicDistributed:
      // The atomic unit retries getllar/putllc internally; there is no
      // PPE message to drop.
      return atomic_unit_.submit(now);
  }
  return now;
}

sim::Tick DispatchFabric::report_done(sim::Tick now, SyncProtocol protocol) {
  confined_.check("DispatchFabric::report_done");
  ++reports_;
  // Completion polling is much cheaper than a grant: the PPE reads one
  // status word (and interleaves the polls with its dispatch work), so
  // the report only occupies the dispatcher for the raw message cost,
  // not the full per-chunk descriptor-construction overhead.
  switch (protocol) {
    case SyncProtocol::kMailbox:
      // PPE polls the outbound mailbox: a serialized MMIO access.
      return send_message(ppe_mailbox_, now, spec_.mailbox_latency,
                          spec_.mailbox_latency);
    case SyncProtocol::kLsPoke:
      // SPE DMAs a completion flag into cached main memory; the PPE
      // notices it from its own cache at poke-level cost.
      return send_message(ppe_poke_, now, spec_.ls_poke_latency,
                          spec_.ls_poke_latency);
    case SyncProtocol::kAtomicDistributed:
      // Nothing to report: the counter grant *is* the schedule. A local
      // store fence is all the SPE pays.
      return now + spec_.cycles(8);
  }
  return now;
}

void DispatchFabric::publish_counters(sim::CounterSet& out) const {
  out.set("grants", static_cast<double>(grants_));
  out.set("reports", static_cast<double>(reports_));
  out.set("mailbox_requests", static_cast<double>(ppe_mailbox_.requests()));
  out.set("ls_poke_requests", static_cast<double>(ppe_poke_.requests()));
  out.set("atomic_requests", static_cast<double>(atomic_unit_.requests()));
  if (faults_ != nullptr && faults_->enabled()) {
    out.set("dropped_messages", static_cast<double>(dropped_messages_));
    out.set("drop_wait_ticks", static_cast<double>(drop_wait_ticks_));
  }
}

void DispatchFabric::reset() noexcept {
  // A reset fabric may legitimately be re-driven by a different tenant
  // thread; confinement restarts with the new first caller.
  confined_.reset();
  ppe_mailbox_.reset();
  ppe_poke_.reset();
  atomic_unit_.reset();
  grants_ = 0;
  reports_ = 0;
  fault_seq_ = 0;
  dropped_messages_ = 0;
  drop_wait_ticks_ = 0;
}

}  // namespace cellsweep::cell
