#include "msg/communicator.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

namespace cellsweep::msg {

int Communicator::size() const noexcept { return world_->size(); }

void Communicator::send(int dst, int tag, std::span<const double> data) {
  if (dst < 0 || dst >= world_->size())
    throw MsgError("send: destination rank out of range");
  world_->post(rank_, dst, tag, std::vector<double>(data.begin(), data.end()));
}

std::vector<double> Communicator::recv(int src, int tag) {
  if (src < 0 || src >= world_->size())
    throw MsgError("recv: source rank out of range");
  return world_->take(rank_, src, tag);
}

void Communicator::recv_into(int src, int tag, std::span<double> out) {
  std::vector<double> m = recv(src, tag);
  if (m.size() != out.size())
    throw MsgError("recv_into: message size mismatch");
  std::copy(m.begin(), m.end(), out.begin());
}

void Communicator::barrier() { world_->barrier_wait(); }

double Communicator::allreduce_sum(double value) {
  return world_->reduce(value, rank_, /*maximum=*/false);
}

double Communicator::allreduce_max(double value) {
  return world_->reduce(value, rank_, /*maximum=*/true);
}

World::World(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw MsgError("World: need at least one rank");
  mailboxes_.reserve(num_ranks_);
  for (int i = 0; i < num_ranks_; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  send_delay_us_.assign(num_ranks_, 0);
}

void World::degrade_rank(int rank, int delay_us) {
  if (rank < 0 || rank >= num_ranks_)
    throw MsgError("degrade_rank: rank out of range");
  if (delay_us < 0) throw MsgError("degrade_rank: negative delay");
  send_delay_us_[rank] = delay_us;
}

void World::run(const std::function<void(Communicator&)>& program) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(num_ranks_);
  threads.reserve(num_ranks_);
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &program, &errors] {
      Communicator comm(this, r);
      try {
        program(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void World::post(int src, int dst, int tag, std::vector<double> payload) {
  if (send_delay_us_[src] > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(send_delay_us_[src]));
  Mailbox& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<double> World::take(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[dst];
  std::unique_lock<std::mutex> lock(box.mu);
  auto& queue = box.queues[{src, tag}];
  box.cv.wait(lock, [&] { return !queue.empty(); });
  std::vector<double> m = std::move(queue.front());
  queue.pop_front();
  return m;
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == num_ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
}

double World::reduce(double value, int rank, bool maximum) {
  std::unique_lock<std::mutex> lock(reduce_mu_);
  const std::uint64_t gen = reduce_generation_;
  if (reduce_arrived_ == 0) reduce_slots_.assign(num_ranks_, 0.0);
  reduce_slots_[rank] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Combine in rank order so floating-point sums are deterministic
    // regardless of thread arrival order.
    double acc = reduce_slots_[0];
    for (int r = 1; r < num_ranks_; ++r)
      acc = maximum ? std::max(acc, reduce_slots_[r]) : acc + reduce_slots_[r];
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    ++reduce_generation_;
    reduce_cv_.notify_all();
    return reduce_result_;
  }
  reduce_cv_.wait(lock, [&] { return reduce_generation_ != gen; });
  return reduce_result_;
}

}  // namespace cellsweep::msg
