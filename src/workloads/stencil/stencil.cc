#include "workloads/stencil/stencil.h"

#include <algorithm>
#include <cmath>

#include "core/streaming_pipeline.h"
#include "util/aligned.h"
#include "util/thread_pool.h"

namespace cellsweep::stencil {
namespace {

std::size_t real_bytes_of(core::Precision p) {
  return p == core::Precision::kDouble ? 8 : 4;
}

/// Values of one parity in the index range [first, first + count).
std::uint64_t parity_count(int first, int count, int parity) {
  const std::uint64_t n = static_cast<std::uint64_t>(count);
  // Half the range, plus one when the range is odd and starts on the
  // requested parity.
  return n / 2 + ((n % 2 != 0 && (first & 1) == parity) ? 1 : 0);
}

}  // namespace

StencilState::StencilState(const StencilSpec& spec) : spec_(spec) {
  spec_.validate();
  u_.assign(static_cast<std::size_t>(spec_.cells()), 0.0);
}

void StencilState::half_sweep(int color, util::ThreadPool& pool) {
  const int nx = spec_.nx, ny = spec_.ny, nz = spec_.nz;
  const double h2f = spec_.h * spec_.h * spec_.source;
  double* u = u_.data();
  const std::size_t sx = 1;
  const std::size_t sy = static_cast<std::size_t>(nx);
  const std::size_t sz = static_cast<std::size_t>(nx) * ny;
  // Parallel over k-planes: a color update reads only opposite-color
  // cells, which this half-sweep never writes, so any plane order (and
  // any thread count) produces bitwise-identical results.
  pool.parallel_for(nz, [&](int k, int /*worker*/) {
    for (int j = 0; j < ny; ++j) {
      const int parity0 = (j + k + color) & 1;  // first i of this color
      for (int i = parity0; i < nx; i += 2) {
        const std::size_t c = i * sx + j * sy + k * sz;
        double sum = h2f;
        if (i > 0) sum += u[c - sx];
        if (i + 1 < nx) sum += u[c + sx];
        if (j > 0) sum += u[c - sy];
        if (j + 1 < ny) sum += u[c + sy];
        if (k > 0) sum += u[c - sz];
        if (k + 1 < nz) sum += u[c + sz];
        u[c] = sum / 6.0;
      }
    }
  });
  // Count the cells of this color exactly (grids with odd extents have
  // unequal color populations).
  std::uint64_t count = 0;
  for (int pz = 0; pz < 2; ++pz)
    for (int py = 0; py < 2; ++py) {
      const int px = (color + 2 - ((py + pz) & 1)) & 1;
      count += parity_count(0, nx, px) * parity_count(0, ny, py) *
               parity_count(0, nz, pz);
    }
  updates_ += count;
}

void StencilState::run(int threads) {
  util::ThreadPool pool(threads);
  run(pool);
}

void StencilState::run(util::ThreadPool& pool) {
  for (int it = 0; it < spec_.iterations; ++it) {
    half_sweep(0, pool);
    half_sweep(1, pool);
  }
}

double StencilState::checksum() const {
  double sum = 0;
  for (const double v : u_) sum += v;
  return sum;
}

double StencilState::residual() const {
  const int nx = spec_.nx, ny = spec_.ny, nz = spec_.nz;
  const double h2f = spec_.h * spec_.h * spec_.source;
  const double* u = u_.data();
  const std::size_t sx = 1;
  const std::size_t sy = static_cast<std::size_t>(nx);
  const std::size_t sz = static_cast<std::size_t>(nx) * ny;
  double worst = 0;
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        const std::size_t c = i * sx + j * sy + k * sz;
        double sum = h2f;
        if (i > 0) sum += u[c - sx];
        if (i + 1 < nx) sum += u[c + sx];
        if (j > 0) sum += u[c - sy];
        if (j + 1 < ny) sum += u[c + sy];
        if (k > 0) sum += u[c - sz];
        if (k + 1 < nz) sum += u[c + sz];
        worst = std::max(worst, std::abs(sum - 6.0 * u[c]));
      }
  return worst;
}

std::uint64_t block_color_updates(const StencilSpec& spec, int bi, int bj,
                                  int bk, int color) {
  const int i0 = bi * spec.bx, j0 = bj * spec.by, k0 = bk * spec.bz;
  std::uint64_t count = 0;
  // Sum over the axis-parity triples whose total parity is the color.
  for (int pz = 0; pz < 2; ++pz)
    for (int py = 0; py < 2; ++py) {
      const int px = (color + 2 - ((py + pz) & 1)) & 1;
      count += parity_count(i0, spec.bx, px) * parity_count(j0, spec.by, py) *
               parity_count(k0, spec.bz, pz);
    }
  return count;
}

core::TransferPlan plan_block(const StencilSpec& spec,
                              std::size_t real_bytes, bool aligned_rows) {
  core::TransferPlan plan;
  const std::size_t raw_row = static_cast<std::size_t>(spec.bx) * real_bytes;
  // Rows are i-pencils of the block; same alignment policy as the
  // sweep (whole 128-byte lines when aligned, quadwords otherwise).
  plan.row_bytes = aligned_rows
                       ? util::round_up(raw_row, util::kCacheLineBytes)
                       : util::round_up(raw_row, 16);

  // Bulk: the u block and the f block (by*bz pencils each) -- no
  // inter-block dependency, so double buffering prefetches them across
  // color phases. Faces: the j/k neighbor planes stream as pencils
  // (bz rows per j face, by per k face); the i-face columns are packed
  // scalars and ride in the extra transfer with the block descriptor.
  plan.bulk_get_rows = 2 * spec.by * spec.bz;
  plan.face_get_rows = 2 * (spec.by + spec.bz);
  plan.extra_get_bytes = util::round_up(
      2 * static_cast<std::size_t>(spec.by) * spec.bz * real_bytes + 64, 16);

  // The u block is updated in place, so the writeback reuses its LS
  // rows; only a small completion descriptor rides extra.
  plan.put_rows = spec.by * spec.bz;
  plan.extra_put_bytes = 16;

  const std::size_t scratch_rows = 2;  // row buffers of the unrolled kernel
  plan.ls_buffer_bytes =
      (static_cast<std::size_t>(plan.get_rows()) + scratch_rows) *
          util::round_up(plan.row_bytes, util::kCacheLineBytes) +
      util::round_up(plan.extra_get_bytes, util::kCacheLineBytes);
  return plan;
}

BlockCost block_cost(const StencilSpec& spec, int bi, int bj, int bk,
                     int color, const cell::CellSpec& chip,
                     core::Precision precision) {
  BlockCost cost;
  cost.updates = block_color_updates(spec, bi, bj, bk, color);

  // One update is a 6-add reduction, the h^2 f add and the multiply by
  // 1/6: a madd-free dependent chain the scheduler can software-
  // pipeline across updates. DP pays the partially pipelined DP unit
  // (one DP issue blocks all issue for dp_issue_block_cycles -- the
  // paper's 4-flops-per-7-cycles ceiling); SP issues back to back.
  const double per_update =
      precision == core::Precision::kDouble
          ? 4.0 * static_cast<double>(chip.dp_issue_block_cycles)
          : 4.0;
  constexpr double kKernelOverheadCycles = 200.0;  // prologue + loop setup
  cost.cycles = static_cast<double>(cost.updates) * per_update +
                kKernelOverheadCycles;
  cost.flops = cost.updates * 8;

  cell::PipelineStats& p = cost.stats;
  p.kernels = 1;
  p.cycles = static_cast<std::uint64_t>(cost.cycles);
  p.instructions = cost.updates * 12 + 48;
  p.issue_cycles = cost.updates * 6 + 24;
  p.dual_issues = cost.updates * 3;
  p.even_pipe_insts = cost.updates * 8 + 24;
  p.odd_pipe_insts = p.instructions - p.even_pipe_insts;
  const std::uint64_t stall =
      p.cycles > p.issue_cycles ? p.cycles - p.issue_cycles : 0;
  // DP stalls are issue blocking (the DP unit), SP stalls are dataflow.
  if (precision == core::Precision::kDouble) {
    p.block_stall_cycles = stall;
  } else {
    p.dep_stall_cycles = stall;
  }
  p.flops = cost.flops;
  return cost;
}

CellStencil::CellStencil(const StencilSpec& spec,
                         const core::CellSweepConfig& cfg)
    : spec_(spec), cfg_(cfg) {
  spec_.validate();
}

StencilReport CellStencil::run(core::RunMode mode, int threads,
                               util::ThreadPool* pool) {
  StencilReport rep;
  const std::size_t rb = real_bytes_of(cfg_.precision);

  // LS placement: 1 KB of resident kernel constants plus the rotating
  // block staging buffers. The pipeline throws LocalStoreOverflow when
  // the budget does not fit -- the same check lint_stencil runs
  // statically.
  const core::TransferPlan tplan =
      plan_block(spec_, rb, cfg_.aligned_rows);
  core::LsPlacement placement;
  placement.resident.emplace_back("stencil-constants", 1024);
  placement.buffer_bytes = tplan.ls_buffer_bytes;
  core::StreamingPipeline pipeline(cfg_.stream(), placement);

  // Dependency policy: a block of this color phase reads the previous
  // phase's values of itself and its six face neighbors.
  const int nbx = spec_.blocks_x();
  const int nby = spec_.blocks_y();
  const int nbz = spec_.blocks_z();
  const auto deps = [nbx, nby, nbz](const core::UpstreamView& u,
                                    int c) -> sim::Tick {
    if (u.ready.empty()) return u.barrier;
    sim::Tick t = std::max(u.barrier, u.ready[static_cast<std::size_t>(c)]);
    const int i = c % nbx, j = (c / nbx) % nby, k = c / (nbx * nby);
    if (i > 0) t = std::max(t, u.ready[static_cast<std::size_t>(c - 1)]);
    if (i + 1 < nbx)
      t = std::max(t, u.ready[static_cast<std::size_t>(c + 1)]);
    if (j > 0) t = std::max(t, u.ready[static_cast<std::size_t>(c - nbx)]);
    if (j + 1 < nby)
      t = std::max(t, u.ready[static_cast<std::size_t>(c + nbx)]);
    if (k > 0)
      t = std::max(t, u.ready[static_cast<std::size_t>(c - nbx * nby)]);
    if (k + 1 < nbz)
      t = std::max(t, u.ready[static_cast<std::size_t>(c + nbx * nby)]);
    return t + u.hop;
  };

  // The two per-color batches are identical across iterations; build
  // them once. Block c streams the same bytes either phase; only the
  // priced kernel differs (the color populations of a block differ on
  // odd extents).
  std::vector<core::StreamChunkSpec> batches[2];
  for (int color = 0; color < 2; ++color) {
    batches[color].reserve(static_cast<std::size_t>(spec_.blocks()));
    for (int k = 0; k < nbz; ++k)
      for (int j = 0; j < nby; ++j)
        for (int i = 0; i < nbx; ++i) {
          const BlockCost cost =
              block_cost(spec_, i, j, k, color, cfg_.chip, cfg_.precision);
          core::StreamChunkSpec sc;
          sc.index = (k * nby + j) * nbx + i;
          sc.plan = tplan;
          sc.kernel_cycles = cost.cycles;
          sc.kernel_name = color == 0 ? "stencil-even" : "stencil-odd";
          sc.flops = cost.flops;
          sc.work_units = cost.updates;
          sc.stats = cost.stats;
          batches[color].push_back(sc);
        }
  }

  // Free-running iteration loop: the per-iteration residual-norm
  // reduction streams the whole field (u read + written) through the
  // MIC, then the two color phases chase dependencies with no hard
  // barrier (new_block stays false throughout).
  const double pass_bytes =
      2.0 * static_cast<double>(spec_.cells()) * static_cast<double>(rb);
  for (int it = 0; it < spec_.iterations; ++it) {
    pipeline.memory_pass("residual-norm", pass_bytes);
    for (int color = 0; color < 2; ++color)
      pipeline.run_batch(batches[color], deps, false);
  }
  rep.run = pipeline.finish();
  rep.updates = rep.run.cell_solves;

  if (mode == core::RunMode::kFunctional) {
    // The physics runs host-side; the machine feed above does not
    // depend on it (or on the thread count), so functional and
    // trace-driven timing are identical by construction -- and a fault
    // plan degrades only the timing, never these values.
    StencilState state(spec_);
    if (pool)
      state.run(*pool);
    else
      state.run(threads);
    rep.checksum = state.checksum();
    rep.residual = state.residual();
  }
  return rep;
}

}  // namespace cellsweep::stencil
