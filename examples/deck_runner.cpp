// Deck runner: the classic Sweep3D workflow -- point the binary at an
// input deck, get the solve and the simulated Cell performance report.
//
//   $ ./deck_runner examples/decks/benchmark50.deck
//   $ ./deck_runner examples/decks/shield_reflected.deck --stage=simd
#include <iostream>

#include "core/orchestrator.h"
#include "sweep/deck.h"
#include "util/cli.h"
#include "util/units.h"

using namespace cellsweep;

int main(int argc, char** argv) {
  util::CliParser cli("Run a CellSweep input deck");
  cli.add_flag("stage", "final",
               "optimization stage: ppe | initial | simd | final");
  cli.add_flag("functional", "true",
               "solve the physics (false: timing only)");
  cli.add_flag("threads", "1",
               "host threads for the functional sweep (results are "
               "bitwise identical for any value)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested() || cli.positional().empty()) {
    std::cout << cli.usage(argv[0]) << "\nUsage: " << argv[0]
              << " <deck file> [flags]\n";
    return cli.help_requested() ? 0 : 1;
  }

  sweep::Deck deck = [&] {
    try {
      return sweep::load_deck(cli.positional()[0]);
    } catch (const sweep::DeckError& e) {
      std::cerr << e.what() << "\n";
      std::exit(1);
    }
  }();

  const std::string stage_name = cli.get_string("stage");
  core::OptimizationStage stage = core::OptimizationStage::kSpeLsPoke;
  if (stage_name == "ppe") stage = core::OptimizationStage::kPpeXlc;
  else if (stage_name == "initial") stage = core::OptimizationStage::kSpeInitial;
  else if (stage_name == "simd") stage = core::OptimizationStage::kSpeSimd;

  const auto& g = deck.problem.grid();
  std::cout << "Deck: " << g.it << "x" << g.jt << "x" << g.kt << ", "
            << deck.problem.materials().size() << " material(s), S"
            << deck.sn_order << ", " << deck.nm_cap << " moments, MK="
            << deck.sweep.mk << " MMI=" << deck.sweep.mmi << "\n";

  deck.sweep.threads = static_cast<int>(cli.get_int("threads"));
  if (deck.sweep.threads < 1) {
    std::cerr << "deck_runner: --threads must be a positive integer\n";
    return 1;
  }

  if (deck.problem.any_reflective() || cli.get_bool("functional")) {
    // Reflective decks need the functional solver for physics.
    sweep::SnQuadrature quad(deck.sn_order);
    sweep::SweepState<double> state(deck.problem, quad, 2, deck.nm_cap);
    const sweep::SolveResult r =
        sweep::solve_source_iteration(state, deck.sweep);
    std::cout << "Solve: " << r.iterations << " iterations, change "
              << r.final_change << (r.converged ? " (converged)" : "")
              << "; absorption " << state.absorption_rate() << ", leakage "
              << state.leakage().total() << ", fixup cells "
              << r.totals.fixup_cells << "\n";
  }

  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep = deck.sweep;
  cfg.sweep.kernel = cfg.kernel;
  cfg.sweep.epsilon = 0.0;  // the timing model replays a fixed count
  core::CellSweep3D runner(deck.problem, cfg, deck.sn_order, 2, deck.nm_cap);
  const core::RunReport rep = runner.run(core::RunMode::kTraceDriven);
  std::cout << "Cell (" << core::stage_name(stage)
            << "): " << util::format_seconds(rep.seconds) << ", "
            << util::format_bytes(rep.traffic_bytes) << " traffic, grind "
            << util::format_seconds(rep.grind_seconds) << "/solve, "
            << util::format_flops(rep.achieved_flops_per_s) << "\n";
  return 0;
}
