// PlanCache: deck-fingerprint-keyed memoization of the pure planning
// artifacts a solve recomputes per run.
//
// Submitting the same deck to the solve server twice used to pay the
// full setup twice: the Sn quadrature tables and -- much worse -- the
// trace-scheduled kernel calibration (KernelCostModel records the real
// SIMD instruction stream per chunk shape and schedules it on the SPU
// pipeline model). All of those are pure functions of (workload kind,
// optimization stage, deck bytes), so the server caches them under a
// fingerprint of exactly that triple. The workload kind is folded into
// the key so identical bytes submitted as a .deck and as a .stencil
// spec can never collide (pinned by a test); warm and cold runs
// produce byte-identical reports because the cached values are
// deterministic (also pinned).
//
// Thread-safe: tenants race through find/insert concurrently. Two
// tenants may build the same missing entry in parallel; insert keeps
// the first and hands the loser the canonical copy -- both are
// identical by construction, so the race is benign.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string_view>

#include "core/config.h"
#include "core/kernel_timing.h"
#include "sweep/quadrature.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "workloads/stencil/spec.h"

namespace cellsweep::core {

/// One cached plan. Sweep decks fill quadrature/kernels/nm; stencil
/// specs fill spec (their block plans and costs are cheap arithmetic
/// the runner derives per run -- the entry mostly pins the key space).
struct CachedPlan {
  /// Prebuilt LQn tables of the deck's sn order.
  std::shared_ptr<const sweep::SnQuadrature> quadrature;
  /// Cost model whose chunk-cost cache was warmed for every chunk
  /// shape the deck can produce (nlines 1..kBundleLines x fixup
  /// on/off).
  std::shared_ptr<const KernelCostModel> kernels;
  /// Moment count of the deck (MomentTable is folded into nm).
  int nm = 0;
  /// Parsed + validated stencil spec.
  std::shared_ptr<const stencil::StencilSpec> spec;
};

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  /// @p max_entries bounds the cache; 0 (the default) is unbounded.
  /// When full, insert evicts in FIFO (insertion) order -- evicting
  /// only drops the canonical pointer, so plans still in use by a
  /// running job stay alive through their own shared_ptrs.
  explicit PlanCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// FNV-1a over (workload kind, stage, content bytes), with
  /// separators so no two distinct triples concatenate identically.
  static std::uint64_t fingerprint(std::string_view workload_kind,
                                   OptimizationStage stage,
                                   std::string_view content);

  /// The cached plan under @p key, or null (counts a hit / miss).
  std::shared_ptr<const CachedPlan> find(std::uint64_t key) EXCLUDES(mu_);

  /// Stores @p plan under @p key and returns the canonical entry: the
  /// already-present one when another tenant won the build race.
  std::shared_ptr<const CachedPlan> insert(
      std::uint64_t key, std::shared_ptr<const CachedPlan> plan)
      EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

 private:
  /// Leaf lock over the entry map and counters; plan *contents* are
  /// immutable once published (shared_ptr<const>), so only the map
  /// itself needs the guard.
  const std::size_t max_entries_;
  mutable util::Mutex mu_{util::lockrank::kPlanCache, "PlanCache::mu_"};
  std::map<std::uint64_t, std::shared_ptr<const CachedPlan>> entries_
      GUARDED_BY(mu_);
  /// Keys in insertion order (FIFO eviction victims from the front).
  std::deque<std::uint64_t> order_ GUARDED_BY(mu_);
  std::uint64_t hits_ GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace cellsweep::core
