// Ablation: MK / MMI pipeline blocking.
//
// The paper fixes MK x MMI per deck ("MK must factor KT", "MMI angles
// (1 or 3)"). Blocking does not change the physics (tests prove bit
// equality) but reshapes the wavefront diagonals: wider diagonals keep
// more SPEs busy, narrower ones pipeline sooner to MPI neighbors.
#include "bench/bench_common.h"

int main() {
  using namespace cellsweep;
  bench::print_header("Ablation: MK/MMI blocking (50^3, final config)");

  util::TextTable table({"MK", "MMI", "max lines/diag", "run time [s]",
                         "compute busy [s]"});
  for (int mk : {1, 2, 5, 10, 25, 50}) {
    for (int mmi : {1, 2, 3, 6}) {
      const sweep::Problem problem = sweep::Problem::benchmark_cube(50);
      core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
          core::OptimizationStage::kSpeLsPoke);
      cfg.sweep.mk = mk;
      cfg.sweep.mmi = mmi;
      core::CellSweep3D runner(problem, cfg);
      const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
      table.add_row({bench::fmt("%.0f", mk), bench::fmt("%.0f", mmi),
                     bench::fmt("%.0f", mk * mmi),
                     bench::fmt("%.3f", r.seconds),
                     bench::fmt("%.3f", r.compute_busy_s)});
    }
  }
  table.print(std::cout);
  std::cout << "\nNarrow diagonals (MK*MMI < 32 lines) starve the eight\n"
               "SPEs; the single-chip sweet spot is the widest block that\n"
               "still fits the local store.\n";
  return 0;
}
