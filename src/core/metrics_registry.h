// MetricsRegistry: the server-side metrics surface (DESIGN.md
// section 2i).
//
// The sim-side stack (counters, traces, time-sliced profiles) measures
// *simulated* time; nothing measured the server's *host-side* behavior
// -- queue depth under load, per-tenant latency distributions,
// admission outcomes. MetricsRegistry is that layer: a small,
// deterministic, thread-safe registry of named metric families in the
// four shapes the telemetry needs:
//
//   * counter  -- monotone accumulating double (jobs admitted, ...);
//   * gauge    -- last-write-wins level (current queue depth);
//   * histogram-- util::Histogram of observations (latency seconds);
//   * series   -- bounded (host-time, value) samples (queue depth over
//                 time), folded by decimation once the cap is hit so
//                 memory stays bounded on any run length.
//
// Families carry an optional label (already formatted as Prometheus
// key="value" pairs, e.g. `tenant="0"`); (family, label) pairs are
// independent entries. snapshot() returns everything sorted by family
// name then label, so two snapshots of the same state are equal and
// serialize byte-identically -- the property the exposition formats
// and the tests rely on.
//
// Exposition: write_prometheus() renders a snapshot in the Prometheus
// text format (histograms as cumulative `_bucket{le=...}` families
// with `_sum`/`_count`); write_snapshot_json() renders the same data
// as the "families" array of the metrics JSON v4 "server" section.
//
// Observation-only contract: recording is host-side bookkeeping; no
// simulated tick, admission decision or scheduling choice may ever
// read a metric back. Solo-run perf baselines stay byte-identical
// with the registry armed (pinned by tools/perf_diff in CI).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::core {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram, kSeries };

const char* metric_type_name(MetricType t);

class MetricsRegistry {
 public:
  /// Series entries are decimated 2:1 (keep every other sample) when
  /// they reach this cap, so long runs keep a bounded, evenly thinned
  /// history instead of growing without limit.
  static constexpr std::size_t kMaxSeriesSamples = 2048;

  struct Entry {
    std::string label;  ///< formatted label pairs ("" = unlabelled)
    double value = 0;   ///< counters and gauges
    util::Histogram hist;
    std::vector<std::pair<double, double>> samples;  ///< (host_s, value)
  };

  struct Family {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<Entry> entries;  ///< sorted by label

    const Entry* find(const std::string& label) const;
  };

  /// Deterministic point-in-time copy: families sorted by name,
  /// entries by label.
  struct Snapshot {
    std::vector<Family> families;
    const Family* find(const std::string& name) const;
  };

  /// Adds @p delta (default 1) to counter @p family / @p label,
  /// registering the family on first use. @p help is retained from the
  /// first registration. Throws std::logic_error if @p family exists
  /// with a different type (one name, one shape -- exposition formats
  /// require it).
  void counter_add(const std::string& family, const std::string& label,
                   double delta = 1.0, const char* help = "") EXCLUDES(mu_);

  /// Sets gauge @p family / @p label to @p value.
  void gauge_set(const std::string& family, const std::string& label,
                 double value, const char* help = "") EXCLUDES(mu_);

  /// Records @p value into histogram @p family / @p label (default
  /// util::Histogram latency layout).
  void observe(const std::string& family, const std::string& label,
               double value, const char* help = "") EXCLUDES(mu_);

  /// Appends (@p host_s, @p value) to series @p family / @p label.
  void series_sample(const std::string& family, const std::string& label,
                     double host_s, double value, const char* help = "")
      EXCLUDES(mu_);

  Snapshot snapshot() const EXCLUDES(mu_);

 private:
  struct Key {
    std::string family;
    std::string label;
    bool operator<(const Key& o) const {
      return family != o.family ? family < o.family : label < o.label;
    }
  };

  Entry& entry(const Key& key, MetricType type, const char* help)
      REQUIRES(mu_);

  mutable util::Mutex mu_{util::lockrank::kMetricsRegistry,
                          "MetricsRegistry::mu_"};
  std::map<std::string, std::pair<MetricType, std::string>> families_
      GUARDED_BY(mu_);  ///< name -> (type, help)
  std::map<Key, Entry> entries_ GUARDED_BY(mu_);
};

/// Renders @p snap in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, histogram
/// entries as cumulative `<name>_bucket{le="..."}` plus `_sum` and
/// `_count`, series as a gauge holding the last sample. Deterministic:
/// equal snapshots emit identical bytes.
void write_prometheus(std::ostream& os, const MetricsRegistry::Snapshot& snap);

/// Renders @p snap as a JSON array of family objects (the "families"
/// key of the metrics JSON v4 "server" section). @p indent is the
/// column the array starts at.
void write_snapshot_json(std::ostream& os,
                         const MetricsRegistry::Snapshot& snap,
                         int indent = 0);

}  // namespace cellsweep::core
