#include "util/concurrency_check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cellsweep::util {
namespace {

[[noreturn]] void default_handler_abort(const std::string& message) {
  std::fprintf(stderr, "cellsweep concurrency violation: %s\n",
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<ConcurrencyViolationHandler> g_handler{nullptr};

}  // namespace

ConcurrencyViolationHandler set_concurrency_violation_handler(
    ConcurrencyViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void concurrency_violation(const std::string& message) {
  ConcurrencyViolationHandler handler =
      g_handler.load(std::memory_order_acquire);
  if (handler) handler(message);
  // Either no handler was installed, or the installed one returned:
  // the invariant is broken and running on would turn a precise report
  // into an undebuggable deadlock or race somewhere downstream.
  default_handler_abort(message);
}

void ThreadConfined::report_cross_thread(const char* what) const {
  concurrency_violation(std::string(what) +
                        ": thread-confined object touched from a second "
                        "thread (owner fixed at first use; call reset() at a "
                        "quiescent point to hand off)");
}

}  // namespace cellsweep::util
