#include "core/metrics.h"

#include <cmath>
#include <ostream>

#include "core/orchestrator.h"
#include "sim/counters.h"
#include "util/stats.h"
#include "util/units.h"

namespace cellsweep::core {
namespace {

/// JSON has no NaN/Infinity literals; the empty-stats contract (all
/// moments NaN) and any degenerate ratio serialize as null. %.17g
/// round-trips doubles exactly, so identical runs emit identical bytes.
void num(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << util::cformat("%.17g", v);
}

void stats_object(std::ostream& os, const util::RunningStats& s) {
  os << "{\"count\": " << s.count() << ", \"mean\": ";
  num(os, s.mean());
  os << ", \"min\": ";
  num(os, s.min());
  os << ", \"max\": ";
  num(os, s.max());
  os << ", \"stddev\": ";
  num(os, s.stddev());
  os << "}";
}

}  // namespace

void write_counters_json(std::ostream& os, const sim::CounterSet& c,
                         int indent) {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  os << "{\"name\": \"" << c.name() << "\",\n" << pad << " \"values\": {";
  const auto& vals = c.values();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    os << (i ? ", " : "") << "\"" << vals[i].first << "\": ";
    num(os, vals[i].second);
  }
  os << "}";
  const auto& kids = c.children();
  if (!kids.empty()) {
    os << ",\n" << pad << " \"children\": [\n";
    for (std::size_t i = 0; i < kids.size(); ++i) {
      os << pad << "  ";
      write_counters_json(os, kids[i], indent + 2);
      os << (i + 1 < kids.size() ? ",\n" : "\n");
    }
    os << pad << " ]";
  }
  os << "}";
}

void write_timeseries_json(std::ostream& os, const sim::Profile& p,
                           int indent) {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  os << "{\"window_ticks\": " << p.window_ticks
     << ", \"end_ticks\": " << p.end_ticks << ",\n"
     << pad << " \"series\": [";
  for (std::size_t i = 0; i < p.series.size(); ++i) {
    const sim::ProfileSeries& s = p.series[i];
    os << (i ? ",\n" : "\n") << pad << "  {\"track\": \"" << s.track
       << "\", \"category\": \"" << s.category << "\", \"busy_ticks\": [";
    for (std::size_t k = 0; k < s.busy_ticks.size(); ++k) {
      os << (k ? ", " : "");
      num(os, s.busy_ticks[k]);
    }
    os << "]}";
  }
  if (!p.series.empty()) os << "\n" << pad << " ";
  os << "]}";
}

void write_metrics_json(std::ostream& os, const RunReport& r) {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"seconds\": ";
  num(os, r.seconds);
  os << ",\n  \"grind_seconds\": ";
  num(os, r.grind_seconds);
  os << ",\n  \"achieved_flops_per_s\": ";
  num(os, r.achieved_flops_per_s);
  os << ",\n  \"traffic_bytes\": ";
  num(os, r.traffic_bytes);
  os << ",\n  \"flops\": " << r.flops;
  os << ",\n  \"cell_solves\": " << r.cell_solves;
  os << ",\n  \"chunks\": " << r.chunks;
  os << ",\n  \"ls_high_water_bytes\": " << r.ls_high_water;
  os << ",\n  \"bounds\": {\"memory_s\": ";
  num(os, r.memory_bound_s);
  os << ", \"compute_s\": ";
  num(os, r.compute_bound_s);
  os << "},\n  \"utilization\": {\"mic\": ";
  num(os, r.mic_utilization);
  os << ", \"eib\": ";
  num(os, r.eib_utilization);
  os << "},\n  \"dma\": {\"commands\": " << r.dma_commands
     << ", \"transfers\": " << r.dma_transfers
     << ", \"queue_occupancy_histogram\": [";
  for (std::size_t k = 0; k < r.mfc_queue_occupancy.size(); ++k)
    os << (k ? ", " : "") << r.mfc_queue_occupancy[k];
  os << "]},\n  \"spe_stalls\": [";
  // Aggregate moments across SPEs per bucket; for PPE-only runs these
  // accumulators stay empty and serialize their NaN moments as null.
  util::RunningStats busy, dma, sync, idle;
  for (std::size_t s = 0; s < r.spe_stalls.size(); ++s) {
    const SpeStallSummary& st = r.spe_stalls[s];
    busy.add(st.busy_s);
    dma.add(st.dma_wait_s);
    sync.add(st.sync_wait_s);
    idle.add(st.idle_s);
    os << (s ? ",\n    " : "\n    ") << "{\"spe\": " << s << ", \"busy_s\": ";
    num(os, st.busy_s);
    os << ", \"dma_wait_s\": ";
    num(os, st.dma_wait_s);
    os << ", \"sync_wait_s\": ";
    num(os, st.sync_wait_s);
    os << ", \"idle_s\": ";
    num(os, st.idle_s);
    os << "}";
  }
  os << "\n  ],\n  \"stall_stats\": {\"busy_s\": ";
  stats_object(os, busy);
  os << ", \"dma_wait_s\": ";
  stats_object(os, dma);
  os << ", \"sync_wait_s\": ";
  stats_object(os, sync);
  os << ", \"idle_s\": ";
  stats_object(os, idle);
  os << "},\n  \"counters\": ";
  if (r.counters.empty()) {
    os << "null";
  } else {
    write_counters_json(os, r.counters, 2);
  }
  os << ",\n  \"timeseries\": ";
  if (r.timeseries.window_ticks == 0 || r.timeseries.empty()) {
    os << "null";
  } else {
    write_timeseries_json(os, r.timeseries, 2);
  }
  os << ",\n  \"faults\": ";
  if (!r.faults.enabled) {
    os << "null";
  } else {
    os << "{\"spes_disabled\": " << r.faults.spes_disabled
       << ", \"spes_failed\": " << r.faults.spes_failed
       << ", \"redispatched_chunks\": " << r.faults.redispatched_chunks
       << ",\n    \"dma_retries\": " << r.faults.dma_retries
       << ", \"tag_timeouts\": " << r.faults.tag_timeouts
       << ", \"dropped_messages\": " << r.faults.dropped_messages
       << ", \"mic_throttled\": " << r.faults.mic_throttled << "}";
  }
  // Solo runs have no server; the serve path writes its own document
  // (write_server_metrics_json) with this key populated.
  os << ",\n  \"server\": null";
  os << "\n}\n";
}

}  // namespace cellsweep::core
