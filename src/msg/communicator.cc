#include "msg/communicator.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

namespace cellsweep::msg {

using util::MutexLock;

int Communicator::size() const noexcept { return world_->size(); }

void Communicator::send(int dst, int tag, std::span<const double> data) {
  if (dst < 0 || dst >= world_->size())
    throw MsgError("send: destination rank out of range");
  world_->post(rank_, dst, tag, std::vector<double>(data.begin(), data.end()));
}

std::vector<double> Communicator::recv(int src, int tag) {
  if (src < 0 || src >= world_->size())
    throw MsgError("recv: source rank out of range");
  return world_->take(rank_, src, tag);
}

void Communicator::recv_into(int src, int tag, std::span<double> out) {
  std::vector<double> m = recv(src, tag);
  if (m.size() != out.size())
    throw MsgError("recv_into: message size mismatch");
  std::copy(m.begin(), m.end(), out.begin());
}

void Communicator::barrier() { world_->barrier_wait(); }

double Communicator::allreduce_sum(double value) {
  return world_->reduce(value, rank_, /*maximum=*/false);
}

double Communicator::allreduce_max(double value) {
  return world_->reduce(value, rank_, /*maximum=*/true);
}

World::World(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw MsgError("World: need at least one rank");
  mailboxes_.reserve(num_ranks_);
  for (int i = 0; i < num_ranks_; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  MutexLock lock(degrade_mu_);
  send_delay_us_.assign(num_ranks_, 0);
}

void World::degrade_rank(int rank, int delay_us) {
  if (rank < 0 || rank >= num_ranks_)
    throw MsgError("degrade_rank: rank out of range");
  if (delay_us < 0) throw MsgError("degrade_rank: negative delay");
  // Callers may degrade (or heal) a rank while its thread is mid-run;
  // post() reads the table under the same lock, so the new delay takes
  // effect at the sender's next send with no torn read.
  MutexLock lock(degrade_mu_);
  send_delay_us_[rank] = delay_us;
}

void World::run(const std::function<void(Communicator&)>& program) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(num_ranks_);
  threads.reserve(num_ranks_);
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &program, &errors] {
      Communicator comm(this, r);
      try {
        program(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void World::Mailbox::post(int src, int tag, std::vector<double> payload) {
  {
    MutexLock lock(mu);
    queues[{src, tag}].push_back(std::move(payload));
  }
  cv.notify_all();
}

std::vector<double> World::Mailbox::take(int src, int tag) {
  MutexLock lock(mu);
  // The queue reference is re-looked-up after every wakeup: another
  // (src, tag) stream may rehash the map while we sleep. (Explicit
  // loop rather than a wait-predicate lambda so the guarded reads are
  // analyzed in this lock context.)
  while (queues[{src, tag}].empty()) cv.wait(mu);
  auto& queue = queues[{src, tag}];
  std::vector<double> m = std::move(queue.front());
  queue.pop_front();
  return m;
}

void World::post(int src, int dst, int tag, std::vector<double> payload) {
  int delay_us = 0;
  {
    MutexLock lock(degrade_mu_);
    delay_us = send_delay_us_[src];
  }
  // The stall happens outside every lock: a degraded sender slows only
  // itself, never a receiver blocked on an unrelated mailbox.
  if (delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  mailboxes_[dst]->post(src, tag, std::move(payload));
}

std::vector<double> World::take(int dst, int src, int tag) {
  return mailboxes_[dst]->take(src, tag);
}

void World::barrier_wait() {
  MutexLock lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == num_ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  while (barrier_generation_ == gen) barrier_cv_.wait(barrier_mu_);
}

double World::reduce(double value, int rank, bool maximum) {
  MutexLock lock(reduce_mu_);
  const std::uint64_t gen = reduce_generation_;
  if (reduce_arrived_ == 0) reduce_slots_.assign(num_ranks_, 0.0);
  reduce_slots_[rank] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Combine in rank order so floating-point sums are deterministic
    // regardless of thread arrival order.
    double acc = reduce_slots_[0];
    for (int r = 1; r < num_ranks_; ++r)
      acc = maximum ? std::max(acc, reduce_slots_[r]) : acc + reduce_slots_[r];
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    ++reduce_generation_;
    reduce_cv_.notify_all();
    return reduce_result_;
  }
  while (reduce_generation_ == gen) reduce_cv_.wait(reduce_mu_);
  return reduce_result_;
}

}  // namespace cellsweep::msg
