#include "sweep/deck.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace cellsweep::sweep {
namespace {

struct RegionSpec {
  std::uint8_t material;
  int i0, i1, j0, j1, k0, k1;
};

[[noreturn]] void fail(int line, const std::string& what) {
  std::ostringstream os;
  os << "deck line " << line << ": " << what;
  throw DeckError(os.str());
}

int face_index(int line, const std::string& name) {
  if (name == "west") return kFaceWest;
  if (name == "east") return kFaceEast;
  if (name == "north") return kFaceNorth;
  if (name == "south") return kFaceSouth;
  if (name == "bottom") return kFaceBottom;
  if (name == "top") return kFaceTop;
  fail(line, "unknown face '" + name + "'");
}

}  // namespace

Deck parse_deck(std::istream& in) {
  Grid grid;
  SweepConfig cfg;
  cfg.mk = 0;  // resolved after kt is known
  int sn_order = 6;
  int nm_cap = kBenchmarkMoments;
  std::vector<Material> materials;
  std::vector<RegionSpec> regions;
  std::map<int, FaceBc> bcs;

  std::string text_line;
  int line_no = 0;
  while (std::getline(in, text_line)) {
    ++line_no;
    const auto hash = text_line.find('#');
    if (hash != std::string::npos) text_line.erase(hash);
    std::istringstream line(text_line);
    std::string key;
    // Several key-value pairs may share one line ("it 50  jt 50").
    while (line >> key) {
    auto want = [&](auto& v, const char* what) {
      if (!(line >> v)) fail(line_no, std::string("expected ") + what +
                                          " after '" + key + "'");
    };

    if (key == "it") want(grid.it, "an integer");
    else if (key == "jt") want(grid.jt, "an integer");
    else if (key == "kt") want(grid.kt, "an integer");
    else if (key == "dx") want(grid.dx, "a number");
    else if (key == "dy") want(grid.dy, "a number");
    else if (key == "dz") want(grid.dz, "a number");
    else if (key == "mk") want(cfg.mk, "an integer");
    else if (key == "mmi") want(cfg.mmi, "an integer");
    else if (key == "sn") want(sn_order, "an integer");
    else if (key == "moments") want(nm_cap, "an integer");
    else if (key == "iterations") want(cfg.max_iterations, "an integer");
    else if (key == "fixup_from") want(cfg.fixup_from_iteration, "an integer");
    else if (key == "epsilon") want(cfg.epsilon, "a number");
    else if (key == "accelerate") {
      int flag;
      want(flag, "0 or 1");
      cfg.accelerate = flag != 0;
    }
    else if (key == "material") {
      Material m;
      want(m.name, "a name");
      want(m.sigma_t, "sigma_t");
      m.sigma_s.clear();
      // Scattering moments up to the keyword "source".
      std::string tok;
      while (line >> tok) {
        if (tok == "source") break;
        try {
          m.sigma_s.push_back(std::stod(tok));
        } catch (const std::exception&) {
          fail(line_no, "bad scattering moment '" + tok + "'");
        }
      }
      if (tok != "source") fail(line_no, "material needs 'source <q>'");
      want(m.q_ext, "a source density");
      if (m.sigma_s.empty()) fail(line_no, "material needs sigma_s0");
      materials.push_back(std::move(m));
    } else if (key == "region") {
      RegionSpec r{};
      int mat;
      want(mat, "a material index");
      want(r.i0, "i0"); want(r.i1, "i1");
      want(r.j0, "j0"); want(r.j1, "j1");
      want(r.k0, "k0"); want(r.k1, "k1");
      if (mat < 0 || mat > 255) fail(line_no, "material index out of range");
      r.material = static_cast<std::uint8_t>(mat);
      regions.push_back(r);
    } else if (key == "bc") {
      std::string face, kind;
      want(face, "a face name");
      want(kind, "vacuum|reflective");
      if (kind != "vacuum" && kind != "reflective")
        fail(line_no, "unknown boundary kind '" + kind + "'");
      bcs[face_index(line_no, face)] =
          kind == "reflective" ? FaceBc::kReflective : FaceBc::kVacuum;
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
    }  // tokens within the line
  }

  if (materials.empty())
    throw DeckError("deck: at least one 'material' line is required");
  try {
    grid.validate();
  } catch (const std::exception& e) {
    throw DeckError(std::string("deck: ") + e.what());
  }
  // Robustness caps: a corrupted deck must fail with DeckError, never
  // drive a multi-gigabyte allocation (or overflow cells()) first. The
  // per-axis cap keeps the int64 cell product exact; the total cap
  // bounds the material map and every downstream field allocation.
  if (grid.it > 4096 || grid.jt > 4096 || grid.kt > 4096 ||
      grid.cells() > (std::int64_t{1} << 26))
    throw DeckError("deck: grid too large (limit 4096 cells per axis, "
                    "2^26 cells total)");
  if (nm_cap < 1 || nm_cap > 100)
    throw DeckError("deck: moments must be in 1..100");

  // Cell assignment: material 0 everywhere, then region overwrites.
  std::vector<std::uint8_t> cells(grid.cells(), 0);
  for (const RegionSpec& r : regions) {
    if (r.material >= materials.size())
      throw DeckError("deck: region references unknown material");
    if (r.i0 < 0 || r.i1 > grid.it || r.j0 < 0 || r.j1 > grid.jt ||
        r.k0 < 0 || r.k1 > grid.kt || r.i0 >= r.i1 || r.j0 >= r.j1 ||
        r.k0 >= r.k1)
      throw DeckError("deck: region box out of range");
    for (int k = r.k0; k < r.k1; ++k)
      for (int j = r.j0; j < r.j1; ++j)
        for (int i = r.i0; i < r.i1; ++i)
          cells[grid.index(i, j, k)] = r.material;
  }

  // Default MK: the largest divisor of KT not exceeding 10 (the deck's
  // MK must factor KT, as in Sweep3D).
  if (cfg.mk == 0) {
    cfg.mk = 1;
    for (int d = 1; d <= 10; ++d)
      if (grid.kt % d == 0) cfg.mk = d;
  }

  // The tail constructors (Problem, SnQuadrature, the blocking
  // validation) throw std::invalid_argument on bad values; a malformed
  // deck must always surface as DeckError, so rewrap them here.
  try {
    Deck deck{Problem(grid, std::move(materials), std::move(cells)), cfg,
              sn_order, nm_cap};
    for (const auto& [face, bc] : bcs) deck.problem.set_boundary(face, bc);

    // Surface bad blocking now rather than at run time.
    const SnQuadrature quad(deck.sn_order);
    deck.sweep.validate(grid.kt, quad.angles_per_octant());
    return deck;
  } catch (const DeckError&) {
    throw;
  } catch (const std::exception& e) {
    throw DeckError(std::string("deck: ") + e.what());
  }
}

Deck parse_deck_string(const std::string& text) {
  std::istringstream in(text);
  return parse_deck(in);
}

Deck load_deck(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DeckError("deck: cannot open '" + path + "'");
  Deck deck = parse_deck(in);
  deck.source = path;
  return deck;
}

}  // namespace cellsweep::sweep
