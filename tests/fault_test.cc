// Tests for the seeded fault-injection subsystem: the --faults spec
// grammar, the FaultPlan determinism contract (pure hash decisions:
// same seed => identical schedule, across repeated runs and host
// thread counts; different seeds => different schedules), graceful
// degradation (7-of-8 yield, mid-sweep SPE death with re-dispatch),
// and the hard byte-identity guarantee of the fault-free path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/metrics.h"
#include "core/orchestrator.h"
#include "sim/fault.h"

namespace cellsweep::core {
namespace {

CellSweepConfig faulted_config(const std::string& spec, int cube = 12,
                               int iterations = 2) {
  CellSweepConfig cfg =
      CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = iterations;
  cfg.sweep.fixup_from_iteration = iterations - 1;
  cfg.sweep.mk = std::min(cfg.sweep.mk, cube);
  while (cube % cfg.sweep.mk != 0) --cfg.sweep.mk;
  if (!spec.empty()) cfg.faults = sim::parse_fault_spec(spec);
  return cfg;
}

RunReport run_with(const std::string& spec, int cube = 12,
                   RunMode mode = RunMode::kTraceDriven) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(cube);
  const CellSweepConfig cfg = faulted_config(spec, cube);
  CellSweep3D runner(p, cfg);
  return runner.run(mode);
}

std::string metrics_of(const RunReport& r) {
  std::ostringstream os;
  write_metrics_json(os, r);
  return os.str();
}

void expect_stall_buckets_partition(const RunReport& r) {
  for (const SpeStallSummary& st : r.spe_stalls) {
    const double sum = st.busy_s + st.dma_wait_s + st.sync_wait_s + st.idle_s;
    EXPECT_NEAR(sum, r.seconds, 1e-9 * (1.0 + r.seconds));
  }
}

// ---------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
  const sim::FaultSpec s = sim::parse_fault_spec(
      "seed=42,dma=0.01,timeout=0.002,drop=0.005,throttle=0.03:0.5,"
      "retries=4,spe=7:down,spe=2:after:200,spe=5:slow:2.5");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.dma_fail_rate, 0.01);
  EXPECT_DOUBLE_EQ(s.tag_timeout_rate, 0.002);
  EXPECT_DOUBLE_EQ(s.mailbox_drop_rate, 0.005);
  EXPECT_DOUBLE_EQ(s.mic_throttle_rate, 0.03);
  EXPECT_DOUBLE_EQ(s.mic_throttle_factor, 0.5);
  EXPECT_EQ(s.max_dma_retries, 4);
  ASSERT_EQ(s.spes.size(), 3u);
  EXPECT_EQ(s.spes[0].spe, 7);
  EXPECT_EQ(s.spes[0].fail_after_chunks, 0);
  EXPECT_EQ(s.spes[1].spe, 2);
  EXPECT_EQ(s.spes[1].fail_after_chunks, 200);
  EXPECT_EQ(s.spes[2].spe, 5);
  EXPECT_DOUBLE_EQ(s.spes[2].compute_scale, 2.5);
  EXPECT_TRUE(s.any());
}

TEST(FaultSpec, EmptyAndSeedOnlySpecsAreDisabled) {
  EXPECT_FALSE(sim::parse_fault_spec("").any());
  EXPECT_FALSE(sim::parse_fault_spec("seed=7").any());
  EXPECT_FALSE(sim::FaultPlan(sim::parse_fault_spec("seed=7")).enabled());
  EXPECT_FALSE(sim::FaultPlan{}.enabled());
}

TEST(FaultSpec, ToleratesEmptyEntries) {
  const sim::FaultSpec s = sim::parse_fault_spec(",dma=0.5,,seed=3,");
  EXPECT_EQ(s.seed, 3u);
  EXPECT_DOUBLE_EQ(s.dma_fail_rate, 0.5);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  using sim::FaultSpecError;
  using sim::parse_fault_spec;
  EXPECT_THROW(parse_fault_spec("nonsense"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("bogus=1"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("dma=notanumber"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("dma=1.5"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("dma=-0.1"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("seed=-1"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("retries=31"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("throttle=0.1:0.0"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("throttle=0.1:0.5:9"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:down:1"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:after"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:after:0"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:slow:0.5"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=3:explode"), FaultSpecError);
  EXPECT_THROW(parse_fault_spec("spe=-1:down"), FaultSpecError);
}

TEST(FaultSpec, PlanConstructorValidatesDirectSpecs) {
  sim::FaultSpec bad_rate;
  bad_rate.dma_fail_rate = 2.0;
  EXPECT_THROW(sim::FaultPlan{bad_rate}, sim::FaultSpecError);

  sim::FaultSpec bad_factor;
  bad_factor.mic_throttle_factor = 0.0;
  EXPECT_THROW(sim::FaultPlan{bad_factor}, sim::FaultSpecError);

  sim::FaultSpec dup;
  dup.spes.push_back({3, 0, 1.0});
  dup.spes.push_back({3, -1, 2.0});
  EXPECT_THROW(sim::FaultPlan{dup}, sim::FaultSpecError);

  sim::FaultSpec slow_below_one;
  slow_below_one.spes.push_back({1, -1, 0.5});
  EXPECT_THROW(sim::FaultPlan{slow_below_one}, sim::FaultSpecError);
}

// ---------------------------------------------------------------------
// FaultPlan determinism contract
// ---------------------------------------------------------------------

TEST(FaultPlan, DecisionsArePureFunctionsOfCoordinates) {
  const sim::FaultPlan a(sim::parse_fault_spec("seed=9,dma=0.2,timeout=0.1"));
  const sim::FaultPlan b(sim::parse_fault_spec("seed=9,dma=0.2,timeout=0.1"));
  // Drain b in reverse order first: if decisions shared any stream
  // state, the forward comparison below would diverge.
  for (int unit = 7; unit >= 0; --unit)
    for (std::uint64_t seq = 64; seq-- > 0;) {
      (void)b.dma_failures(unit, seq);
      (void)b.tag_timeout(unit, seq);
    }
  for (int unit = 0; unit < 8; ++unit)
    for (std::uint64_t seq = 0; seq < 64; ++seq) {
      EXPECT_EQ(a.dma_failures(unit, seq), b.dma_failures(unit, seq));
      EXPECT_EQ(a.tag_timeout(unit, seq), b.tag_timeout(unit, seq));
    }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  const sim::FaultPlan a(sim::parse_fault_spec("seed=1,dma=0.2"));
  const sim::FaultPlan b(sim::parse_fault_spec("seed=2,dma=0.2"));
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 256; ++seq)
    if (a.dma_failures(0, seq) != b.dma_failures(0, seq)) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, DomainsDrawIndependently) {
  const sim::FaultPlan p(
      sim::parse_fault_spec("seed=5,dma=0.5,timeout=0.5,drop=0.5"));
  // Same (unit, seq) coordinates must not produce identical outcomes in
  // every domain (that would mean the domain is ignored in the hash).
  bool any_differ = false;
  for (std::uint64_t seq = 0; seq < 64 && !any_differ; ++seq)
    any_differ = (p.dma_failures(0, seq) > 0) != p.tag_timeout(0, seq);
  EXPECT_TRUE(any_differ);
}

TEST(FaultPlan, SpeHealthQueries) {
  const sim::FaultPlan p(
      sim::parse_fault_spec("spe=7:down,spe=2:after:100,spe=5:slow:3"));
  EXPECT_TRUE(p.spe_disabled(7));
  EXPECT_FALSE(p.spe_disabled(2));
  EXPECT_FALSE(p.spe_disabled(0));
  EXPECT_EQ(p.spe_fail_after(2), 100);
  EXPECT_EQ(p.spe_fail_after(0), -1);
  EXPECT_DOUBLE_EQ(p.spe_compute_scale(5), 3.0);
  EXPECT_DOUBLE_EQ(p.spe_compute_scale(1), 1.0);
}

// ---------------------------------------------------------------------
// Fault-free byte identity
// ---------------------------------------------------------------------

TEST(FaultRun, DisabledPlanIsByteIdenticalToNoPlan) {
  // A spec that names a seed but arms nothing must take the exact
  // fault-free code paths: identical metrics JSON, byte for byte.
  const RunReport plain = run_with("");
  const RunReport disabled = run_with("seed=12345");
  EXPECT_FALSE(plain.faults.enabled);
  EXPECT_FALSE(disabled.faults.enabled);
  EXPECT_EQ(metrics_of(plain), metrics_of(disabled));
}

TEST(FaultRun, MetricsReportFaultsNullWhenDisabled) {
  const std::string json = metrics_of(run_with(""));
  EXPECT_NE(json.find("\"faults\": null"), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"cellsweep-metrics-v4\""),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism of faulted runs
// ---------------------------------------------------------------------

TEST(FaultRun, SameSeedSameMetricsAcrossRepeatedRuns) {
  const std::string spec = "seed=42,dma=0.01,timeout=0.005,drop=0.01";
  const RunReport a = run_with(spec);
  const RunReport b = run_with(spec);
  EXPECT_EQ(metrics_of(a), metrics_of(b));
  EXPECT_GT(a.faults.dma_retries, 0u);
}

TEST(FaultRun, SameSeedSameMetricsAcrossThreadCounts) {
  // The functional sweep may execute chunks on a host thread pool; the
  // fault schedule is a pure hash of the event stream, so the metrics
  // must be byte-identical for any --threads value.
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  CellSweepConfig cfg = faulted_config("seed=7,dma=0.01,spe=6:down", 10);
  cfg.sweep.threads = 1;
  CellSweep3D one(p, cfg);
  const std::string m1 = metrics_of(one.run(RunMode::kFunctional));
  cfg.sweep.threads = 4;
  CellSweep3D four(p, cfg);
  const std::string m4 = metrics_of(four.run(RunMode::kFunctional));
  EXPECT_EQ(m1, m4);
}

TEST(FaultRun, FunctionalAndTraceDrivenTimingIdenticalUnderFaults) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  const CellSweepConfig cfg = faulted_config("seed=3,dma=0.02,spe=1:slow:2",
                                             10);
  CellSweep3D a(p, cfg), b(p, cfg);
  const RunReport trace = a.run(RunMode::kTraceDriven);
  const RunReport func = b.run(RunMode::kFunctional);
  EXPECT_DOUBLE_EQ(trace.seconds, func.seconds);
  EXPECT_EQ(trace.faults.dma_retries, func.faults.dma_retries);
}

TEST(FaultRun, DifferentSeedsGiveDifferentRuns) {
  const RunReport a = run_with("seed=1,dma=0.02");
  const RunReport b = run_with("seed=2,dma=0.02");
  EXPECT_TRUE(a.seconds != b.seconds ||
              a.faults.dma_retries != b.faults.dma_retries);
}

// ---------------------------------------------------------------------
// Degradation mechanics
// ---------------------------------------------------------------------

TEST(FaultRun, DmaFaultsCostTimeAndAreCounted) {
  const RunReport healthy = run_with("");
  const RunReport faulted = run_with("seed=42,dma=0.02");
  EXPECT_GT(faulted.faults.dma_retries, 0u);
  EXPECT_GT(faulted.seconds, healthy.seconds);
  // Physics-side workload is untouched: same chunks, same flops.
  EXPECT_EQ(faulted.chunks, healthy.chunks);
  EXPECT_EQ(faulted.flops, healthy.flops);
  expect_stall_buckets_partition(faulted);
  // The cost is visible in the counter tree's faults subtree.
  const sim::CounterSet* f = faulted.counters.find_child("faults");
  ASSERT_NE(f, nullptr);
  EXPECT_GT(f->value("dma_retry_attempts"), 0.0);
  EXPECT_GT(f->value("dma_retry_backoff_ticks"), 0.0);
}

TEST(FaultRun, SevenOfEightSpesCompletesWithIdenticalPhysics) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  const CellSweepConfig healthy_cfg = faulted_config("", 10);
  const CellSweepConfig degraded_cfg = faulted_config("spe=7:down", 10);
  CellSweep3D h(p, healthy_cfg), d(p, degraded_cfg);
  const RunReport healthy = h.run(RunMode::kFunctional);
  const RunReport degraded = d.run(RunMode::kFunctional);

  // Bit-identical physics: degradation only stretches simulated time.
  ASSERT_TRUE(healthy.solve.has_value());
  ASSERT_TRUE(degraded.solve.has_value());
  EXPECT_EQ(degraded.solve->iterations, healthy.solve->iterations);
  EXPECT_EQ(degraded.solve->final_change, healthy.solve->final_change);
  EXPECT_EQ(degraded.absorption, healthy.absorption);
  EXPECT_EQ(degraded.leakage.total(), healthy.leakage.total());
  EXPECT_EQ(degraded.chunks, healthy.chunks);
  EXPECT_EQ(degraded.flops, healthy.flops);

  // The sweep is dependency-chain-bound, so losing one of eight SPEs
  // does not stretch the wavefront at this size (a genuine multicore
  // surprise: the eighth SPE was slack); it must never get FASTER, and
  // the re-distribution is fully visible in the stall buckets -- the
  // survivors absorb SPE 7's kernels, ticking up their busy time.
  EXPECT_GE(degraded.seconds, healthy.seconds);
  EXPECT_EQ(degraded.faults.spes_disabled, 1);
  EXPECT_EQ(degraded.faults.spes_failed, 0);
  ASSERT_EQ(degraded.spe_stalls.size(), 8u);
  ASSERT_EQ(healthy.spe_stalls.size(), 8u);
  double healthy_busy = 0.0, degraded_busy = 0.0;
  for (int s = 0; s < 8; ++s) {
    healthy_busy += healthy.spe_stalls[s].busy_s;
    degraded_busy += degraded.spe_stalls[s].busy_s;
  }
  EXPECT_NEAR(degraded_busy, healthy_busy, 1e-9 * (1.0 + healthy_busy));
  EXPECT_GT(degraded.spe_stalls[0].busy_s, healthy.spe_stalls[0].busy_s);
  EXPECT_DOUBLE_EQ(degraded.spe_stalls[7].busy_s, 0.0);
  EXPECT_NEAR(degraded.spe_stalls[7].idle_s, degraded.seconds,
              1e-9 * (1.0 + degraded.seconds));
  expect_stall_buckets_partition(degraded);
  const sim::CounterSet* f = degraded.counters.find_child("faults");
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->value("spes_disabled"), 1.0);
}

TEST(FaultRun, MidSweepFailureRedispatchesToSurvivors) {
  const RunReport healthy = run_with("");
  const RunReport r = run_with("seed=42,spe=3:after:20");
  EXPECT_EQ(r.faults.spes_failed, 1);
  EXPECT_GE(r.faults.redispatched_chunks, 1u);
  EXPECT_GT(r.seconds, healthy.seconds);
  // Every chunk still ran (on a survivor): workload is conserved.
  EXPECT_EQ(r.chunks, healthy.chunks);
  EXPECT_EQ(r.flops, healthy.flops);
  expect_stall_buckets_partition(r);
  const sim::CounterSet* f = r.counters.find_child("faults");
  ASSERT_NE(f, nullptr);
  EXPECT_DOUBLE_EQ(f->value("spes_failed"), 1.0);
  EXPECT_GT(f->value("failover_ticks"), 0.0);
}

TEST(FaultRun, SlowSpeStretchesRun) {
  const RunReport healthy = run_with("");
  const RunReport r = run_with("spe=0:slow:4");
  EXPECT_GT(r.seconds, healthy.seconds);
  EXPECT_EQ(r.flops, healthy.flops);
  ASSERT_EQ(r.spe_stalls.size(), 8u);
  EXPECT_GT(r.spe_stalls[0].busy_s, healthy.spe_stalls[0].busy_s);
  expect_stall_buckets_partition(r);
}

TEST(FaultRun, TagTimeoutsDropsAndThrottlesAreCountedAndCost) {
  const RunReport healthy = run_with("");

  const RunReport timeouts = run_with("seed=9,timeout=0.05");
  EXPECT_GT(timeouts.faults.tag_timeouts, 0u);
  EXPECT_GT(timeouts.seconds, healthy.seconds);

  // Message drops need a centralized protocol with real messages.
  {
    const sweep::Problem p = sweep::Problem::benchmark_cube(12);
    CellSweepConfig cfg = faulted_config("seed=9,drop=0.05", 12);
    cfg.sync = cell::SyncProtocol::kMailbox;
    CellSweepConfig base_cfg = faulted_config("", 12);
    base_cfg.sync = cell::SyncProtocol::kMailbox;
    CellSweep3D faulted(p, cfg), base(p, base_cfg);
    const RunReport rd = faulted.run(RunMode::kTraceDriven);
    const RunReport rb = base.run(RunMode::kTraceDriven);
    EXPECT_GT(rd.faults.dropped_messages, 0u);
    EXPECT_GT(rd.seconds, rb.seconds);
  }

  const RunReport throttled = run_with("seed=9,throttle=0.2:0.25");
  EXPECT_GT(throttled.faults.mic_throttled, 0u);
  EXPECT_GT(throttled.seconds, healthy.seconds);
}

TEST(FaultRun, AllSpesDisabledThrowsFaultError) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(10);
  std::string spec;
  for (int s = 0; s < 8; ++s)
    spec += (s ? "," : "") + std::string("spe=") + std::to_string(s) +
            ":down";
  const CellSweepConfig cfg = faulted_config(spec, 10);
  CellSweep3D runner(p, cfg);
  EXPECT_THROW(runner.run(RunMode::kTraceDriven), sim::FaultError);
}

TEST(FaultRun, RetryCapBoundsWorstCase) {
  // Even at rate 1.0 every command completes after max_dma_retries
  // failed attempts; the run terminates and counts honestly.
  const RunReport r = run_with("seed=1,dma=1.0,retries=2", 8);
  EXPECT_GT(r.faults.dma_retries, 0u);
  const sim::CounterSet* f = r.counters.find_child("faults");
  ASSERT_NE(f, nullptr);
  // Every command failed exactly twice (the cap).
  EXPECT_DOUBLE_EQ(f->value("dma_retry_attempts"),
                   2.0 * f->value("dma_retried_commands"));
}

}  // namespace
}  // namespace cellsweep::core
