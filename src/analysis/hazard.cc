#include "analysis/hazard.h"

#include <algorithm>
#include <sstream>

namespace cellsweep::analysis {

namespace {

bool overlaps(std::size_t alo, std::size_t ahi, std::size_t blo,
              std::size_t bhi) {
  return alo < bhi && blo < ahi;
}

std::string range_str(std::size_t lo, std::size_t hi) {
  std::ostringstream os;
  os << "LS[" << lo << "," << hi << ")";
  return os.str();
}

}  // namespace

HazardChecker::HazardChecker(Diagnostics* diags, const cell::CellSpec& spec)
    : diags_(diags), spec_(spec) {}

HazardChecker::SpeState& HazardChecker::spe_state(int spe) {
  if (spe < 0) spe = 0;
  if (static_cast<std::size_t>(spe) >= spes_.size())
    spes_.resize(static_cast<std::size_t>(spe) + 1);
  return spes_[static_cast<std::size_t>(spe)];
}

std::string HazardChecker::where(int spe, std::size_t lo,
                                 std::size_t hi) const {
  std::ostringstream os;
  os << "SPE" << spe << " ";
  if (static_cast<std::size_t>(spe) < spes_.size()) {
    for (const cell::LocalStore::Region& r :
         spes_[static_cast<std::size_t>(spe)].regions) {
      if (lo >= r.offset && hi <= r.offset + r.bytes) {
        os << r.name;
        return os.str();
      }
    }
  }
  os << range_str(lo, hi);
  return os.str();
}

void HazardChecker::on_ls_reset(int spe) {
  SpeState& s = spe_state(spe);
  s.regions.clear();
  s.dmas.clear();
}

void HazardChecker::on_ls_alloc(int spe, const cell::LocalStore::Region& region,
                                std::size_t ls_capacity) {
  SpeState& s = spe_state(spe);
  s.capacity = ls_capacity;
  std::ostringstream loc;
  loc << "SPE" << spe << " " << region.name;
  if (spec_.dma_align_sweet_spot != 0 &&
      region.offset % spec_.dma_align_sweet_spot != 0)
    diags_->error("ls-alignment", loc.str(),
                  "allocation offset " + std::to_string(region.offset) +
                      " is not 128-byte aligned");
  if (region.offset + region.bytes > ls_capacity)
    diags_->error(
        "ls-overflow", loc.str(),
        "allocation " + range_str(region.offset, region.offset + region.bytes) +
            " exceeds the " + std::to_string(ls_capacity) +
            "-byte local store");
  for (const cell::LocalStore::Region& other : s.regions) {
    if (overlaps(region.offset, region.offset + region.bytes, other.offset,
                 other.offset + other.bytes)) {
      diags_->error("ls-overlap", loc.str(),
                    "allocation overlaps region \"" + other.name + "\" " +
                        range_str(other.offset, other.offset + other.bytes));
    }
  }
  s.regions.push_back(region);
}

void HazardChecker::on_dma(int spe, const cell::DmaRequest& req,
                           sim::Tick submitted,
                           const cell::DmaCompletion& completion,
                           std::uint64_t token) {
  if (req.ls_bytes == 0) return;  // unannotated: nothing to check against
  SpeState& s = spe_state(spe);
  const std::size_t lo = req.ls_offset;
  const std::size_t hi = req.ls_offset + req.ls_bytes;
  const std::string loc = where(spe, lo, hi);

  // The LS range must sit inside one allocated region.
  bool contained = false;
  for (const cell::LocalStore::Region& r : s.regions) {
    if (lo >= r.offset && hi <= r.offset + r.bytes) {
      contained = true;
      break;
    }
  }
  if (!contained)
    diags_->error("dma-outside-region", "SPE" + std::to_string(spe),
                  submitted,
                  "DMA targets " + range_str(lo, hi) +
                      " which is not inside any allocated region");

  const bool is_get = req.dir == cell::DmaDir::kGet;
  for (const Dma& e : s.dmas) {
    if (!overlaps(lo, hi, e.lo, e.hi)) continue;
    const bool e_put = e.dir == cell::DmaDir::kPut;
    if (e.done > submitted) {
      // Still in flight at submission time.
      if (is_get && e_put) {
        diags_->error("overwrite-in-flight-put", loc, submitted,
                      "get overwrites bytes an in-flight put (tag " +
                          std::to_string(e.tag) + ", completes at " +
                          std::to_string(e.done) + " ticks) is still reading");
      } else if (is_get || !e_put) {
        // get+get, put+get: concurrent DMAs with at least one writer.
        diags_->error("overlapping-dma", loc, submitted,
                      "concurrent DMA commands overlap on " +
                          range_str(std::max(lo, e.lo), std::min(hi, e.hi)) +
                          " and at least one writes the local store");
      }
    } else if (is_get && e_put &&
               (!e.observed || e.observed_at > submitted)) {
      // The put finished in simulated time, but the SPU never confirmed
      // that via a tag wait before reusing the buffer -- on hardware
      // this is a race even when the timing happens to work out.
      diags_->error("reuse-before-tag-wait", loc, submitted,
                    "buffer reused without a tag-group wait covering the "
                    "prior put (tag " +
                        std::to_string(e.tag) + ")");
    }
  }

  // A fresh get supersedes drained, observed puts over the same bytes;
  // dropping them here bounds tracked state to the live buffer set.
  if (is_get) {
    std::erase_if(s.dmas, [&](const Dma& e) {
      return e.dir == cell::DmaDir::kPut && overlaps(lo, hi, e.lo, e.hi) &&
             e.done <= submitted && e.observed && e.observed_at <= submitted;
    });
  }

  s.dmas.push_back(Dma{req.dir, req.tag, lo, hi, submitted, completion.done,
                       token, false, 0});
}

void HazardChecker::on_tag_wait(int spe, unsigned tag, sim::Tick at) {
  SpeState& s = spe_state(spe);
  for (Dma& e : s.dmas) {
    if (e.tag != tag) continue;
    if (e.done > at) {
      diags_->error("tag-wait-incomplete", where(spe, e.lo, e.hi), at,
                    "tag-group " + std::to_string(tag) +
                        " wait resolved before a member command completes at " +
                        std::to_string(e.done) + " ticks");
    }
    if (!e.observed || at < e.observed_at) {
      e.observed = true;
      e.observed_at = at;
    }
  }
}

void HazardChecker::on_kernel(int spe, std::size_t ls_offset,
                              std::size_t ls_bytes, sim::Tick start,
                              sim::Tick end, std::uint64_t token) {
  (void)end;
  SpeState& s = spe_state(spe);
  const std::size_t lo = ls_offset;
  const std::size_t hi = ls_offset + ls_bytes;
  const std::string loc = where(spe, lo, hi);

  bool staged = false;
  for (const Dma& e : s.dmas) {
    if (!overlaps(lo, hi, e.lo, e.hi)) continue;
    if (e.dir == cell::DmaDir::kGet) {
      if (e.token == token) {
        staged = true;
        if (e.done > start)
          diags_->error("read-before-get-complete", loc, start,
                        "kernel reads " + range_str(e.lo, e.hi) +
                            " before its staging get completes at " +
                            std::to_string(e.done) + " ticks");
        else if (!e.observed || e.observed_at > start)
          diags_->error("use-before-tag-wait", loc, start,
                        "kernel reads " + range_str(e.lo, e.hi) +
                            " without a tag-group " + std::to_string(e.tag) +
                            " wait observing the staging get");
      } else if (e.token > token) {
        diags_->error("buffer-overwritten-before-use", loc, start,
                      "bytes " + range_str(e.lo, e.hi) +
                          " were re-staged for chunk " +
                          std::to_string(e.token) +
                          " before the kernel for chunk " +
                          std::to_string(token) + " consumed them");
      }
    } else if (e.done > start) {
      diags_->error("kernel-overlaps-put", loc, start,
                    "kernel updates " + range_str(e.lo, e.hi) +
                        " while a put draining until " +
                        std::to_string(e.done) + " ticks still reads it");
    }
  }
  if (!staged)
    diags_->error("kernel-reads-unstaged", loc, start,
                  "no staging get for chunk " + std::to_string(token) +
                      " covers the kernel's buffer");

  // The kernel consumed this chunk's (and any stale earlier) gets.
  std::erase_if(s.dmas, [&](const Dma& e) {
    return e.dir == cell::DmaDir::kGet && e.token <= token &&
           overlaps(lo, hi, e.lo, e.hi) && e.done <= start;
  });
}

void HazardChecker::on_grant(int spe, cell::SyncProtocol protocol,
                             sim::Tick requested, sim::Tick granted,
                             std::uint64_t sequence) {
  const std::string loc =
      "SPE" + std::to_string(spe) + " " + cell::sync_protocol_name(protocol);
  if (granted < requested)
    diags_->error("grant-before-request", loc, granted,
                  "work granted at " + std::to_string(granted) +
                      " ticks, before it was requested at " +
                      std::to_string(requested));
  if (saw_grant_) {
    if (sequence != last_sequence_ + 1)
      diags_->error("work-counter-non-monotone", loc, granted,
                    "grant sequence " + std::to_string(sequence) +
                        " does not follow " + std::to_string(last_sequence_) +
                        " (the shared work counter must advance by one per "
                        "fetch-and-add)");
    if (granted < last_grant_)
      diags_->error("dispatch-serialization", loc, granted,
                    "grant completes at " + std::to_string(granted) +
                        " ticks, before the previous grant at " +
                        std::to_string(last_grant_) +
                        " (the dispatch point serializes grants)");
  }
  saw_grant_ = true;
  last_sequence_ = sequence;
  last_grant_ = std::max(last_grant_, granted);
}

void HazardChecker::on_report(int spe, cell::SyncProtocol protocol,
                              sim::Tick at, std::uint64_t token) {
  (void)protocol;
  SpeState& s = spe_state(spe);
  for (const Dma& e : s.dmas) {
    if (e.dir != cell::DmaDir::kPut || e.token != token) continue;
    if (e.done > at)
      diags_->error("report-before-writeback", where(spe, e.lo, e.hi), at,
                    "chunk " + std::to_string(token) +
                        " reported complete while its writeback drains until " +
                        std::to_string(e.done) + " ticks");
    else if (!e.observed || e.observed_at > at)
      diags_->error("report-before-writeback", where(spe, e.lo, e.hi), at,
                    "chunk " + std::to_string(token) +
                        " reported complete without a tag-group " +
                        std::to_string(e.tag) +
                        " wait observing its writeback");
  }
}

void HazardChecker::on_run_end(sim::Tick at) {
  for (std::size_t spe = 0; spe < spes_.size(); ++spe) {
    for (const Dma& e : spes_[spe].dmas) {
      if (!e.observed)
        diags_->error("completion-never-observed",
                      where(static_cast<int>(spe), e.lo, e.hi), at,
                      "DMA submitted at " + std::to_string(e.submitted) +
                          " ticks (tag " + std::to_string(e.tag) +
                          ") was never covered by a tag-group wait");
    }
  }
}

}  // namespace cellsweep::analysis
