// The stencil workload end to end: functional physics against an
// in-test naive reference, bitwise determinism across runs and thread
// counts, trace-driven/functional timing equality, fault-plan
// determinism and degraded-run physics, and the spec linter's
// positive/negative verdicts.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.h"
#include "cellsim/local_store.h"
#include "sim/fault.h"
#include "workloads/stencil/stencil.h"

namespace cellsweep {
namespace {

stencil::StencilSpec tiny_spec() {
  stencil::StencilSpec spec;
  spec.nx = spec.ny = spec.nz = 8;
  spec.bx = spec.by = spec.bz = 4;
  spec.iterations = 2;
  spec.origin = "<test>";
  return spec;
}

/// Naive reference: the same red-black Gauss-Seidel relaxation written
/// as one triple loop, accumulating neighbors in the same (-x, +x, -y,
/// +y, -z, +z) order so results must match BITWISE, not approximately.
std::vector<double> naive_solve(const stencil::StencilSpec& spec) {
  const int nx = spec.nx, ny = spec.ny, nz = spec.nz;
  std::vector<double> u(
      static_cast<std::size_t>(nx) * ny * nz, 0.0);
  const double h2f = spec.h * spec.h * spec.source;
  auto at = [&](int i, int j, int k) -> double& {
    return u[(static_cast<std::size_t>(k) * ny + j) * nx + i];
  };
  for (int it = 0; it < spec.iterations; ++it)
    for (int color = 0; color < 2; ++color)
      for (int k = 0; k < nz; ++k)
        for (int j = 0; j < ny; ++j)
          for (int i = 0; i < nx; ++i) {
            if (((i + j + k) & 1) != color) continue;
            double sum = h2f;
            if (i > 0) sum += at(i - 1, j, k);
            if (i + 1 < nx) sum += at(i + 1, j, k);
            if (j > 0) sum += at(i, j - 1, k);
            if (j + 1 < ny) sum += at(i, j + 1, k);
            if (k > 0) sum += at(i, j, k - 1);
            if (k + 1 < nz) sum += at(i, j, k + 1);
            at(i, j, k) = sum / 6.0;
          }
  return u;
}

TEST(StencilFunctional, MatchesNaiveReferenceBitwise) {
  const stencil::StencilSpec spec = tiny_spec();
  stencil::StencilState state(spec);
  state.run();
  const std::vector<double> want = naive_solve(spec);
  ASSERT_EQ(state.field().size(), want.size());
  for (std::size_t c = 0; c < want.size(); ++c)
    ASSERT_EQ(state.field()[c], want[c]) << "cell " << c;
  EXPECT_EQ(state.updates(),
            static_cast<std::uint64_t>(spec.cells()) * spec.iterations);
  // The relaxation must actually relax: residual drops as iterations
  // accumulate.
  stencil::StencilSpec longer = spec;
  longer.iterations = 50;
  stencil::StencilState settled(longer);
  settled.run();
  EXPECT_LT(settled.residual(), state.residual());
}

TEST(StencilFunctional, BitwiseDeterministicAcrossThreads) {
  stencil::StencilSpec spec = tiny_spec();
  spec.nx = spec.ny = spec.nz = 16;
  spec.iterations = 3;
  stencil::StencilState serial(spec);
  serial.run(1);
  for (int threads : {2, 4, 7}) {
    stencil::StencilState parallel(spec);
    parallel.run(threads);
    ASSERT_EQ(parallel.field(), serial.field()) << threads << " threads";
  }
}

TEST(StencilMachine, TraceDrivenAndFunctionalTimingIdentical) {
  const stencil::StencilSpec spec = tiny_spec();
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  stencil::CellStencil a(spec, cfg);
  const stencil::StencilReport trace = a.run(core::RunMode::kTraceDriven);
  stencil::CellStencil b(spec, cfg);
  const stencil::StencilReport func =
      b.run(core::RunMode::kFunctional, /*threads=*/3);
  EXPECT_EQ(trace.run.seconds, func.run.seconds);
  EXPECT_EQ(trace.run.counters.value("run_ticks"),
            func.run.counters.value("run_ticks"));
  EXPECT_EQ(trace.run.traffic_bytes, func.run.traffic_bytes);
  EXPECT_EQ(trace.updates, func.updates);
  // Machine-side update count agrees with the functional solver's.
  stencil::StencilState state(spec);
  state.run();
  EXPECT_EQ(func.updates, state.updates());
  EXPECT_EQ(func.checksum, state.checksum());
}

TEST(StencilMachine, CrossRunDeterminism) {
  const stencil::StencilSpec spec = tiny_spec();
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  const stencil::StencilReport a =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kTraceDriven);
  const stencil::StencilReport b =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kTraceDriven);
  EXPECT_EQ(a.run.seconds, b.run.seconds);
  EXPECT_EQ(a.run.traffic_bytes, b.run.traffic_bytes);
  EXPECT_EQ(a.run.dma_commands, b.run.dma_commands);
}

TEST(StencilMachine, FaultPlanDeterministicForSameSeed) {
  const stencil::StencilSpec spec = tiny_spec();
  core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  cfg.faults = sim::parse_fault_spec("seed=42,dma=0.02,retries=4");
  const stencil::StencilReport a =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kTraceDriven);
  const stencil::StencilReport b =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kTraceDriven);
  EXPECT_TRUE(a.run.faults.enabled);
  EXPECT_EQ(a.run.seconds, b.run.seconds);
  EXPECT_EQ(a.run.faults.dma_retries, b.run.faults.dma_retries);
}

TEST(StencilMachine, DegradedSevenSpeRunKeepsPhysicsIdentical) {
  // Big enough that losing one of eight SPEs stretches the critical
  // path (the tiny spec's two waves hide a missing SPE entirely).
  stencil::StencilSpec spec = tiny_spec();
  spec.nx = spec.ny = spec.nz = 16;
  spec.bx = spec.by = spec.bz = 4;
  spec.iterations = 3;
  core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  const stencil::StencilReport healthy =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kFunctional);
  cfg.faults = sim::parse_fault_spec("seed=7,spe=6:down");
  const stencil::StencilReport degraded =
      stencil::CellStencil(spec, cfg).run(core::RunMode::kFunctional);
  EXPECT_EQ(degraded.run.faults.spes_disabled, 1);
  // The fault plan degrades only the machine; the physics is bitwise
  // unchanged on the seven survivors.
  EXPECT_EQ(degraded.checksum, healthy.checksum);
  EXPECT_EQ(degraded.residual, healthy.residual);
  EXPECT_EQ(degraded.updates, healthy.updates);
  // No time travel, and the dead SPE did no work: the survivors
  // absorbed every chunk. (At this memory-bound shape the MIC, not the
  // SPE count, sets the wall time, so seconds need not grow.)
  EXPECT_GE(degraded.run.seconds, healthy.run.seconds);
  const sim::CounterSet* dead = degraded.run.counters.find_child("spe6");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->value("work_items"), 0.0);
  EXPECT_EQ(degraded.run.counters.value("chunks"),
            healthy.run.counters.value("chunks"));
}

TEST(StencilLint, AcceptsAWellFormedSpec) {
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  const analysis::Diagnostics diags =
      analysis::lint_stencil(tiny_spec(), cfg);
  EXPECT_FALSE(diags.has_errors())
      << (diags.entries().empty() ? "" : diags.entries()[0].to_string());
}

TEST(StencilLint, RejectsNonDividingBlocking) {
  stencil::StencilSpec spec = tiny_spec();
  spec.bx = 5;  // does not divide nx = 8
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  const analysis::Diagnostics diags = analysis::lint_stencil(spec, cfg);
  ASSERT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.entries()[0].rule, "spec");
}

TEST(StencilLint, RejectsLocalStoreOverflow) {
  stencil::StencilSpec spec;
  spec.nx = spec.ny = spec.nz = 256;
  spec.bx = spec.by = spec.bz = 128;  // one block >> 256 KB local store
  spec.origin = "<test>";
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  const analysis::Diagnostics diags = analysis::lint_stencil(spec, cfg);
  ASSERT_TRUE(diags.has_errors());
  bool saw_ls = false;
  for (const analysis::Diagnostic& d : diags.entries())
    if (d.rule == "ls-budget") saw_ls = true;
  EXPECT_TRUE(saw_ls);
  // The linter and the runner agree: the same spec throws at
  // pipeline construction.
  EXPECT_THROW(stencil::CellStencil(spec, cfg).run(), cell::LocalStoreOverflow);
}

TEST(StencilLint, RejectsTagBudgetOverflow) {
  const stencil::StencilSpec spec = tiny_spec();
  core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  cfg.buffers = 17;  // 34 tags > the CBEA's 32 tag groups
  const analysis::Diagnostics diags = analysis::lint_stencil(spec, cfg);
  ASSERT_TRUE(diags.has_errors());
  bool saw_tags = false;
  for (const analysis::Diagnostic& d : diags.entries())
    if (d.rule == "tag-budget") saw_tags = true;
  EXPECT_TRUE(saw_tags);
}

TEST(StencilSpec, ParserRoundTripsAndRejectsGarbage) {
  const stencil::StencilSpec spec = stencil::parse_spec_string(
      "# comment\nnx 16 ny 8 nz 8\nbx 4 by 4 bz 4\niterations 3\nh 0.5\n");
  EXPECT_EQ(spec.nx, 16);
  EXPECT_EQ(spec.iterations, 3);
  EXPECT_EQ(spec.h, 0.5);
  EXPECT_EQ(spec.blocks(), 4 * 2 * 2);
  EXPECT_THROW(stencil::parse_spec_string("nx banana"),
               stencil::StencilError);
  EXPECT_THROW(stencil::parse_spec_string("volume 12"),
               stencil::StencilError);
  EXPECT_THROW(stencil::parse_spec_string("nx 8 bx 3"),
               stencil::StencilError);
  EXPECT_THROW(stencil::load_spec("/nonexistent/path.stencil"),
               stencil::StencilError);
}

}  // namespace
}  // namespace cellsweep
