#include "cellsim/spu_pipeline.h"

#include <algorithm>
#include <unordered_map>

namespace cellsweep::cell {

PipelineSpec::PipelineSpec(const CellSpec& spec) {
  const auto dp_block = static_cast<std::uint16_t>(spec.dp_issue_block_cycles);
  // DP latency: 13 cycles on the shipped part; on the fully pipelined
  // variant the latency is 9 (PowerXCell 8i figure).
  const std::uint16_t dp_lat = spec.dp_issue_block_cycles > 1 ? 13 : 9;

  auto set = [&](spu::Op op, Pipe pipe, std::uint16_t lat,
                 std::uint16_t block) {
    table_[static_cast<std::size_t>(op)] = OpTiming{pipe, lat, block};
  };

  set(spu::Op::kFmaDouble, Pipe::kEven, dp_lat, dp_block);
  set(spu::Op::kMulDouble, Pipe::kEven, dp_lat, dp_block);
  set(spu::Op::kAddDouble, Pipe::kEven, dp_lat, dp_block);
  set(spu::Op::kCmpDouble, Pipe::kEven, dp_lat, dp_block);
  set(spu::Op::kFmaSingle, Pipe::kEven, 6, 1);
  set(spu::Op::kMulSingle, Pipe::kEven, 6, 1);
  set(spu::Op::kAddSingle, Pipe::kEven, 6, 1);
  set(spu::Op::kCmpSingle, Pipe::kEven, 2, 1);
  set(spu::Op::kFixed, Pipe::kEven, 2, 1);
  set(spu::Op::kSelect, Pipe::kEven, 2, 1);
  set(spu::Op::kLoad, Pipe::kOdd, 6, 1);
  set(spu::Op::kStore, Pipe::kOdd, 1, 1);
  set(spu::Op::kShuffle, Pipe::kOdd, 4, 1);
  set(spu::Op::kBranch, Pipe::kOdd, 1, 1);
  // An unhinted taken branch flushes the fetch pipeline: ~18 dead
  // cycles before the next instruction issues.
  set(spu::Op::kBranchMiss, Pipe::kOdd, 1, 19);
  set(spu::Op::kChannel, Pipe::kOdd, 2, 1);
}

ScheduleResult SpuPipeline::schedule(const spu::Trace& trace) const {
  ScheduleResult result;
  result.flops = trace.flops;
  if (trace.insts.empty()) return result;

  // ready[v] = first cycle at which value v can feed a dependent
  // instruction. Values produced outside the trace are ready at 0.
  std::unordered_map<spu::ValueId, std::uint64_t> ready;
  ready.reserve(trace.insts.size() * 2);

  std::uint64_t completion = 0;
  // Earliest cycle the *next* instruction may issue (advanced by
  // in-order single issue and by issue-blocking ops).
  std::uint64_t next_issue = 0;
  // State of the previously issued instruction, for dual-issue pairing.
  std::uint64_t prev_cycle = 0;
  Pipe prev_pipe = Pipe::kOdd;
  bool prev_paired = true;  // nothing to pair with before the first inst
  bool prev_blocking = false;

  auto src_ready = [&](spu::ValueId v) -> std::uint64_t {
    if (v == spu::kNoValue) return 0;
    auto it = ready.find(v);
    return it == ready.end() ? 0 : it->second;
  };

  for (const auto& inst : trace.insts) {
    const OpTiming& t = timings_.timing(inst.op);
    const std::uint64_t deps =
        std::max({src_ready(inst.src0), src_ready(inst.src1),
                  src_ready(inst.src2)});

    const bool blocking = t.issue_block > 1;
    std::uint64_t issue;
    bool paired = false;

    // Fetch-group pairing: the second slot of a dual issue must be an
    // odd-pipe instruction following an even-pipe one, the first must
    // not be a blocking op, and the pair shares one issue cycle.
    if (!prev_paired && prev_pipe == Pipe::kEven && t.pipe == Pipe::kOdd &&
        !prev_blocking && !blocking && deps <= prev_cycle &&
        next_issue <= prev_cycle + 1) {
      issue = prev_cycle;
      paired = true;
      ++result.dual_issues;
    } else {
      issue = std::max(next_issue, deps);
      if (deps > next_issue) result.dep_stall_cycles += deps - next_issue;
    }

    ready[inst.dst] = issue + t.latency;
    completion = std::max(completion, issue + t.latency);

    if (!paired) {
      const std::uint64_t after = issue + t.issue_block;
      if (blocking) result.block_stall_cycles += t.issue_block - 1;
      next_issue = after;
      prev_cycle = issue;
      prev_pipe = t.pipe;
      prev_paired = false;
      prev_blocking = blocking;
      // A non-blocking instruction leaves its own cycle open for an
      // odd-pipe partner; next_issue tracks the following cycle.
      if (!blocking) next_issue = issue + 1;
    } else {
      prev_paired = true;  // the slot is consumed
    }

    ++result.instructions;
    if (t.pipe == Pipe::kEven)
      ++result.even_pipe_insts;
    else
      ++result.odd_pipe_insts;
  }

  result.issue_cycles = next_issue;
  result.cycles = completion;
  return result;
}

}  // namespace cellsweep::cell
