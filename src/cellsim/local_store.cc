#include "cellsim/local_store.h"

#include <sstream>

namespace cellsweep::cell {

LocalStore::LocalStore(std::size_t capacity_bytes,
                       std::size_t code_reserve_bytes)
    : capacity_(capacity_bytes),
      code_reserve_(util::round_up(code_reserve_bytes, util::kCacheLineBytes)),
      top_(code_reserve_),
      high_water_(code_reserve_) {
  if (code_reserve_ > capacity_)
    throw LocalStoreOverflow("code reservation exceeds local store");
  regions_.push_back(Region{"(code+stack)", 0, code_reserve_});
}

std::size_t LocalStore::allocate(const std::string& name, std::size_t bytes) {
  const std::size_t padded = util::round_up(bytes, util::kCacheLineBytes);
  if (top_ + padded > capacity_) {
    std::ostringstream os;
    os << "local store overflow allocating '" << name << "' (" << padded
       << " B): " << top_ << "/" << capacity_ << " B already in use";
    throw LocalStoreOverflow(os.str());
  }
  const std::size_t offset = top_;
  top_ += padded;
  if (top_ > high_water_) high_water_ = top_;
  regions_.push_back(Region{name, offset, padded});
  return offset;
}

void LocalStore::reset() noexcept {
  top_ = code_reserve_;
  regions_.resize(1);
}

std::string LocalStore::describe() const {
  std::ostringstream os;
  os << "local store " << used() << "/" << capacity() << " B used\n";
  for (const auto& r : regions_)
    os << "  [" << r.offset << ", " << r.offset + r.bytes << ") " << r.name
       << " (" << r.bytes << " B)\n";
  return os.str();
}

}  // namespace cellsweep::cell
