// SolveServer: sweep-as-a-service over the simulated Cell chip.
//
// PR 5's headline finding -- at paper cube sizes the sweep is
// dependency-chain-bound and leaves most of the chip slack -- turns
// deck_runner's one-shot workflow into a multi-tenant question: what
// throughput does one chip sustain when several solves share it? This
// server answers it end to end:
//
//   * a job queue accepting sweep decks and stencil specs (the two
//     workload grammars), each solved exactly as deck_runner would;
//   * admission control that rejects malformed or over-budget inputs
//     with a typed AdmissionError *before* anything is scheduled,
//     reusing the static linters (analysis::lint_deck / lint_stencil)
//     so admission and runtime can never disagree about what is legal;
//   * N tenant workers solving concurrently, sharing one host
//     util::ThreadPool (the functional kernels) and one SpeAllocator
//     (the simulated chip: runs claim SPEs worst-fit and yield them
//     under pressure at batch boundaries);
//   * a PlanCache keyed by deck fingerprint, so resubmitted decks skip
//     the quadrature build and the trace-scheduled kernel calibration
//     (byte-identical reports either way, pinned by tests).
//
// Host concurrency only ever decides *which SPEs* a tenant holds and
// *when in host time* work runs -- each tenant's simulated clocks
// advance only with its own workload, and the physics is bitwise
// independent of tenancy (pinned by tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/flight_recorder.h"
#include "core/job_trace.h"
#include "core/metrics_registry.h"
#include "core/report.h"
#include "core/spe_allocator.h"
#include "server/plan_cache.h"
#include "sweep/deck.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workloads/stencil/spec.h"

namespace cellsweep::core {

enum class JobKind : std::uint8_t { kSweep, kStencil };
const char* job_kind_name(JobKind k);

/// Thrown by submit() when a job is rejected at admission; the typed
/// reason lets clients (and tests) react to the cause instead of
/// pattern-matching message text.
class AdmissionError : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t {
    kParse,       ///< deck / spec text does not parse
    kLint,        ///< static linter found errors
    kLsBudget,    ///< simulated-LS footprint exceeds the server budget
    kGridBudget,  ///< grid cells exceed the server budget
    kQueueFull,   ///< queue_limit pending jobs already
    kShutdown,    ///< stop() was called; the server takes no new work
  };

  AdmissionError(Reason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

const char* admission_reason_name(AdmissionError::Reason r);

struct ServerConfig {
  /// Concurrent tenant workers (clamped to >= 1). Each runs one solve
  /// at a time against the shared chip.
  int tenants = 2;
  /// Machine switches every job runs under (the Figure 5 ladder).
  OptimizationStage stage = OptimizationStage::kSpeLsPoke;
  /// Pending jobs admitted before submit() rejects with kQueueFull.
  std::size_t queue_limit = 64;
  /// Admission budget on the per-SPE simulated-LS footprint (resident
  /// regions + buffers x staging buffer) in bytes. 0 = no extra budget
  /// beyond the linter's 256 KB capacity check.
  std::size_t ls_budget_bytes = 0;
  /// Admission budget on grid cells; 0 = unlimited.
  long long grid_cell_budget = 0;
  /// Width of the shared host pool (functional kernels; clamped >= 1).
  /// Purely host-side: results are bitwise identical for any value.
  int host_threads = 1;
  /// Fewest SPEs a tenant may be squeezed to under pressure.
  int min_spes = 1;
  /// Per-tenant QoS weights, indexed by tenant worker id; tenants past
  /// the end (or with entries < 1) run at the default weight 1. A
  /// weight-w tenant's SPE fair share under pressure scales with w
  /// (see SpeAllocator), and a running lower-weight job yields SPEs at
  /// chunk granularity when a higher-weight claim is blocked. Empty
  /// (the default) keeps every tenant equal -- byte-identical to the
  /// pre-QoS build.
  std::vector<int> tenant_weights;
  /// Per-tenant hard caps on SPEs held at once, same indexing; entries
  /// <= 0 (and tenants past the end) are uncapped.
  std::vector<int> tenant_quotas;
  /// Fault plan applied to every job's simulated machine (SPE deaths,
  /// DMA flakiness -- see sim::parse_fault_spec). Default: no faults.
  sim::FaultSpec faults;
  /// Plan-cache entry bound (FIFO eviction when full); 0 = unbounded.
  std::size_t plan_cache_capacity = 0;
  /// Flight-recorder ring size (events kept for post-mortem dumps).
  std::size_t flight_recorder_capacity = FlightRecorder::kDefaultCapacity;
  /// When non-empty, notable events (job failure, queue-full storm,
  /// fault failover) dump the flight-recorder window to
  /// "<path>-<wall_ms>-<seq>.json". Empty: no files are written (the
  /// ring still records and is readable in-process).
  std::string flight_recorder_path;
};

struct JobRequest {
  JobKind kind = JobKind::kSweep;
  /// Label in results; defaults to "job-<id>".
  std::string name;
  /// Deck (sweep) or spec (stencil) source text.
  std::string text;
  RunMode mode = RunMode::kTraceDriven;
  /// Queue deadline in host milliseconds from admission; 0 = none. A
  /// job still queued when its deadline passes is cancelled at dequeue
  /// (published with a partial trace, counted in Stats::cancelled)
  /// instead of running late. The deadline never interrupts a job that
  /// started in time -- use cancel() for that.
  std::int64_t deadline_ms = 0;
};

struct JobResult {
  int id = 0;
  std::string name;
  JobKind kind = JobKind::kSweep;
  /// False: the solve itself failed (admission failures never get
  /// here -- submit() throws instead); `error` has the story.
  bool ok = false;
  std::string error;
  /// The machine-side report, exactly what a solo deck_runner run of
  /// the same input produces (a stencil job's StencilReport::run).
  RunReport report;
  // Stencil functional results (kFunctional stencil jobs only).
  double checksum = 0;
  double residual = 0;
  /// This job reused a cached plan (quadrature + kernel calibration).
  bool plan_cache_hit = false;
  /// The job was cancelled (cancel(), deadline expiry, or stop())
  /// rather than failing on its own; ok is false and `error` starts
  /// with "cancelled:".
  bool cancelled = false;
  /// Host-time lifecycle stamps (admission -> queue -> plan -> claim
  /// wait -> run -> report); partial (complete == false) for cancelled
  /// jobs -- a mid-run cancellation still stamps run_end_s, so the
  /// spans it did reach stay well-ordered.
  JobTrace trace;
};

class SolveServer {
 public:
  struct Stats {
    std::uint64_t submitted = 0;  ///< admitted into the queue
    std::uint64_t completed = 0;  ///< finished ok
    std::uint64_t failed = 0;     ///< finished with an error (not cancelled)
    std::uint64_t rejected = 0;   ///< refused at admission
    /// Cancelled before completing: cancel(), deadline expiry or
    /// stop(). Disjoint from failed -- every admitted job lands in
    /// exactly one of completed / failed / cancelled, so
    /// submitted == completed + failed + cancelled once drained (the
    /// conservation law the soak test pins).
    std::uint64_t cancelled = 0;
  };

  explicit SolveServer(const ServerConfig& cfg = {});
  /// Drains the queue (pending jobs still run) and joins the workers.
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Admission-checks @p req (parse, lint, budgets, queue depth) and
  /// enqueues it. Returns the job id; throws AdmissionError on
  /// rejection -- nothing rejected ever reaches a worker.
  int submit(const JobRequest& req) EXCLUDES(mu_);

  /// Blocks until job @p id completes; throws std::invalid_argument
  /// for ids submit() never returned.
  JobResult wait(int id) EXCLUDES(mu_);

  /// Blocks until every submitted job has completed; returns all
  /// results in submission order.
  std::vector<JobResult> drain() EXCLUDES(mu_);

  /// Cancels job @p id. A still-queued job is removed and published
  /// immediately (cancelled result, partial trace, flight-recorder
  /// post-mortem dumped before the result is visible). A running job
  /// gets its cooperative flag set: the streaming pipeline aborts
  /// between waves (chunk granularity, never mid-wave), the partial
  /// result stamps run_end_s, and the same dump-before-publish order
  /// holds. Returns false when the job already finished (or the id was
  /// never issued) -- cancel() and completion racing is benign, the
  /// published result tells which won.
  bool cancel(int id) EXCLUDES(mu_);

  /// Early shutdown: stops accepting work (submit() then rejects with
  /// kShutdown), cancels every still-queued job -- each is published
  /// as a cancelled JobResult carrying its partial lifecycle trace
  /// (complete == false) and counted in Stats::cancelled only (not
  /// failed) -- lets in-flight jobs finish, and joins the workers.
  /// Idempotent; the destructor afterwards is a no-op. Without stop(),
  /// destruction keeps the original drain semantics (queued jobs still
  /// run).
  void stop() EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);
  PlanCache::Stats plan_cache_stats() const { return cache_.stats(); }
  SpeAllocator::Stats allocator_stats() const { return alloc_.stats(); }
  util::ThreadPool::Telemetry pool_telemetry() const {
    return pool_.telemetry();
  }
  double pool_utilization() const { return pool_.utilization(); }
  const ServerConfig& config() const noexcept { return cfg_; }

  /// The server's host clock (t=0 at construction): the time base of
  /// every JobTrace stamp, metrics series sample and flight-recorder
  /// event.
  const HostClock& clock() const noexcept { return clock_; }

  /// Deterministic combined metrics snapshot: the live registry
  /// (lifecycle counters, per-tenant latency histograms, queue-depth
  /// series) plus families derived from the allocator, plan-cache and
  /// host-pool stats at call time. Families sorted by name.
  MetricsRegistry::Snapshot metrics_snapshot() const EXCLUDES(mu_);

  /// Every finished (or cancelled) job with its lifecycle trace, in
  /// submission order -- the input to write_job_trace_events().
  std::vector<TracedJob> traced_jobs() const EXCLUDES(mu_);

  const FlightRecorder& flight_recorder() const noexcept { return recorder_; }

 private:
  struct Job {
    int id = 0;
    JobRequest req;
    // Parsed at admission; exactly one is set.
    std::optional<sweep::Deck> deck;
    std::shared_ptr<const stencil::StencilSpec> spec;
    JobTrace trace;
    /// Cooperative cancellation flag, created at submit() and shared
    /// with the cancel_flags_ registry so cancel() can reach a job the
    /// worker already dequeued. The pipeline polls it between waves.
    std::shared_ptr<std::atomic<bool>> cancel_flag;
  };

  /// Parse + lint + budget checks; fills job.deck / job.spec. Throws
  /// AdmissionError. Runs entirely outside mu_: admission work never
  /// blocks the queue.
  void admit(Job& job) const EXCLUDES(mu_);
  void worker_loop(int tenant) EXCLUDES(mu_);
  /// Joins the tenant workers exactly once (stop() and the destructor
  /// both funnel here).
  void join_workers() EXCLUDES(mu_);
  /// Writes the flight-recorder window to the configured dump path
  /// (no-op when flight_recorder_path is empty) and counts the dump.
  void dump_flight(const char* trigger) EXCLUDES(mu_);
  /// Publishes @p job as a cancelled result (reason-labelled counter,
  /// "cancel" lifecycle event, optional flight dump -- always *before*
  /// the result becomes visible) and counts it in Stats::cancelled.
  void publish_cancelled(Job&& job, const std::string& why,
                         const char* reason, bool dump) EXCLUDES(mu_);
  /// Configured QoS weight (>= 1) / SPE quota (0 = uncapped) of a
  /// tenant worker.
  int tenant_weight(int tenant) const noexcept;
  int tenant_quota(int tenant) const noexcept;
  /// Drops job @p id's entry from the cancel-flag registry (after its
  /// result is published; cancel() then reports "already finished").
  void unregister_cancel_flag(int id) EXCLUDES(cancel_mu_);
  /// Runs one job to completion. mu_ is never held here: a solve may
  /// take seconds and claims SPEs / the host pool on its own locks.
  JobResult run_job(Job& job) EXCLUDES(mu_);
  JobResult run_sweep(Job& job);
  JobResult run_stencil(Job& job);
  /// The cached plan for @p deck (building + inserting on miss).
  std::shared_ptr<const CachedPlan> plan_for_sweep(
      const sweep::Deck& deck, const CellSweepConfig& cfg,
      std::uint64_t key, bool& hit);

  ServerConfig cfg_;
  CellSweepConfig base_;  ///< from_stage(cfg_.stage), + cfg_.faults
  util::ThreadPool pool_;
  SpeAllocator alloc_;
  PlanCache cache_;

  // Telemetry: all observation-only (nothing below feeds a scheduling
  // or admission decision), all on internal locks ranked above mu_, so
  // recording is legal from any server code path.
  HostClock clock_;
  MetricsRegistry metrics_;
  FlightRecorder recorder_;
  std::atomic<int> dump_seq_{0};  ///< flight-dump file suffix

  /// Guards the job queue, the result map and the server stats -- the
  /// only state tenant workers and clients share directly. Jobs run
  /// outside it; the only lock ever acquired while it is held is
  /// cancel_mu_ (rank-increasing, declared in lock_ranks.h), so it
  /// cannot participate in a deadlock cycle.
  mutable util::Mutex mu_{util::lockrank::kSolveServer, "SolveServer::mu_"};
  util::CondVar cv_queue_;  ///< workers wait on mu_ for jobs
  util::CondVar cv_done_;   ///< clients wait on mu_ for results
  std::deque<Job> queue_ GUARDED_BY(mu_);
  std::map<int, JobResult> done_ GUARDED_BY(mu_);
  int next_id_ GUARDED_BY(mu_) = 1;
  bool stopping_ GUARDED_BY(mu_) = false;
  bool joined_ GUARDED_BY(mu_) = false;  ///< workers already joined
  Stats stats_ GUARDED_BY(mu_);

  /// Guards the job-id -> cancel-flag registry, so cancel() can find a
  /// running job's flag without touching the queue lock. Ranked after
  /// mu_: submit() registers the flag while holding mu_ (the one
  /// declared nesting); every other path takes the two one at a time.
  mutable util::Mutex cancel_mu_{util::lockrank::kSolveServerCancel,
                                 "SolveServer::cancel_mu_"};
  std::map<int, std::shared_ptr<std::atomic<bool>>> cancel_flags_
      GUARDED_BY(cancel_mu_);

  std::vector<std::thread> workers_;
};

/// Writes the serve-mode metrics document: {"schema":
/// "cellsweep-metrics-v4", "server": {"stats": ..., "plan_cache": ...,
/// "spe_allocator": ..., "host_pool": ..., "flight_recorder": ...,
/// "families": [...]}} -- the server-side sibling of
/// write_metrics_json's solo-run object (whose "server" key is null).
void write_server_metrics_json(std::ostream& os, const SolveServer& server);

}  // namespace cellsweep::core
