// Ablation: fault injection and graceful degradation.
//
// Sweeps the fault injector over the final-stage configuration and
// reports what resilience costs: transient DMA failure rates (retry +
// exponential backoff), the 7-of-8-SPE yield case the real parts
// shipped with, a mid-sweep SPE failure (watchdog + re-dispatch), a
// degraded slow SPE, dispatch message drops and MIC bank throttling.
// The healthy row doubles as the byte-identity anchor: with the fault
// plan disabled the run must match the fault-free baselines exactly.
#include "bench/bench_common.h"
#include "sim/fault.h"

namespace {

cellsweep::core::RunReport run_with_faults(const cellsweep::sim::FaultSpec& fs,
                                           int cube) {
  using namespace cellsweep;
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  cfg.faults = fs;
  core::CellSweep3D runner(problem, cfg);
  return runner.run(core::RunMode::kTraceDriven);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  const int cube = opt.cube_or(20);
  bench::print_header("Ablation: fault injection / graceful degradation (" +
                      std::to_string(cube) + "^3)");

  struct Row {
    const char* name;
    const char* spec;  ///< --faults grammar; empty = healthy
  };
  const Row rows[] = {
      {"healthy", ""},
      {"dma_1e-4", "seed=42,dma=0.0001"},
      {"dma_1e-3", "seed=42,dma=0.001"},
      {"dma_1e-2", "seed=42,dma=0.01"},
      {"tag_timeouts", "seed=42,timeout=0.001"},
      {"msg_drops", "seed=42,drop=0.005"},
      {"mic_throttle", "seed=42,throttle=0.01:0.5"},
      {"spe7_down", "seed=42,spe=7:down"},
      {"spe3_dies_mid_sweep", "seed=42,spe=3:after:50"},
      {"spe5_half_speed", "seed=42,spe=5:slow:2.0"},
  };

  util::TextTable table({"fault scenario", "run time [s]", "slowdown",
                         "retries", "redispatched"});
  bench::BenchJson json("ablation_faults", cube);
  double healthy_s = 0.0;
  for (const Row& row : rows) {
    const sim::FaultSpec fs =
        row.spec[0] ? sim::parse_fault_spec(row.spec) : sim::FaultSpec{};
    const core::RunReport r = run_with_faults(fs, cube);
    if (healthy_s == 0.0) healthy_s = r.seconds;
    json.add_run(row.name, r);
    table.add_row({row.name, bench::fmt("%.4f", r.seconds),
                   bench::fmt("%.3fx", healthy_s > 0 ? r.seconds / healthy_s
                                                     : 0.0),
                   bench::fmt("%.0f", static_cast<double>(r.faults.dma_retries)),
                   bench::fmt("%.0f", static_cast<double>(
                                          r.faults.redispatched_chunks))});
  }
  table.print(std::cout);
  std::cout << "\nGraceful degradation: physics is bit-identical in every\n"
               "row (the injector only stretches time); the cost lands in\n"
               "the stall buckets and the faults/ counter subtree. The\n"
               "spe7_down row is the surprise: the sweep is dependency-\n"
               "chain-bound at this size, so the eighth SPE was slack and\n"
               "the survivors absorb its chunks at no wall-clock cost.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
