// SIMDized bundle kernel: four "logical threads" of vectorization.
//
// The paper's key kernel optimization (Figures 6 -> 7, the 2.88 s ->
// 1.68 s step in Figure 5): because the I-recursion is data-dependent
// along i, the SPU's 2-way double-precision SIMD cannot vectorize a
// single line. Instead, the chunk of four I-lines an SPE receives is
// processed as four simultaneous "logical threads" (A, B, C, D):
//
//   * the independent per-cell phases -- source assembly and flux-
//     moment accumulation -- vectorize along i inside each line
//     (exactly Figure 7's FluxVA..FluxVD loops);
//   * the recursive diamond solve packs lanes *across* lines, so the
//     i-recursion advances two lines per vec_double2 chain, two chains
//     deep, which also masks the 13-cycle DP latency.
//
// Every lane performs the same arithmetic, in the same order, as the
// scalar kernel (and this library builds with -ffp-contract=off), so
// double-precision results are bit-identical to sweep_line_scalar --
// enforced by tests/sweep_kernel_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "spu/intrinsics.h"
#include "sweep/kernel.h"
#include "util/aligned.h"

namespace cellsweep::sweep {

/// Maximum I-lines per SPE work chunk ("chunks of four iterations",
/// paper Section 6).
inline constexpr int kBundleLines = 4;

/// SIMD shape per precision: vec type, lanes per vector, and how many
/// vector chains cover the four logical threads.
template <typename Real>
struct SimdTraits;

template <>
struct SimdTraits<double> {
  using Vec = spu::vec_double2;
  using Mask = spu::vec_mask2;
  static constexpr int kLanes = 2;
  static constexpr int kChains = 2;  // 2 chains x 2 lanes = 4 lines
};

template <>
struct SimdTraits<float> {
  using Vec = spu::vec_float4;
  using Mask = spu::vec_mask4;
  static constexpr int kLanes = 4;
  static constexpr int kChains = 1;  // 1 chain x 4 lanes = 4 lines
};

/// Reusable scratch for one bundle (the local-store Phi / q lines).
template <typename Real>
struct BundleScratch {
  explicit BundleScratch(int max_it) {
    const std::size_t n = util::padded_extent<Real>(max_it);
    for (auto& line : q) line.assign(n, Real(0));
    for (auto& line : phi) line.assign(n, Real(0));
  }
  std::array<util::AlignedVector<Real>, kBundleLines> q;
  std::array<util::AlignedVector<Real>, kBundleLines> phi;
};

namespace detail_simd {

/// Division with the numerics of an exact divide but the instruction
/// trace of the SPU's reciprocal-estimate + Newton-Raphson sequence
/// (the SPU has no DP divide; XLC emits frest/fi + refinement).
inline spu::vec_double2 div_exact(const spu::vec_double2& num,
                                  const spu::vec_double2& den) {
  // Trace: estimate (odd-pipe shuffle-class) + 2 Newton iterations
  // (mul + nmsub + madd each is approximated as 3 DP ops) + final mul.
  spu::TraceRecorder* rec = spu::TraceRecorder::active();
  spu::vec_double2 r;
  r.v[0] = num.v[0] / den.v[0];
  r.v[1] = num.v[1] / den.v[1];
  if (rec) {
    spu::ValueId est = rec->record(spu::Op::kShuffle, den.id);
    for (int it = 0; it < 2; ++it) {
      est = rec->record(spu::Op::kMulDouble, den.id, est, spu::kNoValue, 2);
      est = rec->record(spu::Op::kFmaDouble, est, est, est, 4);
    }
    r.id = rec->record(spu::Op::kMulDouble, num.id, est, spu::kNoValue, 2);
  }
  return r;
}

inline spu::vec_float4 div_exact(const spu::vec_float4& num,
                                 const spu::vec_float4& den) {
  spu::TraceRecorder* rec = spu::TraceRecorder::active();
  spu::vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = num.v[i] / den.v[i];
  if (rec) {
    // SP: frest + fi + one Newton step + final multiply.
    spu::ValueId est = rec->record(spu::Op::kShuffle, den.id);
    est = rec->record(spu::Op::kMulSingle, den.id, est, spu::kNoValue, 4);
    est = rec->record(spu::Op::kFmaSingle, est, est, est, 8);
    r.id = rec->record(spu::Op::kMulSingle, num.id, est, spu::kNoValue, 4);
  }
  return r;
}

}  // namespace detail_simd

/// Solves a bundle of 1..4 I-lines for (possibly distinct) angles.
/// All lines must share the same length and direction; inactive chain
/// lanes (when nlines < 4) carry benign dummy values and are not
/// written back.
template <typename Real>
void sweep_bundle_simd(const LineArgs<Real>* lines, int nlines, bool fixup,
                       BundleScratch<Real>& scratch,
                       KernelStats* stats = nullptr);

// Declared here, defined in kernel_simd.cc with explicit instantiation
// for float and double.

}  // namespace cellsweep::sweep
