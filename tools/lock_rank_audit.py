#!/usr/bin/env python3
"""Static audit of the lock-rank registry and the annotated mutex surface.

Checks, in order:
  1. The registry (src/util/lock_ranks.h) parses: `inline constexpr int
     kName = N;` rows with unique names and unique values.
  2. Every `// LOCK_ORDER: kA -> kB [-> kC ...]` edge declared in the
     registry connects known names and is strictly rank-increasing
     (the invariant the runtime checker enforces per thread).
  3. The declared lock-order graph is acyclic.
  4. Every `util::Mutex` declaration under src/ is constructed with a
     `lockrank::` rank from the registry -- adding a mutex without
     registering its rank is an error.
  5. No raw `std::mutex` / `std::condition_variable` / lock wrappers
     survive under src/ outside the util::Mutex implementation itself:
     the annotated wrappers are the only sanctioned primitives.

Emits the lock-order DAG as Graphviz DOT with --dot (every registry
rank is a node, declared nestings are edges, nodes referenced by a
Mutex declaration carry the referencing files as a label).

Exit status: 0 clean, 1 any violation. Used by the `lock_rank_audit`
CTest (label `static`) and the thread-safety CI job.
"""

import argparse
import os
import re
import sys

RANK_ROW = re.compile(r"^inline constexpr int (k\w+) = (\d+);", re.MULTILINE)
ORDER_ROW = re.compile(r"^//\s*LOCK_ORDER:\s*(.+)$", re.MULTILINE)
MUTEX_DECL = re.compile(r"\bMutex\b\s+(\w+)\s*([{(][^;]*);", re.DOTALL)
RAW_PRIMITIVE = re.compile(
    r"\bstd::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock"
    r"|shared_mutex|recursive_mutex)\b")

# Files allowed to touch the raw primitives: the wrapper implementation.
RAW_ALLOWED = {
    os.path.join("util", "mutex.h"),
    os.path.join("util", "mutex.cc"),
}


def strip_comments(text):
    """Removes // and /* */ comments (keeps line structure for line
    numbers) and string literals, so commented-out code never trips a
    check."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            seg = text[i:(n if j < 0 else j + 2)]
            out.append("\n" * seg.count("\n"))
            i = n if j < 0 else j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('""')
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_registry(path, errors):
    """Returns (ranks: name -> value, edges: [(outer, inner)])."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    ranks = {}
    values = {}
    for name, value in RANK_ROW.findall(text):
        value = int(value)
        if name in ranks:
            errors.append(f"{path}: duplicate rank name {name}")
        elif value in values:
            errors.append(
                f"{path}: rank value {value} used by both {values[value]} "
                f"and {name}")
        else:
            ranks[name] = value
            values[value] = name
    if not ranks:
        errors.append(f"{path}: no rank rows found "
                      "(expected `inline constexpr int kName = N;`)")
    edges = []
    for chain in ORDER_ROW.findall(text):
        names = [p.strip() for p in chain.split("->")]
        if len(names) < 2:
            errors.append(f"{path}: LOCK_ORDER needs at least two names: "
                          f"{chain.strip()!r}")
            continue
        for outer, inner in zip(names, names[1:]):
            for name in (outer, inner):
                if name not in ranks:
                    errors.append(
                        f"{path}: LOCK_ORDER names unknown rank {name}")
            edges.append((outer, inner))
    return ranks, edges


def check_edges(ranks, edges, errors):
    for outer, inner in edges:
        if outer in ranks and inner in ranks and ranks[outer] >= ranks[inner]:
            errors.append(
                f"edge {outer} -> {inner} is not rank-increasing "
                f"({ranks[outer]} >= {ranks[inner]}): the runtime checker "
                "would reject this nesting")


def check_acyclic(ranks, edges, errors):
    graph = {name: [] for name in ranks}
    for outer, inner in edges:
        if outer in graph and inner in ranks:
            graph[outer].append(inner)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def dfs(node, path):
        color[node] = GRAY
        path.append(node)
        for nxt in graph.get(node, ()):
            if color.get(nxt) == GRAY:
                cycle = path[path.index(nxt):] + [nxt]
                errors.append(
                    "lock-order cycle: " + " -> ".join(cycle))
                return True
            if color.get(nxt) == WHITE and dfs(nxt, path):
                return True
        path.pop()
        color[node] = BLACK
        return False

    for name in graph:
        if color[name] == WHITE and dfs(name, []):
            return


def scan_sources(src_root, ranks, errors):
    """Returns rank name -> [relpath ...] of referencing declarations."""
    used = {name: [] for name in ranks}
    for dirpath, _, filenames in os.walk(src_root):
        for filename in sorted(filenames):
            if not filename.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, src_root)
            with open(path, encoding="utf-8") as f:
                text = strip_comments(f.read())
            for match in RAW_PRIMITIVE.finditer(text):
                if rel in RAW_ALLOWED:
                    continue
                line = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{rel}:{line}: raw {match.group(0)} -- use the "
                    "annotated util::Mutex / util::CondVar wrappers")
            for match in MUTEX_DECL.finditer(text):
                var, args = match.group(1), match.group(2)
                line = text.count("\n", 0, match.start()) + 1
                rank_ref = re.search(r"lockrank::(k\w+)", args)
                if not rank_ref:
                    errors.append(
                        f"{rel}:{line}: util::Mutex {var} constructed "
                        "without a lockrank:: rank -- register one in "
                        "src/util/lock_ranks.h")
                elif rank_ref.group(1) not in ranks:
                    errors.append(
                        f"{rel}:{line}: util::Mutex {var} names "
                        f"{rank_ref.group(1)}, which is not in the registry")
                else:
                    used[rank_ref.group(1)].append(f"{rel}:{line}")
    return used


def emit_dot(path, ranks, edges, used):
    lines = ["digraph lock_order {"]
    lines.append('  rankdir="LR";')
    lines.append('  node [shape=box, fontname="monospace"];')
    for name in sorted(ranks, key=ranks.get):
        sites = used.get(name, [])
        label = f"{name}\\nrank {ranks[name]}"
        for site in sites:
            label += f"\\n{site}"
        lines.append(f'  {name} [label="{label}"];')
    for outer, inner in edges:
        lines.append(f"  {outer} -> {inner};")
    lines.append("}")
    text = "\n".join(lines) + "\n"
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's "
                             "parent directory's parent)")
    parser.add_argument("--registry", default=None,
                        help="rank registry header (default: "
                             "<root>/src/util/lock_ranks.h)")
    parser.add_argument("--src", default=None,
                        help="source tree to scan (default: <root>/src)")
    parser.add_argument("--dot", default=None, metavar="PATH",
                        help="write the lock-order DAG as Graphviz DOT "
                             "('-' for stdout)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    registry = args.registry or os.path.join(root, "src", "util",
                                             "lock_ranks.h")
    src_root = args.src or os.path.join(root, "src")

    errors = []
    ranks, edges = parse_registry(registry, errors)
    check_edges(ranks, edges, errors)
    check_acyclic(ranks, edges, errors)
    used = {}
    if os.path.isdir(src_root):
        used = scan_sources(src_root, ranks, errors)
    if args.dot:
        emit_dot(args.dot, ranks, edges, used)

    if errors:
        for e in errors:
            print(f"lock_rank_audit: error: {e}", file=sys.stderr)
        print(f"lock_rank_audit: {len(errors)} error(s)", file=sys.stderr)
        return 1
    n_used = sum(1 for sites in used.values() if sites)
    print(f"lock_rank_audit: OK -- {len(ranks)} rank(s), {len(edges)} "
          f"declared edge(s), {n_used} rank(s) referenced by util::Mutex "
          "declarations, no cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
