// Lock-rank registry: the single source of truth for the process-wide
// lock acquisition order.
//
// Every util::Mutex in src/ must be constructed with one rank from
// this header. The runtime checker (util/mutex.h) enforces that a
// thread only ever acquires a mutex whose rank is STRICTLY GREATER
// than every rank it already holds -- so any acquisition pattern the
// tests exercise is provably deadlock-free by construction: a cycle of
// waiting threads would need a rank to be both less than and greater
// than another. Equal ranks may never nest, which is exactly right for
// the per-instance mutexes below (one msg mailbox is never locked
// while another is held).
//
// tools/lock_rank_audit parses this file (the `inline constexpr int`
// rows and the LOCK_ORDER edge declarations), cross-checks every
// declared edge against the rank values, fails on cycles, and verifies
// that every util::Mutex declaration in src/ names a rank from here.
// Adding a mutex means adding a row here first -- the audit (CTest
// label `static`) fails otherwise.
//
// Declared nestings (outer -> inner; each edge must be rank-increasing):
// LOCK_ORDER: kThreadPoolFork -> kThreadPoolState
// LOCK_ORDER: kSolveServer -> kSolveServerCancel
#pragma once

namespace cellsweep::util::lockrank {

/// server::ArrivalDriver::mu_ -- replay progress of an open-system
/// arrival schedule (submitted ids, behind-schedule accounting). Ranked
/// before the server so the driver could submit while holding it; in
/// practice it never does (leaf usage on the driver thread).
inline constexpr int kArrivalDriver = 5;

/// SolveServer::mu_ -- job queue, result map, server stats. Held only
/// around queue/result bookkeeping; never while running a job.
inline constexpr int kSolveServer = 10;

/// SolveServer::cancel_mu_ -- the job-id -> cooperative-cancel-flag
/// registry. submit() registers a flag while holding kSolveServer
/// (the declared edge); all other paths take the two one at a time.
inline constexpr int kSolveServerCancel = 12;

/// ThreadPool::fork_mu_ -- serializes whole fork/join sections; held
/// across the join wait, and across kThreadPoolState acquisitions.
inline constexpr int kThreadPoolFork = 20;

/// ThreadPool::mu_ -- the generation/pending handshake state.
inline constexpr int kThreadPoolState = 21;

/// SpeAllocator::mu_ -- the free map, waiter/holder accounting and
/// fair-share state of the shared chip.
inline constexpr int kSpeAllocator = 30;

/// PlanCache::mu_ -- the fingerprint -> plan map and hit/miss stats.
inline constexpr int kPlanCache = 40;

/// msg::World mailbox mutexes (one per rank; never nested).
inline constexpr int kMsgMailbox = 50;

/// msg::World::barrier_mu_ -- central barrier generation state.
inline constexpr int kMsgBarrier = 51;

/// msg::World::reduce_mu_ -- reduction slots and generation.
inline constexpr int kMsgReduce = 52;

/// msg::World::degrade_mu_ -- per-rank degraded-send delays.
inline constexpr int kMsgDegrade = 53;

/// core::MetricsRegistry::mu_ -- the telemetry family map. Ranked
/// after every server/allocator lock so any component may record a
/// sample while holding its own state lock; in practice the server
/// records outside its locks (leaf usage).
inline constexpr int kMetricsRegistry = 60;

/// core::FlightRecorder::mu_ -- the bounded lifecycle-event ring.
/// Same placement rationale as kMetricsRegistry; never held while
/// acquiring anything else.
inline constexpr int kFlightRecorder = 61;

}  // namespace cellsweep::util::lockrank
