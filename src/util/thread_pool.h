// Static-partition fork/join executor for the functional sweep.
//
// The work it runs -- the chunks of one JK-diagonal -- is embarrassingly
// parallel with near-uniform cost (every chunk is at most kBundleLines
// I-lines of the same length), so a static contiguous partition of the
// index range is both optimal and, unlike work stealing, leaves the
// mapping of chunk to worker deterministic. Workers are spawned once
// and parked on a condition variable between fork points; the calling
// thread doubles as worker 0, so a pool of size N uses N-1 extra
// threads and size 1 degenerates to an inline loop with no threads and
// no locking at all.
//
// One pool may be shared by several client threads (the solve server
// hands every tenant the same host pool): concurrent parallel_for
// calls serialize on an internal fork mutex instead of corrupting the
// generation/pending handshake. Calls never nest -- a job must not
// call parallel_for on its own pool (it would deadlock on that mutex;
// before the mutex it silently corrupted the handshake; the lock-rank
// checker now reports the recursive claim deterministically).
//
// Concurrency contract (compile-checked under clang -Wthread-safety,
// rank-checked at runtime): every handshake field is GUARDED_BY(mu_);
// workers copy their task (n, fn) under mu_ when they observe a new
// generation, so no protocol field is ever read outside the lock.
// fork_mu_ ranks strictly before mu_ (see util/lock_ranks.h).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::util {

class ThreadPool {
 public:
  /// Spawns @p threads - 1 workers; @p threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers available, including the calling thread.
  int size() const noexcept { return size_; }

  /// Host-side usage counters (server telemetry; observation only --
  /// nothing in the pool reads them back).
  struct Telemetry {
    std::uint64_t forks = 0;         ///< parallel_for calls dispatched
    std::uint64_t items = 0;         ///< total indices across all forks
    std::uint64_t busy_ns = 0;       ///< host ns inside slices, all workers
    std::uint64_t fork_wall_ns = 0;  ///< host ns inside fork/join sections
    /// Most parallel_for callers simultaneously queued or running --
    /// the fork-queue depth high-water (tenants contending for the
    /// shared host pool).
    int peak_fork_queue = 0;
  };

  Telemetry telemetry() const EXCLUDES(mu_);

  /// busy_ns / (fork_wall_ns * size): the fraction of the pool's
  /// theoretical capacity spent in user slices while forks were live.
  /// 0 before the first fork.
  double utilization() const EXCLUDES(mu_);

  /// Invokes fn(index, worker) for every index in [0, n), blocking
  /// until all calls have returned. Worker w executes the contiguous
  /// slice [w*n/size, (w+1)*n/size); worker 0 is the calling thread.
  /// The first exception thrown by any invocation is rethrown here
  /// (remaining slices still run to completion), and the pool stays
  /// fully usable afterwards: the error slot and the fork handshake
  /// are reset, so the next call on the same pool runs clean. Safe to
  /// call from multiple threads (calls serialize); must not be called
  /// from inside a job running on the same pool.
  void parallel_for(int n, const std::function<void(int index, int worker)>& fn)
      EXCLUDES(fork_mu_, mu_);

 private:
  void worker_loop(int worker) EXCLUDES(mu_);
  /// Runs worker @p worker's slice of [0, n). Takes the task by value
  /// so nothing is read from the shared handshake state mid-slice.
  void run_slice(int worker, int n,
                 const std::function<void(int, int)>& fn) noexcept
      EXCLUDES(mu_);

  int size_ = 1;
  std::vector<std::thread> workers_;

  /// Serializes whole fork/join sections; mu_ alone only protects the
  /// shared fields *within* one section.
  Mutex fork_mu_{lockrank::kThreadPoolFork, "ThreadPool::fork_mu_"};
  mutable Mutex mu_{lockrank::kThreadPoolState, "ThreadPool::mu_"};
  CondVar start_cv_;  ///< workers wait on mu_ for a new generation
  CondVar done_cv_;   ///< the forking thread waits on mu_ for pending_==0
  /// Bumped per parallel_for; wakes workers.
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  /// Helper workers still running this generation.
  int pending_ GUARDED_BY(mu_) = 0;
  int n_ GUARDED_BY(mu_) = 0;
  const std::function<void(int, int)>* fn_ GUARDED_BY(mu_) = nullptr;
  std::exception_ptr error_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// parallel_for callers currently queued on fork_mu_ or forking.
  int fork_queue_ GUARDED_BY(mu_) = 0;
  Telemetry telemetry_ GUARDED_BY(mu_);
};

}  // namespace cellsweep::util
