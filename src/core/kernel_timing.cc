#include "core/kernel_timing.h"

#include <vector>

#include "sweep/kernel.h"
#include "sweep/kernel_simd.h"
#include "util/aligned.h"

namespace cellsweep::core {
namespace {

/// Synthetic line data for trace recording. With @p force_fixups the
/// cell is optically thick with strong inflows and no source, so every
/// outflow goes negative and the fixup path runs at full cost.
template <typename Real>
struct SyntheticLines {
  SyntheticLines(int nlines, int it, int nm, bool force_fixups) {
    const std::size_t pad = util::padded_extent<Real>(it);
    const Real sigt_v = force_fixups ? Real(50) : Real(1);
    const Real face_v = force_fixups ? Real(10) : Real(0.1);
    const Real src_v = force_fixups ? Real(0) : Real(1);

    src.assign(static_cast<std::size_t>(nm) * pad, src_v);
    flux.assign(static_cast<std::size_t>(nm) * pad * nlines, Real(0));
    sigt.assign(pad, sigt_v);
    pn_src.assign(nm, Real(0.5));
    pn_acc.assign(nm, Real(0.05));
    for (int l = 0; l < nlines; ++l) {
      phi_j[l].assign(pad, face_v);
      phi_k[l].assign(pad, face_v);
      phi_i[l] = face_v;
    }

    args.resize(nlines);
    for (int l = 0; l < nlines; ++l) {
      sweep::LineArgs<Real>& a = args[l];
      a.it = it;
      a.dir = +1;
      a.sigt = sigt.data();
      a.src = src.data();
      a.flux = flux.data() + static_cast<std::size_t>(l) * nm * pad;
      a.mstride = static_cast<std::int64_t>(pad);
      a.pn_src = pn_src.data();
      a.pn_acc = pn_acc.data();
      a.nm = nm;
      a.ci = Real(10);
      a.cj = Real(10);
      a.ck = Real(10);
      a.phi_j = phi_j[l].data();
      a.phi_k = phi_k[l].data();
      a.phi_i = &phi_i[l];
    }
  }

  util::AlignedVector<Real> src, flux, sigt;
  std::vector<Real> pn_src, pn_acc;
  util::AlignedVector<Real> phi_j[sweep::kBundleLines],
      phi_k[sweep::kBundleLines];
  Real phi_i[sweep::kBundleLines] = {};
  std::vector<sweep::LineArgs<Real>> args;
};

template <typename Real>
spu::Trace record_simd_impl(int nlines, int it, int nm, bool fixup) {
  SyntheticLines<Real> data(nlines, it, nm, /*force_fixups=*/fixup);
  sweep::BundleScratch<Real> scratch(it);
  spu::TraceRecorder rec;
  sweep::sweep_bundle_simd(data.args.data(), nlines, fixup, scratch, nullptr);
  return rec.take_trace();
}

/// Synthesizes the scalar SPE code's instruction stream for one cell.
///
/// Two architecture facts dominate scalar-on-SPU cost and are modeled
/// faithfully here:
///  * The SPU has no scalar memory access. Every scalar load is
///    lqd + rotqby (load + shuffle, dependent); every scalar store is a
///    quadword read-modify-write: lqd + shufb(insert) + stqd.
///  * Unscheduled scalar code keeps its true dependency chains: each
///    DP op waits ~13 cycles for its predecessor, and issuing any DP op
///    stalls both pipes for 7 (the partial-pipelining rule).
/// Together these explain why the initial scalar SPE port is barely
/// faster per core than the PPE (Fig. 5's 3.55 s stage).
template <typename Real>
void record_scalar_cell(spu::TraceRecorder& rec, int nm, bool fixup,
                        bool gotos_eliminated, spu::ValueId& carry_i) {
  constexpr bool kDp = sizeof(Real) == 8;
  const spu::Op fma = kDp ? spu::Op::kFmaDouble : spu::Op::kFmaSingle;
  const spu::Op add = kDp ? spu::Op::kAddDouble : spu::Op::kAddSingle;
  const spu::Op mul = kDp ? spu::Op::kMulDouble : spu::Op::kMulSingle;
  const spu::Op cmp = kDp ? spu::Op::kCmpDouble : spu::Op::kCmpSingle;

  // Scalar access helpers (see file comment).
  auto scalar_load = [&]() {
    const spu::ValueId lq = rec.record(spu::Op::kLoad);
    return rec.record(spu::Op::kShuffle, lq);  // rotqby to the slot
  };
  auto scalar_store = [&](spu::ValueId v) {
    const spu::ValueId lq = rec.record(spu::Op::kLoad);  // RMW read
    const spu::ValueId merged = rec.record(spu::Op::kShuffle, v, lq);
    rec.record(spu::Op::kStore, merged);
  };

  // Address arithmetic for the strided moment accesses.
  rec.record(spu::Op::kFixed);
  rec.record(spu::Op::kFixed);

  // q = sum_n pn[n] * src[n][i]: serial accumulate; naive code reloads
  // the pn coefficient each round.
  spu::ValueId q = spu::kNoValue;
  for (int n = 0; n < nm; ++n) {
    rec.record(spu::Op::kFixed);  // index computation n*mstride + i
    const spu::ValueId pn = scalar_load();
    const spu::ValueId sv = scalar_load();
    const spu::ValueId prod =
        rec.record(mul, pn, sv, spu::kNoValue, 1);
    q = rec.record(add, prod, q, spu::kNoValue, 1);
  }

  // Face loads and the numerator chain.
  const spu::ValueId lj = scalar_load();
  const spu::ValueId lk = scalar_load();
  const spu::ValueId lt = scalar_load();  // sigma_t
  spu::ValueId num = rec.record(fma, carry_i, q, spu::kNoValue, 2);
  num = rec.record(fma, lj, num, spu::kNoValue, 2);
  num = rec.record(fma, lk, num, spu::kNoValue, 2);
  // Denominator chain.
  spu::ValueId den = rec.record(add, lt, spu::kNoValue, spu::kNoValue, 1);
  den = rec.record(add, den, spu::kNoValue, spu::kNoValue, 1);
  den = rec.record(add, den, spu::kNoValue, spu::kNoValue, 1);

  // Divide: reciprocal estimate + Newton refinement, fully serial.
  spu::ValueId est = rec.record(spu::Op::kShuffle, den);
  const int newton = kDp ? 2 : 1;
  for (int s = 0; s < newton; ++s) {
    est = rec.record(mul, den, est, spu::kNoValue, 1);
    est = rec.record(fma, est, est, est, 2);
  }
  const spu::ValueId phi = rec.record(mul, num, est, spu::kNoValue, 1);

  // Outflows (serial on phi), then quadword-RMW face stores.
  carry_i = rec.record(fma, phi, phi, spu::kNoValue, 2);
  const spu::ValueId oj = rec.record(fma, phi, lj, spu::kNoValue, 2);
  const spu::ValueId ok = rec.record(fma, phi, lk, spu::kNoValue, 2);
  scalar_store(oj);
  scalar_store(ok);
  // Register pressure in the unscheduled code spills the I-recurrence
  // carry and the source sum around the accumulation loop.
  scalar_store(carry_i);
  scalar_store(q);
  scalar_store(phi);
  rec.record(spu::Op::kFixed);
  (void)scalar_load();
  (void)scalar_load();
  carry_i = scalar_load();

  if (fixup) {
    // Sign tests on all three outflows plus the (rarely taken) branch.
    rec.record(cmp, carry_i);
    rec.record(cmp, oj);
    rec.record(cmp, ok);
    rec.record(spu::Op::kFixed);
    rec.record(gotos_eliminated ? spu::Op::kBranch : spu::Op::kBranchMiss);
  }

  // Flux accumulation: per moment scalar load -> fma -> RMW store.
  for (int n = 0; n < nm; ++n) {
    rec.record(spu::Op::kFixed);
    const spu::ValueId pa = scalar_load();
    const spu::ValueId lf = scalar_load();
    const spu::ValueId f = rec.record(fma, pa, phi, lf, 2);
    scalar_store(f);
  }

  // Loop bookkeeping: induction update, compare and the loop branch.
  // The unoptimized port's control flow (Fortran-derived gotos) defeats
  // the branch hinter; the optimized one is a single hinted branch.
  rec.record(spu::Op::kFixed);
  rec.record(spu::Op::kFixed);
  if (gotos_eliminated) {
    rec.record(spu::Op::kBranch);
  } else {
    // Fortran-derived control flow: computed-goto ladders at the loop
    // tail and inside the flow tests -- seven unhintable branches per
    // cell, each flushing the fetch pipeline.
    for (int b = 0; b < 7; ++b) rec.record(spu::Op::kBranchMiss);
    rec.record(spu::Op::kBranch);
  }
}

template <typename Real>
spu::Trace record_scalar_impl(int nlines, int it, int nm, bool fixup,
                              bool gotos_eliminated) {
  spu::TraceRecorder rec;
  for (int l = 0; l < nlines; ++l) {
    spu::ValueId carry_i = spu::kNoValue;
    for (int i = 0; i < it; ++i)
      record_scalar_cell<Real>(rec, nm, fixup, gotos_eliminated, carry_i);
    // Per-line epilogue.
    rec.record(spu::Op::kFixed);
    rec.record(spu::Op::kBranch);
  }
  return rec.take_trace();
}

}  // namespace

spu::Trace record_simd_chunk_trace(Precision precision, int nlines, int it,
                                   int nm, bool fixup) {
  return precision == Precision::kDouble
             ? record_simd_impl<double>(nlines, it, nm, fixup)
             : record_simd_impl<float>(nlines, it, nm, fixup);
}

spu::Trace record_scalar_chunk_trace(Precision precision, int nlines, int it,
                                     int nm, bool fixup,
                                     bool gotos_eliminated) {
  return precision == Precision::kDouble
             ? record_scalar_impl<double>(nlines, it, nm, fixup,
                                          gotos_eliminated)
             : record_scalar_impl<float>(nlines, it, nm, fixup,
                                         gotos_eliminated);
}

cell::ScheduleResult KernelCostModel::schedule_simd_chunk(
    Precision precision, int nlines, int it, int nm, bool fixup,
    spu::Trace* out_trace) {
  spu::Trace trace = record_simd_chunk_trace(precision, nlines, it, nm, fixup);
  const cell::ScheduleResult r = pipeline_.schedule(trace);
  if (out_trace) *out_trace = std::move(trace);
  return r;
}

cell::ScheduleResult KernelCostModel::schedule_scalar_chunk(
    Precision precision, int nlines, int it, int nm, bool fixup,
    bool gotos_eliminated, spu::Trace* out_trace) {
  spu::Trace trace =
      record_scalar_chunk_trace(precision, nlines, it, nm, fixup,
                                gotos_eliminated);
  const cell::ScheduleResult r = pipeline_.schedule(trace);
  if (out_trace) *out_trace = std::move(trace);
  return r;
}

const ChunkCost& KernelCostModel::chunk_cost(sweep::KernelKind kind,
                                             Precision precision, int nlines,
                                             int it, int nm, bool fixup,
                                             bool gotos_eliminated) {
  const Key key{static_cast<int>(kind), static_cast<int>(precision), nlines,
                it, nm, fixup, gotos_eliminated};
  auto it_cache = cache_.find(key);
  if (it_cache != cache_.end()) return it_cache->second;

  const cell::ScheduleResult sched =
      kind == sweep::KernelKind::kSimd
          ? schedule_simd_chunk(precision, nlines, it, nm, fixup)
          : schedule_scalar_chunk(precision, nlines, it, nm, fixup,
                                  gotos_eliminated);
  ChunkCost cost;
  cost.cycles = static_cast<double>(sched.cycles);
  cost.flops = sched.flops;
  cost.instructions = sched.instructions;
  cost.dual_issues = sched.dual_issues;
  cost.stats += sched;
  return cache_.emplace(key, cost).first->second;
}

}  // namespace cellsweep::core
