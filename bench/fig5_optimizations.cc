// Figure 5: "Performance impact of various optimizations."
//
// Regenerates the paper's optimization ladder on the 50-cubed deck:
// each row is one cumulative optimization stage, paper-measured seconds
// next to our simulated seconds.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  using core::OptimizationStage;

  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;

  bench::print_header("Figure 5: performance impact of the optimization "
                      "ladder (" + std::to_string(opt.cube) + "^3)");

  const struct {
    OptimizationStage stage;
    double paper_s;
  } rows[] = {
      {OptimizationStage::kPpeGcc, 22.3},
      {OptimizationStage::kPpeXlc, 19.9},
      {OptimizationStage::kSpeInitial, 3.55},
      {OptimizationStage::kSpeAligned, 3.03},
      {OptimizationStage::kSpeBuffered, 2.88},
      {OptimizationStage::kSpeSimd, 1.68},
      {OptimizationStage::kSpeDmaLists, 1.48},
      {OptimizationStage::kSpeLsPoke, 1.33},
  };

  util::TextTable table({"stage", "paper [s]", "measured [s]", "ratio",
                         "compute busy [s]", "MIC busy [s]"});
  // Where each stage's simulated time goes (mean per SPE): which
  // component -- compute, DMA waits, sync waits or idle tail -- the
  // next optimization recovers its time from.
  util::TextTable breakdown({"stage", "compute [s]", "DMA wait [s]",
                             "sync wait [s]", "idle [s]", "MIC util",
                             "EIB util"});
  bench::BenchJson json("fig5", opt.cube);
  double final_measured = 0;
  for (const auto& row : rows) {
    const core::RunReport r = bench::run_stage(row.stage, opt.cube);
    json.add_run(core::stage_name(row.stage), r);
    final_measured = r.seconds;
    table.add_row({core::stage_name(row.stage),
                   bench::fmt("%.2f", row.paper_s),
                   bench::fmt("%.2f", r.seconds),
                   bench::fmt("%.2f", r.seconds / row.paper_s),
                   bench::fmt("%.2f", r.compute_busy_s),
                   bench::fmt("%.2f", r.mic_busy_s)});
    if (r.spe_stalls.empty()) {
      // PPE-only stages have no SPEs to break down.
      breakdown.add_row({core::stage_name(row.stage), "-", "-", "-", "-",
                         "-", "-"});
    } else {
      double busy = 0, dma = 0, sync = 0, idle = 0;
      for (const core::SpeStallSummary& st : r.spe_stalls) {
        busy += st.busy_s;
        dma += st.dma_wait_s;
        sync += st.sync_wait_s;
        idle += st.idle_s;
      }
      const double n = static_cast<double>(r.spe_stalls.size());
      breakdown.add_row(
          {core::stage_name(row.stage), bench::fmt("%.2f", busy / n),
           bench::fmt("%.2f", dma / n), bench::fmt("%.2f", sync / n),
           bench::fmt("%.2f", idle / n),
           util::format_percent(r.mic_utilization),
           util::format_percent(r.eib_utilization)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPer-SPE time breakdown (mean across the 8 SPEs; busy + "
               "DMA wait + sync wait + idle = run time):\n\n";
  breakdown.print(std::cout);

  std::cout << "\nPPE(GCC) -> final speedup: paper "
            << util::format_speedup(22.3 / 1.33) << ", measured "
            << util::format_speedup(
                   bench::run_stage(OptimizationStage::kPpeGcc, opt.cube)
                       .seconds /
                   final_measured)
            << "\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
