#include "server/arrival_driver.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace cellsweep::core {

using util::MutexLock;

ArrivalDriver::ArrivalDriver(SolveServer& server, ArrivalPlan plan,
                             MakeRequest make, double time_scale)
    : server_(server),
      plan_(std::move(plan)),
      make_(std::move(make)),
      time_scale_(std::max(0.0, time_scale)) {}

ArrivalDriver::~ArrivalDriver() {
  stop();
  join();
}

void ArrivalDriver::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void ArrivalDriver::join() {
  if (thread_.joinable()) thread_.join();
}

void ArrivalDriver::run() {
  const std::vector<Arrival> schedule = plan_.schedule();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t k = 0;
  for (const Arrival& a : schedule) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (time_scale_ > 0.0) {
      const auto due =
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(a.at_s * time_scale_));
      std::this_thread::sleep_until(due);
    }
    const double behind_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() -
        a.at_s * time_scale_;
    const JobRequest req = make_(a, k);
    ++k;
    int id = 0;
    bool accepted = false;
    try {
      id = server_.submit(req);
      accepted = true;
    } catch (const AdmissionError&) {
      // Open-system semantics: rejected arrivals (queue full, server
      // stopping) are dropped, never retried -- the loss shows up in
      // stats and in the server's rejected counters.
    }
    MutexLock lock(mu_);
    if (accepted) {
      ++stats_.submitted;
      ids_.push_back(id);
    } else {
      ++stats_.rejected;
    }
    stats_.max_behind_s = std::max(stats_.max_behind_s, behind_s);
  }
}

ArrivalDriver::Stats ArrivalDriver::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<int> ArrivalDriver::ids() const {
  MutexLock lock(mu_);
  return ids_;
}

}  // namespace cellsweep::core
