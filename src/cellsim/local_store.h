// SPE local-store model.
//
// Each SPE owns 256 KB of software-managed scratchpad holding both code
// and data (paper, Section 2). There is no hardware caching: the
// Sweep3D port must budget every byte of the per-chunk working set --
// and twice that with double buffering. This allocator enforces the
// budget: allocations are 128-byte aligned, named (for diagnostics),
// and an overflow throws, which is how the tests pin down the largest
// MK x MMI chunk shape that still fits.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/aligned.h"

namespace cellsweep::cell {

/// Thrown when a working set exceeds the 256 KB local store.
class LocalStoreOverflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bump allocator over one SPE's local store address space. Models
/// occupancy only; actual data lives in host memory.
class LocalStore {
 public:
  struct Region {
    std::string name;
    std::size_t offset;
    std::size_t bytes;
  };

  explicit LocalStore(std::size_t capacity_bytes,
                      std::size_t code_reserve_bytes = 48 * 1024);

  /// Reserves @p bytes (rounded up to 128 B) under @p name. Returns the
  /// LS offset. Throws LocalStoreOverflow if it does not fit.
  std::size_t allocate(const std::string& name, std::size_t bytes);

  /// Releases everything allocated after construction (the code
  /// reservation stays). Used between sweep configurations.
  void reset() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return top_; }
  std::size_t available() const noexcept { return capacity_ - top_; }
  std::size_t high_water() const noexcept { return high_water_; }
  const std::vector<Region>& regions() const noexcept { return regions_; }

  /// Human-readable occupancy map for diagnostics.
  std::string describe() const;

 private:
  std::size_t capacity_;
  std::size_t code_reserve_;
  std::size_t top_;
  std::size_t high_water_;
  std::vector<Region> regions_;
};

}  // namespace cellsweep::cell
