// Figure 9: "Grind time as a function of the cube size."
//
// Paper: "For a cube size larger than 25 cells, the grind time is
// almost constant ... optimal load balancing can be achieved when the
// total number of iterations is an integer multiple of 4 x 8, as
// witnessed by the minor dents."
//
// Regenerates the series on the fully optimized configuration.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Figure 9: grind time vs cube size (final config)");

  util::TextTable table({"cube", "run time [s]", "grind [ns/cell-solve]",
                         "lines/diag mult of 32", "traffic [GB]"});

  // --cube caps the series (the CI perf job stops at small cubes).
  const int cap = opt.cube_or(100);
  bench::BenchJson json("fig9", cap);
  for (int n : {8, 10, 12, 16, 20, 24, 25, 28, 32, 36, 40, 44, 48, 50, 56,
                60, 64, 70, 80, 90, 96, 100}) {
    if (n > cap) break;
    const core::RunReport r =
        bench::run_stage(core::OptimizationStage::kSpeLsPoke, n);
    json.add_run("cube" + std::to_string(n), r);
    // The widest diagonal holds mk*mmi lines; perfect balance when that
    // is a multiple of 4 lines x 8 SPEs (the "dents").
    int mk = 1;
    for (int d = 1; d <= 10; ++d)
      if (n % d == 0) mk = d;
    const int width = mk * 3;  // mmi = 3 in the shipped deck
    table.add_row({bench::fmt("%.0f", n),
                   bench::fmt("%.3f", r.seconds),
                   bench::fmt("%.1f", r.grind_seconds * 1e9),
                   width % 32 == 0 ? "yes" : "no",
                   bench::fmt("%.2f", r.traffic_bytes / 1e9)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: grind flattens above ~25-40 cells; small\n"
               "cubes pay wavefront fill and dispatch overheads.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
