// End-to-end reproduction checks at the paper's actual scale: the
// Figure 5 ladder, the Section 6 audit, Figure 10 projections and
// Figure 11 ratios, all on the 50-cubed / 12-iteration deck.
// Trace-driven timing keeps these fast enough for the unit-test suite.
#include <gtest/gtest.h>

#include <map>

#include "core/orchestrator.h"
#include "perfmodel/processors.h"

namespace cellsweep::core {
namespace {

class PaperScale : public ::testing::Test {
 protected:
  static const std::map<OptimizationStage, RunReport>& reports() {
    static const auto* cached = [] {
      auto* m = new std::map<OptimizationStage, RunReport>;
      const sweep::Problem p = sweep::Problem::benchmark_cube(50);
      using OS = OptimizationStage;
      for (OS s : {OS::kPpeGcc, OS::kPpeXlc, OS::kSpeInitial, OS::kSpeAligned,
                   OS::kSpeBuffered, OS::kSpeSimd, OS::kSpeDmaLists,
                   OS::kSpeLsPoke, OS::kFutureBigDma, OS::kFutureDistributed,
                   OS::kFuturePipelinedDp, OS::kFutureSingle}) {
        CellSweep3D runner(p, CellSweepConfig::from_stage(s));
        (*m)[s] = runner.run(RunMode::kTraceDriven);
      }
      return m;
    }();
    return *cached;
  }

  static double seconds(OptimizationStage s) { return reports().at(s).seconds; }
};

// Each Figure 5 stage within a modest tolerance of the paper's
// measurement (these are the calibrated reproduction targets; see
// EXPERIMENTS.md for the exact side-by-side).
TEST_F(PaperScale, Figure5Ladder) {
  using OS = OptimizationStage;
  const struct {
    OS stage;
    double paper;
    double tol;  // relative
  } rows[] = {
      {OS::kPpeGcc, 22.3, 0.05},   {OS::kPpeXlc, 19.9, 0.05},
      {OS::kSpeInitial, 3.55, 0.20}, {OS::kSpeAligned, 3.03, 0.20},
      {OS::kSpeBuffered, 2.88, 0.20}, {OS::kSpeSimd, 1.68, 0.20},
      {OS::kSpeDmaLists, 1.48, 0.15}, {OS::kSpeLsPoke, 1.33, 0.10},
  };
  for (const auto& row : rows)
    EXPECT_NEAR(seconds(row.stage) / row.paper, 1.0, row.tol)
        << stage_name(row.stage) << " got " << seconds(row.stage);
}

TEST_F(PaperScale, Figure5OrderingStrict) {
  using OS = OptimizationStage;
  EXPECT_LT(seconds(OS::kPpeXlc), seconds(OS::kPpeGcc));
  EXPECT_LT(seconds(OS::kSpeInitial), seconds(OS::kPpeXlc));
  EXPECT_LT(seconds(OS::kSpeAligned), seconds(OS::kSpeInitial));
  EXPECT_LT(seconds(OS::kSpeBuffered), seconds(OS::kSpeAligned));
  EXPECT_LT(seconds(OS::kSpeSimd), seconds(OS::kSpeBuffered));
  EXPECT_LT(seconds(OS::kSpeDmaLists), seconds(OS::kSpeSimd));
  EXPECT_LT(seconds(OS::kSpeLsPoke), seconds(OS::kSpeDmaLists));
}

TEST_F(PaperScale, Figure10Projections) {
  using OS = OptimizationStage;
  EXPECT_NEAR(seconds(OS::kFutureBigDma), 1.2, 0.15);
  EXPECT_NEAR(seconds(OS::kFutureDistributed), 0.9, 0.12);
  // The paper projects 0.85 for the pipelined-DP unit; our model shows
  // a somewhat larger gain (documented), but the ordering holds.
  EXPECT_LT(seconds(OS::kFuturePipelinedDp),
            seconds(OS::kFutureDistributed));
  EXPECT_NEAR(seconds(OS::kFutureSingle), 0.45, 0.10);
  // SP remains memory-bound: about a factor 2 from DP (paper).
  EXPECT_NEAR(seconds(OS::kFutureDistributed) /
                  seconds(OS::kFutureSingle),
              2.0, 0.5);
}

TEST_F(PaperScale, Section6TrafficAudit) {
  const RunReport& r = reports().at(OptimizationStage::kSpeLsPoke);
  // "the SPEs transfer 17.6 Gbytes of data"
  EXPECT_NEAR(r.traffic_bytes / 1e9, 17.6, 1.5);
  // "...sets a lower bound of 0.7 seconds"
  EXPECT_NEAR(r.memory_bound_s, 0.70, 0.08);
  // "By profiling the amount of computation ... 0.68 seconds"
  EXPECT_NEAR(r.compute_bound_s, 0.68, 0.20);
  // "The gap between this bound and the actual run-time ..."
  EXPECT_GT(r.seconds, r.memory_bound_s);
  EXPECT_LT(r.seconds, 2.5 * r.memory_bound_s);
}

TEST_F(PaperScale, Figure11Speedups) {
  const double cell = seconds(OptimizationStage::kSpeLsPoke);
  const std::uint64_t solves = reports()
                                   .at(OptimizationStage::kSpeLsPoke)
                                   .cell_solves;
  const std::uint64_t flops =
      reports().at(OptimizationStage::kSpeLsPoke).flops;
  EXPECT_NEAR(perf::power5().seconds(solves, flops) / cell, 4.5, 1.2);
  EXPECT_NEAR(perf::opteron().seconds(solves, flops) / cell, 5.5, 1.5);
  for (const auto& conv :
       {perf::itanium2(), perf::xeon(), perf::ppc970()}) {
    const double ratio = conv.seconds(solves, flops) / cell;
    EXPECT_GT(ratio, 13.0) << conv.name;
    EXPECT_LT(ratio, 30.0) << conv.name;
  }
}

TEST_F(PaperScale, DpEfficiencyHeadline) {
  // "we were able to reach an impressive 64% of peak performance in
  // double precision (9.3 Gflops/second)". Measured during pure
  // compute: flops / compute-busy time vs the 14.63 Gflops/s peak.
  const RunReport& r = reports().at(OptimizationStage::kSpeLsPoke);
  const cell::CellSpec spec;
  const double kernel_rate =
      static_cast<double>(r.flops) / (r.compute_busy_s * spec.num_spes) *
      1.0;  // per-chip rate while all SPEs compute
  const double fraction = kernel_rate * spec.num_spes /
                          (spec.dp_peak_flops() * spec.num_spes);
  // Equivalent simplification: flops / (busy * 8) / per-SPE peak.
  const double per_spe_peak = spec.dp_peak_flops() / spec.num_spes;
  const double eff =
      static_cast<double>(r.flops) / (r.compute_busy_s * spec.num_spes) /
      per_spe_peak;
  (void)kernel_rate;
  (void)fraction;
  EXPECT_GT(eff, 0.35);
  EXPECT_LT(eff, 0.85);
}

TEST_F(PaperScale, OverallSpeedupRange) {
  // "an overall performance speedup ranging from 4.5 times ... up to
  // over 20 times with conventional processors" -- and ~17x versus the
  // PPE-only baseline.
  const double cell = seconds(OptimizationStage::kSpeLsPoke);
  const double ppe = seconds(OptimizationStage::kPpeGcc);
  EXPECT_GT(ppe / cell, 12.0);
  EXPECT_LT(ppe / cell, 22.0);
}

TEST(GrindTime, FlatAboveTwentyFiveCells) {
  // Figure 9: grind time roughly constant for cube sizes >= 25-40.
  auto grind = [](int n) {
    const sweep::Problem p = sweep::Problem::benchmark_cube(n);
    CellSweepConfig cfg =
        CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
    int mk = 1;
    for (int d = 1; d <= 10; ++d)
      if (n % d == 0) mk = d;
    cfg.sweep.mk = mk;
    CellSweep3D runner(p, cfg);
    return runner.run(RunMode::kTraceDriven).grind_seconds;
  };
  const double g40 = grind(40);
  const double g60 = grind(60);
  const double g80 = grind(80);
  EXPECT_NEAR(g60 / g40, 1.0, 0.2);
  EXPECT_NEAR(g80 / g60, 1.0, 0.15);
  // Small cubes pay visible overhead.
  EXPECT_GT(grind(10), 2.0 * g60);
}

}  // namespace
}  // namespace cellsweep::core
