// Unit tests for the MFC DMA engine: CBEA command rules, queue
// back-pressure, list vs individual commands, transfer efficiency.
#include <gtest/gtest.h>

#include <climits>

#include "cellsim/mfc.h"
#include "cellsim/memory.h"
#include "cellsim/spec.h"

namespace cellsweep::cell {
namespace {

class MfcTest : public ::testing::Test {
 protected:
  MfcTest() : eib_(spec_), mic_(spec_), mfc_(spec_, &eib_, &mic_, "mfc0") {}

  DmaRequest legal(std::size_t total = 512, std::size_t elem = 512) {
    DmaRequest r;
    r.total_bytes = total;
    r.element_bytes = elem;
    return r;
  }

  CellSpec spec_;
  Eib eib_;
  Mic mic_;
  Mfc mfc_;
};

TEST_F(MfcTest, AcceptsLegalCommands) {
  EXPECT_NO_THROW(mfc_.validate(legal()));
  EXPECT_NO_THROW(mfc_.validate(legal(16 * 1024, 16 * 1024)));
  EXPECT_NO_THROW(mfc_.validate(legal(8, 8)));  // naturally aligned scalar
}

TEST_F(MfcTest, RejectsZeroLength) {
  EXPECT_THROW(mfc_.validate(legal(0, 0)), DmaError);
}

TEST_F(MfcTest, RejectsBadSubQuadwordSizes) {
  // 3, 5, 12 bytes are not legal CBEA transfer sizes.
  for (std::size_t bad : {3u, 5u, 12u})
    EXPECT_THROW(mfc_.validate(legal(bad, bad)), DmaError) << bad;
}

TEST_F(MfcTest, RejectsNonMultipleOf16) {
  EXPECT_THROW(mfc_.validate(legal(400, 24)), DmaError);
  EXPECT_THROW(mfc_.validate(legal(400, 100)), DmaError);
}

TEST_F(MfcTest, RejectsOversizedElement) {
  EXPECT_THROW(mfc_.validate(legal(32 * 1024, 32 * 1024)), DmaError);
}

TEST_F(MfcTest, RejectsOversizedList) {
  // > 2048 elements in one list command.
  DmaRequest r = legal(2100 * 16, 16);
  r.as_list = true;
  EXPECT_THROW(mfc_.validate(r), DmaError);
  // The same shape as individual commands is fine (they are separate
  // commands, not one list).
  r.as_list = false;
  EXPECT_NO_THROW(mfc_.validate(r));
}

TEST_F(MfcTest, RejectsNonPowerOfTwoAlignment) {
  DmaRequest r = legal();
  r.alignment = 100;
  EXPECT_THROW(mfc_.validate(r), DmaError);
}

TEST_F(MfcTest, ElementsComputed) {
  DmaRequest r = legal(1024, 512);
  EXPECT_EQ(r.elements(), 2u);
  r = legal(1025, 512);  // partial trailing element
  EXPECT_EQ(r.elements(), 3u);
}

TEST_F(MfcTest, ElementsDoNotTruncateHugeRequests) {
  // 40 GB in quadword elements is ~2.7e9 elements -- more than INT_MAX.
  // The old int-returning elements() truncated this; pin the exact
  // std::size_t count.
  const std::size_t total = 40ull * 1024 * 1024 * 1024;
  DmaRequest r = legal(total, 16);
  EXPECT_EQ(r.elements(), total / 16);
  EXPECT_GT(r.elements(), static_cast<std::size_t>(INT_MAX));
}

TEST_F(MfcTest, RejectsBankCountOutOfRange) {
  // banks_touched feeds Mic::bank_efficiency; 0, negative or more banks
  // than the chip has must be rejected, not priced.
  for (int bad : {0, -1, 17}) {
    DmaRequest r = legal();
    r.banks_touched = bad;
    EXPECT_THROW(mfc_.validate(r), DmaError) << bad;
  }
  DmaRequest r = legal();
  r.banks_touched = 16;
  EXPECT_NO_THROW(mfc_.validate(r));
  r.banks_touched = 1;
  EXPECT_NO_THROW(mfc_.validate(r));
}

TEST_F(MfcTest, RejectsTagOutOfRange) {
  DmaRequest r = legal();
  r.tag = kMfcTagGroups;  // 5-bit tag: 0..31
  EXPECT_THROW(mfc_.validate(r), DmaError);
  r.tag = kMfcTagGroups - 1;
  EXPECT_NO_THROW(mfc_.validate(r));
}

TEST_F(MfcTest, WaitTagCoversOnlyItsGroup) {
  DmaRequest slow = legal(16 * 1024, 16 * 1024);
  slow.tag = 3;
  DmaRequest fast = legal(16, 16);
  fast.tag = 4;
  const DmaCompletion a = mfc_.submit(0, slow);
  const DmaCompletion b = mfc_.submit(0, fast);
  // Each group waits for its own members only (the shared MIC port
  // serializes the transfers, so the groups drain at different times).
  EXPECT_EQ(mfc_.wait_tag(0, 3), a.done);
  EXPECT_EQ(mfc_.wait_tag(0, 4), b.done);
  EXPECT_NE(a.done, b.done);
  // A drained (or never used) group returns the caller's clock.
  EXPECT_EQ(mfc_.wait_tag(a.done + 7, 3), a.done + 7);
  EXPECT_EQ(mfc_.wait_tag(123, 9), 123u);
  // Groups are monotone: reset clears them.
  mfc_.reset();
  EXPECT_EQ(mfc_.wait_tag(0, 3), 0u);
}

TEST_F(MfcTest, PeakEfficiencyNeeds128ByteMultiples) {
  // 128-byte aligned, multiple-of-128 transfers run at 1.0 (the CBEA
  // "peak performance" rule the paper quotes).
  EXPECT_DOUBLE_EQ(mfc_.transfer_efficiency(512, 128), 1.0);
  EXPECT_DOUBLE_EQ(mfc_.transfer_efficiency(128, 128), 1.0);
  // 400 B aligned: 4 bursts for 400 bytes.
  EXPECT_NEAR(mfc_.transfer_efficiency(400, 128), 400.0 / 512.0, 1e-12);
  // Misaligned 512 B: one extra burst.
  EXPECT_NEAR(mfc_.transfer_efficiency(512, 16), 512.0 / 640.0, 1e-12);
  // Tiny transfers hit the floor.
  EXPECT_GE(mfc_.transfer_efficiency(16, 16), spec_.dma_min_efficiency);
}

TEST_F(MfcTest, ValidatesTrailingPartialElement) {
  // The trailing element is total % element bytes and must itself be a
  // legal CBEA transfer size: 1/2/4/8 or a multiple of 16. A 515-byte
  // transfer in 512-byte elements ends in an illegal 3-byte DMA that the
  // old validator let through silently.
  EXPECT_THROW(mfc_.validate(legal(512 + 3, 512)), DmaError);
  EXPECT_THROW(mfc_.validate(legal(512 + 12, 512)), DmaError);
  // Legal remainders: naturally-aligned scalars and quadword multiples.
  EXPECT_NO_THROW(mfc_.validate(legal(512 + 8, 512)));
  EXPECT_NO_THROW(mfc_.validate(legal(512 + 16, 512)));
  EXPECT_NO_THROW(mfc_.validate(legal(512 + 240, 512)));
}

TEST_F(MfcTest, TrailingPartialElementLowersEfficiency) {
  // Full 512-byte elements at 128-byte alignment run at peak; a 240-byte
  // trailing element occupies two 128-byte bursts for 240 bytes, so the
  // blended request efficiency must drop below 1 but stay above the
  // trailing element's own efficiency.
  DmaRequest exact = legal(2 * 512, 512);
  exact.alignment = 128;
  EXPECT_DOUBLE_EQ(mfc_.request_efficiency(exact), 1.0);

  DmaRequest ragged = legal(2 * 512 + 240, 512);
  ragged.alignment = 128;
  const double eff = mfc_.request_efficiency(ragged);
  EXPECT_LT(eff, 1.0);
  EXPECT_GT(eff, mfc_.transfer_efficiency(240, 128));
  // Exact blend: 1024 B at cost 1024 + 240 B at cost 256.
  EXPECT_NEAR(eff, 1264.0 / (1024.0 + 256.0), 1e-12);
}

TEST_F(MfcTest, RaggedTailCostsFullBursts) {
  // The real-time consequence of the efficiency fix: a 240-byte tail
  // occupies two full 128-byte bursts, so a 4336-byte ragged request
  // costs exactly as much bus time as a 4352-byte one with the same
  // element count.
  DmaRequest ragged = legal(8 * 512 + 240, 512);
  ragged.alignment = 128;
  DmaRequest padded = legal(8 * 512 + 256, 512);
  padded.alignment = 128;
  ASSERT_EQ(ragged.elements(), padded.elements());
  Eib eib2(spec_);
  Mic mic2(spec_);
  Mfc other(spec_, &eib2, &mic2, "mfc1");
  const sim::Tick t_ragged = mfc_.submit(0, ragged).done;
  const sim::Tick t_padded = other.submit(0, padded).done;
  EXPECT_EQ(t_ragged, t_padded);
}

TEST_F(MfcTest, QueueOccupancyHistogram) {
  EXPECT_EQ(mfc_.queue_depth(), spec_.mfc_queue_depth);
  for (int i = 0; i < 4; ++i) mfc_.submit(0, legal(16 * 1024, 16 * 1024));
  const auto& hist = mfc_.occupancy_histogram();
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) total += hist[d];
  EXPECT_EQ(total, mfc_.commands());
  // Back-to-back submissions at t=0 see 0,1,2,3 prior commands in flight.
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
  mfc_.reset();
  std::uint64_t after = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) after += hist[d];
  EXPECT_EQ(after, 0u);
}

TEST_F(MfcTest, CompletionReportsQueueExit) {
  // `start` is when the command left the queue and began moving data:
  // never before issue and never after completion.
  const DmaCompletion c = mfc_.submit(0, legal(16 * 1024, 16 * 1024));
  EXPECT_GE(c.start, c.issue_done);
  EXPECT_LT(c.start, c.done);
}

TEST_F(MfcTest, ListIssueCheaperThanIndividual) {
  DmaRequest list = legal(64 * 512, 512);
  list.as_list = true;
  DmaRequest indiv = list;
  indiv.as_list = false;
  const DmaCompletion a = mfc_.submit(0, list);
  Mfc other(spec_, &eib_, &mic_, "mfc1");
  const DmaCompletion b = other.submit(0, indiv);
  // SPU-side issue: 64 channel commands vs one list command.
  EXPECT_LT(a.issue_done, b.issue_done);
}

TEST_F(MfcTest, CompletionAfterIssue) {
  const DmaCompletion c = mfc_.submit(1000, legal());
  EXPECT_GT(c.issue_done, 1000u);
  EXPECT_GT(c.done, c.issue_done);
}

TEST_F(MfcTest, QueueBackPressure) {
  // Saturate the 16-deep queue with large transfers; the 17th must
  // wait for a slot.
  sim::Tick first_done = 0;
  for (int i = 0; i < 16; ++i) {
    const DmaCompletion c = mfc_.submit(0, legal(16 * 1024, 16 * 1024));
    if (i == 0) first_done = c.done;
  }
  const DmaCompletion overflow = mfc_.submit(0, legal(16, 16));
  EXPECT_GE(overflow.done, first_done);
  EXPECT_EQ(mfc_.commands(), 17u);
}

TEST_F(MfcTest, WaitAllCoversOutstanding) {
  const DmaCompletion c = mfc_.submit(0, legal(16 * 1024, 16 * 1024));
  EXPECT_EQ(mfc_.wait_all(0), c.done);
  EXPECT_EQ(mfc_.wait_all(c.done + 5), c.done + 5);
}

TEST_F(MfcTest, TracksBytesAndTransfers) {
  mfc_.submit(0, legal(1024, 512));
  EXPECT_DOUBLE_EQ(mfc_.bytes_requested(), 1024.0);
  EXPECT_EQ(mfc_.transfers(), 2u);
  mfc_.reset();
  EXPECT_DOUBLE_EQ(mfc_.bytes_requested(), 0.0);
}

TEST_F(MfcTest, LsToLsSkipsMemoryController) {
  DmaRequest ls = legal(4096, 4096);
  ls.ls_to_ls = true;
  const double before = mic_.bytes_moved();
  mfc_.submit(0, ls);
  EXPECT_DOUBLE_EQ(mic_.bytes_moved(), before);  // MIC untouched
  EXPECT_GT(eib_.bytes_moved(), 0.0);
}

TEST_F(MfcTest, LsToLsFasterThanMemory) {
  DmaRequest mem = legal(16 * 1024, 16 * 1024);
  DmaRequest ls = mem;
  ls.ls_to_ls = true;
  Mfc a(spec_, &eib_, &mic_, "a");
  Eib eib2(spec_);
  Mic mic2(spec_);
  Mfc b(spec_, &eib2, &mic2, "b");
  const sim::Tick t_mem = a.submit(0, mem).done;
  const sim::Tick t_ls = b.submit(0, ls).done;
  EXPECT_LT(t_ls, t_mem);
}

TEST_F(MfcTest, SharedMicSerializesAcrossSpes) {
  Mfc other(spec_, &eib_, &mic_, "mfc1");
  const DmaCompletion a = mfc_.submit(0, legal(16 * 1024, 16 * 1024));
  const DmaCompletion b = other.submit(0, legal(16 * 1024, 16 * 1024));
  EXPECT_GT(b.done, a.done);  // FIFO on the shared port
}

TEST_F(MfcTest, RequiresResources) {
  EXPECT_THROW(Mfc(spec_, nullptr, &mic_, "x"), DmaError);
  EXPECT_THROW(Mfc(spec_, &eib_, nullptr, "x"), DmaError);
}

}  // namespace
}  // namespace cellsweep::cell
