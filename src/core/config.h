// Configuration of the Cell port: one switch per mechanism the paper's
// optimization ladder (Figure 5) flips, plus the prospective Figure 10
// variants. Each OptimizationStage maps to a concrete CellSweepConfig;
// the simulated execution times of the ladder *emerge* from these
// mechanism switches, they are never looked up.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "cellsim/spec.h"
#include "cellsim/sync.h"
#include "sim/fault.h"
#include "sweep/sweeper.h"

namespace cellsweep::sim {
class TimeSlicedProfiler;
class TraceSink;
}

namespace cellsweep::cell {
class MachineObserver;
}

namespace cellsweep::core {

class KernelCostModel;
class SpeAllocator;

/// Numeric precision of the kernels and DMA payloads.
enum class Precision : std::uint8_t { kDouble, kSingle };

/// The cumulative optimization stages of Figure 5 (paper Section 5),
/// plus the Figure 10 projections.
enum class OptimizationStage : std::uint8_t {
  kPpeGcc,        ///< unmodified port on the PPE, GCC (22.3 s)
  kPpeXlc,        ///< PPE only, IBM XLC (19.9 s)
  kSpeInitial,    ///< 8 SPE threads, scalar kernel (3.55 s)
  kSpeAligned,    ///< + goto elimination, 128-B row alignment (3.03 s)
  kSpeBuffered,   ///< + double buffering (2.88 s)
  kSpeSimd,       ///< + SIMD intrinsics (1.68 s)
  kSpeDmaLists,   ///< + DMA lists, memory-bank offsets (1.48 s)
  kSpeLsPoke,     ///< + direct-LS-poke sync protocol (1.33 s)
  // --- Figure 10 projections on top of kSpeLsPoke -----------------------
  kFutureBigDma,      ///< larger DMA granularity (1.2 s)
  kFutureDistributed, ///< distributed task dispatch across SPEs (0.9 s)
  kFuturePipelinedDp, ///< fully pipelined DP unit (0.85 s)
  kFutureSingle,      ///< single-precision arithmetic (0.45 s)
};

const char* stage_name(OptimizationStage s);

/// The workload-agnostic machine switches of one streaming run: the
/// subset of CellSweepConfig the core::StreamingPipeline reads. Every
/// workload client (Sweep3D, the even/odd stencil) maps its own
/// configuration surface onto this view; CellSweepConfig::stream() is
/// the sweep-side projection.
struct StreamConfig {
  /// 1 = synchronous staging, 2 = double buffering (clamped to >= 1).
  int buffers = 2;
  /// Batch each chunk's transfers into MFC DMA-list commands instead of
  /// individual per-row DMAs.
  bool dma_lists = true;
  /// Offset array allocations to spread rows over all 16 memory banks.
  bool bank_offsets = true;
  /// 128-byte alignment of every DMA'd row.
  bool aligned_rows = true;
  /// Bytes per DMA(-list element).
  std::size_t dma_granularity = 512;
  cell::SyncProtocol sync = cell::SyncProtocol::kLsPoke;
  cell::CellSpec chip{};
  /// Observability hooks (non-owning, may be null); identical contracts
  /// to the CellSweepConfig fields of the same names: pure observation,
  /// no simulated tick ever depends on them.
  sim::TraceSink* trace_sink = nullptr;
  sim::TimeSlicedProfiler* profiler = nullptr;
  cell::MachineObserver* hazard = nullptr;
  /// Fault injection (default: nothing can break).
  sim::FaultSpec faults;
  /// Multi-tenant SPE partitioning (non-owning, may be null). When set,
  /// the pipeline claims SPEs from this shared allocator instead of
  /// owning all chip.num_spes: it claims up to the chip width at
  /// construction, re-balances at batch boundaries (shrinking toward
  /// the fair share under pressure, regrowing when slack returns) and
  /// releases everything at finish(). Null keeps the single-tenant
  /// behavior byte-identical to the pre-allocator build (pinned by the
  /// perf baselines).
  SpeAllocator* spe_allocator = nullptr;
  /// Fewest SPEs this run may be squeezed to under pressure (>= 1).
  int min_spes = 1;
  /// QoS weight of this run's SPE claim (>= 1; see
  /// SpeAllocator::claim). Runs of equal weight split the chip evenly;
  /// a weight-w tenant's fair share scales with w. Affects nothing
  /// without spe_allocator.
  int claim_weight = 1;
  /// Hard cap on the SPEs this run may ever hold (0 = uncapped).
  int claim_quota = 0;
  /// Cooperative cancellation flag (non-owning, may be null). Polled
  /// between waves -- chunk granularity, never mid-wave -- and when it
  /// reads true run_batch throws core::RunCancelled. Observation only
  /// until it fires: a never-set flag changes no simulated tick.
  const std::atomic<bool>* cancel = nullptr;
};

/// Mechanism switches of one configuration.
struct CellSweepConfig {
  bool use_spes = true;  ///< false: the computation stays on the PPE
  bool xlc = true;       ///< PPE compiler quality (stage 0 vs 1)
  sweep::KernelKind kernel = sweep::KernelKind::kSimd;
  /// 128-byte alignment of every DMA'd row (Section 5 step 3 plus the
  /// "rows of the multi-dimensional arrays are 128-byte aligned" fix).
  bool aligned_rows = true;
  /// Inner-loop gotos eliminated (unhinted branches removed).
  bool gotos_eliminated = true;
  /// 1 = synchronous staging, 2 = double buffering.
  int buffers = 2;
  /// Batch each chunk's transfers into MFC DMA-list commands instead of
  /// individual per-row DMAs.
  bool dma_lists = true;
  /// Offset array allocations to spread rows over all 16 memory banks.
  bool bank_offsets = true;
  cell::SyncProtocol sync = cell::SyncProtocol::kLsPoke;
  Precision precision = Precision::kDouble;
  /// Bytes per DMA(-list element); the shipped implementation moved
  /// 512-byte rows, Figure 10's first projection raises this.
  std::size_t dma_granularity = 512;
  /// Cell revision (fully pipelined DP for kFuturePipelinedDp).
  cell::CellSpec chip{};
  /// Observability hook (non-owning, may be null): the timing engine
  /// emits simulated-time spans -- kernels, DMA phases, sync waits,
  /// dispatch -- into this sink. Pure observation: enabling it changes
  /// no simulated tick (pinned by a test).
  sim::TraceSink* trace_sink = nullptr;
  /// Time-sliced profiler hook (non-owning, may be null): when set, the
  /// engine routes its trace stream through this profiler (which
  /// forwards to trace_sink, so both may be attached) and copies the
  /// resulting utilization-over-time series into RunReport.timeseries.
  /// Same contract as trace_sink: pure observation, bit-identical
  /// timing with or without it (pinned by a test). One profiler serves
  /// one run.
  sim::TimeSlicedProfiler* profiler = nullptr;
  /// Protocol observability hook (non-owning, may be null): the timing
  /// engine narrates machine-model actions -- LS allocations, DMA
  /// submissions with region and tag group, tag waits, kernel buffer
  /// accesses, dispatch grants/reports -- into this observer. Same
  /// contract as trace_sink: pure observation, no simulated tick ever
  /// depends on it (pinned by a test). The hazard checker
  /// (src/analysis) attaches here; setting CELLSWEEP_HAZARD_CHECK in
  /// the environment attaches an engine-owned checker that turns
  /// violations into hard errors at finish().
  cell::MachineObserver* hazard = nullptr;

  /// Fault injection (default: nothing can break). When any mechanism
  /// is armed the timing engine builds a sim::FaultPlan from this spec,
  /// attaches it to the MFCs, MIC and dispatch fabric, and degrades
  /// gracefully around disabled or failing SPEs. With faults.any()
  /// false every fault path is skipped and runs stay bit-identical to
  /// the fault-free build (pinned by tests and the perf baselines).
  sim::FaultSpec faults;

  /// Blocking parameters forwarded to the sweep driver.
  sweep::SweepConfig sweep;

  /// Multi-tenant SPE partitioning (see StreamConfig::spe_allocator;
  /// null = single tenant owns the whole chip, byte-identical to the
  /// pre-allocator build).
  SpeAllocator* spe_allocator = nullptr;
  /// Fewest SPEs this run may be squeezed to under pressure (>= 1).
  int min_spes = 1;
  /// QoS weight / SPE quota / cooperative cancel flag of this run (see
  /// the StreamConfig fields of the same names).
  int claim_weight = 1;
  int claim_quota = 0;
  const std::atomic<bool>* cancel = nullptr;

  /// Plan-cache hints (non-owning, may be null): pure functions of the
  /// deck that the solve server memoizes across jobs. When set they
  /// must describe *this* deck and chip -- the cache key (workload
  /// kind, stage, deck bytes) guarantees it.
  ///   * quadrature: a prebuilt SnQuadrature of the deck's sn order;
  ///     CellSweep3D uses it instead of rebuilding the tables per run.
  ///   * warm_kernels: a KernelCostModel whose chunk-cost cache was
  ///     already calibrated (SPU trace recording is the expensive
  ///     part); the timing engine copies it instead of starting cold.
  /// Cold and warm runs produce byte-identical reports -- the cached
  /// values are deterministic functions of the deck (pinned by tests).
  const sweep::SnQuadrature* quadrature = nullptr;
  const KernelCostModel* warm_kernels = nullptr;

  /// The Figure 5 / Figure 10 ladder.
  static CellSweepConfig from_stage(OptimizationStage s);

  /// Projects the machine-level switches onto the workload-agnostic
  /// StreamingPipeline configuration.
  StreamConfig stream() const {
    StreamConfig s;
    s.buffers = buffers;
    s.dma_lists = dma_lists;
    s.bank_offsets = bank_offsets;
    s.aligned_rows = aligned_rows;
    s.dma_granularity = dma_granularity;
    s.sync = sync;
    s.chip = chip;
    s.trace_sink = trace_sink;
    s.profiler = profiler;
    s.hazard = hazard;
    s.faults = faults;
    s.spe_allocator = spe_allocator;
    s.min_spes = min_spes;
    s.claim_weight = claim_weight;
    s.claim_quota = claim_quota;
    s.cancel = cancel;
    return s;
  }
};

}  // namespace cellsweep::core
