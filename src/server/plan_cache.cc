#include "server/plan_cache.h"

namespace cellsweep::core {
namespace {

inline void fnv1a(std::uint64_t& h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t PlanCache::fingerprint(std::string_view workload_kind,
                                     OptimizationStage stage,
                                     std::string_view content) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  fnv1a(h, workload_kind);
  const char sep[2] = {'\0', static_cast<char>(stage)};
  fnv1a(h, std::string_view(sep, 2));
  fnv1a(h, std::string_view("\0", 1));
  fnv1a(h, content);
  return h;
}

std::shared_ptr<const CachedPlan> PlanCache::find(std::uint64_t key) {
  util::MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const CachedPlan> PlanCache::insert(
    std::uint64_t key, std::shared_ptr<const CachedPlan> plan) {
  util::MutexLock lock(mu_);
  const auto [it, inserted] = entries_.emplace(key, std::move(plan));
  if (inserted) {
    order_.push_back(key);
    // FIFO eviction once over capacity: drop the oldest insertion.
    // Running jobs keep their plan alive through their own shared_ptr;
    // only the cache's canonical copy is released.
    while (max_entries_ > 0 && entries_.size() > max_entries_) {
      entries_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
  }
  return it->second;
}

PlanCache::Stats PlanCache::stats() const {
  util::MutexLock lock(mu_);
  return Stats{hits_, misses_, evictions_, entries_.size()};
}

}  // namespace cellsweep::core
