// Compile-fail seed: calling a REQUIRES(mu) function without the lock.
//
// Must NOT compile under clang -Wthread-safety -Werror=thread-safety
// (see guarded_by_violation.cc for the test contract).
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Table {
 public:
  int size_locked() const REQUIRES(mu_) { return size_; }

  int size() const {
    // BUG (deliberate): size_locked() requires mu_, which is not held.
    // Clang: "calling function 'size_locked' requires holding mutex
    // 'mu_' exclusively".
    return size_locked();
  }

 private:
  mutable cellsweep::util::Mutex mu_{1, "Table::mu_"};
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  return t.size();
}
