// Roofline bounds for the Cell implementation (paper Section 6).
//
// "With a 50-cubed input size, the SPEs transfer 17.6 Gbytes of data.
// Considering that the peak memory bandwidth is 25.6 Gbytes/second,
// this sets a lower bound of 0.7 seconds ... By profiling the amount of
// computation performed by the SPUs we obtain a similar lower bound,
// 0.68 seconds." This header computes both bounds from the audited
// workload so the sec6_bounds bench can print paper-vs-measured rows.
#pragma once

#include <cstdint>

#include "cellsim/spec.h"

namespace cellsweep::perf {

struct CellBounds {
  double traffic_bytes = 0;     ///< total DMA payload (both directions)
  double memory_bound_s = 0;    ///< traffic / MIC peak
  double compute_cycles = 0;    ///< total SPU compute cycles (all chunks)
  double compute_bound_s = 0;   ///< cycles / (num_spes * clock)
  double bound_s = 0;           ///< max of the two
};

inline CellBounds cell_bounds(const cell::CellSpec& spec, double traffic_bytes,
                              double total_compute_cycles) {
  CellBounds b;
  b.traffic_bytes = traffic_bytes;
  b.memory_bound_s = traffic_bytes / spec.mic_bytes_per_s;
  b.compute_cycles = total_compute_cycles;
  b.compute_bound_s =
      total_compute_cycles / (spec.clock_hz * spec.num_spes);
  b.bound_s = b.memory_bound_s > b.compute_bound_s ? b.memory_bound_s
                                                   : b.compute_bound_s;
  return b;
}

}  // namespace cellsweep::perf
