// Multi-tenant solve throughput: what does one simulated Cell chip
// sustain when several solves share it?
//
// PR 5 showed the paper-size sweep is dependency-chain-bound: past ~4
// SPEs the wavefront cannot keep the chip busy, so a solo tenant leaves
// most of it slack. core::SolveServer exploits that by running tenants
// concurrently under the worst-fit SpeAllocator. This bench prices the
// steady-state regimes of that sharing deterministically:
//
//   * each job's service time is measured by a solo run against a chip
//     where a blocker claim pins all but `width` SPEs -- exactly the
//     static partition a tenant converges to under allocator pressure
//     (fair_share = spes / tenants);
//   * a discrete-event queue model then replays a mixed sweep+stencil
//     job stream through 1 tenant (the whole chip, jobs back to back)
//     and 2 tenants (half the chip each, jobs picked FIFO), yielding
//     makespan, jobs/s and p50/p95/p99 completion latency in
//     *simulated* seconds -- aggregate and per tenant, through the same
//     util::Histogram the live SolveServer uses, so bench and server
//     quantize latency identically.
//
// Everything is a pure function of the deck, so the emitted
// BENCH_throughput.json is byte-stable and perf-gated in CI like the
// fig5 ladder. Host threading never enters the numbers.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/spe_allocator.h"
#include "util/histogram.h"
#include "workloads/stencil/stencil.h"

namespace {

using namespace cellsweep;

/// A config whose allocator leaves only @p width SPEs claimable. The
/// blocker claim must outlive the run; release it afterwards.
core::SpeAllocator::Claim block_down_to(core::SpeAllocator& alloc,
                                        int width) {
  const int total = alloc.num_spes();
  if (width >= total) return {};
  return alloc.claim(total - width, total - width);
}

/// Simulated seconds for one paper-deck sweep solve on @p width SPEs.
double sweep_service_s(int cube, int width) {
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = 12;
  cfg.sweep.fixup_from_iteration = 10;
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (cube % d == 0) mk = d;
  cfg.sweep.mk = mk;
  core::SpeAllocator alloc(cfg.chip.num_spes);
  core::SpeAllocator::Claim blocker = block_down_to(alloc, width);
  cfg.spe_allocator = &alloc;
  core::CellSweep3D runner(problem, cfg);
  const double s = runner.run(core::RunMode::kTraceDriven).seconds;
  if (!blocker.empty()) alloc.release(blocker);
  return s;
}

/// Simulated seconds for one stencil solve on @p width SPEs.
double stencil_service_s(int cube, int width) {
  stencil::StencilSpec spec;
  spec.nx = spec.ny = spec.nz = cube;
  int b = 2;
  for (int d = 2; d <= 8; ++d)
    if (cube % d == 0) b = d;
  spec.bx = spec.by = spec.bz = b;
  spec.origin = "<bench>";
  spec.validate();
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  core::SpeAllocator alloc(cfg.chip.num_spes);
  core::SpeAllocator::Claim blocker = block_down_to(alloc, width);
  cfg.spe_allocator = &alloc;
  stencil::CellStencil runner(spec, cfg);
  const double s = runner.run(core::RunMode::kTraceDriven).run.seconds;
  if (!blocker.empty()) alloc.release(blocker);
  return s;
}

struct QueueOutcome {
  double makespan_s = 0;
  std::vector<double> latency_s;  ///< per-job completion time
  std::vector<int> worker;        ///< tenant that served each job
};

/// FIFO queue through @p tenants equal workers: every job is present at
/// t=0, the earliest-free worker (lowest index on ties) takes the next.
QueueOutcome run_queue(int tenants, const std::vector<double>& service_s) {
  QueueOutcome out;
  std::vector<double> free_at(static_cast<std::size_t>(tenants), 0.0);
  out.latency_s.reserve(service_s.size());
  out.worker.reserve(service_s.size());
  for (const double s : service_s) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < free_at.size(); ++i)
      if (free_at[i] < free_at[w]) w = i;
    free_at[w] += s;
    out.latency_s.push_back(free_at[w]);
    out.worker.push_back(static_cast<int>(w));
    out.makespan_s = std::max(out.makespan_s, free_at[w]);
  }
  return out;
}

/// Aggregate latency histogram (same binning as the live server's
/// per-tenant latency families, so percentiles quantize identically).
util::Histogram latency_hist(const QueueOutcome& q, int tenant = -1) {
  util::Histogram h;
  for (std::size_t i = 0; i < q.latency_s.size(); ++i)
    if (tenant < 0 || q.worker[i] == tenant) h.add(q.latency_s[i]);
  return h;
}

void write_metric(std::ostream& os, const char* key, double v,
                  bool first = false) {
  os << (first ? "" : ",") << "\n       \"" << key
     << "\": " << util::cformat("%.17g", v);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  const int cube = opt.cube_or(50);
  const int stencil_cube = std::min(cube, 32);
  constexpr int kSweepJobs = 4;
  constexpr int kStencilJobs = 4;
  constexpr int kTenants = 2;
  const int chip_spes = core::CellSweepConfig::from_stage(
                            core::OptimizationStage::kSpeLsPoke)
                            .chip.num_spes;
  const int share = std::max(1, chip_spes / kTenants);

  bench::print_header(
      "Multi-tenant throughput: " + std::to_string(kSweepJobs) + " sweep (" +
      std::to_string(cube) + "^3) + " + std::to_string(kStencilJobs) +
      " stencil (" + std::to_string(stencil_cube) + "^3) jobs");

  // Service times at full chip width and at the 2-tenant fair share.
  const double sweep_full = sweep_service_s(cube, chip_spes);
  const double sweep_half = sweep_service_s(cube, share);
  const double sten_full = stencil_service_s(stencil_cube, chip_spes);
  const double sten_half = stencil_service_s(stencil_cube, share);

  // The mixed stream: sweep and stencil jobs interleaved, all queued at
  // t=0 (closed system -- the server drains a backlog).
  std::vector<double> stream_full, stream_half;
  for (int i = 0; i < kSweepJobs + kStencilJobs; ++i) {
    const bool sweep_job = i % 2 == 0;  // kSweepJobs == kStencilJobs
    stream_full.push_back(sweep_job ? sweep_full : sten_full);
    stream_half.push_back(sweep_job ? sweep_half : sten_half);
  }
  const std::size_t jobs = stream_full.size();

  const QueueOutcome serial = run_queue(1, stream_full);
  const QueueOutcome shared = run_queue(kTenants, stream_half);

  struct Row {
    const char* name;
    const QueueOutcome* q;
  };
  const Row rows[] = {{"serial-1-tenant", &serial}, {"2-tenant", &shared}};

  util::TextTable table({"regime", "makespan [s]", "jobs/s", "p50 [s]",
                         "p95 [s]", "p99 [s]"});
  for (const Row& row : rows) {
    const util::Histogram h = latency_hist(*row.q);
    table.add_row({row.name, bench::fmt("%.4f", row.q->makespan_s),
                   bench::fmt("%.4f", static_cast<double>(jobs) /
                                          row.q->makespan_s),
                   bench::fmt("%.4f", h.percentile(0.50)),
                   bench::fmt("%.4f", h.percentile(0.95)),
                   bench::fmt("%.4f", h.percentile(0.99))});
  }
  table.print(std::cout);

  // Per-tenant view of the shared regime: with the lowest-index
  // tie-break both tenants see the same alternating sweep/stencil mix,
  // so their percentiles should track each other closely.
  std::cout << "\n";
  util::TextTable per_tenant({"2-tenant regime", "jobs", "p50 [s]",
                              "p95 [s]", "p99 [s]"});
  for (int t = 0; t < kTenants; ++t) {
    const util::Histogram h = latency_hist(shared, t);
    per_tenant.add_row({"tenant " + std::to_string(t),
                        std::to_string(h.count()),
                        bench::fmt("%.4f", h.percentile(0.50)),
                        bench::fmt("%.4f", h.percentile(0.95)),
                        bench::fmt("%.4f", h.percentile(0.99))});
  }
  per_tenant.print(std::cout);

  const double speedup = serial.makespan_s / shared.makespan_s;
  std::cout << "\nPer-tenant width " << share << "/" << chip_spes
            << " SPEs; sweep service " << bench::fmt("%.4f", sweep_full)
            << " s full-chip vs " << bench::fmt("%.4f", sweep_half)
            << " s shared -- the dependency-chain-bound sweep barely\n"
            << "misses the surrendered SPEs, so two tenants trade a "
            << bench::fmt("%.2f", sweep_half / sweep_full)
            << "x per-job slowdown for " << bench::fmt("%.2f", speedup)
            << "x throughput.\n";

  if (!opt.json_dir.empty()) {
    const std::string path =
        opt.json_dir + "/BENCH_throughput.json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    os << "{\n  \"schema\": \"" << bench::kBenchSchema
       << "\",\n  \"scenario\": \"throughput\",\n  \"fingerprint\": {"
       << "\"cube\": " << cube << ", \"stencil_cube\": " << stencil_cube
       << ", \"sweep_jobs\": " << kSweepJobs
       << ", \"stencil_jobs\": " << kStencilJobs
       << ", \"spes\": " << chip_spes << ", \"tenants\": " << kTenants
       << "},\n  \"runs\": [";
    bool first_run = true;
    for (const Row& row : rows) {
      os << (first_run ? "\n" : ",\n") << "    {\"name\": \"" << row.name
         << "\",\n     \"metrics\": {";
      const util::Histogram h = latency_hist(*row.q);
      write_metric(os, "seconds", row.q->makespan_s, true);
      write_metric(os, "jobs_per_s",
                   static_cast<double>(jobs) / row.q->makespan_s);
      write_metric(os, "latency_p50_s", h.percentile(0.50));
      write_metric(os, "latency_p95_s", h.percentile(0.95));
      write_metric(os, "latency_p99_s", h.percentile(0.99));
      const int tenants_here = row.q == &shared ? kTenants : 1;
      for (int t = 0; t < tenants_here; ++t) {
        const util::Histogram th = latency_hist(*row.q, t);
        const std::string prefix = "tenant" + std::to_string(t);
        write_metric(os, (prefix + "_latency_p50_s").c_str(),
                     th.percentile(0.50));
        write_metric(os, (prefix + "_latency_p95_s").c_str(),
                     th.percentile(0.95));
        write_metric(os, (prefix + "_latency_p99_s").c_str(),
                     th.percentile(0.99));
      }
      os << "},\n     \"counters\": null}";
      first_run = false;
    }
    os << "\n  ],\n  \"deltas\": [\n    {\"from\": \"serial-1-tenant\", "
       << "\"to\": \"2-tenant\", \"seconds_delta\": "
       << util::cformat("%.17g", shared.makespan_s - serial.makespan_s)
       << ", \"seconds_ratio\": "
       << util::cformat("%.17g", shared.makespan_s / serial.makespan_s)
       << "}\n  ]\n}\n";
    std::cout << "Bench JSON -> " << path << "\n";
    if (!os.good()) return 1;
  }

  // Acceptance gate at paper scale: sharing the chip two ways must buy
  // at least 1.5x job throughput or the allocator regressed.
  if (!opt.cube_set && speedup < 1.5) {
    std::cerr << "bench_throughput: FAIL: 2-tenant speedup "
              << bench::fmt("%.3f", speedup) << "x < 1.5x\n";
    return 1;
  }
  return 0;
}
