// Unit and property tests for the Sn quadrature and the scattering
// moment tables.
#include <gtest/gtest.h>

#include <cmath>

#include "sweep/quadrature.h"

namespace cellsweep::sweep {
namespace {

class QuadratureOrders : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureOrders, AngleCountIsNnPlus2Over8) {
  const int n = GetParam();
  SnQuadrature quad(n);
  EXPECT_EQ(quad.angles_per_octant(), n * (n + 2) / 8);
  EXPECT_EQ(quad.total_angles(), n * (n + 2));
}

TEST_P(QuadratureOrders, WeightsNormalizedToOne) {
  SnQuadrature quad(GetParam());
  EXPECT_NEAR(quad.total_weight(), 1.0, 1e-12);
}

TEST_P(QuadratureOrders, DirectionsOnUnitSphere) {
  SnQuadrature quad(GetParam());
  for (const Ordinate& o : quad.octant_ordinates()) {
    EXPECT_NEAR(o.mu * o.mu + o.eta * o.eta + o.xi * o.xi, 1.0, 1e-6);
    EXPECT_GT(o.mu, 0.0);
    EXPECT_GT(o.eta, 0.0);
    EXPECT_GT(o.xi, 0.0);
    EXPECT_GT(o.w, 0.0);
  }
}

TEST_P(QuadratureOrders, IntegratesEvenMomentsExactly) {
  // Level-symmetric quadrature integrates low-order even polynomials:
  // <mu^2> = 1/3 over the sphere (and by symmetry eta, xi alike).
  SnQuadrature quad(GetParam());
  double mu2 = 0, eta2 = 0, xi2 = 0, mu1 = 0;
  for (const Ordinate& o : quad.octant_ordinates()) {
    // Sum over all 8 octants: odd powers cancel, even powers x8.
    mu2 += 8 * o.w * o.mu * o.mu;
    eta2 += 8 * o.w * o.eta * o.eta;
    xi2 += 8 * o.w * o.xi * o.xi;
    mu1 += o.w * o.mu;  // first octant only; nonzero there
  }
  EXPECT_NEAR(mu2, 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(eta2, 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(xi2, 1.0 / 3.0, 1e-6);
  EXPECT_GT(mu1, 0.0);
}

TEST_P(QuadratureOrders, SymmetricUnderAxisExchange) {
  // Level symmetry: the set of (mu, eta, xi) triples is closed under
  // coordinate permutation, so the sums of each cosine are equal.
  SnQuadrature quad(GetParam());
  double smu = 0, seta = 0, sxi = 0;
  for (const Ordinate& o : quad.octant_ordinates()) {
    smu += o.w * o.mu;
    seta += o.w * o.eta;
    sxi += o.w * o.xi;
  }
  EXPECT_NEAR(smu, seta, 1e-9);
  EXPECT_NEAR(seta, sxi, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, QuadratureOrders,
                         ::testing::Values(2, 4, 6, 8));

TEST(Quadrature, PaperUsesSixAnglesPerOctant) {
  SnQuadrature quad(6);
  EXPECT_EQ(quad.angles_per_octant(), 6);
}

TEST(Quadrature, RejectsUnsupportedOrders) {
  EXPECT_THROW(SnQuadrature(3), std::invalid_argument);
  EXPECT_THROW(SnQuadrature(10), std::invalid_argument);
}

TEST(Octants, AllEightSignCombinations) {
  const auto octs = all_octants();
  int seen[2][2][2] = {};
  for (const Octant& o : octs) {
    EXPECT_TRUE(o.sx == 1 || o.sx == -1);
    ++seen[o.sx > 0][o.sy > 0][o.sz > 0];
  }
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) EXPECT_EQ(seen[a][b][c], 1);
}

TEST(MomentTable, FullP2HasNineMoments) {
  SnQuadrature quad(6);
  MomentTable mt(quad, 2);
  EXPECT_EQ(mt.nm(), 9);
  EXPECT_EQ(mt.moment_order(0), 0);
  EXPECT_EQ(mt.moment_order(1), 1);
  EXPECT_EQ(mt.moment_order(3), 1);
  EXPECT_EQ(mt.moment_order(4), 2);
  EXPECT_EQ(mt.moment_order(8), 2);
}

TEST(MomentTable, BenchmarkCapKeepsSix) {
  SnQuadrature quad(6);
  MomentTable mt(quad, 2, kBenchmarkMoments);
  EXPECT_EQ(mt.nm(), 6);
  EXPECT_EQ(mt.moment_order(5), 2);
}

TEST(MomentTable, CapValidation) {
  SnQuadrature quad(6);
  EXPECT_THROW(MomentTable(quad, 2, 10), std::invalid_argument);
  EXPECT_THROW(MomentTable(quad, 2, -1), std::invalid_argument);
  EXPECT_THROW(MomentTable(quad, 4), std::invalid_argument);
}

TEST(MomentTable, P3HasSixteenMoments) {
  SnQuadrature quad(6);
  MomentTable mt(quad, 3);
  EXPECT_EQ(mt.nm(), 16);
  EXPECT_EQ(mt.moment_order(9), 3);
  EXPECT_EQ(mt.moment_order(15), 3);
}

TEST(MomentTable, ScalarMomentIsUnity) {
  SnQuadrature quad(6);
  MomentTable mt(quad, 2);
  for (int iq = 0; iq < 8; ++iq)
    for (int m = 0; m < quad.angles_per_octant(); ++m)
      EXPECT_DOUBLE_EQ(mt.pn(iq)[m * mt.nm() + 0], 1.0);
}

TEST(MomentTable, LinearMomentsCarryOctantSigns) {
  SnQuadrature quad(6);
  MomentTable mt(quad, 1);
  const auto octs = all_octants();
  for (int iq = 0; iq < 8; ++iq)
    for (int m = 0; m < quad.angles_per_octant(); ++m) {
      const Ordinate& o = quad.octant_ordinates()[m];
      const double* row = mt.pn(iq) + m * mt.nm();
      EXPECT_DOUBLE_EQ(row[1], octs[iq].sx * o.mu);
      EXPECT_DOUBLE_EQ(row[2], octs[iq].sy * o.eta);
      EXPECT_DOUBLE_EQ(row[3], octs[iq].sz * o.xi);
    }
}

TEST(MomentTable, AdditionTheoremP1) {
  // sum_{n in l=1} R_n(O) R_n(O') == P_1(O.O') == O.O'.
  SnQuadrature quad(6);
  MomentTable mt(quad, 1);
  const double* pn0 = mt.pn(0);
  const int nm = mt.nm();
  const auto& ords = quad.octant_ordinates();
  for (int m = 0; m < quad.angles_per_octant(); ++m)
    for (int mp = 0; mp < quad.angles_per_octant(); ++mp) {
      double lhs = 0;
      for (int n = 1; n < 4; ++n) lhs += pn0[m * nm + n] * pn0[mp * nm + n];
      const double dot = ords[m].mu * ords[mp].mu +
                         ords[m].eta * ords[mp].eta +
                         ords[m].xi * ords[mp].xi;
      EXPECT_NEAR(lhs, dot, 1e-6);
    }
}

TEST(MomentTable, AdditionTheoremP3FullSet) {
  // sum_{n in l=3} R_n R_n' == P_3(O.O') = (5t^3 - 3t)/2.
  SnQuadrature quad(8);  // S8: more directions, stronger check
  MomentTable mt(quad, 3);
  const double* pn0 = mt.pn(0);
  const int nm = mt.nm();
  const auto& ords = quad.octant_ordinates();
  for (int m = 0; m < quad.angles_per_octant(); ++m)
    for (int mp = 0; mp < quad.angles_per_octant(); ++mp) {
      double lhs = 0;
      for (int n = 9; n < 16; ++n) lhs += pn0[m * nm + n] * pn0[mp * nm + n];
      const double t = ords[m].mu * ords[mp].mu +
                       ords[m].eta * ords[mp].eta + ords[m].xi * ords[mp].xi;
      EXPECT_NEAR(lhs, 0.5 * (5.0 * t * t * t - 3.0 * t), 5e-7)
          << m << "," << mp;
    }
}

TEST(MomentTable, AdditionTheoremP2FullSet) {
  // With the full 9-moment basis, sum_{n in l=2} R_n R_n' == P_2(O.O').
  SnQuadrature quad(6);
  MomentTable mt(quad, 2);
  const double* pn0 = mt.pn(0);
  const int nm = mt.nm();
  const auto& ords = quad.octant_ordinates();
  for (int m = 0; m < quad.angles_per_octant(); ++m)
    for (int mp = 0; mp < quad.angles_per_octant(); ++mp) {
      double lhs = 0;
      for (int n = 4; n < 9; ++n) lhs += pn0[m * nm + n] * pn0[mp * nm + n];
      const double dot = ords[m].mu * ords[mp].mu +
                         ords[m].eta * ords[mp].eta +
                         ords[m].xi * ords[mp].xi;
      EXPECT_NEAR(lhs, 0.5 * (3.0 * dot * dot - 1.0), 5e-7);
    }
}

TEST(MomentTable, TruncatedKernelStaysPsd) {
  // The truncated (nm=6) scattering kernel sum_n R_n(O) R_n(O) must be
  // nonnegative on the diagonal -- the contraction property source
  // iteration needs.
  SnQuadrature quad(6);
  MomentTable mt(quad, 2, kBenchmarkMoments);
  for (int iq = 0; iq < 8; ++iq)
    for (int m = 0; m < quad.angles_per_octant(); ++m) {
      double diag = 0;
      for (int n = 0; n < mt.nm(); ++n) {
        const double v = mt.pn(iq)[m * mt.nm() + n];
        diag += v * v;
      }
      EXPECT_GE(diag, 0.0);
    }
}

}  // namespace
}  // namespace cellsweep::sweep
