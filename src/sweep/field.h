// Flattened, alignment-padded field storage.
//
// The Cell port's preparation steps (paper, Section 5) are: zero-based
// arrays, flattened multi-dimensional arrays with explicit index
// computation, and 128-byte alignment of every row that is DMA'd into
// an SPE. MomentField implements exactly that layout: moments x planes
// x rows x cells, with the I-row padded to a whole number of 128-byte
// lines so each (n,k,j) row is a legal peak-rate DMA source/target.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sweep/grid.h"
#include "util/aligned.h"

namespace cellsweep::sweep {

/// Moment-indexed scalar field over the grid: values[n][k][j][i].
template <typename Real>
class MomentField {
 public:
  MomentField(const Grid& grid, int nm)
      : it_(grid.it),
        jt_(grid.jt),
        kt_(grid.kt),
        nm_(nm),
        it_pad_(static_cast<int>(util::padded_extent<Real>(grid.it))),
        data_(static_cast<std::size_t>(nm) * kt_ * jt_ * it_pad_, Real(0)) {}

  int nm() const noexcept { return nm_; }
  int it() const noexcept { return it_; }
  int it_padded() const noexcept { return it_pad_; }

  /// Stride between consecutive moments at fixed (k,j,i).
  std::int64_t moment_stride() const noexcept {
    return static_cast<std::int64_t>(kt_) * jt_ * it_pad_;
  }

  /// Pointer to the contiguous I-row of moment @p n at plane/row (k,j).
  Real* line(int n, int k, int j) noexcept {
    return data_.data() + offset(n, k, j);
  }
  const Real* line(int n, int k, int j) const noexcept {
    return data_.data() + offset(n, k, j);
  }

  Real& at(int n, int k, int j, int i) noexcept {
    return data_[offset(n, k, j) + i];
  }
  Real at(int n, int k, int j, int i) const noexcept {
    return data_[offset(n, k, j) + i];
  }

  void fill(Real v) { std::fill(data_.begin(), data_.end(), v); }

  /// Bytes of one padded I-row (the DMA transfer unit for this field).
  std::size_t row_bytes() const noexcept { return sizeof(Real) * it_pad_; }

  /// Sum of moment @p n over all cells (diagnostics / convergence).
  double moment_sum(int n) const noexcept {
    double s = 0.0;
    for (int k = 0; k < kt_; ++k)
      for (int j = 0; j < jt_; ++j) {
        const Real* row = line(n, k, j);
        for (int i = 0; i < it_; ++i) s += static_cast<double>(row[i]);
      }
    return s;
  }

  /// In-place error-mode extrapolation: x += factor * (x - prev), over
  /// every moment. Used by the accelerated source iteration.
  void extrapolate_from(const MomentField& prev, Real factor) {
    for (std::size_t idx = 0; idx < data_.size(); ++idx)
      data_[idx] += factor * (data_[idx] - prev.data_[idx]);
  }

  /// Max |a - b| over moment 0 (iteration convergence metric).
  static double max_abs_diff_moment0(const MomentField& a,
                                     const MomentField& b) noexcept {
    double d = 0.0;
    for (int k = 0; k < a.kt_; ++k)
      for (int j = 0; j < a.jt_; ++j) {
        const Real* ra = a.line(0, k, j);
        const Real* rb = b.line(0, k, j);
        for (int i = 0; i < a.it_; ++i)
          d = std::max(d, std::abs(static_cast<double>(ra[i] - rb[i])));
      }
    return d;
  }

 private:
  std::size_t offset(int n, int k, int j) const noexcept {
    return ((static_cast<std::size_t>(n) * kt_ + k) * jt_ + j) * it_pad_;
  }

  int it_, jt_, kt_, nm_, it_pad_;
  util::AlignedVector<Real> data_;
};

/// Plain per-cell field (cross sections, external source) with the
/// same padded-row layout.
template <typename Real>
class CellField {
 public:
  explicit CellField(const Grid& grid)
      : it_(grid.it),
        jt_(grid.jt),
        kt_(grid.kt),
        it_pad_(static_cast<int>(util::padded_extent<Real>(grid.it))),
        data_(static_cast<std::size_t>(kt_) * jt_ * it_pad_, Real(0)) {}

  Real* line(int k, int j) noexcept {
    return data_.data() + offset(k, j);
  }
  const Real* line(int k, int j) const noexcept {
    return data_.data() + offset(k, j);
  }
  Real& at(int k, int j, int i) noexcept { return data_[offset(k, j) + i]; }
  Real at(int k, int j, int i) const noexcept {
    return data_[offset(k, j) + i];
  }

  int it_padded() const noexcept { return it_pad_; }
  std::size_t row_bytes() const noexcept { return sizeof(Real) * it_pad_; }

 private:
  std::size_t offset(int k, int j) const noexcept {
    return (static_cast<std::size_t>(k) * jt_ + j) * it_pad_;
  }

  int it_, jt_, kt_, it_pad_;
  util::AlignedVector<Real> data_;
};

}  // namespace cellsweep::sweep
