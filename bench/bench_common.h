// Shared helpers for the bench harness. Every binary in bench/
// regenerates one of the paper's tables or figures: it runs the
// simulated experiment and prints paper-reported vs measured rows.
//
// Besides the human-readable tables, every bench can emit a
// machine-readable BENCH_<scenario>.json (schema "cellsweep-bench-v2")
// via --json <dir>: config fingerprint, per-run metrics (grind time,
// traffic, utilizations), the full hardware counter tree and per-stage
// deltas. tools/perf_diff compares two such files and fails CI on
// regression. All numeric output routes through util::cformat, so both
// the tables and the JSON are byte-stable across locales.
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/orchestrator.h"
#include "util/table.h"
#include "util/units.h"

namespace cellsweep::bench {

/// The BENCH JSON layout version (tools/perf_diff checks it).
inline constexpr const char* kBenchSchema = "cellsweep-bench-v2";

/// Runs one optimization stage on an n-cubed benchmark problem with the
/// paper's deck (12 iterations, fixups in the last two) and returns the
/// report. Trace-driven: full 50-cubed scale in well under a second.
inline core::RunReport run_stage(core::OptimizationStage stage, int cube = 50,
                                 int iterations = 12) {
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = iterations;
  cfg.sweep.fixup_from_iteration = iterations - 2;
  // MK must factor KT: pick the largest divisor <= the default.
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (cube % d == 0) mk = d;
  cfg.sweep.mk = mk;
  core::CellSweep3D runner(problem, cfg);
  return runner.run(core::RunMode::kTraceDriven);
}

/// Locale-independent snprintf for table cells and JSON fragments.
inline std::string fmt(const char* f, double v) { return util::cformat(f, v); }

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Common bench command line: `--json <dir>` turns on BENCH_*.json
/// emission, `--cube N` scales the problem (the CI perf job runs the
/// benches small). Unknown flags fail, so typos never silently run the
/// default experiment.
struct BenchOptions {
  std::string json_dir;  ///< empty: no JSON emission
  int cube = 50;
  bool ok = true;

  /// Cube size for a scenario that wants @p fallback unless --cube was
  /// given explicitly.
  int cube_or(int fallback) const { return cube_set ? cube : fallback; }
  bool cube_set = false;
};

inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    auto take_value = [&](const std::string& flag) {
      if (arg.size() > flag.size() && arg.compare(0, flag.size() + 1,
                                                  flag + "=") == 0) {
        value = arg.substr(flag.size() + 1);
        return true;
      }
      if (arg == flag && i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      return false;
    };
    if (take_value("--json")) {
      opt.json_dir = value;
    } else if (take_value("--cube")) {
      char* rest = nullptr;
      const long n = std::strtol(value.c_str(), &rest, 10);
      if (rest == nullptr || *rest != '\0' || n < 2) {
        std::cerr << argv[0] << ": --cube wants an integer >= 2, got '"
                  << value << "'\n";
        opt.ok = false;
        return opt;
      }
      opt.cube = static_cast<int>(n);
      opt.cube_set = true;
    } else {
      std::cerr << argv[0] << ": unknown argument '" << arg
                << "' (supported: --json <dir>, --cube N)\n";
      opt.ok = false;
      return opt;
    }
  }
  return opt;
}

/// Collects named runs of one scenario and writes them as
/// BENCH_<scenario>.json. Runs appear in insertion order; consecutive
/// runs produce a "deltas" entry (the per-stage steps of a ladder).
class BenchJson {
 public:
  BenchJson(std::string scenario, int cube, int iterations = 12)
      : scenario_(std::move(scenario)), cube_(cube),
        iterations_(iterations) {}

  void add_run(const std::string& name, const core::RunReport& r) {
    runs_.emplace_back(name, r);
  }

  /// Writes @p dir/BENCH_<scenario>.json; returns true on success and
  /// logs the path.
  bool write(const std::string& dir) const {
    const std::string path = dir + "/BENCH_" + scenario_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return false;
    }
    os << "{\n  \"schema\": \"" << kBenchSchema << "\",\n  \"scenario\": \""
       << scenario_ << "\",\n  \"fingerprint\": {\"cube\": " << cube_
       << ", \"iterations\": " << iterations_ << "},\n  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const auto& [name, r] = runs_[i];
      os << (i ? ",\n" : "\n") << "    {\"name\": \"" << name
         << "\",\n     \"metrics\": {";
      write_metric(os, "seconds", r.seconds, true);
      write_metric(os, "grind_seconds", r.grind_seconds);
      write_metric(os, "achieved_flops_per_s", r.achieved_flops_per_s);
      write_metric(os, "traffic_bytes", r.traffic_bytes);
      write_metric(os, "compute_busy_s", r.compute_busy_s);
      write_metric(os, "mic_busy_s", r.mic_busy_s);
      write_metric(os, "mic_utilization", r.mic_utilization);
      write_metric(os, "eib_utilization", r.eib_utilization);
      write_metric(os, "memory_bound_s", r.memory_bound_s);
      write_metric(os, "compute_bound_s", r.compute_bound_s);
      os << ",\n       \"flops\": " << r.flops
         << ", \"cell_solves\": " << r.cell_solves
         << ", \"chunks\": " << r.chunks
         << ", \"dma_commands\": " << r.dma_commands
         << ", \"dma_transfers\": " << r.dma_transfers << "},\n"
         << "     \"counters\": ";
      if (r.counters.empty()) {
        os << "null";
      } else {
        core::write_counters_json(os, r.counters, 5);
      }
      os << "}";
    }
    os << "\n  ],\n  \"deltas\": [";
    for (std::size_t i = 0; i + 1 < runs_.size(); ++i) {
      const auto& [from, a] = runs_[i];
      const auto& [to, b] = runs_[i + 1];
      os << (i ? ",\n" : "\n") << "    {\"from\": \"" << from
         << "\", \"to\": \"" << to << "\", \"seconds_delta\": "
         << util::cformat("%.17g", b.seconds - a.seconds)
         << ", \"seconds_ratio\": "
         << (a.seconds > 0 ? util::cformat("%.17g", b.seconds / a.seconds)
                           : std::string("null"))
         << "}";
    }
    if (runs_.size() > 1) os << "\n  ";
    os << "]\n}\n";
    std::cout << "Bench JSON -> " << path << "\n";
    return os.good();
  }

 private:
  static void write_metric(std::ostream& os, const char* key, double v,
                           bool first = false) {
    os << (first ? "" : ",") << "\n       \"" << key << "\": ";
    if (std::isfinite(v)) {
      os << util::cformat("%.17g", v);
    } else {
      os << "null";  // the JSON-null contract for NaN/inf metrics
    }
  }

  std::string scenario_;
  int cube_;
  int iterations_;
  std::vector<std::pair<std::string, core::RunReport>> runs_;
};

/// One-call emission for a single-run scenario.
inline bool emit_bench_json(const std::string& dir,
                            const std::string& scenario, int cube,
                            const std::string& run_name,
                            const core::RunReport& r) {
  BenchJson json(scenario, cube);
  json.add_run(run_name, r);
  return json.write(dir);
}

}  // namespace cellsweep::bench
