// Streaming statistics accumulator (Welford) used by the bench harness
// and the simulator's resource-utilization counters.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace cellsweep::util {

/// Single-pass mean / variance / min / max accumulator.
///
/// Empty-accumulator contract: with no samples, every moment (mean,
/// variance, stddev, min, max) is quiet NaN -- uniformly, so callers
/// can detect "no data" with std::isnan regardless of which moment
/// they read. count() and sum() stay 0 (the empty sum). JSON
/// serializers must map the NaNs to null (JSON has no NaN literal);
/// core::write_metrics_json does.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return n_ ? mean_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Sample variance (n-1 denominator); 0.0 for a single sample.
  double variance() const noexcept {
    if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() noexcept { *this = RunningStats{}; }

  /// Merge two accumulators (parallel reduction of partial stats).
  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cellsweep::util
