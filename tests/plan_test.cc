// Property tests for the shared chunk-plan layer: the plan must cover
// every I-line of every pipeline block exactly once, bundle lines into
// chunks of at most kBundleLines, propagate the execution flags, and
// agree with the trace-driven enumerator (the other historical source
// of this arithmetic).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/workload.h"
#include "sweep/kernel_simd.h"
#include "sweep/plan.h"

namespace cellsweep::sweep {
namespace {

SweepConfig make_cfg(int mk, int mmi, KernelKind kernel = KernelKind::kSimd) {
  SweepConfig cfg;
  cfg.mk = mk;
  cfg.mmi = mmi;
  cfg.kernel = kernel;
  return cfg;
}

TEST(ChunkPlan, CoversEveryLineOfEveryBlockExactlyOnce) {
  for (auto [mk, mmi, jt] : {std::tuple{10, 3, 50}, {1, 1, 7}, {5, 6, 12},
                             {4, 2, 1}, {2, 3, 9}}) {
    const SweepConfig cfg = make_cfg(mk, mmi);
    std::set<std::tuple<int, int, int>> seen;
    const int ndiags = ChunkPlan::diagonals_per_block(cfg, jt);
    for (int d = 0; d < ndiags; ++d) {
      const ChunkPlan plan(cfg, jt, /*it=*/16, d, /*fixup=*/false);
      for (const LineCoord& lc : plan.lines()) {
        EXPECT_EQ(lc.mh + lc.kk + lc.jj, d);
        EXPECT_TRUE(lc.mh >= 0 && lc.mh < mmi);
        EXPECT_TRUE(lc.kk >= 0 && lc.kk < mk);
        EXPECT_TRUE(lc.jj >= 0 && lc.jj < jt);
        const bool fresh =
            seen.insert(std::tuple{lc.mh, lc.kk, lc.jj}).second;
        EXPECT_TRUE(fresh) << "line visited twice: mh=" << lc.mh
                           << " kk=" << lc.kk << " jj=" << lc.jj;
      }
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(mk) * mmi * jt)
        << "mk=" << mk << " mmi=" << mmi << " jt=" << jt;
    // Diagonals past the block's far corner must be empty, and the
    // last in-range diagonal non-empty.
    EXPECT_GT(ChunkPlan::lines_on_diagonal(cfg, jt, ndiags - 1), 0);
    EXPECT_EQ(ChunkPlan::lines_on_diagonal(cfg, jt, ndiags), 0);
  }
}

TEST(ChunkPlan, ChunksPartitionLinesWithBoundedWidth) {
  const SweepConfig cfg = make_cfg(10, 3);
  for (int d = 0; d < ChunkPlan::diagonals_per_block(cfg, 50); ++d) {
    const ChunkPlan plan(cfg, 50, 16, d, false);
    int next = 0;
    for (const ChunkDesc& ch : plan.chunks()) {
      EXPECT_EQ(ch.index, &ch - plan.chunks().data());
      EXPECT_EQ(ch.first_line, next);
      EXPECT_GE(ch.nlines, 1);
      EXPECT_LE(ch.nlines, kBundleLines);
      // Only the last chunk may be a partial bundle.
      if (ch.index + 1 < static_cast<int>(plan.chunks().size()))
        EXPECT_EQ(ch.nlines, kBundleLines);
      next += ch.nlines;
    }
    EXPECT_EQ(next, plan.nlines());
    EXPECT_EQ(static_cast<int>(plan.chunks().size()),
              ChunkPlan::chunk_count(plan.nlines()));
  }
}

TEST(ChunkPlan, StaticHelpersAgreeWithBuiltPlan) {
  const SweepConfig cfg = make_cfg(5, 6);
  for (int d = 0; d < ChunkPlan::diagonals_per_block(cfg, 12); ++d) {
    const ChunkPlan plan(cfg, 12, 20, d, true);
    EXPECT_EQ(plan.nlines(), ChunkPlan::lines_on_diagonal(cfg, 12, d));
    for (const ChunkDesc& ch : plan.chunks())
      EXPECT_EQ(ch.nlines, ChunkPlan::chunk_width(plan.nlines(), ch.index));
  }
  EXPECT_EQ(ChunkPlan::chunk_count(0), 0);
  EXPECT_EQ(ChunkPlan::chunk_count(1), 1);
  EXPECT_EQ(ChunkPlan::chunk_count(4), 1);
  EXPECT_EQ(ChunkPlan::chunk_count(5), 2);
  EXPECT_EQ(ChunkPlan::chunk_count(60), 15);
}

TEST(ChunkPlan, ExecutionFlagsPropagate) {
  SweepConfig cfg = make_cfg(4, 2, KernelKind::kScalar);
  const ChunkPlan plan(cfg, 9, 33, 3, /*fixup=*/true);
  EXPECT_EQ(plan.it(), 33);
  EXPECT_TRUE(plan.fixup());
  EXPECT_EQ(plan.kernel(), KernelKind::kScalar);
  EXPECT_EQ(plan.diagonal(), 3);
}

TEST(ChunkPlan, DiagonalWorkRoundTrips) {
  const SweepConfig cfg = make_cfg(4, 3);
  const int jt = 9;
  for (int d = 0; d < ChunkPlan::diagonals_per_block(cfg, jt); ++d) {
    const int nlines = ChunkPlan::lines_on_diagonal(cfg, jt, d);
    if (nlines == 0) continue;
    const DiagonalWork w{/*octant=*/2, /*ablock=*/1, /*kblock=*/0, d,
                         nlines, /*it=*/25, /*fixup=*/true,
                         KernelKind::kSimd};
    const ChunkPlan plan(cfg, jt, w);
    EXPECT_EQ(plan.nlines(), w.nlines);
    EXPECT_EQ(plan.it(), w.it);
    EXPECT_TRUE(plan.fixup());
    EXPECT_EQ(plan.kernel(), w.kernel);
  }
}

TEST(ChunkPlan, RejectsDriftedDiagonalWork) {
  const SweepConfig cfg = make_cfg(4, 3);
  DiagonalWork w{0, 0, 0, /*diagonal=*/2, /*nlines=*/99, 25, false,
                 KernelKind::kSimd};
  EXPECT_THROW(ChunkPlan(cfg, 9, w), std::logic_error);
}

TEST(ChunkPlan, AgreesWithTraceDrivenEnumerator) {
  // The enumerator (workload.cc) and the plan layer must report the
  // same line count for every emitted diagonal -- the agreement that
  // makes on_diagonal's drift check a no-op in correct runs.
  const Grid g = Grid::cube(12);
  const SweepConfig cfg = make_cfg(6, 2);
  core::enumerate_sweep(g, 6, cfg, false, [&](const DiagonalWork& w) {
    EXPECT_EQ(w.nlines, ChunkPlan::lines_on_diagonal(cfg, g.jt, w.diagonal));
    EXPECT_NO_THROW(ChunkPlan(cfg, g.jt, w));
  });
}

}  // namespace
}  // namespace cellsweep::sweep
