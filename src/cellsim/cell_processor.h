// The assembled Cell BE machine model: one PPE, eight SPEs (each with
// a local store and an MFC), the EIB, the MIC and the dispatch fabric.
//
// The orchestrator in src/core drives this machine from a discrete-
// event loop: at each simulated instant it asks the machine "when would
// this DMA finish / when does this SPE hold its next work item", and
// the shared resources (MIC port, PPE dispatcher, EIB) answer with
// contention included, because every SPE's requests land on the same
// FIFO servers in simulated-time order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cellsim/local_store.h"
#include "cellsim/mfc.h"
#include "cellsim/memory.h"
#include "cellsim/spec.h"
#include "cellsim/spu_pipeline.h"
#include "cellsim/sync.h"
#include "sim/time.h"

namespace cellsweep::cell {

/// One Synergistic Processing Element: SPU timing state + MFC + LS.
class Spe {
 public:
  Spe(int index, const CellSpec& spec, Eib* eib, Mic* mic);

  int index() const noexcept { return index_; }
  LocalStore& local_store() noexcept { return ls_; }
  const LocalStore& local_store() const noexcept { return ls_; }
  Mfc& mfc() noexcept { return mfc_; }
  const Mfc& mfc() const noexcept { return mfc_; }

  /// Accounts @p cycles of SPU computation starting at @p now; returns
  /// the completion time. Also accumulates per-SPE busy statistics.
  sim::Tick compute(sim::Tick now, double cycles);

  sim::Tick busy_ticks() const noexcept { return busy_; }
  std::uint64_t work_items() const noexcept { return work_items_; }
  void count_work_item() noexcept { ++work_items_; }

  void reset() noexcept;

 private:
  int index_;
  CellSpec spec_;
  LocalStore ls_;
  Mfc mfc_;
  sim::Tick busy_ = 0;
  std::uint64_t work_items_ = 0;
};

/// Whole-chip model.
class CellProcessor {
 public:
  explicit CellProcessor(const CellSpec& spec = CellSpec{});

  const CellSpec& spec() const noexcept { return spec_; }
  int num_spes() const noexcept { return static_cast<int>(spes_.size()); }

  Spe& spe(int i) { return *spes_.at(i); }
  const Spe& spe(int i) const { return *spes_.at(i); }
  Eib& eib() noexcept { return eib_; }
  Mic& mic() noexcept { return mic_; }
  const Mic& mic() const noexcept { return mic_; }
  DispatchFabric& dispatch() noexcept { return dispatch_; }
  const SpuPipeline& pipeline() const noexcept { return pipeline_; }

  /// Total payload bytes the chip moved to/from main memory.
  double memory_traffic_bytes() const noexcept { return mic_.bytes_moved(); }

  /// Clears all resource state between experiment configurations.
  void reset();

 private:
  CellSpec spec_;
  Eib eib_;
  Mic mic_;
  DispatchFabric dispatch_;
  SpuPipeline pipeline_;
  std::vector<std::unique_ptr<Spe>> spes_;
};

}  // namespace cellsweep::cell
