#include "sweep/quadrature.h"

#include <cmath>
#include <stdexcept>

namespace cellsweep::sweep {
namespace {

/// Level-symmetric LQn cosine levels and point weights, from the
/// standard tables (Lewis & Miller). Point weights are normalized so
/// each octant sums to 1; the constructor rescales to 1/8 per octant.
struct LqnLevel {
  double mu;
};

void build_s2(std::vector<Ordinate>& out) {
  const double m = 1.0 / std::sqrt(3.0);
  out.push_back(Ordinate{m, m, m, 1.0});
}

void build_s4(std::vector<Ordinate>& out) {
  const double m1 = 0.3500212;
  const double m2 = 0.8688903;
  const double w = 1.0 / 3.0;
  out.push_back(Ordinate{m1, m1, m2, w});
  out.push_back(Ordinate{m1, m2, m1, w});
  out.push_back(Ordinate{m2, m1, m1, w});
}

void build_s6(std::vector<Ordinate>& out) {
  const double m1 = 0.2666355;
  const double m2 = 0.6815076;
  const double m3 = 0.9261808;
  const double w1 = 0.1761263;  // permutations of (1,1,3)
  const double w2 = 0.1572071;  // permutations of (1,2,2)
  out.push_back(Ordinate{m1, m1, m3, w1});
  out.push_back(Ordinate{m1, m3, m1, w1});
  out.push_back(Ordinate{m3, m1, m1, w1});
  out.push_back(Ordinate{m1, m2, m2, w2});
  out.push_back(Ordinate{m2, m1, m2, w2});
  out.push_back(Ordinate{m2, m2, m1, w2});
}

void build_s8(std::vector<Ordinate>& out) {
  const double m1 = 0.2182179;
  const double m2 = 0.5773503;
  const double m3 = 0.7867958;
  const double m4 = 0.9511897;
  const double w1 = 0.1209877;  // (1,1,4)
  const double w2 = 0.0907407;  // (1,2,3)
  const double w3 = 0.0925926;  // (2,2,2)
  out.push_back(Ordinate{m1, m1, m4, w1});
  out.push_back(Ordinate{m1, m4, m1, w1});
  out.push_back(Ordinate{m4, m1, m1, w1});
  out.push_back(Ordinate{m1, m2, m3, w2});
  out.push_back(Ordinate{m1, m3, m2, w2});
  out.push_back(Ordinate{m2, m1, m3, w2});
  out.push_back(Ordinate{m3, m1, m2, w2});
  out.push_back(Ordinate{m2, m3, m1, w2});
  out.push_back(Ordinate{m3, m2, m1, w2});
  out.push_back(Ordinate{m2, m2, m2, w3});
}

}  // namespace

std::array<Octant, 8> all_octants() {
  // Sweep order follows Sweep3D's octant loop: each octant starts the
  // wave at a different corner of the process grid.
  return {{
      {+1, +1, +1},
      {-1, +1, +1},
      {+1, -1, +1},
      {-1, -1, +1},
      {+1, +1, -1},
      {-1, +1, -1},
      {+1, -1, -1},
      {-1, -1, -1},
  }};
}

SnQuadrature::SnQuadrature(int n) : order_(n) {
  switch (n) {
    case 2: build_s2(ordinates_); break;
    case 4: build_s4(ordinates_); break;
    case 6: build_s6(ordinates_); break;
    case 8: build_s8(ordinates_); break;
    default:
      throw std::invalid_argument(
          "SnQuadrature: only S2, S4, S6, S8 level-symmetric sets");
  }
  // Normalize octant weights to sum to exactly 1/8 so the full-sphere
  // weight is 1 (scalar flux = plain weighted sum).
  double sum = 0.0;
  for (const auto& o : ordinates_) sum += o.w;
  for (auto& o : ordinates_) o.w *= 0.125 / sum;
}

double SnQuadrature::total_weight() const noexcept {
  double sum = 0.0;
  for (const auto& o : ordinates_) sum += o.w;
  return 8.0 * sum;
}

MomentTable::MomentTable(const SnQuadrature& quad, int l_max, int nm_cap)
    : l_max_(l_max), mm_(quad.angles_per_octant()) {
  if (l_max < 0 || l_max > 3)
    throw std::invalid_argument("MomentTable: l_max must be 0..3");
  nm_ = (l_max + 1) * (l_max + 1);
  if (nm_cap < 0 || nm_cap > nm_)
    throw std::invalid_argument("MomentTable: nm_cap out of range");
  if (nm_cap > 0) nm_ = nm_cap;

  l_of_n_.resize(nm_);
  l_of_n_[0] = 0;
  for (int n = 1; n < nm_ && n < 4; ++n) l_of_n_[n] = 1;
  for (int n = 4; n < nm_ && n < 9; ++n) l_of_n_[n] = 2;
  for (int n = 9; n < nm_; ++n) l_of_n_[n] = 3;

  const auto octants = all_octants();
  const double s3 = std::sqrt(3.0);
  for (int iq = 0; iq < 8; ++iq) {
    auto& table = pn_[iq];
    table.resize(static_cast<std::size_t>(mm_) * nm_);
    for (int m = 0; m < mm_; ++m) {
      const Ordinate& o = quad.octant_ordinates()[m];
      const double mu = octants[iq].sx * o.mu;
      const double eta = octants[iq].sy * o.eta;
      const double xi = octants[iq].sz * o.xi;
      double* row = table.data() + static_cast<std::size_t>(m) * nm_;
      // Real basis satisfying the addition theorem
      //   P_l(O . O') = sum_{n in l} R_n(O) R_n(O'),
      // so the scattering source is q_m = sum_n (2 l_n + 1) sigma_{s,l}
      // R_n(m) phi_n with full-sphere weight normalization 1.
      // Racah-normalized real spherical harmonics through l = 3: each
      // l-band satisfies the addition theorem
      //   sum_{n in l} R_n(O) R_n(O') = P_l(O . O')
      // (verified by parameterized tests), so the scattering source
      // q_m = sum_n (2l_n+1) sigma_l R_n phi_n is exact anisotropic
      // P_l scattering under the full-sphere weight normalization 1.
      const double s15 = std::sqrt(15.0);
      const double basis[16] = {
          1.0,
          mu,
          eta,
          xi,
          0.5 * (3.0 * xi * xi - 1.0),
          s3 * mu * xi,
          s3 * eta * xi,
          0.5 * s3 * (mu * mu - eta * eta),
          s3 * mu * eta,
          0.5 * xi * (5.0 * xi * xi - 3.0),
          std::sqrt(3.0 / 8.0) * mu * (5.0 * xi * xi - 1.0),
          std::sqrt(3.0 / 8.0) * eta * (5.0 * xi * xi - 1.0),
          0.5 * s15 * xi * (mu * mu - eta * eta),
          s15 * mu * eta * xi,
          std::sqrt(5.0 / 8.0) * mu * (mu * mu - 3.0 * eta * eta),
          std::sqrt(5.0 / 8.0) * eta * (3.0 * mu * mu - eta * eta)};
      for (int n = 0; n < nm_; ++n) row[n] = basis[n];
    }
  }
}

}  // namespace cellsweep::sweep
