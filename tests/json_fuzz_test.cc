// Seeded fuzz / property tests for the two text parsers.
//
// Property under test: for any input -- valid, mutated, truncated or
// pure garbage -- util::parse_json either returns a value or throws
// util::JsonError, and sweep::parse_deck_string either returns a deck
// or throws sweep::DeckError. Neither may crash, hang, allocate
// unboundedly, or leak a foreign exception type. All randomness flows
// through util::SplitMix64, so every failure reproduces from the case
// number printed in the assertion message.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "sweep/deck.h"
#include "util/json.h"
#include "util/rng.h"

namespace cellsweep {
namespace {

// ---------------------------------------------------------------------------
// Shared fuzz plumbing.

/// Outcome of one parse attempt, for determinism comparisons.
enum class Outcome : unsigned char { kOk, kTypedError, kForeignError };

/// Mutates @p text in place: byte flips, inserts, deletes, span
/// duplication and truncation, all drawn from @p rng.
void mutate(std::string& text, util::SplitMix64& rng) {
  const int edits = 1 + static_cast<int>(rng.next_below(4));
  for (int e = 0; e < edits; ++e) {
    if (text.empty()) {
      text.push_back(static_cast<char>(rng.next_below(256)));
      continue;
    }
    const std::size_t pos = rng.next_below(text.size());
    switch (rng.next_below(5)) {
      case 0:  // flip one byte to an arbitrary value
        text[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:  // insert a byte biased toward structural characters
        text.insert(pos, 1, "{}[]\",:0123456789.eE+-tfn \\"[rng.next_below(27)]);
        break;
      case 2:  // delete a short span
        text.erase(pos, 1 + rng.next_below(4));
        break;
      case 3: {  // duplicate a short span elsewhere
        const std::size_t len =
            std::min<std::size_t>(1 + rng.next_below(8), text.size() - pos);
        text.insert(rng.next_below(text.size()), text.substr(pos, len));
        break;
      }
      default:  // truncate the tail
        text.resize(pos);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// util::parse_json

/// Corpus of valid documents in the shapes this repo actually emits
/// (metrics JSON, BENCH_*.json): nested objects, arrays of numbers,
/// escaped strings, null, bools, exponents and negative values.
const char* const kJsonCorpus[] = {
    R"({"schema":"cellsweep-metrics-v4","seconds":1.25e-3,"faults":null})",
    R"({"counters":{"mfc/retries":0,"spe0":{"busy_s":0.125,"idle_s":1}}})",
    R"([1,-2,3.5,4e8,0.0625,[true,false,null],"text with \"quotes\""])",
    R"({"runs":[{"name":"healthy","ok":true},{"name":"spe7_down","ok":true}]})",
    R"("a string with A escapes \n and \\ slashes")",
    R"({"empty_obj":{},"empty_arr":[],"nested":[[[0]]],"neg":-0.5})",
    "  -17.5e-2  ",
    "null",
};

/// Parses @p text under the fuzz contract: success or JsonError only.
Outcome parse_json_outcome(const std::string& text, const char* label) {
  try {
    (void)util::parse_json(text);
    return Outcome::kOk;
  } catch (const util::JsonError&) {
    return Outcome::kTypedError;
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": foreign exception " << e.what()
                  << " for input: " << text;
  } catch (...) {
    ADD_FAILURE() << label << ": non-std exception for input: " << text;
  }
  return Outcome::kForeignError;
}

TEST(JsonFuzz, CorpusParsesClean) {
  for (const char* doc : kJsonCorpus)
    EXPECT_NO_THROW((void)util::parse_json(doc)) << doc;
}

TEST(JsonFuzz, MutatedDocumentsThrowTypedErrorOrParse) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    util::SplitMix64 rng(0xfadedbee00ULL + seed);
    std::string doc =
        kJsonCorpus[rng.next_below(std::size(kJsonCorpus))];
    mutate(doc, rng);
    const std::string label = "json mutation seed " + std::to_string(seed);
    EXPECT_NE(parse_json_outcome(doc, label.c_str()), Outcome::kForeignError);
  }
}

TEST(JsonFuzz, EveryPrefixOfAValidDocumentIsHandled) {
  for (const char* doc : kJsonCorpus) {
    const std::string full(doc);
    for (std::size_t len = 0; len < full.size(); ++len)
      (void)parse_json_outcome(full.substr(0, len), "json prefix");
  }
}

TEST(JsonFuzz, RandomGarbageNeverCrashes) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::SplitMix64 rng(0x6a7b6a7bULL ^ (seed * 977));
    std::string junk(rng.next_below(120), '\0');
    for (char& c : junk) c = static_cast<char>(rng.next_below(256));
    (void)parse_json_outcome(junk, "json garbage");
  }
}

/// @p depth nested arrays: "[[[...]]]", optionally left unclosed.
std::string nested_arrays(std::size_t depth, bool closed = true) {
  std::string doc(depth, '[');
  if (closed) doc.append(depth, ']');
  return doc;
}

TEST(JsonFuzz, NestingUpToTheDepthCapParses) {
  EXPECT_NO_THROW((void)util::parse_json(nested_arrays(1)));
  EXPECT_NO_THROW(
      (void)util::parse_json(nested_arrays(util::kMaxJsonDepth - 1)));
  EXPECT_NO_THROW(
      (void)util::parse_json(nested_arrays(util::kMaxJsonDepth)));
}

TEST(JsonFuzz, NestingJustPastTheCapThrowsTypedError) {
  EXPECT_THROW((void)util::parse_json(nested_arrays(util::kMaxJsonDepth + 1)),
               util::JsonError);
}

TEST(JsonFuzz, PathologicalDepthFailsInsteadOfOverflowingTheStack) {
  // Before the depth cap this was a stack overflow (one C++ frame per
  // '['), i.e. a crash any client feeding untrusted JSON could trigger.
  // Unclosed input makes the point sharper: the parser must reject at
  // the cap on the way *down*, not after matching brackets.
  EXPECT_THROW((void)util::parse_json(nested_arrays(200000, false)),
               util::JsonError);
  EXPECT_THROW((void)util::parse_json(nested_arrays(200000)),
               util::JsonError);
}

TEST(JsonFuzz, MixedObjectArrayNestingCountsBothContainerKinds) {
  // Each "{"k":[" pair opens two containers; the cap counts them all.
  std::string under, over;
  for (std::size_t i = 0; i < util::kMaxJsonDepth / 2; ++i)
    under += R"({"k":[)";
  over = under + R"({"k":[)";
  std::string under_closed = under + "0";
  std::string over_closed = over + "0";
  for (std::size_t i = 0; i < util::kMaxJsonDepth / 2; ++i)
    under_closed += "]}";
  for (std::size_t i = 0; i < util::kMaxJsonDepth / 2 + 1; ++i)
    over_closed += "]}";
  EXPECT_NO_THROW((void)util::parse_json(under_closed));
  EXPECT_THROW((void)util::parse_json(over_closed), util::JsonError);
}

TEST(JsonFuzz, DepthErrorMessageNamesTheCap) {
  try {
    (void)util::parse_json(nested_arrays(util::kMaxJsonDepth + 1));
    FAIL() << "depth cap not enforced";
  } catch (const util::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  std::to_string(util::kMaxJsonDepth)),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonFuzz, OutcomesAreDeterministicPerSeed) {
  auto sweep_outcomes = [] {
    std::vector<Outcome> out;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
      util::SplitMix64 rng(0xd00dfeedULL + seed);
      std::string doc =
          kJsonCorpus[rng.next_below(std::size(kJsonCorpus))];
      mutate(doc, rng);
      out.push_back(parse_json_outcome(doc, "json determinism"));
    }
    return out;
  };
  EXPECT_EQ(sweep_outcomes(), sweep_outcomes());
}

// ---------------------------------------------------------------------------
// sweep::parse_deck_string

const char* const kDeckCorpus[] = {
    // The paper's benchmark deck shape.
    "it 16  jt 16  kt 16\n"
    "dx 0.04  dy 0.04  dz 0.04\n"
    "mk 4\nmmi 3\nsn 6\nmoments 4\niterations 4\nfixup_from 2\n"
    "material benchmark 1.0 0.5 0.2 source 1.0\n",
    // Regions, boundaries and comments.
    "# shielded block\nit 8 jt 8 kt 8\n"
    "material air 0.1 0.05 source 0.0\n"
    "material shield 8.0 0.4 source 0.0\n"
    "region 1 2 6 0 8 0 8\n"
    "bc west reflective\nbc top vacuum\n",
    // Keys sharing lines, acceleration toggle.
    "it 8 jt 10 kt 12 epsilon 1e-5 accelerate 1\n"
    "material m 1.0 0.5 source 1.0\n",
};

Outcome parse_deck_outcome(const std::string& text, const char* label) {
  try {
    (void)sweep::parse_deck_string(text);
    return Outcome::kOk;
  } catch (const sweep::DeckError&) {
    return Outcome::kTypedError;
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": foreign exception " << e.what()
                  << " for deck: " << text;
  } catch (...) {
    ADD_FAILURE() << label << ": non-std exception for deck: " << text;
  }
  return Outcome::kForeignError;
}

TEST(DeckFuzz, CorpusParsesClean) {
  for (const char* deck : kDeckCorpus)
    EXPECT_NO_THROW((void)sweep::parse_deck_string(deck)) << deck;
}

TEST(DeckFuzz, MutatedDecksThrowDeckErrorOrParse) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::SplitMix64 rng(0xdecdecdecULL + seed);
    std::string deck =
        kDeckCorpus[rng.next_below(std::size(kDeckCorpus))];
    mutate(deck, rng);
    const std::string label = "deck mutation seed " + std::to_string(seed);
    EXPECT_NE(parse_deck_outcome(deck, label.c_str()), Outcome::kForeignError);
  }
}

TEST(DeckFuzz, RandomTokenSoupNeverCrashes) {
  // Decks assembled from the parser's own vocabulary plus junk: this
  // reaches deeper than byte noise because most lines pass the keyword
  // switch and die (or survive) in the value handling instead.
  const char* const vocab[] = {
      "it",     "jt",       "kt",       "dx",         "dy",     "dz",
      "mk",     "mmi",      "sn",       "moments",    "region", "material",
      "bc",     "west",     "top",      "reflective", "vacuum", "source",
      "epsilon", "iterations", "accelerate", "fixup_from",
      "8",      "0",        "-3",       "1.0",        "1e99",   "nan",
      "0.5",    "99999999999999999999", "zz",         "#",
  };
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::SplitMix64 rng(0x50a1ad00ULL + seed * 31);
    std::string deck;
    const int tokens = 2 + static_cast<int>(rng.next_below(40));
    for (int t = 0; t < tokens; ++t) {
      deck += vocab[rng.next_below(std::size(vocab))];
      deck += rng.next_below(5) == 0 ? '\n' : ' ';
    }
    const std::string label = "deck soup seed " + std::to_string(seed);
    (void)parse_deck_outcome(deck, label.c_str());
  }
}

TEST(DeckFuzz, OversizedGridsAreRejectedBeforeAllocation) {
  // The robustness caps must fire as DeckError, not as bad_alloc or an
  // overflowed cells() product.
  EXPECT_THROW((void)sweep::parse_deck_string(
                   "it 100000 jt 100000 kt 100000\n"
                   "material m 1.0 0.5 source 1.0\n"),
               sweep::DeckError);
  EXPECT_THROW((void)sweep::parse_deck_string(
                   "it 4096 jt 4096 kt 4096\n"
                   "material m 1.0 0.5 source 1.0\n"),
               sweep::DeckError);
  EXPECT_THROW((void)sweep::parse_deck_string(
                   "it 8 jt 8 kt 8 moments 5000\n"
                   "material m 1.0 0.5 source 1.0\n"),
               sweep::DeckError);
}

}  // namespace
}  // namespace cellsweep
