// google-benchmark microbenchmarks of the host-side components: the
// functional Sn kernels (scalar vs emulated-SIMD), the SPU pipeline
// scheduler and the discrete resource models. These measure *this
// library's* throughput on the host, complementing the simulated-time
// benches that regenerate the paper's figures.
#include <benchmark/benchmark.h>

#include "cellsim/spu_pipeline.h"
#include "core/kernel_timing.h"
#include "core/orchestrator.h"
#include "sweep/kernel.h"
#include "sweep/kernel_simd.h"
#include "sweep/problem.h"
#include "sweep/sweeper.h"
#include "util/aligned.h"

namespace {

using namespace cellsweep;

template <typename Real>
struct BenchLines {
  explicit BenchLines(int it, int nm) : it_(it), nm_(nm) {
    const std::size_t pad = util::padded_extent<Real>(it);
    src.assign(static_cast<std::size_t>(nm) * pad, Real(1));
    sigt.assign(pad, Real(1));
    pn_src.assign(nm, Real(0.5));
    pn_acc.assign(nm, Real(0.05));
    for (int l = 0; l < sweep::kBundleLines; ++l) {
      flux[l].assign(static_cast<std::size_t>(nm) * pad, Real(0));
      phi_j[l].assign(pad, Real(0.1));
      phi_k[l].assign(pad, Real(0.1));
      phi_i[l] = Real(0.1);
    }
  }
  sweep::LineArgs<Real> args(int l) {
    sweep::LineArgs<Real> a;
    a.it = it_;
    a.dir = +1;
    a.sigt = sigt.data();
    a.src = src.data();
    a.flux = flux[l].data();
    a.mstride = static_cast<std::int64_t>(util::padded_extent<Real>(it_));
    a.pn_src = pn_src.data();
    a.pn_acc = pn_acc.data();
    a.nm = nm_;
    a.ci = a.cj = a.ck = Real(10);
    a.phi_j = phi_j[l].data();
    a.phi_k = phi_k[l].data();
    a.phi_i = &phi_i[l];
    return a;
  }
  int it_, nm_;
  util::AlignedVector<Real> src, sigt;
  std::vector<Real> pn_src, pn_acc;
  util::AlignedVector<Real> flux[sweep::kBundleLines],
      phi_j[sweep::kBundleLines], phi_k[sweep::kBundleLines];
  Real phi_i[sweep::kBundleLines];
};

void BM_ScalarKernelLine(benchmark::State& state) {
  BenchLines<double> data(static_cast<int>(state.range(0)),
                          sweep::kBenchmarkMoments);
  for (auto _ : state) {
    sweep::LineArgs<double> a = data.args(0);
    sweep::sweep_line_scalar(a, false, nullptr);
    benchmark::DoNotOptimize(data.phi_i[0]);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScalarKernelLine)->Arg(50)->Arg(100);

void BM_SimdBundleKernel(benchmark::State& state) {
  const int it = static_cast<int>(state.range(0));
  BenchLines<double> data(it, sweep::kBenchmarkMoments);
  sweep::BundleScratch<double> scratch(it);
  for (auto _ : state) {
    sweep::LineArgs<double> bundle[4] = {data.args(0), data.args(1),
                                         data.args(2), data.args(3)};
    sweep::sweep_bundle_simd(bundle, 4, false, scratch, nullptr);
    benchmark::DoNotOptimize(data.phi_i[0]);
  }
  state.SetItemsProcessed(state.iterations() * 4 * it);
}
BENCHMARK(BM_SimdBundleKernel)->Arg(50)->Arg(100);

void BM_SimdBundleKernelWithFixups(benchmark::State& state) {
  const int it = static_cast<int>(state.range(0));
  BenchLines<double> data(it, sweep::kBenchmarkMoments);
  sweep::BundleScratch<double> scratch(it);
  for (auto _ : state) {
    sweep::LineArgs<double> bundle[4] = {data.args(0), data.args(1),
                                         data.args(2), data.args(3)};
    sweep::sweep_bundle_simd(bundle, 4, true, scratch, nullptr);
    benchmark::DoNotOptimize(data.phi_i[0]);
  }
  state.SetItemsProcessed(state.iterations() * 4 * it);
}
BENCHMARK(BM_SimdBundleKernelWithFixups)->Arg(50);

void BM_FullSweepIteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const sweep::Problem p = sweep::Problem::benchmark_cube(n);
  sweep::SnQuadrature quad(6);
  sweep::SweepState<double> sweeper(p, quad, 2, sweep::kBenchmarkMoments);
  sweep::SweepConfig cfg;
  cfg.mk = n >= 10 ? 5 : 2;
  while (n % cfg.mk != 0) --cfg.mk;
  cfg.mmi = 3;
  for (auto _ : state) {
    sweeper.build_source();
    sweeper.sweep(cfg, false);
    benchmark::DoNotOptimize(sweeper.flux().moment_sum(0));
  }
  state.SetItemsProcessed(state.iterations() * p.grid().cells() * 48);
}
BENCHMARK(BM_FullSweepIteration)->Arg(10)->Arg(20);

void BM_PipelineScheduler(benchmark::State& state) {
  const spu::Trace trace = core::record_simd_chunk_trace(
      core::Precision::kDouble, 4, 50, sweep::kBenchmarkMoments, false);
  cell::SpuPipeline pipe{cell::CellSpec{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.schedule(trace).cycles);
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_PipelineScheduler);

void BM_TraceRecording(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::record_simd_chunk_trace(core::Precision::kDouble, 4, 50,
                                      sweep::kBenchmarkMoments, false)
            .size());
  }
}
BENCHMARK(BM_TraceRecording);

void BM_TimedRun50Cubed(benchmark::State& state) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(50);
  const core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  for (auto _ : state) {
    core::CellSweep3D runner(p, cfg);
    benchmark::DoNotOptimize(runner.run(core::RunMode::kTraceDriven).seconds);
  }
}
BENCHMARK(BM_TimedRun50Cubed)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
