// Quickstart: solve a small Sweep3D problem on the simulated Cell BE.
//
//   $ ./quickstart [--cube=20] [--iterations=8] [--stage=final]
//
// Runs the functional solver (real transport physics) together with the
// machine model, then prints the physics results and the simulated
// performance report -- the two halves this library provides.
#include <cstdio>
#include <iostream>

#include "core/orchestrator.h"
#include "util/cli.h"
#include "util/units.h"

using namespace cellsweep;

int main(int argc, char** argv) {
  util::CliParser cli(
      "CellSweep quickstart: Sn transport on a simulated Cell BE");
  cli.add_flag("cube", "20", "cube size (cells per side)");
  cli.add_flag("iterations", "8", "source iterations");
  cli.add_flag("stage", "final",
               "optimization stage: ppe | initial | simd | final");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  int cube, iterations;
  try {
    cube = static_cast<int>(cli.get_int("cube"));
    iterations = static_cast<int>(cli.get_int("iterations"));
  } catch (const util::CliError& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  const std::string stage_name = cli.get_string("stage");
  core::OptimizationStage stage = core::OptimizationStage::kSpeLsPoke;
  if (stage_name == "ppe") stage = core::OptimizationStage::kPpeXlc;
  else if (stage_name == "initial") stage = core::OptimizationStage::kSpeInitial;
  else if (stage_name == "simd") stage = core::OptimizationStage::kSpeSimd;

  // 1. Define the problem: the paper's homogeneous benchmark cube.
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);

  // 2. Pick a Cell configuration (one of the Figure 5 ladder stages).
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(stage);
  cfg.sweep.max_iterations = iterations;
  cfg.sweep.fixup_from_iteration = cfg.sweep.max_iterations - 2;
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (cube % d == 0) mk = d;
  cfg.sweep.mk = mk;

  // 3. Run: functional mode solves the physics while the machine model
  //    accumulates simulated time.
  core::CellSweep3D runner(problem, cfg);
  const core::RunReport r = runner.run(core::RunMode::kFunctional);

  std::cout << "Problem: " << cube << "^3 cells, S6 quadrature, "
            << sweep::kBenchmarkMoments << " flux moments\n\n";
  std::cout << "Physics results\n"
            << "  iterations        : " << r.solve->iterations << "\n"
            << "  final flux change : " << r.solve->final_change << "\n"
            << "  absorption rate   : " << r.absorption << " /s\n"
            << "  leakage rate      : " << r.leakage.total() << " /s\n"
            << "  balance closure   : "
            << util::format_percent((r.absorption + r.leakage.total()) /
                                    problem.total_external_source())
            << " of the source accounted for\n"
            << "  fixup cells       : " << r.solve->totals.fixup_cells
            << "\n\n";
  std::cout << "Simulated Cell BE performance (" << core::stage_name(stage)
            << ")\n"
            << "  execution time    : " << util::format_seconds(r.seconds)
            << "\n"
            << "  grind time        : "
            << util::format_seconds(r.grind_seconds) << " per cell-solve\n"
            << "  DMA traffic       : " << util::format_bytes(r.traffic_bytes)
            << "\n"
            << "  achieved          : "
            << util::format_flops(r.achieved_flops_per_s) << "\n"
            << "  memory bound      : "
            << util::format_seconds(r.memory_bound_s) << "\n"
            << "  local store used  : " << r.ls_high_water / 1024
            << " KB per SPE\n";
  return 0;
}
