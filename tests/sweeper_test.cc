// Tests for the full sweep driver: loop-structure correctness,
// blocking invariance (MK/MMI must not change the answer), kernel
// equivalence at solver level, particle balance, convergence, symmetry.
#include <gtest/gtest.h>

#include <tuple>

#include "sweep/problem.h"
#include "sweep/quadrature.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {
namespace {

SweepConfig config(int mk, int mmi, KernelKind kernel, int iters = 4,
                   int fixup_from = 99) {
  SweepConfig cfg;
  cfg.mk = mk;
  cfg.mmi = mmi;
  cfg.kernel = kernel;
  cfg.max_iterations = iters;
  cfg.fixup_from_iteration = fixup_from;
  return cfg;
}

TEST(SweepConfig, Validation) {
  SweepConfig cfg;
  cfg.mk = 3;
  EXPECT_THROW(cfg.validate(10, 6), std::invalid_argument);  // 3 !| 10
  cfg.mk = 5;
  cfg.mmi = 4;
  EXPECT_THROW(cfg.validate(10, 6), std::invalid_argument);  // 4 !| 6
  cfg.mmi = 3;
  EXPECT_NO_THROW(cfg.validate(10, 6));
  cfg.max_iterations = 0;
  EXPECT_THROW(cfg.validate(10, 6), std::invalid_argument);
}

TEST(Sweeper, FluxIsPositiveWithPositiveSource) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(state, config(4, 3, KernelKind::kSimd));
  const auto& g = p.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        ASSERT_GT(state.flux().at(0, k, j, i), 0.0)
            << i << "," << j << "," << k;
}

TEST(Sweeper, CentralSymmetryOfTheCube) {
  // Homogeneous cube with uniform source: with the *full* moment set
  // the scalar flux is symmetric under all reflections and axis
  // exchanges. (The truncated benchmark set drops azimuthal l=2
  // moments, which breaks exact axis exchange -- checked separately.)
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, /*nm_cap=*/0);
  solve_source_iteration(state, config(3, 3, KernelKind::kSimd));
  const auto& g = p.grid();
  const auto& f = state.flux();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i) {
        const double v = f.at(0, k, j, i);
        EXPECT_NEAR(v, f.at(0, k, j, g.it - 1 - i), 1e-11);
        EXPECT_NEAR(v, f.at(0, k, g.jt - 1 - j, i), 1e-11);
        EXPECT_NEAR(v, f.at(0, g.kt - 1 - k, j, i), 1e-11);
        // Axis exchange holds to the precision of the 7-digit
        // tabulated quadrature constants.
        EXPECT_NEAR(v, f.at(0, i, j, k), 1e-8);
      }
}

// Blocking parameters (MK, MMI) must not change the physics at all --
// they only reorganize the wavefront. This is the key structural
// invariant of the sweep() loop nest.
using BlockingParam = std::tuple<int, int>;
class BlockingInvariance : public ::testing::TestWithParam<BlockingParam> {};

TEST_P(BlockingInvariance, FluxBitIdenticalAcrossBlocking) {
  const auto [mk, mmi] = GetParam();
  const Problem p = Problem::benchmark_cube(12);
  SnQuadrature quad(6);

  SweepState<double> ref(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(ref, config(12, 6, KernelKind::kSimd, 3));

  SweepState<double> alt(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(alt, config(mk, mmi, KernelKind::kSimd, 3));

  EXPECT_EQ(MomentField<double>::max_abs_diff_moment0(ref.flux(), alt.flux()),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Blockings, BlockingInvariance,
    ::testing::Values(BlockingParam{1, 1}, BlockingParam{2, 2},
                      BlockingParam{3, 3}, BlockingParam{4, 6},
                      BlockingParam{6, 1}, BlockingParam{12, 2},
                      BlockingParam{12, 3}));

TEST(Sweeper, ScalarAndSimdSolversBitIdentical) {
  const Problem p = Problem::benchmark_cube(10);
  SnQuadrature quad(6);
  SweepState<double> a(p, quad, 2, kBenchmarkMoments);
  SweepState<double> b(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(a, config(5, 3, KernelKind::kScalar, 4, 2));
  solve_source_iteration(b, config(5, 3, KernelKind::kSimd, 4, 2));
  EXPECT_EQ(MomentField<double>::max_abs_diff_moment0(a.flux(), b.flux()),
            0.0);
}

TEST(Sweeper, ParticleBalanceAtConvergence) {
  // source = absorption + leakage, to the convergence tolerance.
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  SweepConfig cfg = config(4, 3, KernelKind::kSimd, 200);
  cfg.epsilon = 1e-11;
  const SolveResult r = solve_source_iteration(state, cfg);
  ASSERT_TRUE(r.converged);
  const double src = p.total_external_source();
  const double sink = state.absorption_rate() + state.leakage().total();
  EXPECT_NEAR(sink / src, 1.0, 1e-8);
}

TEST(Sweeper, LeakageSymmetricOnTheCube) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, /*nm_cap=*/0);
  solve_source_iteration(state, config(4, 3, KernelKind::kSimd));
  const LeakageTally& L = state.leakage();
  EXPECT_NEAR(L.west, L.east, 1e-10);
  EXPECT_NEAR(L.north, L.south, 1e-10);
  EXPECT_NEAR(L.top, L.bottom, 1e-10);
  // Cross-axis equality is limited by the 7-digit quadrature table.
  EXPECT_NEAR(L.west, L.top, 1e-7);
}

TEST(Sweeper, TruncatedMomentsKeepReflectionSymmetry) {
  // The benchmark's truncated set still preserves the reflection
  // symmetries (each kept moment is odd or even in each cosine).
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(state, config(3, 3, KernelKind::kSimd));
  const auto& g = p.grid();
  const auto& f = state.flux();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i) {
        const double v = f.at(0, k, j, i);
        EXPECT_NEAR(v, f.at(0, k, j, g.it - 1 - i), 1e-11);
        EXPECT_NEAR(v, f.at(0, k, g.jt - 1 - j, i), 1e-11);
        EXPECT_NEAR(v, f.at(0, g.kt - 1 - k, j, i), 1e-11);
      }
}

TEST(Sweeper, SourceIterationMonotoneGrowth) {
  // With a positive fixed source and no negative sources, the scalar
  // flux grows monotonically over source iterations.
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  double prev_sum = 0.0;
  SweepConfig cfg = config(3, 3, KernelKind::kSimd, 1);
  for (int iter = 0; iter < 6; ++iter) {
    state.build_source();
    state.sweep(cfg, false);
    const double sum = state.flux().moment_sum(0);
    EXPECT_GT(sum, prev_sum);
    prev_sum = sum;
  }
}

TEST(Sweeper, ConvergenceDetected) {
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  SweepConfig cfg = config(3, 3, KernelKind::kSimd, 500);
  cfg.epsilon = 1e-10;
  const SolveResult r = solve_source_iteration(state, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_change, 1e-10);
  EXPECT_LT(r.iterations, 500);
  // Scattering ratio 0.5: roughly one decade per 3-4 iterations.
  EXPECT_GT(r.iterations, 5);
}

TEST(Sweeper, FixupsEngageOnShieldProblem) {
  const Problem p = Problem::shield(12);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  const SolveResult r =
      solve_source_iteration(state, config(4, 3, KernelKind::kSimd, 4, 0));
  EXPECT_GT(r.totals.fixup_cells, 0u);
  // Fixups keep the scalar flux nonnegative everywhere.
  const auto& g = p.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        ASSERT_GE(state.flux().at(0, k, j, i), 0.0);
}

TEST(Sweeper, ShieldAttenuatesFlux) {
  // Flux beyond the shield slab must be much lower than in front.
  const Problem p = Problem::shield(16);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(state, config(4, 3, KernelKind::kSimd, 8, 0));
  const int n = p.grid().it;
  const double before = state.flux().at(0, 1, 1, n / 4);
  const double after = state.flux().at(0, 1, 1, 3 * n / 4);
  EXPECT_GT(before, 100.0 * after);
}

TEST(Sweeper, DiagonalObserverSeesAllLines) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  SweepConfig cfg = config(4, 3, KernelKind::kSimd, 1);
  state.build_source();
  std::uint64_t lines = 0, diagonals = 0;
  int max_nlines = 0;
  const SweepRunStats stats =
      state.sweep(cfg, false, [&](const DiagonalWork& w) {
        lines += w.nlines;
        ++diagonals;
        max_nlines = std::max(max_nlines, w.nlines);
        EXPECT_EQ(w.it, 8);
        EXPECT_FALSE(w.fixup);
      });
  // Total I-lines per sweep: octants x angles x jt x kt.
  EXPECT_EQ(lines, 8u * 6u * 8u * 8u);
  EXPECT_EQ(stats.lines, lines);
  EXPECT_LE(max_nlines, cfg.mk * cfg.mmi);
  EXPECT_GT(diagonals, 0u);
}

TEST(Sweeper, StatsCountCells) {
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  state.build_source();
  const SweepRunStats stats =
      state.sweep(config(3, 3, KernelKind::kSimd, 1), false);
  EXPECT_EQ(stats.cells, 8u * 6u * 6u * 6u * 6u);  // octants*angles*cells
}

TEST(Sweeper, SinglePrecisionTracksDouble) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepState<double> d(p, quad, 2, kBenchmarkMoments);
  SweepState<float> f(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(d, config(4, 3, KernelKind::kSimd, 4));
  solve_source_iteration(f, config(4, 3, KernelKind::kSimd, 4));
  const auto& g = p.grid();
  for (int k = 0; k < g.kt; k += 2)
    for (int j = 0; j < g.jt; j += 3)
      for (int i = 0; i < g.it; i += 3) {
        const double dv = d.flux().at(0, k, j, i);
        const double fv = f.flux().at(0, k, j, i);
        EXPECT_NEAR(fv / dv, 1.0, 1e-4) << i << "," << j << "," << k;
      }
}

TEST(Sweeper, P3ScatteringSolves) {
  // Full l=3 anisotropy: 16 moments, kernels at their register limit.
  Grid g = Grid::cube(6);
  Material m{"aniso", 1.0, {0.5, 0.25, 0.1, 0.04}, 1.0};
  const Problem p(g, {m}, std::vector<std::uint8_t>(g.cells(), 0));
  SnQuadrature quad(6);
  SweepState<double> scalar_state(p, quad, 3, 0);
  SweepState<double> simd_state(p, quad, 3, 0);
  EXPECT_EQ(scalar_state.nm(), 16);
  solve_source_iteration(scalar_state, config(3, 3, KernelKind::kScalar, 3));
  solve_source_iteration(simd_state, config(3, 3, KernelKind::kSimd, 3));
  EXPECT_EQ(MomentField<double>::max_abs_diff_moment0(scalar_state.flux(),
                                                      simd_state.flux()),
            0.0);
  EXPECT_GT(scalar_state.flux().moment_sum(0), 0.0);
}

TEST(Sweeper, FullMomentSetAlsoWorks) {
  const Problem p = Problem::benchmark_cube(6);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, /*nm_cap=*/0);
  EXPECT_EQ(state.nm(), 9);
  const SolveResult r =
      solve_source_iteration(state, config(3, 3, KernelKind::kSimd, 3));
  EXPECT_EQ(r.iterations, 3);
  EXPECT_GT(state.flux().moment_sum(0), 0.0);
}

}  // namespace
}  // namespace cellsweep::sweep
