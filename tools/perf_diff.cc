// perf_diff: compare two BENCH_<scenario>.json files and fail on
// performance regressions.
//
//   $ ./perf_diff out/BENCH_fig5.json bench/baselines/BENCH_fig5.json
//   $ ./perf_diff cur.json base.json --threshold 0.1 \
//         --metric traffic_bytes=0.05
//
// Exit codes: 0 = within thresholds (improvements included), 1 = at
// least one metric regressed, 2 = usage / schema / scenario /
// fingerprint error (the files are not comparable).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/perf_diff.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

using namespace cellsweep;

namespace {

constexpr const char* kUsage =
    "Usage: perf_diff <current.json> <baseline.json>\n"
    "           [--threshold X]        relative growth allowed "
    "(default 0.25)\n"
    "           [--metric name=X]...   add/override one metric's "
    "threshold\n"
    "           [--no-fingerprint]     skip the experiment-fingerprint "
    "check\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

/// Parses "--metric name=X"; returns false on malformed input.
bool parse_metric_arg(const std::string& arg,
                      analysis::PerfDiffOptions& opt) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  char* rest = nullptr;
  const double thr = std::strtod(arg.c_str() + eq + 1, &rest);
  if (rest == nullptr || *rest != '\0' || !(thr >= 0)) return false;
  opt.metric_thresholds.emplace_back(arg.substr(0, eq), thr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  analysis::PerfDiffOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--no-fingerprint") {
      opt.check_fingerprint = false;
    } else if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::cerr << "perf_diff: --threshold wants a value\n" << kUsage;
        return 2;
      }
      char* rest = nullptr;
      opt.default_threshold = std::strtod(argv[++i], &rest);
      if (rest == nullptr || *rest != '\0' || !(opt.default_threshold >= 0)) {
        std::cerr << "perf_diff: bad --threshold '" << argv[i] << "'\n";
        return 2;
      }
    } else if (arg == "--metric") {
      if (i + 1 >= argc || !parse_metric_arg(argv[++i], opt)) {
        std::cerr << "perf_diff: --metric wants name=threshold\n" << kUsage;
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perf_diff: unknown flag " << arg << "\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << kUsage;
    return 2;
  }

  util::JsonValue cur, base;
  for (int side = 0; side < 2; ++side) {
    const std::string& path = paths[static_cast<std::size_t>(side)];
    std::string text;
    if (!read_file(path, text)) {
      std::cerr << "perf_diff: cannot read " << path << "\n";
      return 2;
    }
    try {
      (side == 0 ? cur : base) = util::parse_json(text);
    } catch (const util::JsonError& e) {
      std::cerr << "perf_diff: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }

  const analysis::PerfDiffResult res = analysis::diff_bench(cur, base, opt);

  // One pass, full picture: the comparison table (whatever rows were
  // structurally comparable) prints first, then every gate/structure
  // error -- so a CI log shows schema AND fingerprint AND regressed
  // metrics together instead of one failure per rerun.
  if (!res.rows.empty()) {
    util::TextTable table(
        {"run", "metric", "baseline", "current", "ratio", "status"});
    for (const analysis::DiffRow& r : res.rows) {
      const bool skipped = r.status == analysis::DiffStatus::kSkipped;
      table.add_row({r.run, r.metric,
                     skipped ? "-" : util::cformat("%.6g", r.baseline),
                     skipped ? "-" : util::cformat("%.6g", r.current),
                     skipped ? r.note : util::cformat("%.3f", r.ratio),
                     analysis::diff_status_name(r.status)});
    }
    table.print(std::cout);
  }
  for (const std::string& e : res.errors)
    std::cerr << "perf_diff: error: " << e << "\n";
  if (!res.errors.empty()) {
    std::cerr << "perf_diff: " << res.errors.size()
              << " error(s); the files are not comparable\n";
    return 2;
  }
  if (res.regressed()) {
    std::cout << "perf_diff: REGRESSION against "
              << paths[1] << " (threshold "
              << util::cformat("%.0f", opt.default_threshold * 100)
              << "%)\n";
    return 1;
  }
  std::cout << "perf_diff: ok\n";
  return 0;
}
