// Machine-level observation interface: the event stream a protocol
// checker (src/analysis) consumes.
//
// The timing engine already exposes *where simulated time went* through
// sim::TraceSink. That stream is deliberately lossy: spans carry names,
// not machine state, so it cannot answer "which local-store bytes did
// this DMA write" or "was this tag group waited on before the kernel
// read the buffer". MachineObserver is the lossless sibling: the
// orchestrator narrates every machine-model action -- LS allocations,
// DMA submissions with their LS region and tag group, tag waits,
// kernel buffer accesses, dispatch grants and completion reports -- in
// the same pass that advances the clocks.
//
// The contract is identical to TraceSink's: observers only observe.
// No simulated tick may ever depend on an observer, so attaching one
// is guaranteed not to perturb the model (a test pins bit-identical
// timing with a checker attached vs. detached). Every hook has an
// empty default body; instrumented code guards emission on a null
// check, so "no observer" costs one branch per event.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cellsim/local_store.h"
#include "cellsim/mfc.h"
#include "cellsim/sync.h"
#include "sim/time.h"

namespace cellsweep::cell {

/// Receiver for machine-model protocol events (see file comment).
/// `token` arguments identify the work item (chunk) an event belongs
/// to, so a checker can bind a kernel to the exact DMA that staged its
/// buffer -- a timestamp alone cannot distinguish "read the data that
/// was fetched for me" from "read a buffer someone already refilled".
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;

  /// An SPE's local store was cleared back to the code reservation.
  virtual void on_ls_reset(int /*spe*/) {}

  /// A named region was allocated in an SPE's local store.
  virtual void on_ls_alloc(int /*spe*/, const LocalStore::Region& /*region*/,
                           std::size_t /*ls_capacity*/) {}

  /// A DMA command was submitted on an SPE's MFC. @p req carries the
  /// direction, tag group and LS region annotation; @p completion the
  /// modeled issue/start/done times.
  virtual void on_dma(int /*spe*/, const DmaRequest& /*req*/,
                      sim::Tick /*submitted*/,
                      const DmaCompletion& /*completion*/,
                      std::uint64_t /*token*/) {}

  /// The SPU observed completion of tag group @p tag at @p at (the
  /// resolution point of an MFC tag-status wait).
  virtual void on_tag_wait(int /*spe*/, unsigned /*tag*/, sim::Tick /*at*/) {}

  /// A kernel read (and updated in place) the LS bytes
  /// [ls_offset, ls_offset + ls_bytes) over [start, end).
  virtual void on_kernel(int /*spe*/, std::size_t /*ls_offset*/,
                         std::size_t /*ls_bytes*/, sim::Tick /*start*/,
                         sim::Tick /*end*/, std::uint64_t /*token*/) {}

  /// The dispatch fabric granted a work item. @p sequence is the
  /// fabric's running grant count (the atomic work counter under the
  /// distributed protocol); it must be strictly monotone.
  virtual void on_grant(int /*spe*/, SyncProtocol /*protocol*/,
                        sim::Tick /*requested*/, sim::Tick /*granted*/,
                        std::uint64_t /*sequence*/) {}

  /// An SPE's completion report for @p token was absorbed at @p at.
  virtual void on_report(int /*spe*/, SyncProtocol /*protocol*/,
                         sim::Tick /*at*/, std::uint64_t /*token*/) {}

  /// The run drained; no further events follow.
  virtual void on_run_end(sim::Tick /*at*/) {}
};

}  // namespace cellsweep::cell
