// Cluster of Cells: the paper's full five-level parallelization.
//
// Level 1 is the existing MPI wavefront over a 2-D process grid
// (Figure 1) -- "this guarantees portability of existing parallel
// software". This example runs the process-level decomposition through
// the in-process message-passing substrate, verifies the decomposed
// solution is bit-identical to the serial one, and combines the
// per-process Cell timing model with the wavefront pipeline-fill
// formula to estimate multi-chip scaling.
//
//   $ ./cell_cluster [--cube=24] [--px=2] [--py=2]
#include <iostream>

#include "core/orchestrator.h"
#include "msg/cart_grid.h"
#include "sweep/mpi_sweeper.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace cellsweep;

int main(int argc, char** argv) {
  util::CliParser cli("Process-level wavefront over a cluster of Cell BEs");
  cli.add_flag("cube", "24", "global cube size (cells per side)");
  cli.add_flag("px", "2", "process grid width");
  cli.add_flag("py", "2", "process grid height");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  int n, px, py;
  try {
    n = static_cast<int>(cli.get_int("cube"));
    px = static_cast<int>(cli.get_int("px"));
    py = static_cast<int>(cli.get_int("py"));
  } catch (const util::CliError& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (n % px != 0 || n % py != 0) {
    std::cerr << "px and py must divide the cube size\n";
    return 1;
  }

  const sweep::Problem problem = sweep::Problem::benchmark_cube(n);
  sweep::SnQuadrature quad(6);
  sweep::SweepConfig cfg;
  cfg.mk = 1;
  for (int d = 1; d <= 5; ++d)
    if (n % d == 0) cfg.mk = d;
  cfg.mmi = 3;  // small angle blocks pipeline the wave to neighbors
  cfg.max_iterations = 6;
  cfg.fixup_from_iteration = 4;

  // Serial reference.
  sweep::SweepState<double> serial(problem, quad, 2, sweep::kBenchmarkMoments);
  sweep::solve_source_iteration(serial, cfg);

  // Distributed run over px x py ranks (each modeling one Cell blade).
  msg::World world(px * py);
  const sweep::MpiSolveResult mpi = sweep::solve_mpi(
      world, problem, quad, 2, cfg, px, py, sweep::kBenchmarkMoments);

  double maxdiff = 0;
  const auto& g = problem.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        maxdiff = std::max(
            maxdiff, std::abs(mpi.flux0[(static_cast<std::size_t>(k) * g.jt +
                                         j) * g.it + i] -
                              serial.flux().at(0, k, j, i)));

  std::cout << "Decomposition " << px << " x " << py << " of " << n
            << "^3: max |flux difference| vs serial = " << maxdiff
            << (maxdiff == 0 ? "  (bit-identical)" : "") << "\n"
            << "Global balance: absorption " << mpi.absorption
            << " + leakage " << mpi.leakage.total() << " = "
            << mpi.absorption + mpi.leakage.total() << " of source "
            << problem.total_external_source() << "\n\n";

  // Per-chip Cell timing of one tile, then the wavefront pipeline-fill
  // model of Hoisie et al. (the paper's refs [3,5]): with D diagonals of
  // pipeline depth and B blocks per sweep, efficiency ~ B / (B + D).
  const sweep::Problem tile =
      sweep::extract_tile(problem, 0, n / px, 0, n / py);
  core::CellSweepConfig ccfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  ccfg.sweep = cfg;
  core::CellSweep3D tile_runner(tile, ccfg);
  const core::RunReport tile_r = tile_runner.run(core::RunMode::kTraceDriven);

  const int blocks_per_octant =
      (tile.grid().kt / cfg.mk) * (6 / cfg.mmi);
  const int depth = msg::CartGrid2D(px, py).wave_depth(px * py - 1, 0, 0);
  const double fill =
      static_cast<double>(blocks_per_octant) / (blocks_per_octant + depth);

  util::TextTable table({"quantity", "value"});
  table.add_row({"per-chip tile time", util::format_seconds(tile_r.seconds)});
  table.add_row({"pipeline depth (diagonals)", std::to_string(depth)});
  table.add_row({"wavefront efficiency",
                 util::format_percent(fill)});
  table.add_row({"estimated cluster time",
                 util::format_seconds(tile_r.seconds / fill)});
  table.add_row({"estimated speedup vs one chip",
                 util::format_speedup(
                     core::CellSweep3D(problem, ccfg)
                         .run(core::RunMode::kTraceDriven)
                         .seconds /
                     (tile_r.seconds / fill))});
  table.print(std::cout);
  return 0;
}
