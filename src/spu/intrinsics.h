// Functional emulation of the SPU SIMD intrinsics used by the
// SIMDized Sweep3D kernels (paper, Figure 7).
//
// Each 128-bit vector value carries a virtual value id so that, when a
// spu::TraceRecorder is active, the recorded instruction stream has
// true dataflow dependencies -- exactly what the dual-issue pipeline
// scheduler needs to reproduce the paper's cycle counts. With no
// recorder active the id plumbing costs one integer copy per value and
// the numerics are identical, so production sweeps run at full host
// speed.
//
// Only the subset of the SPU ISA that the kernels use is emulated:
// splats, mul, add, sub, madd (fused multiply-add), nmsub, compare
// greater-than, bitwise select, 16-byte loads/stores, plus explicit
// markers for fixed-point (address) arithmetic and branches so loop
// overhead shows up in the trace with the right pipe assignment.
#pragma once

#include <cstdint>
#include <cstring>

#include "spu/trace.h"

namespace cellsweep::spu {

namespace detail {
inline ValueId record(Op op, ValueId s0 = kNoValue, ValueId s1 = kNoValue,
                      ValueId s2 = kNoValue, std::uint64_t flops = 0) {
  TraceRecorder* rec = TraceRecorder::active();
  return rec ? rec->record(op, s0, s1, s2, flops) : kNoValue;
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Vector types (one 128-bit SPU register each)
// ---------------------------------------------------------------------------

/// Two double-precision lanes ("vector double" on the SPU).
struct vec_double2 {
  double v[2]{0.0, 0.0};
  ValueId id = kNoValue;

  double operator[](int lane) const { return v[lane]; }
};

/// Four single-precision lanes ("vector float").
struct vec_float4 {
  float v[4]{0.f, 0.f, 0.f, 0.f};
  ValueId id = kNoValue;

  float operator[](int lane) const { return v[lane]; }
};

/// Comparison-result mask for vec_double2 (all-ones / all-zeros lanes).
struct vec_mask2 {
  std::uint64_t m[2]{0, 0};
  ValueId id = kNoValue;
};

/// Comparison-result mask for vec_float4.
struct vec_mask4 {
  std::uint32_t m[4]{0, 0, 0, 0};
  ValueId id = kNoValue;
};

// ---------------------------------------------------------------------------
// splats -- replicate a scalar across all lanes (odd-pipe shuffle)
// ---------------------------------------------------------------------------

inline vec_double2 spu_splats(double x) {
  vec_double2 r{{x, x}, detail::record(Op::kShuffle)};
  return r;
}

inline vec_float4 spu_splats(float x) {
  vec_float4 r{{x, x, x, x}, detail::record(Op::kShuffle)};
  return r;
}

// ---------------------------------------------------------------------------
// Arithmetic (even pipe). Flop counts follow the paper's convention:
// a DP madd is 4 flops (2 lanes x multiply+add), an SP madd is 8.
// ---------------------------------------------------------------------------

inline vec_double2 spu_mul(const vec_double2& a, const vec_double2& b) {
  vec_double2 r;
  r.v[0] = a.v[0] * b.v[0];
  r.v[1] = a.v[1] * b.v[1];
  r.id = detail::record(Op::kMulDouble, a.id, b.id, kNoValue, 2);
  return r;
}

inline vec_double2 spu_add(const vec_double2& a, const vec_double2& b) {
  vec_double2 r;
  r.v[0] = a.v[0] + b.v[0];
  r.v[1] = a.v[1] + b.v[1];
  r.id = detail::record(Op::kAddDouble, a.id, b.id, kNoValue, 2);
  return r;
}

inline vec_double2 spu_sub(const vec_double2& a, const vec_double2& b) {
  vec_double2 r;
  r.v[0] = a.v[0] - b.v[0];
  r.v[1] = a.v[1] - b.v[1];
  r.id = detail::record(Op::kAddDouble, a.id, b.id, kNoValue, 2);
  return r;
}

/// Fused multiply-add: a*b + c.
inline vec_double2 spu_madd(const vec_double2& a, const vec_double2& b,
                            const vec_double2& c) {
  vec_double2 r;
  r.v[0] = a.v[0] * b.v[0] + c.v[0];
  r.v[1] = a.v[1] * b.v[1] + c.v[1];
  r.id = detail::record(Op::kFmaDouble, a.id, b.id, c.id, 4);
  return r;
}

/// Negative multiply-subtract: c - a*b.
inline vec_double2 spu_nmsub(const vec_double2& a, const vec_double2& b,
                             const vec_double2& c) {
  vec_double2 r;
  r.v[0] = c.v[0] - a.v[0] * b.v[0];
  r.v[1] = c.v[1] - a.v[1] * b.v[1];
  r.id = detail::record(Op::kFmaDouble, a.id, b.id, c.id, 4);
  return r;
}

inline vec_float4 spu_mul(const vec_float4& a, const vec_float4& b) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  r.id = detail::record(Op::kMulSingle, a.id, b.id, kNoValue, 4);
  return r;
}

inline vec_float4 spu_add(const vec_float4& a, const vec_float4& b) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
  r.id = detail::record(Op::kAddSingle, a.id, b.id, kNoValue, 4);
  return r;
}

inline vec_float4 spu_sub(const vec_float4& a, const vec_float4& b) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
  r.id = detail::record(Op::kAddSingle, a.id, b.id, kNoValue, 4);
  return r;
}

inline vec_float4 spu_madd(const vec_float4& a, const vec_float4& b,
                           const vec_float4& c) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  r.id = detail::record(Op::kFmaSingle, a.id, b.id, c.id, 8);
  return r;
}

inline vec_float4 spu_nmsub(const vec_float4& a, const vec_float4& b,
                            const vec_float4& c) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = c.v[i] - a.v[i] * b.v[i];
  r.id = detail::record(Op::kFmaSingle, a.id, b.id, c.id, 8);
  return r;
}

// ---------------------------------------------------------------------------
// Compare / select (used by the negative-flux fixup path)
// ---------------------------------------------------------------------------

inline vec_mask2 spu_cmpgt(const vec_double2& a, const vec_double2& b) {
  vec_mask2 r;
  r.m[0] = a.v[0] > b.v[0] ? ~0ULL : 0ULL;
  r.m[1] = a.v[1] > b.v[1] ? ~0ULL : 0ULL;
  r.id = detail::record(Op::kCmpDouble, a.id, b.id);
  return r;
}

inline vec_mask4 spu_cmpgt(const vec_float4& a, const vec_float4& b) {
  vec_mask4 r;
  for (int i = 0; i < 4; ++i) r.m[i] = a.v[i] > b.v[i] ? ~0U : 0U;
  r.id = detail::record(Op::kCmpSingle, a.id, b.id);
  return r;
}

/// Bitwise select: lanes where the mask is set take @p b, others @p a.
inline vec_double2 spu_sel(const vec_double2& a, const vec_double2& b,
                           const vec_mask2& mask) {
  vec_double2 r;
  for (int i = 0; i < 2; ++i) {
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a.v[i], 8);
    std::memcpy(&bb, &b.v[i], 8);
    const std::uint64_t rb = (ab & ~mask.m[i]) | (bb & mask.m[i]);
    std::memcpy(&r.v[i], &rb, 8);
  }
  r.id = detail::record(Op::kSelect, a.id, b.id, mask.id);
  return r;
}

inline vec_float4 spu_sel(const vec_float4& a, const vec_float4& b,
                          const vec_mask4& mask) {
  vec_float4 r;
  for (int i = 0; i < 4; ++i) {
    std::uint32_t ab, bb;
    std::memcpy(&ab, &a.v[i], 4);
    std::memcpy(&bb, &b.v[i], 4);
    const std::uint32_t rb = (ab & ~mask.m[i]) | (bb & mask.m[i]);
    std::memcpy(&r.v[i], &rb, 4);
  }
  r.id = detail::record(Op::kSelect, a.id, b.id, mask.id);
  return r;
}

/// True if any lane of the mask is set (used to take the slow fixup
/// path only when some lane produced a negative flux). On the real SPU
/// this is a gather + branch; we record it as fixed-point + branch.
inline bool any(const vec_mask2& mask) {
  detail::record(Op::kFixed, mask.id);
  return (mask.m[0] | mask.m[1]) != 0;
}

inline bool any(const vec_mask4& mask) {
  detail::record(Op::kFixed, mask.id);
  return (mask.m[0] | mask.m[1] | mask.m[2] | mask.m[3]) != 0;
}

// ---------------------------------------------------------------------------
// Loads / stores (odd pipe, 16 bytes each)
// ---------------------------------------------------------------------------

inline vec_double2 vec_load(const double* p) {
  vec_double2 r{{p[0], p[1]}, detail::record(Op::kLoad)};
  return r;
}

inline void vec_store(double* p, const vec_double2& x) {
  p[0] = x.v[0];
  p[1] = x.v[1];
  detail::record(Op::kStore, x.id);
}

inline vec_float4 vec_load(const float* p) {
  vec_float4 r{{p[0], p[1], p[2], p[3]}, detail::record(Op::kLoad)};
  return r;
}

inline void vec_store(float* p, const vec_float4& x) {
  for (int i = 0; i < 4; ++i) p[i] = x.v[i];
  detail::record(Op::kStore, x.id);
}

// ---------------------------------------------------------------------------
// Explicit loop-overhead markers. Scalar address arithmetic and loop
// branches still occupy issue slots on the real SPU; kernels call
// these so the recorded trace carries that overhead with the correct
// pipe assignment.
// ---------------------------------------------------------------------------

/// Records @p n fixed-point (even pipe) instructions.
inline void mark_fixed(int n = 1) {
  for (int i = 0; i < n; ++i) detail::record(Op::kFixed);
}

/// Records @p n even-pipe DP arithmetic slots without dataflow (used to
/// represent rarely-taken scalar cleanup such as the fixup re-solve).
inline void mark_double_op(int n = 1) {
  for (int i = 0; i < n; ++i) detail::record(Op::kFmaDouble);
}

/// Builds a vector from scalars of *different* I-lines (the transposed
/// access of the recursion phase): one shufb. The quadword loads that
/// feed the shuffles are amortized over the lanes a quadword holds;
/// kernels record them separately with mark_pack_loads().
inline vec_double2 vec_pack(double a, double b) {
  vec_double2 r{{a, b}, detail::record(Op::kShuffle)};
  return r;
}

inline vec_float4 vec_pack(float a, float b, float c, float d) {
  detail::record(Op::kShuffle);
  vec_float4 r{{a, b, c, d}, detail::record(Op::kShuffle)};
  return r;
}

/// Records the @p n quadword loads feeding a batch of vec_pack calls
/// (issued ahead of the shuffles by a scheduling compiler, so they are
/// recorded without dependencies).
inline void mark_pack_loads(int n) {
  for (int i = 0; i < n; ++i) detail::record(Op::kLoad);
}

/// Extracts one lane to scalar storage (a rotqby + store on the SPU).
inline double vec_extract(const vec_double2& v, int lane) {
  detail::record(Op::kShuffle, v.id);
  return v.v[lane];
}

inline float vec_extract(const vec_float4& v, int lane) {
  detail::record(Op::kShuffle, v.id);
  return v.v[lane];
}

/// Records a loop-closing branch. Correctly hinted branches cost one
/// odd-pipe slot; unhinted ones flush the fetch pipeline.
inline void mark_branch(bool hinted = true) {
  detail::record(hinted ? Op::kBranch : Op::kBranchMiss);
}

/// Records @p n odd-pipe store slots (scalar writebacks of unpacked
/// lanes go through stqd like everything else).
inline void mark_store(int n = 1) {
  for (int i = 0; i < n; ++i) detail::record(Op::kStore);
}

}  // namespace cellsweep::spu
