// Discrete-ordinates (Sn) angular quadrature.
//
// Sweep3D models particle movement along a finite number of beams: six
// angles per octant, eight octants (paper, Section 3). Six angles per
// octant is exactly the level-symmetric S6 set, N(N+2)/8 = 6. This
// module provides level-symmetric LQn sets for S2..S8 plus the octant
// bookkeeping (sweep direction signs and corner ordering) that the
// wavefront algorithm needs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cellsweep::sweep {

/// One discrete direction in the first octant (all cosines positive).
struct Ordinate {
  double mu;   ///< direction cosine along I
  double eta;  ///< direction cosine along J
  double xi;   ///< direction cosine along K
  double w;    ///< quadrature weight (per-octant weights sum to 1/8)
};

/// Sweep direction signs of one octant.
struct Octant {
  int sx;  ///< +1: sweep i ascending (west->east), -1: descending
  int sy;  ///< +1: sweep j ascending (north->south in Fig. 1 terms)
  int sz;  ///< +1: sweep k ascending
};

/// The eight octants in Sweep3D's iq order (jq/kq/iq nesting flattened;
/// any fixed order is valid since octant sweeps are sequential).
std::array<Octant, 8> all_octants();

/// Level-symmetric quadrature over the unit sphere.
class SnQuadrature {
 public:
  /// Builds the LQn set of order @p n (2, 4, 6 or 8). Sweep3D's six
  /// angles per octant correspond to n = 6.
  explicit SnQuadrature(int n = 6);

  int order() const noexcept { return order_; }

  /// Ordinates of the first octant; other octants mirror the cosines
  /// with the octant signs. Sweep3D calls this count "6" (mm).
  const std::vector<Ordinate>& octant_ordinates() const noexcept {
    return ordinates_;
  }
  int angles_per_octant() const noexcept {
    return static_cast<int>(ordinates_.size());
  }

  /// Total directions over the sphere (8 x angles_per_octant).
  int total_angles() const noexcept { return 8 * angles_per_octant(); }

  /// Sum of weights over the full sphere (normalized to 1, so the
  /// scalar flux is a plain weighted sum of angular fluxes).
  double total_weight() const noexcept;

 private:
  int order_;
  std::vector<Ordinate> ordinates_;
};

/// Number of flux moments the benchmark deck carries: P2 scattering
/// with the azimuthal l=2 cross terms truncated (1 + 3 + 2 = 6). This
/// reproduces the original input's working-set size -- with six moment
/// rows per line the 50-cubed problem streams the paper's ~17.6 GB.
/// The truncated operator is still symmetric positive semidefinite, so
/// source iteration converges exactly as with the full set.
inline constexpr int kBenchmarkMoments = 6;

/// Spherical-harmonics coefficient table for the scattering source.
//
// Sweep3D keeps `nm` flux moments and expands the per-angle source as
//   q_m = sum_n pn[m][n] * Src[n]        (Figure 6's pn array)
// and accumulates moments as
//   Flux[n] += pn[m][n] * w[m] * Phi     (Figure 6's loop).
// Full P_l scattering needs nm = (l_max+1)^2 real moments (supported
// through P3 / nm = 16); an nm_cap keeps only the first nm_cap basis
// functions (the kernel sum_n R_n R_n' of a truncated basis is still
// PSD).
class MomentTable {
 public:
  /// @p l_max: highest Legendre order kept (0..3; P2 -> nm = 9).
  /// @p nm_cap: if nonzero, keep only the first nm_cap moments.
  MomentTable(const SnQuadrature& quad, int l_max, int nm_cap = 0);

  int nm() const noexcept { return nm_; }
  int l_max() const noexcept { return l_max_; }

  /// pn[m*nm + n]: real spherical harmonic n evaluated at ordinate m of
  /// octant @p octant (0..7).
  const double* pn(int octant) const noexcept {
    return pn_[octant].data();
  }

  /// Legendre order l(n) of moment n (0 for the scalar flux moment).
  int moment_order(int n) const noexcept { return l_of_n_[n]; }

 private:
  int nm_;
  int l_max_;
  int mm_;
  std::array<std::vector<double>, 8> pn_;
  std::vector<int> l_of_n_;
};

}  // namespace cellsweep::sweep
