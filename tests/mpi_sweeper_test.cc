// Tests for the process-level wavefront decomposition: any px x py
// decomposition must reproduce the serial solution bit-for-bit, with
// matching global balance -- the paper's "migration path" property.
#include <gtest/gtest.h>

#include <tuple>

#include "sweep/mpi_sweeper.h"

namespace cellsweep::sweep {
namespace {

SweepConfig config(int iters = 4, int fixup_from = 99) {
  SweepConfig cfg;
  cfg.mk = 4;
  cfg.mmi = 3;
  cfg.max_iterations = iters;
  cfg.fixup_from_iteration = fixup_from;
  return cfg;
}

TEST(ExtractTile, SlicesMaterials) {
  const Problem p = Problem::shield(16);
  const Problem tile = extract_tile(p, 8, 8, 0, 8);
  EXPECT_EQ(tile.grid().it, 8);
  EXPECT_EQ(tile.grid().jt, 8);
  EXPECT_EQ(tile.grid().kt, 16);
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        EXPECT_EQ(tile.material_index(i, j, k), p.material_index(8 + i, j, k));
}

TEST(ExtractTile, RejectsOutOfRange) {
  const Problem p = Problem::benchmark_cube(8);
  EXPECT_THROW(extract_tile(p, 4, 8, 0, 8), std::invalid_argument);
  EXPECT_THROW(extract_tile(p, -1, 4, 0, 8), std::invalid_argument);
}

class Decompositions
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Decompositions, BitIdenticalToSerial) {
  const auto [px, py] = GetParam();
  const Problem p = Problem::benchmark_cube(12);
  SnQuadrature quad(6);
  const SweepConfig cfg = config(3);

  SweepState<double> serial(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(serial, cfg);

  msg::World world(px * py);
  const MpiSolveResult r =
      solve_mpi(world, p, quad, 2, cfg, px, py, kBenchmarkMoments);

  const auto& g = p.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        ASSERT_EQ(r.flux0[(static_cast<std::size_t>(k) * g.jt + j) * g.it + i],
                  serial.flux().at(0, k, j, i))
            << px << "x" << py << " @ " << i << "," << j << "," << k;
}

INSTANTIATE_TEST_SUITE_P(Grids, Decompositions,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1},
                                           std::tuple{1, 2}, std::tuple{2, 2},
                                           std::tuple{4, 1}, std::tuple{3, 2},
                                           std::tuple{4, 4}, std::tuple{6, 1},
                                           std::tuple{1, 4}, std::tuple{1, 6},
                                           std::tuple{2, 6}));

TEST(MpiSweeper, DegradedNodeSweepBitIdentical) {
  // One straggler node (slow sends: failing NIC / throttled CPU) may
  // stretch wall-clock, but the wavefront exchange is blocking matched
  // send/recv, so the physics must stay bit-identical to the serial
  // solve -- graceful degradation at the cluster level.
  const Problem p = Problem::benchmark_cube(12);
  SnQuadrature quad(6);
  const SweepConfig cfg = config(3);

  SweepState<double> serial(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(serial, cfg);

  msg::World world(6);
  world.degrade_rank(4, 200);  // 200 us on every send from rank 4
  const MpiSolveResult r =
      solve_mpi(world, p, quad, 2, cfg, 3, 2, kBenchmarkMoments);

  EXPECT_EQ(r.solve.iterations, 3);
  const auto& g = p.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        ASSERT_EQ(r.flux0[(static_cast<std::size_t>(k) * g.jt + j) * g.it + i],
                  serial.flux().at(0, k, j, i));
}

TEST(MpiSweeper, GlobalBalanceMatchesSerial) {
  const Problem p = Problem::benchmark_cube(12);
  SnQuadrature quad(6);
  const SweepConfig cfg = config(4);

  SweepState<double> serial(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(serial, cfg);

  msg::World world(4);
  const MpiSolveResult r =
      solve_mpi(world, p, quad, 2, cfg, 2, 2, kBenchmarkMoments);

  EXPECT_NEAR(r.absorption, serial.absorption_rate(), 1e-12);
  EXPECT_NEAR(r.leakage.total(), serial.leakage().total(), 1e-12);
  EXPECT_NEAR(r.leakage.west, serial.leakage().west, 1e-12);
  EXPECT_NEAR(r.leakage.top, serial.leakage().top, 1e-12);
}

TEST(MpiSweeper, ConvergenceAgreesAcrossRanks) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  SweepConfig cfg = config(200);
  cfg.epsilon = 1e-9;

  SweepState<double> serial(p, quad, 2, kBenchmarkMoments);
  const SolveResult sr = solve_source_iteration(serial, cfg);

  msg::World world(4);
  const MpiSolveResult r =
      solve_mpi(world, p, quad, 2, cfg, 2, 2, kBenchmarkMoments);
  EXPECT_TRUE(r.solve.converged);
  EXPECT_EQ(r.solve.iterations, sr.iterations);
}

TEST(MpiSweeper, FixupsWorkAcrossRanks) {
  const Problem p = Problem::shield(16);
  SnQuadrature quad(6);
  const SweepConfig cfg = config(3, /*fixup_from=*/0);

  SweepState<double> serial(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(serial, cfg);

  msg::World world(4);
  const MpiSolveResult r =
      solve_mpi(world, p, quad, 2, cfg, 2, 2, kBenchmarkMoments);
  EXPECT_GT(r.solve.totals.fixup_cells, 0u);
  const auto& g = p.grid();
  double maxdiff = 0;
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        maxdiff = std::max(
            maxdiff,
            std::abs(r.flux0[(static_cast<std::size_t>(k) * g.jt + j) * g.it +
                             i] -
                     serial.flux().at(0, k, j, i)));
  EXPECT_EQ(maxdiff, 0.0);
}

TEST(MpiSweeper, ValidatesDecomposition) {
  const Problem p = Problem::benchmark_cube(8);
  SnQuadrature quad(6);
  msg::World world(4);
  EXPECT_THROW(solve_mpi(world, p, quad, 2, config(), 3, 1),
               std::invalid_argument);  // 3 ranks != world size 4
}

TEST(MpiSweeper, RejectsNonDividingTiles) {
  const Problem p = Problem::benchmark_cube(9);  // 9 not divisible by 2
  SnQuadrature quad(6);
  SweepConfig cfg = config();
  cfg.mk = 3;
  msg::World world(2);
  EXPECT_THROW(solve_mpi(world, p, quad, 2, cfg, 2, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cellsweep::sweep
