// SPU instruction-trace recording.
//
// The Synergistic Processing Unit is an in-order, dual-issue core: the
// floating-point and fixed-point units live on the *even* pipeline,
// loads/stores/shuffles/branches on the *odd* pipeline (paper, Section
// 2). Reproducing the paper's Section 5.1 cycle counts (590 cycles /
// 216 flops, 24 dual-issue events, ...) requires scheduling the actual
// instruction stream of the kernel, not a guess. So the intrinsics in
// spu/intrinsics.h optionally record every operation they perform --
// including true dataflow dependencies via virtual value ids -- into a
// Trace. The cellsim::SpuPipeline scheduler then replays that trace
// under CBEA issue rules to obtain cycle counts and dual-issue
// statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cellsweep::spu {

/// Instruction classes distinguished by the pipeline model. Each maps
/// to an execution pipe, a result latency and an issue-block width in
/// cellsim::PipelineSpec.
enum class Op : std::uint8_t {
  kFmaDouble,    // even pipe; DP is only partially pipelined on Cell BE
  kMulDouble,    // even
  kAddDouble,    // even (covers add/sub)
  kCmpDouble,    // even
  kFmaSingle,    // even; fully pipelined
  kMulSingle,    // even
  kAddSingle,    // even
  kCmpSingle,    // even
  kFixed,        // even; integer ALU / address arithmetic
  kSelect,       // even; bitwise select
  kLoad,         // odd; 16-byte local-store load
  kStore,        // odd; 16-byte local-store store
  kShuffle,      // odd; shufb / splats
  kBranch,       // odd; correctly hinted branch
  kBranchMiss,   // odd; unhinted/mispredicted branch (flush penalty)
  kChannel,      // odd; channel ops (DMA issue, mailbox reads)
  kCount
};

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

/// Returns a short mnemonic for diagnostics ("dfma", "lqd", ...).
const char* op_name(Op op);

/// Virtual register / value id used to express true dependencies.
/// Id 0 means "no source" (constants, immediate operands).
using ValueId = std::uint32_t;
inline constexpr ValueId kNoValue = 0;

/// One recorded instruction: operation class, destination value and up
/// to three source values (FMA has three).
struct TracedInst {
  Op op;
  ValueId dst;
  ValueId src0;
  ValueId src1;
  ValueId src2;
};

/// A recorded instruction stream plus its flop accounting.
struct Trace {
  std::vector<TracedInst> insts;
  std::uint64_t flops = 0;  // floating-point operations represented

  std::size_t size() const noexcept { return insts.size(); }
  void clear() noexcept {
    insts.clear();
    flops = 0;
  }

  /// Number of instructions of a given class.
  std::uint64_t count(Op op) const noexcept;
};

/// Scoped trace recorder. While an instance is alive, every spu
/// intrinsic appends to its Trace. Exactly one recorder may be active
/// at a time (the emulation is single-threaded by design; see
/// DESIGN.md section 4).
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The recorder active in this thread, or nullptr.
  static TraceRecorder* active() noexcept { return active_; }

  /// Appends an instruction; returns the new destination value id.
  ValueId record(Op op, ValueId src0 = kNoValue, ValueId src1 = kNoValue,
                 ValueId src2 = kNoValue, std::uint64_t flops = 0);

  /// Allocates a fresh value id without recording an instruction (used
  /// for values that enter the traced region from outside).
  ValueId fresh_value() noexcept { return next_value_++; }

  const Trace& trace() const noexcept { return trace_; }
  Trace take_trace() noexcept;

 private:
  static thread_local TraceRecorder* active_;
  Trace trace_;
  ValueId next_value_ = 1;
};

}  // namespace cellsweep::spu
