#include "util/units.h"

#include <clocale>
#include <cmath>
#include <cstdio>

namespace cellsweep::util {
namespace {

std::string printf_str(const char* fmt, double v, const char* unit) {
  return cformat(fmt, v) + " " + unit;
}

}  // namespace

std::string cformat(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  std::string s = buf;
  // snprintf honors LC_NUMERIC; undo a non-"." decimal separator (which
  // may be multi-byte, e.g. U+066B) so output is locale-independent.
  const char* dp = std::localeconv()->decimal_point;
  if (dp != nullptr && dp[0] != '\0' && !(dp[0] == '.' && dp[1] == '\0')) {
    const std::string sep(dp);
    for (std::size_t pos = s.find(sep); pos != std::string::npos;
         pos = s.find(sep, pos + 1))
      s.replace(pos, sep.size(), ".");
  }
  return s;
}

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return printf_str("%.3g", seconds, "s");
  if (abs >= 1e-3) return printf_str("%.3g", seconds * 1e3, "ms");
  if (abs >= 1e-6) return printf_str("%.3g", seconds * 1e6, "us");
  return printf_str("%.3g", seconds * 1e9, "ns");
}

std::string format_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= 1e9) return printf_str("%.3g", bytes / 1e9, "GB");
  if (abs >= 1e6) return printf_str("%.3g", bytes / 1e6, "MB");
  if (abs >= 1e3) return printf_str("%.3g", bytes / 1e3, "KB");
  return printf_str("%.3g", bytes, "B");
}

std::string format_flops(double flops_per_second) {
  const double abs = std::fabs(flops_per_second);
  if (abs >= 1e9) return printf_str("%.3g", flops_per_second / 1e9, "Gflops/s");
  if (abs >= 1e6) return printf_str("%.3g", flops_per_second / 1e6, "Mflops/s");
  return printf_str("%.3g", flops_per_second, "flops/s");
}

std::string format_speedup(double ratio) {
  return cformat("%.2f", ratio) + "x";
}

std::string format_percent(double fraction) {
  return cformat("%.1f", fraction * 100.0) + "%";
}

}  // namespace cellsweep::util
