#include "core/spe_allocator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace cellsweep::core {

using util::MutexLock;

namespace {
/// Per-thread blocked-in-claim() seconds, bracketed by the server
/// around each job (see reset_thread_claim_wait()).
thread_local double t_claim_wait_s = 0.0;
}  // namespace

void SpeAllocator::reset_thread_claim_wait() noexcept {
  t_claim_wait_s = 0.0;
}

double SpeAllocator::thread_claim_wait_s() noexcept { return t_claim_wait_s; }

SpeAllocator::SpeAllocator(int num_spes) : num_spes_(num_spes) {
  if (num_spes < 1)
    throw std::invalid_argument("SpeAllocator: num_spes must be >= 1");
  MutexLock lock(mu_);
  free_.assign(static_cast<std::size_t>(num_spes), 1);
}

int SpeAllocator::free_count_locked() const {
  int n = 0;
  for (const char f : free_) n += static_cast<int>(f != 0);
  return n;
}

int SpeAllocator::fair_share_locked(int weight) const {
  // Weighted proportional split. With every party at weight 1 the
  // total weight *is* the party count, so this is bit-for-bit the old
  // num_spes / parties equal split -- which is what keeps the pre-QoS
  // tests and baselines pinned.
  int total_weight = holder_weight_;
  for (const int w : waiter_weights_) total_weight += w;
  total_weight = std::max(1, total_weight);
  const int w = std::max(1, weight);
  return std::max(
      1, static_cast<int>(static_cast<std::int64_t>(num_spes_) * w /
                          total_weight));
}

std::vector<int> SpeAllocator::take_worst_fit(int want) {
  // Maximal contiguous free runs as (length, start), longest first
  // (ties: lowest start, for determinism). Worst-fit takes from the
  // head of the longest run: splitting the biggest block leaves the
  // largest possible remainder contiguous for the next claim.
  std::vector<std::pair<int, int>> runs;
  for (int s = 0; s < num_spes_;) {
    if (!free_[static_cast<std::size_t>(s)]) {
      ++s;
      continue;
    }
    int e = s;
    while (e < num_spes_ && free_[static_cast<std::size_t>(e)]) ++e;
    runs.emplace_back(e - s, s);
    s = e;
  }
  std::sort(runs.begin(), runs.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  std::vector<int> got;
  got.reserve(static_cast<std::size_t>(std::max(0, want)));
  for (const auto& [len, start] : runs) {
    if (static_cast<int>(got.size()) >= want) break;
    const int take = std::min(len, want - static_cast<int>(got.size()));
    for (int s = start; s < start + take; ++s) {
      free_[static_cast<std::size_t>(s)] = 0;
      got.push_back(s);
    }
  }
  std::sort(got.begin(), got.end());
  return got;
}

SpeAllocator::Claim SpeAllocator::claim(int min_spes, int max_spes, int weight,
                                        int quota) {
  const int w = std::max(1, weight);
  const int q = quota <= 0 ? num_spes_ : std::clamp(quota, 1, num_spes_);
  // The quota is a hard ceiling: it caps the maximum outright and pulls
  // the minimum down with it (a tenant quota'd to 2 SPEs must still be
  // admissible when it asks for min 4).
  const int lo = std::min(std::clamp(min_spes, 1, num_spes_), q);
  const int hi = std::min(std::clamp(std::max(max_spes, lo), 1, num_spes_), q);

  MutexLock lock(mu_);
  double waited_s = 0.0;
  if (free_count_locked() < lo) {
    ++waiters_;
    waiter_weights_.push_back(w);
    ++stats_.waited_claims;
    // Host time blocked, for the claim-wait histogram and the per-job
    // trace. Measured around the wait only; an immediate grant records
    // a zero sample without touching the clock.
    const auto blocked_from = std::chrono::steady_clock::now();
    while (free_count_locked() < lo) cv_.wait(mu_);
    waited_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - blocked_from)
                   .count();
    --waiters_;
    waiter_weights_.erase(
        std::find(waiter_weights_.begin(), waiter_weights_.end(), w));
  }
  stats_.claim_wait_s.add(waited_s);
  t_claim_wait_s += waited_s;

  // Grant size: everything asked for that is free -- but while others
  // are still queued behind us, no more than the weighted fair share
  // (never below the minimum this tenant needs to run at all).
  int want = std::min(hi, free_count_locked());
  if (waiters_ > 0) want = std::max(lo, std::min(want, fair_share_locked(w)));

  Claim c;
  c.weight = w;
  c.quota = quota <= 0 ? 0 : q;
  c.ids = take_worst_fit(want);
  ++holders_;
  holder_weight_ += w;
  ++stats_.claims;
  stats_.peak_tenants = std::max(stats_.peak_tenants, holders_ + waiters_);
  return c;
}

int SpeAllocator::expand(Claim& c, int target_total) {
  MutexLock lock(mu_);
  // Regrowth is opportunistic: anyone blocked in claim() has first
  // call on free SPEs, so expansion under pressure is denied outright.
  if (waiters_ > 0) return 0;
  const int cap = c.quota > 0 ? std::min(c.quota, num_spes_) : num_spes_;
  const int want = std::min(target_total, cap) - c.count();
  if (want <= 0) return 0;
  std::vector<int> got = take_worst_fit(std::min(want, free_count_locked()));
  if (got.empty()) return 0;
  c.ids.insert(c.ids.end(), got.begin(), got.end());
  std::sort(c.ids.begin(), c.ids.end());
  ++stats_.expands;
  return static_cast<int>(got.size());
}

bool SpeAllocator::shrink_locked(Claim& c, int target) {
  bool freed = false;
  while (c.count() > target) {
    free_[static_cast<std::size_t>(c.ids.back())] = 1;
    c.ids.pop_back();
    freed = true;
  }
  if (freed) ++stats_.shrinks;
  if (c.empty() && freed) {
    --holders_;
    holder_weight_ -= std::max(1, c.weight);
  }
  return freed;
}

void SpeAllocator::shrink(Claim& c, int target_total) {
  const int target = std::max(0, target_total);
  bool freed = false;
  {
    MutexLock lock(mu_);
    freed = shrink_locked(c, target);
  }
  if (freed) cv_.notify_all();
}

bool SpeAllocator::shrink_to_fair_share(Claim& c, int need, int min_spes) {
  bool freed = false;
  {
    MutexLock lock(mu_);
    // Pressure, fair share and the yield itself are decided under one
    // hold of mu_: the old pressure()-then-shrink() sequence could act
    // on a waiter that had already been served (a wasted yield) or
    // miss one that arrived in between.
    if (waiters_ == 0) return false;
    const int target =
        std::max(min_spes, std::min(need, fair_share_locked(c.weight)));
    if (c.count() <= target) return false;
    freed = shrink_locked(c, target);
  }
  if (freed) cv_.notify_all();
  return freed;
}

bool SpeAllocator::pressure() const {
  MutexLock lock(mu_);
  return waiters_ > 0;
}

bool SpeAllocator::priority_pressure(int weight) const {
  MutexLock lock(mu_);
  for (const int w : waiter_weights_)
    if (w > weight) return true;
  return false;
}

int SpeAllocator::fair_share() const { return fair_share(1); }

int SpeAllocator::fair_share(int weight) const {
  MutexLock lock(mu_);
  return fair_share_locked(weight);
}

int SpeAllocator::free_count() const {
  MutexLock lock(mu_);
  return free_count_locked();
}

SpeAllocator::Stats SpeAllocator::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cellsweep::core
