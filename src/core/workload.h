// Working-set and workload accounting for the Cell orchestration.
//
// Data-streaming parallelism (the paper's level 3) means every chunk of
// four I-lines an SPE processes must be staged into the 256 KB local
// store and written back: source moments, flux moments, cross sections
// and the wavefront faces. This header computes, from first principles
// (array shapes and element sizes), the exact DMA transfer list and
// local-store footprint of a chunk -- the numbers behind the paper's
// "17.6 Gbytes transferred" audit -- and provides a standalone
// enumerator that replays the sweep loop structure without touching
// field data (trace-driven mode for the large benches; a test asserts
// it emits the identical diagonal stream as the functional sweeper).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/config.h"
#include "sweep/plan.h"
#include "sweep/sweeper.h"

namespace cellsweep::core {

/// Shape of one SPE work chunk.
struct ChunkShape {
  int nlines = 4;
  int it = 50;
  int nm = 9;
  std::size_t real_bytes = 8;  ///< sizeof element (8 = DP, 4 = SP)
  bool aligned_rows = true;
};

/// DMA transfer plan of one chunk, in row granularity. Gets are split
/// into the *bulk* working set (source moments, flux moments, cross
/// sections -- no wavefront dependency, so double buffering prefetches
/// them across the diagonal barrier) and the *face* set (phi_j / phi_k
/// rows and phi_i scalars, produced by the previous diagonal).
struct TransferPlan {
  std::size_t row_bytes = 0;   ///< bytes per row transfer (padded if aligned)
  int bulk_get_rows = 0;       ///< dependency-free rows LS <- memory
  int face_get_rows = 0;       ///< wavefront face rows LS <- memory
  int put_rows = 0;            ///< rows DMA'd LS -> main memory
  std::size_t extra_get_bytes = 0;  ///< face scalars & descriptors
  std::size_t extra_put_bytes = 0;

  int get_rows() const noexcept { return bulk_get_rows + face_get_rows; }
  std::size_t bulk_get_bytes() const noexcept {
    return static_cast<std::size_t>(bulk_get_rows) * row_bytes;
  }
  std::size_t face_get_bytes() const noexcept {
    return static_cast<std::size_t>(face_get_rows) * row_bytes +
           extra_get_bytes;
  }
  std::size_t get_bytes() const noexcept {
    return bulk_get_bytes() + face_get_bytes();
  }
  std::size_t put_bytes() const noexcept {
    return static_cast<std::size_t>(put_rows) * row_bytes + extra_put_bytes;
  }
  std::size_t total_bytes() const noexcept {
    return get_bytes() + put_bytes();
  }

  /// Local-store bytes of one staging buffer for this chunk (streamed
  /// rows plus the q/Phi scratch lines the kernel needs).
  std::size_t ls_buffer_bytes = 0;
};

/// Computes the transfer plan for a chunk under the given config.
TransferPlan plan_chunk(const ChunkShape& shape);

/// Chunks per diagonal, delegating to the shared plan layer (bundles
/// of kBundleLines, remainder last). Kept as a convenience alias.
inline int chunks_for_lines(int nlines) {
  return sweep::ChunkPlan::chunk_count(nlines);
}

/// Replays the sweep() loop structure -- octants, angle blocks, K-plane
/// blocks, JK-diagonals -- emitting the same DiagonalWork stream as
/// SweepState::sweep, without field data. One call covers one sweep
/// (one iteration); the caller owns the iteration loop and fixup flag.
void enumerate_sweep(const sweep::Grid& grid, int angles_per_octant,
                     const sweep::SweepConfig& cfg, bool fixup,
                     const sweep::DiagonalObserver& observer);

/// Totals of a whole run, used by the Section 6 bounds audit.
struct WorkloadTotals {
  std::uint64_t lines = 0;
  std::uint64_t chunks = 0;
  std::uint64_t cell_solves = 0;    ///< cell x angle solves
  std::uint64_t diagonals = 0;
  double bytes = 0.0;               ///< DMA payload bytes (both ways)
  std::uint64_t flops = 0;
};

/// Accumulates totals for @p iterations sweeps of the given problem
/// shape under @p cell_cfg (fixups per the sweep config's schedule).
WorkloadTotals audit_workload(const sweep::Grid& grid, int angles_per_octant,
                              const CellSweepConfig& cell_cfg, int nm);

}  // namespace cellsweep::core
