// Region tallies: the quantities a transport user actually reads out —
// volume-averaged fluxes and reaction rates over boxes or material
// regions (detector responses, shield transmission factors, power by
// pin). Computed from the converged flux moments.
#pragma once

#include <string>
#include <vector>

#include "sweep/field.h"
#include "sweep/problem.h"

namespace cellsweep::sweep {

/// One region's integrated results.
struct RegionTally {
  std::string name;
  std::int64_t cells = 0;
  double volume = 0;            ///< cm^3
  double mean_flux = 0;         ///< volume-averaged scalar flux
  double peak_flux = 0;
  double min_flux = 0;
  double absorption_rate = 0;   ///< integral sigma_a * phi dV
  double scattering_rate = 0;   ///< integral sigma_s0 * phi dV
  double source_rate = 0;       ///< integral q dV
};

/// A set of named regions to tally.
class TallySet {
 public:
  /// Tallies the box [i0,i1) x [j0,j1) x [k0,k1).
  void add_box(const std::string& name, int i0, int i1, int j0, int j1,
               int k0, int k1);

  /// Tallies every cell assigned to material @p material_index.
  void add_material(const std::string& name, int material_index);

  /// Evaluates all regions against @p flux (moment 0) on @p problem.
  template <typename Real>
  std::vector<RegionTally> compute(const Problem& problem,
                                   const MomentField<Real>& flux) const;

  std::size_t size() const noexcept { return regions_.size(); }

 private:
  struct Region {
    std::string name;
    bool by_material = false;
    int material = 0;
    int i0 = 0, i1 = 0, j0 = 0, j1 = 0, k0 = 0, k1 = 0;
  };
  std::vector<Region> regions_;
};

}  // namespace cellsweep::sweep
