// Tests for reflective boundary conditions, including the exact
// infinite-medium analytic check (phi = q / sigma_a everywhere).
#include <gtest/gtest.h>

#include "sweep/mpi_sweeper.h"
#include "sweep/problem.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {
namespace {

TEST(OctantMirror, BitLayoutMatchesAllOctants) {
  // The reflection code relies on: iq^1 flips sx, iq^2 flips sy,
  // iq^4 flips sz in all_octants()'s ordering.
  const auto octs = all_octants();
  for (int iq = 0; iq < 8; ++iq) {
    EXPECT_EQ(octs[iq ^ 1].sx, -octs[iq].sx);
    EXPECT_EQ(octs[iq ^ 1].sy, octs[iq].sy);
    EXPECT_EQ(octs[iq ^ 1].sz, octs[iq].sz);
    EXPECT_EQ(octs[iq ^ 2].sy, -octs[iq].sy);
    EXPECT_EQ(octs[iq ^ 2].sx, octs[iq].sx);
    EXPECT_EQ(octs[iq ^ 4].sz, -octs[iq].sz);
    EXPECT_EQ(octs[iq ^ 4].sx, octs[iq].sx);
  }
}

TEST(Boundary, DefaultsAreVacuum) {
  const Problem p = Problem::benchmark_cube(4);
  for (int f = 0; f < 6; ++f)
    EXPECT_EQ(p.boundary(f), FaceBc::kVacuum);
  EXPECT_FALSE(p.any_reflective());
}

TEST(Boundary, InfiniteMediumFactory) {
  const Problem p = Problem::infinite_medium(4);
  EXPECT_TRUE(p.any_reflective());
  for (int f = 0; f < 6; ++f)
    EXPECT_EQ(p.boundary(f), FaceBc::kReflective);
}

SweepConfig refl_config(int mk, int iters, double eps = 0.0) {
  SweepConfig cfg;
  cfg.mk = mk;
  cfg.mmi = 3;
  cfg.max_iterations = iters;
  cfg.epsilon = eps;
  cfg.fixup_from_iteration = 9999;
  return cfg;
}

TEST(Boundary, InfiniteMediumExactSolution) {
  // All faces reflective + uniform medium: the discrete-ordinates
  // solution is spatially flat and equals q / sigma_a exactly.
  const double sigma_t = 1.0, sigma_s = 0.5, q = 1.0;
  const Problem p = Problem::infinite_medium(6, sigma_t, sigma_s, q);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(state, refl_config(3, 250));
  const double exact = q / (sigma_t - sigma_s);
  const auto& g = p.grid();
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        ASSERT_NEAR(state.flux().at(0, k, j, i), exact, 1e-8)
            << i << "," << j << "," << k;
  // Nothing leaks through reflective faces.
  EXPECT_DOUBLE_EQ(state.leakage().total(), 0.0);
}

TEST(Boundary, InfiniteMediumExactForOtherCrossSections) {
  const double sigma_t = 2.5, sigma_s = 1.5, q = 3.0;
  const Problem p = Problem::infinite_medium(4, sigma_t, sigma_s, q);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(state, refl_config(2, 250));
  EXPECT_NEAR(state.flux().at(0, 2, 1, 3), q / (sigma_t - sigma_s), 1e-8);
}

TEST(Boundary, ReflectionInvariantUnderBlocking) {
  // MK/MMI reorganization must not change the reflected solution.
  const Problem p = Problem::infinite_medium(6);
  SnQuadrature quad(6);
  SweepState<double> a(p, quad, 2, kBenchmarkMoments);
  SweepState<double> b(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(a, refl_config(3, 10));
  SweepConfig alt = refl_config(6, 10);
  alt.mmi = 6;
  solve_source_iteration(b, alt);
  EXPECT_EQ(MomentField<double>::max_abs_diff_moment0(a.flux(), b.flux()),
            0.0);
}

TEST(Boundary, HalfReflectiveRaisesFluxOnThatSide) {
  // Reflecting only the west face: flux near that wall rises toward the
  // interior level, flux near the vacuum east wall stays depressed.
  Problem p = Problem::benchmark_cube(8);
  p.set_boundary(kFaceWest, FaceBc::kReflective);
  SnQuadrature quad(6);
  SweepState<double> refl(p, quad, 2, kBenchmarkMoments);
  solve_source_iteration(refl, refl_config(4, 30, 1e-10));

  const Problem vac = Problem::benchmark_cube(8);
  SweepState<double> ref(vac, quad, 2, kBenchmarkMoments);
  solve_source_iteration(ref, refl_config(4, 30, 1e-10));

  const int mid = 4;
  EXPECT_GT(refl.flux().at(0, mid, mid, 0), ref.flux().at(0, mid, mid, 0));
  EXPECT_NEAR(refl.flux().at(0, mid, mid, 7) / ref.flux().at(0, mid, mid, 7),
              1.0, 0.15);
  // The reflective face contributes no leakage; the others still do.
  EXPECT_DOUBLE_EQ(refl.leakage().west, 0.0);
  EXPECT_GT(refl.leakage().east, 0.0);
}

TEST(Boundary, ReflectiveScalarAndSimdAgree) {
  const Problem p = Problem::infinite_medium(4);
  SnQuadrature quad(6);
  SweepState<double> a(p, quad, 2, kBenchmarkMoments);
  SweepState<double> b(p, quad, 2, kBenchmarkMoments);
  SweepConfig sc = refl_config(2, 6);
  sc.kernel = KernelKind::kScalar;
  solve_source_iteration(a, sc);
  SweepConfig sv = refl_config(2, 6);
  sv.kernel = KernelKind::kSimd;
  solve_source_iteration(b, sv);
  EXPECT_EQ(MomentField<double>::max_abs_diff_moment0(a.flux(), b.flux()),
            0.0);
}

TEST(Boundary, ReflectiveRejectsExternalBoundaryIo) {
  // The MPI decomposition handles I/J faces itself; reflective global
  // faces are only supported by the built-in serial handling.
  const Problem p = Problem::infinite_medium(4);
  SnQuadrature quad(6);
  msg::World world(1);
  SweepConfig cfg = refl_config(2, 2);
  EXPECT_THROW(solve_mpi(world, p, quad, 2, cfg, 1, 1, kBenchmarkMoments),
               std::logic_error);
}

TEST(Boundary, ReflectiveConservesParticles) {
  // Partially reflective box: source = absorption + leakage through the
  // remaining vacuum faces, at convergence.
  Problem p = Problem::benchmark_cube(6);
  p.set_boundary(kFaceWest, FaceBc::kReflective);
  p.set_boundary(kFaceBottom, FaceBc::kReflective);
  SnQuadrature quad(6);
  SweepState<double> state(p, quad, 2, kBenchmarkMoments);
  const SolveResult r =
      solve_source_iteration(state, refl_config(3, 400, 1e-12));
  ASSERT_TRUE(r.converged);
  const double sink = state.absorption_rate() + state.leakage().total();
  EXPECT_NEAR(sink / p.total_external_source(), 1.0, 1e-7);
}

}  // namespace
}  // namespace cellsweep::sweep
