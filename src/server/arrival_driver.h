// ArrivalDriver: replays a core::ArrivalPlan against a SolveServer in
// host time, turning the closed drain-a-backlog server into an open
// system. One driver thread walks the plan's merged schedule in order,
// sleeps out each inter-arrival gap, and submits whatever JobRequest
// the caller's factory builds for that arrival.
//
// Determinism: the *schedule* (which job, which tenant, which order)
// is the plan's -- a pure function of the seed -- and submission
// happens strictly in schedule order from one thread, so the server's
// admission order (and hence JobTrace event order) is reproducible
// across runs and across `--tenants`/`--threads`. Only the host-time
// stamps vary run to run, exactly like every other host-side clock in
// the repo. time_scale compresses the schedule (0 = submit as fast as
// possible, no sleeping) so CI smoke runs need not sit out real gaps.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/arrival.h"
#include "server/solve_server.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::core {

class ArrivalDriver {
 public:
  /// Builds the request for one scheduled arrival; @p k is the global
  /// 0-based index in schedule order (useful for cycling input files).
  using MakeRequest = std::function<JobRequest(const Arrival& a,
                                               std::uint64_t k)>;

  /// Driver progress. rejected counts AdmissionError throws (queue
  /// full, shutdown, ...) -- an open system drops work instead of
  /// blocking the arrival process on it.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    /// Worst host-seconds the driver ran behind its schedule (0 when
    /// every submit happened on time). Telemetry only.
    double max_behind_s = 0.0;
  };

  /// Does not start the replay; call start(). @p time_scale multiplies
  /// every scheduled gap (clamped to >= 0; 0 submits back to back).
  ArrivalDriver(SolveServer& server, ArrivalPlan plan, MakeRequest make,
                double time_scale = 1.0);
  /// Stops (if still running) and joins.
  ~ArrivalDriver();

  ArrivalDriver(const ArrivalDriver&) = delete;
  ArrivalDriver& operator=(const ArrivalDriver&) = delete;

  /// Launches the replay thread. Call at most once; a disabled plan
  /// finishes immediately.
  void start();
  /// Blocks until the whole schedule has been submitted (or stop()
  /// interrupted it). Safe without start(); joins the thread.
  void join();
  /// Asks the replay to stop after the in-flight submit; join() to
  /// wait for it.
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  Stats stats() const EXCLUDES(mu_);
  /// Job ids of every accepted submission, in schedule order -- the
  /// handle tests use to wait on / cancel open-system jobs.
  std::vector<int> ids() const EXCLUDES(mu_);

 private:
  void run();

  SolveServer& server_;
  const ArrivalPlan plan_;
  const MakeRequest make_;
  const double time_scale_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable util::Mutex mu_{util::lockrank::kArrivalDriver,
                          "ArrivalDriver::mu_"};
  Stats stats_ GUARDED_BY(mu_);
  std::vector<int> ids_ GUARDED_BY(mu_);

  std::thread thread_;
};

}  // namespace cellsweep::core
