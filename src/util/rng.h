// Deterministic, seedable random number generation.
//
// All stochastic inputs in the test suite and the workload generators
// (synthetic cross sections, randomized property tests) flow through
// this splitmix64-based generator so every run of the benches and tests
// is bit-reproducible across platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace cellsweep::util {

/// splitmix64: tiny, high-quality, fully deterministic PRNG.
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : (*this)() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace cellsweep::util
