// Seeded fault injection for the Cell machine model.
//
// Real Cell parts shipped with 7 of 8 SPEs enabled for yield, and a
// production port has to survive worse: transient DMA failures, lost
// dispatch messages, throttled memory banks, SPEs that die mid-run.
// FaultPlan is the single source of truth for all of it: a FaultSpec
// (parsed from the `--faults=<spec>` CLI grammar or built directly)
// describes *what* can break, and the plan answers every "does this
// event fail?" query deterministically from util::SplitMix64.
//
// Determinism contract: every decision is a pure hash of
// (seed, domain, unit, sequence, attempt) -- no shared stream, no
// global state -- so consumers may query in any order and the schedule
// is identical across runs, across host thread counts, and across the
// functional and trace-driven modes (which drive the same event
// stream). Same seed => byte-identical metrics; different seeds =>
// different schedules. Tests pin both.
//
// A default-constructed (or all-zero-rate) plan is *disabled*: every
// consumer gates its fault path on enabled(), so the healthy path
// executes exactly the pre-fault-injection arithmetic and stays
// bit-identical to the checked-in baselines.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cellsweep::sim {

/// Thrown for malformed `--faults=<spec>` strings.
class FaultSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when the machine cannot degrade gracefully (e.g. every SPE
/// is disabled or has failed: there is nothing left to re-dispatch to).
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Health of one SPE. Exactly one of the three degradations applies
/// per entry; multiple entries may name different SPEs.
struct SpeFault {
  int spe = -1;
  /// Chunks the SPE serves before it fails permanently. 0 means
  /// disabled from boot (the 7-of-8 yield case); -1 means it never
  /// fails on its own.
  std::int64_t fail_after_chunks = -1;
  /// Kernel slowdown factor (>= 1; 1 = full speed). A degraded SPE
  /// executes the same instructions in compute_scale x the cycles.
  double compute_scale = 1.0;
};

/// Everything the fault injector can be told to break.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Probability one DMA transfer attempt fails transiently (the MFC
  /// retries with exponential backoff, re-streaming the payload).
  double dma_fail_rate = 0.0;
  /// Probability one MFC tag-status wait misses the completion event
  /// and burns a timeout before re-polling.
  double tag_timeout_rate = 0.0;
  /// Probability one dispatch message (mailbox write / LS poke) is
  /// dropped and must be resent after a timeout.
  double mailbox_drop_rate = 0.0;
  /// Probability one MIC request is bank-throttled (DRAM refresh or a
  /// failing bank running at reduced burst efficiency).
  double mic_throttle_rate = 0.0;
  /// Efficiency multiplier applied to throttled MIC requests (0..1).
  double mic_throttle_factor = 0.25;
  /// Retry budget per DMA command; exceeding it is not modeled (the
  /// geometric draw is capped here, so a command always completes).
  int max_dma_retries = 8;
  /// Disabled, failing or degraded SPEs.
  std::vector<SpeFault> spes;

  /// True when any mechanism can actually fire. Disabled specs take
  /// the exact pre-fault-injection code paths everywhere.
  bool any() const noexcept {
    return dma_fail_rate > 0.0 || tag_timeout_rate > 0.0 ||
           mailbox_drop_rate > 0.0 || mic_throttle_rate > 0.0 ||
           !spes.empty();
  }
};

/// Parses the `--faults=<spec>` grammar: comma-separated `key=value`
/// entries, all optional:
///
///   seed=42            decision seed (default 1)
///   dma=0.01           transient DMA transfer failure rate
///   timeout=0.001      tag-wait timeout rate
///   drop=0.005         dispatch message drop rate
///   throttle=0.01      MIC throttle rate (efficiency factor 0.25)
///   throttle=0.01:0.5  ... with an explicit efficiency factor
///   retries=8          DMA retry cap
///   spe=3:down         SPE 3 disabled from boot (7-of-8 yield)
///   spe=2:after:200    SPE 2 fails permanently after 200 chunks
///   spe=5:slow:2.0     SPE 5 computes 2x slower
///
/// Throws FaultSpecError with the offending entry on malformed input.
FaultSpec parse_fault_spec(const std::string& text);

/// Event domains; part of every decision hash so the same sequence
/// number in different domains draws independently.
enum class FaultDomain : std::uint8_t {
  kDmaTransfer = 1,
  kTagWait = 2,
  kDispatch = 3,
  kMicBank = 4,
};

/// The deterministic fault schedule (see file comment).
class FaultPlan {
 public:
  /// Disabled plan: every query reports "healthy".
  FaultPlan() = default;

  /// Validates @p spec (rates in [0,1], factors sane, SPE entries
  /// consistent); throws FaultSpecError on nonsense.
  explicit FaultPlan(const FaultSpec& spec);

  bool enabled() const noexcept { return enabled_; }
  const FaultSpec& spec() const noexcept { return spec_; }

  /// Transient failures the @p seq-th DMA command of MFC @p unit
  /// suffers before succeeding (geometric in dma_fail_rate, capped at
  /// max_dma_retries). 0 = clean first attempt.
  int dma_failures(int unit, std::uint64_t seq) const;

  /// Whether the @p seq-th tag-status wait of MFC @p unit times out.
  bool tag_timeout(int unit, std::uint64_t seq) const;

  /// Drops the @p seq-th dispatch message suffers before it gets
  /// through (geometric in mailbox_drop_rate, capped at 4).
  int dispatch_drops(std::uint64_t seq) const;

  /// Whether the @p seq-th MIC request is bank-throttled.
  bool mic_throttle(std::uint64_t seq) const;
  double mic_throttle_factor() const noexcept {
    return spec_.mic_throttle_factor;
  }

  /// SPE health: disabled from boot / fails after N chunks (-1 =
  /// never) / kernel slowdown factor.
  bool spe_disabled(int spe) const;
  std::int64_t spe_fail_after(int spe) const;
  double spe_compute_scale(int spe) const;

 private:
  /// Uniform [0,1) draw, pure in all arguments.
  double draw(FaultDomain domain, int unit, std::uint64_t seq,
              std::uint32_t attempt) const;
  /// Geometric number of failures at @p rate, capped at @p cap.
  int failures(FaultDomain domain, int unit, std::uint64_t seq, double rate,
               int cap) const;

  FaultSpec spec_;
  bool enabled_ = false;
};

}  // namespace cellsweep::sim
