// Simulated hardware performance counters.
//
// The paper's argument is counter-shaped: dual-issue rates explain the
// 64%-of-peak kernel, DMA-vs-compute decompositions explain the Fig. 5
// ladder, bank behavior explains the allocation offsets. CounterSet is
// the registry those numbers live in: a named tree of (counter, value)
// pairs that every machine unit publishes into after a run -- per-SPE
// SPU-pipeline and MFC counters under "spe<N>", chip-shared MIC / EIB /
// dispatch counters at the machine level, and a hierarchical
// "spe_total" aggregate merged from the per-SPE sets.
//
// TimeSlicedProfiler adds the time dimension: it is a TraceSink that
// bins the duration of every span the timing engine emits into
// fixed-width windows of simulated time, per (track, category) -- a
// utilization-over-time series that shows the wavefront ramp-up and
// drain which whole-run averages hide. Both are observation only: they
// consume the event stream and unit statistics, and no simulated tick
// ever depends on them (a test pins bit-identical timing with the
// profiler attached).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "sim/trace.h"

namespace cellsweep::sim {

/// A named set of counters with named child sets. Counters are stored
/// in insertion order, so serializations are deterministic; values are
/// doubles (tick and event counts stay exact below 2^53).
class CounterSet {
 public:
  CounterSet() = default;
  explicit CounterSet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Sets @p counter to @p value, creating it if absent.
  void set(std::string_view counter, double value);

  /// Adds @p delta to @p counter, creating it at zero if absent.
  void add(std::string_view counter, double delta);

  /// Value of @p counter; 0 if absent.
  double value(std::string_view counter) const;

  bool has(std::string_view counter) const;

  /// Counters in insertion order.
  const std::vector<std::pair<std::string, double>>& values() const noexcept {
    return values_;
  }

  /// Child set named @p child, created (in insertion order) if absent.
  CounterSet& child(std::string_view child);

  /// Child set named @p child, or null if absent.
  const CounterSet* find_child(std::string_view child) const;

  const std::vector<CounterSet>& children() const noexcept {
    return children_;
  }

  /// Appends @p set as a child (after any existing children).
  CounterSet& add_child(CounterSet set);

  /// Recursively adds every counter of @p other into this set, creating
  /// counters and children as needed. The per-SPE -> machine
  /// aggregation: merge each "spe<N>" set into one "spe_total".
  void merge(const CounterSet& other);

  /// True when the set holds no counters and no children.
  bool empty() const noexcept { return values_.empty() && children_.empty(); }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<CounterSet> children_;
};

/// One utilization-over-time series: busy ticks per window for one
/// (track, category) pair, e.g. ("SPE3", "compute").
struct ProfileSeries {
  std::string track;
  std::string category;
  std::vector<double> busy_ticks;  ///< one entry per window
};

/// A complete time-sliced profile: series share one window width and
/// cover [0, end).
struct Profile {
  Tick window_ticks = 0;  ///< width of one window (0: no profile taken)
  Tick end_ticks = 0;     ///< latest simulated time observed
  std::vector<ProfileSeries> series;

  std::size_t window_count() const noexcept {
    return window_ticks == 0
               ? 0
               : static_cast<std::size_t>((end_ticks + window_ticks - 1) /
                                          window_ticks);
  }
  bool empty() const noexcept { return series.empty(); }
};

/// TraceSink that accumulates span durations into fixed simulated-time
/// windows per (track, category). The run length is unknown up front,
/// so the profiler starts from a small window and doubles it (merging
/// adjacent window pairs -- totals are preserved exactly) whenever the
/// stream outgrows max_windows; the final profile has at most
/// max_windows windows and at least half that many. Deterministic: the
/// binning depends only on the event stream.
///
/// Optionally forwards every event to a downstream sink, so one run can
/// feed both the profiler and a ChromeTraceWriter.
class TimeSlicedProfiler : public TraceSink {
 public:
  explicit TimeSlicedProfiler(std::size_t max_windows = 128,
                              Tick initial_window = kTicksPerSecond /
                                                    1000000000);

  /// Forwards all events to @p downstream as well (null: no forward).
  void forward_to(TraceSink* downstream);

  // TraceSink interface -------------------------------------------------
  int track(const std::string& name) override;
  void span(int track, const char* name, const char* category, Tick start,
            Tick end) override;
  void instant(int track, const char* name, const char* category,
               Tick at) override;
  void counter(int track, const char* name, Tick at, double value) override;

  // Results -------------------------------------------------------------
  Tick window_ticks() const noexcept { return window_; }
  Tick end_ticks() const noexcept { return end_; }
  std::size_t max_windows() const noexcept { return max_windows_; }

  /// Snapshot of the binned series, trimmed to the windows actually
  /// covered by events.
  Profile profile() const;

  /// Replays the profile into @p out as Chrome "ph":"C" counter events
  /// on this profiler's tracks: one sample per window boundary, value =
  /// busy fraction of the window in percent. Call after the run.
  void emit_counter_events(TraceSink& out) const;

 private:
  struct Series {
    int track = 0;
    std::string category;
    std::vector<double> bins;  ///< busy ticks per window
  };

  /// Doubles the window width, merging adjacent bin pairs.
  void fold();
  Series& series_for(int track, const char* category);

  std::size_t max_windows_;
  Tick window_;
  Tick end_ = 0;
  std::vector<std::string> tracks_;
  std::vector<Series> series_;
  TraceSink* downstream_ = nullptr;
  std::vector<int> downstream_tracks_;  ///< my track id -> downstream id
};

}  // namespace cellsweep::sim
