// Figure 10: "Expected performance impact of optimizations,
// architectural improvements and single precision floating point."
//
// The paper projects, from the shipped 1.33 s configuration:
//   * larger DMA granularity           -> 1.2 s
//   * distributed task distribution    -> 0.9 s
//   * fully pipelined DP unit          -> 0.85 s (marginal!)
//   * single-precision arithmetic      -> ~0.45 s (memory-bound)
// Here each projection is an actual mechanism switch in the machine
// model, run end to end.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  using core::OptimizationStage;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Figure 10: projected optimizations (" +
                      std::to_string(opt.cube) + "^3)");

  const struct {
    OptimizationStage stage;
    double paper_s;
  } rows[] = {
      {OptimizationStage::kSpeLsPoke, 1.33},
      {OptimizationStage::kFutureBigDma, 1.2},
      {OptimizationStage::kFutureDistributed, 0.9},
      {OptimizationStage::kFuturePipelinedDp, 0.85},
      {OptimizationStage::kFutureSingle, 0.45},
  };

  util::TextTable table({"configuration", "paper [s]", "measured [s]",
                         "mem bound [s]", "compute busy [s]"});
  bench::BenchJson json("fig10", opt.cube);
  for (const auto& row : rows) {
    const core::RunReport r = bench::run_stage(row.stage, opt.cube);
    json.add_run(core::stage_name(row.stage), r);
    table.add_row({core::stage_name(row.stage),
                   bench::fmt("%.2f", row.paper_s),
                   bench::fmt("%.2f", r.seconds),
                   bench::fmt("%.2f", r.memory_bound_s),
                   bench::fmt("%.2f", r.compute_busy_s)});
  }
  table.print(std::cout);

  std::cout
      << "\nPaper's observation reproduced: the fully pipelined DP unit\n"
         "adds little once dispatch is distributed (memory-bound), and\n"
         "single precision approaches the halved memory floor.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
