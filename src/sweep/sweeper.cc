#include "sweep/sweeper.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sweep/plan.h"

namespace cellsweep::sweep {
namespace {

// Octant index bit layout in all_octants(): bit 0 flips sx, bit 1
// flips sy, bit 2 flips sz (verified by a unit test).
constexpr int mirror_octant_i(int iq) { return iq ^ 1; }
constexpr int mirror_octant_j(int iq) { return iq ^ 2; }
constexpr int mirror_octant_k(int iq) { return iq ^ 4; }

}  // namespace

void SweepConfig::validate(int kt, int mm) const {
  if (mk < 1 || kt % mk != 0)
    throw std::invalid_argument("SweepConfig: MK must factor KT");
  if (mmi < 1 || mm % mmi != 0)
    throw std::invalid_argument("SweepConfig: MMI must factor the angle count");
  if (max_iterations < 1)
    throw std::invalid_argument("SweepConfig: need at least one iteration");
  if (fixup_from_iteration < 0)
    throw std::invalid_argument("SweepConfig: fixup_from_iteration >= 0");
  if (threads < 1)
    throw std::invalid_argument("SweepConfig: need at least one thread");
}

template <typename Real>
SweepState<Real>::SweepState(const Problem& problem, const SnQuadrature& quad,
                             int l_max, int nm_cap)
    : problem_(&problem),
      quad_(&quad),
      moments_(quad, l_max, nm_cap),
      sigt_(problem.grid()),
      qext_(problem.grid()),
      flux_(problem.grid(), moments_.nm()),
      src_(problem.grid(), moments_.nm()) {
  const Grid& g = problem.grid();
  const int mm = quad.angles_per_octant();
  const int nm = moments_.nm();

  // Per-cell cross sections and external source, padded-row layout.
  cell_material_.resize(g.cells());
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i) {
        const Material& mat = problem.material_of(i, j, k);
        sigt_.at(k, j, i) = static_cast<Real>(mat.sigma_t);
        qext_.at(k, j, i) = static_cast<Real>(mat.q_ext);
        cell_material_[g.index(i, j, k)] = problem.material_index(i, j, k);
      }
  // Padding cells must carry a benign sigma_t: SIMD lanes may divide by
  // sigt in the padded tail.
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = g.it; i < sigt_.it_padded(); ++i)
        sigt_.at(k, j, i) = Real(1);

  // Per-material source-moment coefficients (2l+1) * sigma_s,l mapped
  // onto the moment index.
  sigma_s_.resize(problem.materials().size());
  for (std::size_t m = 0; m < problem.materials().size(); ++m) {
    const auto& mat = problem.materials()[m];
    sigma_s_[m].assign(nm, Real(0));
    for (int n = 0; n < nm; ++n) {
      const int l = moments_.moment_order(n);
      if (l < static_cast<int>(mat.sigma_s.size()))
        sigma_s_[m][n] =
            static_cast<Real>((2.0 * l + 1.0) * mat.sigma_s[l]);
    }
  }

  // Kernel constants per (octant, angle).
  const auto octants = all_octants();
  angle_consts_.resize(8 * static_cast<std::size_t>(mm));
  for (int iq = 0; iq < 8; ++iq) {
    const double* pn = moments_.pn(iq);
    for (int m = 0; m < mm; ++m) {
      const Ordinate& o = quad.octant_ordinates()[m];
      AngleConsts& c = angle_consts_[iq * mm + m];
      c.ci = static_cast<Real>(2.0 * o.mu / g.dx);
      c.cj = static_cast<Real>(2.0 * o.eta / g.dy);
      c.ck = static_cast<Real>(2.0 * o.xi / g.dz);
      c.pn_src.resize(nm);
      c.pn_acc.resize(nm);
      for (int n = 0; n < nm; ++n) {
        c.pn_src[n] = static_cast<Real>(pn[m * nm + n]);
        c.pn_acc[n] = static_cast<Real>(o.w * pn[m * nm + n]);
      }
      (void)octants;
    }
  }

  // Face arrays sized for the largest legal blocking (mk = kt, mmi = mm).
  const std::size_t it_pad = flux_.it_padded();
  phi_k_face_.assign(static_cast<std::size_t>(mm) * g.jt * it_pad, Real(0));
  phi_j_face_.assign(static_cast<std::size_t>(mm) * g.kt * it_pad, Real(0));
  phi_i_face_.assign(static_cast<std::size_t>(mm) * g.kt * g.jt, Real(0));

  reflective_ = problem.any_reflective();
  if (reflective_) {
    refl_i_.assign(2ull * 8 * mm * g.kt * g.jt, Real(0));
    refl_j_.assign(2ull * 8 * mm * g.kt * it_pad, Real(0));
    refl_k_.assign(2ull * 8 * mm * g.jt * it_pad, Real(0));
  }

  scratch_.push_back(std::make_unique<BundleScratch<Real>>(flux_.it_padded()));
  worker_stats_.resize(1);
}

template <typename Real>
void SweepState<Real>::build_source() {
  const Grid& g = problem_->grid();
  const int nm = moments_.nm();
  for (int n = 0; n < nm; ++n)
    for (int k = 0; k < g.kt; ++k)
      for (int j = 0; j < g.jt; ++j) {
        const Real* fl = flux_.line(n, k, j);
        Real* sl = src_.line(n, k, j);
        const Real* ql = qext_.line(k, j);
        const std::uint8_t* mat =
            cell_material_.data() + g.index(0, j, k);
        if (n == 0) {
          for (int i = 0; i < g.it; ++i)
            sl[i] = sigma_s_[mat[i]][0] * fl[i] + ql[i];
        } else {
          for (int i = 0; i < g.it; ++i)
            sl[i] = sigma_s_[mat[i]][n] * fl[i];
        }
      }
}

template <typename Real>
void SweepState<Real>::sweep_block(const SweepConfig& cfg, bool fixup, int iq,
                                   int ab, int kb,
                                   const DiagonalObserver& observer,
                                   SweepRunStats& stats) {
  const Grid& g = problem_->grid();
  const Octant oct = all_octants()[iq];
  const int mm = quad_->angles_per_octant();
  const int it_pad = flux_.it_padded();
  const std::int64_t mstride = flux_.moment_stride();
  const BlockCtx ctx{iq, ab, kb, cfg.mmi, cfg.mk, g.jt, g.it};

  // Block inflows: I (one scalar per line) and J (one row per (m,kk)).
  if (boundary_ != nullptr) {
    boundary_->fetch_i_inflow(ctx, phi_i_face_.data());
    boundary_->fetch_j_inflow(ctx, phi_j_face_.data(), it_pad);
  } else {
    std::fill_n(phi_i_face_.data(),
                static_cast<std::size_t>(cfg.mmi) * cfg.mk * g.jt, Real(0));
    std::fill_n(phi_j_face_.data(),
                static_cast<std::size_t>(cfg.mmi) * cfg.mk * it_pad, Real(0));
    if (reflective_) {
      const int face_i = oct.sx > 0 ? kFaceWest : kFaceEast;
      if (problem_->boundary(face_i) == FaceBc::kReflective) {
        const int src_iq = mirror_octant_i(iq);
        const int side = oct.sx > 0 ? 0 : 1;
        for (int mh = 0; mh < cfg.mmi; ++mh) {
          const int m = ab * cfg.mmi + mh;
          for (int kk = 0; kk < cfg.mk; ++kk) {
            const int kl = kb * cfg.mk + kk;
            const int k = oct.sz > 0 ? kl : g.kt - 1 - kl;
            for (int jj = 0; jj < g.jt; ++jj) {
              const int j = oct.sy > 0 ? jj : g.jt - 1 - jj;
              phi_i_face_[(static_cast<std::size_t>(mh) * cfg.mk + kk) *
                              g.jt + jj] =
                  refl_i_[((static_cast<std::size_t>(side) * 8 + src_iq) *
                               mm + m) * (g.kt * g.jt) + k * g.jt + j];
            }
          }
        }
      }
      const int face_j = oct.sy > 0 ? kFaceNorth : kFaceSouth;
      if (problem_->boundary(face_j) == FaceBc::kReflective) {
        const int src_iq = mirror_octant_j(iq);
        const int side = oct.sy > 0 ? 0 : 1;
        for (int mh = 0; mh < cfg.mmi; ++mh) {
          const int m = ab * cfg.mmi + mh;
          for (int kk = 0; kk < cfg.mk; ++kk) {
            const int kl = kb * cfg.mk + kk;
            const int k = oct.sz > 0 ? kl : g.kt - 1 - kl;
            std::copy_n(
                refl_j_.data() +
                    ((static_cast<std::size_t>(side) * 8 + src_iq) * mm + m) *
                        (g.kt * it_pad) +
                    static_cast<std::size_t>(k) * it_pad,
                it_pad,
                phi_j_face_.data() +
                    (static_cast<std::size_t>(mh) * cfg.mk + kk) * it_pad);
          }
        }
      }
    }
  }

  const int ndiags = ChunkPlan::diagonals_per_block(cfg, g.jt);

  for (int d = 0; d < ndiags; ++d) {
    const ChunkPlan plan(cfg, g.jt, g.it, d, fixup);
    if (plan.empty()) continue;

    // Materialize the plan's line coordinates into kernel arguments.
    // Every line writes disjoint flux rows and face entries (distinct
    // (mh, kk) pairs, hence distinct j and jj), so the chunks below may
    // run concurrently.
    diag_args_.resize(plan.nlines());
    for (int l = 0; l < plan.nlines(); ++l) {
      const LineCoord& lc = plan.lines()[l];
      const int m = ab * cfg.mmi + lc.mh;
      const int j = oct.sy > 0 ? lc.jj : g.jt - 1 - lc.jj;
      const int kl = kb * cfg.mk + lc.kk;  // logical plane along sweep
      const int k = oct.sz > 0 ? kl : g.kt - 1 - kl;
      const AngleConsts& ac = angle_consts_[iq * mm + m];

      LineArgs<Real>& a = diag_args_[l];
      a.it = g.it;
      a.dir = oct.sx;
      a.sigt = sigt_.line(k, j);
      a.src = src_.line(0, k, j);
      a.flux = flux_.line(0, k, j);
      a.mstride = mstride;
      a.pn_src = ac.pn_src.data();
      a.pn_acc = ac.pn_acc.data();
      a.nm = moments_.nm();
      a.ci = ac.ci;
      a.cj = ac.cj;
      a.ck = ac.ck;
      a.phi_j = phi_j_face_.data() +
                (static_cast<std::size_t>(lc.mh) * cfg.mk + lc.kk) * it_pad;
      a.phi_k = phi_k_face_.data() +
                (static_cast<std::size_t>(lc.mh) * g.jt + j) * it_pad;
      a.phi_i = phi_i_face_.data() +
                (static_cast<std::size_t>(lc.mh) * cfg.mk + lc.kk) * g.jt +
                lc.jj;
    }

    const auto run_chunk = [&](int c, int worker) {
      const ChunkDesc& ch = plan.chunks()[c];
      KernelStats& ks = worker_stats_[worker];
      if (cfg.kernel == KernelKind::kSimd) {
        sweep_bundle_simd(diag_args_.data() + ch.first_line, ch.nlines,
                          fixup, *scratch_[worker], &ks);
      } else {
        for (int b = 0; b < ch.nlines; ++b)
          sweep_line_scalar(diag_args_[ch.first_line + b], fixup, &ks);
      }
    };
    const int nchunks = static_cast<int>(plan.chunks().size());
    if (active_pool_) {
      active_pool_->parallel_for(nchunks, run_chunk);
    } else {
      for (int c = 0; c < nchunks; ++c) run_chunk(c, 0);
    }

    stats.chunks += nchunks;
    stats.lines += plan.nlines();
    if (observer) {
      observer(DiagonalWork{iq, ab, kb, d, plan.nlines(), g.it, fixup,
                            cfg.kernel});
    }
  }

  // Block outflows.
  if (boundary_ != nullptr) {
    boundary_->emit_i_outflow(ctx, phi_i_face_.data());
    boundary_->emit_j_outflow(ctx, phi_j_face_.data(), it_pad);
    return;
  }
  const int face_i_out = oct.sx > 0 ? kFaceEast : kFaceWest;
  if (reflective_ && problem_->boundary(face_i_out) == FaceBc::kReflective) {
    // Store the I-outflow for the mirror octant to consume.
    const int side = oct.sx > 0 ? 1 : 0;
    for (int mh = 0; mh < cfg.mmi; ++mh) {
      const int m = ab * cfg.mmi + mh;
      for (int kk = 0; kk < cfg.mk; ++kk) {
        const int kl = kb * cfg.mk + kk;
        const int k = oct.sz > 0 ? kl : g.kt - 1 - kl;
        for (int jj = 0; jj < g.jt; ++jj) {
          const int j = oct.sy > 0 ? jj : g.jt - 1 - jj;
          refl_i_[((static_cast<std::size_t>(side) * 8 + iq) * mm + m) *
                      (g.kt * g.jt) + k * g.jt + j] =
              phi_i_face_[(static_cast<std::size_t>(mh) * cfg.mk + kk) *
                              g.jt + jj];
        }
      }
    }
  } else {
    // Vacuum: tally I leakage out of the domain face.
    const double face_i = g.dy * g.dz;
    double leak_i = 0.0;
    for (int mh = 0; mh < cfg.mmi; ++mh) {
      const Ordinate& o = quad_->octant_ordinates()[ab * cfg.mmi + mh];
      double sum_i = 0.0;
      for (int kk = 0; kk < cfg.mk; ++kk)
        for (int jj = 0; jj < g.jt; ++jj)
          sum_i += static_cast<double>(
              phi_i_face_[(static_cast<std::size_t>(mh) * cfg.mk + kk) * g.jt +
                          jj]);
      leak_i += o.w * o.mu * face_i * sum_i;
    }
    if (oct.sx > 0) leakage_.east += leak_i; else leakage_.west += leak_i;
  }

  const int face_j_out = oct.sy > 0 ? kFaceSouth : kFaceNorth;
  if (reflective_ && problem_->boundary(face_j_out) == FaceBc::kReflective) {
    const int side = oct.sy > 0 ? 1 : 0;
    for (int mh = 0; mh < cfg.mmi; ++mh) {
      const int m = ab * cfg.mmi + mh;
      for (int kk = 0; kk < cfg.mk; ++kk) {
        const int kl = kb * cfg.mk + kk;
        const int k = oct.sz > 0 ? kl : g.kt - 1 - kl;
        std::copy_n(phi_j_face_.data() +
                        (static_cast<std::size_t>(mh) * cfg.mk + kk) * it_pad,
                    it_pad,
                    refl_j_.data() +
                        ((static_cast<std::size_t>(side) * 8 + iq) * mm + m) *
                            (g.kt * it_pad) +
                        static_cast<std::size_t>(k) * it_pad);
      }
    }
  } else {
    const double face_j = g.dx * g.dz;
    double leak_j = 0.0;
    for (int mh = 0; mh < cfg.mmi; ++mh) {
      const Ordinate& o = quad_->octant_ordinates()[ab * cfg.mmi + mh];
      double sum_j = 0.0;
      for (int kk = 0; kk < cfg.mk; ++kk) {
        const Real* row = phi_j_face_.data() +
                          (static_cast<std::size_t>(mh) * cfg.mk + kk) * it_pad;
        for (int i = 0; i < g.it; ++i) sum_j += static_cast<double>(row[i]);
      }
      leak_j += o.w * o.eta * face_j * sum_j;
    }
    if (oct.sy > 0) leakage_.south += leak_j; else leakage_.north += leak_j;
  }
}

template <typename Real>
void SweepState<Real>::tally_k_leakage(int iq, int ab) {
  // Called after the last K-block of one (octant, angle-block): the
  // K-face array holds the domain-exit flux. Only meaningful for the
  // vacuum boundary (K is never decomposed).
  const Grid& g = problem_->grid();
  const Octant oct = all_octants()[iq];
  const int it_pad = flux_.it_padded();
  const double face_k = g.dx * g.dy;
  double leak = 0.0;
  // ab * mmi is only valid with the current config's mmi; the caller
  // passes mh-resolved angles via this loop instead.
  for (int mh = 0; mh < current_mmi_; ++mh) {
    const Ordinate& o = quad_->octant_ordinates()[ab * current_mmi_ + mh];
    double sum = 0.0;
    for (int j = 0; j < g.jt; ++j) {
      const Real* row = phi_k_face_.data() +
                        (static_cast<std::size_t>(mh) * g.jt + j) * it_pad;
      for (int i = 0; i < g.it; ++i) sum += static_cast<double>(row[i]);
    }
    leak += o.w * o.xi * face_k * sum;
  }
  if (oct.sz > 0) leakage_.top += leak; else leakage_.bottom += leak;
}

template <typename Real>
SweepRunStats SweepState<Real>::sweep(const SweepConfig& cfg, bool fixup,
                                      const DiagonalObserver& observer) {
  const Grid& g = problem_->grid();
  const int mm = quad_->angles_per_octant();
  cfg.validate(g.kt, mm);
  current_mmi_ = cfg.mmi;

  // Host executor: an injected shared pool wins (its width sets the
  // worker count); otherwise one owned pool sized by cfg.threads, kept
  // across sweeps and rebuilt only when the thread count changes. One
  // scratch and stats slot per worker either way.
  int threads = cfg.threads;
  if (cfg.pool != nullptr) {
    threads = cfg.pool->size();
    active_pool_ = threads > 1 ? cfg.pool : nullptr;
  } else {
    if (threads == 1) {
      pool_.reset();
    } else if (!pool_ || pool_->size() != threads) {
      pool_ = std::make_unique<util::ThreadPool>(threads);
    }
    active_pool_ = pool_.get();
  }
  while (static_cast<int>(scratch_.size()) < threads)
    scratch_.push_back(
        std::make_unique<BundleScratch<Real>>(flux_.it_padded()));
  worker_stats_.assign(threads, KernelStats{});

  flux_.fill(Real(0));
  SweepRunStats stats;
  const int it_pad = flux_.it_padded();
  const int nkb = g.kt / cfg.mk;
  const int nab = mm / cfg.mmi;

  if (reflective_ && boundary_ != nullptr)
    throw std::logic_error(
        "SweepState: reflective boundaries require the built-in (serial) "
        "boundary handling");

  for (int iq = 0; iq < 8; ++iq) {
    const Octant oct = all_octants()[iq];
    for (int ab = 0; ab < nab; ++ab) {
      // K faces at the entry boundary of this octant's sweep: vacuum or
      // the mirror octant's stored outflow.
      const int face_k_in = oct.sz > 0 ? kFaceBottom : kFaceTop;
      if (reflective_ &&
          problem_->boundary(face_k_in) == FaceBc::kReflective) {
        const int src_iq = mirror_octant_k(iq);
        const int side = oct.sz > 0 ? 0 : 1;
        const int mm_all = quad_->angles_per_octant();
        for (int mh = 0; mh < cfg.mmi; ++mh) {
          const int m = ab * cfg.mmi + mh;
          for (int j = 0; j < g.jt; ++j)
            std::copy_n(refl_k_.data() +
                            ((static_cast<std::size_t>(side) * 8 + src_iq) *
                                 mm_all + m) * (g.jt * it_pad) +
                            static_cast<std::size_t>(j) * it_pad,
                        it_pad,
                        phi_k_face_.data() +
                            (static_cast<std::size_t>(mh) * g.jt + j) *
                                it_pad);
        }
      } else {
        std::fill_n(phi_k_face_.data(),
                    static_cast<std::size_t>(cfg.mmi) * g.jt * it_pad,
                    Real(0));
      }

      for (int kb = 0; kb < nkb; ++kb)
        sweep_block(cfg, fixup, iq, ab, kb, observer, stats);

      // K exit face: store for the mirror octant, or tally leakage.
      // K is never decomposed, so this is always handled here (the MPI
      // boundary only exchanges I/J faces).
      const int face_k_out = oct.sz > 0 ? kFaceTop : kFaceBottom;
      if (reflective_ &&
          problem_->boundary(face_k_out) == FaceBc::kReflective) {
        const int side = oct.sz > 0 ? 1 : 0;
        const int mm_all = quad_->angles_per_octant();
        for (int mh = 0; mh < cfg.mmi; ++mh) {
          const int m = ab * cfg.mmi + mh;
          for (int j = 0; j < g.jt; ++j)
            std::copy_n(phi_k_face_.data() +
                            (static_cast<std::size_t>(mh) * g.jt + j) *
                                it_pad,
                        it_pad,
                        refl_k_.data() +
                            ((static_cast<std::size_t>(side) * 8 + iq) *
                                 mm_all + m) * (g.jt * it_pad) +
                            static_cast<std::size_t>(j) * it_pad);
        }
      } else {
        tally_k_leakage(iq, ab);
      }
    }
  }

  // Fold the per-worker kernel counters (fixed order, so totals are
  // deterministic regardless of the parallel schedule).
  for (const KernelStats& ks : worker_stats_) {
    stats.cells += ks.cells;
    stats.fixup_cells += ks.fixups_applied;
  }
  return stats;
}

template <typename Real>
double SweepState<Real>::absorption_rate() const {
  const Grid& g = problem_->grid();
  double total = 0.0;
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j) {
      const Real* fl = flux_.line(0, k, j);
      for (int i = 0; i < g.it; ++i) {
        const Material& mat = problem_->material_of(i, j, k);
        total += (mat.sigma_t - mat.sigma_s[0]) *
                 static_cast<double>(fl[i]);
      }
    }
  return total * g.cell_volume();
}

template <typename Real>
SolveResult solve_source_iteration(SweepState<Real>& state,
                                   const SweepConfig& cfg,
                                   const DiagonalObserver& observer) {
  const Grid& g = state.problem().grid();
  MomentField<Real> previous(g, state.nm());
  SolveResult result;
  double prev_change = 0.0;

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    // Snapshot for the convergence metric.
    previous = state.flux();
    state.build_source();
    state.reset_leakage();
    const bool fixup = iter >= cfg.fixup_from_iteration;
    const SweepRunStats s = state.sweep(cfg, fixup, observer);
    result.totals.lines += s.lines;
    result.totals.chunks += s.chunks;
    result.totals.cells += s.cells;
    result.totals.fixup_cells += s.fixup_cells;
    ++result.iterations;
    result.final_change = state.flux_change(previous);
    if (cfg.epsilon > 0.0 && result.final_change < cfg.epsilon) {
      result.converged = true;
      break;
    }

    // Error-mode acceleration: every third iteration (so the two
    // change norms feeding the ratio are both un-extrapolated sweeps),
    // estimate the dominant mode's spectral radius and extrapolate it
    // away. Effective when source iteration is slow (rho -> c as the
    // scattering ratio c -> 1).
    if (cfg.accelerate && iter % 3 == 2 && prev_change > 0.0) {
      const double rho = result.final_change / prev_change;
      if (rho > 0.2 && rho < 0.995) {
        const Real factor = static_cast<Real>(rho / (1.0 - rho));
        state.flux().extrapolate_from(previous, factor);
      }
    }
    prev_change = result.final_change;
  }
  return result;
}

template class SweepState<double>;
template class SweepState<float>;
template SolveResult solve_source_iteration<double>(SweepState<double>&,
                                                    const SweepConfig&,
                                                    const DiagonalObserver&);
template SolveResult solve_source_iteration<float>(SweepState<float>&,
                                                   const SweepConfig&,
                                                   const DiagonalObserver&);

}  // namespace cellsweep::sweep
