// Unit helpers and human-readable formatting for times, byte volumes
// and floating-point rates. The bench harness prints the same kinds of
// rows the paper reports (seconds, Gbytes, Gflops/s, grind time), so a
// single consistent formatter lives here.
#pragma once

#include <cstdint>
#include <string>

namespace cellsweep::util {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// snprintf with "C"-locale numeric semantics: formats @p v with @p fmt
/// (exactly one %-conversion, consuming v) and normalizes any
/// locale-specific decimal separator back to '.'. Everything that emits
/// machine-readable numbers (metrics JSON, BENCH_*.json, the bench
/// tables) routes through this so output is byte-stable no matter what
/// LC_NUMERIC the environment set.
std::string cformat(const char* fmt, double v);

/// Formats seconds with an adaptive unit ("1.33 s", "590 ns", ...).
std::string format_seconds(double seconds);

/// Formats a byte count ("17.6 GB"). Uses decimal GB like the paper.
std::string format_bytes(double bytes);

/// Formats a rate in flops/second ("9.3 Gflops/s").
std::string format_flops(double flops_per_second);

/// Formats a dimensionless ratio as "4.5x".
std::string format_speedup(double ratio);

/// Formats a percentage with one decimal ("64.0%").
std::string format_percent(double fraction);

}  // namespace cellsweep::util
