// In-process message-passing substrate.
//
// Sweep3D's top parallelization level is its existing MPI wavefront
// decomposition over a 2-D logical process grid (paper, Sections 3-4:
// "we maintain the wavefront parallelism already implemented in MPI
// ... this guarantees portability of existing parallel software").
// This library reproduces that layer without an MPI installation: a
// World spawns one thread per rank, and Communicators exchange typed
// messages through matched (source, tag) blocking send/recv -- the same
// subset of MPI semantics Sweep3D uses. Programs that only use
// blocking matched send/recv are deterministic regardless of host
// scheduling, so results are bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::msg {

/// Thrown on invalid ranks/tags or communication misuse.
class MsgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class World;

/// Per-rank endpoint; the only handle rank programs touch.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Blocking send of a typed buffer to @p dst with @p tag. Copies the
  /// payload (buffered send), so the caller may reuse the buffer
  /// immediately -- matching Sweep3D's use of MPI_Send on face arrays.
  void send(int dst, int tag, std::span<const double> data);

  /// Blocking receive matched by (src, tag). Messages from the same
  /// (src, tag) arrive in send order (non-overtaking).
  std::vector<double> recv(int src, int tag);

  /// Receives into an existing buffer; the message size must match.
  void recv_into(int src, int tag, std::span<double> out);

  /// Barrier across all ranks in the world.
  void barrier();

  /// Sum-reduction of one double across all ranks; every rank gets the
  /// result (MPI_Allreduce(SUM) equivalent, used for convergence tests).
  double allreduce_sum(double value);

  /// Max-reduction across all ranks.
  double allreduce_max(double value);

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// Owns the mailboxes and runs a rank program on every rank.
class World {
 public:
  explicit World(int num_ranks);

  int size() const noexcept { return num_ranks_; }

  /// Runs @p program once per rank, each on its own thread, and joins.
  /// Exceptions thrown by any rank are rethrown (first rank wins).
  void run(const std::function<void(Communicator&)>& program);

  /// Degraded-node injection: every send from @p rank stalls for
  /// @p delay_us microseconds before posting, modeling a node with a
  /// failing NIC or a thermally throttled CPU. Because the substrate
  /// only offers blocking matched send/recv, a straggler can reorder
  /// thread scheduling but never the matched message streams -- rank
  /// programs must produce bit-identical results regardless (the
  /// property the degraded-node tests pin down). Set 0 to heal.
  void degrade_rank(int rank, int delay_us);

 private:
  friend class Communicator;

  /// One rank's inbox. Each Mailbox is its own capability (leaf lock):
  /// a sender locks only the destination's box, a receiver only its
  /// own, so no two mailbox locks ever nest.
  struct Mailbox {
    /// Enqueues one message from @p src under @p tag (send order kept).
    void post(int src, int tag, std::vector<double> payload) EXCLUDES(mu);
    /// Blocks until a (src, tag) message is available and dequeues it.
    std::vector<double> take(int src, int tag) EXCLUDES(mu);

    util::Mutex mu{util::lockrank::kMsgMailbox, "World::Mailbox::mu"};
    util::CondVar cv;
    // Keyed by (src, tag); each queue preserves send order.
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues
        GUARDED_BY(mu);
  };

  void post(int src, int dst, int tag, std::vector<double> payload);
  std::vector<double> take(int dst, int src, int tag);

  void barrier_wait() EXCLUDES(barrier_mu_);
  double reduce(double value, int rank, bool maximum) EXCLUDES(reduce_mu_);

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  /// Guards the degraded-node table: degrade_rank() may be called from
  /// the driver thread while rank threads are mid-run, racing their
  /// post() reads (pinned by a test).
  mutable util::Mutex degrade_mu_{util::lockrank::kMsgDegrade,
                                  "World::degrade_mu_"};
  std::vector<int> send_delay_us_ GUARDED_BY(degrade_mu_);

  // Barrier state (generation-counted central barrier).
  util::Mutex barrier_mu_{util::lockrank::kMsgBarrier, "World::barrier_mu_"};
  util::CondVar barrier_cv_;
  int barrier_waiting_ GUARDED_BY(barrier_mu_) = 0;
  std::uint64_t barrier_generation_ GUARDED_BY(barrier_mu_) = 0;

  // Reduction scratch (single in-flight reduction, barrier-bracketed).
  util::Mutex reduce_mu_{util::lockrank::kMsgReduce, "World::reduce_mu_"};
  util::CondVar reduce_cv_;
  std::vector<double> reduce_slots_ GUARDED_BY(reduce_mu_);
  int reduce_arrived_ GUARDED_BY(reduce_mu_) = 0;
  std::uint64_t reduce_generation_ GUARDED_BY(reduce_mu_) = 0;
  double reduce_result_ GUARDED_BY(reduce_mu_) = 0.0;
};

}  // namespace cellsweep::msg
