// Unit tests for src/util: aligned allocation, RNG, statistics,
// formatting, tables, the CLI parser and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/aligned.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace cellsweep::util {
namespace {

TEST(Aligned, RoundUp) {
  EXPECT_EQ(round_up(0, 128), 0u);
  EXPECT_EQ(round_up(1, 128), 128u);
  EXPECT_EQ(round_up(128, 128), 128u);
  EXPECT_EQ(round_up(129, 128), 256u);
  EXPECT_EQ(round_up(400, 16), 400u);
  EXPECT_EQ(round_up(401, 16), 416u);
}

TEST(Aligned, IsAligned) {
  EXPECT_TRUE(is_aligned(std::size_t{256}, 128));
  EXPECT_FALSE(is_aligned(std::size_t{260}, 128));
  alignas(128) static char buf[256];
  EXPECT_TRUE(is_aligned(static_cast<const void*>(buf), 128));
}

TEST(Aligned, VectorDataIsCacheLineAligned) {
  for (int n : {1, 7, 50, 1000}) {
    AlignedVector<double> v(n, 1.0);
    EXPECT_TRUE(is_aligned(v.data(), kCacheLineBytes)) << n;
  }
}

TEST(Aligned, PaddedExtentCoversWholeLines) {
  // 50 doubles = 400 B -> padded to 512 B = 64 doubles (the paper's
  // "512-byte DMAs" for the 50-cubed rows).
  EXPECT_EQ(padded_extent<double>(50), 64u);
  EXPECT_EQ(padded_extent<double>(64), 64u);
  EXPECT_EQ(padded_extent<double>(65), 80u);
  EXPECT_EQ(padded_extent<float>(50), 64u);  // 200 B -> 256 B
}

TEST(Aligned, AllocatorComparesEqual) {
  AlignedAllocator<double> a;
  AlignedAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a(), b());
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RangedDouble) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBelow) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(10), 10u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Stats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyIsUniformlyNaN) {
  // The empty-accumulator contract: every moment is NaN, so "no data"
  // is detectable from any of them; count and the empty sum stay 0.
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_TRUE(std::isnan(s.stddev()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, ResetRestoresEmptyContract) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Units, Seconds) {
  EXPECT_EQ(format_seconds(1.33), "1.33 s");
  EXPECT_EQ(format_seconds(0.0025), "2.5 ms");
  EXPECT_EQ(format_seconds(5.9e-7), "590 ns");
}

TEST(Units, Bytes) {
  EXPECT_EQ(format_bytes(17.6e9), "17.6 GB");
  EXPECT_EQ(format_bytes(512), "512 B");
}

TEST(Units, Flops) {
  EXPECT_EQ(format_flops(9.3e9), "9.3 Gflops/s");
}

TEST(Units, SpeedupAndPercent) {
  EXPECT_EQ(format_speedup(4.5), "4.50x");
  EXPECT_EQ(format_percent(0.64), "64.0%");
}

TEST(Table, RendersAligned) {
  TextTable t({"stage", "time"});
  t.add_row({"PPE", "22.3 s"});
  t.add_row({"final", "1.33 s"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("stage"), std::string::npos);
  EXPECT_NE(out.find("1.33 s"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  cli.add_flag("eps", "1e-6", "tolerance");
  cli.add_flag("fixups", "false", "enable fixups");
  const char* argv[] = {"prog", "--size=32", "--eps", "0.5", "--fixups"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("size"), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 0.5);
  EXPECT_TRUE(cli.get_bool("fixups"));
}

TEST(Cli, DefaultsApply) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("size"), 50);
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(Cli, HelpRequested) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage("prog").find("size"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  const char* argv[] = {"prog", "--size"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsNonNumericValues) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  cli.add_flag("eps", "1e-6", "tolerance");
  {
    const char* argv[] = {"prog", "--size=abc"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_THROW(cli.get_int("size"), CliError);
  }
  {
    const char* argv[] = {"prog", "--eps=fast"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_THROW(cli.get_double("eps"), CliError);
  }
}

TEST(Cli, RejectsTrailingGarbage) {
  // "32x" used to parse as 32 via atoi; the strict parser must consume
  // the whole string.
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  cli.add_flag("eps", "1e-6", "tolerance");
  const char* argv[] = {"prog", "--size=32x", "--eps=0.5q"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("size"), CliError);
  EXPECT_THROW(cli.get_double("eps"), CliError);
  try {
    cli.get_int("size");
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_NE(std::string(e.what()).find("size"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("32x"), std::string::npos);
  }
}

TEST(Cli, RejectsOutOfRangeValues) {
  CliParser cli("test");
  cli.add_flag("size", "50", "cube size");
  cli.add_flag("eps", "1e-6", "tolerance");
  const char* argv[] = {"prog", "--size=99999999999999999999999999",
                        "--eps=1e999"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("size"), CliError);
  EXPECT_THROW(cli.get_double("eps"), CliError);
}

TEST(Cli, AcceptsNegativeAndExponentValues) {
  CliParser cli("test");
  cli.add_flag("offset", "0", "signed offset");
  cli.add_flag("eps", "1e-6", "tolerance");
  const char* argv[] = {"prog", "--offset", "-5", "--eps", "2.5e-3"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("offset"), -5);
  EXPECT_DOUBLE_EQ(cli.get_double("eps"), 2.5e-3);
}

TEST(Cli, FlagDoesNotSwallowNextFlag) {
  // "--deck --trace out.json" must fail loudly, not set deck="--trace".
  CliParser cli("test");
  cli.add_flag("deck", "", "input deck");
  cli.add_flag("trace", "", "trace output");
  const char* argv[] = {"prog", "--deck", "--trace", "out.json"};
  EXPECT_FALSE(cli.parse(4, argv));
  EXPECT_NE(cli.error().find("deck"), std::string::npos);
  EXPECT_NE(cli.error().find("expects a value"), std::string::npos);
}

TEST(Cli, PositionalArguments) {
  CliParser cli("test");
  const char* argv[] = {"prog", "input.dat", "out.dat"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.dat");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (int n : {0, 1, 3, threads, 10 * threads + 3}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](int i, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, threads);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
    }
  }
}

TEST(ThreadPool, StaticPartitionIsContiguousPerWorker) {
  ThreadPool pool(3);
  const int n = 11;
  std::vector<int> owner(n, -1);
  pool.parallel_for(n, [&](int i, int worker) { owner[i] = worker; });
  // Worker indices are non-decreasing over the range: contiguous slices.
  for (int i = 1; i < n; ++i) EXPECT_GE(owner[i], owner[i - 1]) << i;
  EXPECT_EQ(owner.front(), 0);
  EXPECT_EQ(owner.back(), 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&](int i, int) {
                          if (i == 9) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable after a throwing round.
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](int i, int) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(5, [&](int, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ThrowingJobDoesNotPoisonTheNextJob) {
  // Regression: job A throws, job B on the same pool must still compute
  // correct results -- the error slot is detached before rethrow, so no
  // stale exception or corrupted fork handshake leaks across jobs.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(32,
                                   [&](int i, int) {
                                     if (i % 7 == 3)
                                       throw std::runtime_error("job A");
                                   }),
                 std::runtime_error);
    std::vector<int> out(16, 0);
    pool.parallel_for(16, [&](int i, int) { out[i] = i * i; });
    for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i * i) << i;
  }
}

TEST(ThreadPool, ConcurrentCallersShareOnePoolSafely) {
  // The solve server hands every tenant the same host pool: concurrent
  // parallel_for calls must serialize instead of interleaving their
  // generation/pending handshakes.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr int kN = 64;
  std::vector<long> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kN);
        pool.parallel_for(kN, [&](int i, int) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (auto& h : hits) sums[static_cast<std::size_t>(c)] += h.load();
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (long s : sums) EXPECT_EQ(s, static_cast<long>(kRounds) * kN);
}

TEST(ThreadPool, ThrowingCallerDoesNotPoisonConcurrentCallers) {
  ThreadPool pool(4);
  std::atomic<int> thrown{0};
  std::atomic<int> clean{0};
  std::thread chaos([&] {
    for (int round = 0; round < 40; ++round) {
      try {
        pool.parallel_for(16, [&](int i, int) {
          if (i == 3) throw std::runtime_error("chaos");
        });
      } catch (const std::runtime_error&) {
        thrown.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread steady([&] {
    for (int round = 0; round < 40; ++round) {
      std::atomic<int> sum{0};
      pool.parallel_for(8, [&](int i, int) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      if (sum.load() == 28) clean.fetch_add(1, std::memory_order_relaxed);
    }
  });
  chaos.join();
  steady.join();
  // Every throwing round rethrew exactly once, and every clean round
  // computed the right sum: errors never cross caller boundaries.
  EXPECT_EQ(thrown.load(), 40);
  EXPECT_EQ(clean.load(), 40);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(round % 9, [&](int i, int) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    total += sum.load();
  }
  long expected = 0;
  for (int round = 0; round < 200; ++round) {
    const int n = round % 9;
    expected += static_cast<long>(n) * (n + 1) / 2;
  }
  EXPECT_EQ(total, expected);
}


TEST(ThreadPool, WorkersRunTheJobTheyWereWokenFor) {
  // Regression for the run_slice contract: a worker must execute the
  // exact (task, n) pair published by the generation that woke it --
  // the pair is snapshotted under the lock and passed by value, so a
  // back-to-back job swap from another caller can never hand a worker
  // the next job's function with the previous job's range (which
  // manifested as out-of-bounds indices when n shrank between jobs).
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::atomic<bool> mismatch{false};
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&, c] {
      // Each caller's jobs alternate wildly in size; every index seen
      // must belong to the range this caller submitted.
      for (int round = 0; round < 60; ++round) {
        const int n = (c + 1) * (round % 5 == 0 ? 96 : 2);
        pool.parallel_for(n, [&, n](int i, int) {
          if (i < 0 || i >= n) mismatch.store(true);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace cellsweep::util
