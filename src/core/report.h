// Run-level reporting types shared by every workload client of the
// streaming pipeline (the Sweep3D orchestrator, the stencil port, the
// cluster replayer) and by the benches, metrics writer and tools.
// Split out of orchestrator.h so core::StreamingPipeline can produce a
// RunReport without depending on the Sweep3D-specific engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/counters.h"
#include "sim/trace.h"
#include "sweep/sweeper.h"

namespace cellsweep::core {

/// How the workload stream is produced.
enum class RunMode : std::uint8_t { kFunctional, kTraceDriven };

/// Where one SPE's simulated time went, in seconds. The four buckets
/// partition the run: busy (kernel cycles) + dma_wait (SPU stalled on
/// its own gets/puts) + sync_wait (stalled on wavefront dependencies,
/// dispatch grants and barriers) + idle (no work assigned) = seconds.
struct SpeStallSummary {
  double busy_s = 0;
  double dma_wait_s = 0;
  double sync_wait_s = 0;
  double idle_s = 0;
};

/// What the fault injector did to a run (all zero / disabled unless a
/// fault plan was armed via CellSweepConfig::faults). The same numbers
/// appear under the "faults" subtree of RunReport::counters and in the
/// metrics JSON.
struct FaultReport {
  bool enabled = false;
  int spes_disabled = 0;   ///< dead from boot (the 7-of-8 yield case)
  int spes_failed = 0;     ///< died mid-sweep
  std::uint64_t redispatched_chunks = 0;  ///< re-run on a surviving SPE
  std::uint64_t dma_retries = 0;     ///< failed DMA attempts, all MFCs
  std::uint64_t tag_timeouts = 0;    ///< tag waits that missed the event
  std::uint64_t dropped_messages = 0;  ///< dispatch messages resent
  std::uint64_t mic_throttled = 0;   ///< bank-throttled MIC requests
};

/// Everything a run reports; the benches print from this.
struct RunReport {
  // --- timing ---------------------------------------------------------
  double seconds = 0;           ///< simulated wall time of the run
  double compute_busy_s = 0;    ///< mean per-SPE compute busy time
  double mic_busy_s = 0;        ///< memory-port busy time
  double dispatch_busy_grants = 0;  ///< dispatched work items
  // --- workload -------------------------------------------------------
  double traffic_bytes = 0;     ///< DMA payload moved (both directions)
  std::uint64_t flops = 0;
  std::uint64_t cell_solves = 0;
  std::uint64_t chunks = 0;
  std::uint64_t dma_commands = 0;
  std::uint64_t dma_transfers = 0;
  // --- derived --------------------------------------------------------
  double achieved_flops_per_s = 0;
  double grind_seconds = 0;     ///< seconds per cell-angle solve
  double memory_bound_s = 0;    ///< Section 6 traffic bound
  double compute_bound_s = 0;   ///< Section 6 compute bound
  std::size_t ls_high_water = 0;  ///< LS bytes used per SPE
  // --- stall accounting (SPE stages only; empty for PPE runs) ----------
  std::vector<SpeStallSummary> spe_stalls;  ///< one entry per SPE
  /// Aggregate MFC queue-occupancy histogram: [k] counts DMA commands
  /// that entered their MFC queue behind k outstanding commands.
  std::vector<std::uint64_t> mfc_queue_occupancy;
  double mic_utilization = 0;   ///< MIC port busy fraction of the run
  double eib_utilization = 0;   ///< EIB busy fraction of the run
  // --- performance counters (SPE stages only; empty for PPE runs) ------
  /// The machine's counter tree: per-SPE engine buckets (busy /
  /// dma_wait / sync_wait / idle ticks -- they exactly partition
  /// run_ticks per SPE), SPU-pipeline and MFC counters under "spe<N>",
  /// a "spe_total" hierarchical aggregate, and the shared MIC / EIB /
  /// dispatch units.
  sim::CounterSet counters;
  /// Utilization-over-time series (empty unless a
  /// sim::TimeSlicedProfiler was attached via CellSweepConfig).
  sim::Profile timeseries;
  /// Fault-injection summary (enabled only when a plan was armed).
  FaultReport faults;
  // --- functional results (kFunctional only) ---------------------------
  std::optional<sweep::SolveResult> solve;
  double absorption = 0;
  sweep::LeakageTally leakage;
};

}  // namespace cellsweep::core
