#include "sim/trace.h"

#include <cstdio>
#include <ostream>

namespace cellsweep::sim {

namespace {

/// Simulated ticks (femtoseconds) to the trace format's microseconds.
double ticks_to_us(Tick t) {
  return static_cast<double>(t) / 1e9;
}

void write_us(std::ostream& os, Tick t) {
  // Fixed-point with nanosecond resolution: avoids exponent notation,
  // which some trace viewers reject in the "ts" field.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ticks_to_us(t));
  os << buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int ChromeTraceWriter::track(const std::string& name) {
  confined_.check("ChromeTraceWriter::track");
  for (std::size_t i = 0; i < tracks_.size(); ++i)
    if (tracks_[i] == name) return static_cast<int>(i);
  tracks_.push_back(name);
  return static_cast<int>(tracks_.size()) - 1;
}

void ChromeTraceWriter::span(int track, const char* name,
                             const char* category, Tick start, Tick end) {
  confined_.check("ChromeTraceWriter::span");
  events_.push_back(Event{Phase::kSpan, track, name, category, start,
                          end >= start ? end - start : 0, 0.0});
}

void ChromeTraceWriter::span_copy(int track, const std::string& name,
                                  const char* category, Tick start,
                                  Tick end) {
  confined_.check("ChromeTraceWriter::span_copy");
  owned_names_.push_back(name);
  span(track, owned_names_.back().c_str(), category, start, end);
}

void ChromeTraceWriter::instant(int track, const char* name,
                                const char* category, Tick at) {
  confined_.check("ChromeTraceWriter::instant");
  events_.push_back(Event{Phase::kInstant, track, name, category, at, 0, 0.0});
}

void ChromeTraceWriter::counter(int track, const char* name, Tick at,
                                double value) {
  confined_.check("ChromeTraceWriter::counter");
  events_.push_back(Event{Phase::kCounter, track, name, nullptr, at, 0, value});
}

void ChromeTraceWriter::write(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: one process, one named thread per track, sorted in
  // declaration order (PPE first, then SPEs, then the shared fabric).
  sep();
  os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"cellsweep machine model\"}}";
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << i
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << json_escape(tracks_[i]) << "\"}}";
    sep();
    os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << i
       << ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": "
       << i << "}}";
  }

  for (const Event& e : events_) {
    sep();
    switch (e.phase) {
      case Phase::kSpan:
        os << "{\"ph\": \"X\", \"pid\": 0, \"tid\": " << e.track
           << ", \"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
           << json_escape(e.category) << "\", \"ts\": ";
        write_us(os, e.start);
        os << ", \"dur\": ";
        write_us(os, e.duration);
        os << "}";
        break;
      case Phase::kInstant:
        os << "{\"ph\": \"i\", \"pid\": 0, \"tid\": " << e.track
           << ", \"s\": \"t\", \"name\": \"" << json_escape(e.name)
           << "\", \"cat\": \"" << json_escape(e.category) << "\", \"ts\": ";
        write_us(os, e.start);
        os << "}";
        break;
      case Phase::kCounter:
        os << "{\"ph\": \"C\", \"pid\": 0, \"tid\": " << e.track
           << ", \"name\": \"" << json_escape(e.name) << "\", \"ts\": ";
        write_us(os, e.start);
        os << ", \"args\": {\"value\": " << e.value << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

}  // namespace cellsweep::sim
