// core::ArrivalPlan: the seeded open-system arrival schedule. The
// load-bearing contracts:
//   * the grammar is strict -- malformed `--arrivals=` specs throw
//     ArrivalSpecError with the offending entry, never half-parse;
//   * every arrival time is a pure function of (seed, tenant, seq):
//     identical across runs, across plan instances, and -- replayed
//     through an ArrivalDriver -- across server tenant counts, which
//     is what pins JobTrace event order under `--tenants`/`--threads`;
//   * the merged schedule is sorted by (at_s, tenant, seq), the
//     canonical submission order every consumer replays.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/arrival.h"
#include "server/arrival_driver.h"
#include "server/solve_server.h"

namespace cellsweep::core {
namespace {

TEST(ArrivalSpecGrammar, ParsesEveryStreamKind) {
  const ArrivalSpec spec = parse_arrival_spec(
      "seed=42,tenant=0:rate:8:24,tenant=1:burst:6:0.25,"
      "tenant=2:trace:0.1;0.5;0.9,tenant=3:rate:2:5:1.5");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.tenants.size(), 4u);
  EXPECT_TRUE(spec.any());

  EXPECT_EQ(spec.tenants[0].tenant, 0);
  EXPECT_EQ(spec.tenants[0].kind, ArrivalKind::kRate);
  EXPECT_DOUBLE_EQ(spec.tenants[0].rate_per_s, 8.0);
  EXPECT_EQ(spec.tenants[0].count, 24u);
  EXPECT_DOUBLE_EQ(spec.tenants[0].start_s, 0.0);

  EXPECT_EQ(spec.tenants[1].kind, ArrivalKind::kBurst);
  EXPECT_EQ(spec.tenants[1].count, 6u);
  EXPECT_DOUBLE_EQ(spec.tenants[1].start_s, 0.25);

  EXPECT_EQ(spec.tenants[2].kind, ArrivalKind::kTrace);
  EXPECT_EQ(spec.tenants[2].times,
            (std::vector<double>{0.1, 0.5, 0.9}));

  EXPECT_DOUBLE_EQ(spec.tenants[3].start_s, 1.5);

  // Empty spec: disabled, not an error.
  EXPECT_FALSE(parse_arrival_spec("").any());
  EXPECT_FALSE(parse_arrival_spec("seed=7").any());
}

TEST(ArrivalSpecGrammar, RejectsMalformedSpecs) {
  // Every rejection is typed and names the offending entry.
  EXPECT_THROW(parse_arrival_spec("bogus=1"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("seed=abc"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:warp:1:2"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:rate:0:5"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:rate:-1:5"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:rate:2"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=-1:burst:3"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:trace:"), ArrivalSpecError);
  EXPECT_THROW(parse_arrival_spec("tenant=0:trace:-0.1"), ArrivalSpecError);
  // Plan construction rejects what the grammar alone cannot see:
  // decreasing trace times and duplicate tenant indices.
  EXPECT_THROW(ArrivalPlan{parse_arrival_spec("tenant=0:trace:0.5;0.1")},
               ArrivalSpecError);
  EXPECT_THROW(ArrivalPlan{parse_arrival_spec("tenant=0:burst:1,tenant=0:burst:1")},
               ArrivalSpecError);
  // Plan-side validation catches hand-built nonsense too.
  ArrivalSpec bad;
  TenantArrivals t;
  t.tenant = 0;
  t.kind = ArrivalKind::kRate;
  t.rate_per_s = -2.0;
  t.count = 3;
  bad.tenants.push_back(t);
  EXPECT_THROW(ArrivalPlan{bad}, ArrivalSpecError);
}

TEST(ArrivalPlan, TimesArePureFunctionsOfSeedTenantAndSeq) {
  const char* const text =
      "seed=2026,tenant=0:rate:50:40,tenant=1:rate:80:40,tenant=2:burst:5";
  const ArrivalPlan p1(parse_arrival_spec(text));
  const ArrivalPlan p2(parse_arrival_spec(text));
  ASSERT_TRUE(p1.enabled());
  EXPECT_EQ(p1.total(), 85u);
  EXPECT_EQ(p1.count(0), 40u);
  EXPECT_EQ(p1.count(7), 0u);

  // Bit-identical across plan instances, monotone within a stream.
  for (int tenant : {0, 1}) {
    double prev = -1.0;
    for (std::uint64_t k = 0; k < 40; ++k) {
      const double at = p1.arrival_s(tenant, k);
      EXPECT_EQ(at, p2.arrival_s(tenant, k));
      EXPECT_TRUE(std::isfinite(at));
      EXPECT_GE(at, prev);
      prev = at;
    }
  }
  // Streams are independent: tenant 0's times differ from tenant 1's.
  EXPECT_NE(p1.arrival_s(0, 0), p1.arrival_s(1, 0));
  // A different seed moves every rate arrival.
  const ArrivalPlan other(
      parse_arrival_spec("seed=2027,tenant=0:rate:50:40"));
  EXPECT_NE(p1.arrival_s(0, 0), other.arrival_s(0, 0));
  // Bursts and traces are exact, seed-independent.
  EXPECT_EQ(p1.arrival_s(2, 0), 0.0);
  EXPECT_EQ(p1.arrival_s(2, 4), 0.0);
  EXPECT_THROW(p1.arrival_s(2, 5), std::out_of_range);
  EXPECT_THROW(p1.arrival_s(9, 0), std::out_of_range);
}

TEST(ArrivalPlan, ScheduleIsSortedAndCoversEveryStream) {
  const ArrivalPlan plan(parse_arrival_spec(
      "seed=11,tenant=0:rate:20:15,tenant=1:burst:4:0.5,"
      "tenant=2:trace:0.0;0.2;0.4"));
  const std::vector<Arrival> sched = plan.schedule();
  ASSERT_EQ(sched.size(), plan.total());
  std::vector<std::uint64_t> per_tenant(3, 0);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const Arrival& a = sched[i];
    ++per_tenant[static_cast<std::size_t>(a.tenant)];
    EXPECT_EQ(a.at_s, plan.arrival_s(a.tenant, a.seq));
    if (i == 0) continue;
    const Arrival& p = sched[i - 1];
    // Sorted by (at_s, tenant, seq): the canonical replay order.
    EXPECT_TRUE(p.at_s < a.at_s ||
                (p.at_s == a.at_s &&
                 (p.tenant < a.tenant ||
                  (p.tenant == a.tenant && p.seq < a.seq))))
        << "entry " << i;
  }
  EXPECT_EQ(per_tenant, (std::vector<std::uint64_t>{15, 4, 3}));
}

// The tentpole reproducibility contract, end to end: the same arrival
// spec replayed against servers with different tenant-worker counts
// (and host-pool widths) produces the identical job sequence in the
// identical order -- submission order is the plan's, never the
// scheduler's.
TEST(ArrivalDriverIntegration, SubmissionOrderIsInvariantAcrossTenants) {
  const char* const kTinyDeck =
      "it 8  jt 8  kt 8\n"
      "dx 0.04  dy 0.04  dz 0.04\n"
      "mk 4  mmi 3\n"
      "sn 6  moments 6\n"
      "iterations 2  fixup_from 1\n"
      "material benchmark 1.0 0.5 0.2 0.05 source 1.0\n";
  const char* const kTinyStencil =
      "nx 8  ny 8  nz 8\n"
      "bx 4  by 4  bz 4\n"
      "iterations 2\n";
  const ArrivalPlan plan(parse_arrival_spec(
      "seed=5,tenant=0:rate:200:10,tenant=1:rate:150:10,tenant=2:burst:4"));

  const auto run_with = [&](int tenants, int host_threads) {
    ServerConfig cfg;
    cfg.tenants = tenants;
    cfg.host_threads = host_threads;
    cfg.queue_limit = 64;  // nothing may be rejected for this check
    SolveServer server(cfg);
    ArrivalDriver driver(
        server, plan,
        [&](const Arrival& a, std::uint64_t k) {
          JobRequest req;
          // Every third arrival is a stencil; the name encodes the
          // schedule position so order differences cannot hide.
          if (k % 3 == 2) {
            req.kind = JobKind::kStencil;
            req.text = kTinyStencil;
          } else {
            req.kind = JobKind::kSweep;
            req.text = kTinyDeck;
          }
          req.mode = RunMode::kFunctional;
          req.name = "a" + std::to_string(k) + "-t" +
                     std::to_string(a.tenant) + "-s" +
                     std::to_string(a.seq);
          return req;
        },
        /*time_scale=*/0.0);  // replay as fast as admission allows
    driver.start();
    driver.join();
    server.drain();
    EXPECT_EQ(driver.stats().rejected, 0u);
    std::vector<std::string> names;
    for (const TracedJob& j : server.traced_jobs()) names.push_back(j.name);
    return names;
  };

  const std::vector<std::string> solo = run_with(1, 1);
  ASSERT_EQ(solo.size(), plan.total());
  // traced_jobs() is submission order; the driver submits in schedule
  // order; so the names must replay the schedule exactly.
  const std::vector<Arrival> sched = plan.schedule();
  for (std::size_t k = 0; k < sched.size(); ++k)
    EXPECT_EQ(solo[k], "a" + std::to_string(k) + "-t" +
                           std::to_string(sched[k].tenant) + "-s" +
                           std::to_string(sched[k].seq));
  // And the order is invariant across server shapes.
  EXPECT_EQ(run_with(3, 2), solo);
  EXPECT_EQ(run_with(4, 4), solo);
}

}  // namespace
}  // namespace cellsweep::core
