// The sweep() driver: octant loop, angle-pipelining loop, K-plane
// pipelining loop, JK-diagonal loop, I-line solves (paper, Figure 2).
//
// SweepState owns the flux/source moment fields and the wavefront face
// arrays, and walks the exact loop structure of Sweep3D's sweep()
// subroutine: blocks of MK K-planes and MMI angles are processed as
// JK-diagonals, and all I-lines on one diagonal are independent -- the
// property the Cell port's thread-level parallelization relies on
// (Section 4, level 2). Each diagonal's decomposition into chunks comes
// from the shared ChunkPlan layer (sweep/plan.h); with
// SweepConfig::threads > 1 the chunks of a diagonal execute in parallel
// on a host thread pool (every I-line writes disjoint flux cells and
// face entries, so the result is bitwise identical to the serial run).
// A DiagonalObserver hook exposes each diagonal's work list so the Cell
// orchestrator (src/core) can replay the same stream through the
// machine model; a BoundaryIO hook injects/extracts block
// inflows/outflows so the MPI-level decomposition (src/sweep/
// mpi_sweeper) reuses this driver unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sweep/field.h"
#include "sweep/kernel.h"
#include "sweep/kernel_simd.h"
#include "sweep/problem.h"
#include "sweep/quadrature.h"
#include "util/thread_pool.h"

namespace cellsweep::sweep {

/// Which kernel implementation performs the I-line solves.
enum class KernelKind : std::uint8_t {
  kScalar,  ///< Figure 8 scalar code (PPE / pre-SIMD SPE path)
  kSimd,    ///< Figure 7 four-logical-thread SIMD bundles
};

/// Blocking and iteration parameters (Sweep3D input-deck equivalents).
struct SweepConfig {
  KernelKind kernel = KernelKind::kSimd;
  int mk = 10;   ///< K-planes per pipeline block (must divide kt)
  int mmi = 3;   ///< angles per pipeline block (paper: "MMI is 1 or 3")
  int max_iterations = 12;
  double epsilon = 0.0;  ///< >0: stop when max flux change < epsilon
  /// Iterations >= this index (0-based) run with negative-flux fixups,
  /// like the classic deck's last iterations.
  int fixup_from_iteration = 10;
  /// Error-mode extrapolation of source iteration: once the change
  /// ratio stabilizes, the dominant error mode (spectral radius ~= the
  /// scattering ratio) is extrapolated away. Big win on strongly
  /// scattering problems; off by default to match the classic deck.
  bool accelerate = false;
  /// Host threads executing a diagonal's chunks in the functional
  /// sweep (1 = serial). Purely a host-side execution knob: results
  /// are bitwise identical for any value, and simulated Cell timing
  /// never depends on it.
  int threads = 1;
  /// Externally shared host pool (non-owning, may be null). When set
  /// it overrides `threads`: the sweep runs its chunks on this pool --
  /// the solve server shares one pool across all tenants -- instead of
  /// owning one. Same contract as `threads`: results are bitwise
  /// identical and simulated Cell timing never depends on it.
  util::ThreadPool* pool = nullptr;

  void validate(int kt, int mm) const;
};

/// One JK-diagonal's worth of independent I-lines, as exposed to the
/// orchestrator. `nlines` I-lines of length `it` may run in parallel.
struct DiagonalWork {
  int octant = 0;
  int ablock = 0;
  int kblock = 0;
  int diagonal = 0;  ///< jkm index within the block
  int nlines = 0;
  int it = 0;
  bool fixup = false;
  KernelKind kernel = KernelKind::kSimd;
};

/// Observer of the work stream (timing models attach here).
using DiagonalObserver = std::function<void(const DiagonalWork&)>;

/// Per-block boundary context handed to BoundaryIO.
struct BlockCtx {
  int octant;
  int ablock;
  int kblock;
  int mmi;
  int mk;
  int jt;
  int it;
};

/// Injects block inflows and consumes block outflows. The default
/// (vacuum) zeroes inflows and tallies leakage; the MPI sweeper
/// replaces it with neighbor sends/receives (Figure 2's RECV/SEND).
template <typename Real>
class BoundaryIO {
 public:
  virtual ~BoundaryIO() = default;

  /// Fills I-inflow scalars, one per line: layout [m][kk][jj].
  virtual void fetch_i_inflow(const BlockCtx& ctx, Real* phi_i) = 0;
  /// Fills J-inflow rows: layout [m][kk] rows of it_pad reals.
  virtual void fetch_j_inflow(const BlockCtx& ctx, Real* phi_j,
                              int row_stride) = 0;
  /// Consumes I-outflows (same layout as fetch_i_inflow).
  virtual void emit_i_outflow(const BlockCtx& ctx, const Real* phi_i) = 0;
  /// Consumes J-outflows.
  virtual void emit_j_outflow(const BlockCtx& ctx, const Real* phi_j,
                              int row_stride) = 0;
};

/// Leakage tallies for the particle-balance audit (per global face).
struct LeakageTally {
  double west = 0, east = 0, north = 0, south = 0, bottom = 0, top = 0;
  double total() const {
    return west + east + north + south + bottom + top;
  }
};

/// Cumulative statistics of one iteration's sweeps.
struct SweepRunStats {
  std::uint64_t lines = 0;
  std::uint64_t chunks = 0;
  std::uint64_t cells = 0;
  std::uint64_t fixup_cells = 0;
};

/// Per-process sweep state over one (sub)problem.
template <typename Real>
class SweepState {
 public:
  /// @p nm_cap as in MomentTable: 0 keeps the full (l_max+1)^2 moment
  /// set; the benchmark deck uses kBenchmarkMoments.
  SweepState(const Problem& problem, const SnQuadrature& quad, int l_max,
             int nm_cap = 0);

  const Problem& problem() const noexcept { return *problem_; }
  const SnQuadrature& quadrature() const noexcept { return *quad_; }
  const MomentTable& moments() const noexcept { return moments_; }
  int nm() const noexcept { return moments_.nm(); }

  MomentField<Real>& flux() noexcept { return flux_; }
  const MomentField<Real>& flux() const noexcept { return flux_; }
  const MomentField<Real>& source() const noexcept { return src_; }

  /// Builds the source moments from the current flux estimate:
  /// Src[n] = (2 l_n + 1) (sigma_s,l * Flux[n]) + delta_n0 * q_ext.
  void build_source();

  /// Runs one full sweep (all octants/angles) of the streaming
  /// operator, accumulating a fresh flux estimate.
  SweepRunStats sweep(const SweepConfig& cfg, bool fixup,
                      const DiagonalObserver& observer = {});

  /// Installs a boundary handler (default: vacuum with leakage tally).
  void set_boundary(BoundaryIO<Real>* boundary) noexcept {
    boundary_ = boundary;
  }

  const LeakageTally& leakage() const noexcept { return leakage_; }
  void reset_leakage() noexcept { leakage_ = LeakageTally{}; }

  /// Total absorption rate with the current flux (sigma_a * phi0 * V).
  double absorption_rate() const;

  /// Max |delta flux0| between the current flux and @p previous.
  double flux_change(const MomentField<Real>& previous) const {
    return MomentField<Real>::max_abs_diff_moment0(flux_, previous);
  }

 private:
  struct AngleConsts {
    Real ci, cj, ck;             // 2|mu|/dx etc.
    std::vector<Real> pn_src;    // nm: R_n(m)
    std::vector<Real> pn_acc;    // nm: w_m * R_n(m)
  };

  void sweep_block(const SweepConfig& cfg, bool fixup, int iq, int ab,
                   int kb, const DiagonalObserver& observer,
                   SweepRunStats& stats);
  void tally_k_leakage(int iq, int ab);

  const Problem* problem_;
  const SnQuadrature* quad_;
  MomentTable moments_;

  CellField<Real> sigt_;
  CellField<Real> qext_;
  MomentField<Real> flux_;
  MomentField<Real> src_;
  // Scattering moments per material per l (copied for cache locality).
  std::vector<std::vector<Real>> sigma_s_;
  std::vector<std::uint8_t> cell_material_;

  // Precomputed per (octant, angle) kernel constants.
  std::vector<AngleConsts> angle_consts_;  // [8 * mm]

  // Wavefront faces. phi_k persists across K-blocks within one
  // (octant, angle-block); phi_j and phi_i are per-block.
  util::AlignedVector<Real> phi_k_face_;  // [mmi_max][jt][it_pad]
  util::AlignedVector<Real> phi_j_face_;  // [mmi_max][mk_max][it_pad]
  util::AlignedVector<Real> phi_i_face_;  // [mmi_max][mk_max][jt]

  // Specular-reflection storage: boundary angular outflows per face
  // side (0 = negative face, 1 = positive), writer octant and angle.
  // A sweep entering a reflective face reads the mirror octant's
  // stored outflow (same angle index; lagged one iteration when the
  // mirror octant sweeps later in the octant order).
  bool reflective_ = false;
  util::AlignedVector<Real> refl_i_;  // [2][8][mm][kt*jt]
  util::AlignedVector<Real> refl_j_;  // [2][8][mm][kt][it_pad]
  util::AlignedVector<Real> refl_k_;  // [2][8][mm][jt][it_pad]

  BoundaryIO<Real>* boundary_ = nullptr;
  LeakageTally leakage_;
  int current_mmi_ = 1;  // mmi of the sweep in progress (for K tally)

  // Host execution resources, sized at sweep() entry: the shared
  // SweepConfig::pool when one is injected, else an owned pool sized by
  // SweepConfig::threads. Each worker owns its BundleScratch: SIMD
  // bundles must never share scratch across threads, and per-worker
  // KernelStats keep the counters race-free (summed into SweepRunStats
  // after the sweep).
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads == 1
  util::ThreadPool* active_pool_ = nullptr;  // the pool this sweep uses
  std::vector<std::unique_ptr<BundleScratch<Real>>> scratch_;
  std::vector<KernelStats> worker_stats_;
  std::vector<LineArgs<Real>> diag_args_;  // one diagonal's line args
};

/// Result of a source-iteration solve.
struct SolveResult {
  int iterations = 0;
  double final_change = 0.0;
  bool converged = false;
  SweepRunStats totals;
};

/// Drives source iterations to a fixed count or convergence.
template <typename Real>
SolveResult solve_source_iteration(SweepState<Real>& state,
                                   const SweepConfig& cfg,
                                   const DiagonalObserver& observer = {});

}  // namespace cellsweep::sweep
