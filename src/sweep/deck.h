// Input decks: run problems from text files, like the original
// Sweep3D's `input` deck (it/jt/kt, mk, mmi, convergence control,
// cross sections). The format is line-oriented `key value...` with `#`
// comments:
//
//   it 50            jt 50           kt 50
//   dx 0.04          dy 0.04         dz 0.04
//   mk 10            mmi 3
//   sn 6             moments 6
//   iterations 12    fixup_from 10   epsilon 0
//   material shield 8.0 0.4 0.0 source 0.0
//   region 1 12 20 0 32 0 32        # material-index box [i0,i1)x[j0,j1)x[k0,k1)
//   bc west reflective
//
// The first `material` line is material 0 and fills the whole domain;
// `region` lines overwrite boxes with later materials.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "sweep/problem.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {

/// Everything a deck specifies.
struct Deck {
  Problem problem;
  SweepConfig sweep;
  int sn_order = 6;
  int nm_cap = kBenchmarkMoments;
  /// Where the deck came from ("<string>" unless loaded from a file);
  /// diagnostics (e.g. the deck linter) prefix findings with it.
  std::string source = "<string>";
};

/// Thrown with a line number and description on malformed decks.
class DeckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a deck from a stream.
Deck parse_deck(std::istream& in);

/// Parses a deck from a string (convenience for tests).
Deck parse_deck_string(const std::string& text);

/// Loads a deck file; throws DeckError if unreadable.
Deck load_deck(const std::string& path);

}  // namespace cellsweep::sweep
