// Static dual-issue pipeline scheduler for the SPU.
//
// Replays an spu::Trace under the SPU's issue rules:
//   * in-order issue, at most two instructions per cycle;
//   * a pair may issue together only as (even-pipe, odd-pipe) in
//     program order -- the fetch-group pairing rule;
//   * true dataflow dependencies stall issue until sources are ready;
//   * double-precision ops are only partially pipelined: issuing one
//     blocks *all* issue for dp_issue_block_cycles (7 on the shipped
//     Cell BE), which is why DP peak is 4 flops every 7 cycles;
//   * unhinted branches flush the fetch pipeline (~18 cycles).
//
// This is the component that reproduces Section 5.1 of the paper: the
// 590-cycle / 216-flop kernel, the 1690-cycle fixup variant, the 24 and
// 85 dual-issue events, and the 64%-of-DP-peak figure all come out of
// this scheduler applied to the actual recorded kernel trace.
#pragma once

#include <array>
#include <cstdint>

#include "cellsim/spec.h"
#include "spu/trace.h"

namespace cellsweep::cell {

/// Which SPU pipeline an instruction class issues to.
enum class Pipe : std::uint8_t { kEven, kOdd };

/// Issue timing of one instruction class.
struct OpTiming {
  Pipe pipe;
  std::uint16_t latency;      ///< cycles until the result is usable
  std::uint16_t issue_block;  ///< cycles during which no further issue occurs
};

/// Per-class timing table, parameterized on the spec so the
/// fully-pipelined-DP variant (Fig. 10) only changes one number.
class PipelineSpec {
 public:
  explicit PipelineSpec(const CellSpec& spec);

  const OpTiming& timing(spu::Op op) const {
    return table_[static_cast<std::size_t>(op)];
  }

 private:
  std::array<OpTiming, spu::kOpCount> table_{};
};

/// Result of scheduling a trace.
struct ScheduleResult {
  std::uint64_t cycles = 0;           ///< completion cycle (last writeback)
  std::uint64_t issue_cycles = 0;     ///< cycle after the last issue
  std::uint64_t instructions = 0;     ///< instructions issued
  std::uint64_t dual_issues = 0;      ///< cycles that issued two instructions
  std::uint64_t even_pipe_insts = 0;  ///< instructions on the even pipe
  std::uint64_t odd_pipe_insts = 0;   ///< instructions on the odd pipe
  std::uint64_t dep_stall_cycles = 0;    ///< cycles lost to dataflow stalls
  std::uint64_t block_stall_cycles = 0;  ///< cycles lost to DP/branch blocking
  std::uint64_t flops = 0;            ///< flop count carried by the trace

  /// Achieved flops per cycle.
  double flops_per_cycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(flops) / static_cast<double>(cycles);
  }
  /// Fraction of cycles that dual-issued.
  double dual_issue_rate() const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(dual_issues) / static_cast<double>(cycles);
  }
};

/// Accumulating pipeline statistics: the per-kernel ScheduleResult
/// numbers folded over every kernel invocation of a run. The timing
/// engine keeps one per SPE and publishes it into the counter tree, so
/// the Section 5.1 quantities (instructions, dual-issue and stall
/// cycles, flops) survive beyond the per-kernel cost-cache entry that
/// used to discard them.
struct PipelineStats {
  std::uint64_t kernels = 0;  ///< kernel invocations folded in
  std::uint64_t cycles = 0;
  std::uint64_t issue_cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dual_issues = 0;
  std::uint64_t even_pipe_insts = 0;
  std::uint64_t odd_pipe_insts = 0;
  std::uint64_t dep_stall_cycles = 0;
  std::uint64_t block_stall_cycles = 0;
  std::uint64_t flops = 0;

  PipelineStats& operator+=(const PipelineStats& o) {
    kernels += o.kernels;
    cycles += o.cycles;
    issue_cycles += o.issue_cycles;
    instructions += o.instructions;
    dual_issues += o.dual_issues;
    even_pipe_insts += o.even_pipe_insts;
    odd_pipe_insts += o.odd_pipe_insts;
    dep_stall_cycles += o.dep_stall_cycles;
    block_stall_cycles += o.block_stall_cycles;
    flops += o.flops;
    return *this;
  }

  /// Folds one kernel's schedule into the accumulator.
  PipelineStats& operator+=(const ScheduleResult& r) {
    ++kernels;
    cycles += r.cycles;
    issue_cycles += r.issue_cycles;
    instructions += r.instructions;
    dual_issues += r.dual_issues;
    even_pipe_insts += r.even_pipe_insts;
    odd_pipe_insts += r.odd_pipe_insts;
    dep_stall_cycles += r.dep_stall_cycles;
    block_stall_cycles += r.block_stall_cycles;
    flops += r.flops;
    return *this;
  }
};

/// The scheduler itself. Stateless apart from the timing table; safe to
/// reuse across traces.
class SpuPipeline {
 public:
  explicit SpuPipeline(const CellSpec& spec)
      : spec_(spec), timings_(spec) {}

  /// Schedules the whole trace from an empty pipeline.
  ScheduleResult schedule(const spu::Trace& trace) const;

  const CellSpec& spec() const noexcept { return spec_; }

 private:
  CellSpec spec_;
  PipelineSpec timings_;
};

}  // namespace cellsweep::cell
