// Ablation: MK / MMI pipeline blocking.
//
// The paper fixes MK x MMI per deck ("MK must factor KT", "MMI angles
// (1 or 3)"). Blocking does not change the physics (tests prove bit
// equality) but reshapes the wavefront diagonals: wider diagonals keep
// more SPEs busy, narrower ones pipeline sooner to MPI neighbors.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Ablation: MK/MMI blocking (" +
                      std::to_string(opt.cube) + "^3, final config)");

  util::TextTable table({"MK", "MMI", "max lines/diag", "run time [s]",
                         "compute busy [s]"});
  bench::BenchJson json("ablation_blocking", opt.cube);
  for (int mk : {1, 2, 5, 10, 25, 50}) {
    if (opt.cube % mk != 0) continue;  // MK must factor KT
    for (int mmi : {1, 2, 3, 6}) {
      const sweep::Problem problem = sweep::Problem::benchmark_cube(opt.cube);
      core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
          core::OptimizationStage::kSpeLsPoke);
      cfg.sweep.mk = mk;
      cfg.sweep.mmi = mmi;
      core::CellSweep3D runner(problem, cfg);
      const core::RunReport r = runner.run(core::RunMode::kTraceDriven);
      json.add_run("mk" + std::to_string(mk) + "_mmi" + std::to_string(mmi),
                   r);
      table.add_row({bench::fmt("%.0f", mk), bench::fmt("%.0f", mmi),
                     bench::fmt("%.0f", mk * mmi),
                     bench::fmt("%.3f", r.seconds),
                     bench::fmt("%.3f", r.compute_busy_s)});
    }
  }
  table.print(std::cout);
  std::cout << "\nNarrow diagonals (MK*MMI < 32 lines) starve the eight\n"
               "SPEs; the single-chip sweet spot is the widest block that\n"
               "still fits the local store.\n";
  if (!opt.json_dir.empty() && !json.write(opt.json_dir)) return 1;
  return 0;
}
