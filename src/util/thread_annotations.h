// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so a clang
// build with -Wthread-safety turns the locking conventions that used
// to live in comments into compile errors: which mutex guards which
// field (GUARDED_BY), which methods must / must not be entered with a
// lock held (REQUIRES / EXCLUDES), and which calls change the set of
// held locks (ACQUIRE / RELEASE). On every other compiler the macros
// vanish, so the annotated tree stays a plain C++20 build for GCC.
//
// The CI `thread-safety` job builds the whole tree with clang and
// -Werror=thread-safety; tests/compile_fail/ holds translation units
// with seeded violations that must break that build (and a clean
// control that must not).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CELLSWEEP_TSA_ATTR_(x) __attribute__((x))
#else
#define CELLSWEEP_TSA_ATTR_(x)  // no-op outside clang
#endif

// A type that acts as a lock (util::Mutex). The string names the
// capability kind in diagnostics ("mutex").
#ifndef CAPABILITY
#define CAPABILITY(x) CELLSWEEP_TSA_ATTR_(capability(x))
#endif

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor (util::MutexLock).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY CELLSWEEP_TSA_ATTR_(scoped_lockable)
#endif

// Data member readable/writable only while holding the given mutex.
#ifndef GUARDED_BY
#define GUARDED_BY(x) CELLSWEEP_TSA_ATTR_(guarded_by(x))
#endif

// Pointer member whose *pointee* is guarded by the given mutex.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) CELLSWEEP_TSA_ATTR_(pt_guarded_by(x))
#endif

// Function that may only be called while holding the listed mutexes
// (they stay held across the call).
#ifndef REQUIRES
#define REQUIRES(...) CELLSWEEP_TSA_ATTR_(requires_capability(__VA_ARGS__))
#endif

// Function that must NOT be entered with the listed mutexes held
// (it acquires them itself; catches self-deadlock at compile time).
#ifndef EXCLUDES
#define EXCLUDES(...) CELLSWEEP_TSA_ATTR_(locks_excluded(__VA_ARGS__))
#endif

// Function that acquires the listed mutexes (or, with no argument on
// a member of a SCOPED_CAPABILITY type, the managed one).
#ifndef ACQUIRE
#define ACQUIRE(...) CELLSWEEP_TSA_ATTR_(acquire_capability(__VA_ARGS__))
#endif

// Function that releases the listed mutexes.
#ifndef RELEASE
#define RELEASE(...) CELLSWEEP_TSA_ATTR_(release_capability(__VA_ARGS__))
#endif

// Function that acquires the mutex iff it returns the given value.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  CELLSWEEP_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))
#endif

// Function returning a reference to the mutex that guards its result.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) CELLSWEEP_TSA_ATTR_(lock_returned(x))
#endif

// Runtime assertion that the calling thread holds the mutex; tells
// the analysis to treat it as held from here on.
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) CELLSWEEP_TSA_ATTR_(assert_capability(x))
#endif

// Escape hatch for code whose locking discipline is correct but
// beyond the analysis. Use with a comment saying why.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS CELLSWEEP_TSA_ATTR_(no_thread_safety_analysis)
#endif
