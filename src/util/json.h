// Minimal JSON reader for the perf-regression harness.
//
// Parses the JSON this repo itself emits (metrics JSON, BENCH_*.json)
// into a value tree. Deliberately small: UTF-8 passthrough, \uXXXX
// escapes decoded, numbers via std::from_chars (locale-independent, so
// parsing is byte-stable like the emitters). Objects preserve key
// insertion order.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cellsweep::util {

/// Parse failure: message carries a byte offset and what was expected.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// Maximum container nesting the parser accepts. The parser (and the
/// JsonValue destructor) recurse once per nesting level, so without a
/// cap a client-supplied "[[[[..." overflows the stack; past this depth
/// parse_json throws a typed JsonError instead. Far above anything the
/// repo's own emitters produce (counter trees nest ~5 deep).
inline constexpr std::size_t kMaxJsonDepth = 128;

/// One JSON value. A tagged union kept simple (vectors stay empty for
/// scalar kinds); good enough for config-sized documents.
class JsonValue {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double number_v = 0;
  std::string string_v;
  std::vector<JsonValue> array_v;
  /// Members in document order.
  std::vector<std::pair<std::string, JsonValue>> object_v;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Member @p key of an object; null for non-objects / absent keys.
  const JsonValue* find(std::string_view key) const;

  /// String value of member @p key, or @p fallback when absent or not a
  /// string.
  std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else). Throws JsonError on malformed input or on containers nested
/// deeper than kMaxJsonDepth.
JsonValue parse_json(std::string_view text);

}  // namespace cellsweep::util
