#include "sweep/output.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace cellsweep::sweep {

template <typename Real>
void write_vtk(std::ostream& os, const Problem& problem,
               const MomentField<Real>& flux, const std::string& title) {
  const Grid& g = problem.grid();
  os << "# vtk DataFile Version 3.0\n"
     << title << "\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     // Cell data on an it x jt x kt grid needs it+1 x jt+1 x kt+1 points.
     << "DIMENSIONS " << g.it + 1 << ' ' << g.jt + 1 << ' ' << g.kt + 1
     << "\n"
     << "ORIGIN 0 0 0\n"
     << "SPACING " << g.dx << ' ' << g.dy << ' ' << g.dz << "\n"
     << "CELL_DATA " << g.cells() << "\n";

  os << "SCALARS scalar_flux double 1\nLOOKUP_TABLE default\n";
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        os << static_cast<double>(flux.at(0, k, j, i)) << "\n";

  os << "SCALARS material int 1\nLOOKUP_TABLE default\n";
  for (int k = 0; k < g.kt; ++k)
    for (int j = 0; j < g.jt; ++j)
      for (int i = 0; i < g.it; ++i)
        os << static_cast<int>(problem.material_index(i, j, k)) << "\n";
}

template <typename Real>
void write_vtk_file(const std::string& path, const Problem& problem,
                    const MomentField<Real>& flux, const std::string& title) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_vtk_file: cannot open " + path);
  write_vtk(os, problem, flux, title);
  if (!os) throw std::runtime_error("write_vtk_file: write failed: " + path);
}

template <typename Real>
void write_line_csv(std::ostream& os, const Problem& problem,
                    const MomentField<Real>& flux, int j, int k) {
  const Grid& g = problem.grid();
  if (j < 0 || j >= g.jt || k < 0 || k >= g.kt)
    throw std::out_of_range("write_line_csv: (j,k) outside the grid");
  os << "i,x,material,flux\n";
  for (int i = 0; i < g.it; ++i)
    os << i << ',' << (i + 0.5) * g.dx << ','
       << problem.material_of(i, j, k).name << ','
       << static_cast<double>(flux.at(0, k, j, i)) << "\n";
}

template void write_vtk<double>(std::ostream&, const Problem&,
                                const MomentField<double>&,
                                const std::string&);
template void write_vtk<float>(std::ostream&, const Problem&,
                               const MomentField<float>&,
                               const std::string&);
template void write_vtk_file<double>(const std::string&, const Problem&,
                                     const MomentField<double>&,
                                     const std::string&);
template void write_vtk_file<float>(const std::string&, const Problem&,
                                    const MomentField<float>&,
                                    const std::string&);
template void write_line_csv<double>(std::ostream&, const Problem&,
                                     const MomentField<double>&, int, int);
template void write_line_csv<float>(std::ostream&, const Problem&,
                                    const MomentField<float>&, int, int);

}  // namespace cellsweep::sweep
