#include "sweep/mpi_sweeper.h"

#include <cstring>
#include <stdexcept>

namespace cellsweep::sweep {
namespace {

/// Message tags: unique per (octant, angle-block, K-block, face kind).
int block_tag(const BlockCtx& ctx, int kind) {
  return ((ctx.octant * 64 + ctx.ablock) * 1024 + ctx.kblock) * 2 + kind;
}
constexpr int kTagI = 0;
constexpr int kTagJ = 1;
constexpr int kTagGather = 1 << 22;
constexpr int kTagResult = 1 << 23;

/// BoundaryIO implementation that exchanges block faces with the
/// upstream/downstream wavefront neighbors (Figure 2's RECV/SEND).
class MpiBoundary final : public BoundaryIO<double> {
 public:
  MpiBoundary(msg::Communicator& comm, const msg::CartGrid2D& cart,
              const SnQuadrature& quad, const Grid& tile)
      : comm_(comm), cart_(cart), quad_(quad), tile_(tile) {}

  const LeakageTally& leakage() const noexcept { return tally_; }
  void reset_tally() noexcept { tally_ = LeakageTally{}; }

  void fetch_i_inflow(const BlockCtx& ctx, double* phi_i) override {
    const int up = upstream_i(ctx.octant);
    const std::size_t count =
        static_cast<std::size_t>(ctx.mmi) * ctx.mk * ctx.jt;
    if (up < 0) {
      std::fill_n(phi_i, count, 0.0);
    } else {
      comm_.recv_into(up, block_tag(ctx, kTagI), {phi_i, count});
    }
  }

  void fetch_j_inflow(const BlockCtx& ctx, double* phi_j,
                      int row_stride) override {
    const int up = upstream_j(ctx.octant);
    const int rows = ctx.mmi * ctx.mk;
    if (up < 0) {
      for (int r = 0; r < rows; ++r)
        std::fill_n(phi_j + static_cast<std::size_t>(r) * row_stride, ctx.it,
                    0.0);
    } else {
      std::vector<double> buf =
          comm_.recv(up, block_tag(ctx, kTagJ));
      if (buf.size() != static_cast<std::size_t>(rows) * ctx.it)
        throw msg::MsgError("J-inflow size mismatch");
      for (int r = 0; r < rows; ++r)
        std::memcpy(phi_j + static_cast<std::size_t>(r) * row_stride,
                    buf.data() + static_cast<std::size_t>(r) * ctx.it,
                    sizeof(double) * ctx.it);
    }
  }

  void emit_i_outflow(const BlockCtx& ctx, const double* phi_i) override {
    const int down = downstream_i(ctx.octant);
    const std::size_t count =
        static_cast<std::size_t>(ctx.mmi) * ctx.mk * ctx.jt;
    if (down >= 0) {
      comm_.send(down, block_tag(ctx, kTagI), {phi_i, count});
      return;
    }
    // Domain boundary: tally I leakage.
    const Octant oct = all_octants()[ctx.octant];
    const double face = tile_.dy * tile_.dz;
    double leak = 0.0;
    for (int mh = 0; mh < ctx.mmi; ++mh) {
      const Ordinate& o =
          quad_.octant_ordinates()[ctx.ablock * ctx.mmi + mh];
      double sum = 0.0;
      for (int kk = 0; kk < ctx.mk; ++kk)
        for (int jj = 0; jj < ctx.jt; ++jj)
          sum += phi_i[(static_cast<std::size_t>(mh) * ctx.mk + kk) * ctx.jt +
                       jj];
      leak += o.w * o.mu * face * sum;
    }
    if (oct.sx > 0) tally_.east += leak; else tally_.west += leak;
  }

  void emit_j_outflow(const BlockCtx& ctx, const double* phi_j,
                      int row_stride) override {
    const int down = downstream_j(ctx.octant);
    const int rows = ctx.mmi * ctx.mk;
    if (down >= 0) {
      std::vector<double> buf(static_cast<std::size_t>(rows) * ctx.it);
      for (int r = 0; r < rows; ++r)
        std::memcpy(buf.data() + static_cast<std::size_t>(r) * ctx.it,
                    phi_j + static_cast<std::size_t>(r) * row_stride,
                    sizeof(double) * ctx.it);
      comm_.send(down, block_tag(ctx, kTagJ), buf);
      return;
    }
    const Octant oct = all_octants()[ctx.octant];
    const double face = tile_.dx * tile_.dz;
    double leak = 0.0;
    for (int mh = 0; mh < ctx.mmi; ++mh) {
      const Ordinate& o =
          quad_.octant_ordinates()[ctx.ablock * ctx.mmi + mh];
      double sum = 0.0;
      for (int kk = 0; kk < ctx.mk; ++kk) {
        const double* row =
            phi_j + (static_cast<std::size_t>(mh) * ctx.mk + kk) * row_stride;
        for (int i = 0; i < ctx.it; ++i) sum += row[i];
      }
      leak += o.w * o.eta * face * sum;
    }
    if (oct.sy > 0) tally_.south += leak; else tally_.north += leak;
  }

 private:
  int upstream_i(int iq) const {
    const Octant o = all_octants()[iq];
    return cart_.neighbor(comm_.rank(), o.sx > 0 ? msg::Direction::kWest
                                                 : msg::Direction::kEast);
  }
  int downstream_i(int iq) const {
    const Octant o = all_octants()[iq];
    return cart_.neighbor(comm_.rank(), o.sx > 0 ? msg::Direction::kEast
                                                 : msg::Direction::kWest);
  }
  int upstream_j(int iq) const {
    const Octant o = all_octants()[iq];
    return cart_.neighbor(comm_.rank(), o.sy > 0 ? msg::Direction::kNorth
                                                 : msg::Direction::kSouth);
  }
  int downstream_j(int iq) const {
    const Octant o = all_octants()[iq];
    return cart_.neighbor(comm_.rank(), o.sy > 0 ? msg::Direction::kSouth
                                                 : msg::Direction::kNorth);
  }

  msg::Communicator& comm_;
  const msg::CartGrid2D& cart_;
  const SnQuadrature& quad_;
  Grid tile_;
  LeakageTally tally_;
};

}  // namespace

Problem extract_tile(const Problem& global, int i0, int ni, int j0, int nj) {
  const Grid& g = global.grid();
  if (i0 < 0 || j0 < 0 || i0 + ni > g.it || j0 + nj > g.jt)
    throw std::invalid_argument("extract_tile: tile out of range");
  Grid tile{ni, nj, g.kt, g.dx, g.dy, g.dz};
  std::vector<std::uint8_t> cells(tile.cells());
  for (int k = 0; k < tile.kt; ++k)
    for (int j = 0; j < nj; ++j)
      for (int i = 0; i < ni; ++i)
        cells[tile.index(i, j, k)] =
            global.material_index(i0 + i, j0 + j, k);
  return Problem(tile, global.materials(), std::move(cells));
}

MpiSolveResult solve_mpi(msg::World& world, const Problem& global,
                         const SnQuadrature& quad, int l_max,
                         const SweepConfig& cfg, int px, int py, int nm_cap) {
  const Grid& g = global.grid();
  if (global.any_reflective())
    throw std::logic_error(
        "solve_mpi: reflective boundaries are only supported by the serial "
        "sweeper (the MPI boundary exchanges I/J faces itself)");
  if (px * py != world.size())
    throw std::invalid_argument("solve_mpi: px*py must equal world size");
  if (g.it % px != 0 || g.jt % py != 0)
    throw std::invalid_argument("solve_mpi: px|it and py|jt required");
  const int ni = g.it / px;
  const int nj = g.jt / py;
  msg::CartGrid2D cart(px, py);

  std::vector<MpiSolveResult> results(world.size());

  world.run([&](msg::Communicator& comm) {
    const int r = comm.rank();
    const int x = cart.x_of(r);
    const int y = cart.y_of(r);
    Problem tile = extract_tile(global, x * ni, ni, y * nj, nj);
    SweepState<double> state(tile, quad, l_max, nm_cap);
    MpiBoundary boundary(comm, cart, quad, tile.grid());
    state.set_boundary(&boundary);

    MomentField<double> previous(tile.grid(), state.nm());
    SolveResult solve;
    for (int iter = 0; iter < cfg.max_iterations; ++iter) {
      previous = state.flux();
      state.build_source();
      state.reset_leakage();
      boundary.reset_tally();
      const bool fixup = iter >= cfg.fixup_from_iteration;
      const SweepRunStats s = state.sweep(cfg, fixup);
      solve.totals.lines += s.lines;
      solve.totals.chunks += s.chunks;
      solve.totals.cells += s.cells;
      solve.totals.fixup_cells += s.fixup_cells;
      ++solve.iterations;
      const double change =
          comm.allreduce_max(state.flux_change(previous));
      solve.final_change = change;
      if (cfg.epsilon > 0.0 && change < cfg.epsilon) {
        solve.converged = true;
        break;
      }
    }

    MpiSolveResult& out = results[r];
    out.solve = solve;

    // Global reductions: absorption and leakage faces. The K-faces are
    // tallied inside SweepState (K is not decomposed); I/J domain faces
    // live in the MpiBoundary of edge ranks.
    out.absorption = comm.allreduce_sum(state.absorption_rate());
    const LeakageTally& local_k = state.leakage();
    const LeakageTally& local_ij = boundary.leakage();
    out.leakage.west = comm.allreduce_sum(local_ij.west);
    out.leakage.east = comm.allreduce_sum(local_ij.east);
    out.leakage.north = comm.allreduce_sum(local_ij.north);
    out.leakage.south = comm.allreduce_sum(local_ij.south);
    out.leakage.bottom = comm.allreduce_sum(local_k.bottom);
    out.leakage.top = comm.allreduce_sum(local_k.top);

    // Gather the scalar flux on rank 0 and redistribute.
    std::vector<double> mine(static_cast<std::size_t>(g.kt) * nj * ni);
    for (int k = 0; k < g.kt; ++k)
      for (int j = 0; j < nj; ++j)
        for (int i = 0; i < ni; ++i)
          mine[(static_cast<std::size_t>(k) * nj + j) * ni + i] =
              state.flux().at(0, k, j, i);
    if (r == 0) {
      std::vector<double> flux0(static_cast<std::size_t>(g.kt) * g.jt * g.it);
      auto place = [&](int rank, const std::vector<double>& tile_data) {
        const int tx = cart.x_of(rank);
        const int ty = cart.y_of(rank);
        for (int k = 0; k < g.kt; ++k)
          for (int j = 0; j < nj; ++j)
            for (int i = 0; i < ni; ++i)
              flux0[(static_cast<std::size_t>(k) * g.jt + ty * nj + j) * g.it +
                    tx * ni + i] =
                  tile_data[(static_cast<std::size_t>(k) * nj + j) * ni + i];
      };
      place(0, mine);
      for (int src = 1; src < comm.size(); ++src)
        place(src, comm.recv(src, kTagGather));
      for (int dst = 1; dst < comm.size(); ++dst)
        comm.send(dst, kTagResult, flux0);
      out.flux0 = std::move(flux0);
    } else {
      comm.send(0, kTagGather, mine);
      out.flux0 = comm.recv(0, kTagResult);
    }
  });

  return results[0];
}

}  // namespace cellsweep::sweep
