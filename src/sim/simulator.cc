#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace cellsweep::sim {

void Simulator::schedule(Tick delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Tick at, Callback fn) {
  if (at < now_)
    throw std::logic_error("Simulator::schedule_at: time travels backwards");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

Tick Simulator::run() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue top requires a copy; events are
    // small (one std::function), executed once, then popped.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  return now_;
}

Tick Simulator::run_until(Tick deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++executed_;
    ev.fn();
  }
  if (now_ < deadline && queue_.empty()) return now_;
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

}  // namespace cellsweep::sim
