// Simulated-time representation.
//
// The machine model advances a virtual clock that is completely
// decoupled from host wall-clock time. Ticks are integer femtoseconds:
// one 3.2 GHz Cell cycle is exactly 312,500 fs, so cycle arithmetic is
// exact, deterministic and portable (no floating-point drift in event
// ordering). A 64-bit tick counter covers ~5 simulated hours, orders of
// magnitude beyond any experiment in the paper.
#pragma once

#include <cstdint>

namespace cellsweep::sim {

/// One tick = 1 femtosecond of simulated time.
using Tick = std::uint64_t;

inline constexpr Tick kTicksPerSecond = 1'000'000'000'000'000ULL;  // 1e15

/// Converts seconds (double) to ticks, rounding to nearest.
constexpr Tick ticks_from_seconds(double s) {
  return static_cast<Tick>(s * static_cast<double>(kTicksPerSecond) + 0.5);
}

/// Converts ticks to seconds.
constexpr double seconds_from_ticks(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Ticks for one cycle of a clock running at @p hz.
constexpr Tick ticks_per_cycle(double hz) {
  return static_cast<Tick>(static_cast<double>(kTicksPerSecond) / hz + 0.5);
}

/// Duration of @p cycles cycles of a clock running at @p hz.
constexpr Tick ticks_from_cycles(std::uint64_t cycles, double hz) {
  return cycles * ticks_per_cycle(hz);
}

/// Time to move @p bytes over a link of @p bytes_per_second.
constexpr Tick ticks_for_bytes(double bytes, double bytes_per_second) {
  return static_cast<Tick>(bytes / bytes_per_second *
                               static_cast<double>(kTicksPerSecond) +
                           0.5);
}

}  // namespace cellsweep::sim
