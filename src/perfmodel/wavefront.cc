#include "perfmodel/wavefront.h"

#include <algorithm>
#include <stdexcept>

namespace cellsweep::perf {

WavefrontEstimate estimate_wavefront(const WavefrontParams& p) {
  if (p.px < 1 || p.py < 1)
    throw std::invalid_argument("estimate_wavefront: grid must be >= 1x1");
  if (p.blocks_per_octant < 1)
    throw std::invalid_argument("estimate_wavefront: need >= 1 block");
  if (p.tile_time_s < 0 || p.link_bandwidth <= 0)
    throw std::invalid_argument("estimate_wavefront: bad timing inputs");

  WavefrontEstimate e;
  const int B = p.blocks_per_octant;
  // Worst-corner pipeline depth: each octant enters at one corner; the
  // opposite corner waits px-1 + py-1 block-steps.
  e.pipeline_depth = (p.px - 1) + (p.py - 1);
  // One octant's tile work is 1/8 of the total; one block is 1/B of it.
  e.block_time_s = p.tile_time_s / 8.0 / B;
  // Two messages leave each block boundary (east + south I/J faces).
  e.block_comm_s =
      p.px * p.py == 1
          ? 0.0
          : 2.0 * (p.link_latency_s + p.block_comm_bytes / p.link_bandwidth);

  // Per octant: B + D block-steps, each paced by compute plus the
  // non-overlapped message injection (blocking sends downstream).
  const double step = e.block_time_s + e.block_comm_s;
  const double per_octant = (B + e.pipeline_depth) * step;
  e.total_s = 8.0 * per_octant;
  e.fill_efficiency = static_cast<double>(B) / (B + e.pipeline_depth);

  // Efficiency vs the ideal: one chip doing the whole problem would
  // take tile_time * px * py (tiles are 1/(px*py) of the domain).
  const double serial = p.tile_time_s * p.px * p.py;
  e.parallel_efficiency = serial / (e.total_s * p.px * p.py);
  return e;
}

WavefrontEstimate best_blocking(WavefrontParams p, int max_blocks) {
  if (max_blocks < 1)
    throw std::invalid_argument("best_blocking: need >= 1 block");
  WavefrontEstimate best;
  bool have = false;
  for (int b = 1; b <= max_blocks; ++b) {
    p.blocks_per_octant = b;
    const WavefrontEstimate e = estimate_wavefront(p);
    if (!have || e.total_s < best.total_s) {
      best = e;
      have = true;
    }
  }
  return best;
}

}  // namespace cellsweep::perf
