#include "sim/fault.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace cellsweep::sim {
namespace {

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw FaultSpecError("fault spec entry '" + entry + "': " + why);
}

/// Splits @p s on @p sep. Empty fields are preserved so "spe=3:" is
/// diagnosed rather than silently collapsing.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (true) {
    const std::size_t at = s.find(sep, from);
    if (at == std::string::npos) {
      out.push_back(s.substr(from));
      return out;
    }
    out.push_back(s.substr(from, at - from));
    from = at + 1;
  }
}

double parse_rate(const std::string& entry, const std::string& v) {
  const char* b = v.data();
  const char* e = b + v.size();
  double x = 0.0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e) fail(entry, "'" + v + "' is not a number");
  if (!(x >= 0.0 && x <= 1.0)) fail(entry, "rate must be in [0, 1]");
  return x;
}

std::int64_t parse_int(const std::string& entry, const std::string& v,
                       std::int64_t lo, std::int64_t hi) {
  const char* b = v.data();
  const char* e = b + v.size();
  std::int64_t x = 0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e) fail(entry, "'" + v + "' is not an integer");
  if (x < lo || x > hi) fail(entry, "'" + v + "' out of range");
  return x;
}

std::uint64_t parse_u64(const std::string& entry, const std::string& v) {
  const char* b = v.data();
  const char* e = b + v.size();
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e)
    fail(entry, "'" + v + "' is not an unsigned integer");
  return x;
}

double parse_factor(const std::string& entry, const std::string& v, double lo,
                    double hi) {
  const char* b = v.data();
  const char* e = b + v.size();
  double x = 0.0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e) fail(entry, "'" + v + "' is not a number");
  if (!(x >= lo && x <= hi)) fail(entry, "factor '" + v + "' out of range");
  return x;
}

/// splitmix64's output permutation as a standalone mixer for chaining
/// key material into one decision seed.
constexpr std::uint64_t mix(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  for (const std::string& entry : split(text, ',')) {
    if (entry.empty()) continue;  // tolerate "a,,b" and trailing commas
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      fail(entry, "expected key=value (keys: seed, dma, timeout, drop, "
                  "throttle, retries, spe)");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64(entry, value);
    } else if (key == "dma") {
      spec.dma_fail_rate = parse_rate(entry, value);
    } else if (key == "timeout") {
      spec.tag_timeout_rate = parse_rate(entry, value);
    } else if (key == "drop") {
      spec.mailbox_drop_rate = parse_rate(entry, value);
    } else if (key == "throttle") {
      const auto parts = split(value, ':');
      spec.mic_throttle_rate = parse_rate(entry, parts[0]);
      if (parts.size() == 2) {
        spec.mic_throttle_factor = parse_factor(entry, parts[1], 0.01, 1.0);
      } else if (parts.size() > 2) {
        fail(entry, "expected throttle=<rate>[:<factor>]");
      }
    } else if (key == "retries") {
      spec.max_dma_retries =
          static_cast<int>(parse_int(entry, value, 0, 30));
    } else if (key == "spe") {
      const auto parts = split(value, ':');
      if (parts.size() < 2)
        fail(entry, "expected spe=<index>:down | spe=<index>:after:<chunks> "
                    "| spe=<index>:slow:<factor>");
      SpeFault f;
      f.spe = static_cast<int>(parse_int(entry, parts[0], 0, 255));
      if (parts[1] == "down") {
        if (parts.size() != 2) fail(entry, "spe=<index>:down takes no value");
        f.fail_after_chunks = 0;
      } else if (parts[1] == "after") {
        if (parts.size() != 3) fail(entry, "expected spe=<index>:after:<chunks>");
        f.fail_after_chunks =
            parse_int(entry, parts[2], 1, std::int64_t{1} << 40);
      } else if (parts[1] == "slow") {
        if (parts.size() != 3) fail(entry, "expected spe=<index>:slow:<factor>");
        f.compute_scale = parse_factor(entry, parts[2], 1.0, 1000.0);
      } else {
        fail(entry, "unknown SPE fault '" + parts[1] +
                    "' (down | after:<chunks> | slow:<factor>)");
      }
      spec.spes.push_back(f);
    } else {
      fail(entry, "unknown key '" + key + "'");
    }
  }
  return spec;
}

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec) {
  auto check_rate = [](double r, const char* what) {
    if (!(r >= 0.0 && r <= 1.0))
      throw FaultSpecError(std::string(what) + " must be in [0, 1]");
  };
  check_rate(spec.dma_fail_rate, "dma_fail_rate");
  check_rate(spec.tag_timeout_rate, "tag_timeout_rate");
  check_rate(spec.mailbox_drop_rate, "mailbox_drop_rate");
  check_rate(spec.mic_throttle_rate, "mic_throttle_rate");
  if (!(spec.mic_throttle_factor > 0.0 && spec.mic_throttle_factor <= 1.0))
    throw FaultSpecError("mic_throttle_factor must be in (0, 1]");
  if (spec.max_dma_retries < 0 || spec.max_dma_retries > 30)
    throw FaultSpecError("max_dma_retries must be in 0..30");
  for (const SpeFault& f : spec.spes) {
    if (f.spe < 0) throw FaultSpecError("SpeFault: negative SPE index");
    if (f.compute_scale < 1.0)
      throw FaultSpecError("SpeFault: compute_scale must be >= 1");
    if (f.fail_after_chunks < -1)
      throw FaultSpecError("SpeFault: fail_after_chunks must be >= -1");
    for (const SpeFault& other : spec.spes)
      if (&other != &f && other.spe == f.spe)
        throw FaultSpecError("SpeFault: duplicate entry for SPE " +
                             std::to_string(f.spe));
  }
  enabled_ = spec.any();
}

double FaultPlan::draw(FaultDomain domain, int unit, std::uint64_t seq,
                       std::uint32_t attempt) const {
  // Hash-chain the decision coordinates into one key, then let
  // SplitMix64 produce the uniform draw. Pure in all arguments: query
  // order never matters, which is what makes the schedule identical
  // across thread counts and run modes.
  std::uint64_t z = spec_.seed;
  z = mix(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(domain) + 1));
  z = mix(z + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(unit) + 1));
  z = mix(z + seq);
  z = mix(z + attempt);
  util::SplitMix64 g(z);
  return g.next_double();
}

int FaultPlan::failures(FaultDomain domain, int unit, std::uint64_t seq,
                        double rate, int cap) const {
  if (!enabled_ || rate <= 0.0) return 0;
  int n = 0;
  while (n < cap &&
         draw(domain, unit, seq, static_cast<std::uint32_t>(n)) < rate)
    ++n;
  return n;
}

int FaultPlan::dma_failures(int unit, std::uint64_t seq) const {
  return failures(FaultDomain::kDmaTransfer, unit, seq, spec_.dma_fail_rate,
                  spec_.max_dma_retries);
}

bool FaultPlan::tag_timeout(int unit, std::uint64_t seq) const {
  return enabled_ && spec_.tag_timeout_rate > 0.0 &&
         draw(FaultDomain::kTagWait, unit, seq, 0) < spec_.tag_timeout_rate;
}

int FaultPlan::dispatch_drops(std::uint64_t seq) const {
  return failures(FaultDomain::kDispatch, 0, seq, spec_.mailbox_drop_rate, 4);
}

bool FaultPlan::mic_throttle(std::uint64_t seq) const {
  return enabled_ && spec_.mic_throttle_rate > 0.0 &&
         draw(FaultDomain::kMicBank, 0, seq, 0) < spec_.mic_throttle_rate;
}

bool FaultPlan::spe_disabled(int spe) const {
  return spe_fail_after(spe) == 0;
}

std::int64_t FaultPlan::spe_fail_after(int spe) const {
  for (const SpeFault& f : spec_.spes)
    if (f.spe == spe) return f.fail_after_chunks;
  return -1;
}

double FaultPlan::spe_compute_scale(int spe) const {
  for (const SpeFault& f : spec_.spes)
    if (f.spe == spe) return f.compute_scale;
  return 1.0;
}

}  // namespace cellsweep::sim
