#include "cellsim/mfc.h"

#include <algorithm>
#include <sstream>

#include "sim/counters.h"
#include "sim/fault.h"

namespace cellsweep::cell {

Mfc::Mfc(const CellSpec& spec, Eib* eib, Mic* mic, std::string name)
    : spec_(spec),
      eib_(eib),
      mic_(mic),
      name_(std::move(name)),
      depth_(spec.mfc_queue_depth) {
  if (depth_ <= 0 || depth_ > static_cast<int>(slots_.size()))
    throw DmaError("Mfc: unsupported queue depth");
  if (eib_ == nullptr || mic_ == nullptr)
    throw DmaError("Mfc: EIB/MIC must be provided");
}

void Mfc::validate(const DmaRequest& req) const {
  std::ostringstream why;
  auto append = [&](const std::string& what) {
    if (!why.str().empty()) why << "; ";
    why << what;
  };
  // The CBEA size rules apply to every transfer the MFC performs: full
  // elements and the trailing partial element alike.
  auto check_size = [&](std::size_t bytes, const char* what) {
    if (bytes < 16) {
      // Sub-quadword transfers must be naturally aligned powers of two.
      const bool pow2 = (bytes & (bytes - 1)) == 0;
      if (!pow2 || bytes > 8)
        append(std::string(what) + " below 16 bytes must be 1, 2, 4 or 8 bytes");
      else if (req.alignment % bytes != 0)
        append(std::string("sub-quadword ") + what +
               " must be naturally aligned");
    } else if (bytes % 16 != 0) {
      append(std::string(what) + " of 16 bytes or more must be multiples of 16");
    } else if (bytes > spec_.dma_max_bytes) {
      append("single transfer exceeds 16 KB");
    }
  };

  const std::size_t bytes = req.element_bytes;
  if (req.total_bytes == 0 || bytes == 0) {
    append("zero-length transfer");
  } else {
    check_size(bytes, "transfers");
    // A request whose payload is not a whole number of elements ends in
    // a partial element of total_bytes % element_bytes -- itself a real
    // MFC transfer, so it obeys the same size rules.
    const std::size_t rem = req.total_bytes % bytes;
    if (rem != 0 && req.total_bytes > bytes)
      check_size(rem, "trailing partial transfers");
  }
  if (req.as_list &&
      req.elements() > static_cast<std::size_t>(spec_.dma_list_max_elements))
    append("DMA list must have 1..2048 elements");
  if (req.alignment == 0 || (req.alignment & (req.alignment - 1)) != 0)
    append("alignment must be a power of two");
  if (req.banks_touched < 1 || req.banks_touched > spec_.memory_banks) {
    std::ostringstream bank;
    bank << "banks_touched must be in 1.." << spec_.memory_banks << ", got "
         << req.banks_touched;
    append(bank.str());
  }
  if (req.tag >= kMfcTagGroups) append("tag group must be 0..31");

  const std::string msg = why.str();
  if (!msg.empty()) throw DmaError("illegal DMA command: " + msg);
}

double Mfc::transfer_efficiency(std::size_t bytes,
                                std::size_t alignment) const {
  // DRAM moves data in 128-byte bursts. A transfer smaller than one
  // burst still occupies a whole burst; a misaligned transfer touches
  // one extra burst. This is the mechanism behind the paper's advice
  // that peak rate needs 128-byte-aligned, 128-byte-multiple transfers.
  const std::size_t line = spec_.dma_align_sweet_spot;
  const bool aligned = alignment >= line;
  const std::size_t bursts = (bytes + line - 1) / line + (aligned ? 0 : 1);
  const double eff =
      static_cast<double>(bytes) / static_cast<double>(bursts * line);
  return std::clamp(eff, spec_.dma_min_efficiency, 1.0);
}

double Mfc::request_efficiency(const DmaRequest& req) const {
  if (req.element_bytes == 0 || req.total_bytes == 0) return 1.0;
  // The last element carries total % element bytes; it occupies DRAM
  // bursts for its *own* size, not the nominal element size. Weight the
  // efficiencies by port occupancy: occupancy(b) = b / eff(b).
  const std::size_t elem = std::min(req.element_bytes, req.total_bytes);
  const std::size_t full = req.total_bytes / elem;
  const std::size_t rem = req.total_bytes % elem;
  double occupancy = static_cast<double>(full * elem) /
                     transfer_efficiency(elem, req.alignment);
  if (rem != 0)
    occupancy +=
        static_cast<double>(rem) / transfer_efficiency(rem, req.alignment);
  const double eff = static_cast<double>(req.total_bytes) / occupancy;
  return std::clamp(eff, spec_.dma_min_efficiency, 1.0);
}

DmaCompletion Mfc::submit(sim::Tick now, const DmaRequest& req) {
  validate(req);
  const std::size_t elements = req.elements();

  // SPU-side channel cost: a list pays one command issue plus a small
  // per-element list-build cost; a batch of individual commands pays
  // the full issue cost per row. This asymmetry is what makes
  // "convert individual DMAs to DMA lists" pay off (Fig. 5).
  const double issue_cycles =
      req.as_list ? spec_.dma_issue_cycles +
                        spec_.dma_list_build_cycles *
                            static_cast<double>(elements)
                  : spec_.dma_issue_cycles * static_cast<double>(elements);
  const sim::Tick issue_done = now + spec_.cycles(issue_cycles);

  // Queue back-pressure: reuse the slot that frees earliest.
  auto slot = std::min_element(slots_.begin(), slots_.begin() + depth_);
  const sim::Tick start = std::max(issue_done, *slot);
  if (start > issue_done) {
    ++queue_full_commands_;
    queue_full_ticks_ += start - issue_done;
  }

  // Occupancy at entry: commands still outstanding when this one was
  // issued (observation only; feeds the stall-accounting histogram).
  int occupied = 0;
  for (int i = 0; i < depth_; ++i)
    if (slots_[i] > issue_done) ++occupied;
  ++occupancy_hist_[std::min(occupied, depth_ - 1)];

  // Memory-side startup: full per-command cost for individual commands,
  // reduced per-element cost inside a list.
  const sim::Tick overhead =
      req.as_list
          ? spec_.dma_cmd_overhead +
                static_cast<sim::Tick>(elements - 1) *
                    spec_.dma_list_element_overhead
          : static_cast<sim::Tick>(elements) * spec_.dma_cmd_overhead;

  const double payload = static_cast<double>(req.total_bytes);

  // One attempt's transfer: crosses the EIB only for SPE-to-SPE moves,
  // otherwise drains through the MIC too; completion is bounded by the
  // slower of the two shared resources.
  auto stream = [&](sim::Tick at) -> sim::Tick {
    if (req.ls_to_ls) return std::max(eib_->submit(at, payload), at + overhead);
    const sim::Tick eib_done = eib_->submit(at, payload);
    const sim::Tick mic_done =
        mic_->submit(at, payload, overhead, request_efficiency(req), elements,
                     req.banks_touched, req.dir == DmaDir::kPut);
    return std::max(eib_done, mic_done);
  };

  // Transient-failure retry loop. The fault plan decides, purely from
  // (unit, command sequence), how many attempts fail before one lands;
  // every failed attempt streams its payload through the shared
  // resources (the cost is real), is detected via the tag-status fail
  // bit, and waits an exponentially growing backoff before resubmitting.
  const bool armed = faults_ != nullptr && faults_->enabled();
  const int failures = armed ? faults_->dma_failures(fault_unit_, fault_seq_++)
                             : 0;
  sim::Tick done = stream(start);
  for (int a = 0; a < failures; ++a) {
    const sim::Tick backoff = spec_.cycles(
        spec_.dma_retry_backoff_cycles *
        static_cast<double>(std::uint64_t{1} << std::min(a, 10)));
    const sim::Tick resume = done + spec_.dma_fault_detect + backoff;
    retry_backoff_ += resume - done;
    done = stream(resume);
  }
  if (failures > 0) {
    ++retried_commands_;
    retry_attempts_ += static_cast<std::uint64_t>(failures);
  }

  *slot = done;
  tag_done_[req.tag] = std::max(tag_done_[req.tag], done);
  // A list is one MFC command; a batch of individual transfers is one
  // command each.
  const std::uint64_t n_cmds =
      req.as_list ? 1 : static_cast<std::uint64_t>(elements);
  commands_ += n_cmds;
  transfers_ += static_cast<std::uint64_t>(elements);
  bytes_ += payload;
  (req.dir == DmaDir::kGet ? get_commands_ : put_commands_) += n_cmds;
  if (req.as_list) ++list_commands_;
  if (req.ls_to_ls) ls_to_ls_commands_ += n_cmds;
  return DmaCompletion{issue_done, done, start, failures};
}

sim::Tick Mfc::wait_all(sim::Tick now) const {
  sim::Tick latest = now;
  for (int i = 0; i < depth_; ++i) latest = std::max(latest, slots_[i]);
  ++tag_waits_;
  tag_wait_ticks_ += latest - now;
  return latest;
}

sim::Tick Mfc::wait_tag(sim::Tick now, unsigned tag) const {
  if (tag >= kMfcTagGroups) throw DmaError("wait_tag: tag group must be 0..31");
  sim::Tick ready = std::max(now, tag_done_[tag]);
  // A faulted tag-status wait misses the completion event and only
  // catches it on the next poll period.
  if (faults_ != nullptr && faults_->enabled() &&
      faults_->tag_timeout(fault_unit_, tag_fault_seq_++)) {
    ready += spec_.tag_timeout_penalty;
    ++tag_timeouts_;
    tag_timeout_ticks_ += spec_.tag_timeout_penalty;
  }
  ++tag_waits_;
  tag_wait_ticks_ += ready - now;
  return ready;
}

void Mfc::publish_counters(sim::CounterSet& out) const {
  out.set("commands", static_cast<double>(commands_));
  out.set("get_commands", static_cast<double>(get_commands_));
  out.set("put_commands", static_cast<double>(put_commands_));
  out.set("list_commands", static_cast<double>(list_commands_));
  out.set("ls_to_ls_commands", static_cast<double>(ls_to_ls_commands_));
  out.set("transfers", static_cast<double>(transfers_));
  out.set("bytes_requested", bytes_);
  out.set("queue_full_commands", static_cast<double>(queue_full_commands_));
  out.set("queue_full_ticks", static_cast<double>(queue_full_ticks_));
  out.set("tag_waits", static_cast<double>(tag_waits_));
  out.set("tag_wait_ticks", static_cast<double>(tag_wait_ticks_));
  if (faults_ != nullptr && faults_->enabled()) {
    out.set("retried_commands", static_cast<double>(retried_commands_));
    out.set("retry_attempts", static_cast<double>(retry_attempts_));
    out.set("retry_backoff_ticks", static_cast<double>(retry_backoff_));
    out.set("tag_timeouts", static_cast<double>(tag_timeouts_));
    out.set("tag_timeout_ticks", static_cast<double>(tag_timeout_ticks_));
  }
}

void Mfc::reset() noexcept {
  slots_.fill(0);
  tag_done_.fill(0);
  commands_ = 0;
  transfers_ = 0;
  bytes_ = 0.0;
  occupancy_hist_.fill(0);
  get_commands_ = 0;
  put_commands_ = 0;
  list_commands_ = 0;
  ls_to_ls_commands_ = 0;
  queue_full_commands_ = 0;
  queue_full_ticks_ = 0;
  tag_waits_ = 0;
  tag_wait_ticks_ = 0;
  fault_seq_ = 0;
  tag_fault_seq_ = 0;
  retried_commands_ = 0;
  retry_attempts_ = 0;
  retry_backoff_ = 0;
  tag_timeouts_ = 0;
  tag_timeout_ticks_ = 0;
}

}  // namespace cellsweep::cell
