// Shared-resource models for the discrete-event simulator.
//
// Two kinds cover everything the Cell model needs:
//   * BandwidthResource -- a store-and-forward link serving requests
//     FIFO at a fixed byte rate (the MIC's 25.6 GB/s port, one EIB
//     ring). Completion time of a request is when the link finishes
//     draining it, so concurrent requesters naturally contend.
//   * LatencyServer -- a fixed-latency, fixed-occupancy server
//     (mailbox write, atomic-unit op): each request holds the server
//     for `occupancy` and completes `latency` after it started service.
//
// Both accumulate busy-time so benches can report utilization.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace cellsweep::sim {

/// FIFO bandwidth-shared link. Not itself event-driven: callers ask
/// "when would a transfer of N bytes submitted at time T complete?" and
/// the resource serializes requests in submission order. This is exact
/// for FIFO service and keeps the event count low (one completion event
/// per transfer instead of per-packet flits).
class BandwidthResource {
 public:
  BandwidthResource(std::string name, double bytes_per_second);

  /// Reserves the link for @p bytes starting no earlier than @p now.
  /// Returns the completion time. An optional fixed @p overhead is
  /// charged before the payload starts moving (per-request setup cost).
  Tick submit(Tick now, double bytes, Tick overhead = 0);

  /// Time at which the link next becomes free.
  Tick free_at() const noexcept { return free_at_; }

  /// Total busy ticks accumulated across all requests.
  Tick busy_ticks() const noexcept { return busy_; }

  /// Total ticks requests spent waiting for the link to free up before
  /// their service started (FIFO contention). Observation only.
  Tick wait_ticks() const noexcept { return wait_; }

  /// Total payload bytes moved.
  double bytes_moved() const noexcept { return bytes_; }

  std::uint64_t requests() const noexcept { return requests_; }

  double rate() const noexcept { return rate_; }
  const std::string& name() const noexcept { return name_; }

  /// Utilization over [0, horizon].
  double utilization(Tick horizon) const noexcept {
    return horizon == 0
               ? 0.0
               : static_cast<double>(busy_) / static_cast<double>(horizon);
  }

  void reset() noexcept;

 private:
  std::string name_;
  double rate_;
  Tick free_at_ = 0;
  Tick busy_ = 0;
  Tick wait_ = 0;
  double bytes_ = 0.0;
  std::uint64_t requests_ = 0;
};

/// Fixed-latency single server (e.g. the PPE-side mailbox MMIO path).
class LatencyServer {
 public:
  LatencyServer(std::string name, Tick latency, Tick occupancy);

  /// Submits a request at @p now; returns its completion time.
  Tick submit(Tick now);

  /// Submits a request with explicit latency/occupancy (e.g. a cheap
  /// status poll sharing the server with expensive dispatch work).
  Tick submit_with(Tick now, Tick latency, Tick occupancy);

  Tick free_at() const noexcept { return free_at_; }
  std::uint64_t requests() const noexcept { return requests_; }
  Tick latency() const noexcept { return latency_; }
  const std::string& name() const noexcept { return name_; }

  void reset() noexcept;

 private:
  std::string name_;
  Tick latency_;    // start-of-service to completion
  Tick occupancy_;  // how long the server stays busy per request
  Tick free_at_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace cellsweep::sim
