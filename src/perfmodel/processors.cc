#include "perfmodel/processors.h"

#include <algorithm>

namespace cellsweep::perf {

double ProcessorModel::seconds(std::uint64_t cell_solves,
                               std::uint64_t flops) const {
  const double compute_leg =
      static_cast<double>(flops) / (peak_flops() * achievable_fraction);
  const double memory_leg = static_cast<double>(cell_solves) *
                            bytes_per_solve / mem_bytes_per_s;
  return std::max(compute_leg, memory_leg);
}

// Achievable fractions below are the one calibrated parameter per
// machine (see EXPERIMENTS.md): Sweep3D's inner kernel is a serial
// divide-and-recurrence chain with short trip counts, so single-digit
// percentages of peak are the norm on every scalar machine -- the very
// observation that motivates the paper ("what is the actual fraction of
// the peak performance").

ProcessorModel ppe_gcc() {
  // In-order 2-way PPE, GCC 4-era code generation: no software
  // pipelining of the recurrence, naive divide expansion.
  return {"Cell PPE (GCC)", 3.2e9, 2.0, 0.0206, 6.0e9, 48.0};
}

ProcessorModel ppe_xlc() {
  // XLC schedules the recurrence better and strength-reduces the
  // divide; the paper measured 22.3 s -> 19.9 s from the swap.
  return {"Cell PPE (XLC)", 3.2e9, 2.0, 0.0231, 6.0e9, 48.0};
}

ProcessorModel power5() {
  // 1.9 GHz, two FMA pipes, aggressive OoO and big L3: the best of the
  // "heavy iron" scalar machines (paper: Cell is ~4.5x faster).
  return {"IBM Power5 1.9GHz", 1.9e9, 4.0, 0.064, 10.0e9, 48.0};
}

ProcessorModel opteron() {
  // 2.4 GHz K8, one add + one mul pipe (paper: Cell ~5.5x faster).
  return {"AMD Opteron 2.4GHz", 2.4e9, 2.0, 0.083, 6.4e9, 48.0};
}

ProcessorModel itanium2() {
  // EPIC stalls badly on the data-dependent recurrence despite two
  // FMA units ("conventional processors", ~20x).
  return {"Intel Itanium2 1.6GHz", 1.6e9, 4.0, 0.017, 6.4e9, 48.0};
}

ProcessorModel xeon() {
  // NetBurst Xeon: long pipeline, x87/SSE2 divide latency dominates.
  return {"Intel Xeon 3.6GHz", 3.6e9, 2.0, 0.0167, 4.3e9, 48.0};
}

ProcessorModel ppc970() {
  // PowerPC 970MP: Power4-derived core, weaker prefetch.
  return {"PowerPC 970 2.2GHz", 2.2e9, 4.0, 0.0117, 5.0e9, 48.0};
}

std::vector<ProcessorModel> figure11_lineup() {
  return {power5(), opteron(), itanium2(), xeon(), ppc970()};
}

}  // namespace cellsweep::perf
