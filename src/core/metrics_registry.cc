#include "core/metrics_registry.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "sim/trace.h"
#include "util/units.h"

namespace cellsweep::core {

namespace {

/// %.17g round-trips doubles exactly; identical snapshots emit
/// identical bytes (same contract as write_metrics_json's num()).
std::string fmt(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return util::cformat("%.17g", v);
}

/// JSON variant: no NaN/Infinity literals, degenerate values are null.
void jnum(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << util::cformat("%.17g", v);
}

}  // namespace

const char* metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
    case MetricType::kSeries: return "series";
  }
  return "unknown";
}

const MetricsRegistry::Entry* MetricsRegistry::Family::find(
    const std::string& label) const {
  for (const Entry& e : entries)
    if (e.label == label) return &e;
  return nullptr;
}

const MetricsRegistry::Family* MetricsRegistry::Snapshot::find(
    const std::string& name) const {
  for (const Family& f : families)
    if (f.name == name) return &f;
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const Key& key, MetricType type,
                                               const char* help) {
  auto [fit, inserted] =
      families_.try_emplace(key.family, type, std::string(help));
  if (!inserted && fit->second.first != type) {
    throw std::logic_error("MetricsRegistry: family '" + key.family +
                           "' registered as " +
                           metric_type_name(fit->second.first) +
                           ", recorded as " + metric_type_name(type));
  }
  auto [eit, fresh] = entries_.try_emplace(key);
  if (fresh) eit->second.label = key.label;
  return eit->second;
}

void MetricsRegistry::counter_add(const std::string& family,
                                  const std::string& label, double delta,
                                  const char* help) {
  util::MutexLock lock(mu_);
  entry(Key{family, label}, MetricType::kCounter, help).value += delta;
}

void MetricsRegistry::gauge_set(const std::string& family,
                                const std::string& label, double value,
                                const char* help) {
  util::MutexLock lock(mu_);
  entry(Key{family, label}, MetricType::kGauge, help).value = value;
}

void MetricsRegistry::observe(const std::string& family,
                              const std::string& label, double value,
                              const char* help) {
  util::MutexLock lock(mu_);
  entry(Key{family, label}, MetricType::kHistogram, help).hist.add(value);
}

void MetricsRegistry::series_sample(const std::string& family,
                                    const std::string& label, double host_s,
                                    double value, const char* help) {
  util::MutexLock lock(mu_);
  Entry& e = entry(Key{family, label}, MetricType::kSeries, help);
  e.samples.emplace_back(host_s, value);
  if (e.samples.size() >= kMaxSeriesSamples) {
    // 2:1 decimation: keep even indices, halving resolution but
    // preserving full time coverage.
    std::size_t out = 0;
    for (std::size_t i = 0; i < e.samples.size(); i += 2)
      e.samples[out++] = e.samples[i];
    e.samples.resize(out);
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  Snapshot snap;
  snap.families.reserve(families_.size());
  // families_ and entries_ are std::maps: iteration is already sorted
  // by name / (family, label), which is the snapshot's ordering
  // contract.
  for (const auto& [name, meta] : families_) {
    Family fam;
    fam.name = name;
    fam.type = meta.first;
    fam.help = meta.second;
    for (auto it = entries_.lower_bound(Key{name, std::string()});
         it != entries_.end() && it->first.family == name; ++it)
      fam.entries.push_back(it->second);
    snap.families.push_back(std::move(fam));
  }
  return snap;
}

void write_prometheus(std::ostream& os,
                      const MetricsRegistry::Snapshot& snap) {
  for (const MetricsRegistry::Family& fam : snap.families) {
    const bool series = fam.type == MetricType::kSeries;
    os << "# HELP " << fam.name << " "
       << (fam.help.empty() ? "(no help)" : fam.help) << "\n";
    // Prometheus has no native series type; expose the latest sample
    // as a gauge (the full series lives in the JSON snapshot).
    os << "# TYPE " << fam.name << " "
       << (series ? "gauge" : metric_type_name(fam.type)) << "\n";
    for (const MetricsRegistry::Entry& e : fam.entries) {
      const std::string labels =
          e.label.empty() ? std::string() : "{" + e.label + "}";
      switch (fam.type) {
        case MetricType::kCounter:
        case MetricType::kGauge:
          os << fam.name << labels << " " << fmt(e.value) << "\n";
          break;
        case MetricType::kSeries:
          if (!e.samples.empty())
            os << fam.name << labels << " " << fmt(e.samples.back().second)
               << "\n";
          break;
        case MetricType::kHistogram: {
          // Cumulative buckets over the histogram's upper edges; the
          // mandatory +Inf bucket equals _count.
          const util::Histogram& h = e.hist;
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b < h.bin_count(); ++b) {
            const double upper = h.bin_upper(b);
            if (std::isinf(upper)) continue;  // folded into +Inf below
            cum += h.bin(b);
            os << fam.name << "_bucket{"
               << (e.label.empty() ? std::string() : e.label + ",")
               << "le=\"" << fmt(upper) << "\"} " << cum << "\n";
          }
          os << fam.name << "_bucket{"
             << (e.label.empty() ? std::string() : e.label + ",")
             << "le=\"+Inf\"} " << h.count() << "\n";
          os << fam.name << "_sum" << labels << " "
             << fmt(h.count() == 0 ? 0.0 : h.sum()) << "\n";
          os << fam.name << "_count" << labels << " " << h.count() << "\n";
          break;
        }
      }
    }
  }
}

void write_snapshot_json(std::ostream& os,
                         const MetricsRegistry::Snapshot& snap, int indent) {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  if (snap.families.empty()) {
    os << "[]";
    return;
  }
  os << "[";
  for (std::size_t i = 0; i < snap.families.size(); ++i) {
    const MetricsRegistry::Family& fam = snap.families[i];
    os << (i ? ",\n" : "\n") << pad << " {\"name\": \""
       << sim::json_escape(fam.name) << "\", \"type\": \""
       << metric_type_name(fam.type) << "\", \"entries\": [";
    for (std::size_t k = 0; k < fam.entries.size(); ++k) {
      const MetricsRegistry::Entry& e = fam.entries[k];
      os << (k ? ",\n" : "\n") << pad << "   {\"label\": \""
         << sim::json_escape(e.label) << "\", ";
      switch (fam.type) {
        case MetricType::kCounter:
        case MetricType::kGauge:
          os << "\"value\": ";
          jnum(os, e.value);
          break;
        case MetricType::kHistogram: {
          const util::Histogram& h = e.hist;
          os << "\"count\": " << h.count() << ", \"sum\": ";
          jnum(os, h.count() == 0 ? 0.0 : h.sum());
          os << ", \"min\": ";
          jnum(os, h.min());
          os << ", \"max\": ";
          jnum(os, h.max());
          os << ", \"p50\": ";
          jnum(os, h.percentile(0.50));
          os << ", \"p95\": ";
          jnum(os, h.percentile(0.95));
          os << ", \"p99\": ";
          jnum(os, h.percentile(0.99));
          break;
        }
        case MetricType::kSeries: {
          os << "\"samples\": [";
          for (std::size_t s = 0; s < e.samples.size(); ++s) {
            os << (s ? ", " : "") << "[";
            jnum(os, e.samples[s].first);
            os << ", ";
            jnum(os, e.samples[s].second);
            os << "]";
          }
          os << "]";
          break;
        }
      }
      os << "}";
    }
    if (!fam.entries.empty()) os << "\n" << pad << "  ";
    os << "]}";
  }
  os << "\n" << pad << "]";
}

}  // namespace cellsweep::core
