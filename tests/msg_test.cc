// Unit tests for the message-passing substrate: matched send/recv,
// ordering, collectives, determinism, and the Cartesian topology.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "msg/cart_grid.h"
#include "msg/communicator.h"

namespace cellsweep::msg {
namespace {

TEST(World, RequiresOneRank) {
  EXPECT_THROW(World(0), MsgError);
  EXPECT_NO_THROW(World(1));
}

TEST(Msg, PingPong) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.0, 2.0, 3.0});
      const auto back = comm.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 6.0);
    } else {
      const auto msg = comm.recv(0, 7);
      double sum = 0;
      for (double x : msg) sum += x;
      comm.send(0, 8, std::vector<double>{sum});
    }
  });
}

TEST(Msg, NonOvertakingSameSourceAndTag) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        comm.send(1, 3, std::vector<double>{static_cast<double>(i)});
    } else {
      for (int i = 0; i < 10; ++i) {
        const auto m = comm.recv(0, 3);
        EXPECT_DOUBLE_EQ(m[0], i);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(Msg, TagsMatchIndependently) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 100, std::vector<double>{100.0});
      comm.send(1, 200, std::vector<double>{200.0});
    } else {
      // Receive in the opposite order of sending: tags select.
      EXPECT_DOUBLE_EQ(comm.recv(0, 200)[0], 200.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 100)[0], 100.0);
    }
  });
}

TEST(Msg, RecvIntoValidatesSize) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0, 2.0});
    } else {
      std::vector<double> buf(3);
      EXPECT_THROW(comm.recv_into(0, 1, buf), MsgError);
    }
  });
}

TEST(Msg, RankRangeChecked) {
  World world(2);
  world.run([](Communicator& comm) {
    EXPECT_THROW(comm.send(5, 0, std::vector<double>{1.0}), MsgError);
    EXPECT_THROW(comm.recv(-1, 0), MsgError);
  });
}

TEST(Msg, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> before{0}, after{0};
  world.run([&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Every rank must have passed `before` by now.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(after.load(), 4);
  });
}

TEST(Msg, AllreduceSumDeterministicOrder) {
  // Values with different magnitudes: result must be the rank-ordered
  // sum, bit-exactly, on every rank and every repetition.
  const int n = 6;
  std::vector<double> contrib = {1e16, 3.25, -1e16, 7.5, 0.125, 2.0};
  double expected = 0.0;
  for (double x : contrib) expected += x;

  for (int rep = 0; rep < 5; ++rep) {
    World world(n);
    world.run([&](Communicator& comm) {
      const double r = comm.allreduce_sum(contrib[comm.rank()]);
      EXPECT_EQ(r, expected);
    });
  }
}

TEST(Msg, AllreduceMax) {
  World world(3);
  world.run([](Communicator& comm) {
    const double r = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(r, 2.0);
  });
}

TEST(Msg, SequentialReductions) {
  World world(3);
  world.run([](Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      const double s = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 3.0);
    }
  });
}

TEST(Msg, SingleRankWorldSelfMessaging) {
  // The 1x1 decomposition degenerates to self-sends: matched send/recv
  // to one's own rank, collectives of one, and a no-op barrier must
  // all work so solve_mpi's px = py = 1 path needs no special casing.
  World world(1);
  world.run([](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.send(0, 5, std::vector<double>{4.25, -1.0});
    const auto m = comm.recv(0, 5);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0], 4.25);
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(3.5), 3.5);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(-2.0), -2.0);
  });
}

TEST(Msg, DegradedRankPreservesResults) {
  // A straggler node can reorder host scheduling but never the matched
  // message streams: a pipeline relay through the slow rank must give
  // bit-identical results with and without the degradation.
  auto relay = [](World& world, std::vector<double>& out) {
    const int n = world.size();
    out.assign(static_cast<std::size_t>(n), 0.0);
    world.run([&](Communicator& comm) {
      const int r = comm.rank();
      double acc = 1.0 / (1.0 + r);
      for (int round = 0; round < 8; ++round) {
        if (r > 0) acc += comm.recv(r - 1, round)[0];
        if (r < n - 1) comm.send(r + 1, round, std::vector<double>{acc});
      }
      out[static_cast<std::size_t>(r)] = comm.allreduce_sum(acc);
    });
  };
  World healthy(4), degraded(4);
  degraded.degrade_rank(2, 300);
  std::vector<double> a, b;
  relay(healthy, a);
  relay(degraded, b);
  EXPECT_EQ(a, b);
  for (double v : b) EXPECT_EQ(v, b[0]);  // allreduce agrees on all ranks
}

TEST(Msg, DegradeRankValidates) {
  World world(2);
  EXPECT_THROW(world.degrade_rank(2, 10), MsgError);
  EXPECT_THROW(world.degrade_rank(-1, 10), MsgError);
  EXPECT_THROW(world.degrade_rank(0, -5), MsgError);
  EXPECT_NO_THROW(world.degrade_rank(0, 0));
}

TEST(Msg, ExceptionsPropagate) {
  World world(2);
  EXPECT_THROW(world.run([](Communicator& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank fail");
               }),
               std::runtime_error);
}

TEST(CartGrid, CoordinatesRoundTrip) {
  CartGrid2D grid(3, 2);
  EXPECT_EQ(grid.size(), 6);
  for (int r = 0; r < grid.size(); ++r)
    EXPECT_EQ(grid.rank_of(grid.x_of(r), grid.y_of(r)), r);
}

TEST(CartGrid, NeighborsAndBoundaries) {
  CartGrid2D grid(3, 3);
  const int center = grid.rank_of(1, 1);
  EXPECT_EQ(grid.neighbor(center, Direction::kWest), grid.rank_of(0, 1));
  EXPECT_EQ(grid.neighbor(center, Direction::kEast), grid.rank_of(2, 1));
  EXPECT_EQ(grid.neighbor(center, Direction::kNorth), grid.rank_of(1, 0));
  EXPECT_EQ(grid.neighbor(center, Direction::kSouth), grid.rank_of(1, 2));
  EXPECT_EQ(grid.neighbor(grid.rank_of(0, 0), Direction::kWest), -1);
  EXPECT_EQ(grid.neighbor(grid.rank_of(2, 2), Direction::kSouth), -1);
}

TEST(CartGrid, WaveDepth) {
  CartGrid2D grid(3, 3);
  // Sweep entering at the north-west corner (Figure 1).
  EXPECT_EQ(grid.wave_depth(grid.rank_of(0, 0), 0, 0), 0);
  EXPECT_EQ(grid.wave_depth(grid.rank_of(2, 2), 0, 0), 4);
  EXPECT_EQ(grid.wave_depth(grid.rank_of(2, 2), 1, 1), 0);  // SE corner
}

TEST(CartGrid, RejectsBadDims) {
  EXPECT_THROW(CartGrid2D(0, 3), std::invalid_argument);
}

TEST(CartGrid, DegenerateAndNonSquareShapes) {
  // 1x1: a single rank with no neighbors and zero wave depth.
  CartGrid2D one(1, 1);
  EXPECT_EQ(one.size(), 1);
  for (Direction d : {Direction::kWest, Direction::kEast, Direction::kNorth,
                      Direction::kSouth})
    EXPECT_EQ(one.neighbor(0, d), -1);
  EXPECT_EQ(one.wave_depth(0, 0, 0), 0);

  // 6x1: a pure pipeline; the wavefront walks west-to-east.
  CartGrid2D row(6, 1);
  EXPECT_EQ(row.size(), 6);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(row.rank_of(row.x_of(r), row.y_of(r)), r);
    EXPECT_EQ(row.neighbor(r, Direction::kNorth), -1);
    EXPECT_EQ(row.neighbor(r, Direction::kSouth), -1);
    EXPECT_EQ(row.wave_depth(r, 0, 0), row.x_of(r));
  }
  EXPECT_EQ(row.neighbor(0, Direction::kWest), -1);
  EXPECT_EQ(row.neighbor(5, Direction::kEast), -1);

  // 1x4: the transposed pipeline.
  CartGrid2D col(1, 4);
  EXPECT_EQ(col.size(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(col.neighbor(r, Direction::kWest), -1);
    EXPECT_EQ(col.neighbor(r, Direction::kEast), -1);
  }
  EXPECT_EQ(col.wave_depth(3, 0, 0), col.y_of(3));
}


TEST(Msg, DegradeAndHealMidRunIsSafeAndDeterministic) {
  // degrade_rank() may fire from the driver thread while rank threads
  // are mid-send: the delay table is lock-protected, so this is a
  // legal (if racy-in-ordering) thing to do, and the matched-message
  // streams keep the results bit-identical regardless of when the
  // degradation lands. Regression test for the unsynchronized
  // send_delay_us_ access this would have been before the lock.
  World world(2);
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    int delay = 1;
    while (!stop.load()) {
      world.degrade_rank(0, delay);
      delay = delay == 1 ? 0 : 1;  // degrade, heal, degrade, ...
    }
  });
  const int rounds = 200;
  std::vector<double> echoed;
  world.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < rounds; ++i) {
        comm.send(1, 1, std::vector<double>{static_cast<double>(i)});
        const auto back = comm.recv(1, 2);
        ASSERT_EQ(back.size(), 1u);
        echoed.push_back(back[0]);
      }
    } else {
      for (int i = 0; i < rounds; ++i) {
        const auto m = comm.recv(0, 1);
        comm.send(0, 2, std::vector<double>{m[0] * 2.0});
      }
    }
  });
  stop.store(true);
  flipper.join();
  ASSERT_EQ(echoed.size(), static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) EXPECT_DOUBLE_EQ(echoed[i], 2.0 * i);
}

}  // namespace
}  // namespace cellsweep::msg
