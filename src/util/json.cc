#include "util/json.h"

#include <charconv>
#include <cstddef>

namespace cellsweep::util {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return descend(&Parser::parse_object);
      case '[': return descend(&Parser::parse_array);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string_v = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          v.bool_v = true;
          return v;
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          return v;
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  /// Recursion guard around the container parsers: parse depth is the
  /// C++ call-stack depth, so unbounded "[[[[..." input would otherwise
  /// overflow the stack instead of failing like any other bad input.
  JsonValue descend(JsonValue (Parser::*parse)()) {
    if (depth_ >= kMaxJsonDepth)
      fail("containers nested deeper than " + std::to_string(kMaxJsonDepth) +
           " levels");
    ++depth_;
    JsonValue v = (this->*parse)();
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_v.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    // UTF-8 encode the BMP code point (surrogate pairs unsupported --
    // the emitters in this repo never produce them).
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v.number_v);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      fail("invalid number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;  ///< open containers (see descend)
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_v)
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string_v : std::move(fallback);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cellsweep::util
