// Tests for the multi-chip wavefront scaling model.
#include <gtest/gtest.h>

#include "perfmodel/wavefront.h"

namespace cellsweep::perf {
namespace {

WavefrontParams base() {
  WavefrontParams p;
  p.px = 4;
  p.py = 4;
  p.blocks_per_octant = 20;
  p.tile_time_s = 0.1;
  p.block_comm_bytes = 4000;
  p.link_bandwidth = 2e9;
  p.link_latency_s = 10e-6;
  return p;
}

TEST(Wavefront, SingleChipHasNoPipelineLoss) {
  WavefrontParams p = base();
  p.px = p.py = 1;
  const WavefrontEstimate e = estimate_wavefront(p);
  EXPECT_EQ(e.pipeline_depth, 0);
  EXPECT_DOUBLE_EQ(e.fill_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(e.block_comm_s, 0.0);
  EXPECT_NEAR(e.total_s, p.tile_time_s, 1e-12);
  EXPECT_NEAR(e.parallel_efficiency, 1.0, 1e-12);
}

TEST(Wavefront, DepthIsManhattanDistance) {
  WavefrontParams p = base();
  const WavefrontEstimate e = estimate_wavefront(p);
  EXPECT_EQ(e.pipeline_depth, 6);  // (4-1)+(4-1)
}

TEST(Wavefront, FillEfficiencyFormula) {
  WavefrontParams p = base();
  const WavefrontEstimate e = estimate_wavefront(p);
  EXPECT_NEAR(e.fill_efficiency, 20.0 / 26.0, 1e-12);
}

TEST(Wavefront, EfficiencyDropsWithGridSize) {
  double prev = 1.1;
  for (int n : {1, 2, 4, 8}) {
    WavefrontParams p = base();
    p.px = p.py = n;
    const WavefrontEstimate e = estimate_wavefront(p);
    EXPECT_LT(e.parallel_efficiency, prev) << n;
    prev = e.parallel_efficiency;
  }
}

TEST(Wavefront, MoreBlocksImproveFillButPayComm) {
  // With per-block message cost, an interior optimum exists.
  WavefrontParams p = base();
  p.px = p.py = 8;
  double coarse, fine, best;
  p.blocks_per_octant = 2;
  coarse = estimate_wavefront(p).total_s;
  p.blocks_per_octant = 2000;
  fine = estimate_wavefront(p).total_s;
  best = best_blocking(p, 2000).total_s;
  EXPECT_LT(best, coarse);
  EXPECT_LE(best, fine);
}

TEST(Wavefront, BestBlockingFindsInteriorOptimum) {
  WavefrontParams p = base();
  p.px = p.py = 8;
  p.link_latency_s = 50e-6;  // expensive messages
  const WavefrontEstimate best = best_blocking(p, 500);
  // The optimum is neither 1 block nor the maximum.
  p.blocks_per_octant = 1;
  EXPECT_LT(best.total_s, estimate_wavefront(p).total_s);
  p.blocks_per_octant = 500;
  EXPECT_LT(best.total_s, estimate_wavefront(p).total_s);
}

TEST(Wavefront, CommScalesWithBytesAndLatency) {
  WavefrontParams p = base();
  const double t1 = estimate_wavefront(p).total_s;
  p.block_comm_bytes *= 10;
  const double t2 = estimate_wavefront(p).total_s;
  EXPECT_GT(t2, t1);
  p.block_comm_bytes = base().block_comm_bytes;
  p.link_latency_s *= 10;
  EXPECT_GT(estimate_wavefront(p).total_s, t1);
}

TEST(Wavefront, Validation) {
  WavefrontParams p = base();
  p.px = 0;
  EXPECT_THROW(estimate_wavefront(p), std::invalid_argument);
  p = base();
  p.blocks_per_octant = 0;
  EXPECT_THROW(estimate_wavefront(p), std::invalid_argument);
  p = base();
  p.link_bandwidth = 0;
  EXPECT_THROW(estimate_wavefront(p), std::invalid_argument);
  EXPECT_THROW(best_blocking(base(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace cellsweep::perf
