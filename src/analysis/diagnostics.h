// Diagnostics sink for the machine-model hazard checker and the deck
// linter: a flat, ordered list of findings, each carrying the rule that
// fired, where in the machine it fired (SPE / LS region / deck key) and
// -- for runtime hazards -- the simulated timestamp. Checkers append;
// callers decide severity policy (deck_runner --check and the
// CELLSWEEP_HAZARD_CHECK CI mode turn errors into hard failures).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.h"
#include "util/concurrency_check.h"

namespace cellsweep::analysis {

/// Thrown when a strict-mode run finishes with hazard errors.
class HazardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One finding.
struct Diagnostic {
  enum class Severity { kWarning, kError };

  Severity severity = Severity::kError;
  /// Stable rule identifier, e.g. "read-before-get-complete".
  std::string rule;
  /// Machine location, e.g. "SPE3 chunk-buffer-1" or a deck key.
  std::string where;
  /// Simulated time of the violation; meaningful only when has_time
  /// (static lint findings have no timestamp).
  sim::Tick at = 0;
  bool has_time = false;
  /// Human-readable description.
  std::string message;

  /// "error[rule] at <t> us: SPE3 chunk-buffer-1: message" rendering.
  std::string to_string() const;
};

/// Ordered collection of findings. Not a shared sink: a Diagnostics
/// belongs to the checker (and thus the tenant thread) that fills it,
/// and the ThreadConfined guard reports any accidental cross-thread
/// append. Copies start unconfined, so returning one by value (the
/// linters do) hands ownership to whichever thread touches it next.
class Diagnostics {
 public:
  void report(Diagnostic d) {
    confined_.check("Diagnostics::report");
    entries_.push_back(std::move(d));
  }

  /// Convenience: append an error finding at simulated time @p at.
  void error(std::string rule, std::string where, sim::Tick at,
             std::string message);
  /// Convenience: append a timestamp-free (static) error finding.
  void error(std::string rule, std::string where, std::string message);
  /// Convenience: append a warning finding at simulated time @p at.
  void warn(std::string rule, std::string where, sim::Tick at,
            std::string message);
  /// Convenience: append a timestamp-free (static) warning finding.
  void warn(std::string rule, std::string where, std::string message);

  const std::vector<Diagnostic>& entries() const noexcept { return entries_; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t error_count() const noexcept;
  bool has_errors() const noexcept { return error_count() > 0; }

  /// All findings, one per line (empty string when clean).
  std::string summary() const;

  void clear() noexcept {
    entries_.clear();
    confined_.reset();  // a cleared sink may move to another thread
  }

 private:
  util::ThreadConfined confined_;
  std::vector<Diagnostic> entries_;
};

}  // namespace cellsweep::analysis
