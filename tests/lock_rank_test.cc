// util::Mutex lock-rank checking and util::ThreadConfined: the runtime
// half of the concurrency-safety layer (the compile-time half is clang
// -Wthread-safety plus the compile-fail tests). These tests pin the
// checker itself: strictly rank-increasing acquisition is accepted,
// out-of-order / equal-rank / recursive acquisition is reported,
// waiting on a CondVar keeps the waiter's held state intact, and
// thread confinement detects cross-thread use while copies hand off
// ownership cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/concurrency_check.h"
#include "util/mutex.h"

namespace cellsweep::util {
namespace {

/// Violation reports surface as this exception while a test runs.
struct RankViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throwing_handler(const std::string& message) {
  throw RankViolation(message);
}

/// Installs the throwing handler for the scope of one test.
class ScopedThrowingHandler {
 public:
  ScopedThrowingHandler()
      : previous_(set_concurrency_violation_handler(&throwing_handler)) {}
  ~ScopedThrowingHandler() {
    set_concurrency_violation_handler(previous_);
  }

 private:
  ConcurrencyViolationHandler previous_;
};

TEST(LockRank, StrictlyIncreasingAcquisitionIsAccepted) {
  ScopedThrowingHandler guard;
  Mutex low(10, "low");
  Mutex mid(20, "mid");
  Mutex high(30, "high");
  MutexLock a(low);
  MutexLock b(mid);
  MutexLock c(high);
}

TEST(LockRank, OutOfOrderAcquisitionIsReported) {
  ScopedThrowingHandler guard;
  Mutex low(10, "low");
  Mutex high(30, "high");
  MutexLock a(high);
  try {
    MutexLock b(low);
    FAIL() << "acquiring rank 10 under rank 30 must be reported";
  } catch (const RankViolation& v) {
    const std::string what = v.what();
    EXPECT_NE(what.find("low"), std::string::npos) << what;
    EXPECT_NE(what.find("high"), std::string::npos) << what;
    EXPECT_NE(what.find("rank-increasing"), std::string::npos) << what;
  }
}

TEST(LockRank, EqualRanksMayNeverNest) {
  // Two same-rank locks have no defined order, so nesting them in
  // either direction is a latent deadlock; the checker rejects both.
  ScopedThrowingHandler guard;
  Mutex a(10, "a");
  Mutex b(10, "b");
  MutexLock la(a);
  EXPECT_THROW(MutexLock lb(b), RankViolation);
}

TEST(LockRank, RecursiveAcquisitionIsReported) {
  ScopedThrowingHandler guard;
  Mutex mu(10, "mu");
  MutexLock lock(mu);
  try {
    mu.lock();
    FAIL() << "recursive lock() must be reported";
  } catch (const RankViolation& v) {
    EXPECT_NE(std::string(v.what()).find("recursive"), std::string::npos);
  }
}

TEST(LockRank, TryLockRunsTheSameRankCheck) {
  ScopedThrowingHandler guard;
  Mutex low(10, "low");
  Mutex high(30, "high");
  MutexLock a(high);
  // try_lock would succeed (nobody holds `low`) -- the rank check
  // still fires first, because "would not have blocked this time" is
  // exactly how rank bugs hide.
  EXPECT_THROW((void)low.try_lock(), RankViolation);
}

TEST(LockRank, UnlockingAnUnheldMutexIsReported) {
  ScopedThrowingHandler guard;
  Mutex mu(10, "mu");
  EXPECT_THROW(mu.unlock(), RankViolation);
}

TEST(LockRank, HandOverHandReleaseIsLegal) {
  // Out-of-LIFO release: take low then high, release low first. The
  // held stack removes by search, so this must not be reported.
  ScopedThrowingHandler guard;
  Mutex low(10, "low");
  Mutex high(30, "high");
  low.lock();
  high.lock();
  low.unlock();
  high.unlock();
}

TEST(LockRank, MutexLockSupportsManualUnlockAndRelock) {
  ScopedThrowingHandler guard;
  Mutex mu(10, "mu");
  MutexLock lock(mu);
  lock.unlock();
  // While released, a fresh acquisition of the same mutex is legal.
  { MutexLock again(mu); }
  lock.lock();
}

TEST(LockRank, CondVarWaitKeepsTheWaiterHeldState) {
  ScopedThrowingHandler guard;
  Mutex mu(10, "mu");
  CondVar cv;
  bool ready = false;
  std::thread t([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // The waiter held mu across the wait as far as the rank stack is
    // concerned: acquiring a higher rank now is legal, a lower one is
    // still a violation.
    Mutex high(30, "high");
    { MutexLock nested(high); }
    Mutex low(5, "low");
    EXPECT_THROW(MutexLock bad(low), RankViolation);
  }
  t.join();
}

TEST(LockRank, RankStackIsPerThread) {
  // A rank held on one thread constrains nothing on another.
  ScopedThrowingHandler guard;
  Mutex low(10, "low");
  Mutex high(30, "high");
  MutexLock a(high);
  std::thread t([&] {
    ScopedThrowingHandler thread_guard;
    MutexLock b(low);  // legal: this thread holds nothing
  });
  t.join();
}

TEST(LockRank, AccessorsExposeRankAndName) {
  Mutex mu(42, "answer");
  EXPECT_EQ(mu.rank(), 42);
  EXPECT_STREQ(mu.name(), "answer");
}

TEST(ThreadConfinedGuard, SameThreadUseIsFree) {
  ScopedThrowingHandler guard;
  ThreadConfined confined;
  confined.check("first");
  confined.check("second");
}

TEST(ThreadConfinedGuard, CrossThreadUseIsReported) {
  ScopedThrowingHandler guard;
  ThreadConfined confined;
  confined.check("owner claims");
  std::atomic<bool> reported{false};
  std::thread t([&] {
    ScopedThrowingHandler thread_guard;
    try {
      confined.check("intruder");
    } catch (const RankViolation& v) {
      EXPECT_NE(std::string(v.what()).find("intruder"), std::string::npos);
      reported.store(true);
    }
  });
  t.join();
  EXPECT_TRUE(reported.load());
}

TEST(ThreadConfinedGuard, CopyIsAHandoffAndResetReopens) {
  ScopedThrowingHandler guard;
  ThreadConfined original;
  original.check("owner");
  // A copy starts unowned: whoever touches it first owns it (the
  // by-value Diagnostics returns rely on this).
  ThreadConfined copy(original);
  std::thread t1([&] {
    ScopedThrowingHandler thread_guard;
    copy.check("new owner");
  });
  t1.join();
  // reset() reopens the original at a quiescent point.
  original.reset();
  std::thread t2([&] {
    ScopedThrowingHandler thread_guard;
    original.check("after reset");
  });
  t2.join();
}

}  // namespace
}  // namespace cellsweep::util
