// Detailed Element Interconnect Bus model.
//
// The EIB (paper Section 2 and its reference [9], "Cell Processor
// Interconnection Network: Built for Speed") is four unidirectional
// rings -- two clockwise, two counterclockwise -- connecting twelve
// elements: the PPE, eight SPEs, the MIC and two I/O interfaces. Each
// ring moves 16 bytes per bus cycle (half the CPU clock); a transfer
// occupies only the ring *segments* between source and destination, so
// transfers whose paths do not overlap proceed concurrently on the same
// ring. The arbiter assigns each transfer the ring+direction with the
// shorter path (never more than half way around).
//
// The aggregate-bandwidth Eib in memory.h is sufficient for the
// memory-bound Sweep3D runs; this model exists for the LS-to-LS
// communication patterns (the distributed variant's face forwarding)
// and is validated against the published EIB behaviours: neighboring
// transfers overlap, path-crossing transfers serialize, and the
// aggregate peak is 204.8 GB/s.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cellsim/spec.h"
#include "sim/time.h"

namespace cellsweep::cell {

/// Bus element ids in physical ring order (the floorplan order of
/// reference [9]): interleaving SPEs with the controllers.
enum class BusElement : std::uint8_t {
  kPpe = 0,
  kSpe1 = 1,
  kSpe3 = 2,
  kSpe5 = 3,
  kSpe7 = 4,
  kIoif1 = 5,
  kIoif0 = 6,
  kSpe6 = 7,
  kSpe4 = 8,
  kSpe2 = 9,
  kSpe0 = 10,
  kMic = 11,
};

inline constexpr int kBusElements = 12;

/// Maps an SPE index (0..7) to its ring position.
BusElement spe_element(int spe_index);

/// One completed reservation, for diagnostics.
struct RingGrant {
  int ring;            ///< 0..3
  bool clockwise;
  int hops;            ///< segments traversed
  sim::Tick start;
  sim::Tick done;
};

/// Segment-granular four-ring interconnect.
class EibRings {
 public:
  explicit EibRings(const CellSpec& spec);

  /// Reserves a path from @p src to @p dst for @p bytes starting no
  /// earlier than @p now. Picks the earliest-finishing (ring,
  /// direction) among all four rings and both directions (shorter path
  /// preferred); occupies each traversed segment for the transfer
  /// duration. Returns the grant.
  RingGrant transfer(sim::Tick now, BusElement src, BusElement dst,
                     double bytes);

  /// Per-ring data rate (bytes/second): 16 bytes per bus cycle, bus at
  /// half the CPU clock.
  double ring_rate() const noexcept { return ring_rate_; }

  /// Total payload moved.
  double bytes_moved() const noexcept { return bytes_; }

  std::uint64_t transfers() const noexcept { return transfers_; }

  void reset();

 private:
  /// free_at_[ring][direction][segment]: segment s is the hop from
  /// element s to element s+1 (mod 12) in clockwise orientation.
  using SegmentClocks = std::array<sim::Tick, kBusElements>;
  std::array<std::array<SegmentClocks, 2>, 4> free_at_{};
  double ring_rate_;
  double bytes_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace cellsweep::cell
