#include "sim/resource.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cellsweep::sim {

BandwidthResource::BandwidthResource(std::string name, double bytes_per_second)
    : name_(std::move(name)), rate_(bytes_per_second) {
  if (rate_ <= 0.0)
    throw std::invalid_argument("BandwidthResource: rate must be positive");
}

Tick BandwidthResource::submit(Tick now, double bytes, Tick overhead) {
  if (bytes < 0.0)
    throw std::invalid_argument("BandwidthResource: negative byte count");
  const Tick start = std::max(now, free_at_);
  const Tick service = overhead + ticks_for_bytes(bytes, rate_);
  free_at_ = start + service;
  busy_ += service;
  wait_ += start - now;
  bytes_ += bytes;
  ++requests_;
  return free_at_;
}

void BandwidthResource::reset() noexcept {
  free_at_ = 0;
  busy_ = 0;
  wait_ = 0;
  bytes_ = 0.0;
  requests_ = 0;
}

LatencyServer::LatencyServer(std::string name, Tick latency, Tick occupancy)
    : name_(std::move(name)), latency_(latency), occupancy_(occupancy) {}

Tick LatencyServer::submit(Tick now) {
  return submit_with(now, latency_, occupancy_);
}

Tick LatencyServer::submit_with(Tick now, Tick latency, Tick occupancy) {
  const Tick start = std::max(now, free_at_);
  free_at_ = start + occupancy;
  ++requests_;
  return start + latency;
}

void LatencyServer::reset() noexcept {
  free_at_ = 0;
  requests_ = 0;
}

}  // namespace cellsweep::sim
