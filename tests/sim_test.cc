// Unit tests for the discrete-event core: time conversion, event
// ordering/determinism, and the shared-resource models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace cellsweep::sim {
namespace {

TEST(Time, SecondsRoundTrip) {
  EXPECT_EQ(ticks_from_seconds(1.0), kTicksPerSecond);
  EXPECT_DOUBLE_EQ(seconds_from_ticks(ticks_from_seconds(1.33)), 1.33);
}

TEST(Time, CellCycleIsExact) {
  // One 3.2 GHz cycle = 312,500 fs exactly: integer cycle arithmetic.
  EXPECT_EQ(ticks_per_cycle(3.2e9), 312500u);
  EXPECT_EQ(ticks_from_cycles(7, 3.2e9), 7u * 312500u);
}

TEST(Time, BytesOverLink) {
  // 25.6 GB/s moving 25.6 GB takes one second.
  EXPECT_EQ(ticks_for_bytes(25.6e9, 25.6e9), kTicksPerSecond);
}

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule(10, [&] {
    EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(BandwidthResource, SingleTransfer) {
  BandwidthResource link("l", 1e9);  // 1 GB/s
  const Tick done = link.submit(0, 1e6);  // 1 MB
  EXPECT_EQ(done, ticks_from_seconds(1e-3));
  EXPECT_DOUBLE_EQ(link.bytes_moved(), 1e6);
  EXPECT_EQ(link.requests(), 1u);
}

TEST(BandwidthResource, FifoContention) {
  BandwidthResource link("l", 1e9);
  const Tick d1 = link.submit(0, 1e6);
  // Submitted while busy: queues behind the first transfer.
  const Tick d2 = link.submit(0, 1e6);
  EXPECT_EQ(d2, 2 * d1);
}

TEST(BandwidthResource, IdleGapNotCharged) {
  BandwidthResource link("l", 1e9);
  link.submit(0, 1e6);
  const Tick later = ticks_from_seconds(1.0);
  const Tick done = link.submit(later, 1e6);
  EXPECT_EQ(done, later + ticks_from_seconds(1e-3));
  // Busy time counts service only, not the idle gap.
  EXPECT_EQ(link.busy_ticks(), 2 * ticks_from_seconds(1e-3));
}

TEST(BandwidthResource, OverheadAddsToService) {
  BandwidthResource link("l", 1e9);
  const Tick done = link.submit(0, 1e6, /*overhead=*/500);
  EXPECT_EQ(done, ticks_from_seconds(1e-3) + 500);
}

TEST(BandwidthResource, Utilization) {
  BandwidthResource link("l", 1e9);
  link.submit(0, 1e6);
  EXPECT_NEAR(link.utilization(ticks_from_seconds(2e-3)), 0.5, 1e-12);
}

TEST(BandwidthResource, RejectsBadArgs) {
  EXPECT_THROW(BandwidthResource("x", 0.0), std::invalid_argument);
  BandwidthResource link("l", 1e9);
  EXPECT_THROW(link.submit(0, -1.0), std::invalid_argument);
}

TEST(BandwidthResource, ResetClearsState) {
  BandwidthResource link("l", 1e9);
  link.submit(0, 1e6);
  link.reset();
  EXPECT_EQ(link.busy_ticks(), 0u);
  EXPECT_EQ(link.requests(), 0u);
  EXPECT_EQ(link.free_at(), 0u);
}

TEST(LatencyServer, LatencyAndOccupancyDiffer) {
  LatencyServer srv("s", /*latency=*/100, /*occupancy=*/10);
  EXPECT_EQ(srv.submit(0), 100u);
  // Second request starts after the 10-tick occupancy, not the 100.
  EXPECT_EQ(srv.submit(0), 110u);
}

TEST(LatencyServer, SubmitWithOverride) {
  LatencyServer srv("s", 100, 100);
  EXPECT_EQ(srv.submit_with(0, 5, 50), 5u);
  EXPECT_EQ(srv.submit_with(0, 5, 50), 55u);  // queued behind occupancy
}

TEST(LatencyServer, BurstSerializes) {
  LatencyServer srv("s", 100, 100);
  Tick last = 0;
  for (int i = 0; i < 8; ++i) last = srv.submit(0);
  EXPECT_EQ(last, 800u);
  EXPECT_EQ(srv.requests(), 8u);
}

}  // namespace
}  // namespace cellsweep::sim
