// Unit tests for the padded field layout (the flattening + 128-byte
// row alignment the Cell port requires).
#include <gtest/gtest.h>

#include "sweep/field.h"
#include "util/aligned.h"

namespace cellsweep::sweep {
namespace {

TEST(MomentField, RowsAre128ByteAligned) {
  const Grid g = Grid::cube(50);
  MomentField<double> f(g, 6);
  for (int n = 0; n < 6; ++n)
    for (int k : {0, 25, 49})
      for (int j : {0, 10, 49})
        EXPECT_TRUE(util::is_aligned(f.line(n, k, j), 128));
}

TEST(MomentField, PaddedRowIs512BytesForIt50) {
  // The paper's "512-byte DMAs": one padded 50-cell DP row.
  const Grid g = Grid::cube(50);
  MomentField<double> f(g, 6);
  EXPECT_EQ(f.row_bytes(), 512u);
  EXPECT_EQ(f.it_padded(), 64);
}

TEST(MomentField, MomentStrideSeparatesMoments) {
  const Grid g{10, 5, 3, 1, 1, 1};
  MomentField<double> f(g, 4);
  f.at(2, 1, 3, 7) = 42.0;
  EXPECT_DOUBLE_EQ(f.line(0, 1, 3)[2 * f.moment_stride() + 7], 42.0);
}

TEST(MomentField, FillAndSum) {
  const Grid g{8, 4, 2, 1, 1, 1};
  MomentField<double> f(g, 2);
  f.fill(2.0);
  // moment_sum only counts real cells, not the padding.
  EXPECT_DOUBLE_EQ(f.moment_sum(0), 2.0 * g.cells());
}

TEST(MomentField, MaxAbsDiff) {
  const Grid g{8, 4, 2, 1, 1, 1};
  MomentField<double> a(g, 1), b(g, 1);
  a.at(0, 1, 2, 3) = 5.0;
  b.at(0, 1, 2, 3) = 2.5;
  EXPECT_DOUBLE_EQ(MomentField<double>::max_abs_diff_moment0(a, b), 2.5);
}

TEST(MomentField, SinglePrecisionPadding) {
  const Grid g = Grid::cube(50);
  MomentField<float> f(g, 6);
  // 50 floats = 200 B -> 256 B = 64 floats.
  EXPECT_EQ(f.it_padded(), 64);
  EXPECT_EQ(f.row_bytes(), 256u);
}

TEST(CellField, LayoutMatchesMomentField) {
  const Grid g = Grid::cube(20);
  CellField<double> c(g);
  MomentField<double> f(g, 1);
  EXPECT_EQ(c.it_padded(), f.it_padded());
  c.at(3, 4, 5) = 7.0;
  EXPECT_DOUBLE_EQ(c.line(3, 4)[5], 7.0);
  EXPECT_TRUE(util::is_aligned(c.line(3, 4), 128));
}

TEST(MomentField, ZeroInitialized) {
  const Grid g{16, 3, 3, 1, 1, 1};
  MomentField<double> f(g, 3);
  EXPECT_DOUBLE_EQ(f.moment_sum(0), 0.0);
  EXPECT_DOUBLE_EQ(f.moment_sum(2), 0.0);
}

}  // namespace
}  // namespace cellsweep::sweep
