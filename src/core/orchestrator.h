// CellSweep3D: the paper's five-level parallelization, orchestrated
// over the machine model.
//
// Level 1 (process) stays with src/sweep/mpi_sweeper. Levels 2-5 live
// here: the jkm-diagonal I-lines are farmed to the eight SPEs in
// chunks of four (thread level), using the same ChunkPlan decomposition
// (sweep/plan.h) the functional sweeper executes; each chunk's working
// set streams
// through the local store with single or double buffering (data
// streaming); the chunk kernel is the scalar or the four-logical-thread
// SIMD one (vector + pipeline levels). The TimingEngine walks the same
// DiagonalWork stream the functional sweeper emits and advances the
// machine model's clocks: dispatch-fabric grants, MFC DMA gets/puts
// (individual commands or DMA lists), SPU compute from the trace-
// scheduled kernel cycles, per-diagonal wavefront barriers, and the
// per-iteration source rebuild pass.
//
// Two run modes produce identical timing (a test asserts it):
//   * kFunctional  -- the physics really runs; the observer feeds the
//     engine (execution-driven). Use for correctness and examples.
//   * kTraceDriven -- only the loop structure is replayed (fast; the
//     benches use it for big sweeps).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cellsim/cell_processor.h"
#include "sim/counters.h"
#include "sim/trace.h"
#include "core/config.h"
#include "core/kernel_timing.h"
#include "core/workload.h"
#include "sweep/sweeper.h"

namespace cellsweep::analysis {
class Diagnostics;
class HazardChecker;
}

namespace cellsweep::core {

/// How the workload stream is produced.
enum class RunMode : std::uint8_t { kFunctional, kTraceDriven };

/// Where one SPE's simulated time went, in seconds. The four buckets
/// partition the run: busy (kernel cycles) + dma_wait (SPU stalled on
/// its own gets/puts) + sync_wait (stalled on wavefront dependencies,
/// dispatch grants and barriers) + idle (no work assigned) = seconds.
struct SpeStallSummary {
  double busy_s = 0;
  double dma_wait_s = 0;
  double sync_wait_s = 0;
  double idle_s = 0;
};

/// What the fault injector did to a run (all zero / disabled unless a
/// fault plan was armed via CellSweepConfig::faults). The same numbers
/// appear under the "faults" subtree of RunReport::counters and in the
/// metrics JSON.
struct FaultReport {
  bool enabled = false;
  int spes_disabled = 0;   ///< dead from boot (the 7-of-8 yield case)
  int spes_failed = 0;     ///< died mid-sweep
  std::uint64_t redispatched_chunks = 0;  ///< re-run on a surviving SPE
  std::uint64_t dma_retries = 0;     ///< failed DMA attempts, all MFCs
  std::uint64_t tag_timeouts = 0;    ///< tag waits that missed the event
  std::uint64_t dropped_messages = 0;  ///< dispatch messages resent
  std::uint64_t mic_throttled = 0;   ///< bank-throttled MIC requests
};

/// Everything a run reports; the benches print from this.
struct RunReport {
  // --- timing ---------------------------------------------------------
  double seconds = 0;           ///< simulated wall time of the run
  double compute_busy_s = 0;    ///< mean per-SPE compute busy time
  double mic_busy_s = 0;        ///< memory-port busy time
  double dispatch_busy_grants = 0;  ///< dispatched work items
  // --- workload -------------------------------------------------------
  double traffic_bytes = 0;     ///< DMA payload moved (both directions)
  std::uint64_t flops = 0;
  std::uint64_t cell_solves = 0;
  std::uint64_t chunks = 0;
  std::uint64_t dma_commands = 0;
  std::uint64_t dma_transfers = 0;
  // --- derived --------------------------------------------------------
  double achieved_flops_per_s = 0;
  double grind_seconds = 0;     ///< seconds per cell-angle solve
  double memory_bound_s = 0;    ///< Section 6 traffic bound
  double compute_bound_s = 0;   ///< Section 6 compute bound
  std::size_t ls_high_water = 0;  ///< LS bytes used per SPE
  // --- stall accounting (SPE stages only; empty for PPE runs) ----------
  std::vector<SpeStallSummary> spe_stalls;  ///< one entry per SPE
  /// Aggregate MFC queue-occupancy histogram: [k] counts DMA commands
  /// that entered their MFC queue behind k outstanding commands.
  std::vector<std::uint64_t> mfc_queue_occupancy;
  double mic_utilization = 0;   ///< MIC port busy fraction of the run
  double eib_utilization = 0;   ///< EIB busy fraction of the run
  // --- performance counters (SPE stages only; empty for PPE runs) ------
  /// The machine's counter tree: per-SPE engine buckets (busy /
  /// dma_wait / sync_wait / idle ticks -- they exactly partition
  /// run_ticks per SPE), SPU-pipeline and MFC counters under "spe<N>",
  /// a "spe_total" hierarchical aggregate, and the shared MIC / EIB /
  /// dispatch units.
  sim::CounterSet counters;
  /// Utilization-over-time series (empty unless a
  /// sim::TimeSlicedProfiler was attached via CellSweepConfig).
  sim::Profile timeseries;
  /// Fault-injection summary (enabled only when a plan was armed).
  FaultReport faults;
  // --- functional results (kFunctional only) ---------------------------
  std::optional<sweep::SolveResult> solve;
  double absorption = 0;
  sweep::LeakageTally leakage;
};

/// Timing engine: consumes DiagonalWork events in sweep order.
class TimingEngine {
 public:
  TimingEngine(const CellSweepConfig& cfg, const sweep::Grid& grid, int nm);
  ~TimingEngine();

  /// Feed one diagonal of independent I-lines.
  void on_diagonal(const sweep::DiagonalWork& w);

  /// Drains outstanding work and the final iteration's source pass;
  /// returns the completed report (timing fields only). Under
  /// CELLSWEEP_HAZARD_CHECK (and only with the engine-owned checker)
  /// throws analysis::HazardError when protocol violations were found.
  RunReport finish();

  /// Current completion horizon (simulated seconds); monotone across
  /// diagonals. Exposed for tests and pipeline diagnostics.
  double horizon_seconds() const noexcept {
    return sim::seconds_from_ticks(next_barrier_);
  }
  sim::Tick horizon() const noexcept { return next_barrier_; }

  /// External gate: no work fed after this call may start before
  /// @p at. Models a blocking boundary receive (the RECV of Figure 2)
  /// when this chip is one rank of a process-level decomposition.
  void gate(sim::Tick at) {
    next_barrier_ = std::max(next_barrier_, at);
    reports_horizon_ = std::max(reports_horizon_, at);
  }

  const cell::CellProcessor& machine() const noexcept { return machine_; }
  KernelCostModel& kernels() noexcept { return kernels_; }

 private:
  struct SpeClock {
    sim::Tick request_at = 0;   ///< ready to ask for the next chunk
    sim::Tick compute_free = 0; ///< SPU free for the next kernel
    sim::Tick put_done = 0;     ///< last writeback completed
    /// Chunks ever assigned to this SPE; chunk k streams through LS
    /// buffer k % buffers (the double-buffer rotation).
    std::uint64_t served = 0;
    // Stall accounting (ticks; observation only, never read back into
    // the clocks above).
    sim::Tick busy = 0;
    sim::Tick dma_wait = 0;
    sim::Tick sync_wait = 0;
    /// Per-kernel pipeline schedules folded over the run (the Section
    /// 5.1 counters, published into the "spe<N>/pipeline" counter set).
    cell::PipelineStats pipe;
  };

  void iteration_boundary();
  /// Next live SPE in cyclic order. Detects SPEs that reach their
  /// fail-after-chunks threshold: the victim is declared dead, its
  /// chunk is re-dispatched to the next survivor, and @p extra
  /// accumulates the PPE watchdog detection delay the re-dispatched
  /// chunk pays. Throws sim::FaultError when no SPE is left.
  int pick_spe(sim::Tick& extra);
  /// Splits the SPU wait [base, max(dma_ready, sync_ready)) between the
  /// DMA-wait and sync-wait buckets of @p spe and emits wait spans.
  void account_wait(int spe_index, sim::Tick base, sim::Tick dma_ready,
                    sim::Tick sync_ready);
  /// Emits issue/queue/transfer spans for one DMA command.
  void trace_dma(int spe_index, const char* name, sim::Tick submitted,
                 const cell::DmaCompletion& c, bool to_memory);

  CellSweepConfig cfg_;
  sweep::Grid grid_;
  int nm_;
  cell::CellProcessor machine_;
  KernelCostModel kernels_;

  std::vector<SpeClock> spes_;
  sim::Tick barrier_ = 0;       ///< hard barrier (block boundary)
  sim::Tick next_barrier_ = 0;  ///< completion horizon of all work so far
  sim::Tick reports_horizon_ = 0;  ///< when the PPE has seen all reports
  int rr_spe_ = 0;              ///< cyclic SPE assignment cursor
  bool saw_first_diagonal_ = false;
  /// Completion time of each chunk of the previous diagonal in the
  /// current block; a chunk of this diagonal depends only on its
  /// neighbor chunks upstream (per-line wavefront dependency).
  std::vector<sim::Tick> prev_diag_completion_;
  std::vector<sim::Tick> prev_diag_compute_end_;
  long long current_block_key_ = -1;
  std::size_t ls_high_water_ = 0;
  /// LS offset of each chunk staging buffer (identical on every SPE;
  /// the hazard annotations use them to name DMA targets).
  std::vector<std::size_t> buffer_offsets_;
  /// Global chunk sequence: the token binding a chunk's grant, DMAs,
  /// kernel and report together for the protocol checker.
  std::uint64_t token_seq_ = 0;

  // Protocol observability (null observer: every emit is one branch).
  cell::MachineObserver* observer_ = nullptr;
  /// CELLSWEEP_HAZARD_CHECK strict mode: engine-owned checker + sink
  /// (finish() turns its errors into analysis::HazardError).
  std::unique_ptr<analysis::Diagnostics> owned_diags_;
  std::unique_ptr<analysis::HazardChecker> owned_checker_;

  // Observability (null sink: tracks stay empty, every emit is one
  // branch).
  sim::TraceSink* sink_ = nullptr;
  int ppe_track_ = 0;
  int eib_track_ = 0;
  int mic_track_ = 0;
  std::vector<int> spe_tracks_;

  std::uint64_t flops_ = 0;
  std::uint64_t cell_solves_ = 0;
  std::uint64_t chunks_ = 0;
  double total_compute_cycles_ = 0;

  // Fault injection and graceful degradation (inert when the plan is
  // disabled: alive_ stays all-true and pick_spe reduces to the plain
  // cyclic cursor).
  sim::FaultPlan fault_plan_;
  std::vector<char> alive_;   ///< one flag per SPE
  std::vector<char> failed_;  ///< died mid-sweep (subset of !alive_)
  int spes_disabled_ = 0;
  int spes_failed_ = 0;
  std::uint64_t redispatched_chunks_ = 0;
  sim::Tick failover_ticks_ = 0;
};

/// End-to-end runner for one problem + configuration.
class CellSweep3D {
 public:
  /// Defaults reproduce the paper's deck: S6 quadrature, P2 scattering
  /// truncated to sweep::kBenchmarkMoments flux moments.
  CellSweep3D(const sweep::Problem& problem, const CellSweepConfig& cfg,
              int sn_order = 6, int l_max = 2,
              int nm_cap = sweep::kBenchmarkMoments);

  /// Runs the configured stage and returns the report. kFunctional
  /// additionally solves the physics and fills the solve fields.
  RunReport run(RunMode mode = RunMode::kTraceDriven);

  const CellSweepConfig& config() const noexcept { return cfg_; }

 private:
  RunReport run_on_ppe(RunMode mode);
  RunReport run_on_spes(RunMode mode);

  template <typename Real>
  void run_functional(RunReport& report, const sweep::DiagonalObserver& obs);

  const sweep::Problem* problem_;
  CellSweepConfig cfg_;
  int sn_order_;
  int l_max_;
  int nm_ = 0;
  int nm_cap_ = 0;
};

}  // namespace cellsweep::core
