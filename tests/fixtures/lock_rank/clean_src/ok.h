// Test fixture: a mutex-free source tree, so registry-focused audit
// runs (e.g. the cyclic-registry test) exercise only the registry
// checks.
#pragma once

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
