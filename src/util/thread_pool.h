// Static-partition fork/join executor for the functional sweep.
//
// The work it runs -- the chunks of one JK-diagonal -- is embarrassingly
// parallel with near-uniform cost (every chunk is at most kBundleLines
// I-lines of the same length), so a static contiguous partition of the
// index range is both optimal and, unlike work stealing, leaves the
// mapping of chunk to worker deterministic. Workers are spawned once
// and parked on a condition variable between fork points; the calling
// thread doubles as worker 0, so a pool of size N uses N-1 extra
// threads and size 1 degenerates to an inline loop with no threads and
// no locking at all.
//
// One pool may be shared by several client threads (the solve server
// hands every tenant the same host pool): concurrent parallel_for
// calls serialize on an internal fork mutex instead of corrupting the
// generation/pending handshake. Calls never nest -- a job must not
// call parallel_for on its own pool (it would deadlock on that mutex;
// before the mutex it silently corrupted the handshake).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellsweep::util {

class ThreadPool {
 public:
  /// Spawns @p threads - 1 workers; @p threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers available, including the calling thread.
  int size() const noexcept { return size_; }

  /// Invokes fn(index, worker) for every index in [0, n), blocking
  /// until all calls have returned. Worker w executes the contiguous
  /// slice [w*n/size, (w+1)*n/size); worker 0 is the calling thread.
  /// The first exception thrown by any invocation is rethrown here
  /// (remaining slices still run to completion), and the pool stays
  /// fully usable afterwards: the error slot and the fork handshake
  /// are reset, so the next call on the same pool runs clean. Safe to
  /// call from multiple threads (calls serialize); must not be called
  /// from inside a job running on the same pool.
  void parallel_for(int n, const std::function<void(int index, int worker)>& fn);

 private:
  void worker_loop(int worker);
  void run_slice(int worker) noexcept;

  int size_ = 1;
  std::vector<std::thread> workers_;

  /// Serializes whole fork/join sections; mu_ alone only protects the
  /// shared fields *within* one section.
  std::mutex fork_mu_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per parallel_for; wakes workers
  int pending_ = 0;               // helper workers still running this gen
  int n_ = 0;
  const std::function<void(int, int)>* fn_ = nullptr;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace cellsweep::util
