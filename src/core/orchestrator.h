// CellSweep3D: the paper's five-level parallelization, orchestrated
// over the machine model.
//
// Level 1 (process) stays with src/sweep/mpi_sweeper. Levels 2-5 live
// here: the jkm-diagonal I-lines are farmed to the eight SPEs in
// chunks of four (thread level), using the same ChunkPlan decomposition
// (sweep/plan.h) the functional sweeper executes; each chunk's working
// set streams
// through the local store with single or double buffering (data
// streaming); the chunk kernel is the scalar or the four-logical-thread
// SIMD one (vector + pipeline levels). The TimingEngine walks the same
// DiagonalWork stream the functional sweeper emits and translates each
// diagonal into one core::StreamingPipeline batch: the pipeline owns
// the machine model's clocks -- dispatch-fabric grants, MFC DMA
// gets/puts (individual commands or DMA lists), SPU compute, the wave
// arithmetic and double-buffer rotation -- while this engine supplies
// the Sweep3D specifics: the ChunkPlan decomposition, the per-chunk
// DMA transfer plans and trace-scheduled kernel costs, the per-line
// wavefront dependency policy, the (octant, angle-block, K-block)
// block barriers, and the per-iteration source rebuild pass.
//
// Two run modes produce identical timing (a test asserts it):
//   * kFunctional  -- the physics really runs; the observer feeds the
//     engine (execution-driven). Use for correctness and examples.
//   * kTraceDriven -- only the loop structure is replayed (fast; the
//     benches use it for big sweeps).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cellsim/cell_processor.h"
#include "core/config.h"
#include "core/kernel_timing.h"
#include "core/report.h"
#include "core/streaming_pipeline.h"
#include "core/workload.h"
#include "sim/trace.h"
#include "sweep/sweeper.h"

namespace cellsweep::core {

/// Timing engine: consumes DiagonalWork events in sweep order and
/// re-hosts them on the workload-agnostic StreamingPipeline.
class TimingEngine {
 public:
  TimingEngine(const CellSweepConfig& cfg, const sweep::Grid& grid, int nm);
  ~TimingEngine();

  /// Feed one diagonal of independent I-lines.
  void on_diagonal(const sweep::DiagonalWork& w);

  /// Drains outstanding work and the final iteration's source pass;
  /// returns the completed report (timing fields only). Under
  /// CELLSWEEP_HAZARD_CHECK (and only with the pipeline-owned checker)
  /// throws analysis::HazardError when protocol violations were found.
  RunReport finish() { return pipeline_.finish(); }

  /// Current completion horizon (simulated seconds); monotone across
  /// diagonals. Exposed for tests and pipeline diagnostics.
  double horizon_seconds() const noexcept {
    return pipeline_.horizon_seconds();
  }
  sim::Tick horizon() const noexcept { return pipeline_.horizon(); }

  /// External gate: no work fed after this call may start before
  /// @p at. Models a blocking boundary receive (the RECV of Figure 2)
  /// when this chip is one rank of a process-level decomposition.
  void gate(sim::Tick at) { pipeline_.gate(at); }

  const cell::CellProcessor& machine() const noexcept {
    return pipeline_.machine();
  }
  KernelCostModel& kernels() noexcept { return kernels_; }

 private:
  CellSweepConfig cfg_;
  sweep::Grid grid_;
  int nm_;
  KernelCostModel kernels_;
  StreamingPipeline pipeline_;
  long long current_block_key_ = -1;
};

/// End-to-end runner for one problem + configuration.
class CellSweep3D {
 public:
  /// Defaults reproduce the paper's deck: S6 quadrature, P2 scattering
  /// truncated to sweep::kBenchmarkMoments flux moments.
  CellSweep3D(const sweep::Problem& problem, const CellSweepConfig& cfg,
              int sn_order = 6, int l_max = 2,
              int nm_cap = sweep::kBenchmarkMoments);

  /// Runs the configured stage and returns the report. kFunctional
  /// additionally solves the physics and fills the solve fields.
  RunReport run(RunMode mode = RunMode::kTraceDriven);

  const CellSweepConfig& config() const noexcept { return cfg_; }

 private:
  RunReport run_on_ppe(RunMode mode);
  RunReport run_on_spes(RunMode mode);

  /// The quadrature for this run: cfg_.quadrature when the hint is
  /// present and of the right order, else one built into @p own.
  const sweep::SnQuadrature& quadrature(
      std::optional<sweep::SnQuadrature>& own) const;

  template <typename Real>
  void run_functional(RunReport& report, const sweep::DiagonalObserver& obs);

  const sweep::Problem* problem_;
  CellSweepConfig cfg_;
  int sn_order_;
  int l_max_;
  int nm_ = 0;
  int nm_cap_ = 0;
};

}  // namespace cellsweep::core
