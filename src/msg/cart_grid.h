// 2-D Cartesian process topology, mirroring Sweep3D's decomposition:
// grid cells are distributed over a logical (px x py) array of
// processes; each process owns a 3-D tile that is complete in K
// (paper, Section 3, Figure 1). Neighbors are addressed as the four
// compass directions the sweep() subroutine exchanges with.
#pragma once

#include <stdexcept>

namespace cellsweep::msg {

/// Compass neighbor directions of a process in the 2-D grid. West/east
/// carry I-inflows/outflows, north/south carry J-flows.
enum class Direction { kWest, kEast, kNorth, kSouth };

/// Maps ranks to (px, py) coordinates, row-major: rank = y * px + x.
class CartGrid2D {
 public:
  CartGrid2D(int px, int py) : px_(px), py_(py) {
    if (px < 1 || py < 1)
      throw std::invalid_argument("CartGrid2D: dimensions must be >= 1");
  }

  int px() const noexcept { return px_; }
  int py() const noexcept { return py_; }
  int size() const noexcept { return px_ * py_; }

  int x_of(int rank) const noexcept { return rank % px_; }
  int y_of(int rank) const noexcept { return rank / px_; }
  int rank_of(int x, int y) const noexcept { return y * px_ + x; }

  /// Neighbor rank in @p dir, or -1 at the domain boundary.
  int neighbor(int rank, Direction dir) const {
    const int x = x_of(rank);
    const int y = y_of(rank);
    switch (dir) {
      case Direction::kWest:  return x > 0 ? rank_of(x - 1, y) : -1;
      case Direction::kEast:  return x + 1 < px_ ? rank_of(x + 1, y) : -1;
      case Direction::kNorth: return y > 0 ? rank_of(x, y - 1) : -1;
      case Direction::kSouth: return y + 1 < py_ ? rank_of(x, y + 1) : -1;
    }
    return -1;
  }

  /// Wavefront depth of a process for a sweep entering at corner
  /// (corner_x, corner_y): number of diagonals before the wave reaches
  /// it. Used by tests to verify pipelined-wave timing.
  int wave_depth(int rank, int corner_x, int corner_y) const {
    const int dx = corner_x == 0 ? x_of(rank) : px_ - 1 - x_of(rank);
    const int dy = corner_y == 0 ? y_of(rank) : py_ - 1 - y_of(rank);
    return dx + dy;
  }

 private:
  int px_;
  int py_;
};

}  // namespace cellsweep::msg
