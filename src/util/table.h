// Plain-text table printer. Every bench binary regenerates one of the
// paper's tables or figures as rows on stdout; this formatter keeps
// them uniform and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cellsweep::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cellsweep::util
