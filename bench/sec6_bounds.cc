// Section 6: the traffic / compute lower-bound audit.
//
// Paper: "With a 50-cubed input size, the SPEs transfer 17.6 Gbytes of
// data. Considering that the peak memory bandwidth is 25.6
// Gbytes/second, this sets a lower bound of 0.7 seconds ... By
// profiling the amount of computation performed by the SPUs we obtain a
// similar lower bound, 0.68 seconds. The gap between this bound and the
// actual run-time of 1.3 seconds is mostly caused by the communication
// and synchronization protocols."
#include "bench/bench_common.h"

#include "perfmodel/bounds.h"

int main(int argc, char** argv) {
  using namespace cellsweep;
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  bench::print_header("Section 6: roofline bounds vs actual run time (" +
                      std::to_string(opt.cube) + "^3)");

  const core::RunReport r =
      bench::run_stage(core::OptimizationStage::kSpeLsPoke, opt.cube);

  util::TextTable table({"quantity", "paper", "measured"});
  table.add_row({"DMA traffic", "17.6 GB",
                 util::format_bytes(r.traffic_bytes)});
  table.add_row({"memory-bandwidth bound", "0.70 s",
                 bench::fmt("%.2f s", r.memory_bound_s)});
  table.add_row({"SPU-compute bound", "0.68 s",
                 bench::fmt("%.2f s", r.compute_bound_s)});
  table.add_row({"actual run time", "1.33 s",
                 bench::fmt("%.2f s", r.seconds)});
  table.add_row({"gap over bound", "~0.6 s",
                 bench::fmt("%.2f s",
                            r.seconds - std::max(r.memory_bound_s,
                                                 r.compute_bound_s))});
  table.print(std::cout);

  std::cout << "\nBreakdown of the gap (simulated): mean SPE compute busy "
            << bench::fmt("%.2f s", r.compute_busy_s) << ", MIC busy "
            << bench::fmt("%.2f s", r.mic_busy_s) << ", "
            << bench::fmt("%.0f", r.dispatch_busy_grants)
            << " dispatch grants through the PPE.\n"
            << "DMA commands: " << r.dma_commands << " ("
            << r.dma_transfers << " transfers)\n";
  if (!opt.json_dir.empty() &&
      !bench::emit_bench_json(opt.json_dir, "sec6", opt.cube,
                              "Cell (+ direct LS-poke sync)", r))
    return 1;
  return 0;
}
