#include "sweep/plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sweep/kernel_simd.h"

namespace cellsweep::sweep {

ChunkPlan::ChunkPlan(const SweepConfig& cfg, int jt, int it, int diagonal,
                     bool fixup)
    : diagonal_(diagonal), it_(it), fixup_(fixup), kernel_(cfg.kernel) {
  lines_.reserve(static_cast<std::size_t>(cfg.mmi) * cfg.mk);
  for (int mh = 0; mh < cfg.mmi; ++mh)
    for (int kk = 0; kk < cfg.mk; ++kk) {
      const int jj = diagonal - kk - mh;
      if (jj >= 0 && jj < jt) lines_.push_back(LineCoord{mh, kk, jj});
    }

  const int n = nlines();
  chunks_.reserve(chunk_count(n));
  for (int first = 0; first < n; first += kBundleLines) {
    chunks_.push_back(ChunkDesc{static_cast<int>(chunks_.size()), first,
                                std::min(kBundleLines, n - first)});
  }
}

ChunkPlan::ChunkPlan(const SweepConfig& cfg, int jt, const DiagonalWork& w)
    : ChunkPlan(cfg, jt, w.it, w.diagonal, w.fixup) {
  kernel_ = w.kernel;
  if (nlines() != w.nlines)
    throw std::logic_error(
        "ChunkPlan: DiagonalWork reports " + std::to_string(w.nlines) +
        " lines but the block geometry yields " + std::to_string(nlines()) +
        " (diagonal " + std::to_string(w.diagonal) + ", mmi=" +
        std::to_string(cfg.mmi) + ", mk=" + std::to_string(cfg.mk) +
        ", jt=" + std::to_string(jt) + ")");
}

int ChunkPlan::lines_on_diagonal(const SweepConfig& cfg, int jt,
                                 int diagonal) noexcept {
  int n = 0;
  for (int mh = 0; mh < cfg.mmi; ++mh) {
    // kk runs over [0, mk) with 0 <= diagonal - kk - mh < jt.
    const int lo = std::max(0, diagonal - mh - (jt - 1));
    const int hi = std::min(cfg.mk - 1, diagonal - mh);
    n += std::max(0, hi - lo + 1);
  }
  return n;
}

int ChunkPlan::chunk_count(int nlines) noexcept {
  return (nlines + kBundleLines - 1) / kBundleLines;
}

int ChunkPlan::chunk_width(int nlines, int chunk) noexcept {
  return std::min(kBundleLines, nlines - chunk * kBundleLines);
}

}  // namespace cellsweep::sweep
