#include "core/cluster.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "msg/cart_grid.h"
#include "sweep/plan.h"
#include "sweep/quadrature.h"

namespace cellsweep::core {
namespace {

/// Feeds every diagonal of one (octant, angle-block, K-block) block
/// into an engine.
void feed_block(TimingEngine& engine, const sweep::Grid& tile,
                const sweep::SweepConfig& cfg, int iq, int ab, int kb,
                bool fixup) {
  const int ndiags = sweep::ChunkPlan::diagonals_per_block(cfg, tile.jt);
  for (int d = 0; d < ndiags; ++d) {
    const int nlines = sweep::ChunkPlan::lines_on_diagonal(cfg, tile.jt, d);
    if (nlines > 0)
      engine.on_diagonal(sweep::DiagonalWork{iq, ab, kb, d, nlines, tile.it,
                                             fixup, cfg.kernel});
  }
}

/// Runs one chip in isolation over the whole iteration schedule.
double isolated_seconds(const sweep::Grid& grid, const CellSweepConfig& cfg,
                        int nm, int angles) {
  TimingEngine engine(cfg, grid, nm);
  for (int iter = 0; iter < cfg.sweep.max_iterations; ++iter) {
    const bool fixup = iter >= cfg.sweep.fixup_from_iteration;
    const int nkb = grid.kt / cfg.sweep.mk;
    const int nab = angles / cfg.sweep.mmi;
    for (int iq = 0; iq < 8; ++iq)
      for (int ab = 0; ab < nab; ++ab)
        for (int kb = 0; kb < nkb; ++kb)
          feed_block(engine, grid, cfg.sweep, iq, ab, kb, fixup);
  }
  return engine.finish().seconds;
}

}  // namespace

ClusterReport simulate_cluster(const sweep::Grid& global,
                               const ClusterConfig& cluster) {
  const int px = cluster.px;
  const int py = cluster.py;
  if (px < 1 || py < 1)
    throw std::invalid_argument("simulate_cluster: grid must be >= 1x1");
  if (global.it % px != 0 || global.jt % py != 0)
    throw std::invalid_argument("simulate_cluster: px|it and py|jt required");

  const sweep::Grid tile{global.it / px, global.jt / py, global.kt,
                         global.dx, global.dy, global.dz};
  CellSweepConfig chip = cluster.chip;
  chip.sweep.kernel = chip.kernel;
  const sweep::SnQuadrature quad(6);
  const int angles = quad.angles_per_octant();
  chip.sweep.validate(tile.kt, angles);

  const int ranks = px * py;
  const msg::CartGrid2D cart(px, py);
  std::vector<std::unique_ptr<TimingEngine>> engines;
  engines.reserve(ranks);
  for (int r = 0; r < ranks; ++r)
    engines.push_back(std::make_unique<TimingEngine>(chip, tile, cluster.nm));

  // Wavefront rank order per octant: sorted by pipeline depth from the
  // octant's entry corner.
  const auto octants = sweep::all_octants();
  std::array<std::vector<int>, 8> order;
  for (int iq = 0; iq < 8; ++iq) {
    order[iq].resize(ranks);
    std::iota(order[iq].begin(), order[iq].end(), 0);
    const int cx = octants[iq].sx > 0 ? 0 : 1;
    const int cy = octants[iq].sy > 0 ? 0 : 1;
    std::stable_sort(order[iq].begin(), order[iq].end(), [&](int a, int b) {
      return cart.wave_depth(a, cx, cy) < cart.wave_depth(b, cx, cy);
    });
  }

  const std::size_t rb = chip.precision == Precision::kDouble ? 8 : 4;
  const double bytes_i =
      static_cast<double>(chip.sweep.mmi) * chip.sweep.mk * tile.jt * rb;
  const double bytes_j =
      static_cast<double>(chip.sweep.mmi) * chip.sweep.mk * tile.it * rb;
  const sim::Tick latency = sim::ticks_from_seconds(cluster.link_latency_s);
  auto link_cost = [&](double bytes) {
    return latency + sim::ticks_for_bytes(bytes, cluster.link_bandwidth);
  };

  ClusterReport report;
  const int nkb = tile.kt / chip.sweep.mk;
  const int nab = angles / chip.sweep.mmi;
  std::vector<sim::Tick> arrival(ranks);

  for (int iter = 0; iter < chip.sweep.max_iterations; ++iter) {
    const bool fixup = iter >= chip.sweep.fixup_from_iteration;
    for (int iq = 0; iq < 8; ++iq) {
      const sweep::Octant oct = octants[iq];
      const msg::Direction down_i =
          oct.sx > 0 ? msg::Direction::kEast : msg::Direction::kWest;
      const msg::Direction down_j =
          oct.sy > 0 ? msg::Direction::kSouth : msg::Direction::kNorth;
      for (int ab = 0; ab < nab; ++ab) {
        for (int kb = 0; kb < nkb; ++kb) {
          // Messages only flow downstream within one block key, so a
          // per-key arrival scratch suffices.
          std::fill(arrival.begin(), arrival.end(), sim::Tick{0});
          for (int r : order[iq]) {
            TimingEngine& e = *engines[r];
            if (arrival[r] > 0) e.gate(arrival[r]);  // Figure 2's RECVs
            feed_block(e, tile, chip.sweep, iq, ab, kb, fixup);
            const sim::Tick done = e.horizon();
            // SENDs to the downstream wavefront neighbors.
            if (const int east = cart.neighbor(r, down_i); east >= 0) {
              arrival[east] =
                  std::max(arrival[east], done + link_cost(bytes_i));
              ++report.messages;
              report.message_bytes += bytes_i;
            }
            if (const int south = cart.neighbor(r, down_j); south >= 0) {
              arrival[south] =
                  std::max(arrival[south], done + link_cost(bytes_j));
              ++report.messages;
              report.message_bytes += bytes_j;
            }
          }
        }
      }
    }
  }

  report.rank_seconds.resize(ranks);
  for (int r = 0; r < ranks; ++r) {
    report.rank_seconds[r] = engines[r]->finish().seconds;
    report.seconds = std::max(report.seconds, report.rank_seconds[r]);
  }
  report.tile_seconds = isolated_seconds(tile, chip, cluster.nm, angles);
  report.wavefront_efficiency =
      report.seconds > 0 ? report.tile_seconds / report.seconds : 0.0;
  // Single chip on the global cube (skipped if the tile cannot fit the
  // local store at that width).
  try {
    report.speedup_vs_one_chip =
        isolated_seconds(global, chip, cluster.nm, angles) / report.seconds;
  } catch (const cell::LocalStoreOverflow&) {
    report.speedup_vs_one_chip = 0.0;
  }
  return report;
}

}  // namespace cellsweep::core
