#include "sweep/problem.h"

#include <algorithm>
#include <stdexcept>

namespace cellsweep::sweep {

Problem::Problem(Grid grid, std::vector<Material> materials,
                 std::vector<std::uint8_t> cell_material)
    : grid_(grid),
      materials_(std::move(materials)),
      cell_material_(std::move(cell_material)) {
  grid_.validate();
  if (materials_.empty())
    throw std::invalid_argument("Problem: need at least one material");
  if (cell_material_.size() != static_cast<std::size_t>(grid_.cells()))
    throw std::invalid_argument("Problem: cell_material size mismatch");
  for (auto m : cell_material_)
    if (m >= materials_.size())
      throw std::invalid_argument("Problem: cell references unknown material");
  l_max_ = 0;
  for (const auto& mat : materials_) {
    if (mat.sigma_t <= 0.0)
      throw std::invalid_argument("Problem: sigma_t must be positive");
    if (mat.sigma_s.empty())
      throw std::invalid_argument("Problem: need at least sigma_s0");
    l_max_ = std::max(l_max_, static_cast<int>(mat.sigma_s.size()) - 1);
  }
}

double Problem::max_scattering_ratio() const noexcept {
  double c = 0.0;
  for (const auto& m : materials_) c = std::max(c, m.scattering_ratio());
  return c;
}

double Problem::total_external_source() const noexcept {
  double total = 0.0;
  for (int k = 0; k < grid_.kt; ++k)
    for (int j = 0; j < grid_.jt; ++j)
      for (int i = 0; i < grid_.it; ++i)
        total += material_of(i, j, k).q_ext;
  return total * grid_.cell_volume();
}

Problem Problem::benchmark_cube(int n, int l_max) {
  Grid grid = Grid::cube(n);
  Material mat;
  mat.name = "benchmark";
  mat.sigma_t = 1.0;
  // Anisotropic P2 scattering with ratio 0.5: representative of the
  // ASCI Sweep3D deck and comfortably convergent.
  mat.sigma_s.assign(static_cast<std::size_t>(l_max) + 1, 0.0);
  mat.sigma_s[0] = 0.5;
  if (l_max >= 1) mat.sigma_s[1] = 0.2;
  if (l_max >= 2) mat.sigma_s[2] = 0.05;
  mat.q_ext = 1.0;
  return Problem(grid, {mat},
                 std::vector<std::uint8_t>(grid.cells(), 0));
}

Problem Problem::shield(int n) {
  Grid grid = Grid::cube(n, /*edge_length=*/4.0);
  Material source{"source", 0.8, {0.3, 0.1}, 10.0};
  Material air{"air", 0.05, {0.04, 0.01}, 0.0};
  // Optically thick pure absorber: diamond difference produces negative
  // fluxes here, so the fixup path really runs.
  Material shield{"shield", 8.0, {0.4, 0.0}, 0.0};

  std::vector<std::uint8_t> cells(grid.cells(), 1);
  const int src_extent = std::max(1, n / 5);
  const int slab_lo = 2 * n / 5;
  const int slab_hi = 3 * n / 5;
  for (int k = 0; k < grid.kt; ++k)
    for (int j = 0; j < grid.jt; ++j)
      for (int i = 0; i < grid.it; ++i) {
        const auto idx = grid.index(i, j, k);
        if (i < src_extent && j < src_extent && k < src_extent)
          cells[idx] = 0;
        else if (i >= slab_lo && i < slab_hi)
          cells[idx] = 2;
      }
  return Problem(grid, {source, air, shield}, std::move(cells));
}

Problem Problem::infinite_medium(int n, double sigma_t, double sigma_s0,
                                 double q) {
  Grid grid = Grid::cube(n);
  Material mat{"infinite", sigma_t, {sigma_s0}, q};
  Problem p(grid, {mat}, std::vector<std::uint8_t>(grid.cells(), 0));
  for (int f = 0; f < 6; ++f) p.set_boundary(f, FaceBc::kReflective);
  return p;
}

Problem Problem::reactor(int n) {
  Grid grid = Grid::cube(n, /*edge_length=*/3.0);
  // Near-critical moderator: scattering ratio 0.96 makes source
  // iteration converge slowly, which the transient example exploits.
  Material moderator{"moderator", 2.0, {1.92, 0.5, 0.1}, 0.0};
  Material pin{"fuel-pin", 1.5, {0.9, 0.2, 0.05}, 5.0};

  std::vector<std::uint8_t> cells(grid.cells(), 0);
  const int pin_half = std::max(1, n / 12);
  const int centers[3] = {n / 4, n / 2, 3 * n / 4};
  for (int k = 0; k < grid.kt; ++k)
    for (int j = 0; j < grid.jt; ++j)
      for (int i = 0; i < grid.it; ++i)
        for (int cj : centers)
          for (int ci : centers) {
            if (std::abs(i - ci) <= pin_half && std::abs(j - cj) <= pin_half &&
                k >= n / 6 && k < 5 * n / 6)
              cells[grid.index(i, j, k)] = 1;
          }
  return Problem(grid, {moderator, pin}, std::move(cells));
}

}  // namespace cellsweep::sweep
