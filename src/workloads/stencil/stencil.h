// The even/odd red-black stencil workload: the second client of
// core::StreamingPipeline, modeled on the lattice-QCD-style Cell ports
// (arXiv:0710.2442) whose streaming shape -- block-partitioned grid,
// two-color half-sweeps, face exchanges between neighboring blocks --
// matches Sweep3D's discipline but none of its physics.
//
// The problem: a 7-point red-black Gauss-Seidel relaxation of the
// Poisson equation -6 u = h^2 f on a 3D grid with Dirichlet zero
// boundaries. One half-sweep updates every cell of one color (parity
// of i+j+k) in place from its six opposite-color neighbors:
//
//   u[c] = (sum of 6 neighbors + h^2 f[c]) / 6
//
// Same-color cells never read each other, so all blocks of one color
// phase are independent -- one StreamingPipeline batch -- while a block
// of the next phase depends on itself and its six face neighbors from
// the previous phase (the dependency policy). Unlike the sweep's
// wavefront blocks there are no hard barriers: the two phases of every
// iteration free-run through the pipeline on dependencies alone.
//
// Three layers:
//   * StencilState  -- functional host reference (double precision,
//     bitwise deterministic for any thread count: a color update reads
//     only the frozen opposite color).
//   * plan_block / block_cost -- the workload policies: the DMA
//     transfer plan of one block and the priced kernel of one
//     block-color phase (used by the runner AND the spec linter).
//   * CellStencil   -- the machine runner: feeds per-color batches of
//     StreamChunkSpecs to a StreamingPipeline under the standard
//     CellSweepConfig machine switches (sync protocol, buffers, DMA
//     lists, faults, observability).
#pragma once

#include <cstdint>
#include <vector>

#include "cellsim/spec.h"
#include "cellsim/spu_pipeline.h"
#include "core/config.h"
#include "core/report.h"
#include "core/workload.h"
#include "workloads/stencil/spec.h"

namespace cellsweep::util {
class ThreadPool;
}

namespace cellsweep::stencil {

/// Functional reference solver (host, double precision).
class StencilState {
 public:
  explicit StencilState(const StencilSpec& spec);

  /// Runs spec.iterations full sweeps (red then black half-sweeps) on
  /// @p threads host threads. Bitwise deterministic for any count.
  void run(int threads = 1);
  /// Same, on an externally shared pool (the solve server's) instead of
  /// an owned one. Bitwise identical to run(pool.size()).
  void run(util::ThreadPool& pool);

  /// One half-sweep of @p color (0 = even parity of i+j+k, 1 = odd).
  void half_sweep(int color, util::ThreadPool& pool);

  /// Deterministic sum of the field in index order.
  double checksum() const;
  /// Max-norm residual |sum of neighbors + h^2 f - 6 u|.
  double residual() const;
  /// Cell updates performed so far.
  std::uint64_t updates() const noexcept { return updates_; }
  const std::vector<double>& field() const noexcept { return u_; }

 private:
  StencilSpec spec_;
  std::vector<double> u_;
  std::uint64_t updates_ = 0;
};

/// Cell updates of one color phase inside the block at block
/// coordinates (bi, bj, bk) -- the count of cells whose i+j+k parity
/// is @p color.
std::uint64_t block_color_updates(const StencilSpec& spec, int bi, int bj,
                                  int bk, int color);

/// DMA transfer plan of one block: u and f stream as i-pencil rows
/// (bulk; no inter-block dependency), the j/k neighbor faces as rows
/// and the i faces as packed scalars (face; produced by the previous
/// color phase), and the updated u block writes back.
core::TransferPlan plan_block(const StencilSpec& spec,
                              std::size_t real_bytes, bool aligned_rows);

/// Priced kernel of one block-color phase on the SPU pipeline model.
/// DP updates pay the partially pipelined DP issue block
/// (chip.dp_issue_block_cycles); SP is fully pipelined.
struct BlockCost {
  double cycles = 0;
  std::uint64_t updates = 0;
  std::uint64_t flops = 0;
  cell::PipelineStats stats;
};
BlockCost block_cost(const StencilSpec& spec, int bi, int bj, int bk,
                     int color, const cell::CellSpec& chip,
                     core::Precision precision);

/// Everything a stencil run reports: the machine-side RunReport (with
/// cell_solves = cell updates and grind = seconds per update) plus the
/// functional results (kFunctional mode only).
struct StencilReport {
  core::RunReport run;
  double checksum = 0;
  double residual = 0;
  std::uint64_t updates = 0;
};

/// Machine runner: streams the block batches of every (iteration,
/// color) phase through a core::StreamingPipeline.
class CellStencil {
 public:
  CellStencil(const StencilSpec& spec, const core::CellSweepConfig& cfg);

  /// kTraceDriven replays the loop structure only; kFunctional also
  /// solves the physics on @p threads host threads -- or on @p pool
  /// when one is injected (the solve server's shared pool; overrides
  /// threads). Identical timing either way: the machine feed does not
  /// depend on the mode, thread count or pool.
  StencilReport run(core::RunMode mode = core::RunMode::kTraceDriven,
                    int threads = 1, util::ThreadPool* pool = nullptr);

 private:
  StencilSpec spec_;
  core::CellSweepConfig cfg_;
};

}  // namespace cellsweep::stencil
