// Multi-chip wavefront scaling model.
//
// The paper's process-level parallelization (level 1) is the classic
// Sweep3D 2-D decomposition, whose scaling behaviour its references
// [3,5] (Hoisie, Lubeck, Wasserman et al.) model analytically: sweeps
// pipeline blocks of MK K-planes x MMI angles through the px x py
// process grid, so a processor at pipeline depth d starts working d
// block-steps after the corner, and each block boundary costs one
// east + south message. This header implements that model so the
// per-chip Cell simulation composes into cluster estimates -- the
// regime where the paper says small MMI (1 or 3) matters.
#pragma once

#include <cstddef>

namespace cellsweep::perf {

/// Inputs of one cluster estimate.
struct WavefrontParams {
  int px = 1;               ///< process-grid width
  int py = 1;               ///< process-grid height
  int blocks_per_octant = 1;  ///< (kt/mk) * (mm/mmi) pipeline stages
  double tile_time_s = 0;   ///< one chip's compute time for its tile
                            ///< (all 8 octant sweeps, all iterations)
  double block_comm_bytes = 0;  ///< bytes sent downstream per block (E+S)
  double link_bandwidth = 1e9;  ///< node-to-node bytes/s
  double link_latency_s = 10e-6;  ///< per-message latency
};

/// Outputs.
struct WavefrontEstimate {
  int pipeline_depth = 0;      ///< diagonals before the far corner starts
  double block_time_s = 0;     ///< per-block compute time on one chip
  double block_comm_s = 0;     ///< per-block communication time
  double fill_efficiency = 0;  ///< B / (B + D) pipeline utilization
  double total_s = 0;          ///< estimated cluster sweep time
  double parallel_efficiency = 0;  ///< vs px*py ideal
};

/// Evaluates the pipelined-wavefront model. The per-octant time is
/// (B + D) block-steps of max(compute, comm) overlap plus the
/// non-overlapped remainder; octants are processed sequentially, as in
/// sweep().
WavefrontEstimate estimate_wavefront(const WavefrontParams& p);

/// Searches blocks_per_octant over the divisor-feasible range
/// [1, max_blocks] for the fastest configuration -- the MK/MMI
/// granularity trade-off (finer blocks fill the pipeline sooner but pay
/// more per-message overhead).
WavefrontEstimate best_blocking(WavefrontParams p, int max_blocks);

}  // namespace cellsweep::perf
