// Fixed log-spaced latency histogram for host-side telemetry.
//
// The server telemetry layer (DESIGN.md section 2i) wants per-tenant
// latency percentiles that are cheap to record from many threads,
// mergeable across workers without loss, and deterministic: the same
// multiset of samples must produce the same bins, counts and
// percentiles no matter how the samples were partitioned across
// accumulators (the histogram analogue of the fixed-order fold the
// parallel sweep uses). Log-spaced bins give constant relative error
// across the microsecond-to-hours range one bin layout has to cover --
// queue waits and service times span six orders of magnitude between a
// tiny8 smoke deck and a paper-size backlog.
//
// Bin layout: `bins_per_decade` bins per power of ten between `lo` and
// `hi`, plus an underflow bin (< lo) and an overflow bin (>= hi). Bin
// edges are precomputed once in the constructor, so add() is a binary
// search over immutable doubles and two identically-shaped histograms
// always agree bin for bin. merge() is exact integer addition of
// counts, hence associative and commutative; the tracked min/max/sum
// keep exact extrema and a deterministic total for any fixed merge
// order.
//
// Value-semantic and unsynchronized: share one instance across threads
// only under an external lock (core::MetricsRegistry does), or give
// each worker its own and merge.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace cellsweep::util {

class Histogram {
 public:
  /// Default layout for host latencies in seconds: 1 us .. 10 ks at 5
  /// bins per decade (50 bins + under/overflow), ~58% bin width -- well
  /// inside the useful accuracy for p50/p95/p99 reporting.
  Histogram() : Histogram(1e-6, 1e4, 5) {}

  /// @p bins_per_decade log-spaced bins per decade spanning [@p lo,
  /// @p hi). Requires 0 < lo < hi and bins_per_decade >= 1; hi/lo is
  /// rounded up to whole decades.
  Histogram(double lo, double hi, int bins_per_decade) {
    if (!(lo > 0.0) || !(hi > lo) || bins_per_decade < 1)
      throw std::invalid_argument(
          "Histogram: need 0 < lo < hi and bins_per_decade >= 1");
    const int decades =
        static_cast<int>(std::ceil(std::log10(hi / lo) - 1e-12));
    const int bins = decades * bins_per_decade;
    edges_.reserve(static_cast<std::size_t>(bins) + 1);
    // Every edge is computed directly from (lo, i) -- never by repeated
    // multiplication -- so two histograms with the same layout have
    // bit-identical edges regardless of construction history.
    for (int i = 0; i <= bins; ++i)
      edges_.push_back(lo * std::pow(10.0, static_cast<double>(i) /
                                               bins_per_decade));
    counts_.assign(edges_.size() + 1, 0);  // + underflow and overflow
  }

  /// Largest sample count for which percentile() reports exact order
  /// statistics instead of quantized bin edges. Past this the raw
  /// buffer is dropped and reads fall back to the binned estimate.
  static constexpr std::uint64_t kExactSampleLimit = 64;

  /// Records @p v. Non-finite samples count toward the overflow bin
  /// (they are real observations -- a lost sample would make merged and
  /// serial accounting disagree) but never touch min/max/sum; they also
  /// retire the exact small-sample buffer, since an order statistic
  /// over NaN has no defensible ordering.
  void add(double v) noexcept {
    ++total_;
    if (!std::isfinite(v)) {
      ++counts_.back();
      drop_raw();
      return;
    }
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
    counts_[bin_index(v)] += 1;
    if (exact_) {
      if (raw_.size() < kExactSampleLimit)
        raw_.push_back(v);
      else
        drop_raw();
    }
  }

  /// Exact element-wise addition of @p o. Shapes must match (same
  /// edges); associative and commutative on the counts. The exact
  /// small-sample buffers concatenate while the combined count stays
  /// within kExactSampleLimit -- percentile() sorts before reading, so
  /// any partition of the same multiset across accumulators merges to
  /// the same order statistics.
  void merge(const Histogram& o) {
    if (o.edges_ != edges_)
      throw std::invalid_argument("Histogram::merge: bin layouts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    if (exact_ && o.exact_ &&
        raw_.size() + o.raw_.size() <= kExactSampleLimit)
      raw_.insert(raw_.end(), o.raw_.begin(), o.raw_.end());
    else
      drop_raw();
  }

  std::uint64_t count() const noexcept { return total_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_)
                  : std::numeric_limits<double>::quiet_NaN();
  }
  /// Empty-accumulator contract as util::RunningStats: NaN, detectable
  /// with std::isnan, serialized as JSON null.
  double min() const noexcept {
    return total_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return total_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// The value at quantile @p p in [0, 1]: the ceil(p * count)-th
  /// smallest sample, exactly, while count <= kExactSampleLimit and all
  /// samples are finite (so percentile(1.0) == max(), percentile(0.0)
  /// == min(), and tiny benchmarks report real latencies rather than
  /// bin edges -- a serial 8-job p50 used to read 3.98 s where the
  /// exact order statistic was 2.62 s). Beyond the limit: the upper
  /// edge of the bin holding that rank, clamped to the exact observed
  /// extrema. NaN when empty.
  double percentile(double p) const noexcept {
    if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
    const double clamped = std::min(std::max(p, 0.0), 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(clamped * static_cast<double>(total_)));
    rank = std::max<std::uint64_t>(rank, 1);
    if (exact_ && raw_.size() == total_) {
      // Sort on read: add()/merge() stay append-only, and the sorted
      // view depends only on the sample multiset, never on the order
      // the partitions arrived in.
      std::vector<double> sorted(raw_);
      std::sort(sorted.begin(), sorted.end());
      return sorted[static_cast<std::size_t>(rank - 1)];
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= rank)
        return std::min(std::max(upper_edge(i), min_), max_);
    }
    return max_;  // unreachable: the loop covers every sample
  }

  /// True while percentile() reads exact order statistics (count within
  /// kExactSampleLimit, every sample finite, every merge partner exact).
  bool exact() const noexcept { return exact_ && raw_.size() == total_; }

  /// Bins including underflow ([0]) and overflow ([bin_count()-1]).
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  /// Lower edge of bin @p i (-inf for the underflow bin).
  double bin_lower(std::size_t i) const {
    if (i == 0) return -std::numeric_limits<double>::infinity();
    return edges_.at(i - 1);
  }
  /// Upper edge of bin @p i (+inf for the overflow bin).
  double bin_upper(std::size_t i) const {
    if (i + 1 >= counts_.size()) return std::numeric_limits<double>::infinity();
    return edges_.at(i);
  }
  const std::vector<double>& edges() const noexcept { return edges_; }
  bool same_layout(const Histogram& o) const noexcept {
    return edges_ == o.edges_;
  }

 private:
  std::size_t bin_index(double v) const noexcept {
    // counts_[0] is underflow, counts_[1 + k] covers
    // [edges_[k], edges_[k+1]), counts_.back() is overflow (>= last
    // edge).
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
    return static_cast<std::size_t>(it - edges_.begin());
  }
  /// Finite representative for percentile(): the clamp against the
  /// observed extrema keeps the under/overflow bins honest.
  double upper_edge(std::size_t i) const noexcept {
    if (i + 1 >= counts_.size()) return max_;
    return edges_[i];
  }

  void drop_raw() noexcept {
    exact_ = false;
    raw_.clear();
    raw_.shrink_to_fit();
  }

  std::vector<double> edges_;          ///< ascending finite bin edges
  std::vector<std::uint64_t> counts_;  ///< edges_.size() + 1 bins
  std::vector<double> raw_;  ///< verbatim samples while exact_ holds
  bool exact_ = true;        ///< raw_ still mirrors every sample
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cellsweep::util
