// Annotated, rank-checked synchronization primitives.
//
// util::Mutex wraps std::mutex with two layers the raw type cannot
// give us:
//
//   * Clang Thread Safety Analysis capability annotations
//     (util/thread_annotations.h), so GUARDED_BY / REQUIRES contracts
//     over this mutex are compile-checked under -Wthread-safety;
//   * a runtime lock-rank checker: every Mutex is constructed with a
//     rank from util/lock_ranks.h, and a thread may only acquire a
//     mutex whose rank is strictly greater than every rank it already
//     holds. Out-of-order or recursive acquisition reports through
//     util::concurrency_violation (default: abort), making the
//     process-wide lock order a machine-checked invariant instead of a
//     convention -- any would-be deadlock cycle dies at its first
//     inverted edge, deterministically, not just when the scheduler
//     happens to interleave badly.
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex. It deliberately has no predicate overload: write the
//     while (!predicate) cv.wait(mu);
// loop in the calling function, where the analysis can see that the
// predicate reads its GUARDED_BY state under the lock (a lambda
// predicate would be analyzed as a separate, annotation-free function
// and defeat the check).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/concurrency_check.h"
#include "util/thread_annotations.h"

namespace cellsweep::util {

class CAPABILITY("mutex") Mutex {
 public:
  /// @p rank must come from util/lock_ranks.h (the lock_rank_audit
  /// tool enforces this over src/); @p name appears in violation
  /// reports and must outlive the mutex (a string literal).
  explicit Mutex(int rank, const char* name = "mutex") noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE();
  void unlock() RELEASE();
  bool try_lock() TRY_ACQUIRE(true);

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

  /// The wrapped handle, for CondVar only: waiting must release and
  /// reacquire the native mutex without disturbing the rank stack (the
  /// waiter still logically holds the lock).
  std::mutex& native_handle() noexcept { return mu_; }

 private:
  void rank_check_acquire() const;
  void rank_push() const;
  void rank_pop() const;

  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// RAII lock for util::Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). unlock()/lock() allow the
/// drop-the-lock-early pattern; the destructor releases only if held.
/// The shape follows the scoped-capability example in the Clang TSA
/// documentation, which the analysis understands natively.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable over util::Mutex. wait() must be called with
/// @p mu held; it releases the native mutex while blocked and holds it
/// again on return. The rank stack is intentionally left untouched
/// across the wait: the waiting thread acquires nothing while blocked,
/// and on wakeup it holds exactly what it held before.
class CondVar {
 public:
  void wait(Mutex& mu) REQUIRES(mu);
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cellsweep::util
