// Unit tests for the server telemetry primitives: util::Histogram
// (binning, merge algebra, percentile determinism),
// core::MetricsRegistry (snapshot stability, type discipline,
// Prometheus shape) and core::FlightRecorder (ring wraparound, dump
// JSON). The end-to-end wiring through SolveServer is covered by
// solve_server_test.
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/flight_recorder.h"
#include "core/metrics_registry.h"
#include "util/histogram.h"

namespace {

using cellsweep::core::FlightRecorder;
using cellsweep::core::MetricsRegistry;
using cellsweep::core::MetricType;
using cellsweep::util::Histogram;

// ------------------------------------------------------------------
// Histogram
// ------------------------------------------------------------------

TEST(Histogram, EmptyReportsNaN) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));
}

TEST(Histogram, BinEdgesAreHalfOpen) {
  // 1 bin per decade over [1, 100): edges {1, 10, 100}, bins
  // underflow | [1,10) | [10,100) | overflow.
  Histogram h(1.0, 100.0, 1);
  ASSERT_EQ(h.bin_count(), 4u);
  h.add(0.5);    // underflow
  h.add(1.0);    // first finite bin includes its lower edge
  h.add(9.999);  // still the first bin
  h.add(10.0);   // exactly on the edge: belongs to the *next* bin
  h.add(100.0);  // on the last edge: overflow
  h.add(250.0);  // overflow
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_TRUE(std::isinf(h.bin_upper(3)));
  EXPECT_TRUE(std::isinf(h.bin_lower(0)));
}

TEST(Histogram, SmallSamplePercentileIsExactOrderStatistic) {
  Histogram h(1.0, 100.0, 1);
  h.add(2.0);
  h.add(3.0);
  h.add(50.0);
  h.add(60.0);
  // count <= kExactSampleLimit: percentile() reads the raw order
  // statistic, not the upper bin edge (which would be 10.0 for p50).
  ASSERT_TRUE(h.exact());
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 3.0);   // rank 2 of {2,3,50,60}
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 60.0);   // exact max
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);    // rank clamps to 1 -> min
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 50.0);  // rank 3
  // Single sample: every percentile is that sample.
  Histogram one;
  one.add(0.125);
  EXPECT_DOUBLE_EQ(one.percentile(0.01), 0.125);
  EXPECT_DOUBLE_EQ(one.percentile(0.99), 0.125);
}

TEST(Histogram, PercentileFallsBackToBinEdgesPastExactLimit) {
  // Quantization regression pin: the exact window is exactly
  // kExactSampleLimit samples wide. One sample past it, percentile()
  // reverts to the clamped-upper-bin-edge estimate.
  Histogram h(1.0, 100.0, 1);
  for (std::uint64_t i = 0; i < Histogram::kExactSampleLimit; ++i)
    h.add(i % 2 == 0 ? 2.0 : 50.0);  // 32 below 10, 32 in [10,100)
  ASSERT_TRUE(h.exact());
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 2.0);  // rank 32 -> exact
  h.add(3.0);  // 65th sample retires the raw buffer
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), Histogram::kExactSampleLimit + 1);
  // p50 -> rank 33 -> bin [1,10) -> upper edge 10, inside [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);  // still clamps to max
}

TEST(Histogram, NonFiniteSampleRetiresExactMode) {
  // NaN has no rank; the histogram keeps counting it (overflow bin)
  // but stops claiming exact order statistics.
  Histogram h;
  h.add(0.5);
  ASSERT_TRUE(h.exact());
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), 2u);
  // Merging an exact histogram into a retired one stays retired.
  Histogram fine;
  fine.add(0.25);
  h.merge(fine);
  EXPECT_FALSE(h.exact());
  Histogram both = fine;
  both.merge(h);
  EXPECT_FALSE(both.exact());
}

TEST(Histogram, MergeMatchesSerialAccumulationExactly) {
  // Determinism contract: any partition of the samples across
  // accumulators merges to the same bins, count, sum and extrema as
  // serial accumulation.
  const std::vector<double> samples = {1e-7, 3e-4, 0.02, 0.02, 1.5,
                                       7.0,  42.0, 9e3,  2e5,  0.9};
  Histogram serial;
  for (double s : samples) serial.add(s);

  Histogram a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(samples[i]);
  Histogram merged = a;
  merged.merge(b);
  merged.merge(c);

  ASSERT_TRUE(merged.same_layout(serial));
  for (std::size_t i = 0; i < serial.bin_count(); ++i)
    EXPECT_EQ(merged.bin(i), serial.bin(i)) << "bin " << i;
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_DOUBLE_EQ(merged.min(), serial.min());
  EXPECT_DOUBLE_EQ(merged.max(), serial.max());
  EXPECT_DOUBLE_EQ(merged.percentile(0.50), serial.percentile(0.50));
  EXPECT_DOUBLE_EQ(merged.percentile(0.95), serial.percentile(0.95));
  EXPECT_DOUBLE_EQ(merged.percentile(0.99), serial.percentile(0.99));

  // Merge order must not matter either (associativity on counts).
  Histogram other = c;
  other.merge(a);
  other.merge(b);
  for (std::size_t i = 0; i < serial.bin_count(); ++i)
    EXPECT_EQ(other.bin(i), serial.bin(i));
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  Histogram a(1.0, 100.0, 1);
  Histogram b(1.0, 100.0, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, NonFiniteSamplesCountButDontPoisonStats) {
  Histogram h;
  h.add(0.5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
  EXPECT_EQ(h.bin(h.bin_count() - 1), 2u);  // both in overflow
}

// ------------------------------------------------------------------
// MetricsRegistry
// ------------------------------------------------------------------

TEST(MetricsRegistry, SnapshotIsSortedAndStable) {
  MetricsRegistry reg;
  reg.gauge_set("zeta_depth", "", 3.0);
  reg.counter_add("alpha_total", "tenant=\"1\"");
  reg.counter_add("alpha_total", "tenant=\"0\"", 2.0);
  reg.observe("mid_seconds", "", 0.25);

  const MetricsRegistry::Snapshot s1 = reg.snapshot();
  ASSERT_EQ(s1.families.size(), 3u);
  EXPECT_EQ(s1.families[0].name, "alpha_total");
  EXPECT_EQ(s1.families[1].name, "mid_seconds");
  EXPECT_EQ(s1.families[2].name, "zeta_depth");
  // Entries sorted by label within the family.
  ASSERT_EQ(s1.families[0].entries.size(), 2u);
  EXPECT_EQ(s1.families[0].entries[0].label, "tenant=\"0\"");
  EXPECT_DOUBLE_EQ(s1.families[0].entries[0].value, 2.0);
  EXPECT_EQ(s1.families[0].entries[1].label, "tenant=\"1\"");

  // Two snapshots of unchanged state serialize byte-identically, in
  // both exposition formats.
  const MetricsRegistry::Snapshot s2 = reg.snapshot();
  std::ostringstream p1, p2, j1, j2;
  write_prometheus(p1, s1);
  write_prometheus(p2, s2);
  write_snapshot_json(j1, s1);
  write_snapshot_json(j2, s2);
  EXPECT_EQ(p1.str(), p2.str());
  EXPECT_EQ(j1.str(), j2.str());
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter_add("jobs_total", "");
  EXPECT_THROW(reg.gauge_set("jobs_total", "", 1.0), std::logic_error);
  EXPECT_THROW(reg.observe("jobs_total", "", 1.0), std::logic_error);
  // The original entry is untouched by the failed re-registration.
  const MetricsRegistry::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.families.size(), 1u);
  EXPECT_EQ(s.families[0].type, MetricType::kCounter);
  EXPECT_DOUBLE_EQ(s.families[0].entries[0].value, 1.0);
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulativeWithInfBucket) {
  MetricsRegistry reg;
  reg.observe("lat_seconds", "tenant=\"0\"", 0.01);
  reg.observe("lat_seconds", "tenant=\"0\"", 0.02);
  reg.observe("lat_seconds", "tenant=\"0\"", 5.0);
  std::ostringstream os;
  write_prometheus(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{tenant=\"0\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{tenant=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{tenant=\"0\"} "), std::string::npos);

  // Bucket lines are cumulative: parse every bucket value in order and
  // require monotone non-decreasing counts.
  std::istringstream in(text);
  std::string line;
  long long prev = -1;
  int buckets = 0;
  while (std::getline(in, line)) {
    if (line.rfind("lat_seconds_bucket{", 0) != 0) continue;
    const auto sp = line.rfind(' ');
    const long long v = std::stoll(line.substr(sp + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    ++buckets;
  }
  EXPECT_GT(buckets, 2);
}

TEST(MetricsRegistry, SeriesDecimatesAtCap) {
  MetricsRegistry reg;
  const std::size_t cap = MetricsRegistry::kMaxSeriesSamples;
  for (std::size_t i = 0; i < cap + 10; ++i)
    reg.series_sample("depth_series", "", static_cast<double>(i),
                      static_cast<double>(i % 7));
  const MetricsRegistry::Snapshot s = reg.snapshot();
  const MetricsRegistry::Family* fam = s.find("depth_series");
  ASSERT_NE(fam, nullptr);
  ASSERT_EQ(fam->entries.size(), 1u);
  // Bounded, and the survivors keep their original (time, value) pairs.
  EXPECT_LT(fam->entries[0].samples.size(), cap);
  for (const auto& [t, v] : fam->entries[0].samples)
    EXPECT_DOUBLE_EQ(v, static_cast<double>(static_cast<long long>(t) % 7));
}

// ------------------------------------------------------------------
// FlightRecorder
// ------------------------------------------------------------------

TEST(FlightRecorder, KeepsEverythingUntilFull) {
  FlightRecorder rec(8);
  for (int i = 0; i < 5; ++i)
    rec.record(0.1 * i, "admit", i, -1, "");
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(evs[static_cast<size_t>(i)].job_id, i);
}

TEST(FlightRecorder, WrapsOldestFirstAndCountsDropped) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.record(static_cast<double>(i), "e", i, i % 2, "d");
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // The window is the last 4 events, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[static_cast<size_t>(i)].job_id, 6 + i);
    EXPECT_DOUBLE_EQ(evs[static_cast<size_t>(i)].t_s, 6.0 + i);
  }
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(1.0, "a", 1, 0, "");
  rec.record(2.0, "b", 2, 0, "");
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, "b");
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(FlightRecorder, DumpIsValidDeterministicJson) {
  FlightRecorder rec(3);
  rec.record(0.5, "admit", 1, -1, "deck=tiny8");
  rec.record(0.75, "fail", 1, 0, "reason=\"boom\"");
  std::ostringstream d1, d2;
  rec.dump(d1);
  rec.dump(d2);
  EXPECT_EQ(d1.str(), d2.str());
  const std::string text = d1.str();
  EXPECT_NE(text.find("\"schema\": \"cellsweep-flightrec-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"capacity\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"admit\""), std::string::npos);
  // Quotes inside detail strings must arrive escaped.
  EXPECT_NE(text.find("reason=\\\"boom\\\""), std::string::npos);
  // Wrap the ring: the dump must reflect the new window and count.
  rec.record(1.0, "c", 3, 1, "");
  rec.record(1.5, "d", 4, 1, "");
  std::ostringstream d3;
  rec.dump(d3);
  EXPECT_NE(d3.str().find("\"dropped\": 1"), std::string::npos);
  EXPECT_EQ(d3.str().find("\"kind\": \"admit\""), std::string::npos);
}

}  // namespace
