// Tests for the simulated Cell cluster, including the cross-check
// against the analytic wavefront model.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "perfmodel/wavefront.h"

namespace cellsweep::core {
namespace {

ClusterConfig make_cluster(int px, int py, int iters = 2) {
  ClusterConfig c;
  c.px = px;
  c.py = py;
  c.chip = CellSweepConfig::from_stage(OptimizationStage::kSpeLsPoke);
  c.chip.sweep.max_iterations = iters;
  c.chip.sweep.fixup_from_iteration = iters;  // off: deterministic costs
  c.chip.sweep.mk = 5;
  c.chip.sweep.mmi = 3;
  return c;
}

TEST(Cluster, SingleRankMatchesIsolatedChip) {
  const sweep::Grid g = sweep::Grid::cube(20);
  const ClusterReport r = simulate_cluster(g, make_cluster(1, 1));
  EXPECT_DOUBLE_EQ(r.seconds, r.tile_seconds);
  EXPECT_DOUBLE_EQ(r.wavefront_efficiency, 1.0);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_NEAR(r.speedup_vs_one_chip, 1.0, 1e-12);
}

TEST(Cluster, DecompositionSpeedsUpTheGlobalProblem) {
  const sweep::Grid g = sweep::Grid::cube(40);
  const ClusterReport r22 = simulate_cluster(g, make_cluster(2, 2));
  EXPECT_GT(r22.speedup_vs_one_chip, 1.5);  // 4 chips, pipeline losses
  EXPECT_LT(r22.speedup_vs_one_chip, 4.0);
  EXPECT_LT(r22.wavefront_efficiency, 1.0);
  EXPECT_GT(r22.wavefront_efficiency, 0.4);
}

TEST(Cluster, EfficiencyDropsWithGridSize) {
  const sweep::Grid g = sweep::Grid::cube(40);
  const double e2 = simulate_cluster(g, make_cluster(2, 1)).wavefront_efficiency;
  const double e4 = simulate_cluster(g, make_cluster(2, 2)).wavefront_efficiency;
  const double e8 = simulate_cluster(g, make_cluster(4, 2)).wavefront_efficiency;
  EXPECT_GT(e2, e4);
  EXPECT_GT(e4, e8);
}

TEST(Cluster, CornerRanksFinishLast) {
  // The rank farthest from every entry corner cannot finish before the
  // one at a corner of the final octant's wave.
  const sweep::Grid g = sweep::Grid::cube(24);
  ClusterConfig c = make_cluster(2, 2);
  c.chip.sweep.mk = 4;
  const ClusterReport r = simulate_cluster(g, c);
  ASSERT_EQ(r.rank_seconds.size(), 4u);
  const double spread =
      *std::max_element(r.rank_seconds.begin(), r.rank_seconds.end()) -
      *std::min_element(r.rank_seconds.begin(), r.rank_seconds.end());
  EXPECT_GE(spread, 0.0);
  EXPECT_LT(spread / r.seconds, 0.2);  // all ranks near the makespan
}

TEST(Cluster, MessageAccounting) {
  const sweep::Grid g = sweep::Grid::cube(20);
  ClusterConfig c = make_cluster(2, 2, 1);
  const ClusterReport r = simulate_cluster(g, c);
  // Per block key: the 2x2 grid sends 2 I-messages + 2 J-messages.
  const int nab = 6 / c.chip.sweep.mmi;
  const int nkb = 20 / c.chip.sweep.mk;
  EXPECT_EQ(r.messages, static_cast<std::uint64_t>(8 * nab * nkb * 4));
  EXPECT_GT(r.message_bytes, 0.0);
}

TEST(Cluster, SlowLinksHurt) {
  const sweep::Grid g = sweep::Grid::cube(24);
  ClusterConfig fast = make_cluster(2, 2);
  fast.chip.sweep.mk = 4;
  ClusterConfig slow = make_cluster(2, 2);
  slow.chip.sweep.mk = 4;
  slow.link_bandwidth = 5e7;
  slow.link_latency_s = 500e-6;
  EXPECT_GT(simulate_cluster(g, slow).seconds,
            simulate_cluster(g, fast).seconds * 1.05);
}

TEST(Cluster, FinerBlocksFillThePipelineBetter) {
  // On a deep process grid, smaller MK x MMI blocks reach the far
  // corner sooner: higher wavefront efficiency (relative to each
  // config's own per-tile time) -- the paper's reason for MMI = 1 or 3
  // at scale.
  const sweep::Grid g = sweep::Grid::cube(32);
  ClusterConfig coarse = make_cluster(4, 4);
  coarse.chip.sweep.mk = 8;
  coarse.chip.sweep.mmi = 6;
  ClusterConfig fine = make_cluster(4, 4);
  fine.chip.sweep.mk = 4;
  fine.chip.sweep.mmi = 3;
  EXPECT_GT(simulate_cluster(g, fine).wavefront_efficiency,
            simulate_cluster(g, coarse).wavefront_efficiency);
}

TEST(Cluster, AgreesWithAnalyticModelInShape) {
  const sweep::Grid g = sweep::Grid::cube(40);
  ClusterConfig c = make_cluster(4, 4);
  c.chip.sweep.mk = 5;
  const ClusterReport sim_r = simulate_cluster(g, c);

  perf::WavefrontParams wp;
  wp.px = wp.py = 4;
  wp.blocks_per_octant = (g.kt / c.chip.sweep.mk) * (6 / c.chip.sweep.mmi);
  wp.tile_time_s = sim_r.tile_seconds;
  wp.block_comm_bytes =
      8.0 * c.chip.sweep.mmi * c.chip.sweep.mk * (10 + 10);
  wp.link_bandwidth = c.link_bandwidth;
  wp.link_latency_s = c.link_latency_s;
  const perf::WavefrontEstimate analytic = perf::estimate_wavefront(wp);

  // The two models must agree on the efficiency regime (within ~25%):
  // the simulation has per-diagonal effects the analytic model folds
  // into one number.
  EXPECT_NEAR(sim_r.seconds / analytic.total_s, 1.0, 0.25);
}

TEST(Cluster, Deterministic) {
  const sweep::Grid g = sweep::Grid::cube(20);
  const ClusterReport a = simulate_cluster(g, make_cluster(2, 2));
  const ClusterReport b = simulate_cluster(g, make_cluster(2, 2));
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Cluster, Validation) {
  const sweep::Grid g = sweep::Grid::cube(20);
  EXPECT_THROW(simulate_cluster(g, make_cluster(0, 2)),
               std::invalid_argument);
  EXPECT_THROW(simulate_cluster(g, make_cluster(3, 1)),
               std::invalid_argument);  // 3 does not divide 20
}

}  // namespace
}  // namespace cellsweep::core
