// Tests for the hardware-counter model: CounterSet semantics, the
// time-sliced profiler's binning and fold, the zero-perturbation
// contract (profiler attached => bit-identical timing), the exact
// per-SPE time partition, cross-run / cross-thread determinism and the
// metrics-JSON v2 surfacing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/orchestrator.h"
#include "sim/counters.h"
#include "util/json.h"

namespace cellsweep {
namespace {

// ---------------------------------------------------------------------
// CounterSet

TEST(CounterSet, SetAddValueHas) {
  sim::CounterSet c("unit");
  EXPECT_EQ(c.name(), "unit");
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.has("x"));
  EXPECT_EQ(c.value("x"), 0.0);

  c.set("x", 3.0);
  EXPECT_TRUE(c.has("x"));
  EXPECT_EQ(c.value("x"), 3.0);
  c.add("x", 2.0);
  EXPECT_EQ(c.value("x"), 5.0);
  c.add("y", 7.0);  // created at zero, then incremented
  EXPECT_EQ(c.value("y"), 7.0);
  EXPECT_FALSE(c.empty());
}

TEST(CounterSet, InsertionOrderPreserved) {
  sim::CounterSet c("unit");
  c.set("b", 1);
  c.set("a", 2);
  c.set("c", 3);
  c.set("a", 4);  // update does not reorder
  std::vector<std::string> names;
  for (const auto& [k, v] : c.values()) names.push_back(k);
  EXPECT_EQ(names, (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(c.value("a"), 4.0);

  c.child("z");
  c.child("m");
  c.child("z");  // existing child, no duplicate
  ASSERT_EQ(c.children().size(), 2u);
  EXPECT_EQ(c.children()[0].name(), "z");
  EXPECT_EQ(c.children()[1].name(), "m");
  EXPECT_NE(c.find_child("m"), nullptr);
  EXPECT_EQ(c.find_child("missing"), nullptr);
}

TEST(CounterSet, MergeIsRecursiveAddition) {
  sim::CounterSet a("total");
  a.set("n", 1);
  a.child("sub").set("k", 10);

  sim::CounterSet b("spe1");
  b.set("n", 2);
  b.set("m", 5);
  b.child("sub").set("k", 30);
  b.child("other").set("q", 1);

  a.merge(b);
  EXPECT_EQ(a.value("n"), 3.0);
  EXPECT_EQ(a.value("m"), 5.0);
  EXPECT_EQ(a.find_child("sub")->value("k"), 40.0);
  ASSERT_NE(a.find_child("other"), nullptr);
  EXPECT_EQ(a.find_child("other")->value("q"), 1.0);
  // Merging preserves the destination's name.
  EXPECT_EQ(a.name(), "total");
}

// ---------------------------------------------------------------------
// TimeSlicedProfiler

/// Recording sink: captures everything forwarded to it.
struct RecordingSink final : sim::TraceSink {
  struct Span {
    int track;
    std::string name, category;
    sim::Tick start, end;
  };
  struct Counter {
    int track;
    std::string name;
    sim::Tick at;
    double value;
  };
  std::vector<std::string> tracks;
  std::vector<Span> spans;
  std::vector<Counter> counters;

  int track(const std::string& name) override {
    tracks.push_back(name);
    return static_cast<int>(tracks.size()) - 1;
  }
  void span(int t, const char* name, const char* category, sim::Tick start,
            sim::Tick end) override {
    spans.push_back({t, name, category, start, end});
  }
  void instant(int, const char*, const char*, sim::Tick) override {}
  void counter(int t, const char* name, sim::Tick at, double value) override {
    counters.push_back({t, name, at, value});
  }
};

TEST(TimeSlicedProfiler, BinsSpansAcrossWindows) {
  sim::TimeSlicedProfiler prof(/*max_windows=*/8, /*initial_window=*/100);
  const int t = prof.track("SPE0");
  // Crosses two window boundaries: 50 in [0,100), 100 in [100,200),
  // 50 in [200,300).
  prof.span(t, "chunk", "compute", 50, 250);
  const sim::Profile p = prof.profile();
  EXPECT_EQ(p.window_ticks, 100);
  EXPECT_EQ(p.end_ticks, 250);
  ASSERT_EQ(p.series.size(), 1u);
  EXPECT_EQ(p.series[0].track, "SPE0");
  EXPECT_EQ(p.series[0].category, "compute");
  ASSERT_EQ(p.series[0].busy_ticks.size(), 3u);
  EXPECT_EQ(p.series[0].busy_ticks[0], 50.0);
  EXPECT_EQ(p.series[0].busy_ticks[1], 100.0);
  EXPECT_EQ(p.series[0].busy_ticks[2], 50.0);
}

TEST(TimeSlicedProfiler, FoldDoublesWindowAndPreservesTotals) {
  sim::TimeSlicedProfiler prof(/*max_windows=*/4, /*initial_window=*/100);
  const int t = prof.track("SPE0");
  prof.span(t, "a", "compute", 0, 100);
  prof.span(t, "b", "compute", 350, 400);  // 4 windows: still fits
  EXPECT_EQ(prof.window_ticks(), 100);
  prof.span(t, "c", "compute", 450, 500);  // needs window 5: folds
  EXPECT_GT(prof.window_ticks(), 100);

  const sim::Profile p = prof.profile();
  EXPECT_LE(p.window_count(), 4u);
  ASSERT_EQ(p.series.size(), 1u);
  double total = 0;
  for (double b : p.series[0].busy_ticks) total += b;
  EXPECT_EQ(total, 200.0);  // 100 + 50 + 50: folding is exact
}

TEST(TimeSlicedProfiler, SeparatesTracksAndCategories) {
  sim::TimeSlicedProfiler prof(8, 100);
  const int a = prof.track("SPE0");
  const int b = prof.track("SPE1");
  prof.span(a, "x", "compute", 0, 10);
  prof.span(a, "y", "dma", 10, 30);
  prof.span(b, "z", "compute", 0, 40);
  const sim::Profile p = prof.profile();
  ASSERT_EQ(p.series.size(), 3u);
  double by_cat_compute = 0, by_cat_dma = 0;
  for (const auto& s : p.series) {
    double total = 0;
    for (double v : s.busy_ticks) total += v;
    (s.category == "dma" ? by_cat_dma : by_cat_compute) += total;
  }
  EXPECT_EQ(by_cat_compute, 50.0);
  EXPECT_EQ(by_cat_dma, 20.0);
}

TEST(TimeSlicedProfiler, ForwardsEventsDownstream) {
  RecordingSink rec;
  sim::TimeSlicedProfiler prof(8, 100);
  prof.forward_to(&rec);
  const int t = prof.track("SPE0");
  prof.span(t, "chunk", "compute", 0, 50);
  ASSERT_EQ(rec.tracks.size(), 1u);
  EXPECT_EQ(rec.tracks[0], "SPE0");
  ASSERT_EQ(rec.spans.size(), 1u);
  EXPECT_EQ(rec.spans[0].name, "chunk");
  EXPECT_EQ(rec.spans[0].start, 0);
  EXPECT_EQ(rec.spans[0].end, 50);
}

TEST(TimeSlicedProfiler, EmitCounterEventsReplaysBusyPercent) {
  RecordingSink rec;
  sim::TimeSlicedProfiler prof(8, 100);
  const int t = prof.track("SPE0");
  prof.span(t, "chunk", "compute", 0, 50);  // 50% of window 0
  prof.emit_counter_events(rec);
  ASSERT_FALSE(rec.counters.empty());
  EXPECT_EQ(rec.counters[0].value, 50.0);
}

// ---------------------------------------------------------------------
// Engine integration

core::RunReport run_counters(int cube, sim::TimeSlicedProfiler* prof,
                             core::RunMode mode = core::RunMode::kTraceDriven,
                             int threads = 1) {
  const sweep::Problem p = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = 2;
  cfg.sweep.fixup_from_iteration = 1;
  cfg.sweep.mk = std::min(cfg.sweep.mk, cube);
  while (cube % cfg.sweep.mk != 0) --cfg.sweep.mk;
  cfg.sweep.threads = threads;
  cfg.profiler = prof;
  core::CellSweep3D runner(p, cfg);
  return runner.run(mode);
}

std::string counters_str(const sim::CounterSet& c) {
  std::ostringstream os;
  core::write_counters_json(os, c);
  return os.str();
}

std::string metrics_str(const core::RunReport& r) {
  std::ostringstream os;
  core::write_metrics_json(os, r);
  return os.str();
}

TEST(Counters, ProfilerAttachedIsZeroPerturbation) {
  // The acceptance criterion: attaching the profiler must not move a
  // single simulated tick.
  const core::RunReport plain = run_counters(16, nullptr);
  sim::TimeSlicedProfiler prof(64);
  const core::RunReport profiled = run_counters(16, &prof);
  EXPECT_EQ(plain.seconds, profiled.seconds);  // bit-identical
  EXPECT_EQ(plain.traffic_bytes, profiled.traffic_bytes);
  EXPECT_EQ(plain.chunks, profiled.chunks);
  EXPECT_EQ(plain.dma_commands, profiled.dma_commands);
  EXPECT_EQ(counters_str(plain.counters), counters_str(profiled.counters));
  EXPECT_TRUE(plain.timeseries.empty());
  EXPECT_FALSE(profiled.timeseries.empty());
  EXPECT_GT(profiled.timeseries.window_count(), 0u);
}

TEST(Counters, PerSpeTicksPartitionRunTimeExactly) {
  const core::RunReport r = run_counters(16, nullptr);
  const double run_ticks = r.counters.value("run_ticks");
  ASSERT_GT(run_ticks, 0.0);
  int spes = 0;
  for (const sim::CounterSet& c : r.counters.children()) {
    if (c.name().rfind("spe", 0) != 0 || c.name() == "spe_total") continue;
    ++spes;
    // Tick counts are integers below 2^53: the partition is exact, not
    // approximate.
    EXPECT_EQ(c.value("busy_ticks") + c.value("dma_wait_ticks") +
                  c.value("sync_wait_ticks") + c.value("idle_ticks"),
              run_ticks)
        << c.name();
  }
  EXPECT_EQ(spes, 8);
}

TEST(Counters, AggregatesMatchReportTotals) {
  const core::RunReport r = run_counters(16, nullptr);
  const sim::CounterSet* total = r.counters.find_child("spe_total");
  ASSERT_NE(total, nullptr);
  const sim::CounterSet* pipe = total->find_child("pipeline");
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(pipe->value("flops"), static_cast<double>(r.flops));
  const sim::CounterSet* mfc = total->find_child("mfc");
  ASSERT_NE(mfc, nullptr);
  EXPECT_EQ(mfc->value("commands"), static_cast<double>(r.dma_commands));
  EXPECT_EQ(r.counters.value("flops"), static_cast<double>(r.flops));
  EXPECT_EQ(r.counters.value("chunks"), static_cast<double>(r.chunks));
}

TEST(Counters, DeterministicAcrossRunsAndThreads) {
  // Same deck, same config => byte-identical metrics JSON (counters and
  // timeseries included), across repeated runs and host thread counts.
  sim::TimeSlicedProfiler p1(64), p2(64), p4(64);
  const std::string a =
      metrics_str(run_counters(10, &p1, core::RunMode::kFunctional, 1));
  const std::string b =
      metrics_str(run_counters(10, &p2, core::RunMode::kFunctional, 1));
  const std::string c =
      metrics_str(run_counters(10, &p4, core::RunMode::kFunctional, 4));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Counters, MetricsJsonCarriesCounterTreeAndTimeseries) {
  sim::TimeSlicedProfiler prof(64);
  const core::RunReport r = run_counters(10, &prof);
  const util::JsonValue doc = util::parse_json(metrics_str(r));
  ASSERT_TRUE(doc.is_object());
  ASSERT_FALSE(doc.object_v.empty());
  // Schema is the first key, so readers can dispatch without scanning.
  EXPECT_EQ(doc.object_v.front().first, "schema");
  EXPECT_EQ(doc.string_or("schema", ""), core::kMetricsSchema);

  const util::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->string_or("name", ""), "machine");
  const util::JsonValue* children = counters->find("children");
  ASSERT_NE(children, nullptr);
  EXPECT_TRUE(children->is_array());
  // spe_total + 8 SPEs + mic + eib + dispatch.
  EXPECT_EQ(children->array_v.size(), 12u);

  const util::JsonValue* ts = doc.find("timeseries");
  ASSERT_NE(ts, nullptr);
  ASSERT_TRUE(ts->is_object());
  const util::JsonValue* wt = ts->find("window_ticks");
  ASSERT_NE(wt, nullptr);
  EXPECT_GT(wt->number_v, 0.0);
  const util::JsonValue* series = ts->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  ASSERT_FALSE(series->array_v.empty());
  // Every series has one busy_ticks entry per window.
  const auto windows = static_cast<std::size_t>(
      (ts->find("end_ticks")->number_v + wt->number_v - 1) / wt->number_v);
  for (const util::JsonValue& s : series->array_v) {
    const util::JsonValue* bt = s.find("busy_ticks");
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(bt->array_v.size(), windows);
  }
}

}  // namespace
}  // namespace cellsweep
