#include "core/config.h"

namespace cellsweep::core {

const char* stage_name(OptimizationStage s) {
  switch (s) {
    case OptimizationStage::kPpeGcc:        return "PPE (GCC)";
    case OptimizationStage::kPpeXlc:        return "PPE (XLC)";
    case OptimizationStage::kSpeInitial:    return "8 SPEs, initial port";
    case OptimizationStage::kSpeAligned:    return "+ gotos removed, 128B rows";
    case OptimizationStage::kSpeBuffered:   return "+ double buffering";
    case OptimizationStage::kSpeSimd:       return "+ SIMD intrinsics";
    case OptimizationStage::kSpeDmaLists:   return "+ DMA lists, bank offsets";
    case OptimizationStage::kSpeLsPoke:     return "+ direct LS-poke sync";
    case OptimizationStage::kFutureBigDma:  return "[future] larger DMA granularity";
    case OptimizationStage::kFutureDistributed:
      return "[future] distributed dispatch";
    case OptimizationStage::kFuturePipelinedDp:
      return "[future] fully pipelined DP";
    case OptimizationStage::kFutureSingle:  return "[future] single precision";
  }
  return "?";
}

CellSweepConfig CellSweepConfig::from_stage(OptimizationStage s) {
  CellSweepConfig c;
  // Start from the fully optimized shipped configuration (kSpeLsPoke)
  // and strip mechanisms for earlier stages / add projections for
  // later ones, mirroring the cumulative ladder of Figure 5.
  switch (s) {
    case OptimizationStage::kPpeGcc:
      c.use_spes = false;
      c.xlc = false;
      c.kernel = sweep::KernelKind::kScalar;
      break;
    case OptimizationStage::kPpeXlc:
      c.use_spes = false;
      c.kernel = sweep::KernelKind::kScalar;
      break;
    case OptimizationStage::kSpeInitial:
      c.kernel = sweep::KernelKind::kScalar;
      c.aligned_rows = false;
      c.gotos_eliminated = false;
      c.buffers = 1;
      c.dma_lists = false;
      c.bank_offsets = false;
      c.sync = cell::SyncProtocol::kMailbox;
      break;
    case OptimizationStage::kSpeAligned:
      c.kernel = sweep::KernelKind::kScalar;
      c.buffers = 1;
      c.dma_lists = false;
      c.bank_offsets = false;
      c.sync = cell::SyncProtocol::kMailbox;
      break;
    case OptimizationStage::kSpeBuffered:
      c.kernel = sweep::KernelKind::kScalar;
      c.dma_lists = false;
      c.bank_offsets = false;
      c.sync = cell::SyncProtocol::kMailbox;
      break;
    case OptimizationStage::kSpeSimd:
      c.dma_lists = false;
      c.bank_offsets = false;
      c.sync = cell::SyncProtocol::kMailbox;
      break;
    case OptimizationStage::kSpeDmaLists:
      c.sync = cell::SyncProtocol::kMailbox;
      break;
    case OptimizationStage::kSpeLsPoke:
      break;  // the shipped configuration
    case OptimizationStage::kFutureBigDma:
      c.dma_granularity = 4096;
      break;
    case OptimizationStage::kFutureDistributed:
      c.dma_granularity = 4096;
      c.sync = cell::SyncProtocol::kAtomicDistributed;
      // The distributed redesign is free of the PPE's per-angle-block
      // pipelining constraint, so it widens the diagonals to the full
      // angle set for better self-scheduled load balance.
      c.sweep.mmi = 6;
      break;
    case OptimizationStage::kFuturePipelinedDp:
      c.dma_granularity = 4096;
      c.sync = cell::SyncProtocol::kAtomicDistributed;
      c.sweep.mmi = 6;
      c.chip = cell::fully_pipelined_dp_spec();
      break;
    case OptimizationStage::kFutureSingle:
      c.dma_granularity = 4096;
      c.sync = cell::SyncProtocol::kAtomicDistributed;
      c.sweep.mmi = 6;
      c.precision = Precision::kSingle;
      break;
  }
  return c;
}

}  // namespace cellsweep::core
