#include "core/arrival.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "util/rng.h"

namespace cellsweep::core {
namespace {

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw ArrivalSpecError("arrival spec entry '" + entry + "': " + why);
}

/// Splits @p s on @p sep. Empty fields are preserved so "tenant=0:" is
/// diagnosed rather than silently collapsing.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (true) {
    const std::size_t at = s.find(sep, from);
    if (at == std::string::npos) {
      out.push_back(s.substr(from));
      return out;
    }
    out.push_back(s.substr(from, at - from));
    from = at + 1;
  }
}

double parse_double(const std::string& entry, const std::string& v, double lo,
                    double hi) {
  const char* b = v.data();
  const char* e = b + v.size();
  double x = 0.0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e) fail(entry, "'" + v + "' is not a number");
  if (!(x >= lo && x <= hi)) fail(entry, "'" + v + "' out of range");
  return x;
}

std::int64_t parse_int(const std::string& entry, const std::string& v,
                       std::int64_t lo, std::int64_t hi) {
  const char* b = v.data();
  const char* e = b + v.size();
  std::int64_t x = 0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e) fail(entry, "'" + v + "' is not an integer");
  if (x < lo || x > hi) fail(entry, "'" + v + "' out of range");
  return x;
}

std::uint64_t parse_u64(const std::string& entry, const std::string& v) {
  const char* b = v.data();
  const char* e = b + v.size();
  std::uint64_t x = 0;
  const auto [p, ec] = std::from_chars(b, e, x);
  if (ec != std::errc{} || p != e)
    fail(entry, "'" + v + "' is not an unsigned integer");
  return x;
}

/// splitmix64's output permutation as a standalone mixer for chaining
/// key material into one decision seed (same mixer as sim::FaultPlan).
constexpr std::uint64_t mix(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Domain salt so an ArrivalPlan and a FaultPlan sharing a seed still
/// draw independent streams.
constexpr std::uint64_t kArrivalDomain = 0xa1;

/// Cap on jobs per stream: big enough for any soak, small enough that
/// a typo'd count fails parsing instead of hanging the harness.
constexpr std::int64_t kMaxStreamJobs = 1 << 20;

}  // namespace

ArrivalSpec parse_arrival_spec(const std::string& text) {
  ArrivalSpec spec;
  for (const std::string& entry : split(text, ',')) {
    if (entry.empty()) continue;  // tolerate "a,,b" and trailing commas
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      fail(entry, "expected key=value (keys: seed, tenant)");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64(entry, value);
    } else if (key == "tenant") {
      const auto parts = split(value, ':');
      if (parts.size() < 2)
        fail(entry,
             "expected tenant=<index>:rate:<jobs_per_s>:<count>[:<start_s>] | "
             "tenant=<index>:burst:<count>[:<at_s>] | "
             "tenant=<index>:trace:<t0>;<t1>;...");
      TenantArrivals t;
      t.tenant = static_cast<int>(parse_int(entry, parts[0], 0, 4095));
      if (parts[1] == "rate") {
        if (parts.size() < 4 || parts.size() > 5)
          fail(entry, "expected tenant=<index>:rate:<jobs_per_s>:<count>"
                      "[:<start_s>]");
        t.kind = ArrivalKind::kRate;
        t.rate_per_s = parse_double(entry, parts[2], 1e-9, 1e9);
        t.count = static_cast<std::uint64_t>(
            parse_int(entry, parts[3], 1, kMaxStreamJobs));
        if (parts.size() == 5)
          t.start_s = parse_double(entry, parts[4], 0.0, 1e9);
      } else if (parts[1] == "burst") {
        if (parts.size() < 3 || parts.size() > 4)
          fail(entry, "expected tenant=<index>:burst:<count>[:<at_s>]");
        t.kind = ArrivalKind::kBurst;
        t.count = static_cast<std::uint64_t>(
            parse_int(entry, parts[2], 1, kMaxStreamJobs));
        if (parts.size() == 4)
          t.start_s = parse_double(entry, parts[3], 0.0, 1e9);
      } else if (parts[1] == "trace") {
        if (parts.size() != 3 || parts[2].empty())
          fail(entry, "expected tenant=<index>:trace:<t0>;<t1>;...");
        t.kind = ArrivalKind::kTrace;
        for (const std::string& ts : split(parts[2], ';'))
          t.times.push_back(parse_double(entry, ts, 0.0, 1e9));
        t.count = t.times.size();
      } else {
        fail(entry, "unknown arrival kind '" + parts[1] +
                    "' (rate | burst | trace)");
      }
      spec.tenants.push_back(t);
    } else {
      fail(entry, "unknown key '" + key + "'");
    }
  }
  return spec;
}

ArrivalPlan::ArrivalPlan(const ArrivalSpec& spec) : spec_(spec) {
  for (const TenantArrivals& t : spec_.tenants) {
    if (t.tenant < 0)
      throw ArrivalSpecError("TenantArrivals: negative tenant index");
    for (const TenantArrivals& other : spec_.tenants)
      if (&other != &t && other.tenant == t.tenant)
        throw ArrivalSpecError("TenantArrivals: duplicate entry for tenant " +
                               std::to_string(t.tenant));
    switch (t.kind) {
      case ArrivalKind::kRate:
        if (!(t.rate_per_s > 0.0) || !std::isfinite(t.rate_per_s))
          throw ArrivalSpecError("TenantArrivals: rate must be > 0");
        [[fallthrough]];
      case ArrivalKind::kBurst:
        if (t.count == 0)
          throw ArrivalSpecError("TenantArrivals: count must be >= 1");
        if (!(t.start_s >= 0.0) || !std::isfinite(t.start_s))
          throw ArrivalSpecError("TenantArrivals: start_s must be >= 0");
        break;
      case ArrivalKind::kTrace: {
        if (t.times.empty())
          throw ArrivalSpecError("TenantArrivals: trace needs >= 1 time");
        if (t.count != t.times.size())
          throw ArrivalSpecError("TenantArrivals: trace count mismatch");
        double prev = 0.0;
        for (double at : t.times) {
          if (!std::isfinite(at) || at < prev)
            throw ArrivalSpecError(
                "TenantArrivals: trace times must be finite, nonnegative "
                "and nondecreasing");
          prev = at;
        }
        break;
      }
      default:
        throw ArrivalSpecError("TenantArrivals: unknown kind");
    }
  }
  enabled_ = spec_.any();
}

const TenantArrivals* ArrivalPlan::stream(int tenant) const {
  for (const TenantArrivals& t : spec_.tenants)
    if (t.tenant == tenant) return &t;
  return nullptr;
}

std::uint64_t ArrivalPlan::count(int tenant) const {
  const TenantArrivals* t = stream(tenant);
  return t ? t->count : 0;
}

std::uint64_t ArrivalPlan::total() const {
  std::uint64_t n = 0;
  for (const TenantArrivals& t : spec_.tenants) n += t.count;
  return n;
}

double ArrivalPlan::gap_s(const TenantArrivals& t, std::uint64_t seq) const {
  // Hash-chain (seed, domain, tenant, seq) into one key, then let
  // SplitMix64 produce the uniform draw -- pure in all arguments, so
  // query order, host thread count and `--tenants` never change the
  // schedule.
  std::uint64_t z = spec_.seed;
  z = mix(z + 0x9e3779b97f4a7c15ULL * kArrivalDomain);
  z = mix(z + 0x9e3779b97f4a7c15ULL *
                  (static_cast<std::uint64_t>(t.tenant) + 1));
  z = mix(z + seq);
  util::SplitMix64 g(z);
  const double u = g.next_double();  // [0, 1)
  // Inverse-CDF exponential: -ln(1 - u) / rate. log1p keeps precision
  // for small u, and u < 1 keeps the gap finite.
  return -std::log1p(-u) / t.rate_per_s;
}

double ArrivalPlan::arrival_s(int tenant, std::uint64_t seq) const {
  const TenantArrivals* t = stream(tenant);
  if (t == nullptr || seq >= t->count)
    throw std::out_of_range("ArrivalPlan::arrival_s: no such arrival");
  switch (t->kind) {
    case ArrivalKind::kBurst:
      return t->start_s;
    case ArrivalKind::kTrace:
      return t->times[static_cast<std::size_t>(seq)];
    case ArrivalKind::kRate:
    default: {
      // Fixed-order prefix sum of pure-hash gaps: identical no matter
      // which seq is asked first.
      double at = t->start_s;
      for (std::uint64_t k = 0; k <= seq; ++k) at += gap_s(*t, k);
      return at;
    }
  }
}

std::vector<Arrival> ArrivalPlan::schedule() const {
  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(total()));
  for (const TenantArrivals& t : spec_.tenants) {
    double at = t.start_s;
    for (std::uint64_t k = 0; k < t.count; ++k) {
      switch (t.kind) {
        case ArrivalKind::kRate:
          at += gap_s(t, k);
          break;
        case ArrivalKind::kTrace:
          at = t.times[static_cast<std::size_t>(k)];
          break;
        case ArrivalKind::kBurst:
        default:
          break;  // all at start_s
      }
      out.push_back(Arrival{at, t.tenant, k});
    }
  }
  // Canonical submission order: time, then tenant, then sequence. The
  // (tenant, seq) tie-break makes simultaneous arrivals (bursts,
  // shared trace points) deterministic too.
  std::sort(out.begin(), out.end(), [](const Arrival& a, const Arrival& b) {
    if (a.at_s != b.at_s) return a.at_s < b.at_s;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace cellsweep::core
