// FlightRecorder: a bounded ring buffer of recent server events.
//
// Aggregate metrics (MetricsRegistry) say *that* something went wrong;
// they can't say *what happened just before*. The flight recorder
// keeps the last N lifecycle / allocator / fault events -- admissions,
// rejections, dequeues, SPE claims and shrinks, job failures -- in a
// fixed-size ring, and the server dumps the window to a timestamped
// JSON file when something notable happens: a job fails, admission
// hits queue-full, or a FaultPlan-injected SPE death forces failover.
//
// Lossless within the window: events inside the ring are never
// coalesced or sampled. Once the ring wraps, the oldest events fall
// off and dropped() counts them, so a dump always states exactly how
// much history preceded it.
//
// Recording takes a rank-annotated util::Mutex (kFlightRecorder, above
// every lock that might be held at a record site) and copies a few
// words -- cheap enough to leave armed permanently. Observation-only,
// like every telemetry layer here: nothing reads the ring back into a
// scheduling or admission decision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cellsweep::core {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  struct Event {
    double t_s = 0;     ///< host seconds since server start
    std::string kind;   ///< "admit", "reject", "dequeue", "fail", ...
    int job_id = -1;    ///< -1 when the event is not job-scoped
    int tenant = -1;    ///< worker index; -1 when not tenant-scoped
    std::string detail; ///< free-form context ("reason=queue-full", ...)
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends an event, evicting the oldest once the ring is full.
  void record(double t_s, std::string kind, int job_id, int tenant,
              std::string detail) EXCLUDES(mu_);

  /// Events currently in the window, oldest first.
  std::vector<Event> events() const EXCLUDES(mu_);

  /// Events that have fallen off the ring since construction.
  std::uint64_t dropped() const EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }

  /// Writes the window as one JSON object: {"schema", "capacity",
  /// "dropped", "events": [...]} -- the payload of a
  /// flightrec-<ms>-<seq>.json dump file. Deterministic for a given
  /// ring state.
  void dump(std::ostream& os) const EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_{util::lockrank::kFlightRecorder,
                          "FlightRecorder::mu_"};
  std::vector<Event> ring_ GUARDED_BY(mu_);  ///< circular once full
  std::size_t head_ GUARDED_BY(mu_) = 0;     ///< next write slot
  std::uint64_t total_ GUARDED_BY(mu_) = 0;  ///< lifetime record() count
};

}  // namespace cellsweep::core
