// Machine-readable run metrics.
//
// Serializes a RunReport -- top-line timing, the Section 6 bounds, DMA
// counters, the MFC queue-occupancy histogram, the per-SPE stall
// breakdown (busy / DMA-wait / sync-wait / idle), the hardware counter
// tree and the time-sliced utilization profile -- as a single JSON
// object, so runs can be diffed, plotted and regression-tracked without
// scraping the human-readable tables. The top-level "schema" key
// ("cellsweep-metrics-v4") versions the layout; v3 added the "faults"
// section (an object when fault injection was armed for the run, null
// otherwise); v4 added the "server" section (the solve server's
// telemetry document -- always null in a solo run's metrics, see
// write_server_metrics_json in server/solve_server.h for the served
// shape). Non-finite values (the
// empty RunningStats contract returns NaN for all moments) serialize as
// JSON null. All numeric formatting is locale-independent
// (util::cformat), so output is byte-stable across environments.
#pragma once

#include <iosfwd>

namespace cellsweep::sim {
class CounterSet;
struct Profile;
}

namespace cellsweep::core {

struct RunReport;

/// The metrics JSON layout version emitted by write_metrics_json.
inline constexpr const char* kMetricsSchema = "cellsweep-metrics-v4";

/// Writes @p r as one JSON object to @p os.
void write_metrics_json(std::ostream& os, const RunReport& r);

/// Writes @p c as {"name": ..., "values": {...}, "children": [...]}
/// (children only when present). @p indent is the column the object
/// starts at; continuation lines indent relative to it. Shared with the
/// bench harness's BENCH_*.json emitter.
void write_counters_json(std::ostream& os, const sim::CounterSet& c,
                         int indent = 0);

/// Writes @p p as {"window_ticks": ..., "end_ticks": ...,
/// "series": [{"track", "category", "busy_ticks": [...]}, ...]}.
void write_timeseries_json(std::ostream& os, const sim::Profile& p,
                           int indent = 0);

}  // namespace cellsweep::core
