#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace cellsweep::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cellsweep::util
