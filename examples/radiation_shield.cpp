// Shielding study: a corner source behind an absorbing slab.
//
// The paper motivates particle transport with "the analysis of fires,
// explosions and even nuclear reactions". This example runs the classic
// shielding question -- how much does a slab attenuate? -- and shows
// the negative-flux fixups (the expensive kernel path of Section 5.1)
// doing real work in the optically thick shield.
//
//   $ ./radiation_shield [--cube=32] [--epsilon=1e-8]
#include <cmath>
#include <iostream>

#include "core/orchestrator.h"
#include "sweep/mpi_sweeper.h"
#include "sweep/output.h"
#include "sweep/tally.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/units.h"

using namespace cellsweep;

int main(int argc, char** argv) {
  util::CliParser cli("Shielding study on the simulated Cell BE");
  cli.add_flag("cube", "32", "cube size (cells per side)");
  cli.add_flag("epsilon", "1e-8", "convergence tolerance");
  cli.add_flag("vtk", "", "write the flux field to this VTK file");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }
  int n;
  double epsilon;
  try {
    n = static_cast<int>(cli.get_int("cube"));
    epsilon = cli.get_double("epsilon");
  } catch (const util::CliError& e) {
    std::cerr << e.what() << "\n" << cli.usage(argv[0]);
    return 1;
  }

  const sweep::Problem problem = sweep::Problem::shield(n);
  std::cout << "Shield problem: " << n << "^3 cells; materials:\n";
  for (const auto& m : problem.materials())
    std::cout << "  " << m.name << ": sigma_t=" << m.sigma_t
              << " sigma_s0=" << m.sigma_s[0] << " q=" << m.q_ext << "\n";

  // Fixups on from the start: the shield slab drives diamond difference
  // negative, so this deck exercises the expensive kernel everywhere.
  core::CellSweepConfig cfg =
      core::CellSweepConfig::from_stage(core::OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = 60;
  cfg.sweep.fixup_from_iteration = 0;
  cfg.sweep.epsilon = epsilon;
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (n % d == 0) mk = d;
  cfg.sweep.mk = mk;

  core::CellSweep3D runner(problem, cfg);
  const core::RunReport r = runner.run(core::RunMode::kFunctional);

  std::cout << "\nConverged in " << r.solve->iterations
            << " iterations (change " << r.solve->final_change << "); "
            << r.solve->totals.fixup_cells << " cell-solves needed fixups ("
            << util::format_percent(
                   static_cast<double>(r.solve->totals.fixup_cells) /
                   static_cast<double>(r.solve->totals.cells))
            << ").\n\n";

  // Attenuation profile along the source->detector axis: rebuild the
  // flux with the functional solver to read the line out.
  sweep::SnQuadrature quad(6);
  sweep::SweepState<double> state(problem, quad, 2, sweep::kBenchmarkMoments);
  sweep::solve_source_iteration(state, cfg.sweep);

  util::TextTable profile({"i (along beam)", "region", "scalar flux",
                           "attenuation vs front"});
  const int j = 1, k = 1;
  const double front = state.flux().at(0, k, j, n / 5);
  for (int i = 0; i < n; i += std::max(1, n / 12)) {
    const auto& mat = problem.material_of(i, j, k);
    const double phi = state.flux().at(0, k, j, i);
    profile.add_row({std::to_string(i), mat.name,
                     [&] { char b[32]; std::snprintf(b, sizeof b, "%.3e", phi);
                           return std::string(b); }(),
                     [&] { char b[32];
                           std::snprintf(b, sizeof b, "%.1e", phi / front);
                           return std::string(b); }()});
  }
  profile.print(std::cout);

  // Region tallies: what fraction of the source each material absorbs.
  sweep::TallySet tallies;
  for (std::size_t m = 0; m < problem.materials().size(); ++m)
    tallies.add_material(problem.materials()[m].name, static_cast<int>(m));
  std::cout << "\n";
  util::TextTable treport({"region", "cells", "mean flux", "absorption",
                           "share of source"});
  const double total_src = problem.total_external_source();
  for (const sweep::RegionTally& t : tallies.compute(problem, state.flux())) {
    treport.add_row({t.name, std::to_string(t.cells),
                     [&] { char b[32];
                           std::snprintf(b, sizeof b, "%.3e", t.mean_flux);
                           return std::string(b); }(),
                     [&] { char b[32];
                           std::snprintf(b, sizeof b, "%.4f",
                                         t.absorption_rate);
                           return std::string(b); }(),
                     util::format_percent(t.absorption_rate / total_src)});
  }
  treport.print(std::cout);

  if (const std::string vtk = cli.get_string("vtk"); !vtk.empty()) {
    sweep::write_vtk_file(vtk, problem, state.flux(), "shield flux");
    std::cout << "\nWrote " << vtk << " (load in ParaView/VisIt)\n";
  }

  std::cout << "\nSimulated Cell run time: " << util::format_seconds(r.seconds)
            << " (" << util::format_bytes(r.traffic_bytes) << " DMA traffic; "
            << "fixup-heavy kernel, compare Section 5.1's 1690-cycle "
               "variant)\n";
  return 0;
}
