// Unit tests for problem definitions and the grid.
#include <gtest/gtest.h>

#include "sweep/grid.h"
#include "sweep/problem.h"

namespace cellsweep::sweep {
namespace {

TEST(Grid, CubeFactory) {
  const Grid g = Grid::cube(50, 2.0);
  EXPECT_EQ(g.it, 50);
  EXPECT_EQ(g.cells(), 125000);
  EXPECT_DOUBLE_EQ(g.dx, 0.04);
  EXPECT_DOUBLE_EQ(g.cell_volume(), 0.04 * 0.04 * 0.04);
}

TEST(Grid, IndexIsRowMajorInI) {
  const Grid g{4, 3, 2, 1, 1, 1};
  EXPECT_EQ(g.index(0, 0, 0), 0);
  EXPECT_EQ(g.index(1, 0, 0), 1);
  EXPECT_EQ(g.index(0, 1, 0), 4);
  EXPECT_EQ(g.index(0, 0, 1), 12);
}

TEST(Grid, Validation) {
  EXPECT_THROW(Grid::cube(0), std::invalid_argument);
  Grid bad{10, 10, 10, -1.0, 1.0, 1.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Material, ScatteringRatio) {
  Material m{"m", 2.0, {1.0, 0.2}, 0.0};
  EXPECT_DOUBLE_EQ(m.scattering_ratio(), 0.5);
}

TEST(Problem, BenchmarkCube) {
  const Problem p = Problem::benchmark_cube(10);
  EXPECT_EQ(p.grid().cells(), 1000);
  EXPECT_EQ(p.materials().size(), 1u);
  EXPECT_EQ(p.max_scattering_order(), 2);
  EXPECT_LT(p.max_scattering_ratio(), 1.0);  // convergent
  EXPECT_GT(p.total_external_source(), 0.0);
}

TEST(Problem, TotalSourceScalesWithVolume) {
  const Problem p = Problem::benchmark_cube(10);
  // Unit source density over the whole domain: total = volume.
  const double volume = p.grid().cells() * p.grid().cell_volume();
  EXPECT_NEAR(p.total_external_source(), volume, 1e-9);
}

TEST(Problem, ShieldHasThreeMaterials) {
  const Problem p = Problem::shield(16);
  EXPECT_EQ(p.materials().size(), 3u);
  // The slab is optically thick relative to everything else.
  double max_sigt = 0;
  for (const auto& m : p.materials()) max_sigt = std::max(max_sigt, m.sigma_t);
  EXPECT_GE(max_sigt, 5.0);
  // Source sits in the corner.
  EXPECT_GT(p.material_of(0, 0, 0).q_ext, 0.0);
  // The middle of the domain is shield material.
  const int n = p.grid().it;
  EXPECT_EQ(p.material_of(n / 2, n / 2, n / 2).name, "shield");
}

TEST(Problem, ReactorIsStronglyScattering) {
  const Problem p = Problem::reactor(12);
  EXPECT_GT(p.max_scattering_ratio(), 0.9);
  EXPECT_GT(p.total_external_source(), 0.0);
}

TEST(Problem, RejectsInvalidInput) {
  Grid g = Grid::cube(4);
  EXPECT_THROW(Problem(g, {}, std::vector<std::uint8_t>(g.cells(), 0)),
               std::invalid_argument);
  Material m{"m", 1.0, {0.5}, 0.0};
  EXPECT_THROW(Problem(g, {m}, std::vector<std::uint8_t>(10, 0)),
               std::invalid_argument);
  EXPECT_THROW(Problem(g, {m}, std::vector<std::uint8_t>(g.cells(), 3)),
               std::invalid_argument);
  Material bad_sigt{"b", -1.0, {0.5}, 0.0};
  EXPECT_THROW(Problem(g, {bad_sigt}, std::vector<std::uint8_t>(g.cells(), 0)),
               std::invalid_argument);
  Material no_scatter{"n", 1.0, {}, 0.0};
  EXPECT_THROW(
      Problem(g, {no_scatter}, std::vector<std::uint8_t>(g.cells(), 0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace cellsweep::sweep
