// Tests for the four-ring EIB model against the published behaviours
// of the Cell interconnect (paper Section 2 / reference [9]).
#include <gtest/gtest.h>

#include "cellsim/eib_rings.h"

namespace cellsweep::cell {
namespace {

class EibRingsTest : public ::testing::Test {
 protected:
  CellSpec spec_;
  EibRings eib_{spec_};
};

TEST_F(EibRingsTest, RingRateAndAggregateConcurrency) {
  // One ring moves 16 B per bus cycle at 1.6 GHz = 25.6 GB/s. The
  // 204.8 GB/s aggregate the paper quotes comes from *concurrent*
  // transfers: each ring carries several transfers at once when their
  // segment paths do not overlap (8 x 25.6 = 204.8).
  EXPECT_DOUBLE_EQ(eib_.ring_rate(), 25.6e9);
  // Demonstrate eight single-hop transfers all starting at t=0: the
  // instantaneous aggregate is 8 rings-worth = 204.8 GB/s.
  const BusElement path[9] = {
      BusElement::kPpe,   BusElement::kSpe1, BusElement::kSpe3,
      BusElement::kSpe5,  BusElement::kSpe7, BusElement::kIoif1,
      BusElement::kIoif0, BusElement::kSpe6, BusElement::kSpe4};
  int concurrent = 0;
  for (int i = 0; i < 8; ++i) {
    const RingGrant g = eib_.transfer(0, path[i], path[i + 1], 16384);
    if (g.start == 0) ++concurrent;
  }
  EXPECT_EQ(concurrent, 8);
}

TEST_F(EibRingsTest, SpeElementMapping) {
  for (int i = 0; i < 8; ++i) {
    const BusElement e = spe_element(i);
    EXPECT_GE(static_cast<int>(e), 0);
    EXPECT_LT(static_cast<int>(e), kBusElements);
  }
  EXPECT_THROW(spe_element(8), std::out_of_range);
  // All eight SPEs sit on distinct ring positions.
  for (int a = 0; a < 8; ++a)
    for (int b = a + 1; b < 8; ++b)
      EXPECT_NE(spe_element(a), spe_element(b));
}

TEST_F(EibRingsTest, NeverRoutesTheLongWay) {
  for (int s = 0; s < kBusElements; ++s)
    for (int d = 0; d < kBusElements; ++d) {
      if (s == d) continue;
      EibRings fresh(spec_);
      const RingGrant g =
          fresh.transfer(0, static_cast<BusElement>(s),
                         static_cast<BusElement>(d), 128);
      EXPECT_LE(g.hops, kBusElements / 2) << s << "->" << d;
      EXPECT_GE(g.hops, 1);
    }
}

TEST_F(EibRingsTest, TransferTimeMatchesRingRate) {
  const RingGrant g =
      eib_.transfer(0, BusElement::kSpe0, BusElement::kMic, 25.6e9);
  EXPECT_NEAR(sim::seconds_from_ticks(g.done - g.start), 1.0, 1e-9);
}

TEST_F(EibRingsTest, DisjointPathsProceedConcurrently) {
  // Adjacent-neighbor transfers on opposite sides of the ring do not
  // contend: both start immediately.
  const RingGrant a =
      eib_.transfer(0, BusElement::kPpe, BusElement::kSpe1, 16384);
  const RingGrant b =
      eib_.transfer(0, BusElement::kIoif0, BusElement::kSpe6, 16384);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);
}

TEST_F(EibRingsTest, FourOverlappingTransfersUseFourRings) {
  // Identical src->dst transfers: each new one grabs a free ring; the
  // fifth must wait for the first to drain.
  sim::Tick first_done = 0;
  for (int i = 0; i < 4; ++i) {
    const RingGrant g =
        eib_.transfer(0, BusElement::kSpe0, BusElement::kMic, 16384);
    EXPECT_EQ(g.start, 0u) << i;
    first_done = g.done;
  }
  const RingGrant fifth =
      eib_.transfer(0, BusElement::kSpe0, BusElement::kMic, 16384);
  EXPECT_GE(fifth.start, first_done);
}

TEST_F(EibRingsTest, OppositeDirectionsDoNotContend) {
  // CW and CCW are separate wires: a PPE->SPE1 (cw) and SPE1->PPE
  // (reverse) transfer overlap even on the same ring pair.
  const RingGrant a =
      eib_.transfer(0, BusElement::kPpe, BusElement::kSpe1, 16384);
  const RingGrant b =
      eib_.transfer(0, BusElement::kSpe1, BusElement::kPpe, 16384);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);
}

TEST_F(EibRingsTest, SaturatedRingSerializes) {
  // Keep issuing the same long-path transfer: once all rings and both
  // useful directions are busy, starts become strictly later.
  sim::Tick prev_start = 0;
  bool saw_wait = false;
  for (int i = 0; i < 12; ++i) {
    const RingGrant g =
        eib_.transfer(0, BusElement::kPpe, BusElement::kIoif1, 16384);
    if (g.start > prev_start) saw_wait = true;
    prev_start = std::max(prev_start, g.start);
  }
  EXPECT_TRUE(saw_wait);
}

TEST_F(EibRingsTest, AggregateThroughputBounded) {
  // Blast N transfers between the same endpoints; the makespan cannot
  // beat bytes / (4 rings x ring rate)  (both directions are distinct
  // paths here, but the chosen short path pins one direction).
  const double bytes = 16384;
  const int n = 64;
  sim::Tick makespan = 0;
  for (int i = 0; i < n; ++i) {
    const RingGrant g =
        eib_.transfer(0, BusElement::kSpe0, BusElement::kSpe2, bytes);
    makespan = std::max(makespan, g.done);
  }
  const double floor_s = n * bytes / (4.0 * eib_.ring_rate());
  EXPECT_GE(sim::seconds_from_ticks(makespan), floor_s * 0.99);
  EXPECT_DOUBLE_EQ(eib_.bytes_moved(), n * bytes);
  EXPECT_EQ(eib_.transfers(), static_cast<std::uint64_t>(n));
}

TEST_F(EibRingsTest, Validation) {
  EXPECT_THROW(eib_.transfer(0, BusElement::kPpe, BusElement::kPpe, 16),
               std::invalid_argument);
  EXPECT_THROW(eib_.transfer(0, BusElement::kPpe, BusElement::kMic, -1.0),
               std::invalid_argument);
}

TEST_F(EibRingsTest, ResetClears) {
  eib_.transfer(0, BusElement::kSpe0, BusElement::kMic, 16384);
  eib_.reset();
  EXPECT_DOUBLE_EQ(eib_.bytes_moved(), 0.0);
  const RingGrant g =
      eib_.transfer(0, BusElement::kSpe0, BusElement::kMic, 16384);
  EXPECT_EQ(g.start, 0u);
}

}  // namespace
}  // namespace cellsweep::cell
