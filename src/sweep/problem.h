// Transport problem definition: geometry + materials + external source.
//
// Sweep3D solves a fixed-source neutron transport problem ("particle
// transport analyzes the flux of photons and/or other particles through
// a space ... fires, explosions and even nuclear reactions", Section 3)
// on a rectangular grid. A Problem bundles the grid, per-cell material
// assignment and per-material cross sections; factories build the
// benchmark cube and the domain scenarios used by the examples.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/grid.h"

namespace cellsweep::sweep {

/// One material's cross sections (macroscopic, 1/cm).
struct Material {
  std::string name;
  double sigma_t = 1.0;              ///< total cross section
  std::vector<double> sigma_s{0.5};  ///< scattering moments, l = 0..l_max
  double q_ext = 0.0;                ///< isotropic external source density

  /// Scattering ratio c = sigma_s0 / sigma_t (must be < 1 for source
  /// iteration to converge).
  double scattering_ratio() const {
    return sigma_s.empty() ? 0.0 : sigma_s[0] / sigma_t;
  }
};

/// Boundary condition of one domain face. Sweep3D supports vacuum
/// (zero inflow) and specular reflection; reflection feeds each
/// octant's inflow from the mirror octant's stored outflow.
enum class FaceBc : std::uint8_t { kVacuum, kReflective };

/// Domain face indices for boundary-condition arrays.
enum Face : int {
  kFaceWest = 0,   // -I
  kFaceEast = 1,   // +I
  kFaceNorth = 2,  // -J
  kFaceSouth = 3,  // +J
  kFaceBottom = 4, // -K
  kFaceTop = 5,    // +K
};

/// Complete problem specification.
class Problem {
 public:
  Problem(Grid grid, std::vector<Material> materials,
          std::vector<std::uint8_t> cell_material);

  const Grid& grid() const noexcept { return grid_; }
  const std::vector<Material>& materials() const noexcept {
    return materials_;
  }
  const Material& material_of(int i, int j, int k) const {
    return materials_[cell_material_[grid_.index(i, j, k)]];
  }
  std::uint8_t material_index(int i, int j, int k) const {
    return cell_material_[grid_.index(i, j, k)];
  }

  /// Highest scattering order any material carries.
  int max_scattering_order() const noexcept { return l_max_; }

  /// Largest scattering ratio across materials (controls the spectral
  /// radius of source iteration).
  double max_scattering_ratio() const noexcept;

  /// Total external source (particles/s) integrated over the domain.
  double total_external_source() const noexcept;

  /// Boundary condition of @p face (default: vacuum on all six).
  FaceBc boundary(int face) const { return boundaries_.at(face); }
  void set_boundary(int face, FaceBc bc) { boundaries_.at(face) = bc; }
  bool any_reflective() const noexcept {
    for (FaceBc b : boundaries_)
      if (b == FaceBc::kReflective) return true;
    return false;
  }

  // --- Factories -----------------------------------------------------------

  /// The paper's benchmark: a homogeneous cube with a uniform unit
  /// source and moderate scattering (50-cubed by default).
  static Problem benchmark_cube(int n = 50, int l_max = 2);

  /// Shielding scenario: a small source region in one corner, a dense
  /// absorbing shield slab across the middle, near-void elsewhere. The
  /// optically thick shield triggers negative-flux fixups, exercising
  /// the expensive kernel path.
  static Problem shield(int n = 32);

  /// Reactor-like scenario: strongly scattering moderator with several
  /// embedded source pins. High scattering ratio -> many source
  /// iterations, exercising convergence behaviour.
  static Problem reactor(int n = 24);

  /// Homogeneous medium with all six faces reflective: equivalent to an
  /// infinite medium, whose converged scalar flux is exactly
  /// q / sigma_a everywhere -- the analytic check the boundary tests
  /// use.
  static Problem infinite_medium(int n = 8, double sigma_t = 1.0,
                                 double sigma_s0 = 0.5, double q = 1.0);

 private:
  Grid grid_;
  std::vector<Material> materials_;
  std::vector<std::uint8_t> cell_material_;
  std::array<FaceBc, 6> boundaries_{};
  int l_max_;
};

}  // namespace cellsweep::sweep
