#include "sweep/kernel_simd.h"

#include <array>
#include <stdexcept>

namespace cellsweep::sweep {
namespace {

using spu::mark_branch;
using spu::mark_fixed;
using spu::mark_store;

/// Per-chain lane -> bundle line mapping; inactive lanes get benign
/// dummies (sigt=1, everything else 0) and are never written back.
template <typename Real>
struct LaneRef {
  const LineArgs<Real>* line = nullptr;  // nullptr: inactive lane
  Real dummy_face = Real(0);
};

/// Phase 1: q[i] = sum_n pn_src[n] * src_n[i], vectorized along i.
/// All four logical threads (lines) advance together so four
/// independent accumulator chains hide the DP latency, and the partial
/// sums stay in registers -- the scheduling XLC applies to Figure 7
/// style code. Splatted pn coefficients are hoisted out of the i loop.
template <typename Real>
void assemble_source(const LineArgs<Real>* lines, int nlines, Real* const* q) {
  using Vec = typename SimdTraits<Real>::Vec;
  constexpr int kLanes = SimdTraits<Real>::kLanes;
  const int it = lines[0].it;
  const int nm = lines[0].nm;
  const int steps = (it + kLanes - 1) / kLanes;

  // Hoisted splats: pn_src per (line, moment).
  std::array<std::array<Vec, 16>, kBundleLines> pn;
  for (int l = 0; l < nlines; ++l)
    for (int n = 0; n < nm; ++n)
      pn[l][n] = spu::spu_splats(lines[l].pn_src[n]);

  // Software-scheduled body: all source loads first, then the madd
  // block, then the stores -- by the time a store needs its madd the
  // other threads' madds have filled the latency.
  std::array<std::array<Vec, 16>, kBundleLines> s;
  for (int v = 0; v < steps; ++v) {
    for (int n = 0; n < nm; ++n)
      for (int l = 0; l < nlines; ++l) {
        // Strided address computation (even pipe) pairs with the load
        // (odd pipe) -- the main source of dual issue in this kernel.
        spu::mark_fixed(1);
        s[l][n] = spu::vec_load(
            lines[l].src + static_cast<std::int64_t>(n) * lines[l].mstride +
            v * kLanes);
      }
    Vec acc[kBundleLines];
    for (int l = 0; l < nlines; ++l) acc[l] = spu::spu_mul(pn[l][0], s[l][0]);
    for (int n = 1; n < nm; ++n)
      for (int l = 0; l < nlines; ++l)
        acc[l] = spu::spu_madd(pn[l][n], s[l][n], acc[l]);
    for (int l = 0; l < nlines; ++l)
      spu::vec_store(q[l] + v * kLanes, acc[l]);
    mark_fixed(2);
    mark_branch();
  }
}

/// Phase 3: Flux[n][i] += pn_acc[n] * Phi[i] -- Figure 7 verbatim: the
/// moment loop outer, the four logical threads (A..D) unrolled inside
/// the halved i loop.
template <typename Real>
void accumulate_flux(const LineArgs<Real>* lines, int nlines,
                     const Real* const* phi) {
  using Vec = typename SimdTraits<Real>::Vec;
  constexpr int kLanes = SimdTraits<Real>::kLanes;
  const int it = lines[0].it;
  const int nm = lines[0].nm;
  const int steps = (it + kLanes - 1) / kLanes;

  std::array<std::array<Vec, 16>, kBundleLines> pn;
  for (int l = 0; l < nlines; ++l)
    for (int n = 0; n < nm; ++n)
      pn[l][n] = spu::spu_splats(lines[l].pn_acc[n]);

  for (int n = 0; n < nm; ++n) {
    for (int v = 0; v < steps; ++v) {
      // Loads batched ahead of the madd/store block (scheduled code).
      Vec phiv[kBundleLines], fv[kBundleLines], acc[kBundleLines];
      Real* flux_n[kBundleLines];
      for (int l = 0; l < nlines; ++l) {
        flux_n[l] = lines[l].flux +
                    static_cast<std::int64_t>(n) * lines[l].mstride;
        spu::mark_fixed(1);  // moment-stride address arithmetic
        phiv[l] = spu::vec_load(phi[l] + v * kLanes);
        fv[l] = spu::vec_load(flux_n[l] + v * kLanes);
      }
      for (int l = 0; l < nlines; ++l)
        acc[l] = spu::spu_madd(pn[l][n], phiv[l], fv[l]);
      for (int l = 0; l < nlines; ++l)
        spu::vec_store(flux_n[l] + v * kLanes, acc[l]);
      if ((v & 3) == 3) {
        mark_fixed(2);
        mark_branch();
      }
    }
  }
}

template <typename Real>
typename SimdTraits<Real>::Vec splat_const(Real x) {
  return spu::spu_splats(x);
}

/// Packs one scalar per lane into a vector, honoring inactive lanes.
template <typename Real, typename GetLane>
typename SimdTraits<Real>::Vec pack_lanes(GetLane&& get) {
  if constexpr (SimdTraits<Real>::kLanes == 2) {
    return spu::vec_pack(get(0), get(1));
  } else {
    return spu::vec_pack(get(0), get(1), get(2), get(3));
  }
}

}  // namespace

template <typename Real>
void sweep_bundle_simd(const LineArgs<Real>* lines, int nlines, bool fixup,
                       BundleScratch<Real>& scratch, KernelStats* stats) {
  using Traits = SimdTraits<Real>;
  using Vec = typename Traits::Vec;
  constexpr int kLanes = Traits::kLanes;
  constexpr int kChains = Traits::kChains;

  if (nlines < 1 || nlines > kBundleLines)
    throw std::invalid_argument("sweep_bundle_simd: 1..4 lines per bundle");
  const int it = lines[0].it;
  const int dir = lines[0].dir;
  if (lines[0].nm > 16)
    throw std::invalid_argument(
        "sweep_bundle_simd: at most 16 moments (register budget)");
  for (int l = 1; l < nlines; ++l)
    if (lines[l].it != it || lines[l].dir != dir || lines[l].nm != lines[0].nm)
      throw std::invalid_argument(
          "sweep_bundle_simd: bundle lines must share shape");

  // ---- Phase 1: source assembly, vector-over-i, 4 logical threads ----
  {
    Real* qptr[kBundleLines] = {};
    for (int l = 0; l < nlines; ++l) qptr[l] = scratch.q[l].data();
    assemble_source(lines, nlines, qptr);
  }

  // ---- Phase 2: packed recursion across lines ----
  // Lane -> line mapping per chain.
  LaneRef<Real> lane[kChains][kLanes];
  for (int c = 0; c < kChains; ++c)
    for (int l = 0; l < kLanes; ++l) {
      const int line_idx = c * kLanes + l;
      if (line_idx < nlines) lane[c][l].line = &lines[line_idx];
    }

  // Per-chain constants: angles differ between lines, so the paper's
  // "ci" etc. become packed vectors (loaded once per chunk, resident).
  Vec civ[kChains], cjv[kChains], ckv[kChains], ini[kChains];
  for (int c = 0; c < kChains; ++c) {
    civ[c] = pack_lanes<Real>([&](int l) {
      return lane[c][l].line ? lane[c][l].line->ci : Real(0);
    });
    cjv[c] = pack_lanes<Real>([&](int l) {
      return lane[c][l].line ? lane[c][l].line->cj : Real(0);
    });
    ckv[c] = pack_lanes<Real>([&](int l) {
      return lane[c][l].line ? lane[c][l].line->ck : Real(0);
    });
    ini[c] = pack_lanes<Real>([&](int l) {
      return lane[c][l].line ? *lane[c][l].line->phi_i : Real(0);
    });
  }
  const Vec zero = splat_const(Real(0));

  for (int s = 0; s < it; ++s) {
    const int i = dir > 0 ? s : it - 1 - s;
    // Quadword loads feeding the transposed packs: 4 operand arrays
    // (sigt, q, phi_j, phi_k) per line; one quadword covers kLanes
    // i-steps, so the batch amortizes.
    if (s % kLanes == 0) spu::mark_pack_loads(4 * nlines);
    for (int c = 0; c < kChains; ++c) {
      auto lane_scalar = [&](int l, auto&& field, Real dflt) -> Real {
        return lane[c][l].line ? field(*lane[c][l].line) : dflt;
      };
      const Vec sigtv = pack_lanes<Real>([&](int l) {
        return lane_scalar(
            l, [&](const LineArgs<Real>& a) { return a.sigt[i]; }, Real(1));
      });
      const Vec qv = pack_lanes<Real>([&](int l) {
        const int line_idx = c * kLanes + l;
        return line_idx < nlines ? scratch.q[line_idx][i] : Real(0);
      });
      const Vec inj = pack_lanes<Real>([&](int l) {
        return lane_scalar(
            l, [&](const LineArgs<Real>& a) { return a.phi_j[i]; }, Real(0));
      });
      const Vec ink = pack_lanes<Real>([&](int l) {
        return lane_scalar(
            l, [&](const LineArgs<Real>& a) { return a.phi_k[i]; }, Real(0));
      });

      // num = ((q + ci*in_i) + cj*in_j) + ck*in_k  -- scalar order.
      Vec num = spu::spu_madd(civ[c], ini[c], qv);
      num = spu::spu_madd(cjv[c], inj, num);
      num = spu::spu_madd(ckv[c], ink, num);
      // den = ((sigt + ci) + cj) + ck
      Vec den = spu::spu_add(sigtv, civ[c]);
      den = spu::spu_add(den, cjv[c]);
      den = spu::spu_add(den, ckv[c]);

      Vec phiv = detail_simd::div_exact(num, den);
      // 2*phi computed once per chain; phi+phi == 2*phi bit-exactly.
      const Vec phi2 = spu::spu_add(phiv, phiv);
      Vec oi = spu::spu_sub(phi2, ini[c]);
      Vec oj = spu::spu_sub(phi2, inj);
      Vec ok = spu::spu_sub(phi2, ink);

      if (fixup) {
        // Record the three compares the fixup test costs; lanes that
        // actually went negative re-solve scalar (set-to-zero fixup),
        // exactly matching sweep_line_scalar's solve_cell.
        const auto mi = spu::spu_cmpgt(zero, oi);
        const auto mj = spu::spu_cmpgt(zero, oj);
        const auto mk_ = spu::spu_cmpgt(zero, ok);
        mark_fixed(2);  // mask OR-combine
        const bool any_neg = spu::any(mi) || spu::any(mj) || spu::any(mk_);
        if (any_neg) {
          mark_branch(/*hinted=*/false);  // rarely-taken path
          // Lane gather/scatter around the scalar re-solve: alternating
          // mask arithmetic (even pipe) and shuffles (odd pipe) -- this
          // is where the fixup kernel picks up most of its dual issue.
          for (int gs = 0; gs < 6; ++gs) {
            mark_fixed(1);
            spu::detail::record(spu::Op::kShuffle);
          }
          for (int l = 0; l < kLanes; ++l) {
            if (!lane[c][l].line) continue;
            if (oi.v[l] >= Real(0) && oj.v[l] >= Real(0) &&
                ok.v[l] >= Real(0))
              continue;
            const LineArgs<Real>& a = *lane[c][l].line;
            const CellSolve<Real> fix = solve_cell(
                qv.v[l], a.sigt[i], a.ci, a.cj, a.ck, ini[c].v[l], a.phi_j[i],
                a.phi_k[i], /*fixup=*/true);
            phiv.v[l] = fix.phi;
            oi.v[l] = fix.out_i;
            oj.v[l] = fix.out_j;
            ok.v[l] = fix.out_k;
            // Scalar re-solve occupancy: up to three set-to-zero
            // rounds of ~10 DP slots each (divide sequence dominates).
            spu::mark_double_op(30);
            if (stats) ++stats->fixups_applied;
          }
        }
      }

      // Write back: I-outflow stays packed for the next i-step; J/K
      // faces and the cell flux unpack to their per-line arrays (one
      // shuffle + merged quadword store per array on the real SPU).
      ini[c] = oi;
      spu::mark_fixed(1);   // lane select mask
      spu::detail::record(spu::Op::kShuffle, oj.id);
      spu::detail::record(spu::Op::kShuffle, ok.id);
      spu::detail::record(spu::Op::kShuffle, phiv.id);
      mark_store(3);
      for (int l = 0; l < kLanes; ++l) {
        const int line_idx = c * kLanes + l;
        if (line_idx >= nlines) continue;
        const LineArgs<Real>& a = *lane[c][l].line;
        a.phi_j[i] = oj.v[l];
        a.phi_k[i] = ok.v[l];
        scratch.phi[line_idx][i] = phiv.v[l];
      }
    }
    mark_fixed(3);  // i-loop address arithmetic
    mark_branch();  // hinted recursion loop branch
  }

  // Final I-outflows back to the per-line scalars.
  for (int c = 0; c < kChains; ++c)
    for (int l = 0; l < kLanes; ++l) {
      const int line_idx = c * kLanes + l;
      if (line_idx >= nlines) continue;
      *lane[c][l].line->phi_i = spu::vec_extract(ini[c], l);
    }

  // ---- Phase 3: flux-moment accumulation (Figure 7) ----
  {
    const Real* phiptr[kBundleLines] = {};
    for (int l = 0; l < nlines; ++l) phiptr[l] = scratch.phi[l].data();
    accumulate_flux(lines, nlines, phiptr);
  }

  if (stats) stats->cells += static_cast<std::uint64_t>(nlines) * it;
}

template void sweep_bundle_simd<double>(const LineArgs<double>*, int, bool,
                                        BundleScratch<double>&, KernelStats*);
template void sweep_bundle_simd<float>(const LineArgs<float>*, int, bool,
                                       BundleScratch<float>&, KernelStats*);

}  // namespace cellsweep::sweep
