// Unit tests for the SPU dual-issue pipeline scheduler: the issue rules
// the Section 5.1 reproduction depends on.
#include <gtest/gtest.h>

#include "cellsim/spu_pipeline.h"
#include "spu/trace.h"

namespace cellsweep::cell {
namespace {

using spu::Op;
using spu::TraceRecorder;

spu::Trace make_trace(const std::vector<spu::TracedInst>& insts,
                      std::uint64_t flops = 0) {
  spu::Trace t;
  t.insts = insts;
  t.flops = flops;
  return t;
}

class PipelineTest : public ::testing::Test {
 protected:
  CellSpec spec_;
  SpuPipeline pipe_{spec_};
};

TEST_F(PipelineTest, EmptyTrace) {
  const ScheduleResult r = pipe_.schedule(spu::Trace{});
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.instructions, 0u);
}

TEST_F(PipelineTest, DpOpsIssueEverySevenCycles) {
  // Independent DP ops: issue-blocked at one per 7 cycles (the paper's
  // "two double-precision flops every seven SPU clocks").
  std::vector<spu::TracedInst> insts;
  for (int i = 0; i < 10; ++i)
    insts.push_back({Op::kFmaDouble, spu::ValueId(100 + i), 0, 0, 0});
  const ScheduleResult r = pipe_.schedule(make_trace(insts, 40));
  // Last issues at cycle 63, retires 13 later.
  EXPECT_EQ(r.issue_cycles, 9u * 7u + 7u);
  EXPECT_EQ(r.cycles, 63u + 13u);
  EXPECT_EQ(r.dual_issues, 0u);  // DP never pairs
  EXPECT_EQ(r.block_stall_cycles, 10u * 6u);
}

TEST_F(PipelineTest, SpFullyPipelined) {
  std::vector<spu::TracedInst> insts;
  for (int i = 0; i < 10; ++i)
    insts.push_back({Op::kFmaSingle, spu::ValueId(100 + i), 0, 0, 0});
  const ScheduleResult r = pipe_.schedule(make_trace(insts, 80));
  // One per cycle: last issues at cycle 9, retires at +6.
  EXPECT_EQ(r.cycles, 9u + 6u);
}

TEST_F(PipelineTest, DualIssuePairsEvenThenOdd) {
  // fixed(even) followed by load(odd): one dual-issue cycle.
  std::vector<spu::TracedInst> insts = {
      {Op::kFixed, 100, 0, 0, 0},
      {Op::kLoad, 101, 0, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_EQ(r.dual_issues, 1u);
  EXPECT_EQ(r.issue_cycles, 1u);  // both in cycle 0
}

TEST_F(PipelineTest, OddThenEvenDoesNotPair) {
  std::vector<spu::TracedInst> insts = {
      {Op::kLoad, 100, 0, 0, 0},
      {Op::kFixed, 101, 0, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_EQ(r.dual_issues, 0u);
}

TEST_F(PipelineTest, DependentPairDoesNotDualIssue) {
  // The odd op consumes the even op's result: cannot share a cycle.
  std::vector<spu::TracedInst> insts = {
      {Op::kFixed, 100, 0, 0, 0},
      {Op::kStore, 101, 100, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_EQ(r.dual_issues, 0u);
}

TEST_F(PipelineTest, TrueDependencyStallsIssue) {
  // load (latency 6) feeding a DP op: the DP op waits for the load.
  std::vector<spu::TracedInst> insts = {
      {Op::kLoad, 100, 0, 0, 0},
      {Op::kFmaDouble, 101, 100, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  // Load issues at 0, result at 6; DP issues at 6, retires at 19.
  EXPECT_EQ(r.cycles, 6u + 13u);
  EXPECT_GT(r.dep_stall_cycles, 0u);
}

TEST_F(PipelineTest, SerialDpChainPacedByLatency) {
  // Chained DP fmas: spaced by the 13-cycle latency, not the 7-cycle
  // issue block.
  std::vector<spu::TracedInst> insts;
  spu::ValueId prev = 0;
  for (int i = 0; i < 5; ++i) {
    insts.push_back({Op::kFmaDouble, spu::ValueId(100 + i), prev, 0, 0});
    prev = spu::ValueId(100 + i);
  }
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_EQ(r.cycles, 4u * 13u + 13u);
}

TEST_F(PipelineTest, UnhintedBranchFlushes) {
  std::vector<spu::TracedInst> insts = {
      {Op::kBranchMiss, 100, 0, 0, 0},
      {Op::kFixed, 101, 0, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  // The fixed op cannot issue until the 19-cycle flush expires.
  EXPECT_GE(r.issue_cycles, 19u);
}

TEST_F(PipelineTest, HintedBranchIsCheap) {
  std::vector<spu::TracedInst> insts = {
      {Op::kBranch, 100, 0, 0, 0},
      {Op::kFixed, 101, 0, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_LE(r.issue_cycles, 2u);
}

TEST_F(PipelineTest, PipeAssignmentCounts) {
  std::vector<spu::TracedInst> insts = {
      {Op::kFmaDouble, 100, 0, 0, 0},
      {Op::kFixed, 101, 0, 0, 0},
      {Op::kLoad, 102, 0, 0, 0},
      {Op::kShuffle, 103, 0, 0, 0},
      {Op::kStore, 104, 0, 0, 0},
  };
  const ScheduleResult r = pipe_.schedule(make_trace(insts));
  EXPECT_EQ(r.even_pipe_insts, 2u);
  EXPECT_EQ(r.odd_pipe_insts, 3u);
  EXPECT_EQ(r.instructions, 5u);
}

TEST_F(PipelineTest, FullyPipelinedDpVariant) {
  SpuPipeline fast(fully_pipelined_dp_spec());
  std::vector<spu::TracedInst> insts;
  for (int i = 0; i < 10; ++i)
    insts.push_back({Op::kFmaDouble, spu::ValueId(100 + i), 0, 0, 0});
  const ScheduleResult slow_r = pipe_.schedule(make_trace(insts, 40));
  const ScheduleResult fast_r = fast.schedule(make_trace(insts, 40));
  EXPECT_LT(fast_r.cycles, slow_r.cycles);
  // Fully pipelined: one DP per cycle.
  EXPECT_EQ(fast_r.issue_cycles, 10u);
}

TEST_F(PipelineTest, FlopsPerCycleAndDualRate) {
  std::vector<spu::TracedInst> insts = {
      {Op::kFmaDouble, 100, 0, 0, 0},
  };
  ScheduleResult r = pipe_.schedule(make_trace(insts, 4));
  EXPECT_GT(r.flops_per_cycle(), 0.0);
  EXPECT_EQ(r.flops, 4u);
  EXPECT_DOUBLE_EQ(r.dual_issue_rate(), 0.0);
}

TEST_F(PipelineTest, DpPeakRateMatchesPaper) {
  // 4 flops / 7 cycles / SPE x 8 SPEs at 3.2 GHz = 14.63 Gflops/s.
  EXPECT_NEAR(spec_.dp_peak_flops(), 14.63e9, 0.01e9);
  EXPECT_NEAR(spec_.sp_peak_flops(), 204.8e9, 0.1e9);
}

}  // namespace
}  // namespace cellsweep::cell
