#include "core/flight_recorder.h"

#include <ostream>
#include <utility>

#include "sim/trace.h"
#include "util/units.h"

namespace cellsweep::core {

void FlightRecorder::record(double t_s, std::string kind, int job_id,
                            int tenant, std::string detail) {
  Event e;
  e.t_s = t_s;
  e.kind = std::move(kind);
  e.job_id = job_id;
  e.tenant = tenant;
  e.detail = std::move(detail);
  util::MutexLock lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    head_ = ring_.size() % capacity_;
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  util::MutexLock lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: head_ is the oldest slot.
  for (std::size_t i = 0; i < capacity_; ++i)
    out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  util::MutexLock lock(mu_);
  return total_ - ring_.size();
}

void FlightRecorder::dump(std::ostream& os) const {
  // One critical section: the window and its dropped count must agree.
  std::vector<Event> evs;
  std::uint64_t lost;
  {
    util::MutexLock lock(mu_);
    evs.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      evs = ring_;
    } else {
      for (std::size_t i = 0; i < capacity_; ++i)
        evs.push_back(ring_[(head_ + i) % capacity_]);
    }
    lost = total_ - ring_.size();
  }
  os << "{\n  \"schema\": \"cellsweep-flightrec-v1\",\n  \"capacity\": "
     << capacity_ << ",\n  \"dropped\": " << lost << ",\n  \"events\": [";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    os << (i ? ",\n    " : "\n    ") << "{\"t_s\": "
       << util::cformat("%.9f", e.t_s) << ", \"kind\": \""
       << sim::json_escape(e.kind) << "\", \"job\": " << e.job_id
       << ", \"tenant\": " << e.tenant << ", \"detail\": \""
       << sim::json_escape(e.detail) << "\"}";
  }
  if (!evs.empty()) os << "\n  ";
  os << "]\n}\n";
}

}  // namespace cellsweep::core
