#include "core/workload.h"

#include "sweep/kernel.h"
#include "sweep/plan.h"
#include "util/aligned.h"

namespace cellsweep::core {

TransferPlan plan_chunk(const ChunkShape& shape) {
  TransferPlan plan;
  const std::size_t raw_row = shape.it * shape.real_bytes;
  // Rows always round up to a legal DMA size (16-byte multiple); the
  // aligned configuration pads to whole 128-byte lines for peak rate.
  plan.row_bytes = shape.aligned_rows
                       ? util::round_up(raw_row, util::kCacheLineBytes)
                       : util::round_up(raw_row, 16);

  // Per line: bulk = nm source rows + nm flux rows + 1 sigma_t row;
  // faces = phi_j and phi_k rows. Puts: nm flux rows plus both faces.
  plan.bulk_get_rows = shape.nlines * (2 * shape.nm + 1);
  plan.face_get_rows = shape.nlines * 2;
  plan.put_rows = shape.nlines * (shape.nm + 2);

  // I-inflow scalars, angle constants and the chunk descriptor ride in
  // one small transfer each way (rounded to a quadword multiple).
  plan.extra_get_bytes = util::round_up(
      shape.nlines * shape.real_bytes + 2 * shape.nm * shape.real_bytes + 64,
      16);
  plan.extra_put_bytes =
      util::round_up(shape.nlines * shape.real_bytes + 16, 16);

  // Local store: the streamed get rows live in LS for the kernel, the
  // flux rows are updated in place (so puts reuse them), and the kernel
  // needs q + Phi scratch lines per line.
  const std::size_t scratch_rows = 2 * shape.nlines;
  plan.ls_buffer_bytes =
      (static_cast<std::size_t>(plan.get_rows()) + scratch_rows) *
          util::round_up(plan.row_bytes, util::kCacheLineBytes) +
      util::round_up(plan.extra_get_bytes, util::kCacheLineBytes);
  return plan;
}

void enumerate_sweep(const sweep::Grid& grid, int angles_per_octant,
                     const sweep::SweepConfig& cfg, bool fixup,
                     const sweep::DiagonalObserver& observer) {
  cfg.validate(grid.kt, angles_per_octant);
  const int nkb = grid.kt / cfg.mk;
  const int nab = angles_per_octant / cfg.mmi;
  const int ndiags = sweep::ChunkPlan::diagonals_per_block(cfg, grid.jt);

  for (int iq = 0; iq < 8; ++iq)
    for (int ab = 0; ab < nab; ++ab)
      for (int kb = 0; kb < nkb; ++kb)
        for (int d = 0; d < ndiags; ++d) {
          const int nlines =
              sweep::ChunkPlan::lines_on_diagonal(cfg, grid.jt, d);
          if (nlines > 0)
            observer(sweep::DiagonalWork{iq, ab, kb, d, nlines, grid.it,
                                         fixup, cfg.kernel});
        }
}

WorkloadTotals audit_workload(const sweep::Grid& grid, int angles_per_octant,
                              const CellSweepConfig& cell_cfg, int nm) {
  WorkloadTotals totals;
  const std::size_t real_bytes =
      cell_cfg.precision == Precision::kDouble ? 8 : 4;

  for (int iter = 0; iter < cell_cfg.sweep.max_iterations; ++iter) {
    const bool fixup = iter >= cell_cfg.sweep.fixup_from_iteration;
    enumerate_sweep(
        grid, angles_per_octant, cell_cfg.sweep, fixup,
        [&](const sweep::DiagonalWork& w) {
          ++totals.diagonals;
          totals.lines += w.nlines;
          totals.cell_solves += static_cast<std::uint64_t>(w.nlines) * w.it;
          const int nchunks = sweep::ChunkPlan::chunk_count(w.nlines);
          totals.chunks += nchunks;
          for (int c = 0; c < nchunks; ++c) {
            const int n = sweep::ChunkPlan::chunk_width(w.nlines, c);
            const TransferPlan plan = plan_chunk(ChunkShape{
                n, w.it, nm, real_bytes, cell_cfg.aligned_rows});
            totals.bytes += static_cast<double>(plan.total_bytes());
          }
          totals.flops += static_cast<std::uint64_t>(w.nlines) * w.it *
                          sweep::flops_per_cell_solve(nm, fixup);
        });
  }
  return totals;
}

}  // namespace cellsweep::core
