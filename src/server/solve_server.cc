#include "server/solve_server.h"

#include <algorithm>
#include <utility>

#include "analysis/lint.h"
#include "core/orchestrator.h"
#include "core/workload.h"
#include "sweep/kernel_simd.h"
#include "sweep/plan.h"
#include "workloads/stencil/stencil.h"

namespace cellsweep::core {

using util::MutexLock;

namespace {

std::size_t real_bytes_of(Precision p) {
  return p == Precision::kDouble ? 8 : 4;
}

}  // namespace

const char* job_kind_name(JobKind k) {
  return k == JobKind::kSweep ? "sweep" : "stencil";
}

const char* admission_reason_name(AdmissionError::Reason r) {
  switch (r) {
    case AdmissionError::Reason::kParse: return "parse";
    case AdmissionError::Reason::kLint: return "lint";
    case AdmissionError::Reason::kLsBudget: return "ls-budget";
    case AdmissionError::Reason::kGridBudget: return "grid-budget";
    case AdmissionError::Reason::kQueueFull: return "queue-full";
  }
  return "unknown";
}

SolveServer::SolveServer(const ServerConfig& cfg)
    : cfg_(cfg),
      base_(CellSweepConfig::from_stage(cfg.stage)),
      pool_(std::max(1, cfg.host_threads)),
      alloc_(base_.chip.num_spes) {
  cfg_.tenants = std::max(1, cfg_.tenants);
  cfg_.queue_limit = std::max<std::size_t>(1, cfg_.queue_limit);
  workers_.reserve(static_cast<std::size_t>(cfg_.tenants));
  for (int t = 0; t < cfg_.tenants; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

SolveServer::~SolveServer() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_queue_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SolveServer::admit(Job& job) const {
  // Admission reuses the static linters, so a job the server accepts
  // can never be one the runtime would reject -- and a rejected job
  // costs zero simulated (and near-zero host) work. All checks run
  // outside the queue lock.
  CellSweepConfig cfg = base_;
  long long cells = 0;
  std::size_t ls_bytes = 0;
  const std::size_t rb = real_bytes_of(cfg.precision);
  if (job.req.kind == JobKind::kSweep) {
    try {
      job.deck = sweep::parse_deck_string(job.req.text);
    } catch (const sweep::DeckError& e) {
      throw AdmissionError(AdmissionError::Reason::kParse, e.what());
    }
    cfg.sweep = job.deck->sweep;
    const analysis::Diagnostics diags = analysis::lint_deck(*job.deck, cfg);
    if (diags.has_errors())
      throw AdmissionError(AdmissionError::Reason::kLint,
                           "deck rejected by lint:\n" + diags.summary());
    const sweep::Grid& g = job.deck->problem.grid();
    cells = g.cells();
    const sweep::SnQuadrature quad(job.deck->sn_order);
    const int nm =
        sweep::MomentTable(quad, 2, job.deck->nm_cap).nm();
    ls_bytes = 4 * 1024 +
               static_cast<std::size_t>(std::max(1, cfg.buffers)) *
                   plan_chunk(ChunkShape{sweep::kBundleLines, g.it, nm, rb,
                                         cfg.aligned_rows})
                       .ls_buffer_bytes;
  } else {
    stencil::StencilSpec spec;
    try {
      spec = stencil::parse_spec_string(job.req.text);
    } catch (const stencil::StencilError& e) {
      throw AdmissionError(AdmissionError::Reason::kParse, e.what());
    }
    const analysis::Diagnostics diags = analysis::lint_stencil(spec, cfg);
    if (diags.has_errors())
      throw AdmissionError(AdmissionError::Reason::kLint,
                           "spec rejected by lint:\n" + diags.summary());
    cells = spec.cells();
    ls_bytes = 1024 +
               static_cast<std::size_t>(std::max(1, cfg.buffers)) *
                   stencil::plan_block(spec, rb, cfg.aligned_rows)
                       .ls_buffer_bytes;
    job.spec = std::make_shared<const stencil::StencilSpec>(std::move(spec));
  }
  if (cfg_.grid_cell_budget > 0 && cells > cfg_.grid_cell_budget)
    throw AdmissionError(
        AdmissionError::Reason::kGridBudget,
        "grid of " + std::to_string(cells) + " cells exceeds the server's " +
            std::to_string(cfg_.grid_cell_budget) + "-cell budget");
  if (cfg_.ls_budget_bytes > 0 && ls_bytes > cfg_.ls_budget_bytes)
    throw AdmissionError(
        AdmissionError::Reason::kLsBudget,
        "simulated-LS footprint of " + std::to_string(ls_bytes) +
            " bytes/SPE exceeds the server's " +
            std::to_string(cfg_.ls_budget_bytes) + "-byte budget");
}

int SolveServer::submit(const JobRequest& req) {
  Job job;
  job.req = req;
  try {
    admit(job);
  } catch (const AdmissionError&) {
    MutexLock lock(mu_);
    ++stats_.rejected;
    throw;
  }
  int id = 0;
  {
    MutexLock lock(mu_);
    if (queue_.size() >= cfg_.queue_limit) {
      ++stats_.rejected;
      throw AdmissionError(
          AdmissionError::Reason::kQueueFull,
          "queue full: " + std::to_string(queue_.size()) +
              " job(s) pending (limit " + std::to_string(cfg_.queue_limit) +
              ")");
    }
    id = next_id_++;
    job.id = id;
    if (job.req.name.empty()) job.req.name = "job-" + std::to_string(id);
    ++stats_.submitted;
    queue_.push_back(std::move(job));
  }
  cv_queue_.notify_one();
  return id;
}

void SolveServer::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      // Predicate re-checked under mu_ on every wakeup (and visibly so
      // to the thread-safety analysis: the guarded reads sit in this
      // function, not in a lambda analyzed without the lock context).
      while (!stopping_ && queue_.empty()) cv_queue_.wait(mu_);
      if (queue_.empty()) return;  // stopping, and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    JobResult res = run_job(job);
    {
      MutexLock lock(mu_);
      res.ok ? ++stats_.completed : ++stats_.failed;
      done_.emplace(job.id, std::move(res));
    }
    cv_done_.notify_all();
  }
}

JobResult SolveServer::run_job(Job& job) {
  try {
    return job.req.kind == JobKind::kSweep ? run_sweep(job)
                                           : run_stencil(job);
  } catch (const std::exception& e) {
    // A failing solve (fault plan kills every SPE, hazard escalation)
    // takes down its job, never the server.
    JobResult r;
    r.id = job.id;
    r.name = job.req.name;
    r.kind = job.req.kind;
    r.ok = false;
    r.error = e.what();
    return r;
  }
}

std::shared_ptr<const CachedPlan> SolveServer::plan_for_sweep(
    const sweep::Deck& deck, const CellSweepConfig& cfg, std::uint64_t key,
    bool& hit) {
  std::shared_ptr<const CachedPlan> plan = cache_.find(key);
  if (plan) {
    hit = true;
    return plan;
  }
  hit = false;
  auto built = std::make_shared<CachedPlan>();
  auto quad = std::make_shared<sweep::SnQuadrature>(deck.sn_order);
  built->nm = sweep::MomentTable(*quad, 2, deck.nm_cap).nm();
  if (cfg.use_spes) {
    // Warm the chunk-cost cache for every shape this deck can produce:
    // diagonals bundle into chunks of 1..kBundleLines lines, and the
    // fixup iterations price differently. The trace recording here is
    // exactly the work a cold run would do lazily.
    auto kernels = std::make_shared<KernelCostModel>(cfg.chip);
    const int it = deck.problem.grid().it;
    for (int fixup = 0; fixup < 2; ++fixup)
      for (int nlines = 1; nlines <= sweep::kBundleLines; ++nlines)
        kernels->chunk_cost(cfg.kernel, cfg.precision, nlines, it,
                            built->nm, fixup != 0, cfg.gotos_eliminated);
    built->kernels = std::move(kernels);
  }
  built->quadrature = std::move(quad);
  return cache_.insert(key, std::move(built));
}

JobResult SolveServer::run_sweep(Job& job) {
  sweep::Deck& deck = *job.deck;
  CellSweepConfig cfg = base_;
  cfg.sweep = deck.sweep;
  cfg.sweep.kernel = cfg.kernel;
  cfg.sweep.pool = &pool_;
  cfg.spe_allocator = &alloc_;
  cfg.min_spes = cfg_.min_spes;

  const std::uint64_t key = PlanCache::fingerprint(
      job_kind_name(JobKind::kSweep), cfg_.stage, job.req.text);
  bool hit = false;
  const std::shared_ptr<const CachedPlan> plan =
      plan_for_sweep(deck, cfg, key, hit);
  cfg.quadrature = plan->quadrature.get();
  cfg.warm_kernels = plan->kernels.get();

  CellSweep3D solver(deck.problem, cfg, deck.sn_order, 2, deck.nm_cap);
  JobResult r;
  r.id = job.id;
  r.name = job.req.name;
  r.kind = JobKind::kSweep;
  r.report = solver.run(job.req.mode);
  r.plan_cache_hit = hit;
  r.ok = true;
  return r;
}

JobResult SolveServer::run_stencil(Job& job) {
  CellSweepConfig cfg = base_;
  cfg.spe_allocator = &alloc_;
  cfg.min_spes = cfg_.min_spes;

  const std::uint64_t key = PlanCache::fingerprint(
      job_kind_name(JobKind::kStencil), cfg_.stage, job.req.text);
  bool hit = false;
  std::shared_ptr<const CachedPlan> plan = cache_.find(key);
  if (plan) {
    hit = true;
  } else {
    auto built = std::make_shared<CachedPlan>();
    built->spec = job.spec;
    plan = cache_.insert(key, std::move(built));
  }

  stencil::CellStencil runner(plan->spec ? *plan->spec : *job.spec, cfg);
  const stencil::StencilReport rep =
      runner.run(job.req.mode, pool_.size(), &pool_);
  JobResult r;
  r.id = job.id;
  r.name = job.req.name;
  r.kind = JobKind::kStencil;
  r.report = rep.run;
  r.checksum = rep.checksum;
  r.residual = rep.residual;
  r.plan_cache_hit = hit;
  r.ok = true;
  return r;
}

JobResult SolveServer::wait(int id) {
  MutexLock lock(mu_);
  if (id < 1 || id >= next_id_)
    throw std::invalid_argument("SolveServer::wait: unknown job id " +
                                std::to_string(id));
  while (done_.find(id) == done_.end()) cv_done_.wait(mu_);
  // The result is copied out while mu_ is still held: done_ may grow
  // (and rebalance its tree) the moment the lock drops.
  return done_.at(id);
}

std::vector<JobResult> SolveServer::drain() {
  MutexLock lock(mu_);
  while (done_.size() != stats_.submitted) cv_done_.wait(mu_);
  std::vector<JobResult> all;
  all.reserve(done_.size());
  for (const auto& [id, res] : done_) all.push_back(res);
  return all;
}

SolveServer::Stats SolveServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cellsweep::core
