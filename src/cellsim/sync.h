// PPE <-> SPE synchronization protocols.
//
// The paper walks through three ways of handing work to SPEs and
// learning when it finishes, and two of its optimization steps hinge on
// the difference:
//   * kMailbox -- the baseline: the PPE writes each SPE's inbound
//     mailbox over MMIO and polls outbound mailboxes. Every message is
//     a serialized uncached bus round trip through the PPE.
//   * kLsPoke -- the Section 5 optimization ("a combination of DMAs and
//     direct local store memory poking"): the PPE writes a control word
//     straight into the SPE's memory-mapped local store and SPEs post
//     completions by DMA into main memory. Cheaper per message, still
//     centralized on the PPE (Fig. 5, 1.48 -> 1.33 s).
//   * kAtomicDistributed -- the Fig. 10 projection: SPEs self-schedule
//     by atomic fetch-and-add on a shared work counter using the MFC
//     atomic unit; the PPE leaves the critical path entirely.
//
// Centralized protocols share one server (the PPE); the distributed
// protocol shares the reservation line of the work counter, which
// bounces between SPE atomic units but costs far less per grant.
#pragma once

#include <cstdint>
#include <string>

#include "cellsim/spec.h"
#include "sim/resource.h"
#include "sim/time.h"
#include "util/concurrency_check.h"

namespace cellsweep::sim {
class CounterSet;
class FaultPlan;
}

namespace cellsweep::cell {

/// Work-dispatch protocol selector (see file comment).
enum class SyncProtocol : std::uint8_t {
  kMailbox,
  kLsPoke,
  kAtomicDistributed,
};

/// Returns a printable protocol name.
const char* sync_protocol_name(SyncProtocol p);

/// Models the cost of granting one work item to an SPE and of the SPE
/// reporting back, under each protocol.
class DispatchFabric {
 public:
  explicit DispatchFabric(const CellSpec& spec);

  /// An SPE asks for (or is handed) the next work item at @p now.
  /// Returns the time at which the SPE holds the item's descriptor.
  sim::Tick acquire_work(sim::Tick now, SyncProtocol protocol);

  /// The SPE signals completion of an item at @p now; returns when the
  /// scheduler (PPE or the shared counter) has absorbed it.
  sim::Tick report_done(sim::Tick now, SyncProtocol protocol);

  std::uint64_t grants() const noexcept { return grants_; }
  std::uint64_t reports() const noexcept { return reports_; }

  /// Arms message-drop injection: centralized dispatch messages
  /// (mailbox writes, LS pokes) may be dropped and resent after a
  /// timeout. Pass nullptr to disarm; a disabled plan is equivalent.
  /// The distributed atomic protocol has no message to lose.
  void attach_faults(const sim::FaultPlan* plan) noexcept { faults_ = plan; }

  // Fault counters (zero unless a plan is armed).
  std::uint64_t dropped_messages() const noexcept { return dropped_messages_; }
  sim::Tick drop_wait_ticks() const noexcept { return drop_wait_ticks_; }

  /// Publishes dispatch counters (grants, reports, per-server request
  /// counts) into @p out. Snapshot only.
  void publish_counters(sim::CounterSet& out) const;

  void reset() noexcept;

 private:
  /// Simulated time is advanced by exactly one tenant thread; the
  /// latency-server queues are plain fields with no lock. The guard
  /// makes a cross-thread acquire/report a deterministic report
  /// instead of corrupted simulated clocks.
  util::ThreadConfined confined_;

  CellSpec spec_;
  sim::LatencyServer ppe_mailbox_;
  sim::LatencyServer ppe_poke_;
  sim::LatencyServer atomic_unit_;
  std::uint64_t grants_ = 0;
  std::uint64_t reports_ = 0;
  // Fault injection (inert unless armed); fault_seq_ numbers every
  // centralized message sent, making drop decisions a pure function of
  // message order.
  const sim::FaultPlan* faults_ = nullptr;
  std::uint64_t fault_seq_ = 0;
  std::uint64_t dropped_messages_ = 0;
  sim::Tick drop_wait_ticks_ = 0;

  /// Runs one centralized message through @p server, retrying dropped
  /// sends after the resend timeout when a fault plan is armed.
  sim::Tick send_message(sim::LatencyServer& server, sim::Tick now,
                         sim::Tick latency, sim::Tick occupancy);
};

}  // namespace cellsweep::cell
