// Tests for the comparator processor models and the roofline bounds.
#include <gtest/gtest.h>

#include "perfmodel/bounds.h"
#include "perfmodel/processors.h"

namespace cellsweep::perf {
namespace {

// The 50-cubed / 12-iteration workload in cell-solves and flops (nm=6).
constexpr std::uint64_t kSolves = 125000ull * 48 * 12;
constexpr std::uint64_t kFlops = kSolves * 40;

TEST(Processors, PpeGccMatchesPaperStartingPoint) {
  EXPECT_NEAR(ppe_gcc().seconds(kSolves, kFlops), 22.3, 0.7);
}

TEST(Processors, PpeXlcMatchesPaper) {
  EXPECT_NEAR(ppe_xlc().seconds(kSolves, kFlops), 19.9, 0.7);
}

TEST(Processors, XlcFasterThanGcc) {
  EXPECT_LT(ppe_xlc().seconds(kSolves, kFlops),
            ppe_gcc().seconds(kSolves, kFlops));
}

TEST(Processors, Power5IsBestHeavyIron) {
  const double p5 = power5().seconds(kSolves, kFlops);
  for (const auto& proc : figure11_lineup())
    EXPECT_GE(proc.seconds(kSolves, kFlops), p5 * 0.999) << proc.name;
}

TEST(Processors, Figure11Ratios) {
  // Cell final time 1.33 s: Power5 ~4.5x, Opteron ~5.5x, conventional
  // processors ~20x (paper Section 6).
  const double cell = 1.33;
  EXPECT_NEAR(power5().seconds(kSolves, kFlops) / cell, 4.5, 1.0);
  EXPECT_NEAR(opteron().seconds(kSolves, kFlops) / cell, 5.5, 1.2);
  for (const auto& conv : {itanium2(), xeon(), ppc970()}) {
    const double ratio = conv.seconds(kSolves, kFlops) / cell;
    EXPECT_GT(ratio, 14.0) << conv.name;
    EXPECT_LT(ratio, 28.0) << conv.name;
  }
}

TEST(Processors, RooflineTakesMaxOfLegs) {
  ProcessorModel m{"test", 1e9, 2.0, 1.0, 1e9, 100.0};
  // Compute leg: 1e9 flops / 2e9 = 0.5 s; memory: 1e7 solves*100/1e9 = 1 s.
  EXPECT_DOUBLE_EQ(m.seconds(10'000'000, 1'000'000'000), 1.0);
  // Fewer solves: compute-bound.
  EXPECT_DOUBLE_EQ(m.seconds(1'000'000, 1'000'000'000), 0.5);
}

TEST(Processors, LineupHasFiveMachines) {
  const auto lineup = figure11_lineup();
  EXPECT_EQ(lineup.size(), 5u);
  for (const auto& p : lineup) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.clock_hz, 0.0);
    EXPECT_GT(p.achievable_fraction, 0.0);
    EXPECT_LT(p.achievable_fraction, 0.2);  // branchy kernel: low % peak
  }
}

TEST(Bounds, PaperSection6Numbers) {
  // 17.6 GB at 25.6 GB/s -> 0.7 s lower bound.
  cell::CellSpec spec;
  const CellBounds b = cell_bounds(spec, 17.6e9, /*compute_cycles=*/17.4e9);
  EXPECT_NEAR(b.memory_bound_s, 0.6875, 1e-4);
  EXPECT_NEAR(b.compute_bound_s, 0.68, 0.01);
  EXPECT_DOUBLE_EQ(b.bound_s, std::max(b.memory_bound_s, b.compute_bound_s));
}

TEST(Bounds, ScalesWithTraffic) {
  cell::CellSpec spec;
  const CellBounds a = cell_bounds(spec, 10e9, 1e9);
  const CellBounds b = cell_bounds(spec, 20e9, 1e9);
  EXPECT_NEAR(b.memory_bound_s / a.memory_bound_s, 2.0, 1e-12);
}

}  // namespace
}  // namespace cellsweep::perf
