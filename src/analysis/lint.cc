#include "analysis/lint.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cellsim/mfc.h"
#include "core/workload.h"
#include "sweep/kernel_simd.h"
#include "sweep/quadrature.h"
#include "util/aligned.h"
#include "workloads/stencil/stencil.h"

namespace cellsweep::analysis {

namespace {

/// Mirrors TimingEngine's request construction for one transfer class,
/// so Mfc::validate judges exactly the commands the run would submit.
cell::DmaRequest lint_request(const core::CellSweepConfig& cfg,
                              const core::TransferPlan& plan,
                              cell::DmaDir dir, std::size_t bytes_total) {
  cell::DmaRequest req;
  req.dir = dir;
  req.alignment = cfg.aligned_rows ? 128 : 16;
  req.banks_touched =
      cfg.bank_offsets ? cfg.chip.memory_banks : cfg.chip.banks_without_offsets;
  req.total_bytes =
      util::round_up(std::max<std::size_t>(bytes_total, 16), 16);
  if (!cfg.dma_lists) {
    req.as_list = false;
    req.element_bytes = plan.row_bytes;
  } else {
    req.as_list = true;
    // At least one row, at most the 16 KB command cap; when a row
    // itself exceeds the cap, keep the row size so Mfc::validate
    // rejects the shape instead of silently shrinking it.
    req.element_bytes = util::round_up(
        std::max(std::min<std::size_t>(cfg.dma_granularity,
                                       cfg.chip.dma_max_bytes),
                 plan.row_bytes),
        16);
  }
  return req;
}

/// The workload-independent machine checks, shared by lint_deck and
/// lint_stencil: the LS budget of @p plan's staging buffer under the
/// configured buffer count (plus @p resident_bytes of workload
/// constants and the code reserve), the MFC tag budget of the buffer
/// rotation, and the DMA legality of the three transfer classes the
/// StreamingPipeline would submit.
void lint_machine(Diagnostics& diags, const core::CellSweepConfig& cfg,
                  const core::TransferPlan& plan, std::size_t resident_bytes,
                  const std::string& ls_where) {
  const int buffers = std::max(cfg.buffers, 1);
  const std::size_t code_reserve = 48 * 1024;
  const std::size_t per_buffer = util::round_up(plan.ls_buffer_bytes, 128);
  const std::size_t need = code_reserve + resident_bytes +
                           static_cast<std::size_t>(buffers) * per_buffer;
  if (need > cfg.chip.local_store_bytes)
    diags.error("ls-budget", ls_where,
                std::to_string(buffers) + " staging buffer(s) of " +
                    std::to_string(per_buffer) + " bytes plus " +
                    std::to_string(code_reserve + resident_bytes) +
                    " resident bytes need " + std::to_string(need) +
                    " bytes; the local store holds " +
                    std::to_string(cfg.chip.local_store_bytes));

  // MFC tag budget: gets use tags [0, buffers), puts [buffers,
  // 2*buffers) -- the rotation must fit the CBEA's tag-group space.
  if (2 * static_cast<unsigned>(buffers) > cell::kMfcTagGroups)
    diags.error("tag-budget", "buffers " + std::to_string(buffers),
                "buffer rotation needs " + std::to_string(2 * buffers) +
                    " MFC tag groups; the CBEA provides " +
                    std::to_string(cell::kMfcTagGroups));

  // DMA command legality, judged by the real MFC validator on the same
  // requests the streaming pipeline would submit for one chunk.
  if (cfg.dma_granularity % 16 != 0)
    diags.error("dma-granularity",
                "dma_granularity " + std::to_string(cfg.dma_granularity),
                "DMA granularity must be a multiple of 16 bytes");
  cell::Eib eib(cfg.chip);
  cell::Mic mic(cfg.chip);
  cell::Mfc mfc(cfg.chip, &eib, &mic, "lint");
  const struct {
    const char* name;
    cell::DmaDir dir;
    std::size_t bytes;
  } classes[] = {
      {"bulk-get", cell::DmaDir::kGet, plan.bulk_get_bytes()},
      {"face-get", cell::DmaDir::kGet, plan.face_get_bytes()},
      {"put", cell::DmaDir::kPut, plan.put_bytes()},
  };
  for (const auto& c : classes) {
    try {
      mfc.validate(lint_request(cfg, plan, c.dir, c.bytes));
    } catch (const cell::DmaError& e) {
      diags.error("dma-shape", std::string(c.name), e.what());
    }
  }
}

}  // namespace

Diagnostics lint_deck(const sweep::Deck& deck,
                      const core::CellSweepConfig& cfg) {
  Diagnostics diags;
  const sweep::Grid& grid = deck.problem.grid();

  if (grid.it < 1 || grid.jt < 1 || grid.kt < 1) {
    diags.error("grid", "it/jt/kt",
                "grid extents must be positive (got " +
                    std::to_string(grid.it) + " x " + std::to_string(grid.jt) +
                    " x " + std::to_string(grid.kt) + ")");
    return diags;  // nothing downstream is meaningful
  }

  // Quadrature / moment consistency. The LQn builder accepts the
  // orders Sweep3D supports; everything after needs the angle count.
  int mm = 0;
  int nm = deck.nm_cap;
  try {
    const sweep::SnQuadrature quad(deck.sn_order);
    mm = quad.angles_per_octant();
    // Runners build the moment table at the benchmark convention of
    // P2 scattering (or higher if the deck's materials demand it).
    const int l_max = std::max(2, deck.problem.max_scattering_order());
    nm = sweep::MomentTable(quad, l_max, deck.nm_cap).nm();
  } catch (const std::exception& e) {
    diags.error("quadrature", "sn " + std::to_string(deck.sn_order),
                e.what());
  }

  // Blocking factors (MK | KT, MMI | angle count, iteration counts).
  if (mm > 0) {
    try {
      deck.sweep.validate(grid.kt, mm);
    } catch (const std::exception& e) {
      diags.error("blocking",
                  "mk " + std::to_string(deck.sweep.mk) + " / mmi " +
                      std::to_string(deck.sweep.mmi),
                  std::string(e.what()));
    }
  }

  if (nm < 1) {
    diags.error("moments", "moments " + std::to_string(deck.nm_cap),
                "at least one flux moment is required");
    return diags;
  }

  // Local-store budget: the largest chunk's staging buffer, times the
  // buffer count, plus the resident constants and the code reserve,
  // must fit in one SPE's local store -- the budget the paper's port
  // had to respect by hand (Section 2: 256 KB for code AND data).
  const std::size_t real_bytes =
      cfg.precision == core::Precision::kDouble ? 8 : 4;
  const core::TransferPlan plan = core::plan_chunk(core::ChunkShape{
      sweep::kBundleLines, grid.it, nm, real_bytes, cfg.aligned_rows});
  lint_machine(diags, cfg, plan, 4 * 1024, "it " + std::to_string(grid.it));

  return diags;
}

Diagnostics lint_stencil(const stencil::StencilSpec& spec,
                         const core::CellSweepConfig& cfg) {
  Diagnostics diags;

  // Grid / blocking consistency: the same ranges StencilSpec::validate
  // enforces at parse time, re-checked here so hand-built specs (and
  // lint tests) get findings instead of exceptions.
  try {
    spec.validate();
  } catch (const stencil::StencilError& e) {
    diags.error("spec", spec.origin, e.what());
    return diags;  // nothing downstream is meaningful
  }

  // Machine fit of one block's working set, judged on the exact
  // transfer plan the stencil runner would stream.
  const std::size_t real_bytes =
      cfg.precision == core::Precision::kDouble ? 8 : 4;
  const core::TransferPlan plan =
      stencil::plan_block(spec, real_bytes, cfg.aligned_rows);
  lint_machine(diags, cfg, plan, 1024,
               "bx " + std::to_string(spec.bx) + " by " +
                   std::to_string(spec.by) + " bz " +
                   std::to_string(spec.bz));
  return diags;
}

}  // namespace cellsweep::analysis
