// Seeded open-system arrival schedules for the solve server.
//
// The throughput bench and the serve loop both drained a closed,
// pre-loaded backlog, which says nothing about latency under sustained
// load (the paper's section 7 migration argument needs the machine
// driven *at utilization*). ArrivalPlan is the single source of truth
// for when jobs arrive: an ArrivalSpec (parsed from the
// `--arrivals=<spec>` CLI grammar or built directly) describes each
// tenant's arrival process, and the plan answers "when does tenant t's
// k-th job arrive?" deterministically from util::SplitMix64.
//
// Determinism contract (same shape as sim::FaultPlan): every arrival
// time is a pure hash of (seed, tenant, sequence) -- no shared stream,
// no global state -- so the schedule is identical across runs, across
// host thread counts, and across `--tenants` settings. Same seed =>
// byte-identical schedules and JobTrace event order; different seeds
// => different schedules. Tests pin both.
//
// A default-constructed (or tenant-less) plan is *disabled*: consumers
// gate the open-system path on enabled(), so a server without arrivals
// behaves exactly as the closed-backlog code did.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cellsweep::core {

/// Thrown for malformed `--arrivals=<spec>` strings.
class ArrivalSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// How one tenant's stream generates arrival times.
enum class ArrivalKind : std::uint8_t {
  kRate = 1,   ///< Poisson process: seeded exponential inter-arrival gaps
  kBurst = 2,  ///< all jobs arrive at one instant (closed burst)
  kTrace = 3,  ///< explicit, caller-supplied arrival offsets
};

/// One tenant's arrival stream.
struct TenantArrivals {
  int tenant = -1;
  ArrivalKind kind = ArrivalKind::kRate;
  /// kRate: mean arrival rate in jobs per second (> 0).
  double rate_per_s = 0.0;
  /// kRate / kBurst: number of jobs the stream submits.
  std::uint64_t count = 0;
  /// kRate / kBurst: stream origin in seconds (first gap starts here /
  /// the burst instant).
  double start_s = 0.0;
  /// kTrace: explicit nondecreasing arrival times in seconds.
  std::vector<double> times;
};

/// Everything the arrival process can be told to do.
struct ArrivalSpec {
  std::uint64_t seed = 1;
  std::vector<TenantArrivals> tenants;

  /// True when any stream produces jobs. Disabled specs keep consumers
  /// on the exact closed-backlog code paths.
  bool any() const noexcept { return !tenants.empty(); }
};

/// Parses the `--arrivals=<spec>` grammar: comma-separated `key=value`
/// entries:
///
///   seed=42                     gap-decision seed (default 1)
///   tenant=0:rate:8:24          tenant 0 submits 24 jobs, exponential
///                               inter-arrival gaps at mean 8 jobs/s
///   tenant=0:rate:8:24:0.5      ... with the stream starting at 0.5 s
///   tenant=1:burst:6            tenant 1 submits 6 jobs at t = 0
///   tenant=1:burst:6:0.25      ... at t = 0.25 s instead
///   tenant=2:trace:0.1;0.5;0.9  explicit arrival times (semicolon-
///                               separated, nondecreasing seconds)
///
/// Each tenant index may appear once. Throws ArrivalSpecError with the
/// offending entry on malformed input.
ArrivalSpec parse_arrival_spec(const std::string& text);

/// One scheduled arrival: tenant @p tenant's @p seq-th job (0-based
/// within its stream) arrives @p at_s seconds after the stream opens.
struct Arrival {
  double at_s = 0.0;
  int tenant = -1;
  std::uint64_t seq = 0;
};

/// The deterministic arrival schedule (see file comment).
class ArrivalPlan {
 public:
  /// Disabled plan: no streams, empty schedule.
  ArrivalPlan() = default;

  /// Validates @p spec (tenant indices unique and >= 0, rates > 0,
  /// trace times finite/nonnegative/nondecreasing); throws
  /// ArrivalSpecError on nonsense.
  explicit ArrivalPlan(const ArrivalSpec& spec);

  bool enabled() const noexcept { return enabled_; }
  const ArrivalSpec& spec() const noexcept { return spec_; }

  /// Number of tenant streams in the spec.
  std::size_t stream_count() const noexcept { return spec_.tenants.size(); }
  /// Jobs tenant @p tenant submits (0 for tenants without a stream).
  std::uint64_t count(int tenant) const;
  /// Total jobs across all streams.
  std::uint64_t total() const;

  /// Arrival time of tenant @p tenant's @p seq-th job, in seconds. A
  /// pure function of (seed, tenant, seq): O(seq) for rate streams (the
  /// gaps are prefix-summed on demand), O(1) otherwise. Throws
  /// std::out_of_range past the stream's count.
  double arrival_s(int tenant, std::uint64_t seq) const;

  /// The full schedule merged across tenants, sorted by
  /// (at_s, tenant, seq) -- the canonical submission order every
  /// consumer replays, which is what makes JobTrace event order
  /// reproducible across `--tenants`/`--threads`.
  std::vector<Arrival> schedule() const;

 private:
  /// Exponential inter-arrival gap ahead of (tenant, seq); pure.
  double gap_s(const TenantArrivals& t, std::uint64_t seq) const;
  const TenantArrivals* stream(int tenant) const;

  ArrivalSpec spec_;
  bool enabled_ = false;
};

}  // namespace cellsweep::core
