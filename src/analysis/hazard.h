// Machine-model hazard checker: a cell::MachineObserver that replays
// the CBEA streaming discipline over the orchestrator's event stream
// and reports violations through a Diagnostics sink.
//
// The paper's hardest bugs (Sections 2 and 5) are protocol bugs, not
// flop-count bugs: reusing a double buffer before its tag group
// drained, blowing the 256 KB local-store budget with one chunk shape,
// or racing DMA against the kernel. The timing engine *prices* those
// mechanisms; this checker *verifies* them, so a refactor that silently
// breaks the streaming protocol fails structurally instead of shipping
// a model that reads buffers whose `get` never completed.
//
// Enforced invariants (each maps to a diagnostic rule id):
//   read-before-get-complete   kernel reads an LS range whose staging
//                              get has not completed
//   buffer-overwritten-before-use  the range was re-staged for a later
//                              chunk before this kernel consumed it
//   use-before-tag-wait        dependent use without an observed MFC
//                              tag-group wait covering the DMA
//   overwrite-in-flight-put    a get targets a range an in-flight put
//                              is still reading
//   reuse-before-tag-wait      the prior put completed but was never
//                              tag-waited before the range was reused
//   overlapping-dma            two concurrent DMAs touch the same LS
//                              bytes and at least one writes
//   kernel-overlaps-put        a writeback is still draining from a
//                              range the kernel is updating
//   kernel-reads-unstaged      a kernel ran over a range nothing staged
//   dma-outside-region         a DMA's LS range is not inside any
//                              allocated region
//   ls-alignment / ls-overflow / ls-overlap   allocation discipline
//   grant-before-request, dispatch-serialization,
//   work-counter-non-monotone  dispatch-fabric protocol invariants
//   report-before-writeback    completion reported before the
//                              writeback's tag group drained
//   tag-wait-incomplete        a tag wait resolved before every command
//                              in the group completed
//   completion-never-observed  a DMA's completion was never observed by
//                              any tag wait (end-of-run check)
//
// Observation only: the checker never feeds anything back into the
// model; attaching it leaves every simulated tick bit-identical (a test
// pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "cellsim/observer.h"
#include "cellsim/spec.h"

namespace cellsweep::analysis {

/// See file comment. One checker instance covers one run of one chip.
class HazardChecker : public cell::MachineObserver {
 public:
  /// @p diags receives the findings (not owned, must outlive the
  /// checker). @p spec provides LS capacity and alignment rules.
  HazardChecker(Diagnostics* diags, const cell::CellSpec& spec);

  // -- cell::MachineObserver ------------------------------------------
  void on_ls_reset(int spe) override;
  void on_ls_alloc(int spe, const cell::LocalStore::Region& region,
                   std::size_t ls_capacity) override;
  void on_dma(int spe, const cell::DmaRequest& req, sim::Tick submitted,
              const cell::DmaCompletion& completion,
              std::uint64_t token) override;
  void on_tag_wait(int spe, unsigned tag, sim::Tick at) override;
  void on_kernel(int spe, std::size_t ls_offset, std::size_t ls_bytes,
                 sim::Tick start, sim::Tick end, std::uint64_t token) override;
  void on_grant(int spe, cell::SyncProtocol protocol, sim::Tick requested,
                sim::Tick granted, std::uint64_t sequence) override;
  void on_report(int spe, cell::SyncProtocol protocol, sim::Tick at,
                 std::uint64_t token) override;
  void on_run_end(sim::Tick at) override;

  const Diagnostics& diagnostics() const noexcept { return *diags_; }

 private:
  /// One tracked DMA command.
  struct Dma {
    cell::DmaDir dir;
    unsigned tag = 0;
    std::size_t lo = 0, hi = 0;  ///< LS byte range [lo, hi)
    sim::Tick submitted = 0;
    sim::Tick done = 0;
    std::uint64_t token = 0;
    bool observed = false;      ///< a tag wait has covered it
    sim::Tick observed_at = 0;  ///< earliest covering wait
  };

  struct SpeState {
    std::size_t capacity = 0;
    std::vector<cell::LocalStore::Region> regions;
    std::vector<Dma> dmas;
  };

  SpeState& spe_state(int spe);
  /// "SPE<k> <region name>" for the range [lo, hi).
  std::string where(int spe, std::size_t lo, std::size_t hi) const;

  Diagnostics* diags_;
  cell::CellSpec spec_;
  std::vector<SpeState> spes_;
  // Dispatch-fabric state (shared across SPEs).
  bool saw_grant_ = false;
  std::uint64_t last_sequence_ = 0;
  sim::Tick last_grant_ = 0;
};

}  // namespace cellsweep::analysis
