#include "cellsim/cell_processor.h"

namespace cellsweep::cell {

Spe::Spe(int index, const CellSpec& spec, Eib* eib, Mic* mic)
    : index_(index),
      spec_(spec),
      ls_(spec.local_store_bytes),
      mfc_(spec, eib, mic, "mfc" + std::to_string(index)) {}

sim::Tick Spe::compute(sim::Tick now, double cycles) {
  const sim::Tick dt = spec_.cycles(cycles);
  busy_ += dt;
  return now + dt;
}

void Spe::reset() noexcept {
  ls_.reset();
  mfc_.reset();
  busy_ = 0;
  work_items_ = 0;
}

CellProcessor::CellProcessor(const CellSpec& spec)
    : spec_(spec),
      eib_(spec),
      mic_(spec),
      dispatch_(spec),
      pipeline_(spec) {
  spes_.reserve(spec.num_spes);
  for (int i = 0; i < spec.num_spes; ++i)
    spes_.push_back(std::make_unique<Spe>(i, spec, &eib_, &mic_));
}

void CellProcessor::reset() {
  eib_.reset();
  mic_.reset();
  dispatch_.reset();
  for (auto& s : spes_) s->reset();
}

}  // namespace cellsweep::cell
