// Process-level wavefront decomposition (the paper's parallelism
// level 1, Figures 1-3).
//
// Grid cells are distributed over a 2-D (px x py) array of ranks; each
// rank owns a 3-D tile complete in K. Sweeps propagate as wavefronts:
// each block of MK K-planes and MMI angles triggers a RECV of I- and
// J-inflows from the upstream neighbors and a SEND of outflows
// downstream, exactly the structure of Figure 2's sweep() pseudo-code.
// The per-rank computation reuses SweepState with an MpiBoundary
// installed, so the physics code is byte-for-byte the same as the
// serial path -- the migration-path argument of the paper.
#pragma once

#include <vector>

#include "msg/cart_grid.h"
#include "msg/communicator.h"
#include "sweep/sweeper.h"

namespace cellsweep::sweep {

/// Extracts the sub-problem of the tile [i0, i0+ni) x [j0, j0+nj) x
/// full K from @p global. Materials are shared; cell assignment is
/// sliced.
Problem extract_tile(const Problem& global, int i0, int ni, int j0, int nj);

/// Result of a distributed solve, gathered on every rank.
struct MpiSolveResult {
  SolveResult solve;
  LeakageTally leakage;               ///< global (reduced) leakage
  std::vector<double> flux0;          ///< global scalar flux [k][j][i]
  double absorption = 0.0;            ///< global absorption rate
};

/// Runs source iteration on @p world.size() ranks over a px x py
/// decomposition of @p global. Every rank returns the same gathered
/// result. @p px * py must equal the world size, and px / py must
/// divide it / jt.
MpiSolveResult solve_mpi(msg::World& world, const Problem& global,
                         const SnQuadrature& quad, int l_max,
                         const SweepConfig& cfg, int px, int py,
                         int nm_cap = 0);

}  // namespace cellsweep::sweep
