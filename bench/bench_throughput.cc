// Multi-tenant solve throughput: what does one simulated Cell chip
// sustain when several solves share it?
//
// PR 5 showed the paper-size sweep is dependency-chain-bound: past ~4
// SPEs the wavefront cannot keep the chip busy, so a solo tenant leaves
// most of it slack. core::SolveServer exploits that by running tenants
// concurrently under the worst-fit SpeAllocator. This bench prices the
// steady-state regimes of that sharing deterministically:
//
//   * each job's service time is measured by a solo run against a chip
//     where a blocker claim pins all but `width` SPEs -- exactly the
//     static partition a tenant converges to under allocator pressure
//     (fair_share = spes / tenants);
//   * a discrete-event queue model then replays a mixed sweep+stencil
//     job stream through 1 tenant (the whole chip, jobs back to back)
//     and 2 tenants (half the chip each, jobs picked FIFO), yielding
//     makespan, jobs/s and p50/p95/p99 completion latency in
//     *simulated* seconds -- aggregate and per tenant, through the same
//     util::Histogram the live SolveServer uses, so bench and server
//     quantize latency identically.
//
// Everything is a pure function of the deck, so the emitted
// BENCH_throughput.json is byte-stable and perf-gated in CI like the
// fig5 ladder. Host threading never enters the numbers.
//
// The closed backlog answers "how fast does a full queue drain" but
// says nothing about latency under sustained load, so a second,
// *open-system* model sweeps offered load: a seeded core::ArrivalPlan
// rate stream (the same generator `deck_runner serve --arrivals` and
// the soak test replay) feeds the 2-tenant fair-share partition at a
// ladder of utilizations, and each point reports completion-latency
// percentiles (sojourn time: arrival -> completion). The resulting
// latency-vs-load curve -- flat until the knee, then the queueing
// blow-up past saturation -- lands in BENCH_latency_load.json with the
// knee pinned as its own metric, perf-gated like everything else.
#include <algorithm>

#include "bench/bench_common.h"
#include "core/arrival.h"
#include "core/spe_allocator.h"
#include "util/histogram.h"
#include "workloads/stencil/stencil.h"

namespace {

using namespace cellsweep;

/// A config whose allocator leaves only @p width SPEs claimable. The
/// blocker claim must outlive the run; release it afterwards.
core::SpeAllocator::Claim block_down_to(core::SpeAllocator& alloc,
                                        int width) {
  const int total = alloc.num_spes();
  if (width >= total) return {};
  return alloc.claim(total - width, total - width);
}

/// Simulated seconds for one paper-deck sweep solve on @p width SPEs.
double sweep_service_s(int cube, int width) {
  const sweep::Problem problem = sweep::Problem::benchmark_cube(cube);
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  cfg.sweep.max_iterations = 12;
  cfg.sweep.fixup_from_iteration = 10;
  int mk = 1;
  for (int d = 1; d <= cfg.sweep.mk; ++d)
    if (cube % d == 0) mk = d;
  cfg.sweep.mk = mk;
  core::SpeAllocator alloc(cfg.chip.num_spes);
  core::SpeAllocator::Claim blocker = block_down_to(alloc, width);
  cfg.spe_allocator = &alloc;
  core::CellSweep3D runner(problem, cfg);
  const double s = runner.run(core::RunMode::kTraceDriven).seconds;
  if (!blocker.empty()) alloc.release(blocker);
  return s;
}

/// Simulated seconds for one stencil solve on @p width SPEs.
double stencil_service_s(int cube, int width) {
  stencil::StencilSpec spec;
  spec.nx = spec.ny = spec.nz = cube;
  int b = 2;
  for (int d = 2; d <= 8; ++d)
    if (cube % d == 0) b = d;
  spec.bx = spec.by = spec.bz = b;
  spec.origin = "<bench>";
  spec.validate();
  core::CellSweepConfig cfg = core::CellSweepConfig::from_stage(
      core::OptimizationStage::kSpeLsPoke);
  core::SpeAllocator alloc(cfg.chip.num_spes);
  core::SpeAllocator::Claim blocker = block_down_to(alloc, width);
  cfg.spe_allocator = &alloc;
  stencil::CellStencil runner(spec, cfg);
  const double s = runner.run(core::RunMode::kTraceDriven).run.seconds;
  if (!blocker.empty()) alloc.release(blocker);
  return s;
}

struct QueueOutcome {
  double makespan_s = 0;
  std::vector<double> latency_s;  ///< per-job completion time
  std::vector<int> worker;        ///< tenant that served each job
};

/// FIFO queue through @p tenants equal workers: every job is present at
/// t=0, the earliest-free worker (lowest index on ties) takes the next.
QueueOutcome run_queue(int tenants, const std::vector<double>& service_s) {
  QueueOutcome out;
  std::vector<double> free_at(static_cast<std::size_t>(tenants), 0.0);
  out.latency_s.reserve(service_s.size());
  out.worker.reserve(service_s.size());
  for (const double s : service_s) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < free_at.size(); ++i)
      if (free_at[i] < free_at[w]) w = i;
    free_at[w] += s;
    out.latency_s.push_back(free_at[w]);
    out.worker.push_back(static_cast<int>(w));
    out.makespan_s = std::max(out.makespan_s, free_at[w]);
  }
  return out;
}

/// Aggregate latency histogram (same binning as the live server's
/// per-tenant latency families, so percentiles quantize identically).
util::Histogram latency_hist(const QueueOutcome& q, int tenant = -1) {
  util::Histogram h;
  for (std::size_t i = 0; i < q.latency_s.size(); ++i)
    if (tenant < 0 || q.worker[i] == tenant) h.add(q.latency_s[i]);
  return h;
}

void write_metric(std::ostream& os, const char* key, double v,
                  bool first = false) {
  os << (first ? "" : ",") << "\n       \"" << key
     << "\": " << util::cformat("%.17g", v);
}

/// One point on the latency-vs-load curve.
struct LoadPoint {
  double offered_load = 0;   ///< offered rate / capacity (rho)
  double makespan_s = 0;     ///< first arrival -> last completion
  util::Histogram latency;   ///< sojourn times (arrival -> completion)
};

/// Open-system FIFO queue: jobs arrive per @p plan (one seeded rate
/// stream), alternate between @p svc_a and @p svc_b service times, and
/// the earliest-free of @p tenants workers takes each in arrival
/// order -- start = max(arrival, worker free), latency = completion -
/// arrival. Pure in all inputs, so the curve is byte-stable.
LoadPoint run_open_queue(const core::ArrivalPlan& plan, int tenants,
                         double svc_a, double svc_b) {
  LoadPoint out;
  std::vector<double> free_at(static_cast<std::size_t>(tenants), 0.0);
  std::uint64_t k = 0;
  for (const core::Arrival& a : plan.schedule()) {
    std::size_t w = 0;
    for (std::size_t i = 1; i < free_at.size(); ++i)
      if (free_at[i] < free_at[w]) w = i;
    const double start = std::max(free_at[w], a.at_s);
    const double done = start + (k % 2 == 0 ? svc_a : svc_b);
    free_at[w] = done;
    out.latency.add(done - a.at_s);
    out.makespan_s = std::max(out.makespan_s, done);
    ++k;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_bench_args(argc, argv);
  if (!opt.ok) return 2;
  const int cube = opt.cube_or(50);
  const int stencil_cube = std::min(cube, 32);
  constexpr int kSweepJobs = 4;
  constexpr int kStencilJobs = 4;
  constexpr int kTenants = 2;
  const int chip_spes = core::CellSweepConfig::from_stage(
                            core::OptimizationStage::kSpeLsPoke)
                            .chip.num_spes;
  const int share = std::max(1, chip_spes / kTenants);

  bench::print_header(
      "Multi-tenant throughput: " + std::to_string(kSweepJobs) + " sweep (" +
      std::to_string(cube) + "^3) + " + std::to_string(kStencilJobs) +
      " stencil (" + std::to_string(stencil_cube) + "^3) jobs");

  // Service times at full chip width and at the 2-tenant fair share.
  const double sweep_full = sweep_service_s(cube, chip_spes);
  const double sweep_half = sweep_service_s(cube, share);
  const double sten_full = stencil_service_s(stencil_cube, chip_spes);
  const double sten_half = stencil_service_s(stencil_cube, share);

  // The mixed stream: sweep and stencil jobs interleaved, all queued at
  // t=0 (closed system -- the server drains a backlog).
  std::vector<double> stream_full, stream_half;
  for (int i = 0; i < kSweepJobs + kStencilJobs; ++i) {
    const bool sweep_job = i % 2 == 0;  // kSweepJobs == kStencilJobs
    stream_full.push_back(sweep_job ? sweep_full : sten_full);
    stream_half.push_back(sweep_job ? sweep_half : sten_half);
  }
  const std::size_t jobs = stream_full.size();

  const QueueOutcome serial = run_queue(1, stream_full);
  const QueueOutcome shared = run_queue(kTenants, stream_half);

  struct Row {
    const char* name;
    const QueueOutcome* q;
  };
  const Row rows[] = {{"serial-1-tenant", &serial}, {"2-tenant", &shared}};

  util::TextTable table({"regime", "makespan [s]", "jobs/s", "p50 [s]",
                         "p95 [s]", "p99 [s]"});
  for (const Row& row : rows) {
    const util::Histogram h = latency_hist(*row.q);
    table.add_row({row.name, bench::fmt("%.4f", row.q->makespan_s),
                   bench::fmt("%.4f", static_cast<double>(jobs) /
                                          row.q->makespan_s),
                   bench::fmt("%.4f", h.percentile(0.50)),
                   bench::fmt("%.4f", h.percentile(0.95)),
                   bench::fmt("%.4f", h.percentile(0.99))});
  }
  table.print(std::cout);

  // Per-tenant view of the shared regime: with the lowest-index
  // tie-break both tenants see the same alternating sweep/stencil mix,
  // so their percentiles should track each other closely.
  std::cout << "\n";
  util::TextTable per_tenant({"2-tenant regime", "jobs", "p50 [s]",
                              "p95 [s]", "p99 [s]"});
  for (int t = 0; t < kTenants; ++t) {
    const util::Histogram h = latency_hist(shared, t);
    per_tenant.add_row({"tenant " + std::to_string(t),
                        std::to_string(h.count()),
                        bench::fmt("%.4f", h.percentile(0.50)),
                        bench::fmt("%.4f", h.percentile(0.95)),
                        bench::fmt("%.4f", h.percentile(0.99))});
  }
  per_tenant.print(std::cout);

  const double speedup = serial.makespan_s / shared.makespan_s;
  std::cout << "\nPer-tenant width " << share << "/" << chip_spes
            << " SPEs; sweep service " << bench::fmt("%.4f", sweep_full)
            << " s full-chip vs " << bench::fmt("%.4f", sweep_half)
            << " s shared -- the dependency-chain-bound sweep barely\n"
            << "misses the surrendered SPEs, so two tenants trade a "
            << bench::fmt("%.2f", sweep_half / sweep_full)
            << "x per-job slowdown for " << bench::fmt("%.2f", speedup)
            << "x throughput.\n";

  // ------------------------------------------------------------------
  // Open-system latency vs offered load (the tentpole curve): a seeded
  // ArrivalPlan rate stream into the 2-tenant fair-share partition at a
  // utilization ladder. Capacity is the partition's saturation rate for
  // the alternating mix; the job count stays inside util::Histogram's
  // exact-percentile window so every quantile is an order statistic.
  constexpr std::uint64_t kLoadJobs = 48;
  static_assert(kLoadJobs <= util::Histogram::kExactSampleLimit);
  const double mean_service_s = (sweep_half + sten_half) / 2.0;
  const double capacity_jobs_per_s = kTenants / mean_service_s;
  const double kLoads[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1};

  std::vector<LoadPoint> curve;
  for (const double load : kLoads) {
    core::ArrivalSpec as;
    as.seed = 2026;  // one seed for the whole curve: reproducible knee
    core::TenantArrivals ta;
    ta.tenant = 0;
    ta.kind = core::ArrivalKind::kRate;
    ta.rate_per_s = load * capacity_jobs_per_s;
    ta.count = kLoadJobs;
    as.tenants.push_back(ta);
    LoadPoint pt = run_open_queue(core::ArrivalPlan(as), kTenants,
                                  sweep_half, sten_half);
    pt.offered_load = load;
    curve.push_back(std::move(pt));
  }

  // Knee: the first point whose p95 sojourn exceeds twice the lightest
  // load's p95 -- where queueing delay stops hiding behind service
  // time. Past-saturation points guarantee the knee exists.
  const double p95_floor = curve.front().latency.percentile(0.95);
  double knee_load = kLoads[sizeof(kLoads) / sizeof(kLoads[0]) - 1];
  for (const LoadPoint& pt : curve) {
    if (pt.latency.percentile(0.95) > 2.0 * p95_floor) {
      knee_load = pt.offered_load;
      break;
    }
  }

  std::cout << "\n";
  util::TextTable load_table({"offered load", "jobs/s", "p50 [s]", "p95 [s]",
                              "p99 [s]"});
  for (const LoadPoint& pt : curve)
    load_table.add_row(
        {bench::fmt("%.2f", pt.offered_load),
         bench::fmt("%.4f", static_cast<double>(kLoadJobs) / pt.makespan_s),
         bench::fmt("%.4f", pt.latency.percentile(0.50)),
         bench::fmt("%.4f", pt.latency.percentile(0.95)),
         bench::fmt("%.4f", pt.latency.percentile(0.99))});
  load_table.print(std::cout);
  std::cout << "Capacity " << bench::fmt("%.4f", capacity_jobs_per_s)
            << " jobs/s at width " << share << "; p95 knee at offered load "
            << bench::fmt("%.2f", knee_load) << ".\n";

  if (!opt.json_dir.empty()) {
    const std::string path = opt.json_dir + "/BENCH_latency_load.json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    os << "{\n  \"schema\": \"" << bench::kBenchSchema
       << "\",\n  \"scenario\": \"latency-load\",\n  \"fingerprint\": {"
       << "\"cube\": " << cube << ", \"stencil_cube\": " << stencil_cube
       << ", \"jobs\": " << kLoadJobs << ", \"spes\": " << chip_spes
       << ", \"tenants\": " << kTenants << ", \"seed\": 2026},\n  \"runs\": [";
    bool first_pt = true;
    for (const LoadPoint& pt : curve) {
      os << (first_pt ? "\n" : ",\n") << "    {\"name\": \"load-"
         << bench::fmt("%.2f", pt.offered_load) << "\",\n     \"metrics\": {";
      write_metric(os, "seconds", pt.makespan_s, true);
      write_metric(os, "jobs_per_s",
                   static_cast<double>(kLoadJobs) / pt.makespan_s);
      write_metric(os, "latency_p50_s", pt.latency.percentile(0.50));
      write_metric(os, "latency_p95_s", pt.latency.percentile(0.95));
      write_metric(os, "latency_p99_s", pt.latency.percentile(0.99));
      os << "},\n     \"counters\": null}";
      first_pt = false;
    }
    os << ",\n    {\"name\": \"summary\",\n     \"metrics\": {";
    write_metric(os, "seconds", curve.back().makespan_s, true);
    write_metric(os, "capacity_jobs_per_s", capacity_jobs_per_s);
    write_metric(os, "knee_offered_load", knee_load);
    os << "},\n     \"counters\": null}\n  ],\n  \"deltas\": []\n}\n";
    std::cout << "Bench JSON -> " << path << "\n";
    if (!os.good()) return 1;
  }

  if (!opt.json_dir.empty()) {
    const std::string path =
        opt.json_dir + "/BENCH_throughput.json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench: cannot write " << path << "\n";
      return 1;
    }
    os << "{\n  \"schema\": \"" << bench::kBenchSchema
       << "\",\n  \"scenario\": \"throughput\",\n  \"fingerprint\": {"
       << "\"cube\": " << cube << ", \"stencil_cube\": " << stencil_cube
       << ", \"sweep_jobs\": " << kSweepJobs
       << ", \"stencil_jobs\": " << kStencilJobs
       << ", \"spes\": " << chip_spes << ", \"tenants\": " << kTenants
       << "},\n  \"runs\": [";
    bool first_run = true;
    for (const Row& row : rows) {
      os << (first_run ? "\n" : ",\n") << "    {\"name\": \"" << row.name
         << "\",\n     \"metrics\": {";
      const util::Histogram h = latency_hist(*row.q);
      write_metric(os, "seconds", row.q->makespan_s, true);
      write_metric(os, "jobs_per_s",
                   static_cast<double>(jobs) / row.q->makespan_s);
      write_metric(os, "latency_p50_s", h.percentile(0.50));
      write_metric(os, "latency_p95_s", h.percentile(0.95));
      write_metric(os, "latency_p99_s", h.percentile(0.99));
      const int tenants_here = row.q == &shared ? kTenants : 1;
      for (int t = 0; t < tenants_here; ++t) {
        const util::Histogram th = latency_hist(*row.q, t);
        const std::string prefix = "tenant" + std::to_string(t);
        write_metric(os, (prefix + "_latency_p50_s").c_str(),
                     th.percentile(0.50));
        write_metric(os, (prefix + "_latency_p95_s").c_str(),
                     th.percentile(0.95));
        write_metric(os, (prefix + "_latency_p99_s").c_str(),
                     th.percentile(0.99));
      }
      os << "},\n     \"counters\": null}";
      first_run = false;
    }
    os << "\n  ],\n  \"deltas\": [\n    {\"from\": \"serial-1-tenant\", "
       << "\"to\": \"2-tenant\", \"seconds_delta\": "
       << util::cformat("%.17g", shared.makespan_s - serial.makespan_s)
       << ", \"seconds_ratio\": "
       << util::cformat("%.17g", shared.makespan_s / serial.makespan_s)
       << "}\n  ]\n}\n";
    std::cout << "Bench JSON -> " << path << "\n";
    if (!os.good()) return 1;
  }

  // Acceptance gate at paper scale: sharing the chip two ways must buy
  // at least 1.5x job throughput or the allocator regressed.
  if (!opt.cube_set && speedup < 1.5) {
    std::cerr << "bench_throughput: FAIL: 2-tenant speedup "
              << bench::fmt("%.3f", speedup) << "x < 1.5x\n";
    return 1;
  }
  return 0;
}
