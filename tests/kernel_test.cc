// Tests for the Sn solve kernels: per-cell physics properties of the
// diamond-difference solve, fixup behavior, and bit-equality between
// the scalar kernel (Figure 8) and the SIMD bundle kernel (Figure 7).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sweep/kernel.h"
#include "sweep/kernel_simd.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace cellsweep::sweep {
namespace {

// ---------------------------------------------------------------------------
// solve_cell: per-cell physics
// ---------------------------------------------------------------------------

TEST(SolveCell, SatisfiesBalanceEquation) {
  // sigt*phi + sum_d (c_d/2)(out_d - in_d) = q  (diamond difference).
  const double q = 2.0, sigt = 1.5, ci = 3.0, cj = 4.0, ck = 5.0;
  const double ii = 0.7, ij = 0.3, ik = 0.9;
  const auto r = solve_cell(q, sigt, ci, cj, ck, ii, ij, ik, false);
  const double balance = sigt * r.phi + 0.5 * ci * (r.out_i - ii) +
                         0.5 * cj * (r.out_j - ij) + 0.5 * ck * (r.out_k - ik);
  EXPECT_NEAR(balance, q, 1e-12);
}

TEST(SolveCell, DiamondRelationHolds) {
  const auto r = solve_cell(1.0, 1.0, 2.0, 2.0, 2.0, 0.5, 0.25, 0.75, false);
  EXPECT_NEAR(r.out_i, 2 * r.phi - 0.5, 1e-15);
  EXPECT_NEAR(r.out_j, 2 * r.phi - 0.25, 1e-15);
  EXPECT_NEAR(r.out_k, 2 * r.phi - 0.75, 1e-15);
  EXPECT_FALSE(r.fixed);
}

TEST(SolveCell, PositiveInputsPositiveFlux) {
  util::SplitMix64 rng(11);
  for (int t = 0; t < 200; ++t) {
    const double q = rng.next_double(0.0, 10.0);
    const double sigt = rng.next_double(0.1, 10.0);
    const double c = rng.next_double(0.5, 20.0);
    const auto r = solve_cell(q, sigt, c, c, c, rng.next_double(),
                              rng.next_double(), rng.next_double(), false);
    EXPECT_GT(r.phi, 0.0);
  }
}

TEST(SolveCell, FixupZeroesNegativeOutflows) {
  // Optically thick cell, strong inflow, no source: diamond goes
  // negative; the fixup must clamp outflows at zero.
  const auto raw = solve_cell(0.0, 50.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, false);
  ASSERT_LT(raw.out_i, 0.0);
  const auto fixed = solve_cell(0.0, 50.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, true);
  EXPECT_TRUE(fixed.fixed);
  EXPECT_GE(fixed.out_i, 0.0);
  EXPECT_GE(fixed.out_j, 0.0);
  EXPECT_GE(fixed.out_k, 0.0);
  EXPECT_GE(fixed.phi, 0.0);
}

TEST(SolveCell, FixupPreservesBalanceWithZeroedFaces) {
  // With a face pinned to zero outflow, the balance still holds with
  // the half-inflow convention.
  const double q = 0.0, sigt = 50.0, c = 4.0, in = 1.0;
  const auto r = solve_cell(q, sigt, c, c, c, in, in, in, true);
  const double balance = sigt * r.phi + 0.5 * c * (r.out_i - in) +
                         0.5 * c * (r.out_j - in) + 0.5 * c * (r.out_k - in);
  EXPECT_NEAR(balance, q, 1e-12);
}

TEST(SolveCell, FixupNoOpWhenAllPositive) {
  const auto a = solve_cell(1.0, 1.0, 2.0, 2.0, 2.0, 0.1, 0.1, 0.1, false);
  const auto b = solve_cell(1.0, 1.0, 2.0, 2.0, 2.0, 0.1, 0.1, 0.1, true);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.out_i, b.out_i);
  EXPECT_FALSE(b.fixed);
}

TEST(SolveCell, SinglePrecisionVariantWorks) {
  const auto r =
      solve_cell<float>(1.f, 1.f, 2.f, 2.f, 2.f, 0.5f, 0.25f, 0.75f, false);
  EXPECT_GT(r.phi, 0.f);
  EXPECT_NEAR(r.out_i, 2 * r.phi - 0.5f, 1e-6);
}

// ---------------------------------------------------------------------------
// Line kernels: scalar vs SIMD bundle, parameterized over shapes
// ---------------------------------------------------------------------------

template <typename Real>
struct LineProblem {
  LineProblem(int nlines, int it, int nm, bool thick, std::uint64_t seed)
      : nlines_(nlines), it_(it), nm_(nm) {
    util::SplitMix64 rng(seed);
    const std::size_t pad = util::padded_extent<Real>(it);
    src.assign(static_cast<std::size_t>(nm) * pad, Real(0));
    for (auto& x : src) x = static_cast<Real>(rng.next_double(0.0, 2.0));
    sigt.assign(pad, Real(1));
    for (int i = 0; i < it; ++i)
      sigt[i] = static_cast<Real>(
          thick ? rng.next_double(20.0, 60.0) : rng.next_double(0.5, 2.0));
    pn_src.resize(nm);
    pn_acc.resize(nm);
    for (int n = 0; n < nm; ++n) {
      // Nonnegative coefficients keep q >= 0, so the thin-cell cases
      // genuinely exercise the no-fixup path.
      pn_src[n] = static_cast<Real>(rng.next_double(0.0, 1.0));
      pn_acc[n] = static_cast<Real>(rng.next_double(0.0, 0.2));
    }
    pn_src[0] = Real(1);
    for (int l = 0; l < nlines; ++l) {
      flux[l].assign(static_cast<std::size_t>(nm) * pad, Real(0));
      phi_j[l].assign(pad, Real(0));
      phi_k[l].assign(pad, Real(0));
      for (int i = 0; i < it; ++i) {
        phi_j[l][i] = static_cast<Real>(rng.next_double(0.0, thick ? 5.0 : 1.0));
        phi_k[l][i] = static_cast<Real>(rng.next_double(0.0, thick ? 5.0 : 1.0));
      }
      phi_i[l] = static_cast<Real>(rng.next_double(0.0, 1.0));
      ci[l] = static_cast<Real>(rng.next_double(1.0, 10.0));
      cj[l] = static_cast<Real>(rng.next_double(1.0, 10.0));
      ck[l] = static_cast<Real>(rng.next_double(1.0, 10.0));
    }
  }

  LineArgs<Real> args(int l, int dir) {
    LineArgs<Real> a;
    a.it = it_;
    a.dir = dir;
    a.sigt = sigt.data();
    a.src = src.data();
    a.flux = flux[l].data();
    a.mstride = static_cast<std::int64_t>(util::padded_extent<Real>(it_));
    a.pn_src = pn_src.data();
    a.pn_acc = pn_acc.data();
    a.nm = nm_;
    a.ci = ci[l];
    a.cj = cj[l];
    a.ck = ck[l];
    a.phi_j = phi_j[l].data();
    a.phi_k = phi_k[l].data();
    a.phi_i = &phi_i[l];
    return a;
  }

  int nlines_, it_, nm_;
  util::AlignedVector<Real> src, sigt;
  std::vector<Real> pn_src, pn_acc;
  util::AlignedVector<Real> flux[kBundleLines], phi_j[kBundleLines],
      phi_k[kBundleLines];
  Real phi_i[kBundleLines];
  Real ci[kBundleLines], cj[kBundleLines], ck[kBundleLines];
};

// (nlines, it, nm, fixup&thick, dir)
using ShapeParam = std::tuple<int, int, int, bool, int>;

class KernelEquivalence : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(KernelEquivalence, SimdBundleBitEqualsScalarDouble) {
  const auto [nlines, it, nm, thick, dir] = GetParam();
  LineProblem<double> scalar_prob(nlines, it, nm, thick, 99);
  LineProblem<double> simd_prob(nlines, it, nm, thick, 99);

  KernelStats s1, s2;
  for (int l = 0; l < nlines; ++l) {
    LineArgs<double> a = scalar_prob.args(l, dir);
    sweep_line_scalar(a, thick, &s1);
  }
  std::vector<LineArgs<double>> bundle;
  for (int l = 0; l < nlines; ++l) bundle.push_back(simd_prob.args(l, dir));
  BundleScratch<double> scratch(it);
  sweep_bundle_simd(bundle.data(), nlines, thick, scratch, &s2);

  for (int l = 0; l < nlines; ++l) {
    for (int n = 0; n < nm; ++n)
      for (int i = 0; i < it; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(n) * util::padded_extent<double>(it) + i;
        ASSERT_EQ(scalar_prob.flux[l][idx], simd_prob.flux[l][idx])
            << "line " << l << " moment " << n << " cell " << i;
      }
    for (int i = 0; i < it; ++i) {
      ASSERT_EQ(scalar_prob.phi_j[l][i], simd_prob.phi_j[l][i]);
      ASSERT_EQ(scalar_prob.phi_k[l][i], simd_prob.phi_k[l][i]);
    }
    ASSERT_EQ(scalar_prob.phi_i[l], simd_prob.phi_i[l]);
  }
  EXPECT_EQ(s1.cells, s2.cells);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),   // nlines
                       ::testing::Values(1, 7, 50),     // it
                       ::testing::Values(1, 6, 9),      // nm
                       ::testing::Bool(),               // thick/fixup
                       ::testing::Values(+1, -1)));     // direction

class KernelEquivalenceSp : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(KernelEquivalenceSp, SimdBundleBitEqualsScalarSingle) {
  const auto [nlines, it, nm, thick, dir] = GetParam();
  LineProblem<float> scalar_prob(nlines, it, nm, thick, 7);
  LineProblem<float> simd_prob(nlines, it, nm, thick, 7);

  for (int l = 0; l < nlines; ++l) {
    LineArgs<float> a = scalar_prob.args(l, dir);
    sweep_line_scalar(a, thick, nullptr);
  }
  std::vector<LineArgs<float>> bundle;
  for (int l = 0; l < nlines; ++l) bundle.push_back(simd_prob.args(l, dir));
  BundleScratch<float> scratch(it);
  sweep_bundle_simd(bundle.data(), nlines, thick, scratch, nullptr);

  for (int l = 0; l < nlines; ++l)
    for (int i = 0; i < it; ++i)
      ASSERT_EQ(scalar_prob.phi_j[l][i], simd_prob.phi_j[l][i])
          << "line " << l << " cell " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelEquivalenceSp,
    ::testing::Combine(::testing::Values(1, 4), ::testing::Values(5, 50),
                       ::testing::Values(6), ::testing::Bool(),
                       ::testing::Values(+1, -1)));

TEST(Kernel, FixupsReportedInThickCells) {
  LineProblem<double> prob(1, 20, 6, /*thick=*/true, 3);
  KernelStats stats;
  LineArgs<double> a = prob.args(0, +1);
  sweep_line_scalar(a, true, &stats);
  EXPECT_EQ(stats.cells, 20u);
  EXPECT_GT(stats.fixups_applied, 0u);
}

TEST(Kernel, NoFixupsInThinCells) {
  LineProblem<double> prob(1, 20, 6, /*thick=*/false, 3);
  KernelStats stats;
  LineArgs<double> a = prob.args(0, +1);
  sweep_line_scalar(a, true, &stats);
  EXPECT_EQ(stats.fixups_applied, 0u);
}

TEST(Kernel, BundleValidatesShape) {
  LineProblem<double> prob(2, 10, 6, false, 5);
  LineArgs<double> bundle[2] = {prob.args(0, +1), prob.args(1, -1)};
  BundleScratch<double> scratch(10);
  EXPECT_THROW(sweep_bundle_simd(bundle, 2, false, scratch, nullptr),
               std::invalid_argument);
  EXPECT_THROW(sweep_bundle_simd(bundle, 0, false, scratch, nullptr),
               std::invalid_argument);
  EXPECT_THROW(sweep_bundle_simd(bundle, 5, false, scratch, nullptr),
               std::invalid_argument);
}

TEST(Kernel, FlopAccountingFormula) {
  EXPECT_EQ(flops_per_cell_solve(6, false), 2u * 6 + 6 + 3 + 1 + 6 + 2 * 6);
  EXPECT_EQ(flops_per_cell_solve(6, true), flops_per_cell_solve(6, false) + 5);
  EXPECT_GT(flops_per_cell_solve(9, false), flops_per_cell_solve(6, false));
}

}  // namespace
}  // namespace cellsweep::sweep
